// Command flexos-explore runs FlexOS' partial safety ordering (§5) over
// the paper's 80-configuration design space for Redis or Nginx — or the
// larger 320-point cross-application space — measuring configurations
// in parallel through the flexos.Query builder, pruning monotonically,
// and printing the safest configurations that satisfy every budget
// constraint (the workflow behind Figure 8).
//
// Budgets are composable: -budget may repeat, each occurrence either a
// plain number (bound on the -metric dimension, in its natural
// direction) or a full constraint like "throughput>=500000" or
// "p99<=2.5". A configuration must satisfy all of them. -timeout bounds
// the whole exploration through context cancellation, and -stream
// prints each configuration the moment it is measured — in input
// order, so the streamed output is byte-identical for any -workers
// value.
//
// With -scenario it swaps the single-metric benchmark for a workload of
// the multi-metric scenario library (Redis GET/SET mixes and
// pipelining, Nginx keepalive mixes, iPerf stream counts): every
// configuration then carries a full metric vector, budgets may
// constrain any dimension, and -pareto prints the safety × throughput ×
// memory frontier.
//
// -cache attaches a persistent result store to the run: measurements
// load from the directory when present and write through to it when
// fresh, so a rerun measures only configurations the store has never
// seen. -cache-readonly freezes the store (load, never write). The
// deterministic report goes to stdout and the run statistics
// (evaluated / cache hits / pruned, the cache hit rate) to stderr, so
// cold and warm runs print byte-identical stdout. -shard i/n explores
// the i-th of n deterministic slices of the space (typically each into
// its own -cache directory; merge them with flexos-merge), and
// -space-hash prints the exploration-space hash — the natural CI cache
// key for the store directory — without running anything.
//
// Usage:
//
//	flexos-explore -app redis -budget 500000
//	flexos-explore -app nginx -budget 400000 -exhaustive -v
//	flexos-explore -app cross -workers 8 -progress -stream
//	flexos-explore -scenario redis-get90 -pareto
//	flexos-explore -scenario nginx-keep75 -metric p99 -budget 3
//	flexos-explore -scenario redis-pipe4 -budget "throughput>=200000" -budget "p99<=40" -budget "mem<=400000"
//	flexos-explore -app cross -timeout 30s -stream
//	flexos-explore -app redis -cache .explore-cache
//	flexos-explore -app cross -shard 2/4 -cache shards/2
//	flexos-explore -app redis -space-hash
//	flexos-explore -scenario redis-get90 -attack rop-chain -profile riscv -budget "survival>=0.5"
//	flexos-explore -scenario redis-get90 -attack combined -aslr 16+leak
//	flexos-explore -list
//
// -remote URL forwards the request to a running flexos-serve daemon
// instead of exploring locally: the daemon executes it on its shared
// memo (coalescing it with identical concurrent requests) and the
// report it returns — streamed or complete — is byte-identical to the
// local run's stdout. The run statistics still go to stderr; they
// describe the daemon's run, so cache hits reflect the daemon's warm
// memo. -cache, -dot and -progress are local concerns and cannot be
// combined with -remote.
//
//	flexos-explore -remote http://127.0.0.1:8077 -scenario redis-get90
//	flexos-explore -remote http://127.0.0.1:8077 -app cross -stream
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"flexos"
	"flexos/internal/cli"
)

func main() {
	app := flag.String("app", "redis", "space to explore: redis | nginx | cross (both apps x {mpk, ept})")
	scenarioName := flag.String("scenario", "", "explore under a multi-metric scenario workload instead of -app (see -list)")
	attackName := flag.String("attack", "", "score survival against an attack scenario and sweep the ASLR / control-flow hardening axes: rop-chain | addr-probe | comp-leak | combined (requires -scenario)")
	profileName := flag.String("profile", "", "machine profile to build and measure for: x86 (default) | riscv (requires -scenario)")
	aslrSpec := flag.String("aslr", "", "pin the layout-randomization level instead of sweeping the attack ladder: off | N | N+leak, e.g. 16+leak (requires -scenario)")
	metricName := flag.String("metric", "throughput", "ranking metric, and the dimension plain-number -budget values bound: throughput | p50 | p99 | maxlat | mem | boot | survival")
	var budgets cli.BudgetFlags
	flag.Var(&budgets, "budget", "budget constraint; repeatable. Either a plain bound on -metric (natural direction) or metric>=bound / metric<=bound (default: 500000 on -metric)")
	timeout := flag.Duration("timeout", 0, "abort the exploration after this duration (0: no deadline)")
	pareto := flag.Bool("pareto", false, "print the safety x throughput x memory Pareto frontier (implies -exhaustive)")
	list := flag.Bool("list", false, "list the scenario library and exit")
	requests := flag.Int("requests", 200, "requests per measurement (-app spaces; scenarios use -ops)")
	ops := flag.Int("ops", 0, "operations per scenario measurement (<= 0: the scenario's default)")
	workers := flag.Int("workers", 0, "concurrent measurement workers (<= 0: GOMAXPROCS)")
	progress := flag.Bool("progress", false, "report exploration progress on stderr")
	stream := flag.Bool("stream", false, "print each configuration as soon as it is measured (deterministic input order)")
	exhaustive := flag.Bool("exhaustive", false, "measure every configuration (disable monotonic pruning)")
	budgetSpec := flag.String("measure-budget", "", "cap fresh measurements and switch to budgeted guided search: \"N\" or \"N@SEED\" (0 or empty: exhaustive)")
	seedFlag := flag.Int64("seed", 0, "sampling seed for -measure-budget (overridden by an explicit \"N@SEED\" spec)")
	deltaOnly := flag.Bool("delta-only", false, "re-measure only configurations absent from the store (requires -cache locally, or the daemon's store with -remote)")
	cacheDir := flag.String("cache", "", "persistent result-store directory: load measurements from it, write fresh ones through to it")
	cacheRO := flag.Bool("cache-readonly", false, "open -cache read-only: load from the store, never write to it")
	shardSpec := flag.String("shard", "", "explore one deterministic slice of the space, as index/count (e.g. 0/4)")
	spaceHash := flag.Bool("space-hash", false, "print the exploration-space hash (the store cache key) and exit without measuring")
	verbose := flag.Bool("v", false, "print every measured configuration after the run")
	dotPath := flag.String("dot", "", "write the labeled safety poset as a Graphviz file (Fig. 8 visual)")
	remote := flag.String("remote", "", "forward the request to a flexos-serve daemon at this base URL instead of exploring locally")
	flag.Parse()

	if *list {
		fmt.Println("scenario library:")
		for _, sc := range flexos.Scenarios() {
			quadNote := ""
			if _, ok := sc.Quad(); !ok {
				quadNote = "  (bench-only: no Fig6 space)"
			}
			fmt.Printf("  %-16s %s%s\n", sc.Name(), sc.Description(), quadNote)
		}
		fmt.Println("attack library (-attack, with -scenario):")
		for _, a := range flexos.AttackScenarios() {
			fmt.Printf("  %-16s %s\n", a.Name(), a.Description())
		}
		return
	}

	// The budget spec "N@SEED" carries its own seed; a bare "N" takes
	// the -seed flag (default 0).
	measureBudget, seed := 0, *seedFlag
	if *budgetSpec != "" {
		b, s, hasSeed, err := cli.ParseBudgetSpec(*budgetSpec)
		if err != nil {
			fatal(2, err)
		}
		measureBudget = b
		if hasSeed {
			seed = s
		}
	}

	// Assemble the request — the same serializable form a flexos-serve
	// daemon accepts, so the local and -remote paths cannot drift.
	creq := cli.Request{
		App: *app, Scenario: *scenarioName, Requests: *requests, Ops: *ops,
		Attack: *attackName, Profile: *profileName, ASLR: *aslrSpec,
		Metric: *metricName, Budgets: budgets,
		Pareto: *pareto, Exhaustive: *exhaustive, Verbose: *verbose,
		MeasureBudget: measureBudget, Seed: seed, DeltaOnly: *deltaOnly,
		Stream: *stream, Shard: *shardSpec, Workers: *workers,
		TimeoutMs: int(timeout.Milliseconds()),
	}
	q, info, err := creq.Build()
	if err != nil {
		fatal(2, err)
	}
	if *spaceHash {
		fmt.Println(q.SpaceHash())
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *remote != "" {
		if *cacheDir != "" || *cacheRO || *dotPath != "" || *progress {
			fatal(2, errors.New("-remote cannot be combined with -cache, -cache-readonly, -dot or -progress"))
		}
		runRemote(ctx, *remote, creq)
		return
	}
	if *deltaOnly && *cacheDir == "" {
		fatal(2, errors.New("-delta-only needs a store to diff against: add -cache (or -remote, to diff against the daemon's store)"))
	}
	if *cacheDir != "" {
		if *cacheRO {
			q.CacheReadOnly(*cacheDir)
		} else {
			q.Cache(*cacheDir)
		}
	} else if *cacheRO {
		fatal(2, errors.New("-cache-readonly requires -cache"))
	}
	if *progress {
		q.Progress(progressBar)
	}

	// Run — streaming incrementally when asked — and report. Scalar
	// -app runs only measure throughput, so their stream lines print
	// just that instead of a mostly-zero vector.
	var res *flexos.ExploreResult
	if *stream {
		seq, final := q.Stream(ctx)
		for cfg, m := range seq {
			fmt.Println(cli.StreamLine(info.ScenarioMode, cfg, m))
		}
		res, err = final()
	} else {
		res, err = q.Run(ctx)
	}
	noFeasible := errors.Is(err, flexos.ErrNoFeasible)
	if err != nil && !noFeasible {
		if *progress {
			fmt.Fprintln(os.Stderr)
		}
		if errors.Is(err, flexos.ErrCanceled) {
			fatal(1, fmt.Errorf("exploration canceled after %v: %v", *timeout, err))
		}
		fatal(1, err)
	}

	if *verbose {
		cli.PrintAll(os.Stdout, res)
	}
	writeDOT(*dotPath, res, info.Title)
	cli.PrintReport(os.Stdout, info.Title, res, info.Constraints, info.ScenarioMode, *pareto, noFeasible)
	cli.PrintStats(os.Stderr, "flexos-explore", res)
}

// runRemote forwards the request to a flexos-serve daemon and relays
// its answer: the streamed lines and the report (both byte-identical
// to a local run) to stdout, the daemon's run statistics to stderr.
func runRemote(ctx context.Context, baseURL string, req cli.Request) {
	// Transient failures (daemon restarting, connection cut mid-stream)
	// retry with bounded backoff; a resumed stream skips the lines
	// already printed, so stdout stays byte-identical to a clean run.
	client := &cli.Client{BaseURL: baseURL, Retry: cli.DefaultRetry}
	var (
		resp cli.Response
		err  error
	)
	if req.Stream {
		resp, err = client.ExploreStream(ctx, req, func(line string) { fmt.Println(line) })
	} else {
		resp, err = client.Explore(ctx, req)
	}
	if err != nil {
		fatal(1, err)
	}
	fmt.Print(resp.Report)
	if resp.Stats != nil {
		resp.Stats.Print(os.Stderr, "flexos-explore")
	}
}

func progressBar(done, total int) {
	fmt.Fprintf(os.Stderr, "\rexplored %d/%d configurations", done, total)
	if done == total {
		fmt.Fprintln(os.Stderr)
	}
}

func writeDOT(path string, res *flexos.ExploreResult, name string) {
	if path == "" {
		return
	}
	if err := os.WriteFile(path, []byte(res.DOT(name)), 0o644); err != nil {
		fatal(1, err)
	}
	fmt.Printf("wrote safety poset to %s (render with: dot -Tsvg)\n", path)
}

func fatal(code int, err error) {
	fmt.Fprintln(os.Stderr, "flexos-explore:", err)
	os.Exit(code)
}
