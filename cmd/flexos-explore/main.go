// Command flexos-explore runs FlexOS' partial safety ordering (§5) over
// the paper's 80-configuration design space for Redis or Nginx — or the
// larger 320-point cross-application space — measuring configurations
// in parallel through the flexos.Query builder, pruning monotonically,
// and printing the safest configurations that satisfy every budget
// constraint (the workflow behind Figure 8).
//
// Budgets are composable: -budget may repeat, each occurrence either a
// plain number (bound on the -metric dimension, in its natural
// direction) or a full constraint like "throughput>=500000" or
// "p99<=2.5". A configuration must satisfy all of them. -timeout bounds
// the whole exploration through context cancellation, and -stream
// prints each configuration the moment it is measured — in input
// order, so the streamed output is byte-identical for any -workers
// value.
//
// With -scenario it swaps the single-metric benchmark for a workload of
// the multi-metric scenario library (Redis GET/SET mixes and
// pipelining, Nginx keepalive mixes, iPerf stream counts): every
// configuration then carries a full metric vector, budgets may
// constrain any dimension, and -pareto prints the safety × throughput ×
// memory frontier.
//
// Usage:
//
//	flexos-explore -app redis -budget 500000
//	flexos-explore -app nginx -budget 400000 -exhaustive -v
//	flexos-explore -app cross -workers 8 -progress -stream
//	flexos-explore -scenario redis-get90 -pareto
//	flexos-explore -scenario nginx-keep75 -metric p99 -budget 3
//	flexos-explore -scenario redis-pipe4 -budget "throughput>=200000" -budget "p99<=40" -budget "mem<=400000"
//	flexos-explore -app cross -timeout 30s -stream
//	flexos-explore -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"

	"flexos"
)

// budgetFlags collects repeated -budget occurrences.
type budgetFlags []string

func (b *budgetFlags) String() string { return fmt.Sprint([]string(*b)) }
func (b *budgetFlags) Set(s string) error {
	*b = append(*b, s)
	return nil
}

func main() {
	app := flag.String("app", "redis", "space to explore: redis | nginx | cross (both apps x {mpk, ept})")
	scenarioName := flag.String("scenario", "", "explore under a multi-metric scenario workload instead of -app (see -list)")
	metricName := flag.String("metric", "throughput", "ranking metric, and the dimension plain-number -budget values bound: throughput | p50 | p99 | maxlat | mem | boot")
	var budgets budgetFlags
	flag.Var(&budgets, "budget", "budget constraint; repeatable. Either a plain bound on -metric (natural direction) or metric>=bound / metric<=bound (default: 500000 on -metric)")
	timeout := flag.Duration("timeout", 0, "abort the exploration after this duration (0: no deadline)")
	pareto := flag.Bool("pareto", false, "print the safety x throughput x memory Pareto frontier (implies -exhaustive)")
	list := flag.Bool("list", false, "list the scenario library and exit")
	requests := flag.Int("requests", 200, "requests per measurement (-app spaces; scenarios use -ops)")
	ops := flag.Int("ops", 0, "operations per scenario measurement (<= 0: the scenario's default)")
	workers := flag.Int("workers", 0, "concurrent measurement workers (<= 0: GOMAXPROCS)")
	progress := flag.Bool("progress", false, "report exploration progress on stderr")
	stream := flag.Bool("stream", false, "print each configuration as soon as it is measured (deterministic input order)")
	exhaustive := flag.Bool("exhaustive", false, "measure every configuration (disable monotonic pruning)")
	verbose := flag.Bool("v", false, "print every measured configuration after the run")
	dotPath := flag.String("dot", "", "write the labeled safety poset as a Graphviz file (Fig. 8 visual)")
	flag.Parse()

	if *list {
		fmt.Println("scenario library:")
		for _, sc := range flexos.Scenarios() {
			quadNote := ""
			if _, ok := sc.Quad(); !ok {
				quadNote = "  (bench-only: no Fig6 space)"
			}
			fmt.Printf("  %-16s %s%s\n", sc.Name(), sc.Description(), quadNote)
		}
		return
	}

	metric, err := flexos.ParseMetric(*metricName)
	if err != nil {
		fatal(2, err)
	}
	constraints, err := parseBudgets(budgets, metric)
	if err != nil {
		fatal(2, err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Assemble the query: the space and its measurement source.
	var (
		q     *flexos.Query
		title string
	)
	if *scenarioName != "" {
		sc, ok := flexos.ScenarioByName(*scenarioName)
		if !ok {
			fatal(2, fmt.Errorf("unknown scenario %q (try -list)", *scenarioName))
		}
		if *ops > 0 {
			sc = sc.WithOps(*ops)
		}
		quad, ok := sc.Quad()
		if !ok {
			fatal(2, fmt.Errorf("scenario %q has no four-component space", sc.Name()))
		}
		q = flexos.NewQuery(flexos.Fig6Space(quad)).Workload(sc)
		title = sc.Name()
	} else {
		// The scalar -app benchmarks measure only throughput: a frontier
		// over the latency/memory axes, a non-throughput ranking, or a
		// constraint on an unmeasured dimension all need the full
		// vectors of a scenario run.
		if *pareto {
			fatal(2, errors.New("-pareto requires -scenario (only scenario workloads measure the memory axis)"))
		}
		if metric != flexos.MetricThroughput {
			fatal(2, fmt.Errorf("-metric %s requires -scenario (the -app benchmarks measure only throughput)", metric))
		}
		for _, c := range constraints {
			if c.Metric != flexos.MetricThroughput {
				fatal(2, fmt.Errorf("constraint %s requires -scenario (the -app benchmarks measure only throughput)", c))
			}
		}
		var err error
		if q, title, err = appQuery(*app, *requests); err != nil {
			fatal(2, err)
		}
	}
	for _, c := range constraints {
		q.Constrain(c.Metric, c.Op, c.Bound)
	}
	q.RankBy(metric).Workers(*workers).Prune(!*exhaustive && !*pareto)
	if *progress {
		q.Progress(progressBar)
	}

	// Run — streaming incrementally when asked — and report. Scalar
	// -app runs only measure throughput, so their stream lines print
	// just that instead of a mostly-zero vector.
	var res *flexos.ExploreResult
	if *stream {
		seq, final := q.Stream(ctx)
		for cfg, m := range seq {
			if *scenarioName != "" {
				fmt.Printf("measured %-55s %s\n", cfg.Label(), m)
			} else {
				fmt.Printf("measured %-55s %9.1fk req/s\n", cfg.Label(), m.Throughput/1000)
			}
		}
		res, err = final()
	} else {
		res, err = q.Run(ctx)
	}
	noFeasible := errors.Is(err, flexos.ErrNoFeasible)
	if err != nil && !noFeasible {
		if *progress {
			fmt.Fprintln(os.Stderr)
		}
		if errors.Is(err, flexos.ErrCanceled) {
			fatal(1, fmt.Errorf("exploration canceled after %v: %v", *timeout, err))
		}
		fatal(1, err)
	}

	if *verbose {
		printAll(res)
	}
	writeDOT(*dotPath, res, title)
	if *pareto {
		printPareto(res)
	}

	fmt.Printf("%s: explored %d/%d configurations under %d constraint(s)%s\n",
		title, res.Evaluated, res.Total, len(constraints), constraintList(constraints))
	if noFeasible {
		fmt.Println("no configuration satisfies every constraint")
		return
	}
	fmt.Printf("safest configurations satisfying every constraint: %d\n", len(res.Safest))
	for _, i := range res.Safest {
		m := res.Measurements[i]
		if *scenarioName != "" {
			fmt.Printf("  * %-55s %s\n", m.Config.Label(), m.Metrics)
		} else {
			fmt.Printf("  * %-55s %9.1fk req/s\n", m.Config.Label(), m.Perf/1000)
		}
	}
}

// appQuery builds the single-metric benchmark query for -app spaces.
func appQuery(app string, requests int) (*flexos.Query, string, error) {
	measureRedis := func(c *flexos.ExploreConfig) (float64, error) {
		res, err := flexos.BenchmarkRedis(c.Spec(flexos.TCBLibs()), requests)
		if err != nil {
			return 0, err
		}
		return res.ReqPerSec, nil
	}
	measureNginx := func(c *flexos.ExploreConfig) (float64, error) {
		res, err := flexos.BenchmarkNginx(c.Spec(flexos.TCBLibs()), requests)
		if err != nil {
			return 0, err
		}
		return res.ReqPerSec, nil
	}
	switch app {
	case "redis":
		return flexos.NewQuery(flexos.Fig6Space(flexos.RedisComponents())).
			MeasureScalar(measureRedis).Namespace(fmt.Sprintf("redis/%d", requests)), app, nil
	case "nginx":
		return flexos.NewQuery(flexos.Fig6Space(flexos.NginxComponents())).
			MeasureScalar(measureNginx).Namespace(fmt.Sprintf("nginx/%d", requests)), app, nil
	case "cross":
		cfgs := flexos.CrossAppSpace(nil, flexos.RedisComponents(), flexos.NginxComponents())
		// Dispatch on the application the configuration contains; the
		// two sub-spaces are incomparable and explore independently.
		measure := func(c *flexos.ExploreConfig) (float64, error) {
			for _, comp := range c.Components() {
				switch comp {
				case flexos.LibRedis:
					return measureRedis(c)
				case flexos.LibNginx:
					return measureNginx(c)
				}
			}
			return 0, fmt.Errorf("config %d contains no known application", c.ID)
		}
		return flexos.NewQuery(cfgs).MeasureScalar(measure).
			Namespace(fmt.Sprintf("cross/%d", requests)), app, nil
	}
	return nil, "", fmt.Errorf("unknown app %q", app)
}

// parseBudgets turns the repeated -budget values into constraints. A
// plain number bounds the default metric in its natural direction; the
// full syntax names its own metric and direction. No -budget at all
// keeps the historical default of 500000 on the chosen metric.
func parseBudgets(budgets []string, metric flexos.Metric) ([]flexos.ExploreConstraint, error) {
	if len(budgets) == 0 {
		budgets = []string{"500000"}
	}
	out := make([]flexos.ExploreConstraint, 0, len(budgets))
	for _, s := range budgets {
		if v, err := strconv.ParseFloat(s, 64); err == nil {
			out = append(out, flexos.ExploreConstraint{Metric: metric, Op: flexos.NaturalOp(metric), Bound: v})
			continue
		}
		c, err := flexos.ParseConstraint(s)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

func constraintList(cs []flexos.ExploreConstraint) string {
	s := ""
	for i, c := range cs {
		if i == 0 {
			s = ": "
		} else {
			s += ", "
		}
		s += c.String()
	}
	return s
}

func progressBar(done, total int) {
	fmt.Fprintf(os.Stderr, "\rexplored %d/%d configurations", done, total)
	if done == total {
		fmt.Fprintln(os.Stderr)
	}
}

func printAll(res *flexos.ExploreResult) {
	sorted := make([]int, 0, len(res.Measurements))
	for i := range res.Measurements {
		sorted = append(sorted, i)
	}
	sort.Slice(sorted, func(a, b int) bool {
		if res.Measurements[sorted[a]].Perf != res.Measurements[sorted[b]].Perf {
			return res.Measurements[sorted[a]].Perf < res.Measurements[sorted[b]].Perf
		}
		return sorted[a] < sorted[b]
	})
	for _, i := range sorted {
		m := res.Measurements[i]
		state := "measured"
		if m.Pruned {
			state = "pruned"
		} else if m.Cached {
			state = "cached"
		}
		fmt.Printf("%-9s %12.1f  %s\n", state, m.Perf, m.Config.Label())
	}
	fmt.Println("---")
}

func printPareto(res *flexos.ExploreResult) {
	front := res.ParetoFront()
	fmt.Printf("Pareto frontier (safety x throughput x memory): %d configurations\n", len(front))
	for _, i := range front {
		m := res.Measurements[i]
		fmt.Printf("  - %-55s %s\n", m.Config.Label(), m.Metrics)
	}
}

func writeDOT(path string, res *flexos.ExploreResult, name string) {
	if path == "" {
		return
	}
	if err := os.WriteFile(path, []byte(res.DOT(name)), 0o644); err != nil {
		fatal(1, err)
	}
	fmt.Printf("wrote safety poset to %s (render with: dot -Tsvg)\n", path)
}

func fatal(code int, err error) {
	fmt.Fprintln(os.Stderr, "flexos-explore:", err)
	os.Exit(code)
}
