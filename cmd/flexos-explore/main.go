// Command flexos-explore runs FlexOS' partial safety ordering (§5) over
// the paper's 80-configuration design space for Redis or Nginx — or the
// larger 320-point cross-application space — measuring configurations
// in parallel, pruning monotonically, and printing the safest
// configurations that satisfy a performance budget (the workflow behind
// Figure 8).
//
// Usage:
//
//	flexos-explore -app redis -budget 500000
//	flexos-explore -app nginx -budget 400000 -exhaustive -v
//	flexos-explore -app cross -workers 8 -progress
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"flexos"
)

func main() {
	app := flag.String("app", "redis", "space to explore: redis | nginx | cross (both apps x {mpk, ept})")
	budget := flag.Float64("budget", 500_000, "minimum performance (requests/s)")
	requests := flag.Int("requests", 200, "requests per measurement")
	workers := flag.Int("workers", 0, "concurrent measurement workers (<= 0: GOMAXPROCS)")
	progress := flag.Bool("progress", false, "report exploration progress on stderr")
	exhaustive := flag.Bool("exhaustive", false, "measure every configuration (disable monotonic pruning)")
	verbose := flag.Bool("v", false, "print every measured configuration")
	dotPath := flag.String("dot", "", "write the labeled safety poset as a Graphviz file (Fig. 8 visual)")
	flag.Parse()

	measureRedis := func(c *flexos.ExploreConfig) (float64, error) {
		res, err := flexos.BenchmarkRedis(c.Spec(flexos.TCBLibs()), *requests)
		if err != nil {
			return 0, err
		}
		return res.ReqPerSec, nil
	}
	measureNginx := func(c *flexos.ExploreConfig) (float64, error) {
		res, err := flexos.BenchmarkNginx(c.Spec(flexos.TCBLibs()), *requests)
		if err != nil {
			return 0, err
		}
		return res.ReqPerSec, nil
	}

	var cfgs []*flexos.ExploreConfig
	var measure func(*flexos.ExploreConfig) (float64, error)
	switch *app {
	case "redis":
		cfgs = flexos.Fig6Space(flexos.RedisComponents())
		measure = measureRedis
	case "nginx":
		cfgs = flexos.Fig6Space(flexos.NginxComponents())
		measure = measureNginx
	case "cross":
		cfgs = flexos.CrossAppSpace(nil, flexos.RedisComponents(), flexos.NginxComponents())
		// Dispatch on the application the configuration contains; the
		// two sub-spaces are incomparable and explore independently.
		measure = func(c *flexos.ExploreConfig) (float64, error) {
			for _, comp := range c.Components() {
				switch comp {
				case flexos.LibRedis:
					return measureRedis(c)
				case flexos.LibNginx:
					return measureNginx(c)
				}
			}
			return 0, fmt.Errorf("config %d contains no known application", c.ID)
		}
	default:
		fmt.Fprintf(os.Stderr, "flexos-explore: unknown app %q\n", *app)
		os.Exit(2)
	}

	opts := flexos.ExploreOptions{Workers: *workers, Prune: !*exhaustive}
	if *progress {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rexplored %d/%d configurations", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	res, err := flexos.ExploreWith(cfgs, measure, *budget, opts)
	if err != nil {
		if *progress {
			fmt.Fprintln(os.Stderr)
		}
		fmt.Fprintln(os.Stderr, "flexos-explore:", err)
		os.Exit(1)
	}

	if *verbose {
		sorted := make([]int, 0, len(res.Measurements))
		for i := range res.Measurements {
			sorted = append(sorted, i)
		}
		sort.Slice(sorted, func(a, b int) bool {
			return res.Measurements[sorted[a]].Perf < res.Measurements[sorted[b]].Perf
		})
		for _, i := range sorted {
			m := res.Measurements[i]
			state := "measured"
			if m.Pruned {
				state = "pruned"
			} else if m.Cached {
				state = "cached"
			}
			fmt.Printf("%-9s %9.1fk req/s  %s\n", state, m.Perf/1000, m.Config.Label())
		}
		fmt.Println("---")
	}

	if *dotPath != "" {
		if err := os.WriteFile(*dotPath, []byte(res.DOT(*app)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "flexos-explore:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote safety poset to %s (render with: dot -Tsvg)\n", *dotPath)
	}

	fmt.Printf("explored %d/%d configurations (budget %.0fk %s req/s)\n",
		res.Evaluated, res.Total, *budget/1000, *app)
	fmt.Printf("safest configurations under budget: %d\n", len(res.Safest))
	for _, i := range res.Safest {
		m := res.Measurements[i]
		fmt.Printf("  * %-55s %9.1fk req/s\n", m.Config.Label(), m.Perf/1000)
	}
}
