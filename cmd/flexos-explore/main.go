// Command flexos-explore runs FlexOS' partial safety ordering (§5) over
// the paper's 80-configuration design space for Redis or Nginx: it
// measures every configuration (or prunes monotonically), orders them in
// the safety poset, and prints the safest configurations that satisfy a
// performance budget — the workflow behind Figure 8.
//
// Usage:
//
//	flexos-explore -app redis -budget 500000
//	flexos-explore -app nginx -budget 400000 -exhaustive -v
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"flexos"
)

func main() {
	app := flag.String("app", "redis", "application to explore: redis | nginx")
	budget := flag.Float64("budget", 500_000, "minimum performance (requests/s)")
	requests := flag.Int("requests", 200, "requests per measurement")
	exhaustive := flag.Bool("exhaustive", false, "measure every configuration (disable monotonic pruning)")
	verbose := flag.Bool("v", false, "print every measured configuration")
	dotPath := flag.String("dot", "", "write the labeled safety poset as a Graphviz file (Fig. 8 visual)")
	flag.Parse()

	var components [4]string
	var measure func(*flexos.ExploreConfig) (float64, error)
	switch *app {
	case "redis":
		components = flexos.RedisComponents()
		measure = func(c *flexos.ExploreConfig) (float64, error) {
			res, err := flexos.BenchmarkRedis(c.Spec(flexos.TCBLibs()), *requests)
			if err != nil {
				return 0, err
			}
			return res.ReqPerSec, nil
		}
	case "nginx":
		components = flexos.NginxComponents()
		measure = func(c *flexos.ExploreConfig) (float64, error) {
			res, err := flexos.BenchmarkNginx(c.Spec(flexos.TCBLibs()), *requests)
			if err != nil {
				return 0, err
			}
			return res.ReqPerSec, nil
		}
	default:
		fmt.Fprintf(os.Stderr, "flexos-explore: unknown app %q\n", *app)
		os.Exit(2)
	}

	cfgs := flexos.Fig6Space(components)
	res, err := flexos.Explore(cfgs, measure, *budget, !*exhaustive)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexos-explore:", err)
		os.Exit(1)
	}

	if *verbose {
		sorted := make([]int, 0, len(res.Measurements))
		for i := range res.Measurements {
			sorted = append(sorted, i)
		}
		sort.Slice(sorted, func(a, b int) bool {
			return res.Measurements[sorted[a]].Perf < res.Measurements[sorted[b]].Perf
		})
		for _, i := range sorted {
			m := res.Measurements[i]
			state := "measured"
			if m.Pruned {
				state = "pruned"
			}
			fmt.Printf("%-9s %9.1fk req/s  %s\n", state, m.Perf/1000, m.Config.Label())
		}
		fmt.Println("---")
	}

	if *dotPath != "" {
		if err := os.WriteFile(*dotPath, []byte(res.DOT(*app)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "flexos-explore:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote safety poset to %s (render with: dot -Tsvg)\n", *dotPath)
	}

	fmt.Printf("explored %d/%d configurations (budget %.0fk %s req/s)\n",
		res.Evaluated, res.Total, *budget/1000, *app)
	fmt.Printf("safest configurations under budget: %d\n", len(res.Safest))
	for _, c := range res.SafestConfigs() {
		idx := c.ID
		fmt.Printf("  * %-55s %9.1fk req/s\n", c.Label(), res.Measurements[idx].Perf/1000)
	}
}
