// Command flexos-explore runs FlexOS' partial safety ordering (§5) over
// the paper's 80-configuration design space for Redis or Nginx — or the
// larger 320-point cross-application space — measuring configurations
// in parallel, pruning monotonically, and printing the safest
// configurations that satisfy a performance budget (the workflow behind
// Figure 8).
//
// With -scenario it swaps the single-metric benchmark for a workload of
// the multi-metric scenario library (Redis GET/SET mixes and
// pipelining, Nginx keepalive mixes, iPerf stream counts): every
// configuration then carries a full metric vector, the budget applies
// to the metric chosen with -metric, and -pareto prints the safety ×
// throughput × memory frontier.
//
// Usage:
//
//	flexos-explore -app redis -budget 500000
//	flexos-explore -app nginx -budget 400000 -exhaustive -v
//	flexos-explore -app cross -workers 8 -progress
//	flexos-explore -scenario redis-get90 -pareto
//	flexos-explore -scenario nginx-keep75 -metric p99 -budget 3
//	flexos-explore -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"flexos"
)

func main() {
	app := flag.String("app", "redis", "space to explore: redis | nginx | cross (both apps x {mpk, ept})")
	scenarioName := flag.String("scenario", "", "explore under a multi-metric scenario workload instead of -app (see -list)")
	metricName := flag.String("metric", "throughput", "budget metric with -scenario: throughput | p50 | p99 | maxlat | mem | boot")
	pareto := flag.Bool("pareto", false, "print the safety x throughput x memory Pareto frontier (implies -exhaustive)")
	list := flag.Bool("list", false, "list the scenario library and exit")
	budget := flag.Float64("budget", 500_000, "budget on the chosen metric (floor for throughput, ceiling for latency/mem/boot)")
	requests := flag.Int("requests", 200, "requests per measurement (-app spaces; scenarios use -ops)")
	ops := flag.Int("ops", 0, "operations per scenario measurement (<= 0: the scenario's default)")
	workers := flag.Int("workers", 0, "concurrent measurement workers (<= 0: GOMAXPROCS)")
	progress := flag.Bool("progress", false, "report exploration progress on stderr")
	exhaustive := flag.Bool("exhaustive", false, "measure every configuration (disable monotonic pruning)")
	verbose := flag.Bool("v", false, "print every measured configuration")
	dotPath := flag.String("dot", "", "write the labeled safety poset as a Graphviz file (Fig. 8 visual)")
	flag.Parse()

	if *list {
		fmt.Println("scenario library:")
		for _, sc := range flexos.Scenarios() {
			quadNote := ""
			if _, ok := sc.Quad(); !ok {
				quadNote = "  (bench-only: no Fig6 space)"
			}
			fmt.Printf("  %-16s %s%s\n", sc.Name(), sc.Description(), quadNote)
		}
		return
	}

	if *scenarioName != "" {
		exploreScenario(*scenarioName, *metricName, *budget, *ops, *workers, *progress, *exhaustive, *pareto, *verbose, *dotPath)
		return
	}
	if *pareto {
		// The scalar -app measures only throughput; a frontier over the
		// latency/memory axes needs the full vectors of a scenario run.
		fmt.Fprintln(os.Stderr, "flexos-explore: -pareto requires -scenario (only scenario workloads measure the memory axis)")
		os.Exit(2)
	}

	measureRedis := func(c *flexos.ExploreConfig) (float64, error) {
		res, err := flexos.BenchmarkRedis(c.Spec(flexos.TCBLibs()), *requests)
		if err != nil {
			return 0, err
		}
		return res.ReqPerSec, nil
	}
	measureNginx := func(c *flexos.ExploreConfig) (float64, error) {
		res, err := flexos.BenchmarkNginx(c.Spec(flexos.TCBLibs()), *requests)
		if err != nil {
			return 0, err
		}
		return res.ReqPerSec, nil
	}

	var cfgs []*flexos.ExploreConfig
	var measure func(*flexos.ExploreConfig) (float64, error)
	switch *app {
	case "redis":
		cfgs = flexos.Fig6Space(flexos.RedisComponents())
		measure = measureRedis
	case "nginx":
		cfgs = flexos.Fig6Space(flexos.NginxComponents())
		measure = measureNginx
	case "cross":
		cfgs = flexos.CrossAppSpace(nil, flexos.RedisComponents(), flexos.NginxComponents())
		// Dispatch on the application the configuration contains; the
		// two sub-spaces are incomparable and explore independently.
		measure = func(c *flexos.ExploreConfig) (float64, error) {
			for _, comp := range c.Components() {
				switch comp {
				case flexos.LibRedis:
					return measureRedis(c)
				case flexos.LibNginx:
					return measureNginx(c)
				}
			}
			return 0, fmt.Errorf("config %d contains no known application", c.ID)
		}
	default:
		fmt.Fprintf(os.Stderr, "flexos-explore: unknown app %q\n", *app)
		os.Exit(2)
	}

	opts := flexos.ExploreOptions{Workers: *workers, Prune: !*exhaustive}
	if *progress {
		opts.Progress = progressBar
	}
	res, err := flexos.ExploreWith(cfgs, measure, *budget, opts)
	if err != nil {
		if *progress {
			fmt.Fprintln(os.Stderr)
		}
		fmt.Fprintln(os.Stderr, "flexos-explore:", err)
		os.Exit(1)
	}

	if *verbose {
		printAll(res)
	}
	writeDOT(*dotPath, res, *app)

	fmt.Printf("explored %d/%d configurations (budget %.0fk %s req/s)\n",
		res.Evaluated, res.Total, *budget/1000, *app)
	fmt.Printf("safest configurations under budget: %d\n", len(res.Safest))
	for _, i := range res.Safest {
		m := res.Measurements[i]
		fmt.Printf("  * %-55s %9.1fk req/s\n", m.Config.Label(), m.Perf/1000)
	}
}

// exploreScenario runs the multi-metric path: a scenario workload over
// the application's Figure-6 space, budgeting on the chosen metric.
func exploreScenario(name, metricName string, budget float64, ops, workers int, progress, exhaustive, pareto, verbose bool, dotPath string) {
	sc, ok := flexos.ScenarioByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "flexos-explore: unknown scenario %q (try -list)\n", name)
		os.Exit(2)
	}
	if ops > 0 {
		sc = sc.WithOps(ops)
	}
	metric, err := flexos.ParseMetric(metricName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexos-explore:", err)
		os.Exit(2)
	}

	opts := flexos.ExploreOptions{Workers: workers, Prune: !exhaustive && !pareto}
	if progress {
		opts.Progress = progressBar
	}
	res, err := flexos.ExploreScenario(sc, metric, budget, opts)
	if err != nil {
		if progress {
			fmt.Fprintln(os.Stderr)
		}
		fmt.Fprintln(os.Stderr, "flexos-explore:", err)
		os.Exit(1)
	}

	if verbose {
		printAll(res)
	}
	writeDOT(dotPath, res, sc.Name())
	if pareto {
		printPareto(res)
	}

	fmt.Printf("scenario %s: explored %d/%d configurations (budget %.4g %s on %s)\n",
		sc.Name(), res.Evaluated, res.Total, budget, metric.Unit(), metric)
	fmt.Printf("safest configurations under budget: %d\n", len(res.Safest))
	for _, i := range res.Safest {
		m := res.Measurements[i]
		fmt.Printf("  * %-55s %s\n", m.Config.Label(), m.Metrics)
	}
}

func progressBar(done, total int) {
	fmt.Fprintf(os.Stderr, "\rexplored %d/%d configurations", done, total)
	if done == total {
		fmt.Fprintln(os.Stderr)
	}
}

func printAll(res *flexos.ExploreResult) {
	sorted := make([]int, 0, len(res.Measurements))
	for i := range res.Measurements {
		sorted = append(sorted, i)
	}
	sort.Slice(sorted, func(a, b int) bool {
		if res.Measurements[sorted[a]].Perf != res.Measurements[sorted[b]].Perf {
			return res.Measurements[sorted[a]].Perf < res.Measurements[sorted[b]].Perf
		}
		return sorted[a] < sorted[b]
	})
	for _, i := range sorted {
		m := res.Measurements[i]
		state := "measured"
		if m.Pruned {
			state = "pruned"
		} else if m.Cached {
			state = "cached"
		}
		fmt.Printf("%-9s %12.1f  %s\n", state, m.Perf, m.Config.Label())
	}
	fmt.Println("---")
}

func printPareto(res *flexos.ExploreResult) {
	front := res.ParetoFront()
	fmt.Printf("Pareto frontier (safety x throughput x memory): %d configurations\n", len(front))
	for _, i := range front {
		m := res.Measurements[i]
		fmt.Printf("  - %-55s %s\n", m.Config.Label(), m.Metrics)
	}
}

func writeDOT(path string, res *flexos.ExploreResult, name string) {
	if path == "" {
		return
	}
	if err := os.WriteFile(path, []byte(res.DOT(name)), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "flexos-explore:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote safety poset to %s (render with: dot -Tsvg)\n", path)
}
