// Command flexos-merge combines the result stores of N sharded
// exploration runs (flexos-explore -shard i/n -cache <dir>) into one
// merged store, validating that the shards are disjoint: a key present
// in two inputs must carry the byte-identical metrics vector in both
// (canonical twins across shards are deduplicated; a conflicting value
// aborts the merge, since it means the shards were measured by
// disagreeing benchmarks). The merged store is written in sorted key
// order, so its bytes are identical however the space was sharded.
//
// With -app or -scenario it then re-runs the full (unsharded)
// exploration against the merged store — ranking, pruning and Pareto
// extraction over the union — and prints the standard report on
// stdout. Because the store covers every configuration the unsharded
// run would measure, that report is byte-identical to a cold
// `flexos-explore` run with the same flags; the run statistics on
// stderr show the cache serving it.
//
// Usage:
//
//	flexos-explore -app redis -shard 0/3 -cache shards/0
//	flexos-explore -app redis -shard 1/3 -cache shards/1
//	flexos-explore -app redis -shard 2/3 -cache shards/2
//	flexos-merge -out merged shards/0 shards/1 shards/2
//	flexos-merge -out merged -app redis shards/0 shards/1 shards/2
//	flexos-merge -out merged -scenario redis-get90 -pareto shards/*
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"flexos"
	"flexos/internal/cli"
)

func main() {
	out := flag.String("out", "", "directory to write the merged store to (must not already contain a store)")
	app := flag.String("app", "", "after merging, re-run this scalar space over the merged store: redis | nginx | cross")
	scenarioName := flag.String("scenario", "", "after merging, re-run this scenario workload over the merged store")
	metricName := flag.String("metric", "throughput", "ranking metric for the re-run, and the dimension plain-number -budget values bound")
	var budgets cli.BudgetFlags
	flag.Var(&budgets, "budget", "budget constraint for the re-run; repeatable, same syntax as flexos-explore")
	requests := flag.Int("requests", 200, "requests per measurement for -app re-runs (must match the shard runs)")
	ops := flag.Int("ops", 0, "operations per scenario measurement (<= 0: the scenario's default; must match the shard runs)")
	workers := flag.Int("workers", 0, "concurrent measurement workers for the re-run (<= 0: GOMAXPROCS)")
	pareto := flag.Bool("pareto", false, "print the Pareto frontier in the re-run (implies -exhaustive)")
	exhaustive := flag.Bool("exhaustive", false, "measure every configuration in the re-run (disable monotonic pruning)")
	flag.Parse()

	if *out == "" {
		fatal(2, errors.New("-out is required"))
	}
	shards := flag.Args()
	if len(shards) == 0 {
		fatal(2, errors.New("no shard stores given (pass the -cache directories of the shard runs)"))
	}

	n, err := flexos.MergeStores(*out, shards...)
	if err != nil {
		// A conflict names the colliding record and both sources;
		// spell it out so the user knows which shard dirs disagree
		// (and on what) rather than just that "a merge failed".
		var ce *flexos.MergeConflictError
		if errors.As(err, &ce) {
			fmt.Fprintf(os.Stderr, "flexos-merge: conflicting measurement for record %q (addr %s):\n", ce.Key, ce.Addr)
			fmt.Fprintf(os.Stderr, "  %s: %v\n", ce.DirA, ce.A)
			fmt.Fprintf(os.Stderr, "  %s: %v\n", ce.DirB, ce.B)
			fatal(1, errors.New("the shard stores were produced by disagreeing measurements; re-run the shards with identical flags"))
		}
		fatal(1, err)
	}
	fmt.Fprintf(os.Stderr, "flexos-merge: merged %d stores into %s (%d records)\n", len(shards), *out, n)

	if *app == "" && *scenarioName == "" {
		return
	}

	// Re-run the full exploration over the merged store: ranking,
	// pruning and Pareto extraction over the union. The store is
	// opened read-only — the merge is the whole output; a miss here
	// (a shard run with mismatched flags) measures fresh rather than
	// silently growing the merged store.
	metric, err := flexos.ParseMetric(*metricName)
	if err != nil {
		fatal(2, err)
	}
	constraints, err := cli.ParseBudgets(budgets, metric)
	if err != nil {
		fatal(2, err)
	}
	sel := cli.Selection{App: *app, Scenario: *scenarioName, Requests: *requests, Ops: *ops}
	q, title, scenarioMode, err := sel.Build()
	if err != nil {
		fatal(2, err)
	}
	if err := cli.ValidateScalar(scenarioMode, metric, constraints, *pareto); err != nil {
		fatal(2, err)
	}
	for _, c := range constraints {
		q.Constrain(c.Metric, c.Op, c.Bound)
	}
	q.RankBy(metric).Workers(*workers).Prune(!*exhaustive && !*pareto).CacheReadOnly(*out)

	res, err := q.Run(context.Background())
	noFeasible := errors.Is(err, flexos.ErrNoFeasible)
	if err != nil && !noFeasible {
		fatal(1, err)
	}
	cli.PrintReport(os.Stdout, title, res, constraints, scenarioMode, *pareto, noFeasible)
	cli.PrintStats(os.Stderr, "flexos-merge", res)
}

func fatal(code int, err error) {
	fmt.Fprintln(os.Stderr, "flexos-merge:", err)
	os.Exit(code)
}
