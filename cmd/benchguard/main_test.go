package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestComputeRatios(t *testing.T) {
	ratios, ref, err := computeRatios(map[string]float64{
		reference:            100,
		"BenchmarkQueryFast": 50,
		"BenchmarkQuerySlow": 250,
	}, "^BenchmarkQuery")
	if err != nil {
		t.Fatal(err)
	}
	if ref != 100 {
		t.Fatalf("reference = %v, want 100", ref)
	}
	if got := ratios["BenchmarkQueryFast"]; got != 0.5 {
		t.Errorf("fast ratio = %v, want 0.5", got)
	}
	if got := ratios["BenchmarkQuerySlow"]; got != 2.5 {
		t.Errorf("slow ratio = %v, want 2.5", got)
	}
	if _, ok := ratios[reference]; ok {
		t.Error("reference must not appear among the guarded ratios")
	}
}

func TestComputeRatiosMissingReference(t *testing.T) {
	_, _, err := computeRatios(map[string]float64{"BenchmarkQueryFast": 50}, "^BenchmarkQuery")
	if err == nil || !strings.Contains(err.Error(), reference) {
		t.Fatalf("want missing-reference error naming %s, got %v", reference, err)
	}
}

// A pattern that matches only the reference — the shape of a stale
// pattern after a benchmark rename — must be an error, not a silently
// empty (and therefore always-green) baseline.
func TestComputeRatiosZeroGuarded(t *testing.T) {
	_, _, err := computeRatios(map[string]float64{reference: 100}, "^BenchmarkQueryGone")
	if err == nil {
		t.Fatal("want error when the pattern guards no benchmarks, got nil")
	}
	if !strings.Contains(err.Error(), "nothing to guard") {
		t.Fatalf("error should say nothing is guarded, got: %v", err)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.txt")
	ratios := map[string]float64{
		"BenchmarkQueryA": 1.25,
		"BenchmarkQueryB": 0.5,
	}
	nsop := map[string]float64{
		"BenchmarkQueryA": 125,
		"BenchmarkQueryB": 50,
		reference:         100,
	}
	if err := writeBaseline(path, ratios, nsop, 100); err != nil {
		t.Fatal(err)
	}
	got, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ratios) {
		t.Fatalf("read %d entries, want %d", len(got), len(ratios))
	}
	for name, want := range ratios {
		if got[name] != want {
			t.Errorf("%s = %v, want %v", name, got[name], want)
		}
	}
}

// TestRecordRoundTripMatchesBaseline writes a baseline and its record
// from the same ratios, the way -update does, and requires verifyRecord
// to accept the pair.
func TestRecordRoundTripMatchesBaseline(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "baseline.txt")
	recPath := filepath.Join(dir, "record.json")
	ratios := map[string]float64{
		"BenchmarkQueryA":          1.23456, // exercises the %.4f rounding
		"BenchmarkQuerySyntheticB": 0.5,
	}
	nsop := map[string]float64{
		"BenchmarkQueryA":          123456,
		"BenchmarkQuerySyntheticB": 50000,
		reference:                  100000,
	}
	if err := writeBaseline(basePath, ratios, nsop, 100000); err != nil {
		t.Fatal(err)
	}
	if err := writeRecord(recPath, ratios, nsop, 100000); err != nil {
		t.Fatal(err)
	}
	baseline, err := readBaseline(basePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := verifyRecord(recPath, baseline); err != nil {
		t.Fatalf("fresh record rejected: %v", err)
	}
}

// TestVerifyRecordDetectsStaleness covers every staleness shape the
// guard must catch: a missing record file, a benchmark the baseline
// gained, one it lost, a drifted ratio, and a foreign record ID.
func TestVerifyRecordDetectsStaleness(t *testing.T) {
	dir := t.TempDir()
	recPath := filepath.Join(dir, "record.json")
	ratios := map[string]float64{"BenchmarkQueryA": 1.5}
	nsop := map[string]float64{"BenchmarkQueryA": 150, reference: 100}

	if err := verifyRecord(filepath.Join(dir, "absent.json"), ratios); err == nil {
		t.Fatal("missing record must fail verification")
	}
	if err := writeRecord(recPath, ratios, nsop, 100); err != nil {
		t.Fatal(err)
	}

	cases := map[string]map[string]float64{
		"baseline gained a benchmark": {"BenchmarkQueryA": 1.5, "BenchmarkQueryNew": 2},
		"baseline lost a benchmark":   {},
		"ratio drifted":               {"BenchmarkQueryA": 1.6},
	}
	for name, baseline := range cases {
		if err := verifyRecord(recPath, baseline); err == nil {
			t.Errorf("%s: verifyRecord accepted a stale record", name)
		} else if !strings.Contains(err.Error(), "stale") && !strings.Contains(err.Error(), "missing") {
			t.Errorf("%s: error does not name staleness: %v", name, err)
		}
	}

	foreign := strings.Replace(recPath, "record.json", "foreign.json", 1)
	data := `{"id":"BENCH_9999","reference":"` + reference + `","benchmarks":[{"name":"BenchmarkQueryA","ratio":1.5}]}`
	if err := os.WriteFile(foreign, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := verifyRecord(foreign, ratios); err == nil {
		t.Error("foreign record ID must fail verification")
	}
}

func TestNormalizedTableListsEveryBenchmark(t *testing.T) {
	out := normalizedTable(
		map[string]float64{"BenchmarkQueryA": 1.2, "BenchmarkQueryNew": 0.9},
		map[string]float64{"BenchmarkQueryA": 1.0},
	)
	if !strings.Contains(out, "BenchmarkQueryA") || !strings.Contains(out, "BenchmarkQueryNew") {
		t.Fatalf("table missing rows:\n%s", out)
	}
	if !strings.Contains(out, "baseline none") {
		t.Fatalf("unpinned benchmark should render baseline none:\n%s", out)
	}
}
