// Command benchguard is the benchmark-regression gate for the
// exploration engine and the trace-driven serving path: it runs the
// BenchmarkQuery* and BenchmarkServeTrace* benchmarks and fails when
// any of them slowed down by more than the tolerance (default 20%)
// against the checked-in baseline.
//
// Raw ns/op is meaningless across machines, so the guard normalizes
// twice: every benchmark is expressed as a ratio to the single-worker
// reference sweep (BenchmarkQueryFig6Sequential) measured in the
// same run, and the whole suite runs under GOMAXPROCS=1 so parallel
// speedup — which scales with the host's core count — cannot leak into
// the ratios. What remains is the engine's own overhead — worker-pool
// coordination, memoization, pruning bookkeeping — relative to the
// cost of raw sequential measurement, which is what must not regress.
// Absolute ns/op is recorded in the baseline as a comment for human
// eyes only.
//
// The guard also maintains the repo's perf trajectory: -update writes
// the normalized table a second time as a PR-numbered JSON record
// (BENCH_0008.json) meant to be checked in next to the baseline, and
// guard mode fails when that record is missing or stale — i.e. when
// someone moved baseline.txt without regenerating the record. -json
// additionally dumps the *current run's* normalized table, which CI
// uploads as a per-commit artifact.
//
// Usage:
//
//	go run ./cmd/benchguard            # compare against the baseline
//	go run ./cmd/benchguard -update    # rewrite baseline + JSON record
//	go run ./cmd/benchguard -tolerance 0.3 -benchtime 2s
//	go run ./cmd/benchguard -json bench-table.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const reference = "BenchmarkQueryFig6Sequential"

// recordID names the checked-in perf-trajectory record this tree
// maintains; bump it when a PR re-baselines the engine benchmarks so
// the repo history keeps one record per baseline generation.
const recordID = "BENCH_0009"

func main() {
	update := flag.Bool("update", false, "rewrite the baseline file from this run")
	tolerance := flag.Float64("tolerance", 0.20, "maximum allowed relative slowdown vs baseline")
	benchtime := flag.String("benchtime", "1s", "-benchtime passed to go test")
	count := flag.Int("count", 3, "-count passed to go test; the guard keeps each benchmark's fastest run")
	// BenchmarkQueryParallelSpeedup is deliberately not guarded: it is
	// a speedup *meter* that times the sequential and parallel engines
	// back to back, so its ns/op spans two runs and carries twice the
	// scheduling variance while adding no coverage beyond the
	// Fig6Sequential / Fig6Parallel pair.
	pattern := flag.String("bench", "^BenchmarkQuery(Fig6|CrossAppSpace|MemoizedSweep|Synthetic|Attack)|^BenchmarkServeTrace", "benchmark pattern to guard")
	baseline := flag.String("baseline", filepath.Join("cmd", "benchguard", "baseline.txt"), "baseline file")
	record := flag.String("record", recordID+".json", "checked-in JSON record of the baseline's normalized table (written by -update, verified fresh otherwise; empty disables)")
	jsonOut := flag.String("json", "", "write this run's normalized table to this JSON file (CI artifact)")
	flag.Parse()

	nsop, err := runBenchmarks(*pattern, *benchtime, *count)
	if err != nil {
		fatal(err)
	}
	ratios, ref, err := computeRatios(nsop, *pattern)
	if err != nil {
		fatal(err)
	}
	if *jsonOut != "" {
		if err := writeRecord(*jsonOut, ratios, nsop, ref); err != nil {
			fatal(err)
		}
		fmt.Printf("benchguard: wrote %s\n", *jsonOut)
	}

	if *update {
		if err := writeBaseline(*baseline, ratios, nsop, ref); err != nil {
			fatal(err)
		}
		fmt.Printf("benchguard: wrote %s (%d benchmarks)\n", *baseline, len(ratios))
		if *record != "" {
			if err := writeRecord(*record, ratios, nsop, ref); err != nil {
				fatal(err)
			}
			fmt.Printf("benchguard: wrote %s\n", *record)
		}
		return
	}

	want, err := readBaseline(*baseline)
	if err != nil {
		fatal(fmt.Errorf("%w (run `go run ./cmd/benchguard -update` to create it)", err))
	}
	if *record != "" {
		if err := verifyRecord(*record, want); err != nil {
			fatal(fmt.Errorf("%w (run `go run ./cmd/benchguard -update` to regenerate it)", err))
		}
		fmt.Printf("benchguard: %s matches the baseline\n", *record)
	}
	var failures []string
	for name, base := range want {
		got, ok := ratios[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: benchmark disappeared", name))
			continue
		}
		slowdown := got/base - 1
		status := "ok"
		if slowdown > *tolerance {
			status = "REGRESSION"
			failures = append(failures,
				fmt.Sprintf("%s: ratio %.3f vs baseline %.3f (%+.1f%% > %.0f%% tolerance)",
					name, got, base, slowdown*100, *tolerance*100))
		}
		fmt.Printf("benchguard: %-34s ratio %.3f (baseline %.3f, %+.1f%%) %s\n",
			name, got, base, slowdown*100, status)
	}
	for name := range ratios {
		if _, ok := want[name]; !ok {
			fmt.Printf("benchguard: %-34s ratio %.3f (no baseline; run -update to pin)\n", name, ratios[name])
		}
	}
	if len(failures) > 0 {
		fmt.Fprintln(os.Stderr, "benchguard: FAIL")
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		// Repeat the whole normalized table on stderr so a CI failure
		// log carries the full picture, not just the regressed rows.
		fmt.Fprint(os.Stderr, normalizedTable(ratios, want))
		os.Exit(1)
	}
	fmt.Println("benchguard: PASS")
}

// computeRatios normalizes every guarded benchmark to the sequential
// reference measured in the same run. A pattern that matched nothing
// beyond the reference is an error — most often a stale pattern after
// a benchmark rename — because pinning (or passing) an empty baseline
// would disable the regression gate while reporting success.
func computeRatios(nsop map[string]float64, pattern string) (map[string]float64, float64, error) {
	ref, ok := nsop[reference]
	if !ok || ref <= 0 {
		return nil, 0, fmt.Errorf("reference %s missing from benchmark output", reference)
	}
	ratios := map[string]float64{}
	for name, v := range nsop {
		if name != reference {
			ratios[name] = v / ref
		}
	}
	if len(ratios) == 0 {
		return nil, 0, fmt.Errorf("pattern %q matched no benchmark beyond the reference %s: nothing to guard (stale -bench pattern?)", pattern, reference)
	}
	return ratios, ref, nil
}

// normalizedTable renders every measured ratio next to its baseline,
// sorted by name, for the failure log.
func normalizedTable(ratios, want map[string]float64) string {
	names := make([]string, 0, len(ratios))
	for name := range ratios {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("  normalized table (ns/op ratio to " + reference + "):\n")
	for _, name := range names {
		base := "none"
		if v, ok := want[name]; ok {
			base = fmt.Sprintf("%.3f", v)
		}
		fmt.Fprintf(&b, "  %-34s ratio %.3f baseline %s\n", name, ratios[name], base)
	}
	return b.String()
}

// runBenchmarks executes the benchmark suite count times and parses
// ns/op per benchmark (the -N CPU suffix is stripped), keeping the
// fastest of the repeated runs — the standard noise-robust statistic,
// which keeps the ratios stable on contended CI machines.
func runBenchmarks(pattern, benchtime string, count int) (map[string]float64, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern,
		"-benchtime", benchtime, "-count", fmt.Sprint(count), ".")
	// Single-threaded on every machine: parallel speedup scales with the
	// core count and would make the ratios machine-dependent.
	cmd.Env = append(os.Environ(), "GOMAXPROCS=1")
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("benchguard: go test: %w", err)
	}
	nsop := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// "BenchmarkX-8  123  456789 ns/op ..."
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		idx := -1
		for i, f := range fields {
			if f == "ns/op" {
				idx = i - 1
				break
			}
		}
		if idx < 1 {
			continue
		}
		v, err := strconv.ParseFloat(fields[idx], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		if old, ok := nsop[name]; !ok || v < old {
			nsop[name] = v
		}
	}
	if len(nsop) == 0 {
		return nil, fmt.Errorf("benchguard: no benchmarks matched %q", pattern)
	}
	return nsop, nil
}

func writeBaseline(path string, ratios, nsop map[string]float64, ref float64) error {
	names := make([]string, 0, len(ratios))
	for name := range ratios {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("# benchguard baseline: ns/op ratio of each guarded benchmark to\n")
	fmt.Fprintf(&b, "# %s, regenerated with `go run ./cmd/benchguard -update`.\n", reference)
	fmt.Fprintf(&b, "# reference absolute: %.0f ns/op (informational, machine-dependent)\n", ref)
	for _, name := range names {
		fmt.Fprintf(&b, "%s %.4f # %.0f ns/op\n", name, ratios[name], nsop[name])
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// benchRecord is the JSON shape of the checked-in perf-trajectory
// record and of the per-run -json artifact: the full normalized table
// plus the machine-dependent absolutes for human eyes.
type benchRecord struct {
	ID        string `json:"id"`
	Reference string `json:"reference"`
	// ReferenceNsOp is informational and machine-dependent; only the
	// ratios are comparable across machines.
	ReferenceNsOp float64    `json:"reference_ns_op"`
	Benchmarks    []benchRow `json:"benchmarks"`
}

type benchRow struct {
	Name  string  `json:"name"`
	Ratio float64 `json:"ratio"`
	NsOp  float64 `json:"ns_op"`
}

// writeRecord serializes a normalized table as a benchRecord. Ratios
// are rounded exactly like the textual baseline's %.4f, so a record
// written in the same -update run as a baseline verifies as fresh
// byte-for-byte on the ratio values.
func writeRecord(path string, ratios, nsop map[string]float64, ref float64) error {
	names := make([]string, 0, len(ratios))
	for name := range ratios {
		names = append(names, name)
	}
	sort.Strings(names)
	rec := benchRecord{ID: recordID, Reference: reference, ReferenceNsOp: ref}
	for _, name := range names {
		rec.Benchmarks = append(rec.Benchmarks, benchRow{
			Name:  name,
			Ratio: roundRatio(ratios[name]),
			NsOp:  nsop[name],
		})
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// verifyRecord checks the checked-in record against the baseline: it
// must exist, carry this tree's record ID and reference, and pin
// exactly the baseline's benchmark set at exactly the baseline's
// ratios. Any mismatch means the record predates the current baseline
// — stale — and the guard fails rather than letting the trajectory
// silently drift from the gate.
func verifyRecord(path string, baseline map[string]float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("benchguard: perf record: %w", err)
	}
	var rec benchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return fmt.Errorf("benchguard: perf record %s: %w", path, err)
	}
	if rec.ID != recordID {
		return fmt.Errorf("benchguard: perf record %s has id %q, want %q", path, rec.ID, recordID)
	}
	if rec.Reference != reference {
		return fmt.Errorf("benchguard: perf record %s normalizes to %q, want %q", path, rec.Reference, reference)
	}
	got := map[string]float64{}
	for _, row := range rec.Benchmarks {
		got[row.Name] = row.Ratio
	}
	for name, base := range baseline {
		r, ok := got[name]
		if !ok {
			return fmt.Errorf("benchguard: perf record %s is stale: missing %s", path, name)
		}
		if r != roundRatio(base) {
			return fmt.Errorf("benchguard: perf record %s is stale: %s ratio %.4f, baseline %.4f", path, name, r, base)
		}
	}
	for name := range got {
		if _, ok := baseline[name]; !ok {
			return fmt.Errorf("benchguard: perf record %s is stale: extra benchmark %s", path, name)
		}
	}
	return nil
}

// roundRatio mirrors the baseline file's %.4f precision.
func roundRatio(r float64) float64 {
	v, _ := strconv.ParseFloat(fmt.Sprintf("%.4f", r), 64)
	return v
}

func readBaseline(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for lineNo, line := range strings.Split(string(data), "\n") {
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("benchguard: %s:%d: want \"name ratio\", got %q", path, lineNo+1, line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("benchguard: %s:%d: %v", path, lineNo+1, err)
		}
		out[fields[0]] = v
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
