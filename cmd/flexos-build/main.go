// Command flexos-build is the FlexOS toolchain front-end: it reads a
// build-time safety configuration file (the format of §3 of the paper),
// materializes it against the shipped component catalog, runs the
// build-time instantiation (backend selection, gate binding, layout,
// hardening), and prints the resulting image report — compartments, keys,
// gate bindings with their costs, TCB inventory and DSS overhead.
//
// Usage:
//
//	flexos-build -config image.yaml
//	flexos-build -example        # build the paper's §3 example config
package main

import (
	"flag"
	"fmt"
	"os"

	"flexos"
)

// exampleConfig is the §3 configuration adapted to the shipped catalog.
const exampleConfig = `compartments:
- comp1:
    mechanism: intel-mpk
    default: True
- comp2:
    mechanism: intel-mpk
    hardening: [cfi, asan]
libraries:
- libredis: comp1
- lwip: comp2
gate: full
sharing: dss
`

func main() {
	configPath := flag.String("config", "", "path to a FlexOS configuration file")
	example := flag.Bool("example", false, "build the paper's example configuration")
	showConfig := flag.Bool("print-config", false, "echo the normalized configuration")
	flag.Parse()

	text := exampleConfig
	if *configPath != "" {
		raw, err := os.ReadFile(*configPath)
		if err != nil {
			fatal(err)
		}
		text = string(raw)
	} else if !*example {
		fmt.Fprintln(os.Stderr, "flexos-build: need -config FILE or -example")
		flag.Usage()
		os.Exit(2)
	}

	cfg, err := flexos.ParseConfig(text)
	if err != nil {
		fatal(err)
	}
	if *showConfig {
		fmt.Print(flexos.RenderConfig(cfg))
		fmt.Println("---")
	}
	cat := flexos.FullCatalog()
	spec, err := flexos.SpecFromConfig(cfg, cat)
	if err != nil {
		fatal(err)
	}
	img, err := flexos.Build(cat, spec)
	if err != nil {
		fatal(err)
	}
	fmt.Print(img.Report().String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flexos-build:", err)
	os.Exit(1)
}
