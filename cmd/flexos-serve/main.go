// Command flexos-serve runs the exploration service: a long-running
// HTTP daemon executing flexos-explore-shaped requests on the shared
// engine over one process-wide two-tier memo, with single-flight
// coalescing of identical concurrent requests (see internal/serve).
//
// Endpoints:
//
//	POST /v1/explore          JSON request (see internal/cli.Request);
//	                          answers a complete JSON report, or NDJSON
//	                          with {"stream": true}
//	GET  /healthz             liveness
//	GET  /statsz              serving statistics (coalescing, hit
//	                          rates, cluster dispatch counters)
//	POST /v1/cluster/join     worker registration (coordinator mode)
//	GET  /v1/cluster/members  fleet membership (coordinator mode)
//	GET  /v1/store/pull       store-sync log pages (any daemon)
//
// Usage:
//
//	flexos-serve -addr 127.0.0.1:8077 -cache .serve-store
//	curl -s http://127.0.0.1:8077/healthz
//	curl -s -X POST -d '{"scenario":"redis-get90"}' http://127.0.0.1:8077/v1/explore
//	curl -sN -X POST -d '{"app":"cross","stream":true}' http://127.0.0.1:8077/v1/explore
//	flexos-explore -remote http://127.0.0.1:8077 -scenario redis-get90
//
// Cluster mode turns N daemons into one logical engine. One daemon
// coordinates (-coordinator): it splits each request into disjoint
// shard sub-requests, routes them over a consistent-hash ring of
// workers, merges the returned records into its memo, and re-ranks
// locally — answering bytes identical to a single-node run at any
// worker count, including when a worker dies mid-request (its shard
// re-dispatches, bounded, then falls back inline). The others join it
// as workers (-join, with the URL they advertise back via
// -advertise); -pull keeps any daemon's store warm from a peer's:
//
//	flexos-serve -addr 127.0.0.1:8070 -coordinator -cache .coord-store
//	flexos-serve -addr 127.0.0.1:8071 -join http://127.0.0.1:8070 -advertise http://127.0.0.1:8071
//	flexos-serve -addr 127.0.0.1:8072 -join http://127.0.0.1:8070 -advertise http://127.0.0.1:8072 -pull http://127.0.0.1:8071
//	flexos-explore -remote http://127.0.0.1:8070 -scenario redis-get90
//
// The served report is byte-identical to what the same request run
// locally would print — flexos-explore -remote just relays it.
// SIGINT/SIGTERM shut the daemon down gracefully: in-flight runs are
// canceled and the persistent store is flushed and closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flexos/internal/cluster"
	"flexos/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8077", "listen address")
	workers := flag.Int("workers", 0, "engine workers per exploration for requests that do not name their own (<= 0: GOMAXPROCS)")
	maxFlights := flag.Int("max-flights", 0, "concurrent engine runs; excess requests queue (<= 0: GOMAXPROCS)")
	cacheDir := flag.String("cache", "", "persistent result-store directory backing the shared memo (measurements survive restarts)")
	cacheRO := flag.Bool("cache-readonly", false, "open -cache read-only: load from the store, never write to it")
	coordinator := flag.Bool("coordinator", false, "coordinate a cluster: fan requests out to joined workers and merge byte-identically")
	fanout := flag.Int("fanout", 0, "shard sub-requests per coordinated request (<= 0: the live worker count)")
	joinURL := flag.String("join", "", "register with the coordinator at this base URL (worker mode) and keep re-announcing")
	advertise := flag.String("advertise", "", "base URL this daemon is reachable at, announced to the coordinator (required with -join)")
	pullURL := flag.String("pull", "", "peer base URL to sync store records from (default with -join: the coordinator)")
	pullInterval := flag.Duration("pull-interval", 2*time.Second, "store-sync pull period")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "coordinator health-probe period")
	callTimeout := flag.Duration("call-timeout", 2*time.Minute, "coordinator per-shard worker call timeout (0: none); a timed-out shard re-dispatches")
	flag.Parse()

	if *cacheRO && *cacheDir == "" {
		fatal(errors.New("-cache-readonly requires -cache"))
	}
	if *joinURL != "" && *advertise == "" {
		fatal(errors.New("-join requires -advertise: the coordinator needs a URL to dispatch back to"))
	}
	if *coordinator && *joinURL != "" {
		fatal(errors.New("-coordinator and -join are exclusive: a coordinator dispatches, a worker answers"))
	}

	cfg := serve.Config{
		Workers:       *workers,
		MaxFlights:    *maxFlights,
		CacheDir:      *cacheDir,
		CacheReadOnly: *cacheRO,
		SelfURL:       *advertise,
	}
	if *coordinator {
		cfg.Cluster = cluster.New(cluster.Config{
			Fanout:         *fanout,
			HealthInterval: *healthInterval,
			CallTimeout:    *callTimeout,
		})
		cfg.SelfURL = "http://" + *addr
	}
	srv, err := serve.New(cfg)
	if err != nil {
		fatal(err)
	}

	// No WriteTimeout: NDJSON streams legitimately stay open for the
	// length of an exploration. Slowloris-style clients are bounded by
	// the header/body read deadlines instead.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	mode := "standalone"
	if *coordinator {
		mode = "coordinator"
	} else if *joinURL != "" {
		mode = "worker of " + *joinURL
	}
	fmt.Fprintf(os.Stderr, "flexos-serve: listening on %s (cache %q, %s)\n", *addr, *cacheDir, mode)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Worker mode: announce to the coordinator (idempotent heartbeat —
	// re-registers after a coordinator restart, resurrects this worker
	// after it was struck dead) and warm-start from a peer's store.
	if *joinURL != "" {
		go cluster.Announce(ctx, *joinURL, *advertise, *healthInterval, func(err error) {
			fmt.Fprintln(os.Stderr, "flexos-serve: announce:", err)
		})
		if *pullURL == "" {
			*pullURL = *joinURL
		}
	}
	if *pullURL != "" {
		srv.StartPull(*pullURL, *pullInterval)
	}

	select {
	case err := <-errc:
		srv.Close()
		fatal(err)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "flexos-serve: shutting down")
	// Cancel in-flight explorations first so their subscribers get
	// their responses promptly and the HTTP drain below finishes fast,
	// instead of every handler riding out the whole grace period.
	srv.Abort()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "flexos-serve:", err)
	}
	if err := srv.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flexos-serve:", err)
	os.Exit(1)
}
