// Command flexos-serve runs the exploration service: a long-running
// HTTP daemon executing flexos-explore-shaped requests on the shared
// engine over one process-wide two-tier memo, with single-flight
// coalescing of identical concurrent requests (see internal/serve).
//
// Endpoints:
//
//	POST /v1/explore   JSON request (see internal/cli.Request); answers
//	                   a complete JSON report, or NDJSON with
//	                   {"stream": true}
//	GET  /healthz      liveness
//	GET  /statsz       serving statistics (coalescing, hit rates)
//
// Usage:
//
//	flexos-serve -addr 127.0.0.1:8077 -cache .serve-store
//	curl -s http://127.0.0.1:8077/healthz
//	curl -s -X POST -d '{"scenario":"redis-get90"}' http://127.0.0.1:8077/v1/explore
//	curl -sN -X POST -d '{"app":"cross","stream":true}' http://127.0.0.1:8077/v1/explore
//	flexos-explore -remote http://127.0.0.1:8077 -scenario redis-get90
//
// The served report is byte-identical to what the same request run
// locally would print — flexos-explore -remote just relays it.
// SIGINT/SIGTERM shut the daemon down gracefully: in-flight runs are
// canceled and the persistent store is flushed and closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flexos/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8077", "listen address")
	workers := flag.Int("workers", 0, "engine workers per exploration for requests that do not name their own (<= 0: GOMAXPROCS)")
	maxFlights := flag.Int("max-flights", 0, "concurrent engine runs; excess requests queue (<= 0: GOMAXPROCS)")
	cacheDir := flag.String("cache", "", "persistent result-store directory backing the shared memo (measurements survive restarts)")
	cacheRO := flag.Bool("cache-readonly", false, "open -cache read-only: load from the store, never write to it")
	flag.Parse()

	if *cacheRO && *cacheDir == "" {
		fatal(errors.New("-cache-readonly requires -cache"))
	}
	srv, err := serve.New(serve.Config{
		Workers:       *workers,
		MaxFlights:    *maxFlights,
		CacheDir:      *cacheDir,
		CacheReadOnly: *cacheRO,
	})
	if err != nil {
		fatal(err)
	}

	// No WriteTimeout: NDJSON streams legitimately stay open for the
	// length of an exploration. Slowloris-style clients are bounded by
	// the header/body read deadlines instead.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "flexos-serve: listening on %s (cache %q)\n", *addr, *cacheDir)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		srv.Close()
		fatal(err)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "flexos-serve: shutting down")
	// Cancel in-flight explorations first so their subscribers get
	// their responses promptly and the HTTP drain below finishes fast,
	// instead of every handler riding out the whole grace period.
	srv.Abort()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "flexos-serve:", err)
	}
	if err := srv.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flexos-serve:", err)
	os.Exit(1)
}
