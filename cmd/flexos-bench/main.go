// Command flexos-bench regenerates the tables and figures of the FlexOS
// paper's evaluation (§6) as text tables on the simulated machine.
//
// Beyond the paper's figures it regenerates the multi-metric additions:
// "scenarios" prints every library scenario (Redis GET/SET mixes, Nginx
// keepalive mixes, iPerf stream counts, SQLite batches) on baseline vs
// isolated images across throughput/latency/memory/boot, and "pareto"
// prints the safety × throughput × memory frontier of a scenario's
// configuration space.
//
// Usage:
//
//	flexos-bench -fig all
//	flexos-bench -fig 10 -queries 250
//	flexos-bench -fig 6 -requests 300
//	flexos-bench -fig scenarios
//	flexos-bench -fig pareto -scenario redis-get90
//	flexos-bench -fig 8 -timeout 30s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"flexos/internal/explore"
	"flexos/internal/figures"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 5 | 6 | 7 | 8 | 9 | 10 | 11a | 11b | table1 | scenarios | pareto | all")
	scenarioName := flag.String("scenario", "redis-get90", "scenario for -fig pareto")
	requests := flag.Int("requests", 250, "requests per configuration (Figs. 5-8)")
	queries := flag.Int("queries", 150, "INSERT queries (Fig. 10; reported scaled to 5000)")
	packets := flag.Int("packets", 40, "packets per buffer size (Fig. 9)")
	budget := flag.Float64("budget", 500_000, "performance budget in req/s (Figs. 5, 8)")
	workers := flag.Int("workers", 0, "concurrent measurement workers for the exploration figures (<= 0: GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "abort the exploration figures after this duration (0: no deadline)")
	csvDir := flag.String("csv", "", "also write results as CSV files into this directory")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	run := func(name string, f func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		if err := f(); err != nil {
			if errors.Is(err, explore.ErrCanceled) {
				fmt.Fprintf(os.Stderr, "flexos-bench: figure %s: timed out after %v\n", name, *timeout)
			} else {
				fmt.Fprintf(os.Stderr, "flexos-bench: figure %s: %v\n", name, err)
			}
			os.Exit(1)
		}
		fmt.Println()
	}

	run("5", func() error {
		nodes, err := figures.Fig5Workers(ctx, *requests, 600_000, *workers)
		if err != nil {
			return err
		}
		fmt.Print(figures.FormatFig5(nodes, 600_000))
		return nil
	})
	var redisRows, nginxRows []figures.ConfigPerf
	run("6", func() error {
		var err error
		redisRows, err = figures.Fig6RedisWorkers(ctx, *requests, *workers)
		if err != nil {
			return err
		}
		fmt.Print(figures.FormatFig6("Redis", redisRows))
		fmt.Println()
		nginxRows, err = figures.Fig6NginxWorkers(ctx, *requests, *workers)
		if err != nil {
			return err
		}
		fmt.Print(figures.FormatFig6("Nginx", nginxRows))
		if *csvDir != "" {
			h, rows := figures.Fig6CSV(redisRows)
			if err := figures.WriteCSV(*csvDir, "6-redis", h, rows); err != nil {
				return err
			}
			h, rows = figures.Fig6CSV(nginxRows)
			if err := figures.WriteCSV(*csvDir, "6-nginx", h, rows); err != nil {
				return err
			}
		}
		return nil
	})
	run("7", func() error {
		if redisRows == nil {
			var err error
			if redisRows, err = figures.Fig6RedisWorkers(ctx, *requests, *workers); err != nil {
				return err
			}
			if nginxRows, err = figures.Fig6NginxWorkers(ctx, *requests, *workers); err != nil {
				return err
			}
		}
		pts := figures.Fig7(redisRows, nginxRows)
		fmt.Print(figures.FormatFig7(pts))
		if *csvDir != "" {
			h, rows := figures.Fig7CSV(pts)
			return figures.WriteCSV(*csvDir, "7", h, rows)
		}
		return nil
	})
	run("8", func() error {
		res, err := figures.Fig8Workers(ctx, *requests, *budget, *workers)
		if err != nil {
			return err
		}
		fmt.Print(figures.FormatFig8(res))
		return nil
	})
	run("9", func() error {
		rows, err := figures.Fig9(*packets)
		if err != nil {
			return err
		}
		fmt.Print(figures.FormatFig9(rows))
		if *csvDir != "" {
			h, out := figures.Fig9CSV(rows)
			return figures.WriteCSV(*csvDir, "9", h, out)
		}
		return nil
	})
	run("10", func() error {
		rows, err := figures.Fig10(*queries)
		if err != nil {
			return err
		}
		fmt.Print(figures.FormatFig10(rows))
		if *csvDir != "" {
			h, out := figures.Fig10CSV(rows)
			return figures.WriteCSV(*csvDir, "10", h, out)
		}
		return nil
	})
	run("11a", func() error {
		rows, err := figures.Fig11a()
		if err != nil {
			return err
		}
		fmt.Print(figures.FormatFig11a(rows))
		if *csvDir != "" {
			h, out := figures.Fig11aCSV(rows)
			return figures.WriteCSV(*csvDir, "11a", h, out)
		}
		return nil
	})
	run("11b", func() error {
		rows, err := figures.Fig11b()
		if err != nil {
			return err
		}
		fmt.Print(figures.FormatFig11b(rows))
		if *csvDir != "" {
			h, out := figures.Fig11bCSV(rows)
			return figures.WriteCSV(*csvDir, "11b", h, out)
		}
		return nil
	})
	run("table1", func() error {
		fmt.Print(figures.FormatTable1(figures.Table1()))
		return nil
	})
	run("scenarios", func() error {
		rows, err := figures.ScenarioTable()
		if err != nil {
			return err
		}
		fmt.Print(figures.FormatScenarios(rows))
		if *csvDir != "" {
			h, out := figures.ScenariosCSV(rows)
			return figures.WriteCSV(*csvDir, "scenarios", h, out)
		}
		return nil
	})
	run("pareto", func() error {
		res, err := figures.ScenarioPareto(ctx, *scenarioName, *workers)
		if err != nil {
			return err
		}
		fmt.Print(figures.FormatPareto(*scenarioName, res))
		return nil
	})
}
