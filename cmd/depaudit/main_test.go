package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestAuditFlagsDeprecatedCalls(t *testing.T) {
	dir := t.TempDir()
	src := `package bad

import (
	"flexos"
	xp "flexos/internal/explore"
)

func bad() {
	flexos.Explore(nil, nil, 0, true)
	flexos.ExploreWith(nil, nil, 0, flexos.ExploreOptions{})
	flexos.ExploreMetrics(nil, nil, "", 0, flexos.ExploreOptions{})
	flexos.ExploreScenario(nil, "", 0, flexos.ExploreOptions{})
	xp.Run(nil, nil, 0, true)
	xp.RunOpts(nil, nil, 0, xp.Options{})
	xp.RunMetrics(nil, nil, "", 0, xp.Options{})
	xp.RunMetricsSequential(nil, nil, "", 0, true)
}
`
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := audit([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 8 {
		t.Fatalf("found %d deprecated calls, want 8:\n%v", len(findings), findings)
	}
}

func TestAuditAllowsQueryAPI(t *testing.T) {
	dir := t.TempDir()
	src := `package good

import (
	"context"

	"flexos"
)

func good() {
	// Same names as methods are fine: only package-selector calls count.
	q := flexos.NewQuery(nil).MeasureScalar(nil).Floor(flexos.MetricThroughput, 1)
	q.Run(context.Background())
}
`
	if err := os.WriteFile(filepath.Join(dir, "good.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := audit([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("false positives: %v", findings)
	}
}

// TestRepositoryBinariesAndExamplesAreClean runs the real audit the CI
// step runs: cmd/ and examples/ must not call the deprecated surface.
func TestRepositoryBinariesAndExamplesAreClean(t *testing.T) {
	findings, err := audit([]string{"../../cmd", "../../examples"})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("deprecated exploration calls in cmd/ or examples/:\n%v", findings)
	}
}
