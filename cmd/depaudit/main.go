// Command depaudit is the deprecation gate for the exploration API: it
// parses every Go file under cmd/ and examples/ and fails when one of
// them calls a deprecated exploration entry point instead of the Query
// builder. It is the staticcheck-style "no new callers" audit wired
// into CI — internal packages and tests may still exercise the
// deprecated wrappers (that is how their compatibility is pinned), but
// the repository's own binaries and examples must model the modern API.
//
// Usage:
//
//	go run ./cmd/depaudit             # audit ./cmd and ./examples
//	go run ./cmd/depaudit dir1 dir2   # audit explicit roots
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// deprecated maps import path -> the entry points frozen there. The
// key is matched against the import's path, the inner set against
// selector calls through that import.
var deprecated = map[string]map[string]bool{
	"flexos": {
		"Explore":         true,
		"ExploreWith":     true,
		"ExploreMetrics":  true,
		"ExploreScenario": true,
	},
	"flexos/internal/explore": {
		"Run":                  true,
		"RunOpts":              true,
		"RunMetrics":           true,
		"RunMetricsSequential": true,
	},
}

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"cmd", "examples"}
	}
	findings, err := audit(roots)
	if err != nil {
		fmt.Fprintln(os.Stderr, "depaudit:", err)
		os.Exit(1)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "depaudit: %d call(s) to deprecated exploration entry points (use flexos.NewQuery / explore.Engine.Run):\n", len(findings))
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
	fmt.Println("depaudit: PASS (cmd/ and examples/ are free of deprecated exploration calls)")
}

// audit walks the roots and returns one "file:line: pkg.Func" finding
// per deprecated call.
func audit(roots []string) ([]string, error) {
	var findings []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			// Tests may exercise the deprecated wrappers (that is how
			// their compatibility is pinned); only shipped code is held
			// to the Query API.
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			found, err := auditFile(path)
			if err != nil {
				return err
			}
			findings = append(findings, found...)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return findings, nil
}

// auditFile parses one file and reports deprecated selector calls made
// through any import of the frozen packages (alias-aware).
func auditFile(path string) ([]string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	// Map the local name of each interesting import to its frozen set.
	frozen := map[string]map[string]bool{}
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		set, ok := deprecated[p]
		if !ok {
			continue
		}
		name := filepath.Base(p)
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "_" || name == "." {
			// Dot imports would need type information; nothing in this
			// repository uses them for the frozen packages.
			continue
		}
		frozen[name] = set
	}
	if len(frozen) == 0 {
		return nil, nil
	}
	var findings []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if set, ok := frozen[ident.Name]; ok && set[sel.Sel.Name] {
			pos := fset.Position(call.Pos())
			findings = append(findings, fmt.Sprintf("%s:%d: %s.%s", pos.Filename, pos.Line, ident.Name, sel.Sel.Name))
		}
		return true
	})
	return findings, nil
}
