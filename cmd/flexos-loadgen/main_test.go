package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"flexos/internal/serve"
	"flexos/internal/trace"
)

func TestLoadTraceArgValidation(t *testing.T) {
	if _, err := loadTrace("", "", time.Second, 1); err == nil {
		t.Fatal("no -trace and no -synth must error")
	}
	if _, err := loadTrace("x.jsonl", "diurnal", time.Second, 1); err == nil {
		t.Fatal("-trace and -synth together must error")
	}
	if _, err := loadTrace("", "no-such-shape", time.Second, 1); err == nil ||
		!strings.Contains(err.Error(), "diurnal") {
		t.Fatalf("unknown shape should list the known ones, got %v", err)
	}
	tr, err := loadTrace("", "flash", 5*time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 || tr.Seed != 7 {
		t.Fatalf("synthesized trace: %d events seed %d", len(tr.Events), tr.Seed)
	}
}

func TestRunWriteThenDump(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.jsonl")
	if err := run("", "", "shift", 4*time.Second, 3, 1, 0, 0, 4, false, "", path, false); err != nil {
		t.Fatal(err)
	}
	tr, st, err := trace.ReadFile(path)
	if err != nil || st.CorruptEvents != 0 {
		t.Fatalf("written trace unreadable: %v (%+v)", err, st)
	}
	if len(tr.Events) == 0 {
		t.Fatal("empty written trace")
	}
	// loadTrace must read the same file back, and a truncated copy
	// must still load with a warning rather than failing.
	if _, err := loadTrace(path, "", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := run("", path, "", 0, 0, 1, 0, 0, 4, false, "", "", true); err != nil {
		t.Fatalf("dump-schedule: %v", err)
	}
	if err := run("", filepath.Join(dir, "missing.jsonl"), "", 0, 0, 1, 0, 0, 4, false, "", "", true); err == nil {
		t.Fatal("missing trace file must error")
	}
}

// TestRunReplayEndToEnd drives the whole CLI path — synthesis,
// schedule, closed-loop replay against an in-process daemon, summary
// and JSON report — through run().
func TestRunReplayEndToEnd(t *testing.T) {
	srv, err := serve.New(serve.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()
	report := filepath.Join(t.TempDir(), "report.json")
	if err := run(ts.URL, "", "flash", 4*time.Second, 11, 1000, 0, 0, 3, true, report, "", false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep trace.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 || rep.Issued == 0 || rep.Ok != rep.Issued {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Mode != "closed" || rep.Conns != 3 || rep.ResponseSum == "" {
		t.Fatalf("report wiring: mode=%s conns=%d sum=%q", rep.Mode, rep.Conns, rep.ResponseSum)
	}
	if rep.Latency.Count != rep.Issued || rep.Latency.P50 <= 0 {
		t.Fatalf("latency summary: %+v", rep.Latency)
	}
}

func TestShapeNamesSorted(t *testing.T) {
	names := shapeNames()
	if len(names) < 3 {
		t.Fatalf("shapes: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("not sorted: %v", names)
		}
	}
}
