// Command flexos-loadgen replays a traffic trace against a running
// flexos-serve daemon or cluster coordinator and reports what the
// serving stack did under it: throughput, error and retry counts, and
// per-phase nearest-rank latency histograms (p50/p95/p99/max), as a
// human summary on stderr and a machine-readable JSON report.
//
// The trace comes from a file (-trace, the checksummed JSONL format of
// internal/trace) or from the deterministic synthesizer (-synth with a
// shape name — diurnal | flash | shift — scaled to -synth-duration and
// pinned by -seed). The issue schedule is derived up front from
// (trace, seed, speedup, rate, duration) alone, so the request
// sequence is byte-identical at any -conns: concurrency decides who
// waits, never what is sent or in which order. -dump-schedule prints
// that schedule and exits — CI byte-compares dumps to enforce the
// contract without booting a server.
//
// By default the generator is open-loop: requests go out at their
// scheduled times whether or not earlier ones have returned (queueing
// delay lands in measured latency, as it must under overload).
// -closed switches to closed-loop saturation: each connection issues
// the next request as soon as its previous one completes.
//
// Usage:
//
//	flexos-loadgen -url http://127.0.0.1:8077 -trace ci/traces/smoke-30s.jsonl -speedup 10
//	flexos-loadgen -url http://127.0.0.1:8070 -synth diurnal -synth-duration 30s -seed 42 -conns 8
//	flexos-loadgen -trace t.jsonl -rate 20 -duration 5s -closed -report report.json
//	flexos-loadgen -synth shift -seed 7 -write ci/traces/shift.jsonl
//	flexos-loadgen -trace ci/traces/smoke-30s.jsonl -dump-schedule
//
// The exit status is 0 only when every request succeeded, so a compose
// health gate or CI job can use the generator itself as the assertion.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"flexos/internal/cli"
	"flexos/internal/trace"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8077", "flexos-serve daemon or coordinator base URL")
	traceFile := flag.String("trace", "", "trace file to replay (flexos-trace JSONL)")
	synth := flag.String("synth", "", "synthesize the trace instead: "+strings.Join(shapeNames(), " | "))
	synthDur := flag.Duration("synth-duration", 30*time.Second, "trace-time span of a -synth trace")
	seed := flag.Int64("seed", 42, "synthesis seed; pins every arrival and mix draw of -synth")
	speedup := flag.Float64("speedup", 1, "replay N× faster than trace time")
	rate := flag.Float64("rate", 0, "override trace timing: issue uniformly at this many requests/s (order preserved)")
	duration := flag.Duration("duration", 0, "truncate the trace to its first span of trace time (0: whole trace)")
	conns := flag.Int("conns", 4, "max concurrent in-flight requests")
	closed := flag.Bool("closed", false, "closed loop: ignore timestamps, saturate the connections")
	report := flag.String("report", "", "write the JSON report here (\"-\": stdout)")
	write := flag.String("write", "", "write the (synthesized or re-encoded) trace here and exit")
	dump := flag.Bool("dump-schedule", false, "print the derived issue schedule and exit (determinism probe)")
	flag.Parse()

	if err := run(*url, *traceFile, *synth, *synthDur, *seed, *speedup, *rate, *duration, *conns, *closed, *report, *write, *dump); err != nil {
		fmt.Fprintf(os.Stderr, "flexos-loadgen: %v\n", err)
		os.Exit(1)
	}
}

func shapeNames() []string {
	names := make([]string, 0, len(trace.Shapes))
	for name := range trace.Shapes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func run(url, traceFile, synth string, synthDur time.Duration, seed int64, speedup, rate float64,
	duration time.Duration, conns int, closed bool, reportPath, writePath string, dump bool) error {
	tr, err := loadTrace(traceFile, synth, synthDur, seed)
	if err != nil {
		return err
	}
	if writePath != "" {
		if err := tr.WriteFile(writePath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "flexos-loadgen: wrote %d events spanning %.1fs to %s\n",
			len(tr.Events), float64(tr.DurationMs())/1000, writePath)
		return nil
	}

	sched := trace.BuildSchedule(tr, trace.ScheduleOpts{
		Speedup:    speedup,
		Rate:       rate,
		DurationMs: duration.Milliseconds(),
	})
	if dump {
		return trace.DumpSchedule(os.Stdout, sched)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	client := &cli.Client{BaseURL: url, Retry: cli.DefaultRetry}
	fmt.Fprintf(os.Stderr, "flexos-loadgen: replaying %d requests (%s) against %s at %d conns\n",
		len(sched), tr.Name, url, conns)
	rep, rerr := trace.Replay(ctx, tr.Name, sched, trace.ReplayOpts{
		Client: client, Conns: conns, ClosedLoop: closed, Seed: seed,
	})
	if rep != nil {
		rep.Retries = client.Retries()
		printSummary(rep)
		if err := writeReport(reportPath, rep); err != nil {
			return err
		}
	}
	if rerr != nil {
		return rerr
	}
	if rep.Failed > 0 {
		return fmt.Errorf("%d of %d requests failed", rep.Failed, rep.Issued)
	}
	return nil
}

func loadTrace(traceFile, synth string, synthDur time.Duration, seed int64) (*trace.Trace, error) {
	switch {
	case traceFile != "" && synth != "":
		return nil, fmt.Errorf("-trace and -synth are mutually exclusive")
	case traceFile != "":
		tr, st, err := trace.ReadFile(traceFile)
		if err != nil {
			return nil, err
		}
		if st.CorruptEvents > 0 {
			fmt.Fprintf(os.Stderr, "flexos-loadgen: %s: truncated at corruption, dropped %d line(s), kept %d events\n",
				traceFile, st.CorruptEvents, st.Events)
		}
		return tr, nil
	case synth != "":
		shape, ok := trace.Shapes[synth]
		if !ok {
			return nil, fmt.Errorf("unknown -synth shape %q (have: %s)", synth, strings.Join(shapeNames(), ", "))
		}
		return trace.Synthesize(shape(seed, synthDur.Milliseconds()))
	default:
		return nil, fmt.Errorf("need -trace FILE or -synth SHAPE")
	}
}

func printSummary(rep *trace.Report) {
	fmt.Fprintf(os.Stderr, "flexos-loadgen: %s loop, %d issued, %d ok, %d failed, %d retries in %.1fs (%.1f req/s)\n",
		rep.Mode, rep.Issued, rep.Ok, rep.Failed, rep.Retries, float64(rep.WallMs)/1000, rep.Rps)
	fmt.Fprintf(os.Stderr, "flexos-loadgen:   overall  p50 %.1fms  p95 %.1fms  p99 %.1fms  max %.1fms\n",
		rep.Latency.P50, rep.Latency.P95, rep.Latency.P99, rep.Latency.Max)
	for _, ph := range rep.Phases {
		fmt.Fprintf(os.Stderr, "flexos-loadgen:   %-8s %4d req (%d failed)  p50 %.1fms  p95 %.1fms  p99 %.1fms  max %.1fms\n",
			ph.Phase, ph.Requests, ph.Failed, ph.Latency.P50, ph.Latency.P95, ph.Latency.P99, ph.Latency.Max)
	}
}

func writeReport(path string, rep *trace.Report) error {
	if path == "" {
		return nil
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}
