package flexos_test

import (
	"os"
	"path/filepath"
	"testing"

	"flexos"
)

// TestShippedConfigsBuild ensures every configuration file under
// configs/ parses, materializes against the full catalog, and builds.
func TestShippedConfigsBuild(t *testing.T) {
	files, err := filepath.Glob("configs/*.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("expected shipped configs, found %d", len(files))
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			raw, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			cfg, err := flexos.ParseConfig(string(raw))
			if err != nil {
				t.Fatal(err)
			}
			cat := flexos.FullCatalog()
			spec, err := flexos.SpecFromConfig(cfg, cat)
			if err != nil {
				t.Fatal(err)
			}
			img, err := flexos.Build(cat, spec)
			if err != nil {
				t.Fatal(err)
			}
			if img.Report().Mechanism == "" {
				t.Fatal("empty report")
			}
		})
	}
}

// TestDSSSpaceOverheadClaim reproduces the paper's §4.1 memory-cost
// claim: "The memory footprint increase due to the DSS is modest as
// FlexOS uses small stacks (8 pages). For example, an instance with
// Redis (8 threads) has a space overhead of 288 KB."
func TestDSSSpaceOverheadClaim(t *testing.T) {
	spec := flexos.ImageSpec{
		Mechanism: "intel-mpk",
		GateMode:  flexos.GateFull,
		Sharing:   flexos.ShareDSS,
		Comps: []flexos.CompSpec{
			{Name: "c0", Libs: append(flexos.TCBLibs(), flexos.LibRedis, flexos.LibC, flexos.LibSched)},
			{Name: "net", Libs: []string{flexos.LibNet}},
		},
	}
	img, err := flexos.Build(flexos.FullCatalog(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := img.NewContext("worker", flexos.LibRedis); err != nil {
			t.Fatal(err)
		}
	}
	// 8 threads x 2 compartments x 8 pages of shadow = 512 KiB; the
	// paper's 288 KB is the same order of magnitude (its threads carry
	// stacks only for compartments they enter). Assert the order.
	kb := img.DSSBytes() / 1024
	if kb < 128 || kb > 1024 {
		t.Fatalf("DSS overhead = %d KiB, want hundreds of KiB", kb)
	}
}
