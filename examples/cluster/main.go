// Command cluster demonstrates the distributed exploration cluster:
// it boots three in-process worker daemons and one coordinator over
// real loopback HTTP, runs a scenario exploration through the
// coordinator, and byte-compares the answer against a plain local run
// — then kills a worker and does it again, showing that shard
// re-dispatch preserves the bytes. Finally it lets a fourth, empty
// daemon warm-start from the coordinator's store over the pull
// protocol.
//
// The same topology runs as separate processes with:
//
//	flexos-serve -addr :8070 -coordinator
//	flexos-serve -addr :8071 -join http://127.0.0.1:8070 -advertise http://127.0.0.1:8071
//	... (see examples/cluster/compose.yaml for the container version)
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"time"

	"flexos"
	"flexos/internal/cli"
	"flexos/internal/cluster"
	"flexos/internal/serve"
)

func main() {
	ctx := context.Background()
	req := cli.Request{Scenario: "redis-get90", Budgets: []string{"400000"}}

	// The single-node oracle: what the cluster must reproduce.
	q, info, err := req.Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err := q.Run(ctx)
	if err != nil && !errors.Is(err, flexos.ErrNoFeasible) {
		log.Fatal(err)
	}
	oracle := cli.RenderReport(info.Title, res, info.Constraints, info.ScenarioMode,
		req.Pareto, req.Verbose, errors.Is(err, flexos.ErrNoFeasible))

	// Three workers, each a full flexos-serve daemon. The kill switches
	// simulate process death: a killed worker refuses everything.
	var killed [3]atomic.Bool
	var workers [3]*httptest.Server
	for i := range workers {
		srv, err := serve.New(serve.Config{Workers: 2})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		i := i
		workers[i] = httptest.NewServer(serveUnlessKilled(srv, &killed[i]))
		defer workers[i].Close()
	}

	// The coordinator: splits requests into shard sub-requests, routes
	// them over the consistent-hash ring of joined workers, merges the
	// returned records into its memo, and re-ranks locally.
	co := cluster.New(cluster.Config{
		Fanout:         3,
		Retry:          &cli.RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
		HealthInterval: time.Hour, // this demo relies on dispatch strikes
		HealthStrikes:  1,
	})
	for _, w := range workers {
		co.Join(w.URL)
	}
	coord, err := serve.New(serve.Config{Workers: 2, Cluster: co})
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()
	front := httptest.NewServer(coord)
	defer front.Close()
	client := &cli.Client{BaseURL: front.URL, Retry: cli.DefaultRetry}

	// 1. A coordinated run over the healthy fleet.
	resp, err := client.Explore(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coordinated over 3 workers, byte-identical to the local run: %v\n", resp.Report == oracle)

	st := co.Stats()
	fmt.Printf("fleet: %d alive, %d shards dispatched", st.Alive, st.Shards)
	for _, w := range st.Workers {
		fmt.Printf("  [%d]", w.Dispatched)
	}
	fmt.Println()

	// 2. Kill one worker and ask again (a fresh slice of the space so
	// the cluster actually has to measure). Its shards strike out, walk
	// the ring to a survivor, and the answer does not change by a byte.
	req2 := cli.Request{Scenario: "redis-get50"}
	q2, info2, err := req2.Build()
	if err != nil {
		log.Fatal(err)
	}
	res2, err := q2.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	oracle2 := cli.RenderReport(info2.Title, res2, info2.Constraints, info2.ScenarioMode, false, false, false)

	killed[1].Store(true)
	workers[1].CloseClientConnections()
	resp2, err := client.Explore(ctx, req2)
	if err != nil {
		log.Fatal(err)
	}
	st = co.Stats()
	fmt.Printf("worker 1 killed mid-fleet: report still byte-identical: %v (%d re-dispatches, %d inline runs, %d shards lost)\n",
		resp2.Report == oracle2, st.Redispatches, st.InlineRuns, st.ShardsLost)

	// 3. Store sync: an empty daemon pulls the coordinator's sync log
	// and then answers the first request without measuring anything.
	late, err := serve.New(serve.Config{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer late.Close()
	lateTS := httptest.NewServer(late)
	defer lateTS.Close()
	late.StartPull(front.URL, 20*time.Millisecond)
	for late.Stats().RecordsIngested == 0 {
		time.Sleep(20 * time.Millisecond)
	}
	lateResp, err := (&cli.Client{BaseURL: lateTS.URL}).Explore(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("late daemon warm-started over /v1/store/pull: ingested %d records, answered with %d fresh measurements, byte-identical: %v\n",
		late.Stats().RecordsIngested, lateResp.Stats.Evaluated, lateResp.Report == oracle)

	if resp.Report != oracle || resp2.Report != oracle2 || lateResp.Report != oracle {
		log.Fatal("cluster answers diverged from the single-node oracle")
	}
}

// serveUnlessKilled wraps a daemon with its kill switch.
func serveUnlessKilled(srv *serve.Server, dead *atomic.Bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if dead.Load() {
			http.Error(w, "worker killed", http.StatusServiceUnavailable)
			return
		}
		srv.ServeHTTP(w, r)
	})
}
