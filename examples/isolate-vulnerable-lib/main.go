// Isolate-vulnerable-lib demonstrates the first §7 use case: "Quickly
// Isolate Exploitable Libraries". A third-party parser library has a
// vulnerability that lets an attacker read arbitrary memory (think of a
// decompression bug à la libopenjpg, the paper's own example). During
// the embargo window, FlexOS lets the operator rebuild the image with
// the parser in its own compartment in seconds.
//
// The example registers the vulnerable component through the public API,
// then builds the same system twice — without isolation and with the
// parser compartmentalized under MPK — and mounts the same exploit
// against both. Without isolation the secret leaks; with isolation the
// simulated MMU kills the access with a protection-key fault.
//
// Run with: go run ./examples/isolate-vulnerable-lib
package main

import (
	"fmt"
	"log"

	"flexos"
)

// buildCatalog assembles the system plus the vulnerable parser.
// The parser's "parse" function contains the bug: it dereferences an
// attacker-controlled pointer and returns the bytes it reads.
func buildCatalog() *flexos.Catalog {
	cat := flexos.FullCatalog()
	parser := &flexos.Component{
		Name:  "libparser",
		Funcs: map[string]*flexos.Func{},
	}
	parser.AddFunc(&flexos.Func{
		Name: "parse", Work: 300, EntryPoint: true,
		Impl: func(ctx *flexos.Ctx, args ...any) (any, error) {
			// The "image header" smuggles a pointer; the buggy parser
			// reads through it — an arbitrary-read primitive.
			evilPtr := args[0].(uintptr)
			leak := make([]byte, 16)
			if err := ctx.Read(evilPtr, leak); err != nil {
				return nil, err
			}
			return string(leak), nil
		},
	})
	if err := cat.Register(parser); err != nil {
		log.Fatal(err)
	}
	return cat
}

// exploit plants a secret in Redis's private heap and drives the parser
// bug at it.
func exploit(img *flexos.Image) (string, error) {
	ctx, err := img.NewContext("victim", flexos.LibRedis)
	if err != nil {
		return "", err
	}
	// The secret: a session key in the Redis compartment's heap.
	redisComp, _ := img.Comp(flexos.LibRedis)
	secretAddr, err := redisComp.Heap.Alloc(16)
	if err != nil {
		return "", err
	}
	if err := img.AS.Write(ctx.Thread().PKRU, secretAddr, []byte("SESSION-KEY-4242")); err != nil {
		return "", err
	}
	// The attacker triggers the parser with a crafted "file" whose
	// header points at the secret.
	out, err := ctx.Call("libparser", "parse", secretAddr)
	if err != nil {
		return "", err
	}
	return out.(string), nil
}

func main() {
	allLibs := append(flexos.TCBLibs(),
		flexos.LibSched, flexos.LibC, flexos.LibNet, flexos.LibVFS,
		flexos.LibRamfs, flexos.LibTime, flexos.LibRedis, flexos.LibNginx,
		flexos.LibSQLite, flexos.LibIPerf)

	// Deployment 1: the status quo — everything in one protection
	// domain (a classic unikernel).
	flat := flexos.ImageSpec{
		Mechanism: "none",
		Comps: []flexos.CompSpec{{
			Name: "c0", Libs: append(append([]string{}, allLibs...), "libparser"),
		}},
	}
	img1, err := flexos.Build(buildCatalog(), flat)
	if err != nil {
		log.Fatal(err)
	}
	leak, err := exploit(img1)
	if err != nil {
		fmt.Println("no isolation: exploit failed:", err)
	} else {
		fmt.Printf("no isolation: exploit LEAKED the secret: %q\n", leak)
	}

	// Deployment 2: the embargo response — one configuration-file edit
	// later, the parser runs in its own MPK compartment with hardening.
	isolated := flexos.ImageSpec{
		Mechanism: "intel-mpk",
		GateMode:  flexos.GateFull,
		Sharing:   flexos.ShareDSS,
		Comps: []flexos.CompSpec{
			{Name: "c0", Libs: allLibs},
			{Name: "quarantine", Libs: []string{"libparser"},
				Hardening: flexos.NewHardening(flexos.CFI, flexos.KASan)},
		},
	}
	img2, err := flexos.Build(buildCatalog(), isolated)
	if err != nil {
		log.Fatal(err)
	}
	leak, err = exploit(img2)
	if err != nil {
		fmt.Printf("MPK quarantine: exploit KILLED by the MMU: %v\n", err)
	} else {
		fmt.Printf("MPK quarantine: exploit leaked %q (should not happen!)\n", leak)
	}

	// The same one-line change swaps the mechanism entirely (e.g. when
	// an MPK-class vulnerability is disclosed, §7 "Quickly React to
	// Hardware Protections Breaking Down").
	isolated.Mechanism = "vm-ept"
	isolated.GateMode = flexos.GateDefault
	img3, err := flexos.Build(buildCatalog(), isolated)
	if err != nil {
		log.Fatal(err)
	}
	if _, err = exploit(img3); err != nil {
		fmt.Printf("EPT quarantine: exploit KILLED by the hypervisor: %v\n", err)
	}
}
