// Streaming-explore demonstrates the incremental side of the Query
// API: a multi-constraint exploration of the 320-point cross-application
// space whose results are consumed as they are measured, under a
// wall-clock deadline.
//
//  1. Build one Query over CrossAppSpace with two simultaneous
//     constraints (a throughput floor and a peak-memory ceiling).
//  2. Stream it: each configuration is yielded the moment the engine
//     decides it — in input order, so the output is byte-identical for
//     any worker count — while a running "best so far" is maintained.
//  3. Bound the whole run with a context deadline; if it fires, the
//     engine returns an error wrapping flexos.ErrCanceled, no
//     goroutines leak, and whatever was already streamed stands.
//
// Run with: go run ./examples/streaming-explore
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"time"

	"flexos"
)

func main() {
	cfgs := flexos.CrossAppSpace(nil, flexos.RedisComponents(), flexos.NginxComponents())

	// Measure full metric vectors by dispatching each configuration to
	// the scenario workload of the application it contains — that is
	// what gives the memory axis real values for the ceiling below.
	redisSC, _ := flexos.ScenarioByName("redis-get90")
	nginxSC, _ := flexos.ScenarioByName("nginx-keep75")
	redisSC, nginxSC = redisSC.WithOps(80), nginxSC.WithOps(80)
	measure := func(c *flexos.ExploreConfig) (flexos.Metrics, error) {
		sc := redisSC
		for _, comp := range c.Components() {
			if comp == flexos.LibNginx {
				sc = nginxSC
				break
			}
		}
		return sc.Run(c.Spec(flexos.TCBLibs()))
	}

	// Two simultaneous constraints: a throughput floor and a memory
	// ceiling. Both are in their natural direction, so they also drive
	// monotonic pruning.
	q := flexos.NewQuery(cfgs).
		Measure(measure).
		Floor(flexos.MetricThroughput, 300_000).
		Ceiling(flexos.MetricPeakMem, 120_000).
		Prune(true)

	// A deadline bounds the whole pool; 2 minutes is generous here (the
	// simulated sweep takes seconds) but shows the shape of a bounded
	// production exploration.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	stream, final := q.Stream(ctx)
	measured := 0
	var bestPerf float64
	for cfg, m := range stream {
		measured++
		if m.Throughput > bestPerf {
			bestPerf = m.Throughput
			fmt.Printf("measured %3d: new fastest %-50s %8.0fk op/s\n",
				measured, cfg.Label(), m.Throughput/1000)
		}
	}

	res, err := final()
	switch {
	case errors.Is(err, flexos.ErrCanceled):
		fmt.Fprintf(os.Stderr, "deadline hit after %d measurements — partial stream above still stands\n", measured)
		os.Exit(1)
	case errors.Is(err, flexos.ErrNoFeasible):
		fmt.Println("no configuration satisfies both constraints")
		return
	case err != nil:
		log.Fatal(err)
	}

	fmt.Printf("\nstreamed %d measured configurations (%d of %d pruned away)\n",
		measured, res.Total-res.Evaluated-res.MemoHits, res.Total)
	fmt.Println("safest configurations satisfying both constraints:")
	for _, i := range res.Safest {
		m := res.Measurements[i]
		fmt.Printf("  * %-55s %8.0fk op/s\n", m.Config.Label(), m.Perf/1000)
	}
}
