// Command warm-cache demonstrates persistent, sharded exploration: the
// result store that makes repeated and distributed design-space
// exploration O(new points) instead of O(space).
//
// It runs the same Redis query three ways and shows that the outcome
// never moves while the measurement count collapses:
//
//  1. a cold run writing through to a store directory,
//  2. a warm rerun served entirely from that store,
//  3. a sharded run — three slices of the space explored into three
//     independent stores (in real use: three CI jobs), merged with
//     MergeStores, then re-ranked over the union.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"flexos"
)

// measure is a deterministic stand-in benchmark: the real examples run
// the simulated Redis; here the point is cache behavior, not cycles.
func measure(c *flexos.ExploreConfig) (float64, error) {
	res, err := flexos.BenchmarkRedis(c.Spec(flexos.TCBLibs()), 50)
	if err != nil {
		return 0, err
	}
	return res.ReqPerSec, nil
}

func query() *flexos.Query {
	return flexos.NewQuery(flexos.Fig6Space(flexos.RedisComponents())).
		MeasureScalar(measure).
		Namespace("warm-cache-example/50").
		Floor(flexos.MetricThroughput, 500_000).
		Prune(true)
}

func main() {
	base, err := os.MkdirTemp("", "flexos-warm-cache")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)
	ctx := context.Background()
	store := filepath.Join(base, "store")

	fmt.Printf("space hash (the CI cache key): %s\n\n", query().SpaceHash())

	cold, err := query().Cache(store).Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold run:  measured %3d, cache hits %3d, safest %d\n",
		cold.Evaluated, cold.MemoHits, len(cold.Safest))

	warm, err := query().Cache(store).Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm run:  measured %3d, cache hits %3d, safest %d  (served from %s)\n\n",
		warm.Evaluated, warm.MemoHits, len(warm.Safest), filepath.Base(store))

	// Distributed exploration: each shard explores a deterministic,
	// non-overlapping slice of the same space into its own store.
	const shards = 3
	dirs := make([]string, shards)
	for i := range dirs {
		dirs[i] = filepath.Join(base, fmt.Sprintf("shard-%d", i))
		res, err := query().Shard(i, shards).Cache(dirs[i]).Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("shard %d/%d: measured %3d of %3d configurations\n", i, shards, res.Evaluated, res.Total)
	}
	merged := filepath.Join(base, "merged")
	n, err := flexos.MergeStores(merged, dirs...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged %d shard stores: %d records\n", shards, n)

	union, err := query().CacheReadOnly(merged).Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("union re-rank: measured %d, cache hits %d, safest %d\n\n",
		union.Evaluated, union.MemoHits, len(union.Safest))

	same := len(union.Safest) == len(cold.Safest)
	for i := range union.Safest {
		same = same && union.Safest[i] == cold.Safest[i]
	}
	fmt.Printf("sharded+merged result identical to cold run: %v\n", same)
	for _, i := range union.Safest {
		m := union.Measurements[i]
		fmt.Printf("  * %-50s %9.1fk req/s\n", m.Config.Label(), m.Perf/1000)
	}
}
