// Quickstart: build a FlexOS image from the paper's example
// configuration file, run a few Redis GET requests on it, and inspect
// the image report.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"flexos"
)

// config is the §3 example adapted to the shipped components: the
// network stack lives in its own MPK compartment with CFI and ASan
// hardening; everything else (including Redis) stays in the default
// compartment.
const config = `
compartments:
- comp1:
    mechanism: intel-mpk
    default: True
- comp2:
    mechanism: intel-mpk
    hardening: [cfi, asan]
libraries:
- libredis: comp1
- lwip: comp2
gate: full
sharing: dss
`

func main() {
	// 1. Parse the build-time safety configuration.
	cfg, err := flexos.ParseConfig(config)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Materialize it against the component catalog and build the
	// image — this is where abstract gates become MPK gates and the
	// DSS layout is instantiated.
	cat := flexos.FullCatalog()
	spec, err := flexos.SpecFromConfig(cfg, cat)
	if err != nil {
		log.Fatal(err)
	}
	img, err := flexos.Build(cat, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== image report ==")
	fmt.Print(img.Report().String())

	// 3. Run a workload: spawn a thread in Redis's compartment, preload
	// keys, inject requests, serve them.
	ctx, err := img.NewContext("main", flexos.LibRedis)
	if err != nil {
		log.Fatal(err)
	}
	sockAny, err := ctx.Call(flexos.LibRedis, "setup", 16)
	if err != nil {
		log.Fatal(err)
	}
	sock := sockAny.(int)
	for i := 0; i < 5; i++ {
		req := fmt.Sprintf("GET key%d\r\n", i)
		if _, err := ctx.Call(flexos.LibNet, "rx_enqueue", sock, []byte(req)); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		hit, err := ctx.Call(flexos.LibRedis, "serve_get")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("request %d served, hit=%v\n", i, hit)
	}

	// 4. The simulated machine accounts every cycle: compute, gates,
	// copies.
	fmt.Printf("\nsimulated time: %.3f us, cross-compartment gate crossings: %d\n",
		img.Mach.Seconds()*1e6, img.Crossings())
}
