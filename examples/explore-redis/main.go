// Explore-redis reproduces the paper's exploration workflow (§5, Fig. 8)
// end to end through the public API: generate the 80-configuration Redis
// design space, measure it in parallel under partial safety ordering
// with monotonic pruning, and print the safest configurations that
// sustain 500k GET/s — then render one of them back to a configuration
// file, and re-explore under a tighter budget against the measurement
// memo, which re-measures only the points pruning skipped before.
//
// Run with: go run ./examples/explore-redis
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"flexos"
)

func main() {
	const budget = 500_000 // req/s, like the paper's Fig. 8
	const requests = 250

	cfgs := flexos.Fig6Space(flexos.RedisComponents())
	fmt.Printf("design space: %d configurations (5 partitions x 16 hardening sets)\n", len(cfgs))

	measure := func(c *flexos.ExploreConfig) (float64, error) {
		res, err := flexos.BenchmarkRedis(c.Spec(flexos.TCBLibs()), requests)
		if err != nil {
			return 0, err
		}
		return res.ReqPerSec, nil
	}

	// One query expresses the whole workflow: the space, the
	// measurement, the throughput floor, pruning, and a memo that
	// remembers every measurement for later runs. The context could
	// carry a deadline; Background means "run to completion".
	memo := flexos.NewExploreMemo()
	q := flexos.NewQuery(cfgs).
		MeasureScalar(measure).
		Floor(flexos.MetricThroughput, budget).
		Prune(true). // skip configs dominated by a budget violation
		Memo(memo)   // remember every measurement for later runs
	res, err := q.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured %d/%d configurations (monotonic pruning skipped the rest)\n\n",
		res.Evaluated, res.Total)

	// The performance spectrum, like Figure 6.
	perfs := make([]float64, 0, len(res.Measurements))
	for _, m := range res.Measurements {
		if m.Evaluated {
			perfs = append(perfs, m.Perf)
		}
	}
	sort.Float64s(perfs)
	fmt.Printf("throughput range: %.0fk .. %.0fk req/s\n\n",
		perfs[0]/1000, perfs[len(perfs)-1]/1000)

	// The stars of Figure 8: the safest configurations meeting the
	// budget.
	fmt.Printf("safest configurations sustaining %dk req/s:\n", budget/1000)
	for _, c := range res.SafestConfigs() {
		fmt.Printf("  * %-55s %8.1fk req/s\n", c.Label(), res.Measurements[c.ID].Perf/1000)
	}

	// Ship one: render the winner back to the configuration-file format
	// the toolchain consumes.
	winner := res.SafestConfigs()[0]
	fmt.Println("\nchosen configuration file:")
	cfg := &flexos.Config{Gate: "full", Sharing: "dss"}
	spec := winner.Spec(flexos.TCBLibs())
	for i, comp := range spec.Comps {
		decl := flexos.ConfigCompartment{Name: comp.Name, Mechanism: "intel-mpk", Default: i == 0}
		for lib, hs := range comp.LibHardening {
			_ = lib
			if !hs.Empty() {
				decl.Hardening = []string{"stackprotector", "ubsan", "kasan"}
				break
			}
		}
		cfg.Compartments = append(cfg.Compartments, decl)
		if i > 0 {
			for _, lib := range comp.Libs {
				cfg.Libraries = append(cfg.Libraries, flexos.ConfigLibAssignment{
					Library: lib, Compartment: comp.Name,
				})
			}
		}
	}
	fmt.Print(flexos.RenderConfig(cfg))

	// What if the budget were tighter? The memo holds every point the
	// first pass measured, so re-exploring only pays for the configs
	// pruning skipped last time.
	tight, err := flexos.NewQuery(cfgs).
		MeasureScalar(measure).
		Floor(flexos.MetricThroughput, budget*1.2).
		Memo(memo).
		Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nre-explored at %.0fk req/s: %d fresh measurements, %d memo hits, %d safest\n",
		budget*1.2/1000, tight.Evaluated, tight.MemoHits, len(tight.Safest))
}
