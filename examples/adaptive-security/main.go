// Adaptive-security demonstrates the §7 use case "As Secure as You can
// Afford": a service provider runs, at any time, the safest Redis
// configuration that can sustain the *actual* client load, rather than
// provisioning for peak load and leaving defenses off during quiet
// hours.
//
// The example explores the design space once, then walks a simulated
// daily load curve and shows which configuration the operator would
// deploy at each level — strong isolation plus full hardening at night,
// gracefully shedding defenses as the morning traffic ramps up.
//
// Run with: go run ./examples/adaptive-security
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"flexos"
)

func main() {
	const requests = 250
	cfgs := flexos.Fig6Space(flexos.RedisComponents())
	measure := func(c *flexos.ExploreConfig) (float64, error) {
		res, err := flexos.BenchmarkRedis(c.Spec(flexos.TCBLibs()), requests)
		if err != nil {
			return 0, err
		}
		return res.ReqPerSec, nil
	}

	// Exhaustively measure once (offline, e.g. in CI); an unconstrained
	// query measures everything, and the results are reused for every
	// load level.
	ctx := context.Background()
	res, err := flexos.NewQuery(cfgs).MeasureScalar(measure).Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	// A simulated day: load in requests/s.
	day := []struct {
		hour string
		load float64
	}{
		{"03:00", 150_000},
		{"08:00", 400_000},
		{"12:00", 700_000},
		{"19:00", 950_000},
		{"23:00", 300_000},
	}

	fmt.Println("hour   demand      deployed configuration                              sustains")
	for _, slot := range day {
		// The safest configuration whose measured throughput covers the
		// demand: re-rank the poset with the demand as a throughput
		// floor. The query re-runs against the already-measured numbers,
		// so this is instantaneous — and an infeasible demand surfaces
		// as ErrNoFeasible rather than a silent empty set.
		best, err := flexos.NewQuery(cfgs).
			MeasureScalar(func(c *flexos.ExploreConfig) (float64, error) {
				return res.Measurements[c.ID].Perf, nil // reuse offline numbers
			}).
			Floor(flexos.MetricThroughput, slot.load).
			Run(ctx)
		if err != nil && !errors.Is(err, flexos.ErrNoFeasible) {
			log.Fatal(err)
		}
		if len(best.Safest) == 0 {
			fmt.Printf("%s  %7.0fk  no configuration sustains this load\n", slot.hour, slot.load/1000)
			continue
		}
		pick := best.SafestConfigs()[0]
		fmt.Printf("%s  %7.0fk  %-50s %8.0fk req/s\n",
			slot.hour, slot.load/1000, pick.Label(), res.Measurements[pick.ID].Perf/1000)
	}

	fmt.Println("\nRebuilding between these images is a configuration-file change;")
	fmt.Println("the engineering cost of switching the safety profile is nil (§7).")
}
