// Command serve-clients demonstrates exploration-as-a-service: it
// boots an in-process flexos-serve daemon, then plays three client
// roles against it over real HTTP —
//
//  1. a storm of identical requests (at different worker counts!)
//     that coalesce onto one engine pass and all receive
//     byte-identical reports,
//  2. a streaming client that receives each measurement the moment
//     the engine decides it, in deterministic input order,
//  3. a repeat visitor whose request is served entirely from the
//     daemon's shared memo.
//
// The same protocol is spoken by `flexos-explore -remote URL` and by
// plain curl against `flexos-serve` (see the README's Serving
// section).
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"sync"

	"flexos/internal/cli"
	"flexos/internal/serve"
)

func main() {
	srv, err := serve.New(serve.Config{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()
	client := &cli.Client{BaseURL: ts.URL, HTTPClient: ts.Client()}
	ctx := context.Background()

	// 1. The duplicate storm: five callers ask for the same slice of
	// the space at five different worker counts. Worker count never
	// changes result bytes, so all five share one canonical request
	// key — at most one engine pass runs, and every caller gets the
	// same bytes.
	const callers = 5
	reports := make([]string, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := client.Explore(ctx, cli.Request{Scenario: "redis-get90", Workers: 1 + i})
			if err != nil {
				log.Fatal(err)
			}
			reports[i] = resp.Report
		}(i)
	}
	wg.Wait()
	identical := true
	for i := 1; i < callers; i++ {
		identical = identical && reports[i] == reports[0]
	}
	fmt.Printf("%d concurrent identical requests, all responses byte-identical: %v\n", callers, identical)
	fmt.Printf("served report:\n%s\n", reports[0])

	// 2. A streaming client: the same NDJSON protocol curl -N speaks.
	lines := 0
	final, err := client.ExploreStream(ctx, cli.Request{Scenario: "redis-get90", Budgets: []string{"400000"}},
		func(string) { lines++ })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed exploration: %d measurements, then the report (%d bytes)\n",
		lines, len(final.Report))

	// 3. The repeat visitor: the daemon's memo is process-wide, so the
	// repeat measures nothing.
	repeat, err := client.Explore(ctx, cli.Request{Scenario: "redis-get90"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repeat visit: evaluated %d, memo hits %d — and byte-identical to the first answer: %v\n",
		repeat.Stats.Evaluated, repeat.Stats.MemoHits, repeat.Report == reports[0])

	st := srv.Stats()
	fmt.Printf("daemon stats: %d requests, %d engine passes, %d coalesced, hit rate %.1f%%\n",
		st.Requests, st.FlightsStarted, st.Coalesced, st.HitRatePct)
}
