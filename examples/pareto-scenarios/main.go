// Pareto-scenarios walks the multi-metric workflow end to end:
//
//  1. pick a scenario from the workload library (a 90% GET / 10% SET
//     Redis mix),
//  2. explore its 80-configuration design space with the parallel
//     engine, budgeting on p99 latency instead of throughput,
//  3. print the safest configurations under the latency ceiling, and
//  4. extract the safety × throughput × memory Pareto frontier — the
//     configurations actually worth picking.
//
// Everything runs on the deterministic simulated machine, so the output
// is reproducible for any -workers value.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"flexos"
)

func main() {
	workers := flag.Int("workers", 0, "measurement workers (<= 0: GOMAXPROCS)")
	p99Budget := flag.Float64("p99", 2.0, "p99 latency ceiling in microseconds")
	flag.Parse()

	sc, ok := flexos.ScenarioByName("redis-get90")
	if !ok {
		fmt.Fprintln(os.Stderr, "scenario library is missing redis-get90")
		os.Exit(1)
	}
	fmt.Printf("scenario: %s — %s\n", sc.Name(), sc.Description())

	quad, _ := sc.Quad()
	cfgs := flexos.Fig6Space(quad)
	memo := flexos.NewExploreMemo()

	// Constrain on tail latency AND footprint: a configuration
	// qualifies when its p99 stays at or below the ceiling and it fits
	// in 400 KB of simulated memory. Both are ceilings on cost metrics,
	// so pruning stays sound — they only grow as configurations get
	// safer.
	ctx := context.Background()
	res, err := flexos.NewQuery(cfgs).
		Workload(sc).
		Ceiling(flexos.MetricP99, *p99Budget).
		Ceiling(flexos.MetricPeakMem, 400_000).
		RankBy(flexos.MetricP99).
		Workers(*workers).
		Prune(true).
		Memo(memo).
		Run(ctx)
	if err != nil && !errors.Is(err, flexos.ErrNoFeasible) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("explored %d/%d configurations under a %.2fµs p99 ceiling and a 400KB memory ceiling\n",
		res.Evaluated, res.Total, *p99Budget)
	fmt.Printf("safest configurations meeting both ceilings: %d\n", len(res.Safest))
	for _, i := range res.Safest {
		m := res.Measurements[i]
		fmt.Printf("  * %-55s %s\n", m.Config.Label(), m.Metrics)
	}

	// The frontier needs every vector, so rerun unconstrained against
	// the shared memo: only the points pruning skipped are re-measured.
	full, err := flexos.NewQuery(cfgs).
		Workload(sc).
		Workers(*workers).
		Memo(memo).
		Run(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	front := full.ParetoFront()
	levels := full.SafetyLevels()
	fmt.Printf("\nPareto frontier (safety x throughput x memory): %d configurations\n", len(front))
	for _, i := range front {
		m := full.Measurements[i]
		fmt.Printf("  L%d %-55s %.1fk op/s, %.0f KiB peak\n",
			levels[i], m.Config.Label(), m.Metrics.Throughput/1000,
			float64(m.Metrics.PeakMemBytes)/1024)
	}
}
