// Adaptive-reconfig-under-trace drives the §7 "As Secure as You Can
// Afford" policy from a measured traffic trace instead of a
// hand-written day table (compare examples/adaptive-security, which
// this extends). A synthesized diurnal trace — the same shape CI
// replays with flexos-loadgen — provides the phase schedule: each
// phase carries its own arrival rate and scenario mix, and the
// operator deploys, per phase, the safest Redis configuration whose
// measured throughput covers that phase's demand.
//
// The demand model normalizes phase arrival rates onto the service's
// capacity envelope: the busiest phase is provisioned at 90% of the
// fastest configuration's measured throughput, quieter phases
// proportionally less. Night traffic therefore buys full hardening;
// the flash crowd sheds exactly as much protection as it must.
//
// Run with: go run ./examples/adaptive-reconfig-under-trace
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"flexos"
	"flexos/internal/trace"
)

func main() {
	const requests = 250

	// The trace: 60 seconds of the diurnal shape, seed-pinned so this
	// example prints the same report on every machine. flexos-loadgen
	// -synth diurnal -seed 42 replays the identical event sequence
	// against a live cluster.
	tr, err := trace.Synthesize(trace.DiurnalSpec(42, 60_000))
	if err != nil {
		log.Fatal(err)
	}

	// Measure the design space once, offline and unconstrained; every
	// phase decision below re-ranks these numbers without re-measuring.
	cfgs := flexos.Fig6Space(flexos.RedisComponents())
	measure := func(c *flexos.ExploreConfig) (float64, error) {
		res, err := flexos.BenchmarkRedis(c.Spec(flexos.TCBLibs()), requests)
		if err != nil {
			return 0, err
		}
		return res.ReqPerSec, nil
	}
	ctx := context.Background()
	offline, err := flexos.NewQuery(cfgs).MeasureScalar(measure).Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	peakCapacity := 0.0
	for _, m := range offline.Measurements {
		if m.Perf > peakCapacity {
			peakCapacity = m.Perf
		}
	}

	// Per-phase arrival rates straight from the trace's timestamps.
	type phaseLoad struct {
		name       string
		first, end int64 // ms of trace time
		events     int
	}
	var phases []*phaseLoad
	byName := map[string]*phaseLoad{}
	for _, ev := range tr.Events {
		ph, ok := byName[ev.Phase]
		if !ok {
			ph = &phaseLoad{name: ev.Phase, first: ev.AtMs}
			byName[ev.Phase] = ph
			phases = append(phases, ph)
		}
		ph.events++
		ph.end = ev.AtMs
	}
	peakRate := 0.0
	rate := func(ph *phaseLoad) float64 {
		span := ph.end - ph.first
		if span <= 0 {
			span = 1000
		}
		return float64(ph.events) * 1000 / float64(span)
	}
	for _, ph := range phases {
		if r := rate(ph); r > peakRate {
			peakRate = r
		}
	}

	fmt.Printf("trace %q: %d events over %.0fs in %d phases; peak capacity %.0fk req/s\n\n",
		tr.Name, len(tr.Events), float64(tr.DurationMs())/1000, len(phases), peakCapacity/1000)
	fmt.Println("phase      window        rate     demand   deployed configuration                              sustains")
	for _, ph := range phases {
		// Busiest phase → 90% of peak capacity; others proportional.
		demand := rate(ph) / peakRate * 0.9 * peakCapacity
		best, err := flexos.NewQuery(cfgs).
			MeasureScalar(func(c *flexos.ExploreConfig) (float64, error) {
				return offline.Measurements[c.ID].Perf, nil // reuse offline numbers
			}).
			Floor(flexos.MetricThroughput, demand).
			Run(ctx)
		if err != nil && !errors.Is(err, flexos.ErrNoFeasible) {
			log.Fatal(err)
		}
		if len(best.Safest) == 0 {
			fmt.Printf("%-9s %3d-%3ds  %5.1f/s  %6.0fk  no configuration sustains this demand\n",
				ph.name, ph.first/1000, ph.end/1000, rate(ph), demand/1000)
			continue
		}
		pick := best.SafestConfigs()[0]
		fmt.Printf("%-9s %3d-%3ds  %5.1f/s  %6.0fk  %-50s %7.0fk req/s\n",
			ph.name, ph.first/1000, ph.end/1000, rate(ph), demand/1000,
			pick.Label(), offline.Measurements[pick.ID].Perf/1000)
	}

	fmt.Println("\nThe same trace drives flexos-loadgen against a live cluster;")
	fmt.Println("phase boundaries there are reconfiguration points, and each")
	fmt.Println("rebuild is a configuration-file change (§7).")
}
