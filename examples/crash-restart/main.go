// Crash-restart demonstrates the §7 use case "Dealing with Crashed
// Software": when a deployment crashes with a memory error, the standard
// reflex is to restart it as-is and examine the fault later. With FlexOS
// it is wiser to restart a *safer configuration of the same software*,
// so that if the crash was an exploit being debugged by an attacker, the
// next attempt lands in a hardened, compartmentalized image.
//
// The example runs a Redis image that "crashes" (a simulated heap
// overflow in the network stack), then walks *up* the safety poset from
// the crashed configuration and redeploys the next safer configuration
// that still meets the SLA — repeating until the exploit attempt is
// contained.
//
// Run with: go run ./examples/crash-restart
package main

import (
	"context"
	"fmt"
	"log"

	"flexos"
)

func main() {
	const sla = 400_000 // req/s the service must sustain
	const requests = 250

	cfgs := flexos.Fig6Space(flexos.RedisComponents())
	measure := func(c *flexos.ExploreConfig) (float64, error) {
		res, err := flexos.BenchmarkRedis(c.Spec(flexos.TCBLibs()), requests)
		if err != nil {
			return 0, err
		}
		return res.ReqPerSec, nil
	}
	// Offline exploration pass: an unconstrained query measures
	// everything.
	res, err := flexos.NewQuery(cfgs).MeasureScalar(measure).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	poset := res.Poset()

	// Day 0: the operator deployed the fastest configuration.
	current := 0
	for i, m := range res.Measurements {
		if m.Perf > res.Measurements[current].Perf {
			current = i
		}
	}
	fmt.Printf("deployed: %-55s %8.0fk req/s\n",
		cfgs[current].Label(), res.Measurements[current].Perf/1000)

	// A crash report arrives (memory error in the network stack).
	for hop := 1; hop <= 3; hop++ {
		fmt.Printf("\n!! crash detected (memory error) — restarting a safer configuration\n")

		// Candidates: configurations strictly safer than the current
		// one that still meet the SLA; pick the fastest of those.
		next := -1
		for _, j := range poset.Above(current) {
			if res.Measurements[j].Perf < sla {
				continue
			}
			if next == -1 || res.Measurements[j].Perf > res.Measurements[next].Perf {
				next = j
			}
		}
		if next == -1 {
			fmt.Println("no safer configuration meets the SLA; keeping maximum hardening")
			break
		}
		current = next
		fmt.Printf("redeployed: %-53s %8.0fk req/s (%d comps, %d hardened)\n",
			cfgs[current].Label(), res.Measurements[current].Perf/1000,
			cfgs[current].NumCompartments(), cfgs[current].HardenedCount())
	}

	fmt.Println("\nEach restart is a rebuild with a different configuration file —")
	fmt.Println("no code changes, seconds of toolchain time (§7).")
}
