package flexos_test

import (
	"context"
	"fmt"

	"flexos"
)

// ExampleBuild builds the paper's example configuration and prints the
// gate bindings the toolchain instantiated.
func ExampleBuild() {
	cat := flexos.FullCatalog()
	cfg, _ := flexos.ParseConfig(`
compartments:
- comp1:
    mechanism: intel-mpk
    default: True
- comp2:
    mechanism: intel-mpk
libraries:
- lwip: comp2
gate: full
sharing: dss
`)
	spec, _ := flexos.SpecFromConfig(cfg, cat)
	img, _ := flexos.Build(cat, spec)
	for _, g := range img.Report().Gates {
		fmt.Printf("%s -> %s via %s (%d cycles)\n", g.From, g.To, g.Gate, g.Cost)
	}
	// Output:
	// comp1 -> comp2 via mpk/full (108 cycles)
	// comp2 -> comp1 via mpk/full (108 cycles)
}

// ExampleNewQuery runs partial safety ordering over the Redis design
// space with a synthetic measurement (real measurements use
// BenchmarkRedis): one query, a throughput floor, monotonic pruning.
func ExampleNewQuery() {
	cfgs := flexos.Fig6Space(flexos.RedisComponents())
	measure := func(c *flexos.ExploreConfig) (float64, error) {
		return 1000 - 150*float64(c.NumCompartments()-1) - 80*float64(c.HardenedCount()), nil
	}
	res, _ := flexos.NewQuery(cfgs).
		MeasureScalar(measure).
		Floor(flexos.MetricThroughput, 500).
		Prune(true).
		Run(context.Background())
	fmt.Printf("space=%d evaluated=%d safest=%d\n", res.Total, res.Evaluated, len(res.Safest))
	// Output:
	// space=80 evaluated=79 safest=9
}

// ExampleQuery_Workload explores the Redis design space under a mixed
// GET/SET scenario workload, constraining p99 latency instead of
// throughput, and extracts the safety × throughput × memory Pareto
// frontier from an unconstrained run. Everything runs on the
// deterministic simulated machine, so the counts are reproducible for
// any worker count.
func ExampleQuery_Workload() {
	sc, _ := flexos.ScenarioByName("redis-get90")
	quad, _ := sc.Quad()
	cfgs := flexos.Fig6Space(quad)
	res, _ := flexos.NewQuery(cfgs).
		Workload(sc).
		Ceiling(flexos.MetricP99, 2.0).
		Prune(true).
		Run(context.Background())
	fmt.Printf("space=%d evaluated=%d safest=%d\n", res.Total, res.Evaluated, len(res.Safest))

	full, _ := flexos.NewQuery(cfgs).Workload(sc).Run(context.Background())
	fmt.Printf("pareto=%d\n", len(full.ParetoFront()))
	// Output:
	// space=80 evaluated=54 safest=10
	// pareto=12
}

// ExampleScenario_Run measures one scenario on a single image and reads
// the full metric vector.
func ExampleScenario_Run() {
	sc, _ := flexos.ScenarioByName("sqlite-batch8")
	metrics, _ := sc.Run(flexos.ImageSpec{
		Mechanism: "none",
		Comps: []flexos.CompSpec{{
			Name: "c0",
			Libs: append(flexos.TCBLibs(), sc.Components()...),
		}},
	})
	fmt.Printf("ops=%d ordered=%v crossings=%d\n",
		metrics.Ops, metrics.P50us <= metrics.P99us && metrics.P99us <= metrics.MaxUs,
		metrics.Crossings)
	// Output:
	// ops=96 ordered=true crossings=0
}

// ExampleImage_NewContext shows the runtime side: spawning a thread in
// an application compartment and crossing a gate.
func ExampleImage_NewContext() {
	cat := flexos.FullCatalog()
	img, _ := flexos.Build(cat, flexos.ImageSpec{
		Mechanism: "intel-mpk",
		Comps: []flexos.CompSpec{
			{Name: "c0", Libs: append(flexos.TCBLibs(), flexos.LibRedis, flexos.LibC, flexos.LibSched)},
			{Name: "net", Libs: []string{flexos.LibNet}},
		},
	})
	ctx, _ := img.NewContext("main", flexos.LibRedis)
	sock, _ := ctx.Call(flexos.LibNet, "socket") // crosses an MPK gate
	fmt.Printf("socket=%v crossings=%d\n", sock, img.Crossings())
	// Output:
	// socket=1 crossings=1
}
