// Benchmarks for the trace-driven serving path: synthesizing a traffic
// trace, deriving its issue schedule, and replaying it closed-loop
// against an in-process flexos-serve daemon. These are the numbers the
// loadgen CI job measures over real sockets; here they run over
// httptest so benchguard can track the stack's regression ratio next
// to the engine benchmarks.
package flexos_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"flexos/internal/cli"
	"flexos/internal/serve"
	"flexos/internal/trace"
)

// benchTraceSpan is the trace-time span the serve-trace benchmarks
// synthesize: long enough to cross all three diurnal phases, short
// enough that one replay is tens of requests, not thousands.
const benchTraceSpan = 30_000 // ms

// BenchmarkServeTraceSynthesize measures trace synthesis alone:
// turning a phase schedule into a checksummed, normalized event
// sequence. Pure CPU — no server involved. A full hour of trace time
// (several thousand events) keeps the cost large enough for
// benchguard's %.4f-precision ratio to resolve.
func BenchmarkServeTraceSynthesize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr, err := trace.Synthesize(trace.DiurnalSpec(42, 3_600_000))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(tr.Events)), "events")
		}
	}
}

// BenchmarkServeTraceReplay replays the 30s diurnal trace closed-loop
// against an in-process daemon over httptest sockets. The first
// iteration pays for the explorations; after that the daemon's memo
// answers everything, so steady-state time is the serving stack itself:
// HTTP, request decode, memo lookup, response encode, and the replay
// harness's scheduling and latency accounting.
func BenchmarkServeTraceReplay(b *testing.B) {
	srv, err := serve.New(serve.Config{Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()
	tr, err := trace.Synthesize(trace.DiurnalSpec(42, benchTraceSpan))
	if err != nil {
		b.Fatal(err)
	}
	sched := trace.BuildSchedule(tr, trace.ScheduleOpts{Speedup: 1000})
	client := &cli.Client{BaseURL: ts.URL, HTTPClient: ts.Client(), Retry: cli.DefaultRetry}
	opts := trace.ReplayOpts{Client: client, Conns: 4, ClosedLoop: true, Seed: tr.Seed}

	// Warm the daemon's memo so every timed iteration measures the
	// serving stack, not the first exploration of each configuration.
	warm, err := trace.Replay(context.Background(), tr.Name, sched, opts)
	if err != nil {
		b.Fatal(err)
	}
	if warm.Failed > 0 {
		b.Fatalf("%d failed requests during warmup: %v", warm.Failed, warm.Errors)
	}
	b.ResetTimer()
	var rps float64
	for i := 0; i < b.N; i++ {
		rep, err := trace.Replay(context.Background(), tr.Name, sched, opts)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Failed > 0 {
			b.Fatalf("%d failed requests: %v", rep.Failed, rep.Errors)
		}
		if rep.ResponseSum != warm.ResponseSum {
			b.Fatalf("response digest drifted: %s vs %s", rep.ResponseSum, warm.ResponseSum)
		}
		rps = rep.Rps
	}
	b.ReportMetric(rps, "req/s")
	b.ReportMetric(float64(len(sched)), "requests")
}
