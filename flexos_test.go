package flexos_test

import (
	"strings"
	"testing"

	"flexos"
)

// paperConfig adapts the §3 example configuration to the shipped
// components.
const paperConfig = `
compartments:
- comp1:
    mechanism: intel-mpk
    default: True
- comp2:
    mechanism: intel-mpk
    hardening: [cfi, asan]
libraries:
- libredis: comp1
- lwip: comp2
gate: full
sharing: dss
`

func TestPublicAPIEndToEnd(t *testing.T) {
	cat := flexos.FullCatalog()
	cfg, err := flexos.ParseConfig(paperConfig)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := flexos.SpecFromConfig(cfg, cat)
	if err != nil {
		t.Fatal(err)
	}
	img, err := flexos.Build(cat, spec)
	if err != nil {
		t.Fatal(err)
	}
	r := img.Report()
	if r.Mechanism != "intel-mpk" || len(r.Comps) != 2 {
		t.Fatalf("report = %+v", r)
	}
	if !strings.Contains(r.String(), "mpk/full") {
		t.Fatalf("report missing gate binding:\n%s", r.String())
	}
}

func TestFullCatalogContents(t *testing.T) {
	cat := flexos.FullCatalog()
	for _, lib := range []string{
		flexos.LibBoot, flexos.LibMM, flexos.LibSched, flexos.LibC,
		flexos.LibNet, flexos.LibVFS, flexos.LibRamfs, flexos.LibTime,
		flexos.LibRedis, flexos.LibNginx, flexos.LibSQLite, flexos.LibIPerf,
	} {
		if _, ok := cat.Lookup(lib); !ok {
			t.Errorf("FullCatalog missing %q", lib)
		}
	}
	if cat.Len() != 12 {
		t.Fatalf("catalog has %d components, want 12", cat.Len())
	}
}

func TestFullCatalogIndependence(t *testing.T) {
	// Component state must be per catalog: two catalogs, two images,
	// no cross-talk.
	spec := flexos.ImageSpec{
		Mechanism: "none",
		Comps: []flexos.CompSpec{{
			Name: "c0",
			Libs: append(flexos.TCBLibs(),
				flexos.LibSched, flexos.LibC, flexos.LibNet, flexos.LibRedis,
				flexos.LibVFS, flexos.LibRamfs, flexos.LibTime,
				flexos.LibNginx, flexos.LibSQLite, flexos.LibIPerf),
		}},
	}
	a, err := flexos.Build(flexos.FullCatalog(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := flexos.Build(flexos.FullCatalog(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ctxA, _ := a.NewContext("a", flexos.LibRedis)
	if _, err := ctxA.Call(flexos.LibRedis, "setup", 2); err != nil {
		t.Fatal(err)
	}
	ctxB, _ := b.NewContext("b", flexos.LibRedis)
	// Image B's redis must not see image A's socket.
	if _, err := ctxB.Call(flexos.LibNet, "rx_enqueue", 1, []byte("x")); err == nil {
		t.Fatal("catalog state leaked between images")
	}
}

func TestBenchmarkHelpers(t *testing.T) {
	one := func(libs ...string) flexos.ImageSpec {
		return flexos.ImageSpec{
			Mechanism: "none",
			Comps:     []flexos.CompSpec{{Name: "c0", Libs: append(flexos.TCBLibs(), libs...)}},
		}
	}
	if _, err := flexos.BenchmarkRedis(one(flexos.LibRedis, flexos.LibC, flexos.LibSched, flexos.LibNet), 20); err != nil {
		t.Fatal(err)
	}
	if _, err := flexos.BenchmarkNginx(one(flexos.LibNginx, flexos.LibC, flexos.LibSched, flexos.LibNet), 20); err != nil {
		t.Fatal(err)
	}
	if _, err := flexos.BenchmarkSQLite(one(flexos.LibSQLite, flexos.LibC, flexos.LibSched, flexos.LibVFS, flexos.LibRamfs, flexos.LibTime), 5); err != nil {
		t.Fatal(err)
	}
	if _, err := flexos.BenchmarkIPerf(one(flexos.LibIPerf, flexos.LibC, flexos.LibSched, flexos.LibNet), 256, 10); err != nil {
		t.Fatal(err)
	}
}

func TestExploreThroughPublicAPI(t *testing.T) {
	cfgs := flexos.Fig6Space(flexos.RedisComponents())
	if len(cfgs) != 80 {
		t.Fatalf("space = %d", len(cfgs))
	}
	synthetic := func(c *flexos.ExploreConfig) (float64, error) {
		return 1000 - 100*float64(c.NumCompartments()) - 50*float64(c.HardenedCount()), nil
	}
	res, err := flexos.Explore(cfgs, synthetic, 500, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Safest) == 0 {
		t.Fatal("no safest configs")
	}
}

func TestTableOnePublic(t *testing.T) {
	rows := flexos.TableOne(flexos.FullCatalog())
	// Table 1 has 8 rows: lwip, uksched, vfscore(+ramfs), uktime,
	// redis, nginx, sqlite, iperf.
	if len(rows) != 8 {
		t.Fatalf("Table 1 rows = %d, want 8", len(rows))
	}
	want := map[string]int{
		"lwip": 23, "uksched": 5, "vfscore": 12, "uktime": 0,
		"libredis": 16, "libnginx": 36, "libsqlite": 24, "libiperf": 4,
	}
	for _, r := range rows {
		if w, ok := want[r.Lib]; ok && r.SharedVars != w {
			t.Errorf("%s shared vars = %d, want %d (Table 1)", r.Lib, r.SharedVars, w)
		}
	}
}
