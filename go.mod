module flexos

go 1.24
