module flexos

go 1.23
