package flexos

import (
	"context"
	"errors"
	"iter"

	"flexos/internal/explore"
	"flexos/internal/store"
)

// Query is the one exploration surface of the package: a fluent
// builder over the unified engine. Construct it with NewQuery, chain
// option calls, then Run it (or Stream it) under a context:
//
//	res, err := flexos.NewQuery(flexos.Fig6Space(flexos.RedisComponents())).
//		Workload(sc).
//		Constrain(flexos.MetricThroughput, flexos.AtLeast, 500_000).
//		Constrain(flexos.MetricP99, flexos.AtMost, 2.5).
//		Workers(8).
//		Prune(true).
//		Run(ctx)
//
// A Query carries any number of simultaneous constraints (a throughput
// floor AND a p99 ceiling AND a memory ceiling, say); feasibility is
// their conjunction, and constraints in their natural direction drive
// monotonic pruning. The context cancels or deadlines the whole worker
// pool: Run returns an error wrapping ErrCanceled, promptly if the
// measure function watches the same context.
//
// A Query value is reusable: Run and Stream take a snapshot of the
// builder state, so the same Query may run several times (sharing a
// Memo makes the repeats nearly free) and builder calls between runs
// take effect on the next run. It is not safe for concurrent mutation.
type Query struct {
	space       []*ExploreConfig
	measure     func(*ExploreConfig) (Metrics, error)
	workload    string // memo namespace contributed by Workload
	namespace   string // caller-supplied extra namespace
	constraints []ExploreConstraint
	metric      Metric
	workers     int
	prune       bool
	budget      int
	seed        int64
	deltaOnly   bool
	memo        *ExploreMemo
	shard       explore.Shard
	cacheDir    string
	cacheRO     bool
	progress    func(done, total int)
	err         error
}

// NewQuery starts a query over a configuration space (from Fig6Space,
// Fig5Space, CrossAppSpace, or hand-built ExploreConfigs). Give it a
// measurement source (Workload, Measure or MeasureScalar) before
// running.
func NewQuery(space []*ExploreConfig) *Query { return &Query{space: space} }

// Workload measures every configuration by running w on it (each
// configuration is materialized into an image with the TCB libraries in
// the default compartment — see MeasureScenario). The workload's
// identity also namespaces the memo: for library Scenarios the
// namespace is "name/ops", so two scenarios — or one scenario at two
// op counts — never collide in a shared Memo, whatever Namespace the
// caller adds.
func (q *Query) Workload(w Workload) *Query {
	if w == nil {
		q.err = errors.New("flexos: Query.Workload called with a nil workload")
		return q
	}
	q.measure = MeasureScenario(w)
	if mk, ok := w.(interface{ MemoKey() string }); ok {
		q.workload = mk.MemoKey()
	} else {
		q.workload = w.Name()
	}
	return q
}

// Measure sets a custom multi-metric measure function. It must be
// deterministic and, when Workers != 1, safe for concurrent use. When
// sharing a Memo across different measure functions, namespace them
// apart with Namespace.
func (q *Query) Measure(fn func(*ExploreConfig) (Metrics, error)) *Query {
	q.measure = fn
	q.workload = ""
	return q
}

// MeasureScalar sets a scalar (higher-is-better) measure function;
// only the throughput dimension of each vector is populated.
func (q *Query) MeasureScalar(fn func(*ExploreConfig) (float64, error)) *Query {
	if fn == nil {
		q.measure = nil
		return q
	}
	return q.Measure(func(c *ExploreConfig) (Metrics, error) {
		v, err := fn(c)
		if err != nil {
			return Metrics{}, err
		}
		return Metrics{Throughput: v}, nil
	})
}

// Constrain adds one feasibility bound: the metric's value must satisfy
// `value op bound`. Call it repeatedly to intersect constraints, e.g. a
// throughput floor AND a p99 ceiling AND a memory ceiling. Constraints
// in their natural direction (AtLeast on rates, AtMost on costs) also
// drive monotonic pruning; unnatural ones only filter.
func (q *Query) Constrain(m Metric, op ConstraintOp, bound float64) *Query {
	q.constraints = append(q.constraints, ExploreConstraint{Metric: m, Op: op, Bound: bound})
	return q
}

// Floor is Constrain(m, AtLeast, bound).
func (q *Query) Floor(m Metric, bound float64) *Query { return q.Constrain(m, AtLeast, bound) }

// Ceiling is Constrain(m, AtMost, bound).
func (q *Query) Ceiling(m Metric, bound float64) *Query { return q.Constrain(m, AtMost, bound) }

// RankBy sets the ranking metric — the dimension Measurement.Perf and
// the DOT shading report. Default: the first constraint's metric, or
// throughput when unconstrained.
func (q *Query) RankBy(m Metric) *Query {
	q.metric = m
	return q
}

// Workers sets the number of concurrent measurement goroutines
// (<= 0: GOMAXPROCS). Results are byte-identical for every value.
func (q *Query) Workers(n int) *Query {
	q.workers = n
	return q
}

// Prune toggles poset-aware monotonic pruning (§5): skip a
// configuration when a strictly-less-safe ancestor already violated a
// monotone constraint.
func (q *Query) Prune(on bool) *Query {
	q.prune = on
	return q
}

// MeasureBudget caps the number of fresh measurements a run may spend
// (<= 0: unlimited, the default) and switches the engine to budgeted
// guided search: branch-and-bound over the safety posets when pruning
// is on — one probe failing a monotone floor prunes its whole up-set
// before measuring it — then successive-halving ranked sampling of
// the rest. Configurations the budget never reaches are skipped
// (Result.Skipped); everything reported also appears, bit-for-bit, in
// the exhaustive run's result. Memo/Cache hits are free: they never
// consume budget. For a fixed (budget, Seed) pair results are
// byte-identical at every worker count.
func (q *Query) MeasureBudget(n int) *Query {
	q.budget = n
	return q
}

// Seed sets the sampling seed of a budgeted run (see MeasureBudget):
// candidate order is a splittable PRNG stream over canonical
// configuration keys, so a different seed samples a different subset
// and a fixed seed always samples the same one. Ignored without a
// budget.
func (q *Query) Seed(s int64) *Query {
	q.seed = s
	return q
}

// DeltaOnly switches the run to delta re-exploration: only the
// configurations whose canonical identity is absent from the attached
// Cache (or backed Memo) are measured — present keys are skipped
// without loading (Result.Skipped). Fresh measurements write through
// to the store as usual, so after a delta run a plain warm run of the
// edited space yields the full merged report, byte-identical to a
// cold exhaustive run. Requires Cache or a Memo; incompatible with
// MeasureBudget; pruning is ignored.
func (q *Query) DeltaOnly() *Query {
	q.deltaOnly = true
	return q
}

// Memo attaches a measurement cache shared across runs (see
// NewExploreMemo). Results memoize under the workload's namespace plus
// any Namespace the caller adds.
func (q *Query) Memo(m *ExploreMemo) *Query {
	q.memo = m
	return q
}

// Cache attaches a persistent result store to the query: every Run
// (and Stream) opens the store directory — creating it on first use —
// consults it before measuring any configuration, writes every fresh
// measurement through to it, and flushes and closes it when the run
// returns. A rerun of the same query therefore measures only
// configurations the directory has never seen, in this process or any
// other — results are byte-identical whether the run is cold, warm or
// mixed, at any worker count; only the Evaluated/MemoHits statistics
// move. Corrupt, truncated or future-version store files are
// quarantined and re-measured, never trusted (see internal/store). A
// deferred store write failure surfaces from Run unless the run
// itself failed first (a completed-but-infeasible run counts as
// success for this purpose: the store error wins over ErrNoFeasible).
//
// The store namespace is the query's Workload/Namespace composition,
// so distinct workloads share one directory without collisions.
// Cache supersedes Memo: combining both in one query is an error —
// share the cache directory instead, it carries the same entries.
func (q *Query) Cache(dir string) *Query {
	q.cacheDir = dir
	q.cacheRO = false
	return q
}

// CacheReadOnly is Cache for a store that must not grow: hits load
// from the directory, misses measure as usual but nothing is written
// back, and opening a directory that does not exist is an error.
func (q *Query) CacheReadOnly(dir string) *Query {
	q.cacheDir = dir
	q.cacheRO = true
	return q
}

// Shard restricts the run to one deterministic slice of the space:
// the index-th of count contiguous, order-preserving, pairwise
// disjoint partitions of the canonical enumeration (sizes differ by
// at most one). Shards use exactly the memo keys the full run would,
// so count sharded runs — each with its own Cache directory, merged
// with flexos-merge or store.Merge — warm-start the unsharded query
// into a byte-identical result. Shard(0, 0) (the default) and
// Shard(0, 1) run the whole space; an out-of-range pair fails at Run.
func (q *Query) Shard(index, count int) *Query {
	q.shard = explore.Shard{Index: index, Count: count}
	return q
}

// SpaceHash digests the query's canonical identity — the composed
// memo namespace plus every configuration key, in enumeration order —
// into a 16-hex-digit handle. Two queries share a hash exactly when
// they would populate the same result-store entries, which makes the
// hash the natural cache key for a Cache directory (the CI
// warm-explore job keys its restored store on it). The hash covers
// the whole space regardless of Shard, so all shards of one
// exploration agree on it.
func (q *Query) SpaceHash() string {
	return explore.SpaceHash(q.namespaceKey(), q.space)
}

// CanonicalKey digests everything about the query that can change the
// bytes of its result — the space identity (SpaceHash: composed memo
// namespace plus every configuration key), the ranking metric, the
// constraint conjunction, pruning, and the shard — into a stable
// string. Two queries share a key exactly when Run is guaranteed to
// produce byte-identical results for both, which is what lets a
// serving layer (flexos-serve) coalesce concurrent requests onto one
// engine pass. Workers, Memo, Cache and the progress hooks are
// deliberately excluded: none of them can change a result, only
// statistics and wall-clock time.
func (q *Query) CanonicalKey() string {
	return explore.CanonicalRequestKey(q.namespaceKey(), q.space, q.metric, q.constraints, q.prune, q.shard,
		q.budget, q.seed, q.deltaOnly)
}

// MemoNamespace returns the composed memo namespace the query's
// measurements are keyed under — the caller's Namespace joined with
// the Workload's identity. Together with a configuration it
// reproduces the exact memo/store key of that measurement (see
// MemoKey), which is how partial results travel between runs: a
// worker answering a shard reports (key, metrics) records, and any
// node holding the same namespace can replay them into its own memo.
func (q *Query) MemoNamespace() string { return q.namespaceKey() }

// SpaceSize returns the number of configurations the query would
// enumerate before sharding — the denominator of any Shard split.
func (q *Query) SpaceSize() int { return len(q.space) }

// Namespace adds a caller-defined namespace component to the memo keys
// (e.g. a request count baked into a custom measure function). It
// composes with — never replaces — the Workload's own namespace.
func (q *Query) Namespace(s string) *Query {
	q.namespace = s
	return q
}

// Progress installs a progress callback, invoked after each
// configuration is decided (measured, memo-filled or pruned) with the
// count decided so far and the space size. It runs on the coordinating
// goroutine, never concurrently with itself.
func (q *Query) Progress(fn func(done, total int)) *Query {
	q.progress = fn
	return q
}

// namespaceKey composes the memo namespace: the caller's Namespace
// joined with the Workload's own identity.
func (q *Query) namespaceKey() string {
	ns := q.namespace
	if q.workload != "" {
		if ns != "" {
			ns += "|" + q.workload
		} else {
			ns = q.workload
		}
	}
	return ns
}

// request snapshots the builder into an engine request.
func (q *Query) request() (explore.Request, error) {
	if q.err != nil {
		return explore.Request{}, q.err
	}
	if q.measure == nil {
		return explore.Request{}, errors.New("flexos: query has no measurement source; call Workload, Measure or MeasureScalar")
	}
	if q.cacheDir != "" && q.memo != nil {
		return explore.Request{}, errors.New("flexos: Query.Cache and Query.Memo are exclusive; the cache directory already carries the memo's entries — share it instead")
	}
	if q.deltaOnly && q.cacheDir == "" && q.memo == nil {
		return explore.Request{}, errors.New("flexos: Query.DeltaOnly needs a store to diff against; call Cache or Memo")
	}
	return explore.Request{
		Space:         q.space,
		Measure:       q.measure,
		Metric:        q.metric,
		Constraints:   append([]ExploreConstraint(nil), q.constraints...),
		Workers:       q.workers,
		Prune:         q.prune,
		MeasureBudget: q.budget,
		Seed:          q.seed,
		DeltaOnly:     q.deltaOnly,
		Memo:          q.memo,
		Workload:      q.namespaceKey(),
		Shard:         q.shard,
		Progress:      q.progress,
	}, nil
}

// engineRun executes one snapshot of the query: it opens the cache
// store when one is configured (load-on-miss, write-through), runs the
// engine, and flushes and closes the store before returning — a store
// write failure surfaces here unless the run itself already failed.
func (q *Query) engineRun(ctx context.Context, req explore.Request) (*ExploreResult, error) {
	if q.cacheDir == "" {
		return explore.Engine{}.Run(ctx, req)
	}
	var (
		st  *store.Store
		err error
	)
	if q.cacheRO {
		st, err = store.OpenReadOnly(q.cacheDir)
	} else {
		st, err = store.Open(q.cacheDir)
	}
	if err != nil {
		return nil, err
	}
	req.Memo = explore.NewBackedMemo(st)
	res, rerr := explore.Engine{}.Run(ctx, req)
	// A deferred store write failure must not hide behind a completed
	// run: ErrNoFeasible still returns a full result, so the store
	// error wins there too — only a genuinely failed run outranks it.
	if cerr := st.Close(); cerr != nil && (rerr == nil || errors.Is(rerr, ErrNoFeasible)) {
		rerr = cerr
	}
	return res, rerr
}

// Run executes the query under ctx and returns the full exploration
// result. The error is nil on success; wraps ErrCanceled when ctx is
// canceled or its deadline expires; wraps ErrNoFeasible when the run
// completed but no configuration satisfied every constraint (the
// Result is still returned, fully populated); or is a *MeasureError
// when a measurement failed.
func (q *Query) Run(ctx context.Context) (*ExploreResult, error) {
	req, err := q.request()
	if err != nil {
		return nil, err
	}
	return q.engineRun(ctx, req)
}

// Stream executes the query incrementally: it returns an iterator over
// (configuration, metric vector) pairs — one per evaluated
// configuration, yielded as soon as the engine decides it — plus a
// final function that reports the complete *ExploreResult (and error)
// once iteration has finished.
//
//	stream, final := q.Stream(ctx)
//	for cfg, m := range stream {
//		fmt.Printf("%s: %s\n", cfg.Label(), m)
//	}
//	res, err := final()
//
// Pairs are yielded in input order regardless of worker count — the
// stream holds back out-of-order completions until every earlier
// configuration is decided — so streamed output is byte-identical for
// any Workers value, at the cost of bounded buffering. Pruned
// configurations carry no vector and are not yielded.
//
// The iterator is single-use. Breaking out of the loop cancels the
// remaining exploration; final then reports ErrCanceled. Calling final
// without having consumed the iterator runs the exploration to
// completion first (no pairs are yielded), so final never blocks on an
// unconsumed stream.
func (q *Query) Stream(ctx context.Context) (iter.Seq2[*ExploreConfig, Metrics], func() (*ExploreResult, error)) {
	var (
		res *ExploreResult
		err error
		ran bool
	)
	run := func(yield func(*ExploreConfig, Metrics) bool) {
		ran = true
		req, rerr := q.request()
		if rerr != nil {
			err = rerr
			return
		}
		sctx, cancel := context.WithCancel(ctx)
		defer cancel()
		// Observe indices are relative to the explored slice (the
		// shard when one is set), so the reorder buffers need only
		// cover that slice.
		n := req.Shard.Size(len(req.Space))
		var (
			buf     = make([]ExploreMeasurement, n)
			decided = make([]bool, n)
			next    int
			stopped bool
		)
		req.Observe = func(idx int, m ExploreMeasurement) {
			buf[idx] = m
			decided[idx] = true
			// Release the longest decided prefix, in input order.
			for next < n && decided[next] {
				m := buf[next]
				next++
				if m.Evaluated && !stopped && !yield(m.Config, m.Metrics) {
					stopped = true
					cancel() // consumer broke out: wind the engine down
				}
			}
		}
		res, err = q.engineRun(sctx, req)
	}
	seq := iter.Seq2[*ExploreConfig, Metrics](run)
	final := func() (*ExploreResult, error) {
		if !ran {
			run(func(*ExploreConfig, Metrics) bool { return true })
		}
		return res, err
	}
	return seq, final
}

// compatResult restores the legacy contract of the deprecated Explore*
// wrappers: an infeasible-but-complete run is not an error, just an
// empty Safest set.
func compatResult(res *ExploreResult, err error) (*ExploreResult, error) {
	if errors.Is(err, ErrNoFeasible) {
		return res, nil
	}
	return res, err
}
