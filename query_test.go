package flexos_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"flexos"
)

// syntheticScalar is a deterministic safety-monotone scalar measure.
func syntheticScalar(c *flexos.ExploreConfig) (float64, error) {
	return 1000 - 150*float64(c.NumCompartments()-1) - 80*float64(c.HardenedCount()), nil
}

func TestQueryMatchesDeprecatedExplore(t *testing.T) {
	cfgs := flexos.Fig6Space(flexos.RedisComponents())
	old, err := flexos.Explore(cfgs, syntheticScalar, 500, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := flexos.NewQuery(cfgs).
		MeasureScalar(syntheticScalar).
		Floor(flexos.MetricThroughput, 500).
		Prune(true).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Safest, old.Safest) || res.Evaluated != old.Evaluated {
		t.Fatalf("query diverges from deprecated wrapper: %v/%d vs %v/%d",
			res.Safest, res.Evaluated, old.Safest, old.Evaluated)
	}
}

func TestQueryRunCanceledContextReturnsErrCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := flexos.NewQuery(flexos.Fig6Space(flexos.RedisComponents())).
		MeasureScalar(syntheticScalar).
		Run(ctx)
	if !errors.Is(err, flexos.ErrCanceled) {
		t.Fatalf("canceled query returned %v, want ErrCanceled", err)
	}
}

func TestQueryNoMeasureSourceErrors(t *testing.T) {
	_, err := flexos.NewQuery(flexos.Fig6Space(flexos.RedisComponents())).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "measurement source") {
		t.Fatalf("measureless query returned %v", err)
	}
}

func TestQueryNoFeasibleReturnsTypedErrorAndResult(t *testing.T) {
	res, err := flexos.NewQuery(flexos.Fig6Space(flexos.RedisComponents())).
		MeasureScalar(syntheticScalar).
		Floor(flexos.MetricThroughput, 1e9).
		Run(context.Background())
	if !errors.Is(err, flexos.ErrNoFeasible) {
		t.Fatalf("infeasible query returned %v, want ErrNoFeasible", err)
	}
	if res == nil || res.Total != 80 || len(res.Safest) != 0 {
		t.Fatalf("infeasible query result = %+v", res)
	}
}

// TestQueryScenarioMemoNamespace is the regression test for the
// ExploreScenario memo-namespace gap: two different scenarios with the
// same op count sharing one memo — and the same caller-supplied
// namespace — must never inherit each other's measurements.
func TestQueryScenarioMemoNamespace(t *testing.T) {
	get90, ok := flexos.ScenarioByName("redis-get90")
	if !ok {
		t.Fatal("redis-get90 missing")
	}
	get50, ok := flexos.ScenarioByName("redis-get50")
	if !ok {
		t.Fatal("redis-get50 missing")
	}
	// Same ops count: under the old API with an explicit
	// opts.Workload, their memo keys collided.
	get90, get50 = get90.WithOps(40), get50.WithOps(40)

	quad, _ := get90.Quad()
	cfgs := flexos.Fig6Space(quad)
	memo := flexos.NewExploreMemo()

	run := func(sc *flexos.Scenario) *flexos.ExploreResult {
		t.Helper()
		res, err := flexos.NewQuery(cfgs).
			Workload(sc).
			Namespace("user-namespace"). // historically the collision trigger
			Memo(memo).
			Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run(get90)
	if first.MemoHits != 0 || first.Evaluated != first.Total {
		t.Fatalf("cold run: evaluated=%d hits=%d", first.Evaluated, first.MemoHits)
	}
	second := run(get50)
	if second.MemoHits != 0 {
		t.Fatalf("scenario memo namespaces collided: %d hits for a different scenario", second.MemoHits)
	}
	// Distinct vectors prove distinct measurements reached the memo.
	if first.Measurements[0].Metrics == second.Measurements[0].Metrics {
		t.Fatal("two different scenarios produced identical vectors — collision suspected")
	}
	// The same scenario re-run IS served from the memo.
	third := run(get90)
	if third.Evaluated != 0 || third.MemoHits != third.Total {
		t.Fatalf("warm rerun: evaluated=%d hits=%d", third.Evaluated, third.MemoHits)
	}
	// And the deprecated wrapper inherits the fix.
	dep, err := flexos.ExploreScenario(get50, flexos.MetricThroughput, 0,
		flexos.ExploreOptions{Memo: memo, Workload: "user-namespace"})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Evaluated != 0 || dep.MemoHits != dep.Total {
		t.Fatalf("deprecated wrapper no longer shares the fixed namespace: evaluated=%d hits=%d",
			dep.Evaluated, dep.MemoHits)
	}
	// Different op counts of one scenario must not collide either.
	ops80, err := flexos.NewQuery(cfgs).Workload(get90.WithOps(80)).
		Namespace("user-namespace").Memo(memo).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ops80.MemoHits != 0 {
		t.Fatalf("op counts collided in the memo: %d hits", ops80.MemoHits)
	}
}

// TestQueryStreamDeterministicAcrossWorkers pins the acceptance
// criterion: a multi-constraint streaming exploration over
// CrossAppSpace yields a byte-identical stream for every worker count,
// and the final result matches a plain Run.
func TestQueryStreamDeterministicAcrossWorkers(t *testing.T) {
	cfgs := flexos.CrossAppSpace(nil, flexos.RedisComponents(), flexos.NginxComponents())
	measure := func(c *flexos.ExploreConfig) (flexos.Metrics, error) {
		// Deterministic synthetic vector with a worker-shaking sleep.
		time.Sleep(time.Duration(c.ID%5) * time.Microsecond)
		v, _ := syntheticScalar(c)
		return flexos.Metrics{
			Throughput:   v,
			P99us:        1 + (1000-v)/100,
			PeakMemBytes: 1000 + uint64(1000-v),
		}, nil
	}
	mkQuery := func(workers int) *flexos.Query {
		return flexos.NewQuery(cfgs).
			Measure(measure).
			Floor(flexos.MetricThroughput, 400).
			Ceiling(flexos.MetricP99, 7).
			Prune(true).
			Workers(workers)
	}
	ref, refErr := mkQuery(1).Run(context.Background())
	if refErr != nil && !errors.Is(refErr, flexos.ErrNoFeasible) {
		t.Fatal(refErr)
	}

	var want string
	for _, workers := range []int{1, 4, 8} {
		var b strings.Builder
		seq, final := mkQuery(workers).Stream(context.Background())
		streamed := 0
		for cfg, m := range seq {
			streamed++
			fmt.Fprintf(&b, "%d %s %v %v %d\n", cfg.ID, cfg.Label(), m.Throughput, m.P99us, m.PeakMemBytes)
		}
		res, err := final()
		if (err == nil) != (refErr == nil) && !errors.Is(err, flexos.ErrNoFeasible) {
			t.Fatalf("workers=%d: final err %v vs ref %v", workers, err, refErr)
		}
		if streamed == 0 {
			t.Fatalf("workers=%d: nothing streamed", workers)
		}
		if got := b.String(); want == "" {
			want = got
		} else if got != want {
			t.Fatalf("workers=%d: stream diverged:\n%s\nvs\n%s", workers, got, want)
		}
		// The final result matches a plain Run byte-for-byte.
		if !reflect.DeepEqual(res.Safest, ref.Safest) || res.Evaluated != ref.Evaluated {
			t.Fatalf("workers=%d: final result diverges from Run", workers)
		}
		for i := range res.Measurements {
			if res.Measurements[i].Metrics != ref.Measurements[i].Metrics {
				t.Fatalf("workers=%d: measurement %d diverges from Run", workers, i)
			}
		}
	}
}

func TestQueryStreamEarlyBreakCancels(t *testing.T) {
	cfgs := flexos.Fig6Space(flexos.RedisComponents())
	seq, final := flexos.NewQuery(cfgs).
		MeasureScalar(syntheticScalar).
		Workers(4).
		Stream(context.Background())
	seen := 0
	for range seq {
		seen++
		if seen == 3 {
			break
		}
	}
	if seen != 3 {
		t.Fatalf("streamed %d before break", seen)
	}
	if _, err := final(); !errors.Is(err, flexos.ErrCanceled) {
		t.Fatalf("broken stream final() = %v, want ErrCanceled", err)
	}
}

func TestQueryStreamFinalWithoutConsuming(t *testing.T) {
	_, final := flexos.NewQuery(flexos.Fig6Space(flexos.RedisComponents())).
		MeasureScalar(syntheticScalar).
		Floor(flexos.MetricThroughput, 500).
		Stream(context.Background())
	res, err := final()
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Evaluated != res.Total {
		t.Fatalf("unconsumed stream final() = %+v", res)
	}
}

// TestQueryStreamYieldsEveryEvaluatedConfigInOrder checks the ordering
// contract: yields are exactly the evaluated configurations, ascending.
func TestQueryStreamYieldsEveryEvaluatedConfigInOrder(t *testing.T) {
	q := flexos.NewQuery(flexos.Fig6Space(flexos.RedisComponents())).
		MeasureScalar(syntheticScalar).
		Floor(flexos.MetricThroughput, 500).
		Prune(true).
		Workers(8)
	seq, final := q.Stream(context.Background())
	var ids []int
	for cfg, _ := range seq {
		ids = append(ids, cfg.ID)
	}
	res, err := final()
	if err != nil {
		t.Fatal(err)
	}
	var want []int
	for i, m := range res.Measurements {
		if m.Evaluated {
			want = append(want, res.Measurements[i].Config.ID)
		}
	}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("stream ids %v, want evaluated set %v", ids, want)
	}
}

// TestQueryTimeoutOnPublicSurface drives -timeout semantics end to end:
// a deadline mid-exploration surfaces as ErrCanceled.
func TestQueryTimeoutOnPublicSurface(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := flexos.NewQuery(flexos.Fig6Space(flexos.RedisComponents())).
		MeasureScalar(func(c *flexos.ExploreConfig) (float64, error) {
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(50 * time.Millisecond):
			}
			return syntheticScalar(c)
		}).
		Workers(4).
		Run(ctx)
	if !errors.Is(err, flexos.ErrCanceled) {
		t.Fatalf("timed-out query returned %v, want ErrCanceled", err)
	}
}

func TestParseConstraintPublicSurface(t *testing.T) {
	c, err := flexos.ParseConstraint("p99<=2.5")
	if err != nil {
		t.Fatal(err)
	}
	if c.Metric != flexos.MetricP99 || c.Op != flexos.AtMost || c.Bound != 2.5 {
		t.Fatalf("ParseConstraint = %+v", c)
	}
	if _, err := flexos.ParseConstraint("nonsense"); err == nil {
		t.Fatal("bad constraint accepted")
	}
}
