// Benchmarks regenerating every table and figure of the FlexOS paper's
// evaluation (§6). Each benchmark runs the corresponding experiment on
// the deterministic simulated machine and reports the headline numbers
// as custom metrics; `go test -bench=. -benchmem` therefore reproduces
// the paper's result set, and cmd/flexos-bench prints the full tables.
//
// Simulated metrics are suffixed "sim-" (they are cycles/throughput on
// the simulated 2.2 GHz Xeon, not host time).
package flexos_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"flexos"
	"flexos/internal/figures"
)

// Benchmark sizes: the simulation is deterministic, so modest request
// counts give exact steady-state numbers.
const (
	benchRequests = 200
	benchQueries  = 80
	benchPackets  = 30
)

// BenchmarkFig05HardeningPoset builds and prunes the Figure 5 poset: a
// fixed two-compartment Redis image with per-compartment hardening
// varied over {none, CFI, ASAN, CFI+ASAN}.
func BenchmarkFig05HardeningPoset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nodes, err := figures.Fig5(benchRequests, 600_000)
		if err != nil {
			b.Fatal(err)
		}
		stars := 0
		for _, n := range nodes {
			if n.Star {
				stars++
			}
		}
		b.ReportMetric(float64(len(nodes)), "configs")
		b.ReportMetric(float64(stars), "stars")
	}
}

// BenchmarkFig06Redis measures the 80-configuration Redis space
// (Figure 6 top).
func BenchmarkFig06Redis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.Fig6Redis(benchRequests)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].Perf, "sim-max-req/s")
		b.ReportMetric(rows[0].Perf, "sim-min-req/s")
		b.ReportMetric(rows[len(rows)-1].Perf/rows[0].Perf, "spread-x")
	}
}

// BenchmarkFig06Nginx measures the Nginx half of the space (Figure 6
// bottom).
func BenchmarkFig06Nginx(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.Fig6Nginx(benchRequests)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].Perf, "sim-max-req/s")
		b.ReportMetric(rows[0].Perf, "sim-min-req/s")
	}
}

// BenchmarkFig07Scatter pairs the two Figure 6 datasets into the
// normalized Redis-vs-Nginx scatter.
func BenchmarkFig07Scatter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		redisRows, err := figures.Fig6Redis(benchRequests)
		if err != nil {
			b.Fatal(err)
		}
		nginxRows, err := figures.Fig6Nginx(benchRequests)
		if err != nil {
			b.Fatal(err)
		}
		pts := figures.Fig7(redisRows, nginxRows)
		b.ReportMetric(float64(len(pts)), "points")
	}
}

// BenchmarkFig08SafetyOrdering runs partial safety ordering on the Redis
// space with the paper's 500k req/s budget.
func BenchmarkFig08SafetyOrdering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Fig8(benchRequests, 500_000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Stars)), "safest-configs")
		b.ReportMetric(float64(res.Evaluated), "evaluated")
		b.ReportMetric(float64(res.Total), "total-configs")
	}
}

// BenchmarkFig09IPerf sweeps the receive-buffer size across backends.
func BenchmarkFig09IPerf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.Fig9(benchPackets)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.System == "FlexOS NONE" && r.BufSize == 16384 {
				b.ReportMetric(r.Gbps, "sim-peak-Gb/s")
			}
		}
	}
}

// BenchmarkFig10SQLite runs the Figure 10 comparison (FlexOS
// NONE/MPK3/EPT2 measured; Linux, SeL4/Genode, linuxu, CubicleOS
// composed over the measured workload shape).
func BenchmarkFig10SQLite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.Fig10(benchQueries)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.System == "FlexOS" && r.Isolation == "MPK3" {
				b.ReportMetric(r.Seconds, "sim-mpk3-s")
			}
			if r.System == "FlexOS" && r.Isolation == "NONE" {
				b.ReportMetric(r.Seconds, "sim-none-s")
			}
		}
	}
}

// BenchmarkFig11aAllocLatency measures shared stack-variable allocation
// under the three sharing strategies.
func BenchmarkFig11aAllocLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.Fig11a()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Buffers == 1 {
				switch r.Strategy {
				case "dss":
					b.ReportMetric(float64(r.Cycles), "sim-dss-cycles")
				case "heap":
					b.ReportMetric(float64(r.Cycles), "sim-heap-cycles")
				}
			}
		}
	}
}

// BenchmarkFig11bGateLatency measures raw gate round-trips.
func BenchmarkFig11bGateLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.Fig11b()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Gate {
			case "MPK-light":
				b.ReportMetric(float64(r.Cycles), "sim-mpk-light-cycles")
			case "MPK-dss":
				b.ReportMetric(float64(r.Cycles), "sim-mpk-dss-cycles")
			case "EPT":
				b.ReportMetric(float64(r.Cycles), "sim-ept-cycles")
			}
		}
	}
}

// BenchmarkTable1PortingEffort audits the shared-variable annotations.
func BenchmarkTable1PortingEffort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := figures.Table1()
		vars := 0
		for _, r := range rows {
			vars += r.SharedVars
		}
		b.ReportMetric(float64(len(rows)), "components")
		b.ReportMetric(float64(vars), "shared-vars")
	}
}

// BenchmarkAblationGateFlavor quantifies design decision 2 of DESIGN.md:
// the light (register/stack-sharing) gate vs the full gate on the Redis
// scheduler split.
func BenchmarkAblationGateFlavor(b *testing.B) {
	split := func(mode flexos.GateMode, sharing flexos.Sharing) flexos.ImageSpec {
		return flexos.ImageSpec{
			Mechanism: "intel-mpk", GateMode: mode, Sharing: sharing,
			Comps: []flexos.CompSpec{
				{Name: "c0", Libs: append(flexos.TCBLibs(), flexos.LibRedis, flexos.LibC, flexos.LibNet)},
				{Name: "c1", Libs: []string{flexos.LibSched}},
			},
		}
	}
	for i := 0; i < b.N; i++ {
		light, err := flexos.BenchmarkRedis(split(flexos.GateLight, flexos.ShareStack), benchRequests)
		if err != nil {
			b.Fatal(err)
		}
		full, err := flexos.BenchmarkRedis(split(flexos.GateFull, flexos.ShareDSS), benchRequests)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(light.ReqPerSec, "sim-light-req/s")
		b.ReportMetric(full.ReqPerSec, "sim-full-req/s")
	}
}

// BenchmarkAblationSharingStrategy quantifies DSS vs stack-to-heap
// conversion on the iPerf hot path (design decision 2).
func BenchmarkAblationSharingStrategy(b *testing.B) {
	spec := func(sharing flexos.Sharing) flexos.ImageSpec {
		return flexos.ImageSpec{
			Mechanism: "intel-mpk", GateMode: flexos.GateFull, Sharing: sharing,
			Comps: []flexos.CompSpec{
				{Name: "sys", Libs: append(flexos.TCBLibs(), flexos.LibC, flexos.LibSched, flexos.LibNet)},
				{Name: "app", Libs: []string{flexos.LibIPerf}},
			},
		}
	}
	for i := 0; i < b.N; i++ {
		dss, err := flexos.BenchmarkIPerf(spec(flexos.ShareDSS), 64, benchPackets)
		if err != nil {
			b.Fatal(err)
		}
		heap, err := flexos.BenchmarkIPerf(spec(flexos.ShareHeap), 64, benchPackets)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(dss.Gbps, "sim-dss-Gb/s")
		b.ReportMetric(heap.Gbps, "sim-heap-Gb/s")
	}
}

// redisMeasure adapts BenchmarkRedis into an exploration measure
// function for the engine benchmarks below.
func redisMeasure(c *flexos.ExploreConfig) (float64, error) {
	res, err := flexos.BenchmarkRedis(c.Spec(flexos.TCBLibs()), benchRequests)
	if err != nil {
		return 0, err
	}
	return res.ReqPerSec, nil
}

// benchmarkQueryFig6 sweeps the 80-point Redis space exhaustively
// (no pruning, no memo) with the given worker count, through the
// unified Query engine.
func benchmarkQueryFig6(b *testing.B, workers int) {
	cfgs := flexos.Fig6Space(flexos.RedisComponents())
	q := flexos.NewQuery(cfgs).
		MeasureScalar(redisMeasure).
		Floor(flexos.MetricThroughput, 500_000).
		Workers(workers)
	for i := 0; i < b.N; i++ {
		res, err := q.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if res.Evaluated != res.Total {
			b.Fatalf("exhaustive sweep evaluated %d/%d", res.Evaluated, res.Total)
		}
	}
	b.ReportMetric(float64(len(cfgs)), "configs")
}

// BenchmarkQueryFig6Sequential is the single-worker baseline sweep of
// the 80-point Fig. 6 Redis space.
func BenchmarkQueryFig6Sequential(b *testing.B) { benchmarkQueryFig6(b, 1) }

// BenchmarkQueryFig6Parallel is the same sweep fanned across
// GOMAXPROCS workers; its results are byte-identical to the sequential
// run, so the time delta against BenchmarkQueryFig6Sequential is pure
// engine speedup.
func BenchmarkQueryFig6Parallel(b *testing.B) { benchmarkQueryFig6(b, 0) }

// BenchmarkQueryParallelSpeedup times the sequential and parallel
// sweeps back to back and reports the wall-clock ratio directly
// (speedup-x ≈ 1 on single-core hosts, approaching the core count on
// parallel hardware — the measurements are independent simulations).
func BenchmarkQueryParallelSpeedup(b *testing.B) {
	q := flexos.NewQuery(flexos.Fig6Space(flexos.RedisComponents())).
		MeasureScalar(redisMeasure).
		Floor(flexos.MetricThroughput, 500_000)
	var seq, par time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := q.Workers(1).Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		seq += time.Since(start)
		start = time.Now()
		if _, err := q.Workers(0).Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		par += time.Since(start)
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
	b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup-x")
}

// BenchmarkQueryMemoizedSweep measures a warm-memo sweep of the
// Fig. 6 space: after one cold exploration, every further sweep is pure
// cache traffic, which is what makes repeated cross-space exploration
// (Fig. 5 + Fig. 6 + Fig. 8 share points) nearly free.
func BenchmarkQueryMemoizedSweep(b *testing.B) {
	cfgs := flexos.Fig6Space(flexos.RedisComponents())
	q := flexos.NewQuery(cfgs).
		MeasureScalar(redisMeasure).
		Floor(flexos.MetricThroughput, 500_000).
		Memo(flexos.NewExploreMemo()).
		Namespace("redis")
	if _, err := q.Run(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := q.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if res.MemoHits != res.Total {
			b.Fatalf("warm sweep hit %d/%d", res.MemoHits, res.Total)
		}
	}
	b.ReportMetric(float64(len(cfgs)), "memo-hits")
}

// BenchmarkQueryCrossAppSpace exercises the engine at scale: the
// 320-point two-application, two-mechanism space with pruning.
func BenchmarkQueryCrossAppSpace(b *testing.B) {
	cfgs := flexos.CrossAppSpace(nil, flexos.RedisComponents(), flexos.NginxComponents())
	measure := func(c *flexos.ExploreConfig) (float64, error) {
		for _, comp := range c.Components() {
			if comp == flexos.LibNginx {
				res, err := flexos.BenchmarkNginx(c.Spec(flexos.TCBLibs()), benchRequests)
				if err != nil {
					return 0, err
				}
				return res.ReqPerSec, nil
			}
		}
		return redisMeasure(c)
	}
	q := flexos.NewQuery(cfgs).MeasureScalar(measure).
		Floor(flexos.MetricThroughput, 400_000).
		Prune(true)
	for i := 0; i < b.N; i++ {
		res, err := q.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Evaluated), "evaluated")
		b.ReportMetric(float64(res.Total), "total-configs")
	}
}

// synthBenchSize is the synthetic-space size the engine benchmarks
// sweep: 10k points, 125× the paper's 80-point Figure 6 space — the
// scale the batch-dispatch engine and grouped safety order exist for.
const synthBenchSize = 10_000

// benchmarkQuerySynthetic sweeps the 10k-point synthetic space through
// the Query engine. The measure function is allocation-free and a few
// hundred ns per point, so the benchmark time is dominated by the
// engine itself: order construction, dispatch, frontier bookkeeping.
func benchmarkQuerySynthetic(b *testing.B, workers int, prune bool) {
	cfgs := flexos.SynthSpace(42, synthBenchSize)
	q := flexos.NewQuery(cfgs).
		Measure(flexos.SynthMeasure(42)).
		Floor(flexos.MetricThroughput, flexos.SynthMedianThroughput(42, cfgs)).
		Workers(workers).
		Prune(prune)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := q.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Evaluated), "evaluated")
			b.ReportMetric(float64(res.Total), "total-configs")
		}
	}
	b.ReportMetric(float64(synthBenchSize)*float64(b.N)/b.Elapsed().Seconds(), "configs/s")
}

// BenchmarkQuerySyntheticSequential is the single-worker exhaustive
// sweep of the 10k-point synthetic space — the oracle-side cost of the
// equivalence matrix, and the engine's sequential throughput headline.
func BenchmarkQuerySyntheticSequential(b *testing.B) { benchmarkQuerySynthetic(b, 1, false) }

// BenchmarkQuerySyntheticParallel8 fans the same sweep across eight
// workers via batch work-stealing; results are byte-identical, so the
// delta against Sequential is pure dispatch overhead (plus parallel
// speedup on multi-core hosts).
func BenchmarkQuerySyntheticParallel8(b *testing.B) { benchmarkQuerySynthetic(b, 8, false) }

// BenchmarkQuerySyntheticPruned runs the pruning (safety-DAG dispatch)
// engine over the synthetic space with a median budget, exercising the
// coordinator's batched release path at 10k points.
func BenchmarkQuerySyntheticPruned(b *testing.B) { benchmarkQuerySynthetic(b, 8, true) }

// BenchmarkQuerySyntheticBudgeted runs the budgeted branch-and-bound
// sweep over the 10k-point space under a tight (95th-percentile)
// monotone floor with a 2000-measurement cap — the headline budgeted
// mode: the frontier walk decides the whole space while measuring only
// the feasible region plus its minimal infeasible boundary.
func BenchmarkQuerySyntheticBudgeted(b *testing.B) {
	cfgs := flexos.SynthSpace(42, synthBenchSize)
	q := flexos.NewQuery(cfgs).
		Measure(flexos.SynthMeasure(42)).
		Floor(flexos.MetricThroughput, flexos.SynthQuantileThroughput(42, cfgs, 0.95)).
		Workers(8).
		Prune(true).
		MeasureBudget(2_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := q.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Measured), "measured")
			b.ReportMetric(float64(res.Skipped), "skipped")
			b.ReportMetric(float64(res.Total), "total-configs")
		}
	}
	b.ReportMetric(float64(synthBenchSize)*float64(b.N)/b.Elapsed().Seconds(), "configs/s")
}

// BenchmarkQueryAttackSurvival runs the attack-scored sweep the
// attack-matrix CI job exercises end to end: the Fig6 Redis space
// expanded 12× along the ASLR ladder and control-flow variants on the
// RISC-V profile, every point measured under the combined attacker,
// ranked by survival under a filter-only survival floor plus a monotone
// (prunable) throughput floor. This is the cost of one full attack-axis
// query — workload simulation, survival model, and the grouped safety
// order over the 960-point space.
func BenchmarkQueryAttackSurvival(b *testing.B) {
	att, ok := flexos.AttackByName("combined")
	if !ok {
		b.Fatal("attack scenario \"combined\" missing")
	}
	sc, ok := flexos.ScenarioByName("redis-get90")
	if !ok {
		b.Fatal("scenario \"redis-get90\" missing")
	}
	sc = sc.WithOps(40)
	quad, _ := sc.Quad()
	space := flexos.AttackSpace(flexos.Fig6Space(quad),
		flexos.AttackSpec{Scenario: att.Name(), Profile: "riscv"})
	q := flexos.NewQuery(space).
		Measure(flexos.MeasureAttack(att, flexos.MeasureScenario(sc))).
		RankBy(flexos.MetricSurvival).
		Floor(flexos.MetricSurvival, 0.5).
		Floor(flexos.MetricThroughput, 1).
		Workers(8).
		Prune(true).
		Namespace(flexos.AttackNamespace(att, sc.MemoKey()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := q.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Total), "total-configs")
			b.ReportMetric(float64(len(res.Safest)), "safest")
			if len(res.Safest) > 0 {
				b.ReportMetric(res.Measurements[res.Safest[0]].Metrics.Survival, "sim-survival")
			}
		}
	}
	b.ReportMetric(float64(len(space))*float64(b.N)/b.Elapsed().Seconds(), "configs/s")
}

// BenchmarkAblationMonotonicPruning quantifies design decision 4: how
// many of the 80 measurements the explorer's monotonic pruning saves.
func BenchmarkAblationMonotonicPruning(b *testing.B) {
	q := flexos.NewQuery(flexos.Fig6Space(flexos.RedisComponents())).
		MeasureScalar(redisMeasure).
		Floor(flexos.MetricThroughput, 500_000).
		Prune(true)
	for i := 0; i < b.N; i++ {
		pruned, err := q.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(pruned.Evaluated), "evaluated-with-pruning")
		b.ReportMetric(float64(pruned.Total), "total-configs")
	}
}

// BenchmarkAblationEPTTCBDuplication reports the TCB duplication cost of
// multi-AS backends (design decision 3).
func BenchmarkAblationEPTTCBDuplication(b *testing.B) {
	spec := flexos.ImageSpec{
		Mechanism: "vm-ept",
		Comps: []flexos.CompSpec{
			{Name: "c0", Libs: append(flexos.TCBLibs(), flexos.LibSQLite, flexos.LibC, flexos.LibSched)},
			{Name: "fs", Libs: []string{flexos.LibVFS, flexos.LibRamfs, flexos.LibTime}},
		},
	}
	for i := 0; i < b.N; i++ {
		img, err := flexos.Build(flexos.FullCatalog(), spec)
		if err != nil {
			b.Fatal(err)
		}
		r := img.Report()
		b.ReportMetric(float64(r.Backend.TCBCopies), "tcb-copies")
		b.ReportMetric(float64(r.Backend.VMs), "vms")
	}
}

// BenchmarkBuild measures image build ("toolchain") speed itself.
func BenchmarkBuild(b *testing.B) {
	spec := flexos.ImageSpec{
		Mechanism: "intel-mpk", GateMode: flexos.GateFull, Sharing: flexos.ShareDSS,
		Comps: []flexos.CompSpec{
			{Name: "c0", Libs: append(flexos.TCBLibs(), flexos.LibRedis, flexos.LibC, flexos.LibSched)},
			{Name: "c1", Libs: []string{flexos.LibNet}},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cat := flexos.FullCatalog()
		if _, err := flexos.Build(cat, spec); err != nil {
			b.Fatal(err)
		}
	}
}
