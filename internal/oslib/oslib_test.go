package oslib

import (
	"testing"

	"flexos/internal/core"
)

func testImage(t *testing.T) (*core.Image, *SchedState) {
	t.Helper()
	cat := core.NewCatalog()
	RegisterTCB(cat)
	st := RegisterSched(cat)
	img, err := core.Build(cat, core.ImageSpec{
		Mechanism: "none",
		Comps: []core.CompSpec{{
			Name: "c0", Libs: []string{BootName, MMName, SchedName},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return img, st
}

func TestTCBFlags(t *testing.T) {
	cat := core.NewCatalog()
	RegisterTCB(cat)
	RegisterSched(cat)
	for _, name := range []string{BootName, MMName, SchedName} {
		c, ok := cat.Lookup(name)
		if !ok || !c.TCB {
			t.Fatalf("%s must be registered as TCB", name)
		}
	}
}

func TestSchedSurfaceCounters(t *testing.T) {
	img, st := testImage(t)
	ctx, _ := img.NewContext("t", SchedName)
	for i := 0; i < 3; i++ {
		if _, err := ctx.Call(SchedName, "wake"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ctx.Call(SchedName, "block_poll"); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Call(SchedName, "timer_arm"); err != nil {
		t.Fatal(err)
	}
	if st.Wakes() != 3 || st.Blocks() != 1 {
		t.Fatalf("counters: %s", st)
	}
}

func TestCurrentReturnsThreadID(t *testing.T) {
	img, _ := testImage(t)
	ctx, _ := img.NewContext("t", SchedName)
	v, err := ctx.Call(SchedName, "current")
	if err != nil {
		t.Fatal(err)
	}
	if v.(int) != ctx.Thread().ID {
		t.Fatalf("current = %v, want %d", v, ctx.Thread().ID)
	}
}

func TestYieldContextSwitches(t *testing.T) {
	img, _ := testImage(t)
	ctxA, _ := img.NewContext("a", SchedName)
	if _, err := img.NewContext("b", SchedName); err != nil {
		t.Fatal(err)
	}
	before := img.Sched.Switches()
	if _, err := ctxA.Call(SchedName, "yield"); err != nil {
		t.Fatal(err)
	}
	if img.Sched.Switches() != before+1 {
		t.Fatal("yield did not context switch")
	}
}

func TestSchedTable1Metadata(t *testing.T) {
	cat := core.NewCatalog()
	RegisterSched(cat)
	c, _ := cat.Lookup(SchedName)
	if len(c.Shared) != 5 {
		t.Fatalf("uksched shared vars = %d, want 5 (Table 1)", len(c.Shared))
	}
	if c.PatchAdd != 48 || c.PatchDel != 8 {
		t.Fatalf("uksched patch = +%d/-%d", c.PatchAdd, c.PatchDel)
	}
}
