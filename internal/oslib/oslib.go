// Package oslib registers the kernel micro-library components that every
// FlexOS image links: the boot code and memory manager (TCB, §3.3) and
// the uksched scheduler component that Figure 6 isolates and hardens.
//
// The scheduler's mechanics (threads, stacks, context switches) live in
// internal/sched inside the TCB; the component registered here is its
// *callable surface* — the wake/sleep/event entry points applications hit
// on their hot paths, which is what makes isolating "uksched" expensive
// for Redis (43%!) and nearly free for Nginx (6%) in the paper.
package oslib

import (
	"fmt"

	"flexos/internal/core"
)

// Component names used in configuration files.
const (
	BootName  = "ukboot"
	MMName    = "ukmm"
	SchedName = "uksched"
)

// Scheduler component call costs (cycles). Event-loop bookkeeping calls
// are cheap individually; their frequency is what matters.
const (
	wakeWork    = 42
	blockWork   = 40
	timerWork   = 38
	currentWork = 18
)

// SchedState counts scheduler-surface activity per image.
type SchedState struct {
	wakes, blocks, timers uint64
}

// RegisterTCB adds the boot and memory-manager TCB components.
func RegisterTCB(cat *core.Catalog) {
	boot := core.NewComponent(BootName)
	boot.TCB = true
	boot.AddFunc(&core.Func{Name: "early_init", Work: 500, EntryPoint: true})
	cat.MustRegister(boot)

	mm := core.NewComponent(MMName)
	mm.TCB = true
	mm.AddFunc(&core.Func{Name: "map_pages", Work: 300, EntryPoint: true})
	cat.MustRegister(mm)
}

// RegisterSched adds the uksched component (Table 1: +48/-8, 5 shared
// variables).
func RegisterSched(cat *core.Catalog) *SchedState {
	st := &SchedState{}
	c := core.NewComponent(SchedName)
	c.TCB = true
	// The paper formally verified a version of its scheduler using
	// Dafny (§3.3).
	c.Verified = true
	c.PatchAdd, c.PatchDel = 48, 8
	for _, v := range []core.SharedVar{
		{Name: "runqueue_len", Size: 8},
		{Name: "current_tid", Size: 8},
		{Name: "timer_next", Size: 8},
		{Name: "wait_bitmap", Size: 16},
		{Name: "idle_flag", Size: 8},
	} {
		c.AddShared(v)
	}

	c.AddFunc(&core.Func{
		Name: "wake", Work: wakeWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			st.wakes++
			return nil, nil
		},
	})
	c.AddFunc(&core.Func{
		Name: "block_poll", Work: blockWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			st.blocks++
			return nil, nil
		},
	})
	c.AddFunc(&core.Func{
		Name: "timer_arm", Work: timerWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			st.timers++
			return nil, nil
		},
	})
	c.AddFunc(&core.Func{
		Name: "current", Work: currentWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			return ctx.Thread().ID, nil
		},
	})
	// yield performs a real cooperative context switch; not on the
	// request hot path.
	c.AddFunc(&core.Func{
		Name: "yield", Work: 24, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			ctx.Yield()
			return nil, nil
		},
	})
	cat.MustRegister(c)
	return st
}

// Wakes returns the number of wake calls (test hook).
func (s *SchedState) Wakes() uint64 { return s.wakes }

// Blocks returns the number of block_poll calls (test hook).
func (s *SchedState) Blocks() uint64 { return s.blocks }

// String implements fmt.Stringer.
func (s *SchedState) String() string {
	return fmt.Sprintf("uksched{wakes=%d blocks=%d timers=%d}", s.wakes, s.blocks, s.timers)
}
