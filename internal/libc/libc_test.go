package libc

import (
	"testing"

	"flexos/internal/core"
	"flexos/internal/harden"
	"flexos/internal/oslib"
)

func testImage(t *testing.T, hs harden.Set) *core.Image {
	t.Helper()
	cat := core.NewCatalog()
	oslib.RegisterTCB(cat)
	Register(cat)
	img, err := core.Build(cat, core.ImageSpec{
		Mechanism: "none",
		Comps: []core.CompSpec{{
			Name: "c0", Libs: []string{oslib.BootName, oslib.MMName, Name},
			Hardening: hs,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestParseTokenizes(t *testing.T) {
	img := testImage(t, harden.Set{})
	ctx, _ := img.NewContext("t", Name)
	buf, err := ctx.AllocPrivate(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Write(buf, []byte("GET key7\r\n")); err != nil {
		t.Fatal(err)
	}
	tok, err := ctx.Call(Name, "parse", buf, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tok != "GET" {
		t.Fatalf("parse = %q, want GET", tok)
	}
}

func TestParseWholeBufferWhenNoDelimiter(t *testing.T) {
	img := testImage(t, harden.Set{})
	ctx, _ := img.NewContext("t", Name)
	buf, _ := ctx.AllocPrivate(8)
	ctx.Write(buf, []byte("PING"))
	tok, err := ctx.Call(Name, "parse", buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tok != "PING" {
		t.Fatalf("parse = %q", tok)
	}
}

func TestFormatWritesBuffer(t *testing.T) {
	img := testImage(t, harden.Set{})
	ctx, _ := img.NewContext("t", Name)
	buf, _ := ctx.AllocPrivate(32)
	n, err := ctx.Call(Name, "format", buf, "+OK\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("format returned %v", n)
	}
	out := make([]byte, 5)
	ctx.Read(buf, out)
	if string(out) != "+OK\r\n" {
		t.Fatalf("buffer = %q", out)
	}
}

func TestStrcmp(t *testing.T) {
	img := testImage(t, harden.Set{})
	ctx, _ := img.NewContext("t", Name)
	buf, _ := ctx.AllocPrivate(8)
	ctx.Write(buf, []byte("abc"))
	eq, err := ctx.Call(Name, "strcmp", buf, 3, "abc")
	if err != nil {
		t.Fatal(err)
	}
	if eq != true {
		t.Fatal("strcmp equal strings")
	}
	ne, _ := ctx.Call(Name, "strcmp", buf, 3, "abd")
	if ne != false {
		t.Fatal("strcmp different strings")
	}
}

func TestMemcpy(t *testing.T) {
	img := testImage(t, harden.Set{})
	ctx, _ := img.NewContext("t", Name)
	src, _ := ctx.AllocPrivate(16)
	dst, _ := ctx.AllocPrivate(16)
	ctx.Write(src, []byte("0123456789abcdef"))
	if _, err := ctx.Call(Name, "memcpy", dst, src, 16); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 16)
	ctx.Read(dst, out)
	if string(out) != "0123456789abcdef" {
		t.Fatalf("memcpy result = %q", out)
	}
}

func TestCheckedAddRespectsUBSan(t *testing.T) {
	// Without UBSan: silent wrap.
	img := testImage(t, harden.Set{})
	ctx, _ := img.NewContext("t", Name)
	if _, err := ctx.Call(Name, "checked_add", int64(1<<62), int64(1<<62)); err != nil {
		t.Fatalf("unhardened add trapped: %v", err)
	}
	// With UBSan: the overflow traps.
	imgU := testImage(t, harden.NewSet(harden.UBSan))
	ctxU, _ := imgU.NewContext("t", Name)
	if _, err := ctxU.Call(Name, "checked_add", int64(1<<62), int64(1<<62)); err == nil {
		t.Fatal("ubsan-hardened add did not trap")
	}
}

func TestBadArguments(t *testing.T) {
	img := testImage(t, harden.Set{})
	ctx, _ := img.NewContext("t", Name)
	if _, err := ctx.Call(Name, "parse", "notanaddr", 3); err == nil {
		t.Fatal("parse with bad addr type accepted")
	}
	if _, err := ctx.Call(Name, "format", uintptr(0)); err == nil {
		t.Fatal("format with missing args accepted")
	}
	if _, err := ctx.Call(Name, "memcpy", uintptr(0), uintptr(0)); err == nil {
		t.Fatal("memcpy with missing args accepted")
	}
}
