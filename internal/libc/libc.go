// Package libc implements the newlib analogue: the C library component
// FlexOS images link. Applications call it for parsing, formatting and
// string operations; Figure 6 toggles isolation and hardening on it under
// the name "newlib".
//
// The functional pieces operate on simulated memory through the context,
// so cross-compartment buffer bugs fault exactly as they would under MPK.
package libc

import (
	"fmt"

	"flexos/internal/core"
)

// Name is the component name used in configuration files.
const Name = "newlib"

// Work costs per call (cycles), calibrated so that newlib accounts for a
// few hundred cycles of a Redis request (see DESIGN.md calibration notes).
const (
	parseWork  = 120
	formatWork = 130
	strcmpWork = 30
	memcpyBase = 20
)

// Register adds the newlib component to the catalog.
func Register(cat *core.Catalog) {
	c := core.NewComponent(Name)
	// newlib row is not in Table 1 (it ships pre-ported with FlexOS),
	// but it is a first-class Figure 6 component.

	// parse tokenizes a request buffer in simulated memory: args are
	// (addr uintptr, n int); returns the first token as a string.
	c.AddFunc(&core.Func{
		Name: "parse", Work: parseWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			addr, n, err := addrLen(args)
			if err != nil {
				return nil, err
			}
			buf := make([]byte, n)
			if err := ctx.Read(addr, buf); err != nil {
				return nil, err
			}
			ctx.Charge(uint64(n)) // per-byte scan
			for i, b := range buf {
				if b == ' ' || b == '\r' || b == '\n' || b == 0 {
					return string(buf[:i]), nil
				}
			}
			return string(buf), nil
		},
	})

	// format writes a reply string into a buffer: args are
	// (addr uintptr, s string); returns the byte count.
	c.AddFunc(&core.Func{
		Name: "format", Work: formatWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("libc: format(addr, s)")
			}
			addr, ok := args[0].(uintptr)
			if !ok {
				return nil, fmt.Errorf("libc: format addr must be uintptr")
			}
			s, ok := args[1].(string)
			if !ok {
				return nil, fmt.Errorf("libc: format value must be string")
			}
			ctx.Charge(uint64(len(s)))
			if err := ctx.Write(addr, []byte(s)); err != nil {
				return nil, err
			}
			return len(s), nil
		},
	})

	// strcmp compares a simulated buffer to a constant: args are
	// (addr uintptr, n int, s string); returns bool.
	c.AddFunc(&core.Func{
		Name: "strcmp", Work: strcmpWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			if len(args) != 3 {
				return nil, fmt.Errorf("libc: strcmp(addr, n, s)")
			}
			addr := args[0].(uintptr)
			n := args[1].(int)
			s := args[2].(string)
			buf := make([]byte, n)
			if err := ctx.Read(addr, buf); err != nil {
				return nil, err
			}
			return string(buf) == s, nil
		},
	})

	// memcpy copies between simulated buffers: args are (dst, src
	// uintptr, n int).
	c.AddFunc(&core.Func{
		Name: "memcpy", Work: memcpyBase, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			if len(args) != 3 {
				return nil, fmt.Errorf("libc: memcpy(dst, src, n)")
			}
			dst := args[0].(uintptr)
			src := args[1].(uintptr)
			n := args[2].(int)
			if err := ctx.Memmove(dst, src, n); err != nil {
				return nil, err
			}
			return n, nil
		},
	})

	// checked_add is the UBSan-instrumented arithmetic helper: overflow
	// traps when the hosting compartment enables ubsan.
	c.AddFunc(&core.Func{
		Name: "checked_add", Work: 6, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("libc: checked_add(a, b)")
			}
			return ctx.Hardening().CheckedAdd(args[0].(int64), args[1].(int64))
		},
	})
	cat.MustRegister(c)
}

func addrLen(args []any) (uintptr, int, error) {
	if len(args) != 2 {
		return 0, 0, fmt.Errorf("libc: want (addr, n)")
	}
	addr, ok := args[0].(uintptr)
	if !ok {
		return 0, 0, fmt.Errorf("libc: addr must be uintptr")
	}
	n, ok := args[1].(int)
	if !ok {
		return 0, 0, fmt.Errorf("libc: n must be int")
	}
	return addr, n, nil
}
