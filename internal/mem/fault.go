package mem

import "fmt"

// FaultKind classifies protection faults raised by the simulated MMU and
// the KASan shadow checker.
type FaultKind int

const (
	// FaultUnmapped is an access outside the address space.
	FaultUnmapped FaultKind = iota
	// FaultKeyViolation is an MPK protection-key mismatch: the accessing
	// thread's PKRU does not permit the page's key.
	FaultKeyViolation
	// FaultKASanRedzone is an access to a poisoned (redzone or freed)
	// byte detected by the KASan shadow.
	FaultKASanRedzone
	// FaultEPTViolation is an access from one VM to another VM's private
	// memory under the EPT backend.
	FaultEPTViolation
	// FaultStackSmash is a corrupted stack canary detected by the stack
	// protector at gate return.
	FaultStackSmash
	// FaultCFI is a control-flow transfer to a non-entry-point detected
	// by a gate or RPC server.
	FaultCFI
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultUnmapped:
		return "unmapped"
	case FaultKeyViolation:
		return "protection-key violation"
	case FaultKASanRedzone:
		return "kasan redzone"
	case FaultEPTViolation:
		return "ept violation"
	case FaultStackSmash:
		return "stack smashing detected"
	case FaultCFI:
		return "cfi violation"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Fault is the error type produced by failed simulated memory accesses.
// It mirrors the information a page-fault handler would receive: faulting
// address, access width, write/read, the page's key, and the PKRU in force.
type Fault struct {
	Kind  FaultKind
	Addr  uintptr
	Len   int
	Write bool
	Key   Key
	PKRU  PKRU
	Space string // name of the address space (VM) the fault occurred in
}

// Error implements the error interface.
func (f *Fault) Error() string {
	op := "read"
	if f.Write {
		op = "write"
	}
	return fmt.Sprintf("mem: %s at %s:%#x (+%d) during %s: page key %d vs %s",
		f.Kind, f.Space, f.Addr, f.Len, op, f.Key, f.PKRU)
}

// IsFault reports whether err is a *Fault of the given kind.
func IsFault(err error, kind FaultKind) bool {
	f, ok := err.(*Fault)
	return ok && f.Kind == kind
}
