package mem

import (
	"encoding/binary"
	"fmt"

	"flexos/internal/machine"
)

// PageSize is the simulated MMU page size.
const PageSize = 4096

// AddrSpace is a simulated address space: a flat byte array with one
// protection key per 4 KiB page. Under the MPK backend the whole system
// shares one AddrSpace; under the EPT backend each compartment (VM) owns
// its own, plus a window of memory aliased into all of them.
//
// Reads and writes are checked against the caller-supplied PKRU value,
// modeling the per-thread PKRU register; violations return *Fault and
// charge the machine the page-fault cost. Successful bulk accesses charge
// copy cost, so data movement is visible in the cycle clock.
type AddrSpace struct {
	name   string
	data   []byte
	keys   []Key
	shadow []byte // KASan poison shadow, 1 byte per 8 bytes; nil until enabled
	mach   *machine.Machine

	// stats
	reads, writes uint64
	bytesRead     uint64
	bytesWritten  uint64
	faults        uint64
}

// NewAddrSpace creates an address space of the given size (rounded up to a
// whole number of pages), with all pages holding KeyTCB.
func NewAddrSpace(name string, size int, m *machine.Machine) *AddrSpace {
	if size <= 0 {
		panic("mem: address space size must be positive")
	}
	pages := (size + PageSize - 1) / PageSize
	return &AddrSpace{
		name: name,
		data: make([]byte, pages*PageSize),
		keys: make([]Key, pages),
		mach: m,
	}
}

// Name returns the space's name (VM identifier under EPT).
func (as *AddrSpace) Name() string { return as.name }

// Size returns the size of the space in bytes.
func (as *AddrSpace) Size() int { return len(as.data) }

// Pages returns the number of pages.
func (as *AddrSpace) Pages() int { return len(as.keys) }

// SetKeyRange tags every page overlapping [addr, addr+length) with key k.
// This is what the boot code does for per-compartment data/rodata/bss
// sections and what heap growth does for newly claimed pages.
func (as *AddrSpace) SetKeyRange(addr, length uintptr, k Key) error {
	if k >= NumKeys {
		return fmt.Errorf("mem: key %d out of range", k)
	}
	if length == 0 {
		return nil
	}
	end := addr + length
	if end > uintptr(len(as.data)) || end < addr {
		return &Fault{Kind: FaultUnmapped, Addr: addr, Len: int(length), Space: as.name}
	}
	for p := addr / PageSize; p <= (end-1)/PageSize; p++ {
		as.keys[p] = k
	}
	return nil
}

// KeyAt returns the protection key of the page containing addr.
func (as *AddrSpace) KeyAt(addr uintptr) Key {
	return as.keys[addr/PageSize]
}

// check validates an access of n bytes at addr under pkru. On violation it
// charges the page-fault cost and returns a *Fault.
func (as *AddrSpace) check(pkru PKRU, addr uintptr, n int, write bool) error {
	if n < 0 || addr+uintptr(n) > uintptr(len(as.data)) || addr+uintptr(n) < addr {
		as.faults++
		as.mach.Charge(as.mach.Costs.PageFault)
		return &Fault{Kind: FaultUnmapped, Addr: addr, Len: n, Write: write, PKRU: pkru, Space: as.name}
	}
	if n == 0 {
		return nil
	}
	first, last := addr/PageSize, (addr+uintptr(n)-1)/PageSize
	for p := first; p <= last; p++ {
		k := as.keys[p]
		ok := pkru.CanRead(k)
		if write {
			ok = pkru.CanWrite(k)
		}
		if !ok {
			as.faults++
			as.mach.Charge(as.mach.Costs.PageFault)
			return &Fault{Kind: FaultKeyViolation, Addr: p * PageSize, Len: n, Write: write, Key: k, PKRU: pkru, Space: as.name}
		}
	}
	if as.shadow != nil {
		if err := as.checkShadow(addr, n, write, pkru); err != nil {
			return err
		}
	}
	return nil
}

// Read copies len(buf) bytes starting at addr into buf, after checking the
// access under pkru.
func (as *AddrSpace) Read(pkru PKRU, addr uintptr, buf []byte) error {
	if err := as.check(pkru, addr, len(buf), false); err != nil {
		return err
	}
	copy(buf, as.data[addr:addr+uintptr(len(buf))])
	as.reads++
	as.bytesRead += uint64(len(buf))
	as.mach.ChargeCopy(len(buf))
	return nil
}

// Write copies src into the space at addr, after checking under pkru.
func (as *AddrSpace) Write(pkru PKRU, addr uintptr, src []byte) error {
	if err := as.check(pkru, addr, len(src), true); err != nil {
		return err
	}
	copy(as.data[addr:addr+uintptr(len(src))], src)
	as.writes++
	as.bytesWritten += uint64(len(src))
	as.mach.ChargeCopy(len(src))
	return nil
}

// ReadUint64 loads an 8-byte little-endian value.
func (as *AddrSpace) ReadUint64(pkru PKRU, addr uintptr) (uint64, error) {
	var b [8]byte
	if err := as.Read(pkru, addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteUint64 stores an 8-byte little-endian value.
func (as *AddrSpace) WriteUint64(pkru PKRU, addr uintptr, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return as.Write(pkru, addr, b[:])
}

// LoadByte loads one byte.
func (as *AddrSpace) LoadByte(pkru PKRU, addr uintptr) (byte, error) {
	var b [1]byte
	if err := as.Read(pkru, addr, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

// StoreByte stores one byte.
func (as *AddrSpace) StoreByte(pkru PKRU, addr uintptr, v byte) error {
	return as.Write(pkru, addr, []byte{v})
}

// Memmove copies n bytes inside the space from src to dst, checking the
// read side and the write side independently (they may live under
// different keys).
func (as *AddrSpace) Memmove(pkru PKRU, dst, src uintptr, n int) error {
	if err := as.check(pkru, src, n, false); err != nil {
		return err
	}
	if err := as.check(pkru, dst, n, true); err != nil {
		return err
	}
	copy(as.data[dst:dst+uintptr(n)], as.data[src:src+uintptr(n)])
	as.reads++
	as.writes++
	as.bytesRead += uint64(n)
	as.bytesWritten += uint64(n)
	as.mach.ChargeCopy(n)
	return nil
}

// Stats reports access counters, used by tests and the bench harness.
type Stats struct {
	Reads, Writes           uint64
	BytesRead, BytesWritten uint64
	Faults                  uint64
}

// Stats returns a snapshot of the space's counters.
func (as *AddrSpace) Stats() Stats {
	return Stats{
		Reads: as.reads, Writes: as.writes,
		BytesRead: as.bytesRead, BytesWritten: as.bytesWritten,
		Faults: as.faults,
	}
}

// Machine returns the machine this space charges.
func (as *AddrSpace) Machine() *machine.Machine { return as.mach }
