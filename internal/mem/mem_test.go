package mem

import (
	"testing"
	"testing/quick"

	"flexos/internal/machine"
)

func newTestAS(t *testing.T, pages int) *AddrSpace {
	t.Helper()
	return NewAddrSpace("test", pages*PageSize, machine.New(machine.CostModel{}))
}

func TestPKRUAllowDeny(t *testing.T) {
	p := PKRUDenyAll()
	for k := Key(0); k < NumKeys; k++ {
		if p.CanRead(k) || p.CanWrite(k) {
			t.Fatalf("deny-all PKRU permits key %d", k)
		}
	}
	p = p.Allow(3)
	if !p.CanRead(3) || !p.CanWrite(3) {
		t.Fatal("Allow(3) did not grant rw")
	}
	if p.CanRead(4) {
		t.Fatal("Allow(3) leaked into key 4")
	}
	p = p.AllowRead(5)
	if !p.CanRead(5) || p.CanWrite(5) {
		t.Fatal("AllowRead(5) should grant read-only")
	}
	p = p.Deny(3)
	if p.CanRead(3) {
		t.Fatal("Deny(3) did not revoke")
	}
}

func TestPKRUAllowAllIsZero(t *testing.T) {
	for k := Key(0); k < NumKeys; k++ {
		if !PKRUAllowAll.CanRead(k) || !PKRUAllowAll.CanWrite(k) {
			t.Fatalf("PKRUAllowAll denies key %d", k)
		}
	}
}

func TestDomainPKRU(t *testing.T) {
	p := DomainPKRU(2, KeyShared)
	if !p.CanWrite(2) || !p.CanWrite(KeyShared) {
		t.Fatal("DomainPKRU must grant own + shared keys")
	}
	for k := Key(0); k < NumKeys; k++ {
		if k == 2 || k == KeyShared {
			continue
		}
		if p.CanRead(k) {
			t.Fatalf("DomainPKRU leaked key %d", k)
		}
	}
}

// Property: Allow and Deny are inverses for any starting register.
func TestPKRUAllowDenyProperty(t *testing.T) {
	f := func(raw uint32, kraw uint8) bool {
		p := PKRU(raw)
		k := Key(kraw % NumKeys)
		pa := p.Allow(k)
		pd := pa.Deny(k)
		return pa.CanRead(k) && pa.CanWrite(k) && !pd.CanRead(k) && !pd.CanWrite(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrSpaceReadWriteRoundTrip(t *testing.T) {
	as := newTestAS(t, 4)
	want := []byte("hello flexos")
	if err := as.Write(PKRUAllowAll, 100, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := as.Read(PKRUAllowAll, 100, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("round trip = %q, want %q", got, want)
	}
}

func TestAddrSpaceKeyEnforcement(t *testing.T) {
	as := newTestAS(t, 4)
	// Page 1 belongs to compartment key 2.
	if err := as.SetKeyRange(PageSize, PageSize, 2); err != nil {
		t.Fatal(err)
	}
	attacker := DomainPKRU(3, KeyShared) // compartment 3 cannot touch key 2
	err := as.Write(attacker, PageSize+8, []byte{1})
	if !IsFault(err, FaultKeyViolation) {
		t.Fatalf("cross-compartment write: got %v, want key violation", err)
	}
	err = as.Read(attacker, PageSize+8, make([]byte, 1))
	if !IsFault(err, FaultKeyViolation) {
		t.Fatalf("cross-compartment read: got %v, want key violation", err)
	}
	owner := DomainPKRU(2, KeyShared)
	if err := as.Write(owner, PageSize+8, []byte{1}); err != nil {
		t.Fatalf("owner write failed: %v", err)
	}
}

func TestAddrSpaceReadOnlyKey(t *testing.T) {
	as := newTestAS(t, 2)
	if err := as.SetKeyRange(0, PageSize, 4); err != nil {
		t.Fatal(err)
	}
	ro := PKRUDenyAll().AllowRead(4)
	if err := as.Read(ro, 0, make([]byte, 8)); err != nil {
		t.Fatalf("read-only read failed: %v", err)
	}
	err := as.Write(ro, 0, []byte{1})
	if !IsFault(err, FaultKeyViolation) {
		t.Fatalf("read-only write: got %v, want key violation", err)
	}
}

func TestAddrSpaceUnmapped(t *testing.T) {
	as := newTestAS(t, 1)
	err := as.Write(PKRUAllowAll, uintptr(as.Size()-2), []byte{1, 2, 3, 4})
	if !IsFault(err, FaultUnmapped) {
		t.Fatalf("OOB write: got %v, want unmapped fault", err)
	}
}

func TestAddrSpaceCrossPageAccessChecksBothPages(t *testing.T) {
	as := newTestAS(t, 2)
	if err := as.SetKeyRange(PageSize, PageSize, 7); err != nil {
		t.Fatal(err)
	}
	p := PKRUDenyAll().Allow(KeyTCB) // may touch page 0 only
	// Access straddling page 0 -> page 1 must fault on page 1's key.
	err := as.Write(p, PageSize-4, make([]byte, 8))
	if !IsFault(err, FaultKeyViolation) {
		t.Fatalf("straddling write: got %v, want key violation", err)
	}
}

func TestAddrSpaceFaultChargesCycles(t *testing.T) {
	m := machine.New(machine.CostModel{})
	as := NewAddrSpace("t", PageSize, m)
	as.SetKeyRange(0, PageSize, 5)
	before := m.Clock.Cycles()
	_ = as.Write(PKRUDenyAll(), 0, []byte{1})
	if m.Clock.Cycles()-before < m.Costs.PageFault {
		t.Fatal("protection fault did not charge the page-fault cost")
	}
}

func TestMemmoveChecksBothSides(t *testing.T) {
	as := newTestAS(t, 2)
	as.SetKeyRange(PageSize, PageSize, 9)
	p := PKRUDenyAll().Allow(KeyTCB)
	if err := as.Memmove(p, 0, 16, 8); err != nil {
		t.Fatalf("intra-key memmove failed: %v", err)
	}
	err := as.Memmove(p, PageSize, 0, 8)
	if !IsFault(err, FaultKeyViolation) {
		t.Fatalf("memmove into foreign key: got %v, want violation", err)
	}
	err = as.Memmove(p, 0, PageSize, 8)
	if !IsFault(err, FaultKeyViolation) {
		t.Fatalf("memmove from foreign key: got %v, want violation", err)
	}
}

func TestUint64RoundTrip(t *testing.T) {
	as := newTestAS(t, 1)
	if err := as.WriteUint64(PKRUAllowAll, 64, 0xdeadbeefcafe); err != nil {
		t.Fatal(err)
	}
	v, err := as.ReadUint64(PKRUAllowAll, 64)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xdeadbeefcafe {
		t.Fatalf("uint64 round trip = %#x", v)
	}
}

func TestByteRoundTrip(t *testing.T) {
	as := newTestAS(t, 1)
	if err := as.StoreByte(PKRUAllowAll, 5, 0xAB); err != nil {
		t.Fatal(err)
	}
	b, err := as.LoadByte(PKRUAllowAll, 5)
	if err != nil {
		t.Fatal(err)
	}
	if b != 0xAB {
		t.Fatalf("byte round trip = %#x", b)
	}
}

// Property: data written under one key is readable under any PKRU that can
// read that key, and never under one that cannot.
func TestKeyVisibilityProperty(t *testing.T) {
	m := machine.New(machine.CostModel{})
	as := NewAddrSpace("prop", 16*PageSize, m)
	f := func(pageRaw, keyRaw, readerRaw uint8) bool {
		page := uintptr(pageRaw%16) * PageSize
		key := Key(keyRaw % NumKeys)
		reader := Key(readerRaw % NumKeys)
		if err := as.SetKeyRange(page, PageSize, key); err != nil {
			return false
		}
		owner := PKRUDenyAll().Allow(key)
		if as.Write(owner, page, []byte{42}) != nil {
			return false
		}
		rp := PKRUDenyAll().Allow(reader)
		err := as.Read(rp, page, make([]byte, 1))
		if reader == key {
			return err == nil
		}
		return IsFault(err, FaultKeyViolation)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
