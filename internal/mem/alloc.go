package mem

import (
	"fmt"

	"flexos/internal/machine"
)

// Allocator is the interface shared by all simulated heap allocators. Each
// compartment owns one (per-compartment heaps, §4.1) and the MPK backend
// adds one more for the shared communication domain.
//
// Allocators charge the machine clock for their own bookkeeping so that
// Figure 11a (stack vs heap allocation latency) is reproducible.
type Allocator interface {
	// Alloc reserves n bytes and returns the simulated address.
	Alloc(n int) (uintptr, error)
	// Free releases a block previously returned by Alloc.
	Free(addr uintptr) error
	// SizeOf returns the usable size of an allocated block.
	SizeOf(addr uintptr) (int, bool)
	// Name identifies the allocator family ("tlsf", "lea", "bump").
	Name() string
	// Stats returns allocation counters.
	Stats() AllocStats
}

// AllocStats counts allocator activity.
type AllocStats struct {
	Allocs, Frees uint64
	BytesLive     uint64
	BytesPeak     uint64
}

// Arena is a contiguous region of an address space handed to an allocator.
// The image builder keys the arena's pages to the owning compartment before
// use.
type Arena struct {
	AS   *AddrSpace
	Base uintptr
	Size uintptr
}

// NewArena validates and returns an arena.
func NewArena(as *AddrSpace, base, size uintptr) (Arena, error) {
	if base%PageSize != 0 {
		return Arena{}, fmt.Errorf("mem: arena base %#x not page aligned", base)
	}
	if base+size > uintptr(as.Size()) {
		return Arena{}, fmt.Errorf("mem: arena [%#x,%#x) outside address space of %d bytes", base, base+size, as.Size())
	}
	return Arena{AS: as, Base: base, Size: size}, nil
}

// Contains reports whether addr falls inside the arena.
func (a Arena) Contains(addr uintptr) bool {
	return addr >= a.Base && addr < a.Base+a.Size
}

// SetKey tags all of the arena's pages with k.
func (a Arena) SetKey(k Key) error { return a.AS.SetKeyRange(a.Base, a.Size, k) }

const allocAlign = 16

func alignUp(n uintptr, a uintptr) uintptr { return (n + a - 1) &^ (a - 1) }

// ErrOutOfMemory is returned when an arena is exhausted.
var ErrOutOfMemory = fmt.Errorf("mem: arena out of memory")

// ErrBadFree is returned when freeing an address that is not an allocated
// block.
var ErrBadFree = fmt.Errorf("mem: free of unallocated address")

// Bump is the boot-time allocator: pointer-bump allocation, no free. The
// early boot code uses it before the real allocators are up; tests use it
// for fixed layouts.
type Bump struct {
	arena Arena
	mach  *machine.Machine
	next  uintptr
	sizes map[uintptr]int
	stats AllocStats
}

// NewBump returns a bump allocator over the arena.
func NewBump(arena Arena, m *machine.Machine) *Bump {
	return &Bump{arena: arena, mach: m, next: arena.Base, sizes: make(map[uintptr]int)}
}

// Alloc implements Allocator.
func (b *Bump) Alloc(n int) (uintptr, error) {
	if n <= 0 {
		return 0, fmt.Errorf("mem: bump alloc of %d bytes", n)
	}
	b.mach.Charge(b.mach.Costs.StackAlloc) // bump allocation is stack-speed
	sz := alignUp(uintptr(n), allocAlign)
	if b.next+sz > b.arena.Base+b.arena.Size {
		return 0, ErrOutOfMemory
	}
	addr := b.next
	b.next += sz
	b.sizes[addr] = n
	b.stats.Allocs++
	b.stats.BytesLive += uint64(n)
	if b.stats.BytesLive > b.stats.BytesPeak {
		b.stats.BytesPeak = b.stats.BytesLive
	}
	return addr, nil
}

// Free implements Allocator; bump allocators do not reclaim.
func (b *Bump) Free(addr uintptr) error {
	if _, ok := b.sizes[addr]; !ok {
		return ErrBadFree
	}
	b.stats.Frees++
	return nil
}

// SizeOf implements Allocator.
func (b *Bump) SizeOf(addr uintptr) (int, bool) {
	n, ok := b.sizes[addr]
	return n, ok
}

// Name implements Allocator.
func (b *Bump) Name() string { return "bump" }

// Stats implements Allocator.
func (b *Bump) Stats() AllocStats { return b.stats }

// Used returns how many bytes the bump allocator has handed out (aligned).
func (b *Bump) Used() uintptr { return b.next - b.arena.Base }
