package mem

import "flexos/internal/machine"

// KASanAllocator wraps a compartment's allocator with KASan
// instrumentation: allocations get 16-byte poisoned redzones on both sides
// and freed blocks are re-poisoned (quarantine), so out-of-bounds and
// use-after-free accesses fault through the address-space shadow.
//
// This is the concrete realization of the paper's observation (§4.5) that
// "many SH schemes work by instrumenting the memory allocator, and we use
// FlexOS' capacity to have an allocator per-compartment to enable flexible
// SH": wrapping only one compartment's allocator instruments only that
// compartment.
type KASanAllocator struct {
	inner Allocator
	as    *AddrSpace
	mach  *machine.Machine
	stats AllocStats
	// userAddr -> raw block address (allocation includes redzones).
	raw map[uintptr]uintptr
}

// RedzoneSize is the poisoned guard placed on each side of an allocation.
const RedzoneSize = 16

// kasanAllocOverheadCycles is the extra bookkeeping charged per allocation
// for shadow poisoning, on top of the wrapped allocator's own cost.
const kasanAllocOverheadCycles = 34

// NewKASanAllocator wraps inner. It enables the address space's shadow.
func NewKASanAllocator(inner Allocator, as *AddrSpace, m *machine.Machine) *KASanAllocator {
	as.EnableShadow()
	return &KASanAllocator{inner: inner, as: as, mach: m, raw: make(map[uintptr]uintptr)}
}

// Alloc implements Allocator: it over-allocates for the two redzones,
// poisons them, and unpoisons the user region.
func (k *KASanAllocator) Alloc(n int) (uintptr, error) {
	if n <= 0 {
		n = 1
	}
	raw, err := k.inner.Alloc(n + 2*RedzoneSize)
	if err != nil {
		return 0, err
	}
	user := raw + RedzoneSize
	k.as.Poison(raw, RedzoneSize, false)
	k.as.Unpoison(user, n)
	k.as.Poison(user+uintptr(n), RedzoneSize, false)
	k.raw[user] = raw
	k.mach.Charge(kasanAllocOverheadCycles)
	k.stats.Allocs++
	k.stats.BytesLive += uint64(n)
	if k.stats.BytesLive > k.stats.BytesPeak {
		k.stats.BytesPeak = k.stats.BytesLive
	}
	return user, nil
}

// Free implements Allocator: the whole block is poisoned as freed before
// being returned, so dangling accesses fault.
func (k *KASanAllocator) Free(user uintptr) error {
	raw, ok := k.raw[user]
	if !ok {
		return ErrBadFree
	}
	n, _ := k.inner.SizeOf(raw)
	k.as.Poison(raw, n, true)
	delete(k.raw, user)
	k.stats.Frees++
	if sz := n - 2*RedzoneSize; sz > 0 {
		k.stats.BytesLive -= uint64(sz)
	}
	k.mach.Charge(kasanAllocOverheadCycles / 2)
	return k.inner.Free(raw)
}

// SizeOf implements Allocator.
func (k *KASanAllocator) SizeOf(user uintptr) (int, bool) {
	raw, ok := k.raw[user]
	if !ok {
		return 0, false
	}
	n, ok := k.inner.SizeOf(raw)
	if !ok {
		return 0, false
	}
	return n - 2*RedzoneSize, true
}

// Name implements Allocator.
func (k *KASanAllocator) Name() string { return "kasan+" + k.inner.Name() }

// Stats implements Allocator.
func (k *KASanAllocator) Stats() AllocStats { return k.stats }
