// Package mem implements the simulated memory substrate of FlexOS-Go:
// byte-addressable address spaces split into 4 KiB pages, Intel MPK-style
// per-page protection keys checked against a per-thread PKRU register,
// protection faults, and a family of allocators (TLSF-like, Lea-like, bump)
// with an optional KASan shadow for functional redzone checking.
//
// Every load/store performed by the simulated OS and applications goes
// through AddrSpace.Read / AddrSpace.Write, so isolation violations are
// detected functionally — not just charged for — exactly where the paper's
// MPK backend would raise a page fault.
package mem

import (
	"fmt"
	"strings"
)

// Key is an MPK protection key. Intel MPK provides 16 keys (4 bits in the
// page-table entry); FlexOS associates each compartment with one key and
// reserves one for the shared communication domain.
type Key uint8

// NumKeys is the number of protection keys the simulated MMU supports,
// matching Intel MPK.
const NumKeys = 16

// Reserved key conventions used by the MPK backend (mirroring §4.1 of the
// paper: one key per compartment, one key for the shared domain, remaining
// keys available for restricted pairwise shared domains).
const (
	// KeyTCB protects the trusted computing base (boot code, memory
	// manager, scheduler, backend runtime). Key 0 is the hardware default.
	KeyTCB Key = 0
	// KeyShared is the communication domain readable and writable by all
	// compartments (shared heap, DSS region, RPC windows).
	KeyShared Key = 15
)

// PKRU mirrors the x86 PKRU register: two bits per key, AD (access disable)
// in the even bit and WD (write disable) in the odd bit. A zero PKRU allows
// everything, like the hardware reset state.
type PKRU uint32

// PKRUAllowAll permits reads and writes under every key.
const PKRUAllowAll PKRU = 0

// PKRUDenyAll disables access for every key. Build thread-specific values
// with Allow.
func PKRUDenyAll() PKRU {
	var p PKRU
	for k := Key(0); k < NumKeys; k++ {
		p |= PKRU(0b11) << (2 * uint(k))
	}
	return p
}

// Allow returns a copy of p that grants read+write access under key k.
func (p PKRU) Allow(k Key) PKRU {
	return p &^ (PKRU(0b11) << (2 * uint(k)))
}

// AllowRead returns a copy of p that grants read-only access under key k.
func (p PKRU) AllowRead(k Key) PKRU {
	p = p &^ (PKRU(0b11) << (2 * uint(k))) // clear both bits
	return p | PKRU(0b10)<<(2*uint(k))     // set WD
}

// Deny returns a copy of p with all access under key k disabled.
func (p PKRU) Deny(k Key) PKRU {
	return p | PKRU(0b11)<<(2*uint(k))
}

// CanRead reports whether loads under key k are permitted.
func (p PKRU) CanRead(k Key) bool {
	return p&(PKRU(1)<<(2*uint(k))) == 0
}

// CanWrite reports whether stores under key k are permitted.
func (p PKRU) CanWrite(k Key) bool {
	return p&(PKRU(0b11)<<(2*uint(k))) == 0
}

// DomainPKRU builds the PKRU value a thread executing in a compartment
// holds: everything denied except the compartment's own key plus the listed
// extra keys (typically KeyShared and pairwise shared domains).
func DomainPKRU(own Key, extra ...Key) PKRU {
	p := PKRUDenyAll().Allow(own)
	for _, k := range extra {
		p = p.Allow(k)
	}
	return p
}

// String renders the register as a list of accessible keys, e.g.
// "pkru{rw:0,3 ro:5}".
func (p PKRU) String() string {
	var rw, ro []string
	for k := Key(0); k < NumKeys; k++ {
		switch {
		case p.CanWrite(k):
			rw = append(rw, fmt.Sprint(k))
		case p.CanRead(k):
			ro = append(ro, fmt.Sprint(k))
		}
	}
	s := "pkru{rw:" + strings.Join(rw, ",")
	if len(ro) > 0 {
		s += " ro:" + strings.Join(ro, ",")
	}
	return s + "}"
}
