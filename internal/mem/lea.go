package mem

import (
	"sort"

	"flexos/internal/machine"
)

// Lea is a simplified Doug Lea-style first-fit allocator with free-block
// coalescing. CubicleOS links it instead of Unikraft's TLSF; the paper
// notes it "behaves better than Unikraft's TLSF allocator" in the SQLite
// benchmark (§6.4), which is why CubicleOS-without-isolation beats the
// Unikraft linuxu baseline there. We model that with a cheaper fast path
// but a scan-length-dependent cost, like a real first-fit dlmalloc.
type Lea struct {
	arena Arena
	mach  *machine.Machine

	free   []leaBlock // sorted by address
	blocks map[uintptr]int
	brk    uintptr
	stats  AllocStats
}

type leaBlock struct {
	addr uintptr
	size uintptr
}

// NewLea returns a Lea-style allocator over the arena.
func NewLea(arena Arena, m *machine.Machine) *Lea {
	return &Lea{arena: arena, mach: m, blocks: make(map[uintptr]int), brk: arena.Base}
}

// leaFastPath is the base allocation cost; each scanned free block adds
// leaScanCost. Calibrated slightly below TLSF's fast path so the CubicleOS
// NONE column of Fig. 10 lands under Unikraft linuxu.
const (
	leaFastPath = 72
	leaScanCost = 6
)

// Alloc implements Allocator.
func (l *Lea) Alloc(n int) (uintptr, error) {
	if n <= 0 {
		n = 1
	}
	need := alignUp(uintptr(n), allocAlign)
	scanned := 0
	for i, b := range l.free {
		scanned++
		if b.size >= need {
			addr := b.addr
			if rem := b.size - need; rem >= allocAlign {
				l.free[i] = leaBlock{addr: b.addr + need, size: rem}
			} else {
				l.free = append(l.free[:i], l.free[i+1:]...)
			}
			l.mach.Charge(uint64(leaFastPath + scanned*leaScanCost))
			l.finish(addr, n)
			return addr, nil
		}
	}
	if l.brk+need > l.arena.Base+l.arena.Size {
		return 0, ErrOutOfMemory
	}
	addr := l.brk
	l.brk += need
	l.mach.Charge(uint64(leaFastPath + scanned*leaScanCost))
	l.finish(addr, n)
	return addr, nil
}

func (l *Lea) finish(addr uintptr, n int) {
	l.blocks[addr] = n
	l.stats.Allocs++
	l.stats.BytesLive += uint64(n)
	if l.stats.BytesLive > l.stats.BytesPeak {
		l.stats.BytesPeak = l.stats.BytesLive
	}
}

// Free implements Allocator. Adjacent free blocks coalesce.
func (l *Lea) Free(addr uintptr) error {
	n, ok := l.blocks[addr]
	if !ok {
		return ErrBadFree
	}
	delete(l.blocks, addr)
	size := alignUp(uintptr(n), allocAlign)
	i := sort.Search(len(l.free), func(i int) bool { return l.free[i].addr >= addr })
	l.free = append(l.free, leaBlock{})
	copy(l.free[i+1:], l.free[i:])
	l.free[i] = leaBlock{addr: addr, size: size}
	// Coalesce with successor, then predecessor.
	if i+1 < len(l.free) && l.free[i].addr+l.free[i].size == l.free[i+1].addr {
		l.free[i].size += l.free[i+1].size
		l.free = append(l.free[:i+1], l.free[i+2:]...)
	}
	if i > 0 && l.free[i-1].addr+l.free[i-1].size == l.free[i].addr {
		l.free[i-1].size += l.free[i].size
		l.free = append(l.free[:i], l.free[i+1:]...)
	}
	l.stats.Frees++
	l.stats.BytesLive -= uint64(n)
	l.mach.Charge(l.mach.Costs.HeapFree)
	return nil
}

// SizeOf implements Allocator.
func (l *Lea) SizeOf(addr uintptr) (int, bool) {
	n, ok := l.blocks[addr]
	return n, ok
}

// Name implements Allocator.
func (l *Lea) Name() string { return "lea" }

// Stats implements Allocator.
func (l *Lea) Stats() AllocStats { return l.stats }

// FreeBlocks returns the current number of free-list entries (test hook).
func (l *Lea) FreeBlocks() int { return len(l.free) }
