package mem

// KASan shadow support. The kernel address sanitizer instruments a
// compartment's allocator: every allocation is surrounded by poisoned
// redzones and freed memory stays poisoned (quarantined) so use-after-free
// and out-of-bounds accesses fault deterministically.
//
// The shadow maps each 8-byte granule of the address space to one byte:
// 0 means fully addressable, poison values mark redzones / freed memory.

const (
	shadowScale = 8

	// Shadow poison values, mirroring KASan's encoding.
	poisonNone    byte = 0x00
	poisonRedzone byte = 0xFA
	poisonFreed   byte = 0xFD
)

// EnableShadow activates the KASan shadow for this address space. It is
// idempotent. Only compartments whose configuration lists the "kasan"
// hardening get a poisoning allocator, but the shadow lives with the space.
func (as *AddrSpace) EnableShadow() {
	if as.shadow == nil {
		as.shadow = make([]byte, (len(as.data)+shadowScale-1)/shadowScale)
	}
}

// ShadowEnabled reports whether the shadow is active.
func (as *AddrSpace) ShadowEnabled() bool { return as.shadow != nil }

// Poison marks [addr, addr+n) as inaccessible with the given poison class.
// Partial granules at the edges are poisoned conservatively only when the
// whole granule is covered, like real KASan's byte-granularity encoding
// (we keep whole-granule granularity for simplicity; allocators align
// redzones to 8 bytes).
func (as *AddrSpace) Poison(addr uintptr, n int, freed bool) {
	if as.shadow == nil || n <= 0 {
		return
	}
	v := poisonRedzone
	if freed {
		v = poisonFreed
	}
	first := (addr + shadowScale - 1) / shadowScale
	last := (addr + uintptr(n)) / shadowScale
	for g := first; g < last && g < uintptr(len(as.shadow)); g++ {
		as.shadow[g] = v
	}
}

// Unpoison marks [addr, addr+n) addressable again.
func (as *AddrSpace) Unpoison(addr uintptr, n int) {
	if as.shadow == nil || n <= 0 {
		return
	}
	first := addr / shadowScale
	last := (addr + uintptr(n) + shadowScale - 1) / shadowScale
	for g := first; g < last && g < uintptr(len(as.shadow)); g++ {
		as.shadow[g] = poisonNone
	}
}

// checkShadow validates an access against the poison shadow. It is called
// from check after key validation passed.
func (as *AddrSpace) checkShadow(addr uintptr, n int, write bool, pkru PKRU) error {
	first := addr / shadowScale
	last := (addr + uintptr(n) - 1) / shadowScale
	for g := first; g <= last && g < uintptr(len(as.shadow)); g++ {
		if as.shadow[g] != poisonNone {
			as.faults++
			as.mach.Charge(as.mach.Costs.PageFault)
			return &Fault{
				Kind: FaultKASanRedzone, Addr: g * shadowScale, Len: n,
				Write: write, PKRU: pkru, Space: as.name,
			}
		}
	}
	return nil
}
