package mem

import (
	"math/bits"

	"flexos/internal/machine"
)

// TLSF is a simplified two-level segregated-fit allocator modeled on the
// TLSF allocator Unikraft ships (Masmano et al., cited by the paper). It
// provides near-constant allocation cost: free blocks are kept in
// power-of-two size-class lists; allocation pops the matching class or
// splits the smallest larger block.
//
// Cycle accounting: the fast path (exact class hit) charges
// Costs.HeapAllocFast; a split from a larger class charges a bit more; a
// carve from the wilderness charges the slow path. This reproduces the
// 100-300+ cycle band of Figure 11a.
type TLSF struct {
	arena Arena
	mach  *machine.Machine

	classes [48][]uintptr   // free lists per log2 size class
	blocks  map[uintptr]int // allocated block -> usable size
	freesz  map[uintptr]int // free block -> total size
	brk     uintptr         // wilderness pointer
	stats   AllocStats
}

// NewTLSF returns a TLSF allocator over the arena.
func NewTLSF(arena Arena, m *machine.Machine) *TLSF {
	return &TLSF{
		arena:  arena,
		mach:   m,
		blocks: make(map[uintptr]int),
		freesz: make(map[uintptr]int),
		brk:    arena.Base,
	}
}

func sizeClass(n uintptr) int {
	if n <= allocAlign {
		return 4
	}
	return bits.Len(uint(n - 1))
}

// Alloc implements Allocator.
func (t *TLSF) Alloc(n int) (uintptr, error) {
	if n <= 0 {
		n = 1
	}
	need := alignUp(uintptr(n), allocAlign)
	cls := sizeClass(need)

	// Fast path: exact class has a free block.
	if lst := t.classes[cls]; len(lst) > 0 {
		addr := lst[len(lst)-1]
		t.classes[cls] = lst[:len(lst)-1]
		delete(t.freesz, addr)
		t.mach.Charge(t.mach.Costs.HeapAllocFast)
		t.finish(addr, n)
		return addr, nil
	}
	// Medium path: split a larger free block.
	for c := cls + 1; c < len(t.classes); c++ {
		lst := t.classes[c]
		if len(lst) == 0 {
			continue
		}
		addr := lst[len(lst)-1]
		t.classes[c] = lst[:len(lst)-1]
		total := uintptr(t.freesz[addr])
		delete(t.freesz, addr)
		blockSz := uintptr(1) << uint(cls)
		if rem := total - blockSz; rem >= allocAlign {
			remAddr := addr + blockSz
			t.insertFree(remAddr, int(rem))
		}
		t.mach.Charge(t.mach.Costs.HeapAllocFast + (t.mach.Costs.HeapAllocFast / 2))
		t.finish(addr, n)
		return addr, nil
	}
	// Slow path: carve from the wilderness.
	blockSz := uintptr(1) << uint(cls)
	if t.brk+blockSz > t.arena.Base+t.arena.Size {
		return 0, ErrOutOfMemory
	}
	addr := t.brk
	t.brk += blockSz
	t.mach.Charge(t.mach.Costs.HeapAllocFast + t.mach.Costs.HeapAllocFast/4)
	t.finish(addr, n)
	return addr, nil
}

func (t *TLSF) finish(addr uintptr, n int) {
	t.blocks[addr] = n
	t.stats.Allocs++
	t.stats.BytesLive += uint64(n)
	if t.stats.BytesLive > t.stats.BytesPeak {
		t.stats.BytesPeak = t.stats.BytesLive
	}
}

func (t *TLSF) insertFree(addr uintptr, total int) {
	cls := sizeClass(uintptr(total))
	// Insert into the class whose blocks are guaranteed >= requested size:
	// a block of `total` bytes serves class floor(log2(total)).
	if uintptr(1)<<uint(cls) > uintptr(total) {
		cls--
	}
	if cls < 0 {
		return
	}
	t.classes[cls] = append(t.classes[cls], addr)
	t.freesz[addr] = total
}

// Free implements Allocator.
func (t *TLSF) Free(addr uintptr) error {
	n, ok := t.blocks[addr]
	if !ok {
		return ErrBadFree
	}
	delete(t.blocks, addr)
	total := alignUp(uintptr(n), allocAlign)
	cls := sizeClass(total)
	t.classes[cls] = append(t.classes[cls], addr)
	t.freesz[addr] = int(uintptr(1) << uint(cls))
	t.stats.Frees++
	t.stats.BytesLive -= uint64(n)
	t.mach.Charge(t.mach.Costs.HeapFree)
	return nil
}

// SizeOf implements Allocator.
func (t *TLSF) SizeOf(addr uintptr) (int, bool) {
	n, ok := t.blocks[addr]
	return n, ok
}

// Name implements Allocator.
func (t *TLSF) Name() string { return "tlsf" }

// Stats implements Allocator.
func (t *TLSF) Stats() AllocStats { return t.stats }
