package mem

import (
	"testing"
	"testing/quick"

	"flexos/internal/machine"
)

func newArena(t *testing.T, pages int) (Arena, *machine.Machine) {
	t.Helper()
	m := machine.New(machine.CostModel{})
	as := NewAddrSpace("heap", pages*PageSize, m)
	a, err := NewArena(as, 0, uintptr(pages*PageSize))
	if err != nil {
		t.Fatal(err)
	}
	return a, m
}

func testAllocatorBasics(t *testing.T, mk func(Arena, *machine.Machine) Allocator) {
	a, m := newArena(t, 64)
	al := mk(a, m)

	p1, err := al.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := al.Alloc(200)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("two live allocations share an address")
	}
	if n, ok := al.SizeOf(p1); !ok || n < 100 {
		t.Fatalf("SizeOf(p1) = %d,%v", n, ok)
	}
	if err := al.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := al.Free(p1); err != ErrBadFree {
		t.Fatalf("double free: got %v, want ErrBadFree", err)
	}
	if err := al.Free(42_000_000); err != ErrBadFree {
		t.Fatalf("wild free: got %v, want ErrBadFree", err)
	}
	st := al.Stats()
	if st.Allocs != 2 || st.Frees != 1 {
		t.Fatalf("stats = %+v, want 2 allocs / 1 free", st)
	}
}

func TestTLSFBasics(t *testing.T) {
	testAllocatorBasics(t, func(a Arena, m *machine.Machine) Allocator { return NewTLSF(a, m) })
}

func TestLeaBasics(t *testing.T) {
	testAllocatorBasics(t, func(a Arena, m *machine.Machine) Allocator { return NewLea(a, m) })
}

func TestBumpBasics(t *testing.T) {
	a, m := newArena(t, 4)
	b := NewBump(a, m)
	p1, err := b.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := b.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	if p2 <= p1 {
		t.Fatal("bump allocator must move forward")
	}
	if b.Used() == 0 {
		t.Fatal("Used() should be non-zero")
	}
	if err := b.Free(999); err != ErrBadFree {
		t.Fatalf("wild free: %v", err)
	}
}

func TestTLSFReusesFreedBlocks(t *testing.T) {
	a, m := newArena(t, 16)
	al := NewTLSF(a, m)
	p, _ := al.Alloc(64)
	al.Free(p)
	q, _ := al.Alloc(64)
	if p != q {
		t.Fatalf("TLSF did not reuse the freed block: %#x vs %#x", p, q)
	}
}

func TestLeaCoalescing(t *testing.T) {
	a, m := newArena(t, 16)
	al := NewLea(a, m)
	p1, _ := al.Alloc(64)
	p2, _ := al.Alloc(64)
	p3, _ := al.Alloc(64)
	_ = p3
	al.Free(p1)
	al.Free(p2) // should coalesce with p1's block
	if got := al.FreeBlocks(); got != 1 {
		t.Fatalf("free blocks after adjacent frees = %d, want 1 (coalesced)", got)
	}
}

func TestAllocatorsExhaust(t *testing.T) {
	for _, mk := range []func(Arena, *machine.Machine) Allocator{
		func(a Arena, m *machine.Machine) Allocator { return NewTLSF(a, m) },
		func(a Arena, m *machine.Machine) Allocator { return NewLea(a, m) },
		func(a Arena, m *machine.Machine) Allocator { return NewBump(a, m) },
	} {
		a, m := newArena(t, 1)
		al := mk(a, m)
		var err error
		for i := 0; i < 100; i++ {
			if _, err = al.Alloc(1024); err != nil {
				break
			}
		}
		if err != ErrOutOfMemory {
			t.Fatalf("%s: expected ErrOutOfMemory, got %v", al.Name(), err)
		}
	}
}

// Property: live allocations from any allocator never overlap.
func TestAllocatorNoOverlapProperty(t *testing.T) {
	mkers := map[string]func(Arena, *machine.Machine) Allocator{
		"tlsf": func(a Arena, m *machine.Machine) Allocator { return NewTLSF(a, m) },
		"lea":  func(a Arena, m *machine.Machine) Allocator { return NewLea(a, m) },
	}
	for name, mk := range mkers {
		t.Run(name, func(t *testing.T) {
			f := func(sizes []uint16, freeMask uint64) bool {
				a, m := newArena(t, 256)
				al := mk(a, m)
				type blk struct {
					addr uintptr
					size int
				}
				var live []blk
				for i, s := range sizes {
					n := int(s%2048) + 1
					addr, err := al.Alloc(n)
					if err != nil {
						return err == ErrOutOfMemory
					}
					live = append(live, blk{addr, n})
					if freeMask&(1<<uint(i%64)) != 0 && len(live) > 1 {
						victim := live[0]
						live = live[1:]
						if al.Free(victim.addr) != nil {
							return false
						}
					}
				}
				for i := 0; i < len(live); i++ {
					for j := i + 1; j < len(live); j++ {
						a, b := live[i], live[j]
						if a.addr < b.addr+uintptr(b.size) && b.addr < a.addr+uintptr(a.size) {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllocLatencyOrdering(t *testing.T) {
	// Figure 11a: heap allocations are one to two orders of magnitude
	// slower than stack/bump allocations.
	a, m := newArena(t, 64)
	tl := NewTLSF(a, m)
	heapCost := m.Clock.Span(func() { tl.Alloc(64) })

	a2, m2 := newArena(t, 64)
	bp := NewBump(a2, m2)
	stackCost := m2.Clock.Span(func() { bp.Alloc(64) })

	if heapCost < 10*stackCost {
		t.Fatalf("heap alloc (%d cy) should be >=10x stack alloc (%d cy)", heapCost, stackCost)
	}
}

func TestKASanDetectsOOBWrite(t *testing.T) {
	m := machine.New(machine.CostModel{})
	as := NewAddrSpace("kasan", 64*PageSize, m)
	arena, _ := NewArena(as, 0, 64*PageSize)
	ka := NewKASanAllocator(NewTLSF(arena, m), as, m)

	p, err := ka.Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	// In-bounds is fine.
	if err := as.Write(PKRUAllowAll, p, make([]byte, 32)); err != nil {
		t.Fatalf("in-bounds write failed: %v", err)
	}
	// One past the end hits the redzone.
	err = as.Write(PKRUAllowAll, p+32, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	if !IsFault(err, FaultKASanRedzone) {
		t.Fatalf("OOB write: got %v, want kasan redzone fault", err)
	}
	// Underflow hits the left redzone.
	err = as.Read(PKRUAllowAll, p-8, make([]byte, 8))
	if !IsFault(err, FaultKASanRedzone) {
		t.Fatalf("underflow read: got %v, want kasan redzone fault", err)
	}
}

func TestKASanDetectsUseAfterFree(t *testing.T) {
	m := machine.New(machine.CostModel{})
	as := NewAddrSpace("kasan", 64*PageSize, m)
	arena, _ := NewArena(as, 0, 64*PageSize)
	ka := NewKASanAllocator(NewTLSF(arena, m), as, m)

	p, _ := ka.Alloc(64)
	if err := ka.Free(p); err != nil {
		t.Fatal(err)
	}
	err := as.Read(PKRUAllowAll, p, make([]byte, 8))
	if !IsFault(err, FaultKASanRedzone) {
		t.Fatalf("use-after-free: got %v, want kasan fault", err)
	}
}

func TestKASanSizeOf(t *testing.T) {
	m := machine.New(machine.CostModel{})
	as := NewAddrSpace("kasan", 16*PageSize, m)
	arena, _ := NewArena(as, 0, 16*PageSize)
	ka := NewKASanAllocator(NewTLSF(arena, m), as, m)
	p, _ := ka.Alloc(40)
	if n, ok := ka.SizeOf(p); !ok || n < 40 {
		t.Fatalf("SizeOf = %d,%v", n, ok)
	}
	if _, ok := ka.SizeOf(12345); ok {
		t.Fatal("SizeOf on wild pointer should fail")
	}
}

func TestUnpoisonAllowsAccessAgain(t *testing.T) {
	m := machine.New(machine.CostModel{})
	as := NewAddrSpace("shadow", 4*PageSize, m)
	as.EnableShadow()
	as.Poison(128, 64, false)
	if err := as.Read(PKRUAllowAll, 128, make([]byte, 8)); !IsFault(err, FaultKASanRedzone) {
		t.Fatalf("poisoned read: %v", err)
	}
	as.Unpoison(128, 64)
	if err := as.Read(PKRUAllowAll, 128, make([]byte, 8)); err != nil {
		t.Fatalf("unpoisoned read failed: %v", err)
	}
}

func TestArenaValidation(t *testing.T) {
	m := machine.New(machine.CostModel{})
	as := NewAddrSpace("x", 2*PageSize, m)
	if _, err := NewArena(as, 3, PageSize); err == nil {
		t.Fatal("unaligned arena accepted")
	}
	if _, err := NewArena(as, 0, 3*PageSize); err == nil {
		t.Fatal("oversized arena accepted")
	}
	a, err := NewArena(as, PageSize, PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Contains(PageSize) || a.Contains(0) || a.Contains(2*PageSize) {
		t.Fatal("Contains is wrong")
	}
}
