package sched

import (
	"fmt"

	"flexos/internal/machine"
	"flexos/internal/mem"
)

// Thread is a schedulable context. Its PKRU field models the per-thread
// protection-key register; isolation backends keep it in sync with the
// compartment the thread currently executes in via gates and hooks.
type Thread struct {
	ID   int
	Name string

	// PKRU is the thread's current protection-domain register.
	PKRU mem.PKRU
	// Comp is the compartment the thread is currently executing in.
	Comp CompID

	// Regs models the thread's scratch register file. Full-safety gates
	// save and zero it on domain transitions so that no stale values leak
	// between compartments; the light MPK gate deliberately does not
	// (§4.1), which tests exercise.
	Regs [8]uint64

	// stacks is this thread's slice of the per-compartment stack
	// registries: one call stack per compartment the thread may enter.
	stacks map[CompID]*Stack

	runnable bool
}

// Stack returns the thread's stack for the given compartment, or nil.
func (t *Thread) Stack(c CompID) *Stack { return t.stacks[c] }

// SetStack registers a per-compartment stack for this thread.
func (t *Thread) SetStack(c CompID, s *Stack) {
	if t.stacks == nil {
		t.stacks = make(map[CompID]*Stack)
	}
	t.stacks[c] = s
}

// Stacks returns the number of registered stacks (test/layout hook).
func (t *Thread) Stacks() int { return len(t.stacks) }

// Hooks is the kernel backend hook API (§3.2): core libraries expose
// hooks that isolation backends implement, so that supporting a new
// mechanism never requires redesigning the scheduler. The MPK backend, for
// example, uses ThreadCreated to switch a newly created thread to the
// right protection domain, and ThreadSwitch to swap PKRU images.
type Hooks interface {
	// ThreadCreated runs when a thread is spawned, before it first runs.
	ThreadCreated(t *Thread)
	// ThreadSwitch runs on every context switch.
	ThreadSwitch(from, to *Thread)
}

// Scheduler is a cooperative round-robin scheduler, mirroring Unikraft's
// uksched. It lives in the TCB.
type Scheduler struct {
	mach    *machine.Machine
	hooks   []Hooks
	threads []*Thread
	runq    []*Thread
	current *Thread
	nextID  int

	switches uint64
	spawned  uint64
}

// New returns a scheduler charging the given machine.
func New(m *machine.Machine) *Scheduler {
	return &Scheduler{mach: m}
}

// RegisterHooks attaches backend hooks. Multiple backends may register
// (e.g. an isolation backend plus an instrumentation hook in tests).
func (s *Scheduler) RegisterHooks(h Hooks) { s.hooks = append(s.hooks, h) }

// Spawn creates a new thread starting in compartment comp. Backend hooks
// run synchronously, like the build-time-inlined hook calls in the paper.
func (s *Scheduler) Spawn(name string, comp CompID) *Thread {
	t := &Thread{ID: s.nextID, Name: name, Comp: comp, runnable: true}
	s.nextID++
	s.threads = append(s.threads, t)
	s.runq = append(s.runq, t)
	for _, h := range s.hooks {
		h.ThreadCreated(t)
	}
	s.spawned++
	if s.current == nil {
		s.current = t
		s.dequeue(t)
	}
	return t
}

func (s *Scheduler) dequeue(t *Thread) {
	for i, q := range s.runq {
		if q == t {
			s.runq = append(s.runq[:i], s.runq[i+1:]...)
			return
		}
	}
}

// Current returns the running thread (nil before the first Spawn).
func (s *Scheduler) Current() *Thread { return s.current }

// Yield performs a cooperative context switch to the next runnable thread,
// charging the context-switch cost and invoking backend hooks. If no other
// thread is runnable it is a no-op.
func (s *Scheduler) Yield() {
	if len(s.runq) == 0 {
		return
	}
	next := s.runq[0]
	s.runq = s.runq[1:]
	prev := s.current
	if prev != nil && prev.runnable {
		s.runq = append(s.runq, prev)
	}
	s.current = next
	s.switches++
	s.mach.Charge(s.mach.Costs.ContextSwitch)
	for _, h := range s.hooks {
		h.ThreadSwitch(prev, next)
	}
}

// Block marks the current thread unrunnable and yields. Wake makes a
// thread runnable again. These are used by the EPT backend's RPC server
// thread pools.
func (s *Scheduler) Block() {
	if s.current != nil {
		s.current.runnable = false
	}
	s.Yield()
}

// Wake marks t runnable and enqueues it.
func (s *Scheduler) Wake(t *Thread) {
	if t.runnable {
		return
	}
	t.runnable = true
	s.runq = append(s.runq, t)
}

// Switches returns the number of context switches performed.
func (s *Scheduler) Switches() uint64 { return s.switches }

// Threads returns the number of threads ever spawned.
func (s *Scheduler) Threads() int { return len(s.threads) }

// String implements fmt.Stringer.
func (s *Scheduler) String() string {
	cur := "<none>"
	if s.current != nil {
		cur = s.current.Name
	}
	return fmt.Sprintf("sched{threads=%d runnable=%d current=%s switches=%d}",
		len(s.threads), len(s.runq), cur, s.switches)
}
