// Package sched implements FlexOS-Go's cooperative scheduler — the
// analogue of Unikraft's uksched micro-library, which the paper places in
// the trusted computing base and ports with 5 shared variables (Table 1).
//
// It provides:
//
//   - threads with a per-thread protection-domain register (PKRU image)
//     maintained by the isolation backend through the hook API;
//   - the per-compartment *stack registry* of §4.1 (each compartment maps
//     threads to their local compartment stack, so full MPK gates can
//     switch call stacks quickly);
//   - Data Shadow Stacks (§4.1, Fig. 4): each stack may be doubled, the
//     upper half living in the shared protection domain, so that the
//     shadow of a stack variable x is &x + StackSize;
//   - stack-protector canaries, checked on frame pop when the owning
//     compartment enables the "stackprotector" hardening.
package sched

import (
	"fmt"

	"flexos/internal/machine"
	"flexos/internal/mem"
)

// CompID identifies a compartment. Compartment 0 always exists and is the
// default compartment (where the TCB lives).
type CompID int

// StackCanary is the value the stack protector writes below each frame.
const StackCanary uint64 = 0xDEAD60A7F1EE705

// Stack is one thread-compartment call stack inside a simulated address
// space. The stack occupies [Base, Base+Size) and grows downward. When
// DSS is enabled the region [Base+Size, Base+2*Size) is its Data Shadow
// Stack, placed in the shared domain by the image builder.
type Stack struct {
	AS   *mem.AddrSpace
	Base uintptr
	Size uintptr
	DSS  bool

	sp     uintptr // current stack pointer (offset into AS)
	frames []frame
	mach   *machine.Machine
}

type frame struct {
	savedSP    uintptr
	canaryAddr uintptr
	canary     bool
}

// NewStack creates a stack over the given region. The caller (the image
// builder) is responsible for keying the region: the lower half to the
// compartment's key, the DSS half to the shared key.
func NewStack(as *mem.AddrSpace, base, size uintptr, dss bool, m *machine.Machine) *Stack {
	return &Stack{AS: as, Base: base, Size: size, DSS: dss, sp: base + size, mach: m}
}

// Region returns the full footprint of the stack including its DSS half.
func (s *Stack) Region() (base, length uintptr) {
	if s.DSS {
		return s.Base, 2 * s.Size
	}
	return s.Base, s.Size
}

// SP returns the current simulated stack pointer.
func (s *Stack) SP() uintptr { return s.sp }

// PushFrame opens a new call frame. If canary is true a stack-protector
// canary is written under PKRU pkru and verified at PopFrame.
func (s *Stack) PushFrame(pkru mem.PKRU, canary bool) error {
	f := frame{savedSP: s.sp}
	if canary {
		s.sp -= 8
		f.canaryAddr = s.sp
		f.canary = true
		if err := s.AS.WriteUint64(pkru, f.canaryAddr, StackCanary); err != nil {
			return err
		}
	}
	s.frames = append(s.frames, f)
	return nil
}

// AllocLocal reserves n bytes of the current frame for a local variable
// and returns its address. Shared locals on a DSS stack return the
// *shadow* address (&x + Size), which the builder has keyed into the
// shared domain — exactly the paper's source transformation
// `*(&var + STACK_SIZE)`.
//
// Cost: one stack-bump (Fig. 11a: constant 2 cycles), regardless of
// sharing, which is the DSS's whole point.
func (s *Stack) AllocLocal(n int, shared bool) (uintptr, error) {
	if len(s.frames) == 0 {
		return 0, fmt.Errorf("sched: AllocLocal outside any frame")
	}
	need := uintptr(n)
	if need%8 != 0 {
		need += 8 - need%8
	}
	if need > s.sp-s.Base {
		return 0, fmt.Errorf("sched: stack overflow (%d bytes requested)", n)
	}
	s.sp -= need
	s.mach.Charge(s.mach.Costs.StackAlloc)
	addr := s.sp
	if shared {
		if !s.DSS {
			return 0, fmt.Errorf("sched: shared stack variable without DSS; use heap conversion or a shared stack")
		}
		return addr + s.Size, nil
	}
	return addr, nil
}

// PopFrame closes the innermost frame, restoring the stack pointer. If the
// frame carries a canary it is verified; a mismatch returns a
// FaultStackSmash, modeling __stack_chk_fail.
func (s *Stack) PopFrame(pkru mem.PKRU) error {
	if len(s.frames) == 0 {
		return fmt.Errorf("sched: PopFrame with no open frame")
	}
	f := s.frames[len(s.frames)-1]
	s.frames = s.frames[:len(s.frames)-1]
	if f.canary {
		v, err := s.AS.ReadUint64(pkru, f.canaryAddr)
		if err != nil {
			return err
		}
		if v != StackCanary {
			return &mem.Fault{Kind: mem.FaultStackSmash, Addr: f.canaryAddr, Len: 8, Space: s.AS.Name()}
		}
	}
	s.sp = f.savedSP
	return nil
}

// Depth returns the number of open frames (test hook).
func (s *Stack) Depth() int { return len(s.frames) }
