package sched

import (
	"testing"
	"testing/quick"

	"flexos/internal/machine"
	"flexos/internal/mem"
)

func testEnv(t *testing.T) (*machine.Machine, *mem.AddrSpace) {
	t.Helper()
	m := machine.New(machine.CostModel{})
	return m, mem.NewAddrSpace("sys", 64*mem.PageSize, m)
}

type recordingHooks struct {
	created  []int
	switches int
}

func (r *recordingHooks) ThreadCreated(t *Thread)   { r.created = append(r.created, t.ID) }
func (r *recordingHooks) ThreadSwitch(_, _ *Thread) { r.switches++ }

func TestSpawnRunsHooksAndSetsCurrent(t *testing.T) {
	m, _ := testEnv(t)
	s := New(m)
	h := &recordingHooks{}
	s.RegisterHooks(h)
	t0 := s.Spawn("main", 0)
	if s.Current() != t0 {
		t.Fatal("first spawned thread must become current")
	}
	t1 := s.Spawn("worker", 1)
	if len(h.created) != 2 || h.created[0] != t0.ID || h.created[1] != t1.ID {
		t.Fatalf("hook creations = %v", h.created)
	}
	if t1.Comp != 1 {
		t.Fatalf("thread comp = %d, want 1", t1.Comp)
	}
}

func TestYieldRoundRobin(t *testing.T) {
	m, _ := testEnv(t)
	s := New(m)
	a := s.Spawn("a", 0)
	b := s.Spawn("b", 0)
	c := s.Spawn("c", 0)
	order := []*Thread{}
	for i := 0; i < 6; i++ {
		s.Yield()
		order = append(order, s.Current())
	}
	want := []*Thread{b, c, a, b, c, a}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("yield order[%d] = %s, want %s", i, order[i].Name, want[i].Name)
		}
	}
	if s.Switches() != 6 {
		t.Fatalf("switches = %d, want 6", s.Switches())
	}
}

func TestYieldChargesContextSwitch(t *testing.T) {
	m, _ := testEnv(t)
	s := New(m)
	s.Spawn("a", 0)
	s.Spawn("b", 0)
	cost := m.Clock.Span(func() { s.Yield() })
	if cost != m.Costs.ContextSwitch {
		t.Fatalf("yield cost = %d, want %d", cost, m.Costs.ContextSwitch)
	}
}

func TestBlockWake(t *testing.T) {
	m, _ := testEnv(t)
	s := New(m)
	a := s.Spawn("a", 0)
	b := s.Spawn("b", 0)
	s.Block() // a blocks, b runs
	if s.Current() != b {
		t.Fatal("blocking a should schedule b")
	}
	s.Yield() // only b runnable
	if s.Current() != b {
		t.Fatal("blocked thread must not be scheduled")
	}
	s.Wake(a)
	s.Wake(a) // idempotent
	s.Yield()
	if s.Current() != a {
		t.Fatal("woken thread should run")
	}
}

func TestYieldWithoutThreadsIsNoop(t *testing.T) {
	m, _ := testEnv(t)
	s := New(m)
	s.Yield()
	if s.Current() != nil {
		t.Fatal("no threads, no current")
	}
}

func TestStackRegistry(t *testing.T) {
	m, as := testEnv(t)
	s := New(m)
	th := s.Spawn("t", 0)
	st0 := NewStack(as, 0, 8*mem.PageSize, false, m)
	st1 := NewStack(as, 16*mem.PageSize, 8*mem.PageSize, false, m)
	th.SetStack(0, st0)
	th.SetStack(1, st1)
	if th.Stack(0) != st0 || th.Stack(1) != st1 {
		t.Fatal("stack registry lookup failed")
	}
	if th.Stack(7) != nil {
		t.Fatal("unknown compartment should have no stack")
	}
	if th.Stacks() != 2 {
		t.Fatalf("Stacks() = %d, want 2", th.Stacks())
	}
}

func TestStackAllocLocal(t *testing.T) {
	m, as := testEnv(t)
	st := NewStack(as, 0, 4*mem.PageSize, false, m)
	if err := st.PushFrame(mem.PKRUAllowAll, false); err != nil {
		t.Fatal(err)
	}
	a1, err := st.AllocLocal(16, false)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := st.AllocLocal(16, false)
	if err != nil {
		t.Fatal(err)
	}
	if a2 >= a1 {
		t.Fatal("stack must grow downward")
	}
	if err := st.PopFrame(mem.PKRUAllowAll); err != nil {
		t.Fatal(err)
	}
	if st.SP() != 4*mem.PageSize {
		t.Fatal("PopFrame must restore SP")
	}
}

func TestStackAllocLocalConstantCost(t *testing.T) {
	// Fig. 11a: stack (and DSS) allocations cost a constant 2 cycles.
	m, as := testEnv(t)
	st := NewStack(as, 0, 4*mem.PageSize, true, m)
	st.PushFrame(mem.PKRUAllowAll, false)
	c1 := m.Clock.Span(func() { st.AllocLocal(1, false) })
	c2 := m.Clock.Span(func() { st.AllocLocal(1, true) })
	if c1 != m.Costs.StackAlloc || c2 != m.Costs.StackAlloc {
		t.Fatalf("stack alloc costs = %d/%d, want %d", c1, c2, m.Costs.StackAlloc)
	}
}

func TestDSSShadowAddress(t *testing.T) {
	m, as := testEnv(t)
	size := uintptr(4 * mem.PageSize)
	st := NewStack(as, 0, size, true, m)
	st.PushFrame(mem.PKRUAllowAll, false)
	shadow, err := st.AllocLocal(8, true)
	if err != nil {
		t.Fatal(err)
	}
	// The shadow of x is &x + STACK_SIZE (Fig. 4).
	if shadow != st.SP()+size {
		t.Fatalf("shadow = %#x, want sp+size = %#x", shadow, st.SP()+size)
	}
	base, length := st.Region()
	if base != 0 || length != 2*size {
		t.Fatalf("DSS region = (%#x,%#x), want (0,%#x)", base, length, 2*size)
	}
}

func TestSharedLocalWithoutDSSFails(t *testing.T) {
	m, as := testEnv(t)
	st := NewStack(as, 0, 4*mem.PageSize, false, m)
	st.PushFrame(mem.PKRUAllowAll, false)
	if _, err := st.AllocLocal(8, true); err == nil {
		t.Fatal("shared stack variable without DSS must be rejected")
	}
}

func TestStackOverflowDetected(t *testing.T) {
	m, as := testEnv(t)
	st := NewStack(as, 0, mem.PageSize, false, m)
	st.PushFrame(mem.PKRUAllowAll, false)
	if _, err := st.AllocLocal(2*mem.PageSize, false); err == nil {
		t.Fatal("stack overflow not detected")
	}
}

func TestCanaryDetectsSmash(t *testing.T) {
	m, as := testEnv(t)
	st := NewStack(as, 0, 4*mem.PageSize, false, m)
	if err := st.PushFrame(mem.PKRUAllowAll, true); err != nil {
		t.Fatal(err)
	}
	// Clean pop succeeds.
	if err := st.PopFrame(mem.PKRUAllowAll); err != nil {
		t.Fatalf("clean pop: %v", err)
	}
	// Smashed canary faults.
	st.PushFrame(mem.PKRUAllowAll, true)
	if err := as.WriteUint64(mem.PKRUAllowAll, st.SP(), 0x41414141); err != nil {
		t.Fatal(err)
	}
	err := st.PopFrame(mem.PKRUAllowAll)
	if !mem.IsFault(err, mem.FaultStackSmash) {
		t.Fatalf("smashed canary: got %v, want stack-smash fault", err)
	}
}

func TestPopFrameWithoutPush(t *testing.T) {
	m, as := testEnv(t)
	st := NewStack(as, 0, mem.PageSize, false, m)
	if err := st.PopFrame(mem.PKRUAllowAll); err == nil {
		t.Fatal("pop without push must fail")
	}
	_ = m
}

// Property: any push/alloc/pop sequence restores SP to the top.
func TestStackBalancedProperty(t *testing.T) {
	m, as := testEnv(t)
	f := func(allocs []uint8) bool {
		st := NewStack(as, 0, 16*mem.PageSize, false, m)
		if st.PushFrame(mem.PKRUAllowAll, false) != nil {
			return false
		}
		for _, a := range allocs {
			if _, err := st.AllocLocal(int(a)+1, false); err != nil {
				return false
			}
		}
		if st.PopFrame(mem.PKRUAllowAll) != nil {
			return false
		}
		return st.SP() == 16*mem.PageSize && st.Depth() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDSSCompatibleWithStackProtector(t *testing.T) {
	// §4.1: "The DSS mechanism ... is compatible with common stack
	// protection mechanisms" — canaries live in the private half,
	// shadows in the DSS half, and neither interferes with the other.
	m, as := testEnv(t)
	size := uintptr(4 * mem.PageSize)
	st := NewStack(as, 0, size, true, m)
	if err := st.PushFrame(mem.PKRUAllowAll, true); err != nil {
		t.Fatal(err)
	}
	shadow, err := st.AllocLocal(8, true)
	if err != nil {
		t.Fatal(err)
	}
	// Writing the shadow variable must not disturb the canary.
	if err := as.WriteUint64(mem.PKRUAllowAll, shadow, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	if err := st.PopFrame(mem.PKRUAllowAll); err != nil {
		t.Fatalf("canary tripped by DSS write: %v", err)
	}
	// But smashing the private half still trips it.
	st.PushFrame(mem.PKRUAllowAll, true)
	if _, err := st.AllocLocal(8, true); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteUint64(mem.PKRUAllowAll, st.SP()+8, 0x41414141); err != nil {
		t.Fatal(err)
	}
	if err := st.PopFrame(mem.PKRUAllowAll); !mem.IsFault(err, mem.FaultStackSmash) {
		t.Fatalf("smash under DSS: got %v, want stack-smash fault", err)
	}
}
