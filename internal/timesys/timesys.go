// Package timesys implements the uktime analogue: FlexOS' time subsystem.
// The paper uses it as the minimal porting example (Table 1: +10/-9 lines,
// zero shared variables, "10 minutes" of porting effort) and isolates it
// as its own compartment in the SQLite MPK3 scenario (§6.4).
package timesys

import "flexos/internal/core"

// Name is the component name used in configuration files.
const Name = "uktime"

// nowWork is the compute cost of reading the clocksource.
const nowWork = 30

// State is the time subsystem's per-image state.
type State struct {
	// ticks is a monotonic counter advanced on every read, standing in
	// for the hardware clocksource.
	ticks uint64
}

// Register adds the uktime component to the catalog and returns its
// state handle.
func Register(cat *core.Catalog) *State {
	st := &State{}
	c := core.NewComponent(Name)
	c.PatchAdd, c.PatchDel = 10, 9 // Table 1

	c.AddFunc(&core.Func{
		Name: "now", Work: nowWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			st.ticks++
			return st.ticks, nil
		},
	})
	c.AddFunc(&core.Func{
		Name: "monotonic", Work: nowWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			return st.ticks, nil
		},
	})
	cat.MustRegister(c)
	return st
}

// Ticks exposes the counter for tests.
func (s *State) Ticks() uint64 { return s.ticks }
