package timesys

import (
	"testing"

	"flexos/internal/core"
	"flexos/internal/oslib"
)

func testImage(t *testing.T) (*core.Image, *State) {
	t.Helper()
	cat := core.NewCatalog()
	oslib.RegisterTCB(cat)
	st := Register(cat)
	img, err := core.Build(cat, core.ImageSpec{
		Mechanism: "none",
		Comps: []core.CompSpec{{
			Name: "c0", Libs: []string{oslib.BootName, oslib.MMName, Name},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return img, st
}

func TestNowMonotonic(t *testing.T) {
	img, st := testImage(t)
	ctx, err := img.NewContext("t", Name)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := ctx.Call(Name, "now")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := ctx.Call(Name, "now")
	if err != nil {
		t.Fatal(err)
	}
	if v2.(uint64) <= v1.(uint64) {
		t.Fatalf("clock not monotonic: %v then %v", v1, v2)
	}
	if st.Ticks() != 2 {
		t.Fatalf("ticks = %d, want 2", st.Ticks())
	}
}

func TestMonotonicDoesNotAdvance(t *testing.T) {
	img, st := testImage(t)
	ctx, _ := img.NewContext("t", Name)
	ctx.Call(Name, "now")
	before := st.Ticks()
	v, err := ctx.Call(Name, "monotonic")
	if err != nil {
		t.Fatal(err)
	}
	if v.(uint64) != before || st.Ticks() != before {
		t.Fatal("monotonic read must not advance the clocksource")
	}
}

func TestNowChargesCycles(t *testing.T) {
	img, _ := testImage(t)
	ctx, _ := img.NewContext("t", Name)
	cost := img.Mach.Clock.Span(func() { ctx.Call(Name, "now") })
	if cost < nowWork {
		t.Fatalf("now cost = %d, want >= %d", cost, nowWork)
	}
}

func TestTableOneMetadata(t *testing.T) {
	cat := core.NewCatalog()
	Register(cat)
	c, _ := cat.Lookup(Name)
	if c.PatchAdd != 10 || c.PatchDel != 9 || len(c.Shared) != 0 {
		t.Fatalf("Table 1 metadata = +%d/-%d, %d shared vars", c.PatchAdd, c.PatchDel, len(c.Shared))
	}
}
