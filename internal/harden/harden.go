// Package harden models FlexOS' per-compartment software hardening (§4.5):
// control-flow integrity (CFI), the kernel address sanitizer (KASan),
// undefined-behaviour sanitization (UBSan) and the stack protector.
//
// Each technique contributes two things to the simulation:
//
//   - a functional check implemented elsewhere (KASan redzones in
//     internal/mem, canaries in internal/sched, gate entry-point checks in
//     internal/isolation);
//   - a compute-cost multiplier applied to the instrumented compartment's
//     work, which is what Figure 6 varies per component.
//
// Because FlexOS gives every compartment its own allocator, hardening is
// appliable per compartment: isolating unhardened components from hardened
// ones preserves the hardened components' guarantees.
package harden

import (
	"fmt"
	"sort"
	"strings"
)

// Tech is a software hardening technique.
type Tech uint8

const (
	// CFI is fine-grained control-flow integrity instrumentation
	// (forward-edge checks on indirect calls).
	CFI Tech = 1 << iota
	// KASan is the kernel address sanitizer: redzones, quarantine and
	// shadow checks on every memory access.
	KASan
	// UBSan instruments arithmetic and pointer operations for undefined
	// behaviour.
	UBSan
	// StackProtector places canaries below stack frames, verified on
	// return.
	StackProtector
	// ShadowStack keeps a protected copy of return addresses and checks
	// it on every return (backward-edge CFI). Together with CFI's
	// forward-edge checks it closes the control-flow graph against ROP.
	ShadowStack
)

// All is the full hardening stack the paper's Figure 6 toggles per
// component (stack protector, UBSan and KASan).
const All = KASan | UBSan | StackProtector

// names maps configuration-file names to techniques. "asan" is accepted as
// an alias for kasan, matching the paper's example configuration.
var names = map[string]Tech{
	"cfi":             CFI,
	"kasan":           KASan,
	"asan":            KASan,
	"ubsan":           UBSan,
	"stackprotector":  StackProtector,
	"stack-protector": StackProtector,
	"shadowstack":     ShadowStack,
	"shadow-stack":    ShadowStack,
}

// multipliers is the compute-cost factor of each technique, calibrated so
// that the full stack roughly doubles a component's compute time — which
// places the hardening effects of Figure 6 (e.g. ~24% for the scheduler,
// ~42% for the Redis application code) at the right magnitude given the
// per-component work split.
var multipliers = map[Tech]float64{
	CFI:            1.10,
	KASan:          1.85,
	UBSan:          1.26,
	StackProtector: 1.05,
	ShadowStack:    1.07,
}

// allTechs is the fixed iteration order for multiplier composition and
// set enumeration. Floating-point products are order-sensitive, so
// WorkMultiplier must never iterate the multipliers map directly: map
// order varies between runs and would break byte-identical reports.
var allTechs = [...]Tech{CFI, KASan, UBSan, StackProtector, ShadowStack}

// Set is a set of hardening techniques applied to one compartment.
type Set struct {
	mask Tech
}

// NewSet builds a set from techniques.
func NewSet(techs ...Tech) Set {
	var s Set
	for _, t := range techs {
		s.mask |= t
	}
	return s
}

// Parse builds a set from configuration-file names ("cfi", "asan", ...).
func Parse(nameList []string) (Set, error) {
	var s Set
	for _, n := range nameList {
		t, ok := names[strings.ToLower(strings.TrimSpace(n))]
		if !ok {
			return Set{}, fmt.Errorf("harden: unknown hardening %q", n)
		}
		s.mask |= t
	}
	return s, nil
}

// Has reports whether the set includes t.
func (s Set) Has(t Tech) bool { return s.mask&t == t }

// Empty reports whether no hardening is enabled.
func (s Set) Empty() bool { return s.mask == 0 }

// With returns a copy of s with t enabled.
func (s Set) With(t Tech) Set { return Set{mask: s.mask | t} }

// Union returns the union of two sets.
func (s Set) Union(o Set) Set { return Set{mask: s.mask | o.mask} }

// Subset reports whether s ⊆ o — the relation the partial safety ordering
// uses ("stackable software hardening", §5).
func (s Set) Subset(o Set) bool { return s.mask&^o.mask == 0 }

// Equal reports set equality.
func (s Set) Equal(o Set) bool { return s.mask == o.mask }

// Count returns the number of enabled techniques.
func (s Set) Count() int {
	n := 0
	for _, t := range allTechs {
		if s.Has(t) {
			n++
		}
	}
	return n
}

// WorkMultiplier returns the combined compute-cost factor of the enabled
// techniques (multiplicative composition, matching how sanitizer overheads
// stack in practice).
func (s Set) WorkMultiplier() float64 {
	m := 1.0
	for _, t := range allTechs {
		if s.Has(t) {
			m *= multipliers[t]
		}
	}
	return m
}

// String renders the set in configuration syntax, deterministically
// ordered.
func (s Set) String() string {
	if s.Empty() {
		return "[]"
	}
	var out []string
	if s.Has(CFI) {
		out = append(out, "cfi")
	}
	if s.Has(KASan) {
		out = append(out, "kasan")
	}
	if s.Has(UBSan) {
		out = append(out, "ubsan")
	}
	if s.Has(StackProtector) {
		out = append(out, "stackprotector")
	}
	if s.Has(ShadowStack) {
		out = append(out, "shadowstack")
	}
	sort.Strings(out)
	return "[" + strings.Join(out, ",") + "]"
}

// CheckedAdd performs an int64 addition with UBSan-style overflow
// detection: when the set enables UBSan, overflow returns an error instead
// of wrapping. It is the arithmetic helper instrumented code paths use.
func (s Set) CheckedAdd(a, b int64) (int64, error) {
	c := a + b
	if s.Has(UBSan) {
		if (b > 0 && c < a) || (b < 0 && c > a) {
			return 0, fmt.Errorf("harden: ubsan: signed integer overflow %d + %d", a, b)
		}
	}
	return c, nil
}

// CheckedMul is CheckedAdd's multiplication counterpart.
func (s Set) CheckedMul(a, b int64) (int64, error) {
	c := a * b
	if s.Has(UBSan) && a != 0 && c/a != b {
		return 0, fmt.Errorf("harden: ubsan: signed integer overflow %d * %d", a, b)
	}
	return c, nil
}
