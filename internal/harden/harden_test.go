package harden

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParse(t *testing.T) {
	s, err := Parse([]string{"cfi", "asan"})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Has(CFI) || !s.Has(KASan) {
		t.Fatalf("parsed set %v missing cfi/kasan", s)
	}
	if s.Has(UBSan) || s.Has(StackProtector) {
		t.Fatal("parse enabled techniques not requested")
	}
	if _, err := Parse([]string{"rust"}); err == nil {
		t.Fatal("unknown hardening accepted")
	}
	// Case/space insensitive.
	if _, err := Parse([]string{" KASan "}); err != nil {
		t.Fatalf("case-insensitive parse failed: %v", err)
	}
}

func TestEmptySet(t *testing.T) {
	var s Set
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("zero set should be empty")
	}
	if s.WorkMultiplier() != 1.0 {
		t.Fatalf("empty set multiplier = %v, want 1.0", s.WorkMultiplier())
	}
	if s.String() != "[]" {
		t.Fatalf("empty set String = %q", s.String())
	}
}

func TestWorkMultiplierGrowsWithTechs(t *testing.T) {
	var prev float64 = 1.0
	s := NewSet()
	for _, tech := range []Tech{StackProtector, CFI, UBSan, KASan} {
		s = s.With(tech)
		m := s.WorkMultiplier()
		if m <= prev {
			t.Fatalf("adding %v did not increase multiplier (%v -> %v)", tech, prev, m)
		}
		prev = m
	}
	// The full stack should land near 2x, matching the calibration notes.
	full := NewSet(KASan, UBSan, StackProtector).WorkMultiplier()
	if full < 1.8 || full > 2.6 {
		t.Fatalf("full-stack multiplier = %v, want ~2x", full)
	}
}

func TestSubset(t *testing.T) {
	a := NewSet(CFI)
	b := NewSet(CFI, KASan)
	if !a.Subset(b) || b.Subset(a) {
		t.Fatal("subset relation wrong")
	}
	if !a.Subset(a) {
		t.Fatal("subset must be reflexive")
	}
	c := NewSet(UBSan)
	if a.Subset(c) || c.Subset(a) {
		t.Fatal("disjoint sets must be incomparable")
	}
}

func TestUnionAndEqual(t *testing.T) {
	a := NewSet(CFI)
	b := NewSet(KASan)
	u := a.Union(b)
	if !u.Equal(NewSet(CFI, KASan)) {
		t.Fatal("union wrong")
	}
	if u.Count() != 2 {
		t.Fatalf("count = %d", u.Count())
	}
}

// Property: Subset is a partial order (reflexive, antisymmetric,
// transitive) on random sets.
func TestSubsetPartialOrderProperty(t *testing.T) {
	f := func(x, y, z uint8) bool {
		a, b, c := Set{mask: Tech(x) & All}, Set{mask: Tech(y) & All}, Set{mask: Tech(z) & All}
		if !a.Subset(a) {
			return false
		}
		if a.Subset(b) && b.Subset(a) && !a.Equal(b) {
			return false
		}
		if a.Subset(b) && b.Subset(c) && !a.Subset(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the multiplier is monotone along subset inclusion — stacking
// hardening never makes a compartment faster (assumption 3 of §5).
func TestMultiplierMonotoneProperty(t *testing.T) {
	f := func(x, y uint8) bool {
		a := Set{mask: Tech(x) & (All | CFI)}
		b := a.Union(Set{mask: Tech(y) & (All | CFI)})
		return a.WorkMultiplier() <= b.WorkMultiplier()+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckedAdd(t *testing.T) {
	ub := NewSet(UBSan)
	if _, err := ub.CheckedAdd(math.MaxInt64, 1); err == nil {
		t.Fatal("ubsan missed signed overflow")
	}
	if v, err := ub.CheckedAdd(2, 3); err != nil || v != 5 {
		t.Fatalf("CheckedAdd(2,3) = %d, %v", v, err)
	}
	// Without UBSan the overflow wraps silently, like -fno-sanitize.
	var plain Set
	if _, err := plain.CheckedAdd(math.MaxInt64, 1); err != nil {
		t.Fatal("unhardened add must not trap")
	}
}

func TestCheckedMul(t *testing.T) {
	ub := NewSet(UBSan)
	if _, err := ub.CheckedMul(math.MaxInt64/2, 3); err == nil {
		t.Fatal("ubsan missed multiply overflow")
	}
	if v, err := ub.CheckedMul(6, 7); err != nil || v != 42 {
		t.Fatalf("CheckedMul = %d, %v", v, err)
	}
}

func TestStringDeterministic(t *testing.T) {
	s := NewSet(KASan, CFI, StackProtector, UBSan)
	if s.String() != s.String() {
		t.Fatal("String must be deterministic")
	}
	if got := NewSet(CFI).String(); got != "[cfi]" {
		t.Fatalf("String = %q", got)
	}
}
