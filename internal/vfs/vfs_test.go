package vfs

import (
	"testing"

	"flexos/internal/core"
	"flexos/internal/oslib"
	"flexos/internal/ramfs"
	"flexos/internal/timesys"
)

func testImage(t *testing.T) (*core.Image, *State, *timesys.State) {
	t.Helper()
	cat := core.NewCatalog()
	oslib.RegisterTCB(cat)
	tst := timesys.Register(cat)
	ramfs.Register(cat)
	st := Register(cat)
	img, err := core.Build(cat, core.ImageSpec{
		Mechanism: "none",
		Comps: []core.CompSpec{{
			Name: "c0",
			Libs: []string{oslib.BootName, oslib.MMName, timesys.Name, ramfs.Name, Name},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return img, st, tst
}

func TestOpenWriteReadRoundTrip(t *testing.T) {
	img, _, _ := testImage(t)
	ctx, _ := img.NewContext("t", Name)
	v, err := ctx.Call(Name, "open", "/etc/motd")
	if err != nil {
		t.Fatal(err)
	}
	fd := v.(int)
	buf, _ := ctx.AllocPrivate(16)
	ctx.Write(buf, []byte("welcome to flex!"))
	n, err := ctx.Call(Name, "write", fd, buf, 16)
	if err != nil || n != 16 {
		t.Fatalf("write = %v, %v", n, err)
	}
	// Reopen and read back.
	v2, _ := ctx.Call(Name, "open", "/etc/motd")
	out, _ := ctx.AllocPrivate(16)
	n, err = ctx.Call(Name, "read", v2.(int), out, 16)
	if err != nil || n != 16 {
		t.Fatalf("read = %v, %v", n, err)
	}
	raw := make([]byte, 16)
	ctx.Read(out, raw)
	if string(raw) != "welcome to flex!" {
		t.Fatalf("content = %q", raw)
	}
}

func TestCursorAdvancesAndSeek(t *testing.T) {
	img, _, _ := testImage(t)
	ctx, _ := img.NewContext("t", Name)
	v, _ := ctx.Call(Name, "open", "/f")
	fd := v.(int)
	buf, _ := ctx.AllocPrivate(4)
	ctx.Write(buf, []byte("abcd"))
	ctx.Call(Name, "write", fd, buf, 4)
	ctx.Call(Name, "write", fd, buf, 4) // appends at cursor
	if sz, _ := ctx.Call(Name, "size", "/f"); sz != 8 {
		t.Fatalf("size = %v, want 8", sz)
	}
	if _, err := ctx.Call(Name, "seek", fd, 0); err != nil {
		t.Fatal(err)
	}
	ctx.Call(Name, "write", fd, buf, 4) // overwrite at 0
	if sz, _ := ctx.Call(Name, "size", "/f"); sz != 8 {
		t.Fatalf("size after overwrite = %v, want 8", sz)
	}
}

func TestEveryOpTimestamps(t *testing.T) {
	// §6.4 structure: vfs operations hit the time subsystem, which is
	// why isolating uktime matters in the MPK3 scenario.
	img, _, tst := testImage(t)
	ctx, _ := img.NewContext("t", Name)
	before := tst.Ticks()
	v, _ := ctx.Call(Name, "open", "/f")
	buf, _ := ctx.AllocPrivate(4)
	ctx.Call(Name, "write", v.(int), buf, 4)
	ctx.Call(Name, "fsync", v.(int))
	if tst.Ticks() < before+3 {
		t.Fatalf("ticks advanced by %d, want >= 3", tst.Ticks()-before)
	}
}

func TestUnlinkRemovesFile(t *testing.T) {
	img, _, _ := testImage(t)
	ctx, _ := img.NewContext("t", Name)
	ctx.Call(Name, "open", "/gone")
	if _, err := ctx.Call(Name, "unlink", "/gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Call(Name, "size", "/gone"); err == nil {
		t.Fatal("unlinked file still visible")
	}
	if _, err := ctx.Call(Name, "unlink", "/gone"); err == nil {
		t.Fatal("double unlink accepted")
	}
}

func TestCloseInvalidatesFD(t *testing.T) {
	img, _, _ := testImage(t)
	ctx, _ := img.NewContext("t", Name)
	v, _ := ctx.Call(Name, "open", "/f")
	fd := v.(int)
	if _, err := ctx.Call(Name, "close", fd); err != nil {
		t.Fatal(err)
	}
	buf, _ := ctx.AllocPrivate(4)
	if _, err := ctx.Call(Name, "write", fd, buf, 4); err == nil {
		t.Fatal("write on closed fd accepted")
	}
}

func TestOpsCounter(t *testing.T) {
	img, st, _ := testImage(t)
	ctx, _ := img.NewContext("t", Name)
	before := st.Ops()
	ctx.Call(Name, "open", "/f")
	if st.Ops() != before+1 {
		t.Fatal("ops counter did not advance")
	}
}

func TestTable1Metadata(t *testing.T) {
	cat := core.NewCatalog()
	timesys.Register(cat)
	ramfs.Register(cat)
	Register(cat)
	c, _ := cat.Lookup(Name)
	if len(c.Shared) != 12 {
		t.Fatalf("vfscore shared vars = %d, want 12 (Table 1)", len(c.Shared))
	}
	if c.PatchAdd != 148 || c.PatchDel != 37 {
		t.Fatalf("vfscore patch = +%d/-%d", c.PatchAdd, c.PatchDel)
	}
}
