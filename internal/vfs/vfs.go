// Package vfs implements the vfscore analogue: FlexOS-Go's virtual
// filesystem switch. It owns the path namespace and file descriptors and
// delegates node storage to ramfs — the entangled pair §4.4 isolates
// together (Table 1: +148/-37 lines, 12 shared variables for the two).
//
// Every operation timestamps through the uktime component, which is why
// the paper's SQLite MPK3 scenario (filesystem / time subsystem / rest)
// pays gates on both edges of the hot path.
package vfs

import (
	"fmt"

	"flexos/internal/core"
	"flexos/internal/ramfs"
	"flexos/internal/timesys"
)

// Name is the component name used in configuration files.
const Name = "vfscore"

// Per-op base costs (cycles).
const (
	lookupWork = 28
	fdWork     = 22
	syncWork   = 45
)

// file is an open descriptor.
type file struct {
	fd     int
	nodeID int
	pos    int
}

// State is the per-image VFS state.
type State struct {
	paths  map[string]int // path -> ramfs node id
	files  map[int]*file
	nextFD int
	ops    uint64
}

// Register adds the vfscore component. It requires ramfs and uktime to be
// registered in the same catalog.
func Register(cat *core.Catalog) *State {
	st := &State{paths: make(map[string]int), files: make(map[int]*file)}
	c := core.NewComponent(Name)
	c.PatchAdd, c.PatchDel = 148, 37 // Table 1 (vfscore+ramfs)
	c.Imports = []string{ramfs.Name, timesys.Name}
	for _, v := range []core.SharedVar{
		{Name: "fd_table", Size: 256},
		{Name: "mount_table", Size: 128},
		{Name: "cwd", Size: 64},
		{Name: "vfs_stats", Size: 64},
		{Name: "dirent_buf", Size: 256},
		{Name: "path_scratch", Size: 128},
		{Name: "open_flags", Size: 8},
		{Name: "umask", Size: 8},
		{Name: "root_vnode", Size: 32},
		{Name: "io_vec", Size: 64},
		{Name: "lock_table", Size: 64},
		{Name: "statfs_buf", Size: 64},
	} {
		c.AddShared(v)
	}

	now := func(ctx *core.Ctx) (uint64, error) {
		v, err := ctx.Call(timesys.Name, "now")
		if err != nil {
			return 0, err
		}
		return v.(uint64), nil
	}

	// open(path) creates the file if needed and returns an fd.
	c.AddFunc(&core.Func{
		Name: "open", Work: lookupWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			path, ok := args[0].(string)
			if !ok {
				return nil, fmt.Errorf("vfs: open(path string)")
			}
			if _, err := now(ctx); err != nil {
				return nil, err
			}
			nodeID, ok := st.paths[path]
			if !ok {
				v, err := ctx.Call(ramfs.Name, "create")
				if err != nil {
					return nil, err
				}
				nodeID = v.(int)
				st.paths[path] = nodeID
			}
			st.nextFD++
			st.files[st.nextFD] = &file{fd: st.nextFD, nodeID: nodeID}
			st.ops++
			return st.nextFD, nil
		},
	})

	// write(fd, srcAddr, n) appends at the cursor.
	c.AddFunc(&core.Func{
		Name: "write", Work: fdWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			if len(args) != 3 {
				return nil, fmt.Errorf("vfs: write(fd, src, n)")
			}
			f, err := st.file(args[0])
			if err != nil {
				return nil, err
			}
			src := args[1].(uintptr)
			n := args[2].(int)
			t, err := now(ctx)
			if err != nil {
				return nil, err
			}
			v, err := ctx.Call(ramfs.Name, "write_node", f.nodeID, f.pos, src, n, t)
			if err != nil {
				return nil, err
			}
			f.pos += v.(int)
			st.ops++
			return v, nil
		},
	})

	// read(fd, dstAddr, n) reads from the cursor.
	c.AddFunc(&core.Func{
		Name: "read", Work: fdWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			if len(args) != 3 {
				return nil, fmt.Errorf("vfs: read(fd, dst, n)")
			}
			f, err := st.file(args[0])
			if err != nil {
				return nil, err
			}
			dst := args[1].(uintptr)
			n := args[2].(int)
			if _, err := now(ctx); err != nil {
				return nil, err
			}
			v, err := ctx.Call(ramfs.Name, "read_node", f.nodeID, f.pos, dst, n)
			if err != nil {
				return nil, err
			}
			f.pos += v.(int)
			st.ops++
			return v, nil
		},
	})

	// seek(fd, pos) repositions the cursor.
	c.AddFunc(&core.Func{
		Name: "seek", Work: 14, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			f, err := st.file(args[0])
			if err != nil {
				return nil, err
			}
			f.pos = args[1].(int)
			return f.pos, nil
		},
	})

	// fsync(fd) flushes (a ramfs no-op with sync bookkeeping cost).
	c.AddFunc(&core.Func{
		Name: "fsync", Work: syncWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			if _, err := st.file(args[0]); err != nil {
				return nil, err
			}
			if _, err := now(ctx); err != nil {
				return nil, err
			}
			st.ops++
			return nil, nil
		},
	})

	// close(fd) drops the descriptor.
	c.AddFunc(&core.Func{
		Name: "close", Work: fdWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			f, err := st.file(args[0])
			if err != nil {
				return nil, err
			}
			delete(st.files, f.fd)
			st.ops++
			return nil, nil
		},
	})

	// unlink(path) removes a file entirely.
	c.AddFunc(&core.Func{
		Name: "unlink", Work: lookupWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			path, ok := args[0].(string)
			if !ok {
				return nil, fmt.Errorf("vfs: unlink(path string)")
			}
			nodeID, ok := st.paths[path]
			if !ok {
				return nil, fmt.Errorf("vfs: unlink %q: no such file", path)
			}
			if _, err := now(ctx); err != nil {
				return nil, err
			}
			if _, err := ctx.Call(ramfs.Name, "remove", nodeID); err != nil {
				return nil, err
			}
			delete(st.paths, path)
			st.ops++
			return nil, nil
		},
	})

	// size(path) returns the file size.
	c.AddFunc(&core.Func{
		Name: "size", Work: lookupWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			path, ok := args[0].(string)
			if !ok {
				return nil, fmt.Errorf("vfs: size(path string)")
			}
			nodeID, ok := st.paths[path]
			if !ok {
				return nil, fmt.Errorf("vfs: size %q: no such file", path)
			}
			return ctx.Call(ramfs.Name, "node_size", nodeID)
		},
	})
	cat.MustRegister(c)
	return st
}

func (st *State) file(arg any) (*file, error) {
	fd, ok := arg.(int)
	if !ok {
		return nil, fmt.Errorf("vfs: fd must be int")
	}
	f, ok := st.files[fd]
	if !ok {
		return nil, fmt.Errorf("vfs: bad fd %d", fd)
	}
	return f, nil
}

// Ops returns the number of VFS operations performed (bench hook).
func (st *State) Ops() uint64 { return st.ops }
