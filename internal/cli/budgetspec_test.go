package cli

import (
	"fmt"
	"strings"
	"testing"
)

// TestParseBudgetSpec pins the -measure-budget syntax: "N" and
// "N@SEED", whitespace-tolerant, budget 0 normalizing the seed away,
// and everything else rejected.
func TestParseBudgetSpec(t *testing.T) {
	for _, tc := range []struct {
		in      string
		budget  int
		seed    int64
		hasSeed bool
		ok      bool
	}{
		{"2000", 2000, 0, false, true},
		{"2000@7", 2000, 7, true, true},
		{"1@-3", 1, -3, true, true},
		{" 500 @ 11 ", 500, 11, true, true},
		{"0", 0, 0, false, true},
		{"0@9", 0, 0, false, true}, // no budget: the seed is meaningless
		{"", 0, 0, false, false},
		{"@7", 0, 0, false, false},
		{"2000@", 0, 0, false, false},
		{"-1", 0, 0, false, false},
		{"-1@7", 0, 0, false, false},
		{"2e3", 0, 0, false, false},
		{"2000@x", 0, 0, false, false},
		{"2000@7@9", 0, 0, false, false},
		{"budget", 0, 0, false, false},
	} {
		budget, seed, hasSeed, err := ParseBudgetSpec(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseBudgetSpec(%q): err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && (budget != tc.budget || seed != tc.seed || hasSeed != tc.hasSeed) {
			t.Errorf("ParseBudgetSpec(%q) = (%d, %d, %v), want (%d, %d, %v)",
				tc.in, budget, seed, hasSeed, tc.budget, tc.seed, tc.hasSeed)
		}
	}
}

// FuzzParseBudgetSpec asserts the flag parser's safety contract on
// arbitrary input: it never panics, never accepts a negative budget,
// normalizes budget 0 to the seedless form, and accepts its own
// canonical rendering as a fixpoint.
func FuzzParseBudgetSpec(f *testing.F) {
	// Seed the corpus from the same configs/*.yaml-derived requests the
	// codec fuzzer mutates, rendered into budget-spec shapes.
	for i, seed := range configDerivedSeeds(f) {
		f.Add(fmt.Sprintf("%d", len(seed)))
		f.Add(fmt.Sprintf("%d@%d", len(seed), i))
	}
	f.Add("2000")
	f.Add("2000@7")
	f.Add(" 500 @ -11 ")
	f.Add("0@9")
	f.Add("@")
	f.Add("9223372036854775807@-9223372036854775808")
	f.Fuzz(func(t *testing.T, s string) {
		budget, seed, hasSeed, err := ParseBudgetSpec(s)
		if err != nil {
			return
		}
		if budget < 0 {
			t.Fatalf("ParseBudgetSpec(%q) accepted negative budget %d", s, budget)
		}
		if budget == 0 && (seed != 0 || hasSeed) {
			t.Fatalf("ParseBudgetSpec(%q) kept seed %d (hasSeed=%v) without a budget", s, seed, hasSeed)
		}
		canon := fmt.Sprintf("%d", budget)
		if hasSeed {
			canon = fmt.Sprintf("%d@%d", budget, seed)
		}
		b2, s2, h2, err := ParseBudgetSpec(canon)
		if err != nil || b2 != budget || s2 != seed || h2 != hasSeed {
			t.Fatalf("canonical form %q of %q does not re-parse to (%d, %d, %v): (%d, %d, %v, %v)",
				canon, s, budget, seed, hasSeed, b2, s2, h2, err)
		}
		if strings.TrimSpace(s) == "" {
			t.Fatalf("ParseBudgetSpec(%q) accepted blank input", s)
		}
	})
}
