package cli

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client forwards exploration requests to a flexos-serve daemon. The
// zero HTTPClient means http.DefaultClient. Explore and ExploreStream
// return the daemon's Response; the Report inside is byte-identical
// to what the same Request run locally would print, so callers render
// it verbatim.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8077".
	BaseURL string
	// HTTPClient overrides the transport when non-nil.
	HTTPClient *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// ExplorePath is the daemon's exploration endpoint.
const ExplorePath = "/v1/explore"

func (c *Client) post(ctx context.Context, req Request) (*http.Response, error) {
	url := strings.TrimSuffix(c.BaseURL, "/") + ExplorePath
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(req.Encode()))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	return c.httpClient().Do(hreq)
}

// decodeError turns a non-OK complete response into an error carrying
// the daemon's message.
func decodeError(hres *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(hres.Body, MaxRequestBytes))
	var r Response
	if err := json.Unmarshal(body, &r); err == nil && r.Error != "" {
		return fmt.Errorf("cli: remote explore: %s (HTTP %d)", r.Error, hres.StatusCode)
	}
	return fmt.Errorf("cli: remote explore: HTTP %d: %s", hres.StatusCode, strings.TrimSpace(string(body)))
}

// Explore runs one complete (non-streaming) remote exploration.
func (c *Client) Explore(ctx context.Context, req Request) (Response, error) {
	req.Stream = false
	hres, err := c.post(ctx, req)
	if err != nil {
		return Response{}, err
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return Response{}, decodeError(hres)
	}
	var r Response
	if err := json.NewDecoder(hres.Body).Decode(&r); err != nil {
		return Response{}, fmt.Errorf("cli: remote explore: decode response: %w", err)
	}
	if r.Error != "" {
		return Response{}, fmt.Errorf("cli: remote explore: %s", r.Error)
	}
	return r, nil
}

// ExploreStream runs one streaming remote exploration: onLine is
// called for each measured configuration, in Query.Stream order, with
// exactly the bytes a local -stream run would print; the returned
// Response is the final report document.
func (c *Client) ExploreStream(ctx context.Context, req Request, onLine func(string)) (Response, error) {
	req.Stream = true
	hres, err := c.post(ctx, req)
	if err != nil {
		return Response{}, err
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return Response{}, decodeError(hres)
	}
	sc := bufio.NewScanner(hres.Body)
	sc.Buffer(make([]byte, 0, 64*1024), MaxRequestBytes)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ev Response
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return Response{}, fmt.Errorf("cli: remote explore: decode stream event: %w", err)
		}
		switch {
		case ev.Error != "":
			return Response{}, fmt.Errorf("cli: remote explore: %s", ev.Error)
		case ev.Line != "":
			if onLine != nil {
				onLine(ev.Line)
			}
		case ev.Report != "":
			return ev, nil
		}
	}
	if err := sc.Err(); err != nil {
		return Response{}, fmt.Errorf("cli: remote explore: %w", err)
	}
	return Response{}, fmt.Errorf("cli: remote explore: stream ended without a final report")
}

// Healthz checks the daemon's health endpoint.
func (c *Client) Healthz(ctx context.Context) error {
	url := strings.TrimSuffix(c.BaseURL, "/") + "/healthz"
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	hres, err := c.httpClient().Do(hreq)
	if err != nil {
		return err
	}
	defer hres.Body.Close()
	io.Copy(io.Discard, io.LimitReader(hres.Body, 4096))
	if hres.StatusCode != http.StatusOK {
		return fmt.Errorf("cli: healthz: HTTP %d", hres.StatusCode)
	}
	return nil
}
