package cli

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"
)

// RetryPolicy bounds the client's retries of transient failures:
// transport errors (a dialing worker that is not up yet, a connection
// cut mid-flight) and 5xx responses. 4xx responses and server-reported
// exploration errors are never retried — they are deterministic.
//
// Attempt n (0-based) sleeps BaseDelay·2ⁿ capped at MaxDelay, with
// uniform jitter in [d/2, d] so a fleet of retrying clients does not
// stampede a recovering daemon in lockstep.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries; values <= 1 mean a
	// single attempt (no retry).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (0: 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (0: 1s).
	MaxDelay time.Duration
}

// DefaultRetry is the policy flexos-explore -remote and the cluster
// coordinator use: four tries over roughly a quarter second.
var DefaultRetry = &RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second}

// attempts returns the effective total try count (at least 1).
func (p *RetryPolicy) attempts() int {
	if p == nil || p.MaxAttempts <= 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the jittered sleep before retry number n (0-based).
func (p *RetryPolicy) backoff(n int) time.Duration {
	base, max := 50*time.Millisecond, time.Second
	if p != nil && p.BaseDelay > 0 {
		base = p.BaseDelay
	}
	if p != nil && p.MaxDelay > 0 {
		max = p.MaxDelay
	}
	d := base << uint(min(n, 20))
	if d <= 0 || d > max {
		d = max
	}
	return d/2 + rand.N(d/2+1)
}

// sleep waits the backoff for retry n, or returns early with the
// context's error.
func (p *RetryPolicy) sleep(ctx context.Context, n int) error {
	t := time.NewTimer(p.backoff(n))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Client forwards exploration requests to a flexos-serve daemon. The
// zero HTTPClient means http.DefaultClient. Explore and ExploreStream
// return the daemon's Response; the Report inside is byte-identical
// to what the same Request run locally would print, so callers render
// it verbatim.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8077".
	BaseURL string
	// HTTPClient overrides the transport when non-nil.
	HTTPClient *http.Client
	// Retry, when non-nil, retries transient failures (transport
	// errors, 5xx) with bounded exponential backoff. Streamed requests
	// resume deterministically: lines already delivered are skipped on
	// the retried stream, which replays identically (streams are in
	// input order, byte-identical across runs).
	Retry *RetryPolicy

	// retries counts the retry attempts the policy has consumed (every
	// re-issue after a transient failure, across all calls). A load
	// generator reads it off to report how hard the target made it work.
	retries atomic.Int64
}

// Retries returns the number of retry attempts this client has spent
// on transient failures so far. Safe for concurrent use.
func (c *Client) Retries() int64 { return c.retries.Load() }

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Daemon endpoints.
const (
	// ExplorePath is the exploration endpoint (POST).
	ExplorePath = "/v1/explore"
	// JoinPath registers a worker with a coordinator (POST).
	JoinPath = "/v1/cluster/join"
	// MembersPath lists a coordinator's cluster membership (GET).
	MembersPath = "/v1/cluster/members"
	// PullPath ships store records between nodes (GET, paged).
	PullPath = "/v1/store/pull"
)

// doOnce issues one HTTP attempt. body may be nil for GETs.
func (c *Client) doOnce(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	u := strings.TrimSuffix(c.BaseURL, "/") + path
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	hreq, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		hreq.Header.Set("Content-Type", "application/json")
	}
	return c.httpClient().Do(hreq)
}

// do issues the request under the retry policy: transport errors and
// 5xx responses are retried with backoff until the attempts run out;
// any other response is returned as-is.
func (c *Client) do(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	attempts := c.Retry.attempts()
	for n := 0; ; n++ {
		hres, err := c.doOnce(ctx, method, path, body)
		retryable := err != nil || hres.StatusCode >= 500
		if !retryable || n+1 >= attempts {
			return hres, err
		}
		if err == nil {
			io.Copy(io.Discard, io.LimitReader(hres.Body, 4096))
			hres.Body.Close()
		}
		if serr := c.Retry.sleep(ctx, n); serr != nil {
			if err == nil {
				err = serr
			}
			return nil, err
		}
		c.retries.Add(1)
	}
}

func (c *Client) post(ctx context.Context, req Request) (*http.Response, error) {
	return c.do(ctx, http.MethodPost, ExplorePath, req.Encode())
}

// decodeError turns a non-OK complete response into an error carrying
// the daemon's message.
func decodeError(hres *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(hres.Body, MaxRequestBytes))
	var r Response
	if err := json.Unmarshal(body, &r); err == nil && r.Error != "" {
		return fmt.Errorf("cli: remote explore: %s (HTTP %d)", r.Error, hres.StatusCode)
	}
	return fmt.Errorf("cli: remote explore: HTTP %d: %s", hres.StatusCode, strings.TrimSpace(string(body)))
}

// Explore runs one complete (non-streaming) remote exploration.
func (c *Client) Explore(ctx context.Context, req Request) (Response, error) {
	req.Stream = false
	hres, err := c.post(ctx, req)
	if err != nil {
		return Response{}, err
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return Response{}, decodeError(hres)
	}
	var r Response
	if err := json.NewDecoder(hres.Body).Decode(&r); err != nil {
		return Response{}, fmt.Errorf("cli: remote explore: decode response: %w", err)
	}
	if r.Error != "" {
		return Response{}, fmt.Errorf("cli: remote explore: %s", r.Error)
	}
	return r, nil
}

// ExploreStream runs one streaming remote exploration: onLine is
// called for each measured configuration, in Query.Stream order, with
// exactly the bytes a local -stream run would print; the returned
// Response is the final report document.
//
// Under a Retry policy a stream cut mid-flight (worker death, network
// failure) is retried as a whole request, and because streams replay
// byte-identically in input order, the lines already delivered are
// skipped on the resumed stream — the caller sees every line exactly
// once, in order, with no duplicates across the cut.
func (c *Client) ExploreStream(ctx context.Context, req Request, onLine func(string)) (Response, error) {
	req.Stream = true
	attempts := c.Retry.attempts()
	delivered := 0
	for n := 0; ; n++ {
		res, retryable, err := c.streamOnce(ctx, req, &delivered, onLine)
		if err == nil || !retryable || n+1 >= attempts || ctx.Err() != nil {
			return res, err
		}
		if serr := c.Retry.sleep(ctx, n); serr != nil {
			return Response{}, err
		}
		c.retries.Add(1)
	}
}

// streamOnce runs a single streaming attempt, skipping the first
// *delivered lines (already handed to onLine by a previous attempt)
// and advancing *delivered as new ones arrive. retryable reports
// whether the failure is transient — a transport error or severed
// stream — rather than a deterministic rejection.
func (c *Client) streamOnce(ctx context.Context, req Request, delivered *int, onLine func(string)) (_ Response, retryable bool, _ error) {
	hres, err := c.doOnce(ctx, http.MethodPost, ExplorePath, req.Encode())
	if err != nil {
		return Response{}, true, err
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return Response{}, hres.StatusCode >= 500, decodeError(hres)
	}
	seen := 0
	sc := bufio.NewScanner(hres.Body)
	sc.Buffer(make([]byte, 0, 64*1024), MaxRequestBytes)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ev Response
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return Response{}, false, fmt.Errorf("cli: remote explore: decode stream event: %w", err)
		}
		switch {
		case ev.Error != "":
			return Response{}, false, fmt.Errorf("cli: remote explore: %s", ev.Error)
		case ev.Line != "":
			seen++
			if seen > *delivered {
				*delivered = seen
				if onLine != nil {
					onLine(ev.Line)
				}
			}
		case ev.Report != "":
			return ev, false, nil
		}
	}
	if err := sc.Err(); err != nil {
		return Response{}, true, fmt.Errorf("cli: remote explore: %w", err)
	}
	return Response{}, true, fmt.Errorf("cli: remote explore: stream ended without a final report")
}

// Healthz checks the daemon's health endpoint. It never retries —
// health probes are the caller's failure detector, and a detector
// that retries on its own blurs the signal it exists to provide.
func (c *Client) Healthz(ctx context.Context) error {
	hres, err := c.doOnce(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return err
	}
	defer hres.Body.Close()
	io.Copy(io.Discard, io.LimitReader(hres.Body, 4096))
	if hres.StatusCode != http.StatusOK {
		return fmt.Errorf("cli: healthz: HTTP %d", hres.StatusCode)
	}
	return nil
}

// Join registers selfURL as a worker with the coordinator at BaseURL,
// under the retry policy (a worker typically joins before the
// coordinator finishes booting).
func (c *Client) Join(ctx context.Context, selfURL string) error {
	body, err := json.Marshal(JoinRequest{URL: selfURL})
	if err != nil {
		return err
	}
	hres, err := c.do(ctx, http.MethodPost, JoinPath, body)
	if err != nil {
		return err
	}
	defer hres.Body.Close()
	io.Copy(io.Discard, io.LimitReader(hres.Body, 4096))
	if hres.StatusCode != http.StatusOK {
		return fmt.Errorf("cli: cluster join: HTTP %d", hres.StatusCode)
	}
	return nil
}

// Pull fetches one page of the peer's sync log: the records appended
// after cursor position since, under log generation gen (empty on the
// first call; a generation mismatch resets the page to the log head).
func (c *Client) Pull(ctx context.Context, gen string, since int) (PullPage, error) {
	path := fmt.Sprintf("%s?since=%d&gen=%s", PullPath, since, url.QueryEscape(gen))
	hres, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return PullPage{}, err
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(hres.Body, 4096))
		return PullPage{}, fmt.Errorf("cli: store pull: HTTP %d: %s", hres.StatusCode, strings.TrimSpace(string(body)))
	}
	var page PullPage
	if err := json.NewDecoder(io.LimitReader(hres.Body, 8*MaxRequestBytes)).Decode(&page); err != nil {
		return PullPage{}, fmt.Errorf("cli: store pull: decode page: %w", err)
	}
	return page, nil
}
