// Package cli holds the exploration plumbing the command-line tools
// share: assembling a flexos.Query from the common -app / -scenario
// selection flags, parsing repeated -budget constraints, and printing
// the exploration report.
//
// The report printer is deliberately split in two: PrintReport writes
// the deterministic result — title, constraint list, safest set,
// optional Pareto frontier — and nothing else, while PrintStats writes
// the run statistics (evaluated / cache hits / pruned) that legally
// differ between a cold and a warm run. flexos-explore sends the
// former to stdout and the latter to stderr, which is what lets CI
// assert that a warm rerun, a sharded-and-merged run and a cold run
// produce byte-identical stdout while still reading the cache hit
// rate off stderr.
package cli

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"flexos"
)

// Selection is the space/workload choice the tools share: either a
// scalar -app benchmark space or a multi-metric -scenario workload.
type Selection struct {
	// App selects a scalar benchmark space: redis | nginx | cross.
	App string
	// Scenario, when non-empty, selects a workload of the scenario
	// library instead of App.
	Scenario string
	// Requests is the per-measurement request count for App spaces.
	Requests int
	// Ops overrides the scenario's default op count when > 0.
	Ops int
	// Attack, when non-empty, scores survival against an attack
	// scenario ("rop-chain", "addr-probe", "comp-leak", "combined")
	// and expands the space along the ASLR / control-flow-hardening
	// axes. Requires Scenario.
	Attack string
	// Profile selects the machine profile ("x86", "riscv"). Requires
	// Scenario.
	Profile string
	// ASLR pins a layout-randomization level ("off", "16", "16+leak")
	// instead of sweeping the attack ladder. Requires Scenario.
	ASLR string
}

// memoKeyer lets Build read a workload's memo namespace (Scenario and
// PhasedScenario both implement it).
type memoKeyer interface{ MemoKey() string }

// attackQuery assembles the attack-axis variant of a scenario query:
// the base space is stamped with the machine profile and — for attack
// runs — expanded along the ASLR ladder and control-flow hardening
// variants, and every measurement carries the attack scenario's
// survival score. The memo namespace separates attack runs from plain
// performance runs of the same workload.
func (s Selection) attackQuery(w flexos.Workload, quad [4]string) (*flexos.Query, string, error) {
	spec := flexos.AttackSpec{}
	if s.Attack != "" {
		att, ok := flexos.AttackByName(s.Attack)
		if !ok {
			return nil, "", fmt.Errorf("unknown attack scenario %q (want %s)", s.Attack, flexos.AttackNames())
		}
		spec.Scenario = att.Name()
	}
	canon, err := flexos.CanonicalProfile(s.Profile)
	if err != nil {
		return nil, "", err
	}
	spec.Profile = canon
	if s.ASLR != "" {
		a, err := flexos.ParseASLR(s.ASLR)
		if err != nil {
			return nil, "", err
		}
		spec.ASLR = a
		spec.PinASLR = true
	}

	space := flexos.Fig6Space(quad)
	ns := w.Name()
	if mk, ok := w.(memoKeyer); ok {
		ns = mk.MemoKey()
	}
	measure := flexos.MeasureScenario(w)
	title := w.Name()
	if spec.Scenario == "" {
		// Profile and/or pinned ASLR without an attacker: stamp the
		// space, keep the plain performance measure.
		space = flexos.StampSpace(space, spec.Profile, spec.ASLR, spec.PinASLR)
		return flexos.NewQuery(space).Measure(measure).Namespace(ns), title, nil
	}
	att, _ := flexos.AttackByName(spec.Scenario)
	space = flexos.AttackSpace(space, spec)
	q := flexos.NewQuery(space).
		Measure(flexos.MeasureAttack(att, measure)).
		Namespace(flexos.AttackNamespace(att, ns))
	return q, title + " vs " + spec.String(), nil
}

// Build assembles the query for the selection. It returns the query,
// the report title, and whether the query measures full metric
// vectors (scenario mode) rather than throughput only.
func (s Selection) Build() (q *flexos.Query, title string, scenarioMode bool, err error) {
	attackAxes := s.Attack != "" || s.Profile != "" || s.ASLR != ""
	if s.Scenario == "" && attackAxes {
		return nil, "", false, fmt.Errorf("-attack/-profile/-aslr require -scenario (the -app benchmarks have no attack-axis space)")
	}
	if s.Scenario != "" {
		if flexos.IsPhasedSpec(s.Scenario) {
			ph, err := flexos.ParsePhased(s.Scenario)
			if err != nil {
				return nil, "", false, err
			}
			if s.Ops > 0 {
				ph = ph.WithOps(s.Ops)
			}
			quad, _ := ph.Quad() // ParsePhased rejects quad-less phases
			if attackAxes {
				q, title, err := s.attackQuery(ph, quad)
				return q, title, true, err
			}
			return flexos.NewQuery(flexos.Fig6Space(quad)).Workload(ph), ph.Name(), true, nil
		}
		sc, ok := flexos.ScenarioByName(s.Scenario)
		if !ok {
			return nil, "", false, fmt.Errorf("unknown scenario %q (try -list)", s.Scenario)
		}
		if s.Ops > 0 {
			sc = sc.WithOps(s.Ops)
		}
		quad, ok := sc.Quad()
		if !ok {
			return nil, "", false, fmt.Errorf("scenario %q has no four-component space", sc.Name())
		}
		if attackAxes {
			q, title, err := s.attackQuery(sc, quad)
			return q, title, true, err
		}
		return flexos.NewQuery(flexos.Fig6Space(quad)).Workload(sc), sc.Name(), true, nil
	}

	measureRedis := func(c *flexos.ExploreConfig) (float64, error) {
		res, err := flexos.BenchmarkRedis(c.Spec(flexos.TCBLibs()), s.Requests)
		if err != nil {
			return 0, err
		}
		return res.ReqPerSec, nil
	}
	measureNginx := func(c *flexos.ExploreConfig) (float64, error) {
		res, err := flexos.BenchmarkNginx(c.Spec(flexos.TCBLibs()), s.Requests)
		if err != nil {
			return 0, err
		}
		return res.ReqPerSec, nil
	}
	switch s.App {
	case "redis":
		return flexos.NewQuery(flexos.Fig6Space(flexos.RedisComponents())).
			MeasureScalar(measureRedis).Namespace(fmt.Sprintf("redis/%d", s.Requests)), s.App, false, nil
	case "nginx":
		return flexos.NewQuery(flexos.Fig6Space(flexos.NginxComponents())).
			MeasureScalar(measureNginx).Namespace(fmt.Sprintf("nginx/%d", s.Requests)), s.App, false, nil
	case "cross":
		cfgs := flexos.CrossAppSpace(nil, flexos.RedisComponents(), flexos.NginxComponents())
		// Dispatch on the application the configuration contains; the
		// two sub-spaces are incomparable and explore independently.
		measure := func(c *flexos.ExploreConfig) (float64, error) {
			for _, comp := range c.Components() {
				switch comp {
				case flexos.LibRedis:
					return measureRedis(c)
				case flexos.LibNginx:
					return measureNginx(c)
				}
			}
			return 0, fmt.Errorf("config %d contains no known application", c.ID)
		}
		return flexos.NewQuery(cfgs).MeasureScalar(measure).
			Namespace(fmt.Sprintf("cross/%d", s.Requests)), s.App, false, nil
	}
	return nil, "", false, fmt.Errorf("unknown app %q", s.App)
}

// ParseBudgets turns repeated -budget values into constraints. A plain
// number bounds the default metric in its natural direction; the full
// syntax ("p99<=2.5") names its own metric and direction. No -budget
// at all keeps the historical default of 500000 on the chosen metric —
// except for survival, a probability, where the default floor is 0.5.
func ParseBudgets(budgets []string, metric flexos.Metric) ([]flexos.ExploreConstraint, error) {
	if len(budgets) == 0 {
		if metric == flexos.MetricSurvival {
			budgets = []string{"0.5"}
		} else {
			budgets = []string{"500000"}
		}
	}
	out := make([]flexos.ExploreConstraint, 0, len(budgets))
	for _, s := range budgets {
		if v, err := strconv.ParseFloat(s, 64); err == nil {
			out = append(out, flexos.ExploreConstraint{Metric: metric, Op: flexos.NaturalOp(metric), Bound: v})
			continue
		}
		c, err := flexos.ParseConstraint(s)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// ParseBudgetSpec parses the -measure-budget flag syntax: "N" caps the
// run at N fresh measurements with the default seed, "N@SEED" pins the
// sampling seed as well (e.g. "2000@7"). N must be a non-negative
// integer (0 disables the budget); SEED any int64. hasSeed reports
// whether the spec carried an explicit seed, so a separate -seed flag
// can fill the default without clobbering an explicit "@SEED".
func ParseBudgetSpec(s string) (budget int, seed int64, hasSeed bool, err error) {
	spec := strings.TrimSpace(s)
	num := spec
	if at := strings.IndexByte(spec, '@'); at >= 0 {
		num = spec[:at]
		seed, err = strconv.ParseInt(strings.TrimSpace(spec[at+1:]), 10, 64)
		if err != nil {
			return 0, 0, false, fmt.Errorf("measure-budget %q: bad seed: %v", s, err)
		}
		hasSeed = true
	}
	budget, err = strconv.Atoi(strings.TrimSpace(num))
	if err != nil {
		return 0, 0, false, fmt.Errorf("measure-budget %q: want \"N\" or \"N@SEED\": %v", s, err)
	}
	if budget < 0 {
		return 0, 0, false, fmt.Errorf("measure-budget %q: budget must be >= 0", s)
	}
	if budget == 0 {
		seed, hasSeed = 0, false // no budget: the seed is meaningless
	}
	return budget, seed, hasSeed, nil
}

// ValidateScalar rejects option combinations a scalar -app space
// cannot serve: the -app benchmarks measure only throughput, so a
// frontier over the latency/memory axes, a non-throughput ranking, or
// a constraint on an unmeasured dimension all need a -scenario run.
func ValidateScalar(scenarioMode bool, metric flexos.Metric, constraints []flexos.ExploreConstraint, pareto bool) error {
	if scenarioMode {
		return nil
	}
	if pareto {
		return fmt.Errorf("-pareto requires -scenario (only scenario workloads measure the memory axis)")
	}
	if metric != flexos.MetricThroughput {
		return fmt.Errorf("-metric %s requires -scenario (the -app benchmarks measure only throughput)", metric)
	}
	for _, c := range constraints {
		if c.Metric != flexos.MetricThroughput {
			return fmt.Errorf("constraint %s requires -scenario (the -app benchmarks measure only throughput)", c)
		}
	}
	return nil
}

// ConstraintList renders the ": c1, c2" suffix of the report line.
func ConstraintList(cs []flexos.ExploreConstraint) string {
	s := ""
	for i, c := range cs {
		if i == 0 {
			s = ": "
		} else {
			s += ", "
		}
		s += c.String()
	}
	return s
}

// PrintReport writes the deterministic exploration report: it depends
// only on the space, the constraints and the (deterministic) measured
// values — never on how many measurements were served from a cache —
// so a cold run, a warm rerun and a sharded-then-merged run all print
// byte-identical reports.
func PrintReport(w io.Writer, title string, res *flexos.ExploreResult, constraints []flexos.ExploreConstraint, scenarioMode, pareto, noFeasible bool) {
	if pareto {
		front := res.ParetoFront()
		fmt.Fprintf(w, "Pareto frontier (safety x throughput x memory): %d configurations\n", len(front))
		for _, i := range front {
			m := res.Measurements[i]
			fmt.Fprintf(w, "  - %-55s %s\n", m.Config.Label(), m.Metrics)
		}
	}
	fmt.Fprintf(w, "%s: explored %d configurations under %d constraint(s)%s\n",
		title, res.Total, len(constraints), ConstraintList(constraints))
	if noFeasible {
		fmt.Fprintln(w, "no configuration satisfies every constraint")
		return
	}
	fmt.Fprintf(w, "safest configurations satisfying every constraint: %d\n", len(res.Safest))
	for _, i := range res.Safest {
		m := res.Measurements[i]
		if scenarioMode {
			fmt.Fprintf(w, "  * %-55s %s\n", m.Config.Label(), m.Metrics)
		} else {
			fmt.Fprintf(w, "  * %-55s %9.1fk req/s\n", m.Config.Label(), m.Perf/1000)
		}
	}
}

// StreamLine renders one streamed measurement exactly as
// flexos-explore -stream prints it: the full metric vector for
// scenario workloads, just the throughput for scalar -app spaces
// (whose vectors are mostly zero). flexos-serve streams these same
// bytes, which is what makes a remote -stream run byte-identical to a
// local one.
func StreamLine(scenarioMode bool, cfg *flexos.ExploreConfig, m flexos.Metrics) string {
	if scenarioMode {
		return fmt.Sprintf("measured %-55s %s", cfg.Label(), m)
	}
	return fmt.Sprintf("measured %-55s %9.1fk req/s", cfg.Label(), m.Throughput/1000)
}

// RenderReport renders the deterministic report body a local
// flexos-explore run would print to stdout (the -v listing when
// verbose, then the report). flexos-serve responses carry exactly
// this string, so a -remote run's stdout is byte-identical to the
// local oracle's.
func RenderReport(title string, res *flexos.ExploreResult, constraints []flexos.ExploreConstraint, scenarioMode, pareto, verbose, noFeasible bool) string {
	var b strings.Builder
	if verbose {
		PrintAll(&b, res)
	}
	PrintReport(&b, title, res, constraints, scenarioMode, pareto, noFeasible)
	return b.String()
}

// RunStats is the serializable form of the run statistics that
// legally differ between cold, warm and coalesced runs — the part of
// an exploration outcome that is *not* covered by the byte-identity
// guarantee and therefore travels separately from the report.
type RunStats struct {
	Evaluated int `json:"evaluated"`
	MemoHits  int `json:"memo_hits"`
	Pruned    int `json:"pruned"`
	// Skipped counts configurations a budgeted or delta run decided
	// without a value (beyond the measurement budget, or already in
	// the store); always 0 for exhaustive runs.
	Skipped int    `json:"skipped,omitempty"`
	Shard   string `json:"shard,omitempty"`
}

// StatsOf extracts the run statistics from an exploration result.
func StatsOf(res *flexos.ExploreResult) RunStats {
	st := RunStats{Evaluated: res.Evaluated, MemoHits: res.MemoHits, Skipped: res.Skipped, Shard: res.Shard.String()}
	for i := range res.Measurements {
		if res.Measurements[i].Pruned {
			st.Pruned++
		}
	}
	return st
}

// Print writes the statistics line (see PrintStats).
func (st RunStats) Print(w io.Writer, prog string) {
	rate := 0.0
	if st.Evaluated+st.MemoHits > 0 {
		rate = 100 * float64(st.MemoHits) / float64(st.Evaluated+st.MemoHits)
	}
	shard := ""
	if st.Shard != "" {
		shard = " shard " + st.Shard
	}
	skipped := ""
	if st.Skipped > 0 {
		skipped = fmt.Sprintf(", skipped %d", st.Skipped)
	}
	fmt.Fprintf(w, "%s:%s evaluated %d, cache/memo hits %d, pruned %d%s (cache hit rate %.1f%%)\n",
		prog, shard, st.Evaluated, st.MemoHits, st.Pruned, skipped, rate)
}

// PrintStats writes the run statistics that legally differ between
// cold, warm and sharded runs: fresh measurements, cache/memo hits,
// pruned configurations, and the cache hit rate. flexos-explore sends
// it to stderr so stdout stays byte-identical across cache states;
// CI's warm-explore job parses the hit rate off it.
func PrintStats(w io.Writer, prog string, res *flexos.ExploreResult) {
	StatsOf(res).Print(w, prog)
}

// PrintAll lists every decided configuration by rank (the -v listing).
// Like PrintReport it is deterministic across cache states: a value's
// provenance (fresh run vs memo vs store) is a statistic, not a
// result, so the listing distinguishes only measured from pruned and
// the hit counts stay on PrintStats' stderr line.
func PrintAll(w io.Writer, res *flexos.ExploreResult) {
	sorted := make([]int, 0, len(res.Measurements))
	for i := range res.Measurements {
		sorted = append(sorted, i)
	}
	sort.Slice(sorted, func(a, b int) bool {
		if res.Measurements[sorted[a]].Perf != res.Measurements[sorted[b]].Perf {
			return res.Measurements[sorted[a]].Perf < res.Measurements[sorted[b]].Perf
		}
		return sorted[a] < sorted[b]
	})
	for _, i := range sorted {
		m := res.Measurements[i]
		state := "measured"
		if m.Pruned {
			state = "pruned"
		}
		fmt.Fprintf(w, "%-9s %12.1f  %s\n", state, m.Perf, m.Config.Label())
	}
	fmt.Fprintln(w, "---")
}

// BudgetFlags collects repeated -budget flag occurrences (flag.Value).
type BudgetFlags []string

func (b *BudgetFlags) String() string { return fmt.Sprint([]string(*b)) }

// Set appends one -budget occurrence.
func (b *BudgetFlags) Set(s string) error {
	*b = append(*b, s)
	return nil
}
