package cli

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"flexos"
)

// Request is the serializable form of one exploration request — the
// same choices the flexos-explore flags express, as a JSON document a
// flexos-serve daemon accepts over HTTP. flexos-explore builds one
// from its flags whether it runs locally or forwards with -remote, so
// the two paths cannot drift apart.
//
// The zero value normalizes to the CLI defaults: the redis -app space,
// the throughput metric, 200 requests per measurement, and the
// historical 500000 budget (ParseBudgets supplies it when Budgets is
// empty).
type Request struct {
	// App selects a scalar benchmark space (redis | nginx | cross);
	// Scenario, when non-empty, selects a workload of the multi-metric
	// scenario library instead.
	App      string `json:"app,omitempty"`
	Scenario string `json:"scenario,omitempty"`
	// Requests is the per-measurement request count for App spaces;
	// Ops overrides the scenario's default op count when > 0.
	Requests int `json:"requests,omitempty"`
	Ops      int `json:"ops,omitempty"`
	// Attack scores survival against an attack scenario ("rop-chain",
	// "addr-probe", "comp-leak", "combined") and expands the space
	// along the ASLR / control-flow-hardening axes; Profile selects
	// the machine profile ("x86", "riscv"); ASLR pins a randomization
	// level ("off", "16", "16+leak"). All three require Scenario, and
	// all three join the canonical key — requests differing only in
	// attack scenario, profile or ASLR level explore different spaces
	// and must not coalesce.
	Attack  string `json:"attack,omitempty"`
	Profile string `json:"profile,omitempty"`
	ASLR    string `json:"aslr,omitempty"`
	// Metric is the ranking metric, and the dimension plain-number
	// Budgets bound (empty: throughput).
	Metric string `json:"metric,omitempty"`
	// Budgets are the -budget constraint specs: plain bounds on Metric
	// or "metric>=bound" / "metric<=bound" forms.
	Budgets []string `json:"budgets,omitempty"`
	// Pareto adds the safety x throughput x memory frontier to the
	// report; Exhaustive disables monotonic pruning; Verbose prefixes
	// the report with the ranked listing of every configuration.
	Pareto     bool `json:"pareto,omitempty"`
	Exhaustive bool `json:"exhaustive,omitempty"`
	Verbose    bool `json:"verbose,omitempty"`
	// Stream asks the daemon for an NDJSON stream (one line per
	// measured configuration, mirroring Query.Stream order) instead of
	// a single complete response.
	Stream bool `json:"stream,omitempty"`
	// MeasureBudget caps the fresh measurements of the run and selects
	// budgeted guided search (0: exhaustive); Seed drives its sampling
	// order and is meaningless — normalized to 0 — without a budget.
	// Both join the canonical key: requests differing only in budget or
	// seed decide different configurations and must not coalesce.
	MeasureBudget int   `json:"measure_budget,omitempty"`
	Seed          int64 `json:"seed,omitempty"`
	// DeltaOnly re-measures only configurations absent from the
	// daemon's store, skipping the rest (delta re-exploration).
	// Incompatible with MeasureBudget.
	DeltaOnly bool `json:"delta_only,omitempty"`
	// Shard restricts the run to one deterministic slice of the space,
	// in the CLI "index/count" syntax.
	Shard string `json:"shard,omitempty"`
	// Workers is the engine worker count (<= 0: the server's default).
	// It never changes result bytes — requests differing only in
	// Workers coalesce onto one engine pass.
	Workers int `json:"workers,omitempty"`
	// TimeoutMs bounds how long this caller waits, in milliseconds
	// (0: no deadline). It cancels only the caller's subscription; a
	// coalesced run keeps serving its other subscribers.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// IncludeRecords asks the daemon to attach the run's partial-result
	// codec to the final response: one (memo key, metrics) Record per
	// valued configuration. A cluster coordinator sets it on the shard
	// sub-requests it dispatches, then replays the records into its own
	// memo before re-ranking. Like Workers it never changes report
	// bytes, so it is excluded from the canonical key — a sub-request
	// coalesces with an identical user request already in flight.
	IncludeRecords bool `json:"include_records,omitempty"`
}

// Wire guardrails for DecodeRequest: a serving daemon must bound the
// work one request can name. The local CLI paths do not apply them.
const (
	// MaxRequestBytes is the request-body cap flexos-serve enforces.
	MaxRequestBytes = 1 << 20
	maxRequests     = 1_000_000
	maxOps          = 10_000_000
	maxBudgets      = 16
)

// BuildInfo carries everything about a built Request that the
// response rendering needs beyond the Query itself.
type BuildInfo struct {
	// Title heads the report ("redis-get90", "cross[shard 1/3]", …).
	Title string
	// ScenarioMode is true when measurements carry full metric vectors.
	ScenarioMode bool
	// Metric is the resolved ranking metric; Constraints the parsed
	// budget conjunction, in request order (rendering order).
	Metric      flexos.Metric
	Constraints []flexos.ExploreConstraint
	// Prune echoes the derived pruning choice: on unless Exhaustive, or
	// Pareto without a measurement budget (a budgeted run prunes under
	// -pareto too — branch-and-bound is how it finds the frontier).
	Prune bool
	// Namespace is the query's composed memo namespace
	// (Query.MemoNamespace) — the prefix of every memo/store key the
	// run touches, and what RecordsOf keys the partial-result codec by.
	Namespace string
}

// Normalize fills CLI defaults in place so that equal requests encode
// equally: an empty selection becomes the redis app space at the
// default 200 requests, the metric name is made explicit, and
// senseless negatives are clamped. It is idempotent — DecodeRequest's
// decode → normalize → encode → decode round-trip is stable.
func (r *Request) Normalize() {
	if r.App == "" && r.Scenario == "" {
		r.App = "redis"
	}
	if r.Scenario != "" {
		r.App = ""
		r.Requests = 0
		// Canonicalize phase-schedule spellings ("a *1 + b" →
		// "a+b") so equal schedules encode — and coalesce — alike.
		// An unparsable spec is left untouched for Build to reject.
		if flexos.IsPhasedSpec(r.Scenario) {
			if ph, err := flexos.ParsePhased(r.Scenario); err == nil {
				r.Scenario = ph.Name()
			}
		}
	} else {
		r.Ops = 0
		if r.Requests <= 0 {
			r.Requests = 200
		}
		// The attack axes require a scenario; Build rejects them, so
		// normalization leaves them untouched for the error message.
	}
	// Canonicalize attack-axis spellings so equal requests encode — and
	// coalesce — alike: scenario aliases by case, "risc-v"/"rv64" ≡
	// "riscv" (and the default "x86" ≡ absent, which stamps nothing),
	// "0"/"none" ≡ "off". An explicit "off" is NOT dropped: under an
	// attack it pins the space to ASLR-off instead of sweeping the
	// ladder, a genuinely different space. Unparsable values are left
	// untouched for Build to reject.
	if r.Attack != "" {
		if att, ok := flexos.AttackByName(r.Attack); ok {
			r.Attack = att.Name()
		}
	}
	if r.Profile != "" {
		if canon, err := flexos.CanonicalProfile(r.Profile); err == nil {
			r.Profile = canon
		}
	}
	if r.ASLR != "" {
		if a, err := flexos.ParseASLR(r.ASLR); err == nil {
			r.ASLR = a.String()
		}
	}
	if r.Metric == "" {
		r.Metric = string(flexos.MetricThroughput)
	}
	if len(r.Budgets) == 0 {
		r.Budgets = nil // an empty list means the default budget; encode the two alike
	}
	if r.Workers < 0 {
		r.Workers = 0
	}
	if r.MeasureBudget < 0 {
		r.MeasureBudget = 0
	}
	if r.MeasureBudget == 0 {
		r.Seed = 0 // an unbudgeted run ignores the seed; encode the two alike
	}
	if r.Ops < 0 {
		r.Ops = 0
	}
	if r.TimeoutMs < 0 {
		r.TimeoutMs = 0
	}
}

// Build normalizes the request and assembles the flexos.Query it
// describes, mirroring exactly what the flexos-explore flag path
// does: selection, budget constraints, ranking, workers, derived
// pruning, shard (with the title suffix). It does not attach a memo
// or cache — the caller owns the caching tier.
func (r *Request) Build() (*flexos.Query, *BuildInfo, error) {
	r.Normalize()
	metric, err := flexos.ParseMetric(r.Metric)
	if err != nil {
		return nil, nil, err
	}
	constraints, err := ParseBudgets(r.Budgets, metric)
	if err != nil {
		return nil, nil, err
	}
	sel := Selection{App: r.App, Scenario: r.Scenario, Requests: r.Requests, Ops: r.Ops,
		Attack: r.Attack, Profile: r.Profile, ASLR: r.ASLR}
	q, title, scenarioMode, err := sel.Build()
	if err != nil {
		return nil, nil, err
	}
	if err := ValidateScalar(scenarioMode, metric, constraints, r.Pareto); err != nil {
		return nil, nil, err
	}
	if r.Attack == "" {
		if metric == flexos.MetricSurvival {
			return nil, nil, errors.New("metric survival requires an attack scenario (only attack runs score survival)")
		}
		for _, c := range constraints {
			if c.Metric == flexos.MetricSurvival {
				return nil, nil, fmt.Errorf("constraint %s requires an attack scenario (only attack runs score survival)", c)
			}
		}
	}
	if r.DeltaOnly && r.MeasureBudget > 0 {
		return nil, nil, errors.New("delta_only and measure_budget are mutually exclusive")
	}
	for _, c := range constraints {
		q.Constrain(c.Metric, c.Op, c.Bound)
	}
	// -pareto normally disables pruning so the frontier ranks the full
	// space; a budgeted run never measures the full space anyway, and
	// branch-and-bound is precisely what finds the frontier within
	// budget — so the budget wins the derivation.
	prune := !r.Exhaustive && (!r.Pareto || r.MeasureBudget > 0)
	q.RankBy(metric).Workers(r.Workers).Prune(prune)
	if r.MeasureBudget > 0 {
		q.MeasureBudget(r.MeasureBudget).Seed(r.Seed)
	}
	if r.DeltaOnly {
		q.DeltaOnly()
	}
	if r.Shard != "" {
		sh, err := flexos.ParseShard(r.Shard)
		if err != nil {
			return nil, nil, err
		}
		q.Shard(sh.Index, sh.Count)
		if s := sh.String(); s != "" {
			title = fmt.Sprintf("%s[shard %s]", title, s)
		}
	}
	return q, &BuildInfo{
		Title:        title,
		ScenarioMode: scenarioMode,
		Metric:       metric,
		Constraints:  constraints,
		Prune:        prune,
		Namespace:    q.MemoNamespace(),
	}, nil
}

// CanonicalKey is the request's coalescing identity: the canonical
// key of the query it builds (space hash ⊕ namespace ⊕ constraints ⊕
// prune ⊕ shard — see Query.CanonicalKey). Requests differing only in
// Workers, Verbose, Stream or TimeoutMs share a key, because none of
// those can change result bytes.
func (r Request) CanonicalKey() (string, error) {
	q, _, err := r.Build()
	if err != nil {
		return "", err
	}
	return q.CanonicalKey(), nil
}

// Encode renders the canonical JSON of the normalized request.
func (r Request) Encode() []byte {
	r.Normalize()
	b, err := json.Marshal(r)
	if err != nil {
		// Request has no unmarshalable field; keep the API infallible.
		panic(fmt.Sprintf("cli: encode request: %v", err))
	}
	return b
}

// DecodeRequest parses and fully validates one wire request: strict
// JSON (unknown fields and trailing garbage rejected), normalized
// defaults, serving guardrails on the work a request may name, and a
// complete Build so a request that decodes is a request that runs.
// Malformed input returns an error, never a panic, and
// decode → Encode → decode round-trips are stable.
func DecodeRequest(data []byte) (Request, error) {
	r, _, _, err := DecodeRequestQuery(data)
	return r, err
}

// DecodeRequestQuery is DecodeRequest returning the built query and
// its rendering info as well, so a serving hot path validates and
// assembles in one pass instead of building the space twice.
func DecodeRequestQuery(data []byte) (Request, *flexos.Query, *BuildInfo, error) {
	var r Request
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return Request{}, nil, nil, fmt.Errorf("cli: decode request: %w", err)
	}
	if dec.More() {
		return Request{}, nil, nil, errors.New("cli: decode request: trailing data after the JSON document")
	}
	r.Normalize()
	if r.Requests > maxRequests {
		return Request{}, nil, nil, fmt.Errorf("cli: decode request: requests %d exceeds the serving cap %d", r.Requests, maxRequests)
	}
	if r.Ops > maxOps {
		return Request{}, nil, nil, fmt.Errorf("cli: decode request: ops %d exceeds the serving cap %d", r.Ops, maxOps)
	}
	if len(r.Budgets) > maxBudgets {
		return Request{}, nil, nil, fmt.Errorf("cli: decode request: %d budgets exceeds the serving cap %d", len(r.Budgets), maxBudgets)
	}
	q, info, err := r.Build()
	if err != nil {
		return Request{}, nil, nil, fmt.Errorf("cli: decode request: %w", err)
	}
	return r, q, info, nil
}

// Response is one wire message of the serving protocol. A complete
// response is a single Response document carrying Key, Report and
// Stats (or Error). A streaming response is NDJSON: one Response per
// line — each measured configuration as {"line": …} in Query.Stream
// order, then a final document carrying Report and Stats (or Error).
type Response struct {
	// Key echoes the request's canonical (coalescing) key.
	Key string `json:"key,omitempty"`
	// Line is one streamed measurement, rendered exactly as a local
	// flexos-explore -stream run prints it.
	Line string `json:"line,omitempty"`
	// Report is the deterministic report body — byte-identical to the
	// local oracle's stdout for the same request.
	Report string `json:"report,omitempty"`
	// Stats carries the run statistics (legally differ between cold,
	// warm and coalesced runs); travels outside Report so byte
	// comparison of reports stays meaningful.
	Stats *RunStats `json:"stats,omitempty"`
	// Records is the run's partial-result codec, attached to the final
	// response when the request set IncludeRecords: one (memo key,
	// metrics) pair per valued configuration, in enumeration order.
	Records []Record `json:"records,omitempty"`
	// Error is set instead of Report when the exploration failed.
	Error string `json:"error,omitempty"`
}

// Record is one entry of the partial-result codec: a measurement
// addressed by its full memo/store key (namespace NUL-joined with the
// configuration's canonical identity — see flexos.MemoKey), so any
// node exploring the same space can replay it into its own memo or
// store. It is what a worker daemon returns to a coordinator and what
// the store-sync endpoint (/v1/store/pull) ships between nodes.
type Record struct {
	Key     string         `json:"key"`
	Metrics flexos.Metrics `json:"metrics"`
}

// RecordsOf renders a finished run into the partial-result codec: one
// Record per valued measurement, keyed under the given memo namespace
// (BuildInfo.Namespace), deduplicated by key in enumeration order —
// canonical twins collapse to one record, pruned or skipped
// configurations ship none. Deterministic: the same result always
// renders the same records in the same order.
func RecordsOf(namespace string, res *flexos.ExploreResult) []Record {
	if res == nil {
		return nil
	}
	seen := make(map[string]struct{}, len(res.Measurements))
	recs := make([]Record, 0, len(res.Measurements))
	for i := range res.Measurements {
		m := &res.Measurements[i]
		if !m.Evaluated {
			continue
		}
		key := flexos.MemoKey(namespace, m.Config)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		recs = append(recs, Record{Key: key, Metrics: m.Metrics})
	}
	return recs
}

// PullPage is one page of the store-sync protocol
// (GET /v1/store/pull?since=N&gen=G): the records appended to the
// serving node's sync log after cursor position N, a new cursor, and
// whether more pages follow. Gen identifies the log incarnation — a
// restarted daemon rebuilds its log in a different order, so a stale
// generation resets the puller to cursor 0 rather than shipping a
// misaligned suffix.
type PullPage struct {
	Gen     string   `json:"gen"`
	Cursor  int      `json:"cursor"`
	More    bool     `json:"more,omitempty"`
	Records []Record `json:"records,omitempty"`
}

// JoinRequest is the body of POST /v1/cluster/join: a worker daemon
// announcing the base URL the coordinator should dispatch to.
type JoinRequest struct {
	URL string `json:"url"`
}
