package cli

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fastRetry keeps the regression tests quick: four tries, ~1ms apart.
func fastRetry() *RetryPolicy {
	return &RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
}

// flakyExplore answers ExplorePath with `failures` transient errors
// before succeeding, counting every attempt it sees.
type flakyExplore struct {
	attempts atomic.Int64
	failures int64
	status   int // the transient status to fail with
	respond  func(w http.ResponseWriter, r *http.Request)
}

func (f *flakyExplore) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := f.attempts.Add(1)
	if n <= f.failures {
		http.Error(w, "transient", f.status)
		return
	}
	f.respond(w, r)
}

func completeResponse(report string) func(w http.ResponseWriter, r *http.Request) {
	return func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(Response{Key: "k", Report: report})
	}
}

func TestClientRetriesTransient5xx(t *testing.T) {
	f := &flakyExplore{failures: 3, status: http.StatusServiceUnavailable, respond: completeResponse("ok\n")}
	ts := httptest.NewServer(f)
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, Retry: fastRetry()}
	resp, err := c.Explore(context.Background(), Request{App: "redis"})
	if err != nil {
		t.Fatalf("explore after transient failures: %v", err)
	}
	if resp.Report != "ok\n" {
		t.Fatalf("report %q", resp.Report)
	}
	if got := f.attempts.Load(); got != 4 {
		t.Fatalf("attempts = %d, want 4 (3 failures + 1 success)", got)
	}
}

func TestClientRetryGivesUpAfterMaxAttempts(t *testing.T) {
	f := &flakyExplore{failures: 1 << 30, status: http.StatusInternalServerError, respond: completeResponse("never\n")}
	ts := httptest.NewServer(f)
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, Retry: fastRetry()}
	_, err := c.Explore(context.Background(), Request{App: "redis"})
	if err == nil || !strings.Contains(err.Error(), "HTTP 500") {
		t.Fatalf("want HTTP 500 error after exhausting retries, got %v", err)
	}
	if got := f.attempts.Load(); got != 4 {
		t.Fatalf("attempts = %d, want exactly MaxAttempts", got)
	}
}

func TestClientDoesNotRetry4xx(t *testing.T) {
	f := &flakyExplore{failures: 1 << 30, status: http.StatusBadRequest, respond: completeResponse("never\n")}
	ts := httptest.NewServer(f)
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, Retry: fastRetry()}
	_, err := c.Explore(context.Background(), Request{App: "redis"})
	if err == nil || !strings.Contains(err.Error(), "HTTP 400") {
		t.Fatalf("want HTTP 400 error, got %v", err)
	}
	if got := f.attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (4xx is deterministic, never retried)", got)
	}
}

func TestClientRetriesDialFailure(t *testing.T) {
	// A server that is stopped before the request: the first attempts
	// dial a dead address. Bind, grab the address, close, then point a
	// fresh server at nothing — simplest portable "daemon not up yet"
	// is an address with no listener.
	ts := httptest.NewServer(http.NotFoundHandler())
	addr := ts.URL
	ts.Close()

	c := &Client{BaseURL: addr, Retry: fastRetry()}
	start := time.Now()
	_, err := c.Explore(context.Background(), Request{App: "redis"})
	if err == nil {
		t.Fatal("want dial error against a dead daemon")
	}
	// Three backoffs happened (bounded — the whole thing stays fast).
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("retries took %v; backoff unbounded?", d)
	}
}

func TestClientZeroPolicySingleAttempt(t *testing.T) {
	f := &flakyExplore{failures: 1, status: http.StatusServiceUnavailable, respond: completeResponse("ok\n")}
	ts := httptest.NewServer(f)
	defer ts.Close()

	c := &Client{BaseURL: ts.URL} // no Retry: one attempt, back-compat
	_, err := c.Explore(context.Background(), Request{App: "redis"})
	if err == nil || !strings.Contains(err.Error(), "HTTP 503") {
		t.Fatalf("want single-attempt 503 failure, got %v", err)
	}
	if got := f.attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 without a policy", got)
	}
}

// TestClientStreamResumesAfterMidStreamCut severs a streamed response
// after two lines; the retried stream replays from the start and the
// client must deliver every line exactly once, in order.
func TestClientStreamResumesAfterMidStreamCut(t *testing.T) {
	lines := []string{"line-0", "line-1", "line-2", "line-3"}
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := attempts.Add(1)
		fl := w.(http.Flusher)
		for i, l := range lines {
			if n == 1 && i == 2 {
				// Sever the connection mid-stream: the client sees an
				// unexpected EOF after two delivered lines.
				hj := w.(http.Hijacker)
				conn, _, _ := hj.Hijack()
				conn.Close()
				return
			}
			json.NewEncoder(w).Encode(Response{Line: l})
			fl.Flush()
		}
		json.NewEncoder(w).Encode(Response{Key: "k", Report: "done\n"})
	}))
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, Retry: fastRetry()}
	var got []string
	resp, err := c.ExploreStream(context.Background(), Request{App: "redis"}, func(l string) { got = append(got, l) })
	if err != nil {
		t.Fatalf("stream with mid-stream cut: %v", err)
	}
	if resp.Report != "done\n" {
		t.Fatalf("final report %q", resp.Report)
	}
	if want := strings.Join(lines, ","); strings.Join(got, ",") != want {
		t.Fatalf("delivered lines %v, want %v (exactly once, in order)", got, lines)
	}
	if attempts.Load() != 2 {
		t.Fatalf("attempts = %d, want 2", attempts.Load())
	}
}

// TestClientStreamDoesNotRetryServerError: an in-band error event is
// the daemon's deterministic verdict, not a transport failure.
func TestClientStreamDoesNotRetryServerError(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		attempts.Add(1)
		json.NewEncoder(w).Encode(Response{Error: "exploration failed"})
	}))
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, Retry: fastRetry()}
	_, err := c.ExploreStream(context.Background(), Request{App: "redis"}, nil)
	if err == nil || !strings.Contains(err.Error(), "exploration failed") {
		t.Fatalf("want the daemon's error, got %v", err)
	}
	if attempts.Load() != 1 {
		t.Fatalf("attempts = %d, want 1", attempts.Load())
	}
}

func TestRetryBackoffBoundedAndJittered(t *testing.T) {
	p := &RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
	for n := 0; n < 30; n++ {
		d := p.backoff(n)
		if d < 5*time.Millisecond || d > 80*time.Millisecond {
			t.Fatalf("backoff(%d) = %v outside [base/2, max]", n, d)
		}
	}
	// Deep attempts saturate at MaxDelay (no overflow back to tiny).
	for n := 20; n < 64; n += 7 {
		if d := p.backoff(n); d < 40*time.Millisecond {
			t.Fatalf("backoff(%d) = %v; saturation broken", n, d)
		}
	}
}

func TestClientPullAndJoin(t *testing.T) {
	var joined atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case JoinPath:
			var jr JoinRequest
			json.NewDecoder(r.Body).Decode(&jr)
			joined.Store(jr.URL)
			fmt.Fprintln(w, "ok")
		case PullPath:
			if r.URL.Query().Get("gen") != "g1" {
				json.NewEncoder(w).Encode(PullPage{Gen: "g1", Cursor: 1, More: true,
					Records: []Record{{Key: "ns\x00a"}}})
				return
			}
			json.NewEncoder(w).Encode(PullPage{Gen: "g1", Cursor: 2,
				Records: []Record{{Key: "ns\x00b"}}})
		default:
			http.NotFound(w, r)
		}
	}))
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, Retry: fastRetry()}
	ctx := context.Background()
	if err := c.Join(ctx, "http://worker:1"); err != nil {
		t.Fatal(err)
	}
	if joined.Load() != "http://worker:1" {
		t.Fatalf("join registered %v", joined.Load())
	}
	p1, err := c.Pull(ctx, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Gen != "g1" || !p1.More || len(p1.Records) != 1 || p1.Records[0].Key != "ns\x00a" {
		t.Fatalf("first page %+v", p1)
	}
	p2, err := c.Pull(ctx, p1.Gen, p1.Cursor)
	if err != nil {
		t.Fatal(err)
	}
	if p2.More || p2.Cursor != 2 || len(p2.Records) != 1 || p2.Records[0].Key != "ns\x00b" {
		t.Fatalf("second page %+v", p2)
	}
}

// TestClientHealthzSingleShot: Healthz is a failure detector's probe —
// it reports the first answer and never retries, even with a retry
// policy configured (retries would blur the strike signal).
func TestClientHealthzSingleShot(t *testing.T) {
	var attempts atomic.Int64
	healthy := atomic.Bool{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		if !healthy.Load() {
			http.Error(w, "sick", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, `{"status":"ok"}`)
	}))
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, Retry: fastRetry()}
	if err := c.Healthz(context.Background()); err == nil {
		t.Fatal("healthz reported a sick daemon healthy")
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("healthz probed %d times; must be single-shot", got)
	}
	healthy.Store(true)
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
}
