package cli

import (
	"bytes"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"flexos"
)

func TestRequestEncodeDecodeRoundTrip(t *testing.T) {
	reqs := []Request{
		{},
		{App: "redis"},
		{App: "nginx", Requests: 120, Budgets: []string{"400000"}},
		{App: "cross", Shard: "1/3", Workers: 8, Verbose: true},
		{Scenario: "redis-get90", Ops: 100},
		{Scenario: "redis-pipe8", Budgets: []string{"throughput>=200000", "p99<=40"}, Stream: true},
		{Scenario: "nginx-keep75", Metric: "p99", Budgets: []string{"3"}, TimeoutMs: 5000},
		{Scenario: "redis-get50", Pareto: true, Exhaustive: true},
		{Scenario: "redis-get90*3+redis-get50", Ops: 960},
		{Scenario: "nginx-static+nginx-keepalive*2", Stream: true},
	}
	for _, r := range reqs {
		enc := r.Encode()
		got, err := DecodeRequest(enc)
		if err != nil {
			t.Fatalf("decode(encode(%+v)): %v", r, err)
		}
		want := r
		want.Normalize()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip changed the request:\n got %+v\nwant %+v", got, want)
		}
		if again := got.Encode(); !bytes.Equal(again, enc) {
			t.Errorf("encode not stable:\n 1st %s\n 2nd %s", enc, again)
		}
	}
}

func TestDecodeRequestRejects(t *testing.T) {
	for _, tc := range []struct{ name, body string }{
		{"empty", ""},
		{"not json", "hello"},
		{"array", `[1,2]`},
		{"unknown field", `{"bogus":1}`},
		{"trailing garbage", `{"app":"redis"} {}`},
		{"unknown app", `{"app":"plan9"}`},
		{"unknown scenario", `{"scenario":"nope"}`},
		{"phased unknown phase", `{"scenario":"redis-get90+nope"}`},
		{"phased mixed apps", `{"scenario":"redis-get90+nginx-static"}`},
		{"phased bad weight", `{"scenario":"redis-get90*0"}`},
		{"bad metric", `{"metric":"zzz"}`},
		{"bad budget", `{"budgets":["p99<="]}`},
		{"bad shard syntax", `{"shard":"abc"}`},
		{"shard out of range", `{"shard":"9/4"}`},
		{"pareto needs scenario", `{"app":"redis","pareto":true}`},
		{"metric needs scenario", `{"app":"redis","metric":"p99"}`},
		{"requests cap", `{"app":"redis","requests":2000000}`},
		{"ops cap", `{"scenario":"redis-get90","ops":99999999}`},
		{"budgets cap", `{"budgets":["1","2","3","4","5","6","7","8","9","10","11","12","13","14","15","16","17"]}`},
		{"wrong type", `{"workers":"four"}`},
	} {
		if _, err := DecodeRequest([]byte(tc.body)); err == nil {
			t.Errorf("%s: decoded without error", tc.name)
		}
	}
}

// TestCanonicalKeyInvariants pins the coalescing identity: what must
// and must not move the key. Requests that only differ in rendering
// or scheduling knobs (workers, verbose, stream, timeout, budget
// spelling and order, pareto-vs-exhaustive) share one engine pass;
// anything that can change result bytes gets its own.
func TestCanonicalKeyInvariants(t *testing.T) {
	key := func(r Request) string {
		t.Helper()
		k, err := r.CanonicalKey()
		if err != nil {
			t.Fatalf("key(%+v): %v", r, err)
		}
		return k
	}
	base := Request{Scenario: "redis-get90"}
	same := []Request{
		{Scenario: "redis-get90", Workers: 1},
		{Scenario: "redis-get90", Workers: 8},
		{Scenario: "redis-get90", Verbose: true},
		{Scenario: "redis-get90", Stream: true},
		{Scenario: "redis-get90", TimeoutMs: 5000},
		{Scenario: "redis-get90", Budgets: []string{"500000"}},             // the implicit default, spelled out
		{Scenario: "redis-get90", Budgets: []string{"throughput>=500000"}}, // full spelling
		{Scenario: "redis-get90", Seed: 9},                                 // without a budget the seed is dead weight
	}
	// Phase-schedule spellings canonicalize before keying: explicit
	// "*1" weights and whitespace never split a flight.
	if key(Request{Scenario: "redis-get90*2+redis-get50"}) !=
		key(Request{Scenario: " redis-get90 * 2 + redis-get50 * 1 "}) {
		t.Error("phased spelling changed the key; schedules canonicalize before coalescing")
	}
	for _, r := range same {
		if key(r) != key(base) {
			t.Errorf("%+v: key differs from base; these must coalesce", r)
		}
	}
	if key(Request{Scenario: "redis-get90", Budgets: []string{"p99<=3", "throughput>=100000"}}) !=
		key(Request{Scenario: "redis-get90", Budgets: []string{"throughput>=100000", "p99<=3"}}) {
		t.Error("constraint order changed the key; the conjunction is order-free")
	}
	if key(Request{Scenario: "redis-get90", Pareto: true}) != key(Request{Scenario: "redis-get90", Exhaustive: true}) {
		t.Error("pareto and exhaustive both disable pruning and nothing else; they must share a pass")
	}
	distinct := []Request{
		{Scenario: "redis-get100"},                            // different workload
		{Scenario: "redis-get90", Ops: 100},                   // different op count (memo namespace)
		{Scenario: "redis-get90", Budgets: []string{"12345"}}, // different bound
		{Scenario: "redis-get90", Metric: "p99", Budgets: []string{"p99<=3"}},
		{Scenario: "redis-get90", Exhaustive: true}, // pruning changes decided sets
		{Scenario: "redis-get90", Shard: "0/2"},
		{Scenario: "redis-get90", MeasureBudget: 500},          // a budgeted run decides less
		{Scenario: "redis-get90", MeasureBudget: 200},          // ... and a different cap, differently
		{Scenario: "redis-get90", MeasureBudget: 500, Seed: 1}, // the seed picks the sample
		{Scenario: "redis-get90", MeasureBudget: 500, Seed: 2},
		{Scenario: "redis-get90", DeltaOnly: true}, // a delta run reports only the store-absent slice
		{Scenario: "redis-get90+redis-get50"},      // a schedule is not its first phase
		{Scenario: "redis-get50+redis-get90"},      // ... and a schedule is a timeline, not a set
		{Scenario: "redis-get90*2+redis-get50"},    // ... and weights scale the phases
		{App: "redis"},
	}
	seen := map[string]string{key(base): "base"}
	for i, r := range distinct {
		k := key(r)
		if prev, dup := seen[k]; dup {
			t.Errorf("%+v collides with %s; these must not coalesce", r, prev)
		}
		seen[k] = fmt.Sprintf("distinct[%d]", i)
	}
	// Scheduling knobs still coalesce on a budgeted request: the
	// (budget, seed) pair pins result bytes at every worker count.
	if key(Request{Scenario: "redis-get90", MeasureBudget: 500, Seed: 1}) !=
		key(Request{Scenario: "redis-get90", MeasureBudget: 500, Seed: 1, Workers: 8, Verbose: true}) {
		t.Error("workers/verbose split a budgeted flight; byte-identity across worker counts makes them coalescible")
	}
}

// TestAttackAxisKeyInvariants extends the coalescing identity to the
// attack axes: requests differing only in attack scenario, machine
// profile or pinned ASLR level describe different spaces or scorings
// and must never coalesce, while presentation and scheduling knobs —
// and alias spellings of the same axis value — still do.
func TestAttackAxisKeyInvariants(t *testing.T) {
	key := func(r Request) string {
		t.Helper()
		k, err := r.CanonicalKey()
		if err != nil {
			t.Fatalf("key(%+v): %v", r, err)
		}
		return k
	}
	base := Request{Scenario: "redis-get90", Attack: "rop-chain"}
	same := []Request{
		{Scenario: "redis-get90", Attack: " ROP-Chain "},           // scenario names canonicalize
		{Scenario: "redis-get90", Attack: "rop-chain", Workers: 8}, // scheduling knob
		{Scenario: "redis-get90", Attack: "rop-chain", Verbose: true},
		{Scenario: "redis-get90", Attack: "rop-chain", Stream: true},
		{Scenario: "redis-get90", Attack: "rop-chain", Profile: "x86"},  // the default profile is absence
		{Scenario: "redis-get90", Attack: "rop-chain", Profile: "xeon"}, // ... under any alias
	}
	for _, r := range same {
		if key(r) != key(base) {
			t.Errorf("%+v: key differs from base; these must coalesce", r)
		}
	}
	if key(Request{Scenario: "redis-get90", Attack: "combined", Profile: "risc-v"}) !=
		key(Request{Scenario: "redis-get90", Attack: "combined", Profile: "rv64"}) {
		t.Error("profile aliases split a flight; they canonicalize before keying")
	}
	if key(Request{Scenario: "redis-get90", Attack: "combined", ASLR: "none"}) !=
		key(Request{Scenario: "redis-get90", Attack: "combined", ASLR: "off"}) {
		t.Error("aslr aliases split a flight; they canonicalize before keying")
	}
	distinct := []Request{
		{Scenario: "redis-get90"},                       // the plain performance run
		{Scenario: "redis-get90", Attack: "addr-probe"}, // a different attacker
		{Scenario: "redis-get90", Attack: "comp-leak"},
		{Scenario: "redis-get90", Attack: "combined"},
		{Scenario: "redis-get90", Attack: "rop-chain", Profile: "riscv"}, // a different machine
		{Scenario: "redis-get90", Attack: "rop-chain", ASLR: "off"},      // pinned off != sweeping the ladder
		{Scenario: "redis-get90", Attack: "rop-chain", ASLR: "16"},       // ... and each pin differently
		{Scenario: "redis-get90", Attack: "rop-chain", ASLR: "16+leak"},
		{Scenario: "redis-get90", Attack: "combined", Profile: "riscv", ASLR: "16+leak"},
		{Scenario: "redis-get90", Profile: "riscv"},             // profile-stamped, unattacked run
		{Scenario: "redis-get90", Profile: "riscv", ASLR: "16"}, // stamped ASLR joins the key too
		{Scenario: "redis-get50", Attack: "rop-chain"},          // the workload still matters
	}
	seen := map[string]string{key(base): "base"}
	for i, r := range distinct {
		k := key(r)
		if prev, dup := seen[k]; dup {
			t.Errorf("%+v collides with %s; these must not coalesce", r, prev)
		}
		seen[k] = fmt.Sprintf("distinct[%d]", i)
	}
	// Survival metrics and constraints are attack-only: without an
	// attack scenario there is no survival score to rank or bound.
	for _, r := range []Request{
		{Scenario: "redis-get90", Metric: "survival"},
		{Scenario: "redis-get90", Budgets: []string{"survival>=0.5"}},
	} {
		if _, err := r.CanonicalKey(); err == nil {
			t.Errorf("%+v: survival without -attack must be rejected", r)
		}
	}
	if _, err := (Request{Scenario: "redis-get90", Attack: "combined",
		Metric: "survival", Budgets: []string{"survival>=0.5"}}).CanonicalKey(); err != nil {
		t.Errorf("survival metric under an attack scenario must build: %v", err)
	}
}

// TestQueryRequestRoundTrip closes the loop between the builder and
// the wire form: a Request built into a Query yields the same
// canonical key after an encode/decode round trip, so a daemon and a
// local CLI computing keys independently always agree.
func TestQueryRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{App: "cross", Shard: "2/4", Budgets: []string{"300000"}},
		{Scenario: "nginx-static", Exhaustive: true},
		{Scenario: "redis-pipe8", Budgets: []string{"mem<=400000", "throughput>=100000"}},
	}
	for _, r := range reqs {
		q, _, err := r.Build()
		if err != nil {
			t.Fatal(err)
		}
		rt, err := DecodeRequest(r.Encode())
		if err != nil {
			t.Fatal(err)
		}
		q2, _, err := rt.Build()
		if err != nil {
			t.Fatal(err)
		}
		if q.CanonicalKey() != q2.CanonicalKey() {
			t.Errorf("%+v: canonical key unstable across the wire", r)
		}
		if q.SpaceHash() != q2.SpaceHash() {
			t.Errorf("%+v: space hash unstable across the wire", r)
		}
	}
}

// configDerivedSeeds derives one request per shipped configs/*.yaml:
// the file's application prefix selects the space, its flavor the
// request shape — the corpus the fuzzer mutates from.
func configDerivedSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	files, err := filepath.Glob("../../configs/*.yaml")
	if err != nil || len(files) == 0 {
		tb.Fatalf("no config seeds found: %v", err)
	}
	var seeds [][]byte
	for _, f := range files {
		app, _, _ := strings.Cut(filepath.Base(f), "-")
		var r Request
		switch app {
		case "redis":
			r = Request{App: "redis", Budgets: []string{"500000"}}
		case "nginx":
			r = Request{App: "nginx", Budgets: []string{"400000"}, Verbose: true}
		case "iperf":
			r = Request{Scenario: "iperf-stream4", Budgets: []string{"throughput>=1"}}
		case "sqlite":
			// SQLite scenarios are bench-only (no Fig6 space): seed the
			// nearest servable shape, a memory-budgeted scenario run.
			r = Request{Scenario: "redis-get90", Metric: "mem", Budgets: []string{"mem<=400000"}}
		default:
			r = Request{}
		}
		seeds = append(seeds, r.Encode())
	}
	return seeds
}

// FuzzDecodeRequest asserts the codec's safety contract: arbitrary
// bodies never panic, anything that decodes re-encodes canonically,
// and decode→encode→decode is a fixpoint.
func FuzzDecodeRequest(f *testing.F) {
	for _, seed := range configDerivedSeeds(f) {
		f.Add(seed)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"scenario":"redis-pipe8","budgets":["throughput>=200000","p99<=40"],"stream":true,"workers":8}`))
	f.Add([]byte(`{"app":"cross","shard":"1/3","timeout_ms":1000}`))
	f.Add([]byte(`{"scenario":"redis-get90*3+redis-get50","ops":960}`))
	f.Add([]byte(`{"app":"redis","requests":-5,"metric":""}`))
	f.Add([]byte(`[{"app":"redis"}]`))
	f.Add([]byte(`{"budgets":[{}]}`))
	f.Add([]byte(`{"scenario":"redis-get90","attack":"combined","profile":"riscv","aslr":"16+leak"}`))
	f.Add([]byte(`{"scenario":"redis-get90","attack":"ROP-Chain","budgets":["survival>=0.5"]}`))
	f.Add([]byte(`{"scenario":"redis-get90","profile":"xeon","aslr":"off"}`))
	f.Add([]byte(`{"attack":"rop-chain"}`))
	f.Add([]byte(`{"scenario":"redis-get90","aslr":"99+leak"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRequest(data)
		if err != nil {
			return
		}
		enc := r.Encode()
		r2, err := DecodeRequest(enc)
		if err != nil {
			t.Fatalf("canonical encoding failed to decode: %v\ninput: %q\nencoded: %s", err, data, enc)
		}
		if again := r2.Encode(); !bytes.Equal(again, enc) {
			t.Fatalf("encode not a fixpoint:\n 1st %s\n 2nd %s", enc, again)
		}
		if !reflect.DeepEqual(r, r2) {
			t.Fatalf("round trip changed the request:\n got %+v\nwant %+v", r2, r)
		}
		// The coalescing key must be computable for anything that
		// decodes, and stable across the round trip.
		k1, err1 := r.CanonicalKey()
		k2, err2 := r2.CanonicalKey()
		if err1 != nil || err2 != nil || k1 != k2 {
			t.Fatalf("canonical key unstable: %q (%v) vs %q (%v)", k1, err1, k2, err2)
		}
	})
}

// TestStreamLineMatchesExploreOutput pins the shared line renderer to
// the historical flexos-explore -stream format.
func TestStreamLineMatchesExploreOutput(t *testing.T) {
	cfgs := flexos.Fig6Space(flexos.RedisComponents())
	line := StreamLine(false, cfgs[0], flexos.Metrics{Throughput: 123456})
	if !strings.HasPrefix(line, "measured ") || !strings.HasSuffix(line, "k req/s") {
		t.Errorf("scalar line format drifted: %q", line)
	}
	vec := flexos.Metrics{Throughput: 1000, P50us: 1, P99us: 2, MaxUs: 3, PeakMemBytes: 4, BootCycles: 5}
	line = StreamLine(true, cfgs[0], vec)
	if !strings.Contains(line, vec.String()) {
		t.Errorf("scenario line %q does not embed the vector %q", line, vec)
	}
}
