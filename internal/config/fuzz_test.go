package config

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParseConfig fuzzes the configuration-file parser, seeded with the
// five shipped configs/*.yaml examples plus adversarial shapes. The
// parser must never panic or hang: any input either parses into a
// Config that validates and survives a Render/Parse round trip, or
// returns an error.
func FuzzParseConfig(f *testing.F) {
	// Seed with the real example files.
	dir := filepath.Join("..", "..", "configs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatalf("reading seed corpus %s: %v", dir, err)
	}
	seeded := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".yaml" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
		seeded++
	}
	if seeded < 5 {
		f.Fatalf("only %d yaml seeds in %s, want the 5 shipped examples", seeded, dir)
	}

	// Adversarial hand seeds: odd indentation, dashes, truncations,
	// tabs, comments, CRLF, unicode.
	for _, s := range []string{
		"",
		"compartments:",
		"compartments:\n- :\n",
		"compartments:\n-\n",
		"compartments:\n- c1:\n    mechanism\n",
		"compartments:\n- c1:\n\tmechanism: mpk\n",
		"compartments:\r\n- c1:\r\n    default: true\r\n",
		"libraries:\n- a\n",
		"libraries:\n- a: b: c\n",
		"gate:\nsharing:\n",
		"gate: full\ngate: light\n",
		"compartments:\n- c1:\n    hardening: [\n",
		"compartments:\n- c1:\n    hardening: ]\n",
		"compartments:\n- c1:\n    hardening: [,,]\n",
		"# only a comment\n",
		// Attack-axis fields: valid shapes, truncations and junk values.
		// Parse accepts the lines structurally; Validate vets the values,
		// and canonical pre-attack renders must never grow these lines.
		"aslr: 16+leak\nprofile: riscv\n",
		"compartments:\n- c1:\n    mechanism: mpk\n    hardening: [cfi, shadowstack]\naslr: off\n",
		"aslr:\n",
		"aslr: +leak\n",
		"aslr: 99+leak\n",
		"aslr: 16+leak+leak\n",
		"profile:\n",
		"profile: riscv\nprofile: x86\n",
		"profile: z80\n",
		"compartments:\n- c1:\n    hardening: [shadow-stack]\n",
		"compartments:\n- ünïcödé:\n    mechanism: mpk\nlibraries:\n- lib: ünïcödé\n",
		"compartments:\n  - c1:\n      mechanism: mpk\nlibraries:\n  - l: c1\n",
	} {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, input string) {
		cfg, err := Parse(input)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		// Accepted inputs must satisfy the validator's invariants...
		if err := Validate(cfg); err != nil {
			t.Fatalf("Parse accepted input that fails Validate: %v\ninput: %q", err, input)
		}
		// ...and survive a render/re-parse round trip.
		rendered := Render(cfg)
		cfg2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parsing rendered config failed: %v\nrendered: %q\ninput: %q", err, rendered, input)
		}
		if len(cfg2.Compartments) != len(cfg.Compartments) || len(cfg2.Libraries) != len(cfg.Libraries) {
			t.Fatalf("round trip changed shape: %d/%d compartments, %d/%d libraries\ninput: %q",
				len(cfg.Compartments), len(cfg2.Compartments),
				len(cfg.Libraries), len(cfg2.Libraries), input)
		}
	})
}
