// Package config parses FlexOS build-time configuration files — the
// YAML-subset format shown in §3 of the paper:
//
//	compartments:
//	- comp1:
//	    mechanism: intel-mpk
//	    default: true
//	- comp2:
//	    mechanism: intel-mpk
//	    hardening: [cfi, asan]
//	libraries:
//	- libredis: comp1
//	- libopenjpg: comp2
//	- lwip: comp2
//
// Optional top-level keys extend the paper's example with the knobs the
// evaluation varies: "gate: light|full" (MPK gate flavor, §4.1),
// "sharing: dss|heap|stack" (data sharing strategy, §4.1),
// "aslr: off|N|N+leak" (layout-randomization entropy, optionally
// leak-resistant — see internal/isolation) and "profile: x86|riscv"
// (machine profile — see internal/machine).
//
// The parser is deliberately small and hand-rolled: the repository uses
// only the Go standard library, and the format needs exactly the shapes
// above.
package config

import (
	"fmt"
	"strings"

	"flexos/internal/isolation"
	"flexos/internal/machine"
)

// Compartment is one compartment declaration.
type Compartment struct {
	// Name is the compartment identifier (e.g. "comp1").
	Name string
	// Mechanism is the isolation backend name ("intel-mpk", "vm-ept",
	// "none", "cheri"). All compartments of an image must agree.
	Mechanism string
	// Hardening lists software hardening names ("cfi", "asan", ...).
	Hardening []string
	// Default marks the compartment that receives unassigned libraries.
	Default bool
}

// Config is a parsed configuration file.
type Config struct {
	Compartments []Compartment
	// Libraries maps library name to compartment name, in file order.
	Libraries []LibAssignment
	// Gate selects the gate flavor: "", "light" or "full".
	Gate string
	// Sharing selects the stack-data sharing strategy: "", "dss", "heap"
	// or "stack".
	Sharing string
	// ASLR selects the layout-randomization level: "", "off", "N" or
	// "N+leak" (entropy bits, optionally leak-resistant).
	ASLR string
	// Profile selects the machine profile: "", "x86" or "riscv".
	Profile string
}

// LibAssignment maps one library into a compartment.
type LibAssignment struct {
	Library     string
	Compartment string
}

// Compartment returns the declaration with the given name, or nil.
func (c *Config) Compartment(name string) *Compartment {
	for i := range c.Compartments {
		if c.Compartments[i].Name == name {
			return &c.Compartments[i]
		}
	}
	return nil
}

// DefaultCompartment returns the compartment marked default, or the first
// one.
func (c *Config) DefaultCompartment() *Compartment {
	for i := range c.Compartments {
		if c.Compartments[i].Default {
			return &c.Compartments[i]
		}
	}
	if len(c.Compartments) > 0 {
		return &c.Compartments[0]
	}
	return nil
}

// Mechanism returns the image's isolation mechanism: the default
// compartment's, or "none" when unspecified.
func (c *Config) Mechanism() string {
	for _, comp := range c.Compartments {
		if comp.Mechanism != "" {
			return comp.Mechanism
		}
	}
	return "none"
}

// Parse parses a configuration file.
func Parse(text string) (*Config, error) {
	p := &parser{lines: splitLines(text)}
	cfg := &Config{}
	if err := p.parse(cfg); err != nil {
		return nil, err
	}
	if err := Validate(cfg); err != nil {
		return nil, err
	}
	return cfg, nil
}

// Validate checks structural invariants: unique names, consistent
// mechanism, assignments referring to declared compartments.
func Validate(cfg *Config) error {
	if len(cfg.Compartments) == 0 {
		return fmt.Errorf("config: no compartments declared")
	}
	seen := map[string]bool{}
	mech := ""
	defaults := 0
	for _, comp := range cfg.Compartments {
		if comp.Name == "" {
			return fmt.Errorf("config: compartment with empty name")
		}
		if seen[comp.Name] {
			return fmt.Errorf("config: duplicate compartment %q", comp.Name)
		}
		seen[comp.Name] = true
		if comp.Default {
			defaults++
		}
		if comp.Mechanism == "" {
			continue
		}
		if mech == "" {
			mech = comp.Mechanism
		} else if mech != comp.Mechanism {
			return fmt.Errorf("config: mixed mechanisms %q and %q in one image", mech, comp.Mechanism)
		}
	}
	if defaults > 1 {
		return fmt.Errorf("config: multiple default compartments")
	}
	libs := map[string]bool{}
	for _, a := range cfg.Libraries {
		if libs[a.Library] {
			return fmt.Errorf("config: library %q assigned twice", a.Library)
		}
		libs[a.Library] = true
		if !seen[a.Compartment] {
			return fmt.Errorf("config: library %q assigned to undeclared compartment %q", a.Library, a.Compartment)
		}
	}
	switch cfg.Gate {
	case "", "light", "full":
	default:
		return fmt.Errorf("config: unknown gate flavor %q", cfg.Gate)
	}
	switch cfg.Sharing {
	case "", "dss", "heap", "stack":
	default:
		return fmt.Errorf("config: unknown sharing strategy %q", cfg.Sharing)
	}
	if _, err := isolation.ParseASLR(cfg.ASLR); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	if _, err := machine.ParseProfile(cfg.Profile); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	return nil
}

type line struct {
	no     int
	indent int
	text   string // trimmed
}

func splitLines(text string) []line {
	var out []line
	for i, raw := range strings.Split(text, "\n") {
		if idx := strings.Index(raw, "#"); idx >= 0 {
			raw = raw[:idx]
		}
		trimmed := strings.TrimRight(raw, " \t\r")
		if strings.TrimSpace(trimmed) == "" {
			continue
		}
		indent := 0
		for _, r := range trimmed {
			if r == ' ' {
				indent++
			} else if r == '\t' {
				indent += 4
			} else {
				break
			}
		}
		out = append(out, line{no: i + 1, indent: indent, text: strings.TrimSpace(trimmed)})
	}
	return out
}

type parser struct {
	lines []line
	pos   int
}

func (p *parser) cur() (line, bool) {
	if p.pos >= len(p.lines) {
		return line{}, false
	}
	return p.lines[p.pos], true
}

func (p *parser) parse(cfg *Config) error {
	for {
		ln, ok := p.cur()
		if !ok {
			return nil
		}
		switch {
		case ln.text == "compartments:":
			p.pos++
			if err := p.parseCompartments(cfg, ln.indent); err != nil {
				return err
			}
		case ln.text == "libraries:":
			p.pos++
			if err := p.parseLibraries(cfg, ln.indent); err != nil {
				return err
			}
		case strings.HasPrefix(ln.text, "gate:"):
			cfg.Gate = strings.TrimSpace(strings.TrimPrefix(ln.text, "gate:"))
			p.pos++
		case strings.HasPrefix(ln.text, "sharing:"):
			cfg.Sharing = strings.TrimSpace(strings.TrimPrefix(ln.text, "sharing:"))
			p.pos++
		case strings.HasPrefix(ln.text, "aslr:"):
			cfg.ASLR = strings.TrimSpace(strings.TrimPrefix(ln.text, "aslr:"))
			p.pos++
		case strings.HasPrefix(ln.text, "profile:"):
			cfg.Profile = strings.TrimSpace(strings.TrimPrefix(ln.text, "profile:"))
			p.pos++
		default:
			return fmt.Errorf("config: line %d: unexpected %q", ln.no, ln.text)
		}
	}
}

func (p *parser) parseCompartments(cfg *Config, parentIndent int) error {
	for {
		ln, ok := p.cur()
		if !ok || ln.indent <= parentIndent && !strings.HasPrefix(ln.text, "-") {
			return nil
		}
		if !strings.HasPrefix(ln.text, "- ") {
			return nil
		}
		head := strings.TrimSpace(strings.TrimPrefix(ln.text, "- "))
		name := strings.TrimSuffix(head, ":")
		if name == head && strings.Contains(head, ":") {
			return fmt.Errorf("config: line %d: compartment entries look like \"- name:\"", ln.no)
		}
		comp := Compartment{Name: name}
		itemIndent := ln.indent
		p.pos++
		for {
			sub, ok := p.cur()
			if !ok || sub.indent <= itemIndent {
				break
			}
			key, val, found := strings.Cut(sub.text, ":")
			if !found {
				return fmt.Errorf("config: line %d: expected key: value, got %q", sub.no, sub.text)
			}
			key = strings.TrimSpace(key)
			val = strings.TrimSpace(val)
			switch key {
			case "mechanism":
				comp.Mechanism = val
			case "default":
				comp.Default = val == "true" || val == "True" || val == "yes"
			case "hardening":
				comp.Hardening = parseList(val)
			default:
				return fmt.Errorf("config: line %d: unknown compartment key %q", sub.no, key)
			}
			p.pos++
		}
		cfg.Compartments = append(cfg.Compartments, comp)
	}
}

func (p *parser) parseLibraries(cfg *Config, parentIndent int) error {
	for {
		ln, ok := p.cur()
		if !ok || !strings.HasPrefix(ln.text, "- ") {
			return nil
		}
		body := strings.TrimSpace(strings.TrimPrefix(ln.text, "- "))
		lib, comp, found := strings.Cut(body, ":")
		if !found {
			return fmt.Errorf("config: line %d: expected \"- lib: comp\", got %q", ln.no, body)
		}
		cfg.Libraries = append(cfg.Libraries, LibAssignment{
			Library:     strings.TrimSpace(lib),
			Compartment: strings.TrimSpace(comp),
		})
		p.pos++
	}
}

func parseList(val string) []string {
	val = strings.TrimPrefix(strings.TrimSuffix(val, "]"), "[")
	if strings.TrimSpace(val) == "" {
		return nil
	}
	parts := strings.Split(val, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if s := strings.TrimSpace(p); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// Render serializes a Config back to the file format (used by the
// exploration tool to emit the chosen configurations).
func Render(cfg *Config) string {
	var b strings.Builder
	b.WriteString("compartments:\n")
	for _, c := range cfg.Compartments {
		fmt.Fprintf(&b, "- %s:\n", c.Name)
		if c.Mechanism != "" {
			fmt.Fprintf(&b, "    mechanism: %s\n", c.Mechanism)
		}
		if c.Default {
			b.WriteString("    default: true\n")
		}
		if len(c.Hardening) > 0 {
			fmt.Fprintf(&b, "    hardening: [%s]\n", strings.Join(c.Hardening, ", "))
		}
	}
	b.WriteString("libraries:\n")
	for _, a := range cfg.Libraries {
		fmt.Fprintf(&b, "- %s: %s\n", a.Library, a.Compartment)
	}
	if cfg.Gate != "" {
		fmt.Fprintf(&b, "gate: %s\n", cfg.Gate)
	}
	if cfg.Sharing != "" {
		fmt.Fprintf(&b, "sharing: %s\n", cfg.Sharing)
	}
	if cfg.ASLR != "" {
		fmt.Fprintf(&b, "aslr: %s\n", cfg.ASLR)
	}
	if cfg.Profile != "" {
		fmt.Fprintf(&b, "profile: %s\n", cfg.Profile)
	}
	return b.String()
}
