package config

import (
	"strings"
	"testing"
)

// paperExample is the configuration file shown verbatim in §3 of the
// paper (isolating libopenjpg and lwip with CFI and ASan).
const paperExample = `
compartments:
- comp1:
    mechanism: intel-mpk
    default: True
- comp2:
    mechanism: intel-mpk
    hardening: [cfi, asan]
libraries:
- libredis: comp1
- libopenjpg: comp2
- lwip: comp2
`

func TestParsePaperExample(t *testing.T) {
	cfg, err := Parse(paperExample)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Compartments) != 2 {
		t.Fatalf("compartments = %d, want 2", len(cfg.Compartments))
	}
	c1 := cfg.Compartment("comp1")
	if c1 == nil || !c1.Default || c1.Mechanism != "intel-mpk" {
		t.Fatalf("comp1 = %+v", c1)
	}
	c2 := cfg.Compartment("comp2")
	if c2 == nil || len(c2.Hardening) != 2 || c2.Hardening[0] != "cfi" || c2.Hardening[1] != "asan" {
		t.Fatalf("comp2 = %+v", c2)
	}
	if len(cfg.Libraries) != 3 {
		t.Fatalf("libraries = %+v", cfg.Libraries)
	}
	if cfg.Libraries[2].Library != "lwip" || cfg.Libraries[2].Compartment != "comp2" {
		t.Fatalf("lwip assignment = %+v", cfg.Libraries[2])
	}
	if cfg.Mechanism() != "intel-mpk" {
		t.Fatalf("mechanism = %q", cfg.Mechanism())
	}
	if cfg.DefaultCompartment().Name != "comp1" {
		t.Fatal("default compartment wrong")
	}
}

func TestParseGateAndSharing(t *testing.T) {
	cfg, err := Parse(`
compartments:
- c1:
    mechanism: intel-mpk
libraries:
- app: c1
gate: light
sharing: dss
`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Gate != "light" || cfg.Sharing != "dss" {
		t.Fatalf("gate/sharing = %q/%q", cfg.Gate, cfg.Sharing)
	}
}

func TestParseComments(t *testing.T) {
	cfg, err := Parse(`
# image for the embargo scenario
compartments:
- c1:            # default
    mechanism: vm-ept
libraries:
- vuln: c1
`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Mechanism() != "vm-ept" {
		t.Fatalf("mechanism = %q", cfg.Mechanism())
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"no compartments", "libraries:\n- a: c1\n"},
		{"duplicate comp", "compartments:\n- c1:\n- c1:\nlibraries:\n"},
		{"mixed mechanisms", "compartments:\n- c1:\n    mechanism: intel-mpk\n- c2:\n    mechanism: vm-ept\n"},
		{"unknown comp ref", "compartments:\n- c1:\nlibraries:\n- app: nope\n"},
		{"duplicate lib", "compartments:\n- c1:\nlibraries:\n- app: c1\n- app: c1\n"},
		{"two defaults", "compartments:\n- c1:\n    default: true\n- c2:\n    default: true\n"},
		{"bad gate", "compartments:\n- c1:\ngate: warp\n"},
		{"bad sharing", "compartments:\n- c1:\nsharing: telepathy\n"},
		{"unknown key", "compartments:\n- c1:\n    color: red\n"},
		{"junk", "compartments:\n- c1:\nwhatever\n"},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.text); err == nil {
			t.Errorf("%s: accepted invalid config", tc.name)
		}
	}
}

func TestRenderRoundTrip(t *testing.T) {
	cfg, err := Parse(paperExample)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Gate = "full"
	cfg.Sharing = "dss"
	text := Render(cfg)
	cfg2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse of rendered config failed: %v\n%s", err, text)
	}
	if len(cfg2.Compartments) != len(cfg.Compartments) || len(cfg2.Libraries) != len(cfg.Libraries) {
		t.Fatal("round trip lost entries")
	}
	if cfg2.Gate != "full" || cfg2.Sharing != "dss" {
		t.Fatal("round trip lost gate/sharing")
	}
	if !strings.Contains(text, "hardening: [cfi, asan]") {
		t.Fatalf("render lost hardening:\n%s", text)
	}
}

func TestHardeningListParsing(t *testing.T) {
	cfg, err := Parse(`
compartments:
- c1:
    hardening: [cfi]
- c2:
    hardening: []
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Compartment("c1").Hardening) != 1 {
		t.Fatal("single-element list")
	}
	if len(cfg.Compartment("c2").Hardening) != 0 {
		t.Fatal("empty list should parse to nil")
	}
}
