package isolation

import (
	"fmt"

	"flexos/internal/mem"
	"flexos/internal/sched"
)

// EPTBackend implements VM-based isolation (§4.2): every compartment is a
// separate virtual machine containing a copy of the TCB (boot code,
// scheduler, memory manager, backend runtime) plus the compartment's
// libraries. Cross-compartment calls are shared-memory RPCs: the caller
// deposits a function pointer and arguments in a predefined shared area,
// the target VM's busy-waiting RPC server validates that the pointer is a
// legal API entry point, executes, and writes back the return value.
//
// Simulation note: VM-private memory is tagged with a per-VM permission
// key (the analogue of its EPT mapping); an access from the wrong VM
// faults as an EPT violation. The shared window is the region tagged
// mem.KeyShared, "mapped at the same address in the different
// compartments" by construction since there is a single simulated
// physical memory.
type EPTBackend struct {
	sys     *System
	nextKey mem.Key
	// rpcThreads is the size of each VM's RPC-server thread pool
	// (multithreaded load support, §4.2).
	rpcThreads int
	rpcCount   uint64
}

// NewEPT returns the EPT/VM backend with the default RPC thread-pool size.
func NewEPT() *EPTBackend { return &EPTBackend{rpcThreads: 4} }

// Name implements Backend.
func (b *EPTBackend) Name() string { return "vm-ept" }

// Strength implements Backend.
func (b *EPTBackend) Strength() Strength { return StrengthInterAS }

// MaxCompartments implements Backend. The architectural limit is the
// number of vCPUs one is willing to dedicate; the paper pins one core per
// vCPU, and the simulated permission table reuses the 16-entry key space.
func (b *EPTBackend) MaxCompartments() int { return 15 }

// Init implements Backend.
func (b *EPTBackend) Init(sys *System) error {
	if b.sys != nil {
		return fmt.Errorf("isolation: ept backend initialized twice")
	}
	if len(sys.Comps) > b.MaxCompartments() {
		return fmt.Errorf("isolation: ept image with %d compartments exceeds %d vCPUs",
			len(sys.Comps), b.MaxCompartments())
	}
	b.sys = sys
	b.nextKey = 1
	for _, c := range sys.Comps {
		if c.ID == 0 {
			c.Key = mem.KeyTCB
			continue
		}
		c.Key = b.nextKey
		b.nextKey++
	}
	sys.Sched.RegisterHooks(&eptHooks{sys: sys})
	// Each VM runs an RPC server thread pool to service incoming calls.
	for _, c := range sys.Comps {
		for i := 0; i < b.rpcThreads; i++ {
			t := sys.Sched.Spawn(fmt.Sprintf("rpc-%s-%d", c.Name, i), c.ID)
			t.PKRU = c.PKRU()
		}
	}
	return nil
}

// eptHooks installs each thread's VM permission view. A thread belongs to
// exactly one VM; unlike MPK there is no per-thread register to swap on
// context switch, the VM boundary is the address space itself.
type eptHooks struct {
	sys *System
}

func (h *eptHooks) ThreadCreated(t *sched.Thread) {
	if c := h.sys.Comp(t.Comp); c != nil {
		t.PKRU = c.PKRU()
	}
}

func (h *eptHooks) ThreadSwitch(_, _ *sched.Thread) {}

// Gate implements Backend. EPT has a single gate flavor: the RPC gate.
// GateLight requests are served by the same gate (the mechanism has no
// cheaper crossing; the mode is accepted so configurations remain
// portable across backends).
func (b *EPTBackend) Gate(from, to sched.CompID, mode GateMode) (Gate, error) {
	if b.sys == nil {
		return nil, fmt.Errorf("isolation: ept backend not initialized")
	}
	if from == to {
		return NewFuncGate(b.sys.Mach), nil
	}
	src, dst := b.sys.Comp(from), b.sys.Comp(to)
	if src == nil || dst == nil {
		return nil, fmt.Errorf("isolation: gate between unknown compartments %d -> %d", from, to)
	}
	return &eptGate{backend: b, from: src, to: dst}, nil
}

// Stats implements Backend: one VM per compartment, each with its own TCB
// copy (§3.1); the EPT runtime TCB is smaller than MPK's (§3.3).
func (b *EPTBackend) Stats() ImageStats {
	vms := 1
	if b.sys != nil {
		vms = len(b.sys.Comps)
	}
	return ImageStats{VMs: vms, TCBCopies: vms, TCBLoC: 2000}
}

// RPCs returns the number of cross-VM calls served (bench hook).
func (b *EPTBackend) RPCs() uint64 { return b.rpcCount }

// eptGate performs a shared-memory RPC into the target VM. The server
// checks that the requested function is a legal API entry point before
// executing it — the stronger CFI property of §4.2: compartments can only
// be *left and entered* at well-defined points.
type eptGate struct {
	backend *EPTBackend
	from    *Compartment
	to      *Compartment
}

// String implements Gate.
func (g *eptGate) String() string { return "ept/rpc" }

// Cost implements Gate (Fig. 11b: 462 cycles round-trip with busy-waiting
// servers).
func (g *eptGate) Cost() uint64 { return g.backend.sys.Mach.Costs.EPTGate }

// Call implements Gate.
func (g *eptGate) Call(t *sched.Thread, entry string, fn func() error) error {
	// The RPC server validates the function pointer against the legal
	// entry points; all compartments are built together, so all
	// addresses are known (§4.2).
	if !g.to.EntryPoints[entry] {
		return CFIFault(g.to.Name, entry)
	}
	g.backend.rpcCount++
	g.backend.sys.Mach.Charge(g.Cost())

	// The call executes in the target VM: the register file the callee
	// sees belongs to the server thread, so the caller's registers are
	// trivially isolated; model by zero/restore like the full MPK gate.
	savedPKRU, savedComp, savedRegs := t.PKRU, t.Comp, t.Regs
	t.Regs = [8]uint64{}
	t.PKRU = g.to.PKRU()
	t.Comp = g.to.ID

	err := fn()

	t.PKRU = savedPKRU
	t.Comp = savedComp
	t.Regs = savedRegs
	return err
}
