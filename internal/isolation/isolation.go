// Package isolation defines FlexOS-Go's isolation backend API (§3.2 of the
// paper) and its gate abstraction (§3.1), together with the three fully
// implemented backends — NONE (plain function calls), Intel MPK
// (intra-address-space protection keys) and EPT (one VM per compartment
// with shared-memory RPC) — plus the CHERI backend sketched in §4.3.
//
// The contract mirrors the paper: an isolation mechanism only has to
// (1) implement protection domains with a domain-switching mechanism, and
// (2) support some form of shared memory for cross-domain communication.
// Backends plug into the core libraries through the scheduler hook API and
// into the toolchain through gate construction; nothing else in the system
// knows which mechanism is in use.
//
// Simulation note (see DESIGN.md): the EPT backend reuses the page-key
// machinery of internal/mem as its EPT permission table — one key per VM
// models each VM's second-level mapping, and key mismatches are reported
// as EPT violations. This preserves the functional semantics (disjoint
// protection domains, aliased shared window, RPC-only crossings) while
// keeping a single simulated physical memory.
package isolation

import (
	"fmt"

	"flexos/internal/machine"
	"flexos/internal/mem"
	"flexos/internal/sched"
)

// Strength ranks mechanisms for the partial safety ordering (§5): a
// stronger mechanism probabilistically dominates a weaker one, all else
// equal.
type Strength int

const (
	// StrengthNone provides no isolation.
	StrengthNone Strength = iota
	// StrengthIntraAS is intra-address-space isolation (MPK, CHERI
	// hybrid): one address space, hardware-checked domains.
	StrengthIntraAS
	// StrengthInterAS is inter-address-space isolation (EPT/VM,
	// TrustZone): disjoint "worlds" communicating by RPC.
	StrengthInterAS
)

// String implements fmt.Stringer.
func (s Strength) String() string {
	switch s {
	case StrengthNone:
		return "none"
	case StrengthIntraAS:
		return "intra-AS"
	case StrengthInterAS:
		return "inter-AS"
	default:
		return fmt.Sprintf("strength(%d)", int(s))
	}
}

// GateMode selects a gate flavor for backends that provide several (§4.1:
// the MPK backend ships a full register-isolating, stack-switching gate
// and a lightweight stack-sharing one).
type GateMode int

const (
	// GateDefault lets the backend pick its full-safety gate.
	GateDefault GateMode = iota
	// GateLight requests the lightweight variant (MPK: ERIM-style PKRU
	// switch with shared stacks and register set).
	GateLight
	// GateFull requests the full-safety variant (MPK: HODOR-style; saves
	// and zeroes the register set, switches to the per-thread
	// per-compartment stack from the stack registry).
	GateFull
)

// String implements fmt.Stringer.
func (m GateMode) String() string {
	switch m {
	case GateLight:
		return "light"
	case GateFull:
		return "full"
	default:
		return "default"
	}
}

// Sharing selects the data sharing strategy for stack data (§4.1).
type Sharing int

const (
	// ShareDSS uses Data Shadow Stacks: thread stacks are doubled, the
	// upper half lives in the shared domain, shadow = &x + STACK_SIZE.
	ShareDSS Sharing = iota
	// ShareHeap converts shared stack allocations to shared-heap
	// allocations (the costly strategy of prior work).
	ShareHeap
	// ShareStack places whole stacks in the shared domain (fast, least
	// safe; pairs with GateLight).
	ShareStack
)

// String implements fmt.Stringer.
func (s Sharing) String() string {
	switch s {
	case ShareDSS:
		return "dss"
	case ShareHeap:
		return "heap"
	case ShareStack:
		return "stack"
	default:
		return fmt.Sprintf("sharing(%d)", int(s))
	}
}

// Compartment is one isolation domain of a built image. The builder
// creates compartments from the user configuration; the backend assigns
// protection resources (keys / VMs) during Init.
type Compartment struct {
	ID   sched.CompID
	Name string

	// Key is the protection key (MPK) or VM permission tag (EPT)
	// assigned by the backend.
	Key mem.Key

	// ExtraKeys are additional shared domains this compartment may
	// access (restricted pairwise shared regions, §4.1).
	ExtraKeys []mem.Key

	// EntryPoints is the set of legal gate entry symbols into this
	// compartment, fixed at build time. Gates enforce it (the paper's
	// "inexpensive albeit incomplete form of CFI").
	EntryPoints map[string]bool

	// Heap is the compartment's private allocator; SharedHeap is the
	// communication heap. Both are installed by the builder.
	Heap       mem.Allocator
	SharedHeap mem.Allocator
}

// PKRU returns the protection register image for a thread executing in
// this compartment: own key + the global shared key + extra keys.
func (c *Compartment) PKRU() mem.PKRU {
	return mem.DomainPKRU(c.Key, append([]mem.Key{mem.KeyShared}, c.ExtraKeys...)...)
}

// AddEntryPoint registers a legal gate entry at build time.
func (c *Compartment) AddEntryPoint(symbol string) {
	if c.EntryPoints == nil {
		c.EntryPoints = make(map[string]bool)
	}
	c.EntryPoints[symbol] = true
}

// System is the runtime context backends operate on: the machine, the
// scheduler, the (single, simulated-physical) address space, and the
// compartments of the image.
type System struct {
	Mach  *machine.Machine
	Sched *sched.Scheduler
	AS    *mem.AddrSpace
	Comps []*Compartment
}

// Comp returns the compartment with the given ID, or nil.
func (s *System) Comp(id sched.CompID) *Compartment {
	for _, c := range s.Comps {
		if c.ID == id {
			return c
		}
	}
	return nil
}

// Gate is a bound cross-compartment call gate. From the perspective of the
// caller and callee it is transparent (System V calling convention); from
// the system's perspective it performs the domain transition, charges its
// cost, and enforces entry points.
type Gate interface {
	// String describes the gate ("mpk/full", "ept/rpc", "call").
	String() string
	// Cost is the fixed round-trip cost in cycles, excluding argument
	// copies (reported in Fig. 11b).
	Cost() uint64
	// Call transfers control to entry inside the target compartment,
	// runs fn there (with the thread's protection domain switched), and
	// returns to the caller's domain. fn runs synchronously, as the
	// paper's gates are inlined calls, not trampolines.
	Call(t *sched.Thread, entry string, fn func() error) error
}

// ImageStats describes backend-level layout consequences, e.g. TCB
// duplication under multi-AS backends (§3.1 "for them, the trusted
// computing base is duplicated; one for each system").
type ImageStats struct {
	// VMs is the number of virtual machines the image comprises (1 for
	// intra-AS backends).
	VMs int
	// TCBCopies is how many copies of the TCB (boot, scheduler, memory
	// manager, backend runtime) the image carries.
	TCBCopies int
	// TCBLoC is the approximate trusted-computing-base size the paper
	// reports for the mechanism (§3.3: ~3000 LoC for MPK, less for EPT).
	TCBLoC int
}

// Backend abstracts an isolation mechanism. Porting FlexOS to a new
// mechanism is implementing this interface (gates, hooks, layout), as
// enumerated in §3.2.
type Backend interface {
	// Name is the configuration-file mechanism name ("intel-mpk", ...).
	Name() string
	// Strength ranks the mechanism for partial safety ordering.
	Strength() Strength
	// MaxCompartments is the architectural limit (MPK: 16 keys minus the
	// shared domain).
	MaxCompartments() int
	// Init assigns protection resources to the system's compartments and
	// registers scheduler hooks. It must be called exactly once, by the
	// image builder.
	Init(sys *System) error
	// Gate returns a bound gate from one compartment to another. Both
	// must belong to the system passed to Init. Same-compartment pairs
	// return a plain call gate.
	Gate(from, to sched.CompID, mode GateMode) (Gate, error)
	// Stats reports layout consequences of the mechanism.
	Stats() ImageStats
}

// RestrictedSharer is implemented by backends that can create shared
// domains visible to only a subset of compartments — §4.1: "If the image
// features less than 15 compartments, FlexOS uses remaining keys for
// additional shared domains between restricted groups of compartments."
// The builder uses it to place whitelisted __shared annotations in a
// domain only their whitelist can reach, instead of the global shared
// heap.
type RestrictedSharer interface {
	// RestrictedDomain returns a protection key covering exactly the
	// given compartments, allocating one if needed. It returns false
	// when the mechanism has run out of domains; callers then fall back
	// to the global shared domain.
	RestrictedDomain(comps []sched.CompID) (mem.Key, bool)
}

// funcGate is the zero-overhead gate used when caller and callee share a
// compartment: the transformation collapses the abstract gate to a plain
// function call (Fig. 3, step 3').
type funcGate struct {
	mach *machine.Machine
}

// NewFuncGate returns the same-compartment gate.
func NewFuncGate(m *machine.Machine) Gate { return &funcGate{mach: m} }

func (g *funcGate) String() string { return "call" }
func (g *funcGate) Cost() uint64   { return g.mach.Costs.FuncCall }

func (g *funcGate) Call(t *sched.Thread, entry string, fn func() error) error {
	g.mach.Charge(g.mach.Costs.FuncCall)
	return fn()
}

// CFIFault builds the fault returned when a gate or RPC server rejects an
// illegal entry point.
func CFIFault(space, entry string) error {
	return &mem.Fault{Kind: mem.FaultCFI, Space: space + ":" + entry}
}
