package isolation

import (
	"fmt"

	"flexos/internal/sched"
)

// NoneBackend is the degenerate backend: all compartments collapse into a
// single protection domain and gates are plain function calls. A FlexOS
// image built with it is equivalent to vanilla Unikraft — the paper's
// "FlexOS NONE" baseline, which Figures 9 and 10 show adds no overhead
// ("users only pay for what they get").
type NoneBackend struct {
	sys *System
}

// NewNone returns the NONE backend.
func NewNone() *NoneBackend { return &NoneBackend{} }

// Name implements Backend.
func (b *NoneBackend) Name() string { return "none" }

// Strength implements Backend.
func (b *NoneBackend) Strength() Strength { return StrengthNone }

// MaxCompartments implements Backend. Any number of compartments can be
// declared; they simply are not isolated from one another.
func (b *NoneBackend) MaxCompartments() int { return 1 << 30 }

// Init implements Backend: every compartment gets the TCB key and an
// allow-all protection register, like a classic single-protection-domain
// unikernel.
func (b *NoneBackend) Init(sys *System) error {
	if b.sys != nil {
		return fmt.Errorf("isolation: none backend initialized twice")
	}
	b.sys = sys
	for _, c := range sys.Comps {
		c.Key = 0
	}
	sys.Sched.RegisterHooks(noneHooks{})
	return nil
}

// noneHooks keeps every thread in the allow-all domain.
type noneHooks struct{}

func (noneHooks) ThreadCreated(t *sched.Thread)   { t.PKRU = 0 /* allow all */ }
func (noneHooks) ThreadSwitch(_, _ *sched.Thread) {}

// Gate implements Backend.
func (b *NoneBackend) Gate(from, to sched.CompID, mode GateMode) (Gate, error) {
	if b.sys == nil {
		return nil, fmt.Errorf("isolation: none backend not initialized")
	}
	return NewFuncGate(b.sys.Mach), nil
}

// Stats implements Backend.
func (b *NoneBackend) Stats() ImageStats {
	return ImageStats{VMs: 1, TCBCopies: 1, TCBLoC: 0}
}
