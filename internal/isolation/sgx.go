package isolation

import (
	"fmt"

	"flexos/internal/mem"
	"flexos/internal/sched"
)

// SGXBackend implements the Intel SGX backend the paper lists as future
// work ("we intend to add more isolation backend implementations to
// FlexOS including CHERI and SGX", §9). §3.1 classifies SGX with the
// privilege-switching mechanisms: gates switch the current privilege
// (enter/leave an enclave) rather than crossing into another system.
//
// Model: each non-default compartment is an enclave. Enclave memory
// (the EPC analogue) is private — tagged with a per-enclave key — and
// readable by nothing else, including the default compartment: unlike
// MPK, SGX protects the compartment even from more-privileged code,
// which is why the backend ranks at inter-AS strength in the safety
// ordering. Communication uses the untrusted shared domain, exactly like
// the paper's shared-heap/DSS strategies. Gates are ECALL/OCALL round
// trips: world-class expensive (~7.6k cycles on SGX1-era hardware,
// dwarfing even EPT RPC), always register-scrubbing, and enforced
// against a fixed ecall table — the entry-point set.
type SGXBackend struct {
	sys     *System
	nextKey mem.Key
	ecalls  uint64
}

// NewSGX returns the SGX backend.
func NewSGX() *SGXBackend { return &SGXBackend{} }

// Name implements Backend.
func (b *SGXBackend) Name() string { return "intel-sgx" }

// Strength implements Backend: enclaves protect compartments even from
// the rest of the system's TCB, the strongest point of the ordering.
func (b *SGXBackend) Strength() Strength { return StrengthInterAS }

// MaxCompartments implements Backend (bounded by the simulated
// permission table, like the other intra-AS backends).
func (b *SGXBackend) MaxCompartments() int { return 15 }

// Init implements Backend.
func (b *SGXBackend) Init(sys *System) error {
	if b.sys != nil {
		return fmt.Errorf("isolation: sgx backend initialized twice")
	}
	if len(sys.Comps) > b.MaxCompartments() {
		return fmt.Errorf("isolation: sgx image exceeds enclave table")
	}
	b.sys = sys
	b.nextKey = 1
	for _, c := range sys.Comps {
		if c.ID == 0 {
			c.Key = mem.KeyTCB
			continue
		}
		c.Key = b.nextKey
		b.nextKey++
	}
	sys.Sched.RegisterHooks(&sgxHooks{sys: sys})
	return nil
}

type sgxHooks struct{ sys *System }

func (h *sgxHooks) ThreadCreated(t *sched.Thread) {
	if c := h.sys.Comp(t.Comp); c != nil {
		t.PKRU = c.PKRU()
	}
}

func (h *sgxHooks) ThreadSwitch(_, to *sched.Thread) {
	if to == nil {
		return
	}
	if c := h.sys.Comp(to.Comp); c != nil {
		to.PKRU = c.PKRU()
	}
}

// Gate implements Backend. SGX has a single gate flavor: the
// ECALL/OCALL transition.
func (b *SGXBackend) Gate(from, to sched.CompID, mode GateMode) (Gate, error) {
	if b.sys == nil {
		return nil, fmt.Errorf("isolation: sgx backend not initialized")
	}
	if from == to {
		return NewFuncGate(b.sys.Mach), nil
	}
	src, dst := b.sys.Comp(from), b.sys.Comp(to)
	if src == nil || dst == nil {
		return nil, fmt.Errorf("isolation: gate between unknown compartments %d -> %d", from, to)
	}
	return &sgxGate{backend: b, to: dst}, nil
}

// Stats implements Backend. The SGX runtime (enclave loader, ecall
// dispatch) is comparable to the MPK backend's TCB.
func (b *SGXBackend) Stats() ImageStats {
	return ImageStats{VMs: 1, TCBCopies: 1, TCBLoC: 3500}
}

// ECalls returns the number of enclave transitions served (bench hook).
func (b *SGXBackend) ECalls() uint64 { return b.ecalls }

// sgxGate is an ECALL/OCALL transition.
type sgxGate struct {
	backend *SGXBackend
	to      *Compartment
}

// String implements Gate.
func (g *sgxGate) String() string { return "sgx/ecall" }

// Cost implements Gate.
func (g *sgxGate) Cost() uint64 { return g.backend.sys.Mach.Costs.SGXGate }

// Call implements Gate: the hardware validates the target against the
// enclave's ecall table, scrubs the register file on entry and exit, and
// switches the privilege view.
func (g *sgxGate) Call(t *sched.Thread, entry string, fn func() error) error {
	if !g.to.EntryPoints[entry] {
		return CFIFault(g.to.Name, entry)
	}
	g.backend.ecalls++
	g.backend.sys.Mach.Charge(g.Cost())
	savedPKRU, savedComp, savedRegs := t.PKRU, t.Comp, t.Regs
	t.Regs = [8]uint64{}
	t.PKRU = g.to.PKRU()
	t.Comp = g.to.ID
	err := fn()
	t.PKRU = savedPKRU
	t.Comp = savedComp
	t.Regs = savedRegs
	return err
}
