package isolation

import (
	"fmt"

	"flexos/internal/mem"
	"flexos/internal/sched"
)

// CHERIBackend realizes the backend sketched in §4.3 of the paper: domain
// crossings use the CInvoke instruction with sentry capabilities; gates
// save the caller context, clear traditional and capability registers,
// and install the callee context; boot-time hooks initialize capability
// support and scheduler hooks perform capability-aware context switching.
//
// Following the paper's "first step", the backend uses the hybrid pointer
// model: shared-data annotations become __capability qualifiers, so shared
// variables are passed as capabilities instead of being copied into a
// shared region — which is why this backend reports byte-granular sharing
// to the safety ordering (it can "reduce data sharing" and "address
// confused-deputy situations").
//
// Simulation note: domains reuse the key machinery like MPK; the larger
// domain count CHERI allows is modeled by lifting the 15-compartment
// limit only up to the simulated key space when images are small, and by
// a distinct gate cost (CInvoke is register-to-register, cheaper than a
// PKRU serialization; we model it at half the MPK light gate).
type CHERIBackend struct {
	sys     *System
	nextKey mem.Key
}

// NewCHERI returns the CHERI backend.
func NewCHERI() *CHERIBackend { return &CHERIBackend{} }

// Name implements Backend.
func (b *CHERIBackend) Name() string { return "cheri" }

// Strength implements Backend: intra-AS hardware capabilities.
func (b *CHERIBackend) Strength() Strength { return StrengthIntraAS }

// MaxCompartments implements Backend. Architecturally CHERI allows many
// more domains than MPK ("allow for a larger number of domains, something
// that is currently impossible for architectural (MPK) and performance
// (EPT) reasons"); the simulation supports as many as its key table.
func (b *CHERIBackend) MaxCompartments() int { return 15 }

// Init implements Backend: boot-time hook initializes CHERI support,
// scheduler hooks perform capability-aware thread initialization.
func (b *CHERIBackend) Init(sys *System) error {
	if b.sys != nil {
		return fmt.Errorf("isolation: cheri backend initialized twice")
	}
	if len(sys.Comps) > b.MaxCompartments() {
		return fmt.Errorf("isolation: cheri image exceeds simulated domain table")
	}
	b.sys = sys
	b.nextKey = 1
	for _, c := range sys.Comps {
		if c.ID == 0 {
			c.Key = mem.KeyTCB
			continue
		}
		c.Key = b.nextKey
		b.nextKey++
	}
	sys.Sched.RegisterHooks(&cheriHooks{sys: sys})
	return nil
}

type cheriHooks struct{ sys *System }

func (h *cheriHooks) ThreadCreated(t *sched.Thread) {
	if c := h.sys.Comp(t.Comp); c != nil {
		t.PKRU = c.PKRU()
	}
}

func (h *cheriHooks) ThreadSwitch(_, to *sched.Thread) {
	if to == nil {
		return
	}
	if c := h.sys.Comp(to.Comp); c != nil {
		to.PKRU = c.PKRU()
	}
}

// Gate implements Backend.
func (b *CHERIBackend) Gate(from, to sched.CompID, mode GateMode) (Gate, error) {
	if b.sys == nil {
		return nil, fmt.Errorf("isolation: cheri backend not initialized")
	}
	if from == to {
		return NewFuncGate(b.sys.Mach), nil
	}
	src, dst := b.sys.Comp(from), b.sys.Comp(to)
	if src == nil || dst == nil {
		return nil, fmt.Errorf("isolation: gate between unknown compartments %d -> %d", from, to)
	}
	return &cheriGate{sys: b.sys, to: dst}, nil
}

// Stats implements Backend.
func (b *CHERIBackend) Stats() ImageStats {
	return ImageStats{VMs: 1, TCBCopies: 1, TCBLoC: 2500}
}

// cheriGate models a CInvoke + sentry-capability domain jump.
type cheriGate struct {
	sys *System
	to  *Compartment
}

// String implements Gate.
func (g *cheriGate) String() string { return "cheri/cinvoke" }

// Cost implements Gate.
func (g *cheriGate) Cost() uint64 { return g.sys.Mach.Costs.MPKLightGate() / 2 }

// Call implements Gate: sentry capabilities make jumping anywhere but a
// legal entry point architecturally impossible, modeled as the same
// entry-point validation.
func (g *cheriGate) Call(t *sched.Thread, entry string, fn func() error) error {
	if !g.to.EntryPoints[entry] {
		return CFIFault(g.to.Name, entry)
	}
	g.sys.Mach.Charge(g.Cost())
	savedPKRU, savedComp, savedRegs := t.PKRU, t.Comp, t.Regs
	t.Regs = [8]uint64{} // clear traditional and capability registers
	t.PKRU = g.to.PKRU()
	t.Comp = g.to.ID
	err := fn()
	t.PKRU = savedPKRU
	t.Comp = savedComp
	t.Regs = savedRegs
	return err
}

// Registry maps configuration-file mechanism names to backend factories.
// Registering a new mechanism here is step (5) of the paper's porting
// recipe (§3.2: "registering the newly created backend into the
// toolchain").
var Registry = map[string]func() Backend{
	"none":      func() Backend { return NewNone() },
	"intel-mpk": func() Backend { return NewMPK() },
	"mpk":       func() Backend { return NewMPK() },
	"vm-ept":    func() Backend { return NewEPT() },
	"ept":       func() Backend { return NewEPT() },
	"cheri":     func() Backend { return NewCHERI() },
	"intel-sgx": func() Backend { return NewSGX() },
	"sgx":       func() Backend { return NewSGX() },
}

// ForName instantiates a backend by its configuration name.
func ForName(name string) (Backend, error) {
	f, ok := Registry[name]
	if !ok {
		return nil, fmt.Errorf("isolation: unknown mechanism %q", name)
	}
	return f(), nil
}
