package isolation

import (
	"testing"

	"flexos/internal/machine"
	"flexos/internal/mem"
	"flexos/internal/sched"
)

// newSys builds a System with n compartments named c0..c(n-1), each
// exposing entry point "svc".
func newSys(t *testing.T, n int) *System {
	t.Helper()
	m := machine.New(machine.CostModel{})
	s := &System{
		Mach:  m,
		Sched: sched.New(m),
		AS:    mem.NewAddrSpace("sys", 256*mem.PageSize, m),
	}
	for i := 0; i < n; i++ {
		c := &Compartment{ID: sched.CompID(i), Name: "c" + string(rune('0'+i))}
		c.AddEntryPoint("svc")
		s.Comps = append(s.Comps, c)
	}
	return s
}

func initBackend(t *testing.T, b Backend, sys *System) {
	t.Helper()
	if err := b.Init(sys); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryNames(t *testing.T) {
	for _, name := range []string{"none", "intel-mpk", "mpk", "vm-ept", "ept", "cheri", "intel-sgx", "sgx"} {
		b, err := ForName(name)
		if err != nil {
			t.Fatalf("ForName(%q): %v", name, err)
		}
		if b == nil {
			t.Fatalf("ForName(%q) returned nil", name)
		}
	}
	if _, err := ForName("trustzone"); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
}

func TestBackendStrengthOrdering(t *testing.T) {
	none, _ := ForName("none")
	mpk, _ := ForName("mpk")
	ept, _ := ForName("ept")
	if !(none.Strength() < mpk.Strength() && mpk.Strength() < ept.Strength()) {
		t.Fatalf("strength ordering broken: %v %v %v",
			none.Strength(), mpk.Strength(), ept.Strength())
	}
}

func TestMPKKeyAssignment(t *testing.T) {
	sys := newSys(t, 3)
	b := NewMPK()
	initBackend(t, b, sys)
	if sys.Comps[0].Key != mem.KeyTCB {
		t.Fatalf("comp0 key = %d, want TCB key", sys.Comps[0].Key)
	}
	seen := map[mem.Key]bool{}
	for _, c := range sys.Comps {
		if seen[c.Key] {
			t.Fatalf("duplicate key %d", c.Key)
		}
		if c.Key == mem.KeyShared {
			t.Fatal("compartment assigned the shared key")
		}
		seen[c.Key] = true
	}
}

func TestMPKRejectsTooManyCompartments(t *testing.T) {
	sys := newSys(t, 16)
	if err := NewMPK().Init(sys); err == nil {
		t.Fatal("16 compartments must exceed MPK's 15-key budget")
	}
}

func TestMPKDoubleInit(t *testing.T) {
	sys := newSys(t, 2)
	b := NewMPK()
	initBackend(t, b, sys)
	if err := b.Init(sys); err == nil {
		t.Fatal("double Init accepted")
	}
}

func TestMPKThreadCreationHookInstallsDomain(t *testing.T) {
	sys := newSys(t, 2)
	initBackend(t, NewMPK(), sys)
	th := sys.Sched.Spawn("app", 1)
	c1 := sys.Comps[1]
	if th.PKRU != c1.PKRU() {
		t.Fatalf("thread PKRU = %v, want %v", th.PKRU, c1.PKRU())
	}
	if !th.PKRU.CanWrite(c1.Key) || !th.PKRU.CanWrite(mem.KeyShared) {
		t.Fatal("thread must access its own key and the shared domain")
	}
	if th.PKRU.CanRead(mem.KeyTCB) {
		t.Fatal("app thread must not read TCB memory")
	}
}

func TestMPKGateSwitchesDomainAndRestores(t *testing.T) {
	sys := newSys(t, 2)
	b := NewMPK()
	initBackend(t, b, sys)
	th := sys.Sched.Spawn("app", 1)
	g, err := b.Gate(1, 0, GateFull)
	if err != nil {
		t.Fatal(err)
	}
	before := th.PKRU
	var inside mem.PKRU
	var insideComp sched.CompID
	err = g.Call(th, "svc", func() error {
		inside = th.PKRU
		insideComp = th.Comp
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if insideComp != 0 || !inside.CanWrite(mem.KeyTCB) {
		t.Fatal("gate did not switch to the callee domain")
	}
	if th.PKRU != before || th.Comp != 1 {
		t.Fatal("gate did not restore the caller domain")
	}
}

func TestMPKGateEnforcesEntryPoints(t *testing.T) {
	sys := newSys(t, 2)
	b := NewMPK()
	initBackend(t, b, sys)
	th := sys.Sched.Spawn("app", 1)
	g, _ := b.Gate(1, 0, GateFull)
	err := g.Call(th, "not_an_entry", func() error { return nil })
	if !mem.IsFault(err, mem.FaultCFI) {
		t.Fatalf("rogue entry: got %v, want CFI fault", err)
	}
}

func TestMPKGateCostsMatchFig11b(t *testing.T) {
	sys := newSys(t, 2)
	b := NewMPK()
	initBackend(t, b, sys)
	light, _ := b.Gate(0, 1, GateLight)
	full, _ := b.Gate(0, 1, GateFull)
	if light.Cost() != 62 {
		t.Errorf("light gate cost = %d, want 62", light.Cost())
	}
	if full.Cost() != 108 {
		t.Errorf("full gate cost = %d, want 108", full.Cost())
	}
	// "MPK light gates are 80% faster than normal MPK gates."
	if !(light.Cost() < full.Cost()) {
		t.Error("light gate must be cheaper than full gate")
	}
}

func TestMPKFullGateIsolatesRegisters(t *testing.T) {
	sys := newSys(t, 2)
	b := NewMPK()
	initBackend(t, b, sys)
	th := sys.Sched.Spawn("app", 1)
	th.Regs[0] = 0x5EC2E7
	full, _ := b.Gate(1, 0, GateFull)
	var leaked uint64
	full.Call(th, "svc", func() error {
		leaked = th.Regs[0]
		return nil
	})
	if leaked != 0 {
		t.Fatalf("full gate leaked register value %#x", leaked)
	}
	if th.Regs[0] == 0 {
		t.Fatal("full gate must restore caller registers")
	}

	light, _ := b.Gate(1, 0, GateLight)
	light.Call(th, "svc", func() error {
		leaked = th.Regs[0]
		return nil
	})
	if leaked == 0 {
		t.Fatal("light gate shares the register set by design; expected leak")
	}
}

func TestMPKGateStackSwitch(t *testing.T) {
	sys := newSys(t, 2)
	b := NewMPK()
	initBackend(t, b, sys)
	th := sys.Sched.Spawn("app", 1)
	calleeStack := sched.NewStack(sys.AS, 0, 8*mem.PageSize, false, sys.Mach)
	th.SetStack(0, calleeStack)
	g, _ := b.Gate(1, 0, GateFull)
	var depthInside int
	g.Call(th, "svc", func() error {
		depthInside = calleeStack.Depth()
		return nil
	})
	if depthInside != 1 {
		t.Fatalf("callee stack depth inside gate = %d, want 1", depthInside)
	}
	if calleeStack.Depth() != 0 {
		t.Fatal("gate must pop the callee frame on return")
	}
}

func TestSameCompartmentGateIsPlainCall(t *testing.T) {
	for _, name := range []string{"none", "mpk", "ept", "cheri", "sgx"} {
		sys := newSys(t, 2)
		b, _ := ForName(name)
		initBackend(t, b, sys)
		g, err := b.Gate(1, 1, GateDefault)
		if err != nil {
			t.Fatal(err)
		}
		if g.Cost() != sys.Mach.Costs.FuncCall {
			t.Fatalf("%s same-comp gate cost = %d, want %d", name, g.Cost(), sys.Mach.Costs.FuncCall)
		}
	}
}

func TestNoneBackendAllowsEverything(t *testing.T) {
	sys := newSys(t, 3)
	b := NewNone()
	initBackend(t, b, sys)
	th := sys.Sched.Spawn("app", 2)
	if th.PKRU != mem.PKRUAllowAll {
		t.Fatal("none backend must leave threads in the allow-all domain")
	}
	g, _ := b.Gate(2, 0, GateDefault)
	cost := sys.Mach.Clock.Span(func() {
		g.Call(th, "anything", func() error { return nil })
	})
	if cost != sys.Mach.Costs.FuncCall {
		t.Fatalf("none gate cost = %d, want plain call", cost)
	}
}

func TestEPTGateCostAndCFI(t *testing.T) {
	sys := newSys(t, 2)
	b := NewEPT()
	initBackend(t, b, sys)
	th := sys.Sched.Spawn("app", 1)
	th.PKRU = sys.Comps[1].PKRU()
	g, _ := b.Gate(1, 0, GateDefault)
	if g.Cost() != 462 {
		t.Fatalf("EPT gate cost = %d, want 462 (Fig. 11b)", g.Cost())
	}
	// The RPC server rejects illegal function pointers.
	err := g.Call(th, "rogue", func() error { return nil })
	if !mem.IsFault(err, mem.FaultCFI) {
		t.Fatalf("rogue RPC: got %v, want CFI fault", err)
	}
	if err := g.Call(th, "svc", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if b.RPCs() != 1 {
		t.Fatalf("RPC count = %d, want 1", b.RPCs())
	}
}

func TestEPTSpawnsRPCServerPools(t *testing.T) {
	sys := newSys(t, 3)
	b := NewEPT()
	initBackend(t, b, sys)
	// 3 VMs x 4 server threads.
	if got := sys.Sched.Threads(); got != 12 {
		t.Fatalf("RPC server threads = %d, want 12", got)
	}
}

func TestEPTTCBDuplication(t *testing.T) {
	sys := newSys(t, 3)
	b := NewEPT()
	initBackend(t, b, sys)
	st := b.Stats()
	if st.VMs != 3 || st.TCBCopies != 3 {
		t.Fatalf("EPT stats = %+v, want 3 VMs / 3 TCB copies", st)
	}
	mpkStats := NewMPK().Stats()
	if mpkStats.TCBCopies != 1 {
		t.Fatal("MPK must not duplicate the TCB")
	}
}

func TestGateCostOrderingAcrossBackends(t *testing.T) {
	// Fig. 11b ordering: call < cheri < mpk-light < mpk-full < ept.
	sysM := newSys(t, 2)
	mpk := NewMPK()
	initBackend(t, mpk, sysM)
	light, _ := mpk.Gate(0, 1, GateLight)
	full, _ := mpk.Gate(0, 1, GateFull)

	sysE := newSys(t, 2)
	ept := NewEPT()
	initBackend(t, ept, sysE)
	rpc, _ := ept.Gate(0, 1, GateDefault)

	sysC := newSys(t, 2)
	cheri := NewCHERI()
	initBackend(t, cheri, sysC)
	cg, _ := cheri.Gate(0, 1, GateDefault)

	fc := sysM.Mach.Costs.FuncCall
	if !(fc < cg.Cost() && cg.Cost() < light.Cost() && light.Cost() < full.Cost() && full.Cost() < rpc.Cost()) {
		t.Fatalf("cost ordering broken: call=%d cheri=%d light=%d full=%d ept=%d",
			fc, cg.Cost(), light.Cost(), full.Cost(), rpc.Cost())
	}
}

func TestGateUnknownCompartment(t *testing.T) {
	sys := newSys(t, 2)
	b := NewMPK()
	initBackend(t, b, sys)
	if _, err := b.Gate(0, 9, GateFull); err == nil {
		t.Fatal("gate to unknown compartment accepted")
	}
}

func TestUninitializedBackendGate(t *testing.T) {
	for _, name := range []string{"none", "mpk", "ept", "cheri", "sgx"} {
		b, _ := ForName(name)
		if _, err := b.Gate(0, 1, GateDefault); err == nil {
			t.Fatalf("%s: gate before Init accepted", name)
		}
	}
}

func TestCrossCompartmentMemoryIsolationEndToEnd(t *testing.T) {
	// End-to-end: compartment 1 writes a secret into its private page;
	// compartment 2's thread cannot read it, but can after crossing a
	// gate into compartment 1.
	sys := newSys(t, 3)
	b := NewMPK()
	initBackend(t, b, sys)
	c1 := sys.Comps[1]
	secretPage := uintptr(10 * mem.PageSize)
	if err := sys.AS.SetKeyRange(secretPage, mem.PageSize, c1.Key); err != nil {
		t.Fatal(err)
	}
	owner := sys.Sched.Spawn("owner", 1)
	if err := sys.AS.Write(owner.PKRU, secretPage, []byte("secret")); err != nil {
		t.Fatal(err)
	}

	intruder := sys.Sched.Spawn("intruder", 2)
	err := sys.AS.Read(intruder.PKRU, secretPage, make([]byte, 6))
	if !mem.IsFault(err, mem.FaultKeyViolation) {
		t.Fatalf("intruder read: got %v, want key violation", err)
	}

	g, _ := b.Gate(2, 1, GateFull)
	err = g.Call(intruder, "svc", func() error {
		return sys.AS.Read(intruder.PKRU, secretPage, make([]byte, 6))
	})
	if err != nil {
		t.Fatalf("legitimate gated read failed: %v", err)
	}
}

func TestSGXBackend(t *testing.T) {
	sys := newSys(t, 2)
	b := NewSGX()
	initBackend(t, b, sys)
	th := sys.Sched.Spawn("app", 0)
	g, err := b.Gate(0, 1, GateDefault)
	if err != nil {
		t.Fatal(err)
	}
	// ECALL round trips dwarf even EPT RPC.
	if g.Cost() <= sys.Mach.Costs.EPTGate {
		t.Fatalf("SGX gate cost %d should exceed EPT's %d", g.Cost(), sys.Mach.Costs.EPTGate)
	}
	// Ecall-table enforcement.
	if err := g.Call(th, "rogue", func() error { return nil }); !mem.IsFault(err, mem.FaultCFI) {
		t.Fatalf("rogue ecall: %v", err)
	}
	if err := g.Call(th, "svc", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if b.ECalls() != 1 {
		t.Fatalf("ecalls = %d", b.ECalls())
	}
	// Registers are always scrubbed (no light flavor).
	th.Regs[0] = 0xBEEF
	var leaked uint64
	g.Call(th, "svc", func() error { leaked = th.Regs[0]; return nil })
	if leaked != 0 {
		t.Fatal("SGX gate leaked registers")
	}
	if b.Strength() != StrengthInterAS {
		t.Fatal("SGX must rank at inter-AS strength (protects against the TCB)")
	}
}

func TestSGXEnclaveMemoryHiddenFromDefaultCompartment(t *testing.T) {
	// Unlike MPK's TCB key 0 view, enclave pages are unreadable from
	// compartment 0's domain too: confidentiality against the host.
	sys := newSys(t, 2)
	b := NewSGX()
	initBackend(t, b, sys)
	encl := sys.Comps[1]
	page := uintptr(4 * mem.PageSize)
	if err := sys.AS.SetKeyRange(page, mem.PageSize, encl.Key); err != nil {
		t.Fatal(err)
	}
	host := sys.Sched.Spawn("host", 0)
	err := sys.AS.Read(host.PKRU, page, make([]byte, 8))
	if !mem.IsFault(err, mem.FaultKeyViolation) {
		t.Fatalf("host read of enclave memory: got %v, want fault", err)
	}
}
