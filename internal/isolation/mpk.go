package isolation

import (
	"fmt"

	"flexos/internal/mem"
	"flexos/internal/sched"
)

// MPKBackend implements isolation with Intel Memory Protection Keys
// (§4.1). Each compartment is associated with one protection key; key 15
// is reserved for the shared communication domain. The per-thread PKRU
// register is switched by gates on domain transitions and installed by
// scheduler hooks on thread creation and context switch.
//
// Because FlexOS loads no code after compilation, unauthorized wrpkru
// instructions are excluded by static binary analysis plus strict W^X
// (§4.1); the simulation models this by only ever mutating PKRU inside
// gate and hook code.
type MPKBackend struct {
	sys     *System
	nextKey mem.Key
	gates   uint64
	// restricted maps a canonical compartment-group string to the key
	// allocated for its restricted shared domain.
	restricted map[string]mem.Key
}

// NewMPK returns the Intel MPK backend.
func NewMPK() *MPKBackend { return &MPKBackend{} }

// Name implements Backend.
func (b *MPKBackend) Name() string { return "intel-mpk" }

// Strength implements Backend.
func (b *MPKBackend) Strength() Strength { return StrengthIntraAS }

// MaxCompartments implements Backend: 16 keys, minus the shared domain,
// leaves 15 (the paper: "if the image features less than 15 compartments,
// FlexOS uses remaining keys for additional shared domains").
func (b *MPKBackend) MaxCompartments() int { return 15 }

// Init implements Backend: assigns each compartment a key (compartment 0,
// holding the TCB, keeps key 0) and registers the PKRU-maintenance hooks.
func (b *MPKBackend) Init(sys *System) error {
	if b.sys != nil {
		return fmt.Errorf("isolation: mpk backend initialized twice")
	}
	if len(sys.Comps) > b.MaxCompartments() {
		return fmt.Errorf("isolation: mpk supports at most %d compartments, image has %d",
			b.MaxCompartments(), len(sys.Comps))
	}
	b.sys = sys
	b.nextKey = 1
	for _, c := range sys.Comps {
		if c.ID == 0 {
			c.Key = mem.KeyTCB
			continue
		}
		if b.nextKey >= mem.KeyShared {
			return fmt.Errorf("isolation: out of protection keys")
		}
		c.Key = b.nextKey
		b.nextKey++
	}
	sys.Sched.RegisterHooks(&mpkHooks{sys: sys})
	return nil
}

// mpkHooks is the backend's use of the kernel hook API: the thread
// creation hook switches a newly created thread to the right protection
// domain (the example given in §3.2), and the switch hook re-installs the
// incoming thread's PKRU, since PKRU is per-thread state.
type mpkHooks struct {
	sys *System
}

func (h *mpkHooks) ThreadCreated(t *sched.Thread) {
	if c := h.sys.Comp(t.Comp); c != nil {
		t.PKRU = c.PKRU()
	}
}

func (h *mpkHooks) ThreadSwitch(_, to *sched.Thread) {
	if to == nil {
		return
	}
	if c := h.sys.Comp(to.Comp); c != nil {
		to.PKRU = c.PKRU()
	}
}

// Gate implements Backend. GateDefault maps to the full gate; GateLight
// selects the ERIM-style shared-stack gate.
func (b *MPKBackend) Gate(from, to sched.CompID, mode GateMode) (Gate, error) {
	if b.sys == nil {
		return nil, fmt.Errorf("isolation: mpk backend not initialized")
	}
	if from == to {
		return NewFuncGate(b.sys.Mach), nil
	}
	src, dst := b.sys.Comp(from), b.sys.Comp(to)
	if src == nil || dst == nil {
		return nil, fmt.Errorf("isolation: gate between unknown compartments %d -> %d", from, to)
	}
	b.gates++
	light := mode == GateLight
	return &mpkGate{sys: b.sys, from: src, to: dst, light: light}, nil
}

// Stats implements Backend. The paper reports ~3000 LoC of TCB for MPK.
func (b *MPKBackend) Stats() ImageStats {
	return ImageStats{VMs: 1, TCBCopies: 1, TCBLoC: 3000}
}

// RestrictedDomain implements RestrictedSharer: it allocates one of the
// remaining protection keys for a shared domain covering exactly the
// given compartments, granting each of them access via ExtraKeys.
// Requests for the same group reuse the same key.
func (b *MPKBackend) RestrictedDomain(comps []sched.CompID) (mem.Key, bool) {
	if b.sys == nil || len(comps) == 0 {
		return 0, false
	}
	sorted := append([]sched.CompID(nil), comps...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	tag := ""
	for _, c := range sorted {
		tag += fmt.Sprintf("%d,", c)
	}
	if b.restricted == nil {
		b.restricted = make(map[string]mem.Key)
	}
	if k, ok := b.restricted[tag]; ok {
		return k, true
	}
	if b.nextKey >= mem.KeyShared {
		return 0, false // out of keys: caller falls back to the shared heap
	}
	k := b.nextKey
	b.nextKey++
	b.restricted[tag] = k
	for _, id := range sorted {
		if c := b.sys.Comp(id); c != nil {
			c.ExtraKeys = append(c.ExtraKeys, k)
		}
	}
	return k, true
}

// mpkGate is a bound MPK call gate. The full variant (§4.1) (1) saves the
// caller's register set, (2) clears registers, (3) loads arguments, (4)
// saves the stack pointer, (5) switches thread permissions, (6) switches
// the stack via the compartment's stack registry, and (7) executes the
// call; the sequence runs in reverse on return. The light variant only
// switches the PKRU around a normal call.
type mpkGate struct {
	sys   *System
	from  *Compartment
	to    *Compartment
	light bool
	calls uint64
}

// String implements Gate.
func (g *mpkGate) String() string {
	if g.light {
		return "mpk/light"
	}
	return "mpk/full"
}

// Cost implements Gate (Fig. 11b: 62 light, 108 full).
func (g *mpkGate) Cost() uint64 {
	if g.light {
		return g.sys.Mach.Costs.MPKLightGate()
	}
	return g.sys.Mach.Costs.MPKFullGate()
}

// Call implements Gate.
func (g *mpkGate) Call(t *sched.Thread, entry string, fn func() error) error {
	// Hardcoded gates mean compartments can only be entered at
	// well-defined points, an inexpensive form of CFI (§4.1).
	if !g.to.EntryPoints[entry] {
		return CFIFault(g.to.Name, entry)
	}
	g.calls++
	g.sys.Mach.Charge(g.Cost())

	savedPKRU, savedComp := t.PKRU, t.Comp
	var savedRegs [8]uint64
	var calleeStack *sched.Stack
	if !g.light {
		// Register isolation: save and zero the scratch file.
		savedRegs = t.Regs
		t.Regs = [8]uint64{}
		// Stack switch through the stack registry.
		if calleeStack = t.Stack(g.to.ID); calleeStack != nil {
			if err := calleeStack.PushFrame(g.to.PKRU(), false); err != nil {
				return err
			}
		}
	}
	t.PKRU = g.to.PKRU()
	t.Comp = g.to.ID

	err := fn()

	t.PKRU = savedPKRU
	t.Comp = savedComp
	if !g.light {
		if calleeStack != nil {
			if perr := calleeStack.PopFrame(g.to.PKRU()); perr != nil && err == nil {
				err = perr
			}
		}
		t.Regs = savedRegs
	}
	return err
}
