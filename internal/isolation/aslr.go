// Address-space layout randomization as an isolation dimension.
//
// FlexOS' safety ordering ranks mechanisms by an ordinal Strength; ASLR
// adds an orthogonal probabilistic axis: a compartment layout randomized
// with N bits of entropy forces an attacker to guess among 2^N placements
// before a ROP chain or absolute-address leak lands. Oreo (PAPERS.md)
// shows that this guarantee collapses under microarchitectural probing
// unless the mapping from virtual addresses to observable microarchitectural
// state is severed — which we model as the LeakResistant flag: without it,
// a probing attacker recovers half of the entropy bits before the attack
// proper starts.
package isolation

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ASLR describes the address-space randomization applied to an image. The
// zero value means randomization is disabled.
type ASLR struct {
	// EntropyBits is the number of random bits in compartment placement
	// (0 = off). Real systems sit between 8 (32-bit mmap) and 28+ (64-bit
	// PIE); the explorer treats it as a ladder of discrete levels.
	EntropyBits int

	// LeakResistant marks Oreo-style masked layouts whose entropy
	// survives microarchitectural probing. Without it, EffectiveBits
	// degrades under a probing attacker.
	LeakResistant bool
}

// MaxEntropyBits bounds EntropyBits; beyond ~40 bits survival saturates
// at 1 and the parser rejects the value as implausible.
const MaxEntropyBits = 40

// Enabled reports whether any randomization is applied.
func (a ASLR) Enabled() bool { return a.EntropyBits > 0 }

// Leq is the product order over the ASLR axis: a ≤ b iff b has at least
// as much entropy and is at least as leak-resistant. It is the relation
// the grouped safety poset composes with partition refinement and
// hardening subsetting — incomparable pairs (more entropy, less
// resistance) stay incomparable, exactly like mixed hardening sets.
func (a ASLR) Leq(b ASLR) bool {
	return a.EntropyBits <= b.EntropyBits && (!a.LeakResistant || b.LeakResistant)
}

// EffectiveBits is the entropy an attacker of the given capability must
// still brute-force. Non-probing attackers face the full entropy; a
// probing attacker (Oreo's threat model) recovers half the bits of a
// non-leak-resistant layout through microarchitectural side channels.
// Integer arithmetic keeps the result exact on every platform.
func (a ASLR) EffectiveBits(probing bool) int {
	if a.EntropyBits <= 0 {
		return 0
	}
	if probing && !a.LeakResistant {
		return a.EntropyBits / 2
	}
	return a.EntropyBits
}

// GuessProbability is the chance a single attacker guess defeats the
// randomization: exactly 2^-EffectiveBits, computed with math.Ldexp so
// the value is a bit-exact power of two on every platform (no
// transcendental functions — see DESIGN §12's determinism contract).
func (a ASLR) GuessProbability(probing bool) float64 {
	return math.Ldexp(1, -a.EffectiveBits(probing))
}

// String renders the axis in configuration syntax: "off", "16", or
// "16+leak" for a leak-resistant layout. ParseASLR inverts it.
func (a ASLR) String() string {
	if !a.Enabled() {
		return "off"
	}
	s := strconv.Itoa(a.EntropyBits)
	if a.LeakResistant {
		s += "+leak"
	}
	return s
}

// ParseASLR parses the configuration syntax accepted for the aslr axis:
// "" and "off" disable it, "N" enables N entropy bits, "N+leak" adds
// leak resistance. It round-trips with String.
func ParseASLR(s string) (ASLR, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	if t == "" || t == "off" || t == "none" {
		return ASLR{}, nil
	}
	leak := false
	if rest, ok := strings.CutSuffix(t, "+leak"); ok {
		leak = true
		t = rest
	}
	bits, err := strconv.Atoi(t)
	if err != nil {
		return ASLR{}, fmt.Errorf("isolation: bad aslr spec %q (want \"off\", \"N\" or \"N+leak\")", s)
	}
	if bits < 0 || bits > MaxEntropyBits {
		return ASLR{}, fmt.Errorf("isolation: aslr entropy %d out of range [0,%d]", bits, MaxEntropyBits)
	}
	if bits == 0 && leak {
		return ASLR{}, fmt.Errorf("isolation: aslr spec %q: leak resistance requires entropy bits", s)
	}
	return ASLR{EntropyBits: bits, LeakResistant: leak}, nil
}
