package explore

import (
	"strings"
	"testing"

	"flexos/internal/harden"
	"flexos/internal/isolation"
)

var fig6Comps = [4]string{"libredis", "newlib", "uksched", "lwip"}

func TestFig6SpaceSize(t *testing.T) {
	cfgs := Fig6Space(fig6Comps)
	// §6.2: "a total of 2x80 configurations" — 80 per application.
	if len(cfgs) != 80 {
		t.Fatalf("space size = %d, want 80", len(cfgs))
	}
	// 5 partitions x 16 hardening masks; partition sizes 1,2,2,2,3.
	compCount := map[int]int{}
	for _, c := range cfgs {
		compCount[c.NumCompartments()]++
	}
	if compCount[1] != 16 || compCount[2] != 48 || compCount[3] != 16 {
		t.Fatalf("compartment histogram = %v", compCount)
	}
	// IDs must be dense and in order.
	for i, c := range cfgs {
		if c.ID != i {
			t.Fatalf("config %d has ID %d", i, c.ID)
		}
	}
}

func TestFig5SpaceSize(t *testing.T) {
	cfgs := Fig5Space([]string{"a"}, []string{"b"})
	if len(cfgs) != 16 {
		t.Fatalf("Fig. 5 space = %d configs, want 16", len(cfgs))
	}
	p := Poset(cfgs)
	if err := p.CheckOrder(); err != nil {
		t.Fatal(err)
	}
	// The all-hardened config dominates everything: unique maximum.
	max := p.Maximal(func(*Config) bool { return true })
	if len(max) != 1 {
		t.Fatalf("maximal = %v, want unique top", max)
	}
	top := cfgs[max[0]]
	if top.Hardening["a"].Count() != 2 || top.Hardening["b"].Count() != 2 {
		t.Fatalf("top of the lattice = %s", top.Label())
	}
}

func TestLeqPartitionRefinement(t *testing.T) {
	cfgs := Fig6Space(fig6Comps)
	var a, e *Config // A: 1 comp, E: 3 comps, both unhardened
	for _, c := range cfgs {
		if c.HardenedCount() != 0 {
			continue
		}
		switch c.NumCompartments() {
		case 1:
			a = c
		case 3:
			e = c
		}
	}
	if a == nil || e == nil {
		t.Fatal("missing base configs")
	}
	if !Leq(a, e) {
		t.Fatal("1-compartment config must be <= 3-compartment config")
	}
	if Leq(e, a) {
		t.Fatal("refinement must be strict")
	}
}

func TestLeqIncomparablePartitions(t *testing.T) {
	cfgs := Fig6Space(fig6Comps)
	var b, c *Config // B: lwip split, C: sched split, unhardened
	for _, cf := range cfgs {
		if cf.HardenedCount() != 0 || cf.NumCompartments() != 2 {
			continue
		}
		if len(cf.Blocks[1]) == 1 && cf.Blocks[1][0] == "lwip" {
			b = cf
		}
		if len(cf.Blocks[1]) == 1 && cf.Blocks[1][0] == "uksched" {
			c = cf
		}
	}
	if b == nil || c == nil {
		t.Fatal("missing configs")
	}
	if Leq(b, c) || Leq(c, b) {
		t.Fatal("different 2-compartment splits must be incomparable")
	}
}

func TestLeqHardeningMonotone(t *testing.T) {
	cfgs := Fig6Space(fig6Comps)
	// Same partition, hardening mask 0 vs full.
	if !Leq(cfgs[0], cfgs[15]) {
		t.Fatal("unhardened <= fully hardened expected")
	}
	if Leq(cfgs[15], cfgs[0]) {
		t.Fatal("hardening order must be strict")
	}
	// Disjoint hardening masks are incomparable: mask 1 vs mask 2.
	if Leq(cfgs[1], cfgs[2]) || Leq(cfgs[2], cfgs[1]) {
		t.Fatal("disjoint hardening sets must be incomparable")
	}
}

func TestLeqMechanismStrength(t *testing.T) {
	a := &Config{Blocks: [][]string{{"x"}, {"y"}}, Hardening: map[string]harden.Set{}, Mechanism: "intel-mpk"}
	b := &Config{Blocks: [][]string{{"x"}, {"y"}}, Hardening: map[string]harden.Set{}, Mechanism: "vm-ept"}
	if !Leq(a, b) || Leq(b, a) {
		t.Fatal("MPK must be strictly below EPT at equal structure")
	}
}

func TestLeqSharingAndGateRank(t *testing.T) {
	mk := func(mode isolation.GateMode, sh isolation.Sharing) *Config {
		return &Config{
			Blocks:    [][]string{{"x"}, {"y"}},
			Hardening: map[string]harden.Set{},
			Mechanism: "intel-mpk", GateMode: mode, Sharing: sh,
		}
	}
	light := mk(isolation.GateLight, isolation.ShareStack)
	full := mk(isolation.GateFull, isolation.ShareDSS)
	if !Leq(light, full) || Leq(full, light) {
		t.Fatal("light/shared-stack must be strictly below full/DSS")
	}
}

func TestPosetIsValidOrder(t *testing.T) {
	cfgs := Fig6Space(fig6Comps)
	if err := Poset(cfgs).CheckOrder(); err != nil {
		t.Fatal(err)
	}
}

// syntheticMeasure assigns a deterministic performance that decreases
// with safety: compartments and hardened components cost throughput.
func syntheticMeasure(c *Config) (float64, error) {
	perf := 1000.0
	perf -= 150 * float64(c.NumCompartments()-1)
	perf -= 80 * float64(c.HardenedCount())
	return perf, nil
}

func TestRunExhaustive(t *testing.T) {
	cfgs := Fig6Space(fig6Comps)
	res, err := Run(cfgs, syntheticMeasure, 600, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 80 {
		t.Fatalf("exhaustive run evaluated %d, want 80", res.Evaluated)
	}
	if len(res.Safest) == 0 {
		t.Fatal("no safest configs found")
	}
	// Every safest config must meet the budget, and no strictly-safer
	// config may meet it.
	for _, i := range res.Safest {
		if res.Measurements[i].Perf < 600 {
			t.Fatalf("safest config %d below budget", i)
		}
		for _, j := range res.Poset().Above(i) {
			m := res.Measurements[j]
			if m.Evaluated && m.Perf >= 600 {
				t.Fatalf("config %d meets budget but dominates 'safest' %d", j, i)
			}
		}
	}
}

func TestRunPruningIsSoundAndSaves(t *testing.T) {
	cfgs := Fig6Space(fig6Comps)
	exhaustive, err := Run(cfgs, syntheticMeasure, 600, false)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Run(cfgs, syntheticMeasure, 600, true)
	if err != nil {
		t.Fatal(err)
	}
	// Same stars.
	if len(exhaustive.Safest) != len(pruned.Safest) {
		t.Fatalf("pruning changed the answer: %v vs %v", exhaustive.Safest, pruned.Safest)
	}
	for i := range exhaustive.Safest {
		if exhaustive.Safest[i] != pruned.Safest[i] {
			t.Fatalf("pruning changed the answer: %v vs %v", exhaustive.Safest, pruned.Safest)
		}
	}
	// Fewer measurements (§5: pruning "significantly limits
	// combinatorial explosion").
	if pruned.Evaluated >= exhaustive.Evaluated {
		t.Fatalf("pruning saved nothing: %d vs %d", pruned.Evaluated, exhaustive.Evaluated)
	}
}

func TestSpecMaterialization(t *testing.T) {
	cfgs := Fig6Space(fig6Comps)
	spec := cfgs[79].Spec([]string{"ukboot", "ukmm"}) // E partition, all hardened
	if len(spec.Comps) != 3 {
		t.Fatalf("spec comps = %d, want 3", len(spec.Comps))
	}
	if spec.Comps[0].Libs[0] != "ukboot" {
		t.Fatal("TCB libs must join the default compartment")
	}
	if spec.Mechanism != "intel-mpk" || spec.Sharing != isolation.ShareDSS {
		t.Fatalf("spec = %+v", spec)
	}
	found := false
	for _, hs := range spec.Comps[0].LibHardening {
		if !hs.Empty() {
			found = true
		}
	}
	if !found {
		t.Fatal("per-lib hardening lost in materialization")
	}
}

func TestLabel(t *testing.T) {
	cfgs := Fig6Space(fig6Comps)
	l := cfgs[16].Label() // B partition, mask 0
	if l == "" {
		t.Fatal("empty label")
	}
}

func TestResultDOT(t *testing.T) {
	cfgs := Fig6Space(fig6Comps)
	res, err := Run(cfgs, syntheticMeasure, 600, true)
	if err != nil {
		t.Fatal(err)
	}
	dot := res.DOT("redis")
	for _, want := range []string{"digraph", "doubleoctagon", "->"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q", want)
		}
	}
}
