package explore_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"flexos/internal/explore"
	"flexos/internal/explore/exploretest"
)

// Property tests for multi-constraint semantics: feasibility under
// several simultaneous constraints must be the intersection of the
// single-constraint feasible sets, and pruning must stay sound with
// mixed floor/ceiling constraints — all verified against the
// exploretest brute-force (exhaustive, unpruned) oracle on random
// spaces.

// TestMultiConstraintIsIntersection: for random spaces and random
// constraint pairs A, B, the feasible set of Constrain(A).Constrain(B)
// equals the intersection of the single-constraint feasible sets, and
// the engine's Safest equals the constraint-filtered maximal elements
// derived from the brute-force oracle.
func TestMultiConstraintIsIntersection(t *testing.T) {
	for seed := int64(100); seed < 115; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfgs := exploretest.RandomSpace(rng, 50)
		measure := exploretest.VectorMeasure(rng)

		oracle, err := explore.Engine{}.Run(context.Background(), explore.Request{Space: cfgs, Measure: measure})
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		a := exploretest.RandomConstraint(rng, oracle)
		b := exploretest.RandomConstraint(rng, oracle)

		run := func(cs ...explore.Constraint) *explore.Result {
			res, err := explore.Engine{}.Run(context.Background(), explore.Request{
				Space: exploretest.CopySpace(cfgs), Measure: measure, Constraints: cs, Workers: 4})
			if err != nil && !errors.Is(err, explore.ErrNoFeasible) {
				t.Fatalf("seed %d %v: %v", seed, cs, err)
			}
			return res
		}
		resA, resB, resAB := run(a), run(b), run(a, b)

		setA := exploretest.FeasibleSet(oracle, []explore.Constraint{a})
		setB := exploretest.FeasibleSet(oracle, []explore.Constraint{b})
		for i := range cfgs {
			wantA, wantB := setA[i], setB[i]
			if resA.Feasible(i) != wantA || resB.Feasible(i) != wantB {
				t.Fatalf("seed %d: config %d single-constraint feasibility diverges from oracle", seed, i)
			}
			if got, want := resAB.Feasible(i), wantA && wantB; got != want {
				t.Fatalf("seed %d: config %d: Feasible(A∧B)=%t, intersection=%t (A=%v B=%v)",
					seed, i, got, want, a, b)
			}
		}
		// Safest must be the maximal elements of the intersection.
		wantSafest := exploretest.SafestUnder(oracle, []explore.Constraint{a, b})
		if !reflect.DeepEqual(resAB.Safest, wantSafest) {
			t.Fatalf("seed %d: safest %v, oracle %v (A=%v B=%v)", seed, resAB.Safest, wantSafest, a, b)
		}
	}
}

// TestMixedConstraintPruningSoundVsBruteForce: with pruning enabled and
// a mix of natural (prunable) and unnatural constraints, the engine
// must (a) never prune a configuration the oracle deems feasible,
// (b) report exactly the oracle's safest set, and (c) agree with
// itself byte-for-byte across worker counts.
func TestMixedConstraintPruningSoundVsBruteForce(t *testing.T) {
	for seed := int64(200); seed < 215; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfgs := exploretest.RandomSpace(rng, 50)
		measure := exploretest.VectorMeasure(rng)

		oracle, err := explore.Engine{}.Run(context.Background(), explore.Request{Space: cfgs, Measure: measure})
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		ncons := rng.Intn(3) + 1
		var cs []explore.Constraint
		for i := 0; i < ncons; i++ {
			cs = append(cs, exploretest.RandomConstraint(rng, oracle))
		}
		feas := exploretest.FeasibleSet(oracle, cs)
		wantSafest := exploretest.SafestUnder(oracle, cs)

		var wantRender string
		for _, workers := range []int{1, 4, 8} {
			res, err := explore.Engine{}.Run(context.Background(), explore.Request{
				Space: exploretest.CopySpace(cfgs), Measure: measure, Constraints: cs,
				Workers: workers, Prune: true})
			if err != nil && !errors.Is(err, explore.ErrNoFeasible) {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			for i, m := range res.Measurements {
				if m.Pruned && feas[i] {
					t.Fatalf("seed %d workers %d: pruned feasible config %d under %v",
						seed, workers, i, cs)
				}
				if m.Evaluated && m.Metrics != oracle.Measurements[i].Metrics {
					t.Fatalf("seed %d workers %d: config %d vector diverges from oracle", seed, workers, i)
				}
			}
			if !reflect.DeepEqual(res.Safest, wantSafest) {
				t.Fatalf("seed %d workers %d: safest %v, oracle %v under %v",
					seed, workers, res.Safest, wantSafest, cs)
			}
			if wantRender == "" {
				wantRender = exploretest.RenderResult(res)
			} else if d := exploretest.RenderResult(res); d != wantRender {
				t.Fatalf("seed %d workers %d: pruned multi-constraint run not deterministic", seed, workers)
			}
		}
	}
}
