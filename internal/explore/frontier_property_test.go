package explore

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"testing"
)

// Property tests for the bitset-frontier engine: a reference explorer
// that keeps its decided / valued / budget-violation frontiers in plain
// maps (the representation the engine had before bitsets) and walks the
// full allocating Leq poset must agree with Engine.Run byte for byte —
// same measurements, same prune decisions, same safest set — on random
// spaces, random budgets and every worker count.

// refOutcome is the reference explorer's per-configuration record,
// mirroring the fields of Measurement that the determinism contract
// covers.
type refOutcome struct {
	perf      float64
	metrics   Metrics
	evaluated bool
	pruned    bool
	cached    bool
}

// mapFrontierReference is the oracle: a sequential explorer with
// map-backed frontiers over the full space-wide poset. It reproduces
// the engine's decision semantics — canonical-twin dedup, monotone
// pruning gated on fully-decided predecessor sets — with none of its
// machinery: no bitsets, no groups, no signatures, no batching.
func mapFrontierReference(cfgs []*Config, measure MeasureMetrics, metric Metric, constraints []Constraint, prune bool) ([]refOutcome, []int, int, int) {
	n := len(cfgs)
	p := Poset(cfgs)
	preds := make([][]int, n)
	for _, e := range p.Edges() {
		preds[e[1]] = append(preds[e[1]], e[0])
	}
	canon := make([]int, n)
	first := map[string]int{}
	for i, c := range cfgs {
		k := c.Key()
		if f, ok := first[k]; ok {
			canon[i] = f
		} else {
			first[k] = i
			canon[i] = i
		}
	}

	out := make([]refOutcome, n)
	decided := map[int]bool{}
	valued := map[int]bool{}
	failsBudget := map[int]bool{}
	evaluated, memoHits := 0, 0
	for len(decided) < n {
		progress := false
		for i := 0; i < n; i++ {
			if decided[i] {
				continue
			}
			ready := true
			for _, pr := range preds[i] {
				if !decided[pr] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			progress = true
			if prune {
				prunedHere := false
				for _, pr := range preds[i] {
					if failsBudget[pr] {
						prunedHere = true
						break
					}
				}
				if prunedHere {
					out[i].pruned = true
					failsBudget[i] = true
					decided[i] = true
					continue
				}
			}
			var mx Metrics
			if c := canon[i]; c != i && valued[c] {
				mx = out[c].metrics
				out[i].cached = true
				memoHits++
			} else {
				mx, _ = measure(cfgs[i])
				evaluated++
			}
			out[i].metrics = mx
			out[i].perf = metric.Value(mx)
			out[i].evaluated = true
			valued[i] = true
			if failsMonotone(constraints, mx) {
				failsBudget[i] = true
			}
			decided[i] = true
		}
		if !progress {
			panic("reference explorer wedged: cycle in poset")
		}
	}
	safest := p.Maximal(func(c *Config) bool {
		for i := range cfgs {
			if cfgs[i] == c {
				return out[i].evaluated && meetsAll(constraints, out[i].metrics)
			}
		}
		return false
	})
	sort.Ints(safest)
	return out, safest, evaluated, memoHits
}

// renderReference and renderResult serialize the oracle's and the
// engine's view of a run into the same textual report, so equality can
// be asserted byte for byte rather than field by field.
func renderReference(out []refOutcome, safest []int, evaluated, memoHits int) string {
	var b strings.Builder
	for i, o := range out {
		fmt.Fprintf(&b, "%d perf=%.9g eval=%t pruned=%t cached=%t mx=%+v\n",
			i, o.perf, o.evaluated, o.pruned, o.cached, o.metrics)
	}
	fmt.Fprintf(&b, "safest=%v evaluated=%d memohits=%d\n", safest, evaluated, memoHits)
	return b.String()
}

func renderResult(res *Result) string {
	var b strings.Builder
	for i := range res.Measurements {
		m := &res.Measurements[i]
		fmt.Fprintf(&b, "%d perf=%.9g eval=%t pruned=%t cached=%t mx=%+v\n",
			i, m.Perf, m.Evaluated, m.Pruned, m.Cached, m.Metrics)
	}
	fmt.Fprintf(&b, "safest=%v evaluated=%d memohits=%d\n", res.Safest, res.Evaluated, res.MemoHits)
	return b.String()
}

// TestBitsetFrontiersMatchMapFrontierOracle is the frontier property:
// on random spaces with random monotone measures, random budgets and
// every worker count, the bitset-frontier engine's report must be
// byte-identical to the map-frontier oracle's — including which
// configurations were pruned, which were twin-filled, and which are
// safest.
func TestBitsetFrontiersMatchMapFrontierOracle(t *testing.T) {
	workerCounts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	for seed := int64(100); seed < 115; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfgs := randomSpace(rng, 80)
		scalar := monotoneMeasure(rng)
		measure := liftMeasure(scalar)

		perfs := make([]float64, len(cfgs))
		for i, c := range cfgs {
			perfs[i], _ = scalar(c)
		}
		sorted := append([]float64(nil), perfs...)
		sort.Float64s(sorted)
		budgets := []float64{sorted[0] - 1, sorted[len(sorted)/2], sorted[len(sorted)-1] + 1}

		for _, budget := range budgets {
			for _, prune := range []bool{false, true} {
				constraints := []Constraint{BudgetConstraint("throughput", budget)}
				out, safest, evaluated, memoHits := mapFrontierReference(cfgs, measure, "throughput", constraints, prune)
				want := renderReference(out, safest, evaluated, memoHits)
				for _, workers := range workerCounts {
					res, err := runForTest(t, cfgs, measure, constraints, workers, prune)
					if err != nil {
						t.Fatalf("seed %d budget %v prune %t workers %d: %v", seed, budget, prune, workers, err)
					}
					if got := renderResult(res); got != want {
						t.Fatalf("seed %d budget %v prune %t workers %d: report diverges from map-frontier oracle\n--- engine ---\n%s--- oracle ---\n%s",
							seed, budget, prune, workers, got, want)
					}
				}
			}
		}
	}
}

func runForTest(t *testing.T, cfgs []*Config, measure MeasureMetrics, constraints []Constraint, workers int, prune bool) (*Result, error) {
	t.Helper()
	res, err := Engine{}.Run(t.Context(), Request{
		Space:       randomSpaceCopy(cfgs),
		Measure:     measure,
		Metric:      "throughput",
		Constraints: constraints,
		Workers:     workers,
		Prune:       prune,
	})
	return res, ignoreNoFeasible(err)
}

// TestSafetyLevelsMatchFlatPoset pins the grouped level computation to
// the flat-poset grading it replaced: on random spaces the engine's
// SafetyLevels (grouped Hasse edges) must equal the levels of the full
// space-wide poset.
func TestSafetyLevelsMatchFlatPoset(t *testing.T) {
	for seed := int64(200); seed < 210; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfgs := randomSpace(rng, 70)
		res, err := Engine{}.Run(t.Context(), Request{
			Space: cfgs, Measure: liftMeasure(monotoneMeasure(rng)), Workers: 4,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got := res.SafetyLevels()

		flat := &Result{Measurements: res.Measurements, Total: res.Total}
		want := flat.SafetyLevels() // order==nil: flat-poset fallback path
		if len(got) != len(want) {
			t.Fatalf("seed %d: level lengths %d vs %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: level[%d] = %d, flat poset says %d", seed, i, got[i], want[i])
			}
		}
	}
}
