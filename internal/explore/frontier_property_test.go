package explore_test

import (
	"errors"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"flexos/internal/explore"
	"flexos/internal/explore/exploretest"
)

// Property tests for the bitset-frontier engine: the exploretest
// reference explorer — map-backed frontiers over the full allocating
// Leq poset, the representation the engine had before bitsets — must
// agree with Engine.Run byte for byte — same measurements, same prune
// decisions, same safest set — on random spaces, random budgets and
// every worker count.

// TestBitsetFrontiersMatchMapFrontierOracle is the frontier property:
// on random spaces with random monotone measures, random budgets and
// every worker count, the bitset-frontier engine's report must be
// byte-identical to the map-frontier oracle's — including which
// configurations were pruned, which were twin-filled, and which are
// safest.
func TestBitsetFrontiersMatchMapFrontierOracle(t *testing.T) {
	workerCounts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	for seed := int64(100); seed < 115; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfgs := exploretest.RandomSpace(rng, 80)
		scalar := exploretest.MonotoneMeasure(rng)
		measure := exploretest.Lift(scalar)

		perfs := make([]float64, len(cfgs))
		for i, c := range cfgs {
			perfs[i], _ = scalar(c)
		}
		sorted := append([]float64(nil), perfs...)
		sort.Float64s(sorted)
		budgets := []float64{sorted[0] - 1, sorted[len(sorted)/2], sorted[len(sorted)-1] + 1}

		for _, budget := range budgets {
			for _, prune := range []bool{false, true} {
				constraints := []explore.Constraint{explore.BudgetConstraint("throughput", budget)}
				want := exploretest.Reference(cfgs, measure, "throughput", constraints, prune).Render()
				for _, workers := range workerCounts {
					res, err := runForTest(t, cfgs, measure, constraints, workers, prune)
					if err != nil {
						t.Fatalf("seed %d budget %v prune %t workers %d: %v", seed, budget, prune, workers, err)
					}
					if got := exploretest.RenderResult(res); got != want {
						t.Fatalf("seed %d budget %v prune %t workers %d: report diverges from map-frontier oracle\n--- engine ---\n%s--- oracle ---\n%s",
							seed, budget, prune, workers, got, want)
					}
				}
			}
		}
	}
}

func runForTest(t *testing.T, cfgs []*explore.Config, measure explore.MeasureMetrics, constraints []explore.Constraint, workers int, prune bool) (*explore.Result, error) {
	t.Helper()
	res, err := explore.Engine{}.Run(t.Context(), explore.Request{
		Space:       exploretest.CopySpace(cfgs),
		Measure:     measure,
		Metric:      "throughput",
		Constraints: constraints,
		Workers:     workers,
		Prune:       prune,
	})
	if errors.Is(err, explore.ErrNoFeasible) {
		err = nil
	}
	return res, err
}

// TestSafetyLevelsMatchFlatPoset pins the grouped level computation to
// the flat-poset grading it replaced: on random spaces the engine's
// SafetyLevels (grouped Hasse edges) must equal the levels of the full
// space-wide poset.
func TestSafetyLevelsMatchFlatPoset(t *testing.T) {
	for seed := int64(200); seed < 210; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfgs := exploretest.RandomSpace(rng, 70)
		res, err := explore.Engine{}.Run(t.Context(), explore.Request{
			Space: cfgs, Measure: exploretest.Lift(exploretest.MonotoneMeasure(rng)), Workers: 4,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got := res.SafetyLevels()

		flat := &explore.Result{Measurements: res.Measurements, Total: res.Total}
		want := flat.SafetyLevels() // order-free Result: flat-poset fallback path
		if len(got) != len(want) {
			t.Fatalf("seed %d: level lengths %d vs %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: level[%d] = %d, flat poset says %d", seed, i, got[i], want[i])
			}
		}
	}
}
