package explore_test

import (
	"context"
	"reflect"
	"testing"

	"flexos/internal/explore"
	"flexos/internal/explore/exploretest"
	"flexos/internal/isolation"
	"flexos/internal/synth"
)

// Delta re-exploration property: after a space edit (configurations
// removed, added, and retuned), a DeltaOnly run over the edited space
// re-measures exactly the configurations whose canonical key the store
// has never seen — no more, no less, asserted through the backing's
// store log — and the merged store then warm-starts a full run whose
// report equals the cold run over the edited space.

// keySet folds a MapBacking's store log into a set.
func keySet(keys []string) map[string]bool {
	s := make(map[string]bool, len(keys))
	for _, k := range keys {
		s[k] = true
	}
	return s
}

func TestDeltaRunRemeasuresExactlyTheEditedKeys(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		measure := synth.Measure(seed)
		v1 := synth.Space(seed, 200)

		run := func(space []*explore.Config, memo *explore.Memo, delta bool) *explore.Result {
			t.Helper()
			res, err := explore.Engine{}.Run(context.Background(), explore.Request{
				Space: space, Measure: measure, Workers: 4, Memo: memo, DeltaOnly: delta,
			})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return res
		}

		b1 := exploretest.NewMapBacking()
		run(exploretest.CopySpace(v1), explore.NewBackedMemo(b1), false)
		v1Keys := keySet(b1.StoredKeys())

		// The edit: drop every 7th configuration, extend the space with
		// the next 60 points of the generator (Space(seed, m) is a prefix
		// of Space(seed, n), so these are genuinely new configurations),
		// and retune every 11th multi-compartment survivor by flipping its
		// gate mode (gate is part of the canonical key, so a retuned copy
		// is a changed point, not a twin).
		var v2 []*explore.Config
		for i, c := range v1 {
			if i%7 == 0 {
				continue
			}
			v2 = append(v2, c)
		}
		v2 = append(v2, synth.Space(seed, 260)[200:260]...)
		retuned := 0
		for i, c := range v1 {
			if i%11 != 0 || i%7 == 0 || c.NumCompartments() == 1 {
				continue
			}
			cc := *c
			if cc.GateMode == isolation.GateLight {
				cc.GateMode = isolation.GateFull
			} else {
				cc.GateMode = isolation.GateLight
			}
			v2 = append(v2, &cc)
			retuned++
		}
		if retuned == 0 {
			t.Fatalf("seed %d: the edit retuned nothing; the mutation schedule is broken", seed)
		}

		// Ground truth for "what changed": a cold run of the edited space
		// into a fresh backing stores every V2 key once; the edited keys
		// are those V1 never stored.
		b2 := exploretest.NewMapBacking()
		cold := run(exploretest.CopySpace(v2), explore.NewBackedMemo(b2), false)
		v2Keys := b2.StoredKeys()
		wantNew := make(map[string]bool)
		for _, k := range v2Keys {
			if !v1Keys[k] {
				wantNew[k] = true
			}
		}
		if len(wantNew) == 0 || len(wantNew) == len(v2Keys) {
			t.Fatalf("seed %d: degenerate edit (%d of %d keys new)", seed, len(wantNew), len(v2Keys))
		}

		// The delta run over the V1 store: exactly the edited keys are
		// measured and stored, everything else is skipped unread.
		before := keySet(b1.StoredKeys())
		res := run(exploretest.CopySpace(v2), explore.NewBackedMemo(b1), true)
		stored := make(map[string]bool)
		for _, k := range b1.StoredKeys() {
			if !before[k] {
				stored[k] = true
			}
		}
		if !reflect.DeepEqual(stored, wantNew) {
			t.Fatalf("seed %d: delta run stored %d keys, want the %d edited ones", seed, len(stored), len(wantNew))
		}
		if res.Evaluated != len(wantNew) {
			t.Fatalf("seed %d: delta run evaluated %d configs, want %d (the edited ones)", seed, res.Evaluated, len(wantNew))
		}
		if want := len(v2) - len(wantNew); res.Skipped != want {
			t.Fatalf("seed %d: delta run skipped %d configs, want %d (the unchanged ones)", seed, res.Skipped, want)
		}
		for i, m := range res.Measurements {
			if m.Evaluated && m.Metrics != cold.Measurements[i].Metrics {
				t.Fatalf("seed %d: delta-measured config %d diverges from the cold run", seed, i)
			}
		}

		// The merged store (V1 results + the delta) must warm-start a
		// full run of the edited space: nothing fresh, and a report equal
		// to the cold run's — the delta plus the store is the full rerun.
		warm := run(exploretest.CopySpace(v2), explore.NewBackedMemo(b1), false)
		if warm.Evaluated != 0 {
			t.Fatalf("seed %d: warm merged run measured %d fresh configs", seed, warm.Evaluated)
		}
		if !reflect.DeepEqual(warm.Safest, cold.Safest) {
			t.Fatalf("seed %d: merged safest %v, cold %v", seed, warm.Safest, cold.Safest)
		}
		for i := range cold.Measurements {
			a, b := warm.Measurements[i], cold.Measurements[i]
			if a.Perf != b.Perf || a.Metrics != b.Metrics || a.Evaluated != b.Evaluated || a.Pruned != b.Pruned {
				t.Fatalf("seed %d: merged measurement %d diverges from the cold run: %+v vs %+v", seed, i, a, b)
			}
		}
	}
}
