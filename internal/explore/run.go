package explore

import (
	"fmt"
	"sort"

	"flexos/internal/poset"
	"flexos/internal/scenario"
)

// Metrics is the full metric vector a measurement produces; Metric
// selects the dimension a budget is expressed on. Both are aliases of
// the scenario package's types, so scenario workloads plug into the
// engine directly.
type (
	Metrics = scenario.Metrics
	Metric  = scenario.Metric
)

// Measure benchmarks one configuration and returns its performance
// metric (higher is better: requests/s, Gb/s, 1/latency — any metric
// "comparable across configurations and runs", §5). It is the scalar
// form; MeasureMetrics is the multi-metric one.
type Measure func(*Config) (float64, error)

// MeasureMetrics benchmarks one configuration and returns its full
// metric vector (throughput, latency percentiles, peak memory, boot
// cost). The engine budgets on one dimension — the run's Metric — and
// carries the whole vector through results, memos and Pareto frontiers.
type MeasureMetrics func(*Config) (Metrics, error)

// liftMeasure adapts a scalar measure into a metric-vector measure with
// only the throughput dimension populated.
func liftMeasure(measure Measure) MeasureMetrics {
	return func(c *Config) (Metrics, error) {
		v, err := measure(c)
		if err != nil {
			return Metrics{}, err
		}
		return Metrics{Throughput: v}, nil
	}
}

// Measurement is one labeled poset node.
type Measurement struct {
	Config *Config
	// Perf is the budget metric's value in natural units (0 when
	// pruned): for the default throughput metric, operations per
	// second; for latency metrics, microseconds; for mem/boot, bytes
	// and cycles.
	Perf float64
	// Metrics is the full metric vector of the measurement (zero when
	// pruned, or when a scalar Measure produced only Perf — then just
	// the throughput dimension is populated).
	Metrics Metrics
	// Evaluated is false when monotonic pruning skipped the run.
	Evaluated bool
	// Pruned is true when a less-safe ancestor already missed the
	// budget, so this config could not meet it either.
	Pruned bool
	// Cached is true when the parallel engine filled the vector from a
	// memo hit or from an identical configuration instead of a fresh
	// run.
	Cached bool
}

// Result is a full exploration outcome.
type Result struct {
	// Measurements holds one entry per configuration, in input order.
	Measurements []Measurement
	// Safest are the indices of the safest configurations meeting the
	// budget — the maximal elements of the budget-filtered poset (the
	// stars of Figure 8).
	Safest []int
	// Evaluated counts actually-run benchmarks; Total is the space
	// size. Their ratio quantifies the §5 claim that pruning
	// "significantly limits combinatorial explosion".
	Evaluated, Total int
	// MemoHits counts configurations whose value came from the memo or
	// an identical twin within the space instead of a fresh run
	// (parallel engine only; always 0 for the sequential reference).
	MemoHits int
	// Budget echoes the performance floor (or, for lower-is-better
	// metrics, ceiling) used; Metric the dimension it applies to.
	Budget float64
	Metric Metric

	poset *poset.Poset[*Config]
}

// Poset returns the safety poset underlying the result.
func (r *Result) Poset() *poset.Poset[*Config] { return r.poset }

// Run is the sequential reference engine: it builds the safety poset,
// walks it from the least-safe configurations upward, measures each
// configuration with measure, and — when prune is true — skips any
// configuration one of whose strictly-less-safe ancestors already fell
// below the budget (sound under the §5 assumption that performance
// decreases monotonically with safety).
//
// Production callers should prefer RunOpts, the parallel memoized
// engine, which returns byte-identical results; Run survives as the
// independent oracle the engine's tests compare against.
func Run(cfgs []*Config, measure Measure, budget float64, prune bool) (*Result, error) {
	return RunMetricsSequential(cfgs, liftMeasure(measure), scenario.MetricThroughput, budget, prune)
}

// RunMetricsSequential is the sequential reference engine for
// multi-metric measurement: like Run, but carrying full metric vectors
// and budgeting on the chosen metric. For lower-is-better metrics
// (latency percentiles, memory, boot) the budget is a ceiling and
// pruning cuts configurations whose less-safe ancestor already exceeds
// it — sound under the same monotonicity assumption, since every cost
// metric worsens with safety. It is the oracle RunMetrics' tests
// compare against.
func RunMetricsSequential(cfgs []*Config, measure MeasureMetrics, metric Metric, budget float64, prune bool) (*Result, error) {
	if metric == "" {
		metric = scenario.MetricThroughput
	}
	p := Poset(cfgs)
	res := &Result{
		Measurements: make([]Measurement, len(cfgs)),
		Total:        len(cfgs),
		Budget:       budget,
		Metric:       metric,
		poset:        p,
	}
	for i, c := range cfgs {
		res.Measurements[i].Config = c
	}

	// Predecessor lists from the covering relation.
	preds := make([][]int, len(cfgs))
	for _, e := range p.Edges() {
		preds[e[1]] = append(preds[e[1]], e[0])
	}

	failsBudget := make([]bool, len(cfgs))
	for _, i := range p.TopoOrder() {
		if prune {
			skip := false
			for _, pr := range preds[i] {
				if failsBudget[pr] {
					skip = true
					break
				}
			}
			if skip {
				res.Measurements[i].Pruned = true
				failsBudget[i] = true // propagate
				continue
			}
		}
		mx, err := measure(cfgs[i])
		if err != nil {
			return nil, fmt.Errorf("explore: measuring config %d (%s): %w", cfgs[i].ID, cfgs[i].Label(), err)
		}
		res.Measurements[i].Metrics = mx
		res.Measurements[i].Perf = metric.Value(mx)
		res.Measurements[i].Evaluated = true
		res.Evaluated++
		if !metric.Meets(res.Measurements[i].Perf, budget) {
			failsBudget[i] = true
		}
	}

	res.Safest = safest(p, res, metric, budget)
	return res, nil
}

// safest computes the budget-filtered maximal elements: the safest
// configurations whose budget-metric value meets the budget. Pruned
// nodes cannot meet it by the monotonicity assumption.
func safest(p *poset.Poset[*Config], res *Result, metric Metric, budget float64) []int {
	index := make(map[*Config]int, len(res.Measurements))
	for i := range res.Measurements {
		index[res.Measurements[i].Config] = i
	}
	out := p.Maximal(func(c *Config) bool {
		m := res.Measurements[index[c]]
		return m.Evaluated && metric.Meets(m.Perf, budget)
	})
	sort.Ints(out)
	return out
}

// SafestConfigs dereferences Result.Safest.
func (r *Result) SafestConfigs() []*Config {
	var out []*Config
	for _, i := range r.Safest {
		out = append(out, r.Measurements[i].Config)
	}
	return out
}

// String summarizes the exploration.
func (r *Result) String() string {
	return fmt.Sprintf("explored %d/%d configurations, %d safest under budget %.0f",
		r.Evaluated, r.Total, len(r.Safest), r.Budget)
}

// DOT renders the exploration result as a Graphviz Hasse diagram:
// node shade encodes performance (black = fastest, like Figure 8),
// double octagons mark the safest-under-budget configurations, dashed
// nodes were pruned.
func (r *Result) DOT(name string) string {
	metric := r.Metric
	if metric == "" {
		metric = scenario.MetricThroughput
	}
	var max float64
	for _, m := range r.Measurements {
		if m.Perf > max {
			max = m.Perf
		}
	}
	stars := make(map[int]bool, len(r.Safest))
	for _, i := range r.Safest {
		stars[i] = true
	}
	return r.poset.DOT(name, func(i int, c *Config) poset.DOTNode {
		m := r.Measurements[i]
		shade := 0.0
		if max > 0 {
			shade = m.Perf / max
			if !metric.HigherIsBetter() {
				shade = 1 - shade
			}
		}
		return poset.DOTNode{
			Label:  c.Label(),
			Shade:  shade,
			Star:   stars[i],
			Pruned: m.Pruned || (m.Evaluated && !metric.Meets(m.Perf, r.Budget)),
		}
	})
}
