package explore

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"flexos/internal/poset"
	"flexos/internal/scenario"
)

// Metrics is the full metric vector a measurement produces; Metric
// selects the dimension a budget is expressed on. Both are aliases of
// the scenario package's types, so scenario workloads plug into the
// engine directly.
type (
	Metrics = scenario.Metrics
	Metric  = scenario.Metric
)

// Measure benchmarks one configuration and returns its performance
// metric (higher is better: requests/s, Gb/s, 1/latency — any metric
// "comparable across configurations and runs", §5). It is the scalar
// form; MeasureMetrics is the multi-metric one.
type Measure func(*Config) (float64, error)

// MeasureMetrics benchmarks one configuration and returns its full
// metric vector (throughput, latency percentiles, peak memory, boot
// cost). The engine constrains and ranks on chosen dimensions and
// carries the whole vector through results, memos and Pareto frontiers.
type MeasureMetrics func(*Config) (Metrics, error)

// liftMeasure adapts a scalar measure into a metric-vector measure with
// only the throughput dimension populated.
func liftMeasure(measure Measure) MeasureMetrics {
	return func(c *Config) (Metrics, error) {
		v, err := measure(c)
		if err != nil {
			return Metrics{}, err
		}
		return Metrics{Throughput: v}, nil
	}
}

// Measurement is one labeled poset node.
type Measurement struct {
	Config *Config
	// Perf is the ranking metric's value in natural units (0 when
	// pruned): for the default throughput metric, operations per
	// second; for latency metrics, microseconds; for mem/boot, bytes
	// and cycles.
	Perf float64
	// Metrics is the full metric vector of the measurement (zero when
	// pruned, or when a scalar Measure produced only Perf — then just
	// the throughput dimension is populated).
	Metrics Metrics
	// Evaluated is false when monotonic pruning skipped the run.
	Evaluated bool
	// Pruned is true when a less-safe ancestor already violated a
	// monotone constraint, so this config could not satisfy it either.
	Pruned bool
	// Cached is true when the engine filled the vector from a memo hit
	// or from an identical configuration instead of a fresh run.
	Cached bool
}

// Result is a full exploration outcome.
type Result struct {
	// Measurements holds one entry per configuration, in input order.
	Measurements []Measurement
	// Safest are the indices of the safest feasible configurations —
	// the maximal elements of the constraint-filtered poset (the stars
	// of Figure 8).
	Safest []int
	// Evaluated counts actually-run benchmarks; Total is the space
	// size. Their ratio quantifies the §5 claim that pruning
	// "significantly limits combinatorial explosion".
	Evaluated, Total int
	// MemoHits counts configurations whose value came from the memo or
	// an identical twin within the space instead of a fresh run.
	MemoHits int
	// Measured counts fresh measure-function calls the run spent. In
	// exhaustive runs it equals Evaluated; in budgeted runs it also
	// counts boundary probes whose measurement failed a monotone
	// constraint and was recorded as a prune decision — the currency
	// Request.MeasureBudget caps.
	Measured int
	// Skipped counts configurations the run decided without a value:
	// beyond the measurement budget (budgeted search) or already
	// present in the store (delta re-exploration). Always 0 for
	// exhaustive runs.
	Skipped int
	// Constraints echoes the feasibility conjunction of the run.
	Constraints []Constraint
	// Budget echoes the ranking metric's bound when one of the
	// constraints applies to it (legacy single-budget callers); Metric
	// is the ranking dimension Perf reports.
	Budget float64
	Metric Metric
	// Shard echoes the space slice the run covered (zero: the whole
	// space). Measurements and Total describe only that slice.
	Shard Shard

	// order is the engine's grouped safety order of the explored space
	// (signatures + per-group posets); poset is the flat *Config poset
	// some external consumers want, built lazily from the measurements
	// on first Poset() call — the engine itself never materializes it.
	order *spaceOrder
	poset *poset.Poset[*Config]
}

// Poset returns the safety poset underlying the result. It is built on
// first use (the engine plans over a grouped decomposition instead, so
// most runs never pay for the flat space-wide poset). Not safe for
// concurrent first calls; results are normally consumed from one
// goroutine.
func (r *Result) Poset() *poset.Poset[*Config] {
	if r.poset == nil {
		cfgs := make([]*Config, len(r.Measurements))
		for i := range r.Measurements {
			cfgs[i] = r.Measurements[i].Config
		}
		r.poset = Poset(cfgs)
	}
	return r.poset
}

// Feasible reports whether measurement i was evaluated and satisfies
// every constraint of the run.
func (r *Result) Feasible(i int) bool {
	m := r.Measurements[i]
	return m.Evaluated && meetsAll(r.Constraints, m.Metrics)
}

// Run is the sequential form of the engine: one worker, no memo.
//
// Deprecated: use Engine.Run with Workers: 1, or a flexos.Query; Run
// survives as a compile-compatible wrapper (and as the tests'
// single-worker reference invocation).
func Run(cfgs []*Config, measure Measure, budget float64, prune bool) (*Result, error) {
	return RunMetricsSequential(cfgs, liftMeasure(measure), scenario.MetricThroughput, budget, prune)
}

// RunMetricsSequential is the sequential multi-metric form of the
// engine: one worker, full metric vectors, a single natural-direction
// budget on the chosen metric.
//
// Deprecated: use Engine.Run with Workers: 1 and explicit Constraints,
// or a flexos.Query.
func RunMetricsSequential(cfgs []*Config, measure MeasureMetrics, metric Metric, budget float64, prune bool) (*Result, error) {
	res, err := Engine{}.Run(context.Background(), Request{
		Space: cfgs, Measure: measure, Metric: metric, Workers: 1, Prune: prune,
		Constraints: []Constraint{BudgetConstraint(metric, budget)}})
	return res, ignoreNoFeasible(err)
}

// RunOpts explores a configuration space with the engine under the
// legacy scalar single-budget surface.
//
// Deprecated: use Engine.Run with a Request, or a flexos.Query.
func RunOpts(cfgs []*Config, measure Measure, budget float64, opts Options) (*Result, error) {
	return RunMetrics(cfgs, liftMeasure(measure), scenario.MetricThroughput, budget, opts)
}

// RunMetrics explores a configuration space with full metric vectors
// and a single natural-direction budget on the chosen metric (a floor
// for throughput, a ceiling for latency/memory/boot).
//
// Deprecated: use Engine.Run with a Request carrying Constraints, or a
// flexos.Query.
func RunMetrics(cfgs []*Config, measure MeasureMetrics, metric Metric, budget float64, opts Options) (*Result, error) {
	res, err := Engine{}.Run(context.Background(), Request{
		Space: cfgs, Measure: measure, Metric: metric, Workers: opts.Workers, Prune: opts.Prune,
		Memo: opts.Memo, Workload: opts.Workload, Progress: opts.Progress,
		Constraints: []Constraint{BudgetConstraint(metric, budget)}})
	return res, ignoreNoFeasible(err)
}

// ignoreNoFeasible restores the legacy contract of the Run* wrappers:
// an infeasible-but-complete run is not an error, just an empty Safest.
func ignoreNoFeasible(err error) error {
	if errors.Is(err, ErrNoFeasible) {
		return nil
	}
	return err
}

// safest computes the constraint-filtered maximal elements: the safest
// configurations whose metric vectors satisfy every constraint. Pruned
// nodes cannot be feasible by the monotonicity assumption.
func safest(p *poset.Poset[*Config], res *Result) []int {
	index := make(map[*Config]int, len(res.Measurements))
	for i := range res.Measurements {
		index[res.Measurements[i].Config] = i
	}
	out := p.Maximal(func(c *Config) bool {
		return res.Feasible(index[c])
	})
	sort.Ints(out)
	return out
}

// SafestConfigs dereferences Result.Safest.
func (r *Result) SafestConfigs() []*Config {
	var out []*Config
	for _, i := range r.Safest {
		out = append(out, r.Measurements[i].Config)
	}
	return out
}

// String summarizes the exploration.
func (r *Result) String() string {
	return fmt.Sprintf("explored %d/%d configurations, %d safest under budget %.0f",
		r.Evaluated, r.Total, len(r.Safest), r.Budget)
}

// DOT renders the exploration result as a Graphviz Hasse diagram:
// node shade encodes performance (black = fastest, like Figure 8),
// double octagons mark the safest feasible configurations, dashed
// nodes were pruned or infeasible.
func (r *Result) DOT(name string) string {
	metric := r.Metric
	if metric == "" {
		metric = scenario.MetricThroughput
	}
	var max float64
	for _, m := range r.Measurements {
		if m.Perf > max {
			max = m.Perf
		}
	}
	stars := make(map[int]bool, len(r.Safest))
	for _, i := range r.Safest {
		stars[i] = true
	}
	return r.Poset().DOT(name, func(i int, c *Config) poset.DOTNode {
		m := r.Measurements[i]
		shade := 0.0
		if max > 0 {
			shade = m.Perf / max
			if !metric.HigherIsBetter() {
				shade = 1 - shade
			}
		}
		return poset.DOTNode{
			Label:  c.Label(),
			Shade:  shade,
			Star:   stars[i],
			Pruned: m.Pruned || (m.Evaluated && !r.Feasible(i)),
		}
	})
}
