package explore

import (
	"fmt"
	"sort"

	"flexos/internal/poset"
)

// Measure benchmarks one configuration and returns its performance
// metric (higher is better: requests/s, Gb/s, 1/latency — any metric
// "comparable across configurations and runs", §5).
type Measure func(*Config) (float64, error)

// Measurement is one labeled poset node.
type Measurement struct {
	Config *Config
	// Perf is the measured performance (0 when pruned).
	Perf float64
	// Evaluated is false when monotonic pruning skipped the run.
	Evaluated bool
	// Pruned is true when a less-safe ancestor already missed the
	// budget, so this config could not meet it either.
	Pruned bool
	// Cached is true when the parallel engine filled Perf from a memo
	// hit or from an identical configuration instead of a fresh run.
	Cached bool
}

// Result is a full exploration outcome.
type Result struct {
	// Measurements holds one entry per configuration, in input order.
	Measurements []Measurement
	// Safest are the indices of the safest configurations meeting the
	// budget — the maximal elements of the budget-filtered poset (the
	// stars of Figure 8).
	Safest []int
	// Evaluated counts actually-run benchmarks; Total is the space
	// size. Their ratio quantifies the §5 claim that pruning
	// "significantly limits combinatorial explosion".
	Evaluated, Total int
	// MemoHits counts configurations whose value came from the memo or
	// an identical twin within the space instead of a fresh run
	// (parallel engine only; always 0 for the sequential reference).
	MemoHits int
	// Budget echoes the performance floor used.
	Budget float64

	poset *poset.Poset[*Config]
}

// Poset returns the safety poset underlying the result.
func (r *Result) Poset() *poset.Poset[*Config] { return r.poset }

// Run is the sequential reference engine: it builds the safety poset,
// walks it from the least-safe configurations upward, measures each
// configuration with measure, and — when prune is true — skips any
// configuration one of whose strictly-less-safe ancestors already fell
// below the budget (sound under the §5 assumption that performance
// decreases monotonically with safety).
//
// Production callers should prefer RunOpts, the parallel memoized
// engine, which returns byte-identical results; Run survives as the
// independent oracle the engine's tests compare against.
func Run(cfgs []*Config, measure Measure, budget float64, prune bool) (*Result, error) {
	p := Poset(cfgs)
	res := &Result{
		Measurements: make([]Measurement, len(cfgs)),
		Total:        len(cfgs),
		Budget:       budget,
		poset:        p,
	}
	for i, c := range cfgs {
		res.Measurements[i].Config = c
	}

	// Predecessor lists from the covering relation.
	preds := make([][]int, len(cfgs))
	for _, e := range p.Edges() {
		preds[e[1]] = append(preds[e[1]], e[0])
	}

	belowBudget := make([]bool, len(cfgs))
	for _, i := range p.TopoOrder() {
		if prune {
			skip := false
			for _, pr := range preds[i] {
				if belowBudget[pr] {
					skip = true
					break
				}
			}
			if skip {
				res.Measurements[i].Pruned = true
				belowBudget[i] = true // propagate
				continue
			}
		}
		perf, err := measure(cfgs[i])
		if err != nil {
			return nil, fmt.Errorf("explore: measuring config %d (%s): %w", cfgs[i].ID, cfgs[i].Label(), err)
		}
		res.Measurements[i].Perf = perf
		res.Measurements[i].Evaluated = true
		res.Evaluated++
		if perf < budget {
			belowBudget[i] = true
		}
	}

	// Safest-under-budget: maximal elements among nodes meeting the
	// budget. Pruned nodes cannot meet it by the monotonicity
	// assumption.
	index := make(map[*Config]int, len(cfgs))
	for i, c := range cfgs {
		index[c] = i
	}
	meets := func(c *Config) bool {
		m := res.Measurements[index[c]]
		return m.Evaluated && m.Perf >= budget
	}
	res.Safest = p.Maximal(meets)
	sort.Ints(res.Safest)
	return res, nil
}

// SafestConfigs dereferences Result.Safest.
func (r *Result) SafestConfigs() []*Config {
	var out []*Config
	for _, i := range r.Safest {
		out = append(out, r.Measurements[i].Config)
	}
	return out
}

// String summarizes the exploration.
func (r *Result) String() string {
	return fmt.Sprintf("explored %d/%d configurations, %d safest under budget %.0f",
		r.Evaluated, r.Total, len(r.Safest), r.Budget)
}

// DOT renders the exploration result as a Graphviz Hasse diagram:
// node shade encodes performance (black = fastest, like Figure 8),
// double octagons mark the safest-under-budget configurations, dashed
// nodes were pruned.
func (r *Result) DOT(name string) string {
	var max float64
	for _, m := range r.Measurements {
		if m.Perf > max {
			max = m.Perf
		}
	}
	stars := make(map[int]bool, len(r.Safest))
	for _, i := range r.Safest {
		stars[i] = true
	}
	return r.poset.DOT(name, func(i int, c *Config) poset.DOTNode {
		m := r.Measurements[i]
		shade := 0.0
		if max > 0 {
			shade = m.Perf / max
		}
		return poset.DOTNode{
			Label:  c.Label(),
			Shade:  shade,
			Star:   stars[i],
			Pruned: m.Pruned || (m.Evaluated && m.Perf < r.Budget),
		}
	})
}
