package exploretest_test

import (
	"math/rand"
	"reflect"
	"testing"

	"flexos/internal/explore"
	"flexos/internal/explore/exploretest"
)

// Self-tests for the oracle harness: the generators must be
// deterministic and honor the promises the oracle-equivalence tests
// lean on (safety-monotone measures above all), and the instrumented
// backing must account every load, hit and store.

func TestRandomSpaceDeterministic(t *testing.T) {
	a := exploretest.RandomSpace(rand.New(rand.NewSource(3)), 60)
	b := exploretest.RandomSpace(rand.New(rand.NewSource(3)), 60)
	if len(a) != 60 || len(b) != 60 {
		t.Fatalf("sizes %d, %d, want 60", len(a), len(b))
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatalf("config %d differs across identically seeded generators", i)
		}
	}
	c := exploretest.CopySpace(a)
	for i := range a {
		if c[i] == a[i] {
			t.Fatalf("CopySpace aliased config %d", i)
		}
		if c[i].Key() != a[i].Key() {
			t.Fatalf("CopySpace changed config %d", i)
		}
	}
}

// TestMonotoneMeasureIsSafetyMonotone: along every edge of the safety
// poset, more safety never means more modeled throughput — the
// assumption all pruning soundness oracles rest on.
func TestMonotoneMeasureIsSafetyMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfgs := exploretest.RandomSpace(rng, 80)
	measure := exploretest.MonotoneMeasure(rng)
	perf := make([]float64, len(cfgs))
	for i, c := range cfgs {
		v, err := measure(c)
		if err != nil {
			t.Fatal(err)
		}
		perf[i] = v
		if v2, _ := measure(c); v2 != v {
			t.Fatalf("measure not deterministic for config %d", i)
		}
	}
	p := explore.Poset(cfgs)
	edges := 0
	for _, e := range p.Edges() {
		// A covering edge (i, j) means i < j: j is the safer end, and
		// safety costs throughput.
		edges++
		if perf[e[0]] < perf[e[1]] {
			t.Fatalf("edge %d->%d: safer config measures faster (%.1f -> %.1f)", e[0], e[1], perf[e[0]], perf[e[1]])
		}
	}
	if edges == 0 {
		t.Fatal("poset has no edges; the space is degenerate")
	}
	// Lift embeds the scalar as the throughput dimension, untouched.
	lifted := exploretest.Lift(measure)
	mx, err := lifted(cfgs[0])
	if err != nil || mx.Throughput != perf[0] {
		t.Fatalf("Lift: got %v (%v), want throughput %.1f", mx, err, perf[0])
	}
}

func TestMapBackingAccounting(t *testing.T) {
	b := exploretest.NewMapBacking()
	if _, ok := b.Load("a"); ok {
		t.Fatal("empty backing reported a hit")
	}
	b.Store("a", explore.Metrics{Throughput: 1})
	b.Store("b", explore.Metrics{Throughput: 2})
	if _, ok := b.Load("a"); !ok {
		t.Fatal("stored key missed")
	}
	if b.Loads() != 2 || b.Hits() != 1 || b.Stores() != 2 || b.Len() != 2 {
		t.Fatalf("counters loads=%d hits=%d stores=%d len=%d, want 2/1/2/2", b.Loads(), b.Hits(), b.Stores(), b.Len())
	}
	if got := b.StoredKeys(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("store log %v, want [a b]", got)
	}

	// The uncounted inspection surface: Get/Put/Snapshot/Delete move
	// data without touching counters or the store log.
	b.Put("c", explore.Metrics{Throughput: 3})
	if _, ok := b.Get("c"); !ok {
		t.Fatal("Put key missing")
	}
	snap := b.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d keys, want 3", len(snap))
	}
	snap["d"] = explore.Metrics{}
	if b.Len() != 3 {
		t.Fatal("snapshot aliases the backing")
	}
	b.Delete("c")
	if _, ok := b.Get("c"); ok {
		t.Fatal("deleted key still present")
	}
	if b.Loads() != 2 || b.Hits() != 1 || b.Stores() != 2 {
		t.Fatalf("inspection surface moved the counters: loads=%d hits=%d stores=%d", b.Loads(), b.Hits(), b.Stores())
	}
	if got := b.StoredKeys(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("inspection surface moved the store log: %v", got)
	}
	b.ResetCounters()
	if b.Loads() != 0 || b.Hits() != 0 || b.Stores() != 0 || len(b.StoredKeys()) != 0 {
		t.Fatal("ResetCounters left residue")
	}
	if b.Len() != 2 {
		t.Fatal("ResetCounters dropped data")
	}
}
