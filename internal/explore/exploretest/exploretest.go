// Package exploretest is the shared oracle harness of the exploration
// engine's property tests: a brute-force map-frontier reference
// explorer, byte-comparable report renders, feasibility and safest-set
// oracles, a counting in-memory Backing double, and deterministic
// random space/measure generators. The engine's white-box tests used to
// carry private copies of all of these; budgeted guided search, delta
// re-exploration and the sharded warm-start pipeline are all proved
// against this one harness instead, so "agrees with the exhaustive
// oracle, byte for byte, at every worker count" means the same thing in
// every test that claims it.
//
// Everything here works through the explore package's exported API
// only, which keeps the oracle honest: it cannot peek at the engine's
// bitsets, groups or signatures, and a harness-driven test is a test of
// the public contract.
package exploretest

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"flexos/internal/explore"
	"flexos/internal/harden"
	"flexos/internal/isolation"
	"flexos/internal/scenario"
)

// Outcome is the reference explorer's per-configuration record,
// mirroring the fields of explore.Measurement that the determinism
// contract covers.
type Outcome struct {
	Perf      float64
	Metrics   explore.Metrics
	Evaluated bool
	Pruned    bool
	Cached    bool
}

// Report bundles one reference run: per-configuration outcomes in input
// order, the constraint-filtered maximal (safest) indices, and the
// fresh-measurement / twin-fill accounting.
type Report struct {
	Outcomes  []Outcome
	Safest    []int
	Evaluated int
	MemoHits  int
}

// Reference is the oracle: a sequential explorer with map-backed
// frontiers over the full space-wide poset. It reproduces the engine's
// decision semantics — canonical-twin dedup, monotone pruning gated on
// fully-decided predecessor sets — with none of its machinery: no
// bitsets, no groups, no signatures, no batching, no budget. Budgeted
// and delta runs are compared against it as the exhaustive ground
// truth.
func Reference(cfgs []*explore.Config, measure explore.MeasureMetrics, metric explore.Metric, constraints []explore.Constraint, prune bool) *Report {
	n := len(cfgs)
	p := explore.Poset(cfgs)
	preds := make([][]int, n)
	for _, e := range p.Edges() {
		preds[e[1]] = append(preds[e[1]], e[0])
	}
	canon := make([]int, n)
	first := map[string]int{}
	for i, c := range cfgs {
		k := c.Key()
		if f, ok := first[k]; ok {
			canon[i] = f
		} else {
			first[k] = i
			canon[i] = i
		}
	}

	rep := &Report{Outcomes: make([]Outcome, n)}
	out := rep.Outcomes
	decided := map[int]bool{}
	valued := map[int]bool{}
	failsBudget := map[int]bool{}
	for len(decided) < n {
		progress := false
		for i := 0; i < n; i++ {
			if decided[i] {
				continue
			}
			ready := true
			for _, pr := range preds[i] {
				if !decided[pr] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			progress = true
			if prune {
				prunedHere := false
				for _, pr := range preds[i] {
					if failsBudget[pr] {
						prunedHere = true
						break
					}
				}
				if prunedHere {
					out[i].Pruned = true
					failsBudget[i] = true
					decided[i] = true
					continue
				}
			}
			var mx explore.Metrics
			if c := canon[i]; c != i && valued[c] {
				mx = out[c].Metrics
				out[i].Cached = true
				rep.MemoHits++
			} else {
				mx, _ = measure(cfgs[i])
				rep.Evaluated++
			}
			out[i].Metrics = mx
			out[i].Perf = metric.Value(mx)
			out[i].Evaluated = true
			valued[i] = true
			if FailsMonotone(constraints, mx) {
				failsBudget[i] = true
			}
			decided[i] = true
		}
		if !progress {
			panic("exploretest: reference explorer wedged: cycle in poset")
		}
	}
	rep.Safest = p.Maximal(func(c *explore.Config) bool {
		for i := range cfgs {
			if cfgs[i] == c {
				return out[i].Evaluated && MeetsAll(constraints, out[i].Metrics)
			}
		}
		return false
	})
	sort.Ints(rep.Safest)
	return rep
}

// Render serializes the reference run into the canonical textual
// report, so oracle equality is asserted byte for byte rather than
// field by field. RenderResult produces the same text from an engine
// result: a run matches the oracle exactly when the two strings are
// equal.
func (r *Report) Render() string {
	var b strings.Builder
	for i, o := range r.Outcomes {
		fmt.Fprintf(&b, "%d perf=%.9g eval=%t pruned=%t cached=%t mx=%+v\n",
			i, o.Perf, o.Evaluated, o.Pruned, o.Cached, o.Metrics)
	}
	fmt.Fprintf(&b, "safest=%v evaluated=%d memohits=%d\n", r.Safest, r.Evaluated, r.MemoHits)
	return b.String()
}

// RenderResult is Render's engine-side counterpart. It also doubles as
// the worker-independence probe: two runs of the same request are
// byte-identical exactly when their renders are.
func RenderResult(res *explore.Result) string {
	var b strings.Builder
	for i := range res.Measurements {
		m := &res.Measurements[i]
		fmt.Fprintf(&b, "%d perf=%.9g eval=%t pruned=%t cached=%t mx=%+v\n",
			i, m.Perf, m.Evaluated, m.Pruned, m.Cached, m.Metrics)
	}
	fmt.Fprintf(&b, "safest=%v evaluated=%d memohits=%d\n", res.Safest, res.Evaluated, res.MemoHits)
	return b.String()
}

// MeetsAll reports whether a vector satisfies every constraint.
func MeetsAll(cs []explore.Constraint, mx explore.Metrics) bool {
	for _, c := range cs {
		if !c.Meets(mx) {
			return false
		}
	}
	return true
}

// FailsMonotone reports whether the vector violates any constraint
// whose violation propagates up the safety order (see
// explore.Constraint.Monotone) — the oracle's pruning trigger.
func FailsMonotone(cs []explore.Constraint, mx explore.Metrics) bool {
	for _, c := range cs {
		if c.Monotone() && !c.Meets(mx) {
			return true
		}
	}
	return false
}

// FeasibleSet derives the feasible indices of an exhaustively-measured
// oracle result under a constraint list.
func FeasibleSet(res *explore.Result, cs []explore.Constraint) map[int]bool {
	out := make(map[int]bool)
	for i, m := range res.Measurements {
		if MeetsAll(cs, m.Metrics) {
			out[i] = true
		}
	}
	return out
}

// SafestUnder recomputes the constraint-filtered maximal elements from
// an exhaustive oracle result: the safest set the engine must report
// under cs, regardless of which constraints the oracle itself ran with.
func SafestUnder(res *explore.Result, cs []explore.Constraint) []int {
	index := make(map[*explore.Config]int, len(res.Measurements))
	for i := range res.Measurements {
		index[res.Measurements[i].Config] = i
	}
	out := res.Poset().Maximal(func(c *explore.Config) bool {
		m := res.Measurements[index[c]]
		return m.Evaluated && MeetsAll(cs, m.Metrics)
	})
	sort.Ints(out)
	return out
}

// FeasibleFront computes the safety × throughput × memory Pareto front
// of an exhaustive oracle result restricted to its feasible
// configurations under cs — the front a budgeted run must reproduce
// when its budget covers the feasible region. It mirrors
// explore.Result.ParetoFront's dominance rule (safety level at least as
// high, throughput at least as high, peak memory at most as high,
// strictly better somewhere) but ranks only evaluated configurations
// meeting every constraint, because a budgeted run never carries
// vectors for infeasible boundary probes.
func FeasibleFront(res *explore.Result, cs []explore.Constraint) []int {
	level := res.SafetyLevels()
	feasible := make([]int, 0, len(res.Measurements))
	for i := range res.Measurements {
		m := &res.Measurements[i]
		if m.Evaluated && MeetsAll(cs, m.Metrics) {
			feasible = append(feasible, i)
		}
	}
	dominates := func(i, j int) bool {
		mi, mj := res.Measurements[i].Metrics, res.Measurements[j].Metrics
		if level[i] < level[j] || mi.Throughput < mj.Throughput || mi.PeakMemBytes > mj.PeakMemBytes {
			return false
		}
		return level[i] > level[j] ||
			mi.Throughput > mj.Throughput ||
			mi.PeakMemBytes < mj.PeakMemBytes
	}
	var front []int
	for _, i := range feasible {
		dominated := false
		for _, j := range feasible {
			if i != j && dominates(j, i) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front
}

// Decisions is the prune-decision accounting of a run: how every
// configuration of the space was decided. Undecided counts
// configurations that are neither evaluated nor pruned — skipped by a
// budget or a delta run; exhaustive runs always decide everything.
type Decisions struct {
	Evaluated int
	Cached    int
	Pruned    int
	Undecided int
}

// DecisionsOf tallies a result's per-configuration decisions.
func DecisionsOf(res *explore.Result) Decisions {
	var d Decisions
	for i := range res.Measurements {
		m := &res.Measurements[i]
		switch {
		case m.Evaluated:
			d.Evaluated++
			if m.Cached {
				d.Cached++
			}
		case m.Pruned:
			d.Pruned++
		default:
			d.Undecided++
		}
	}
	return d
}

// MapBacking is an in-memory explore.Backing double that counts
// traffic: loads, load hits, and stores (with the stored keys in store
// order). Tests use the counters to prove cache-hit economics — a warm
// run measures nothing fresh, a delta run re-measures exactly the
// absent keys — and the uncounted Put/Delete/Snapshot accessors to
// seed, mutate and merge stores without disturbing the accounting.
type MapBacking struct {
	mu       sync.Mutex
	m        map[string]explore.Metrics
	loads    int
	hits     int
	stores   int
	storeLog []string
}

// NewMapBacking returns an empty counting store.
func NewMapBacking() *MapBacking { return &MapBacking{m: make(map[string]explore.Metrics)} }

// Load implements explore.Backing, counting the lookup and the hit.
func (b *MapBacking) Load(key string) (explore.Metrics, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.loads++
	m, ok := b.m[key]
	if ok {
		b.hits++
	}
	return m, ok
}

// Store implements explore.Backing, counting the write and logging its
// key.
func (b *MapBacking) Store(key string, m explore.Metrics) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stores++
	b.storeLog = append(b.storeLog, key)
	b.m[key] = m
}

// Loads, Hits and Stores report the traffic counters.
func (b *MapBacking) Loads() int  { b.mu.Lock(); defer b.mu.Unlock(); return b.loads }
func (b *MapBacking) Hits() int   { b.mu.Lock(); defer b.mu.Unlock(); return b.hits }
func (b *MapBacking) Stores() int { b.mu.Lock(); defer b.mu.Unlock(); return b.stores }

// StoredKeys returns the keys every Store wrote, sorted (concurrent
// workers store in nondeterministic order; the set is deterministic).
func (b *MapBacking) StoredKeys() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := append([]string(nil), b.storeLog...)
	sort.Strings(out)
	return out
}

// Len reports the number of distinct keys held, without counting.
func (b *MapBacking) Len() int { b.mu.Lock(); defer b.mu.Unlock(); return len(b.m) }

// Get reads a key without touching the counters.
func (b *MapBacking) Get(key string) (explore.Metrics, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	m, ok := b.m[key]
	return m, ok
}

// Put writes a key without touching the counters (seeding, merging).
func (b *MapBacking) Put(key string, m explore.Metrics) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[key] = m
}

// Delete drops a key without touching the counters (delta mutation).
func (b *MapBacking) Delete(key string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.m, key)
}

// Snapshot copies the store's contents, without counting.
func (b *MapBacking) Snapshot() map[string]explore.Metrics {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]explore.Metrics, len(b.m))
	for k, v := range b.m {
		out[k] = v
	}
	return out
}

// ResetCounters zeroes the traffic counters and the store log, keeping
// the contents — so a test can seed a store and then account only the
// run under scrutiny.
func (b *MapBacking) ResetCounters() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.loads, b.hits, b.stores, b.storeLog = 0, 0, 0, nil
}

// ----- deterministic random spaces and measures ---------------------

var (
	components = []string{"app", "libc", "sched", "net"}
	techs      = []harden.Tech{harden.CFI, harden.KASan, harden.UBSan, harden.StackProtector}
)

// randomPartition splits the four components into 1..4 blocks.
func randomPartition(rng *rand.Rand) [][]string {
	nblocks := rng.Intn(4) + 1
	blocks := make([][]string, nblocks)
	for i, comp := range components {
		b := rng.Intn(nblocks)
		if i < nblocks {
			b = i // guarantee no block is empty
		}
		blocks[b] = append(blocks[b], comp)
	}
	return blocks
}

// RandomSpace generates n random configurations: random partitions,
// per-component hardening subsets, mechanisms, gates and sharing
// strategies. Duplicates are allowed (the engine must handle twins).
func RandomSpace(rng *rand.Rand, n int) []*explore.Config {
	mechs := []string{"none", "intel-mpk", "vm-ept"}
	gates := []isolation.GateMode{isolation.GateLight, isolation.GateFull}
	sharings := []isolation.Sharing{isolation.ShareStack, isolation.ShareDSS, isolation.ShareHeap}
	cfgs := make([]*explore.Config, n)
	for i := range cfgs {
		h := make(map[string]harden.Set)
		for _, comp := range components {
			var ts []harden.Tech
			for _, tech := range techs {
				if rng.Intn(2) == 0 {
					ts = append(ts, tech)
				}
			}
			if len(ts) > 0 {
				h[comp] = harden.NewSet(ts...)
			}
		}
		cfgs[i] = &explore.Config{
			ID:        i,
			Blocks:    randomPartition(rng),
			Hardening: h,
			Mechanism: mechs[rng.Intn(len(mechs))],
			GateMode:  gates[rng.Intn(len(gates))],
			Sharing:   sharings[rng.Intn(len(sharings))],
		}
	}
	return cfgs
}

// CopySpace clones a space so each engine run builds its own poset over
// fresh pointers (Results key Maximal by pointer identity).
func CopySpace(cfgs []*explore.Config) []*explore.Config {
	out := make([]*explore.Config, len(cfgs))
	for i, c := range cfgs {
		cc := *c
		out[i] = &cc
	}
	return out
}

// The safety ranks the safety order compares, recomputed from the
// exported configuration fields (the mirror of the engine's own
// ranking — see explore.Leq's four monotonicity dimensions).
func mechStrength(c *explore.Config) int {
	switch c.Mechanism {
	case "intel-mpk", "mpk", "cheri":
		return 1
	case "vm-ept", "ept", "intel-sgx", "sgx":
		return 2
	}
	return 0
}

func gateRank(c *explore.Config) int {
	if c.NumCompartments() == 1 || c.GateMode != isolation.GateLight {
		return 1
	}
	return 0
}

func sharingRank(c *explore.Config) int {
	if c.NumCompartments() == 1 || c.Sharing != isolation.ShareStack {
		return 1
	}
	return 0
}

// MonotoneMeasure builds a measure function with random positive
// weights that is decreasing along the safety order: every dimension
// the Leq relation compares contributes non-negatively to cost, so
// a ≤ b implies measure(a) >= measure(b) — the §5 assumption pruning
// relies on.
func MonotoneMeasure(rng *rand.Rand) explore.Measure {
	wComp := float64(rng.Intn(200) + 1)
	wStrength := float64(rng.Intn(300) + 1)
	wGate := float64(rng.Intn(50) + 1)
	wShare := float64(rng.Intn(50) + 1)
	wTech := make(map[harden.Tech]float64, len(techs))
	for _, tech := range techs {
		wTech[tech] = float64(rng.Intn(40) + 1)
	}
	return func(c *explore.Config) (float64, error) {
		cost := wComp*float64(c.NumCompartments()-1) +
			wStrength*float64(mechStrength(c)) +
			wGate*float64(gateRank(c)) +
			wShare*float64(sharingRank(c))
		for _, comp := range c.Components() {
			for _, tech := range techs {
				if c.Hardening[comp].Has(tech) {
					cost += wTech[tech]
				}
			}
		}
		return 100_000 - cost, nil
	}
}

// Lift adapts a scalar measure into a metric-vector measure with only
// the throughput dimension populated, like the engine's own legacy
// adapter.
func Lift(measure explore.Measure) explore.MeasureMetrics {
	return func(c *explore.Config) (explore.Metrics, error) {
		v, err := measure(c)
		if err != nil {
			return explore.Metrics{}, err
		}
		return explore.Metrics{Throughput: v}, nil
	}
}

// VectorMeasure derives a safety-monotone metric-vector measure with
// random positive weights: throughput falls and every cost metric rises
// as configurations get safer, matching the engine's pruning
// assumption, like MonotoneMeasure does for scalars.
func VectorMeasure(rng *rand.Rand) explore.MeasureMetrics {
	scalar := MonotoneMeasure(rng)
	latW := float64(rng.Intn(900)+100) / 1e6
	memW := uint64(rng.Intn(40) + 1)
	bootW := uint64(rng.Intn(20) + 1)
	return func(c *explore.Config) (explore.Metrics, error) {
		v, err := scalar(c)
		if err != nil {
			return explore.Metrics{}, err
		}
		cost := 100_000 - v // >= 0 by construction
		return explore.Metrics{
			Throughput:   v,
			P50us:        1 + cost*latW,
			P99us:        2 + cost*latW*2,
			MaxUs:        3 + cost*latW*4,
			PeakMemBytes: 1000 + uint64(cost)*memW,
			BootCycles:   500 + uint64(cost)*bootW,
			Cycles:       uint64(cost) + 1,
			Ops:          1,
		}, nil
	}
}

// ----- adversarial attack-axis spaces and the survival oracle -------

// attackTechs extends the hardening alphabet with ShadowStack, the
// control-flow tech of the attack axis, in harden's canonical
// iteration order.
var attackTechs = []harden.Tech{
	harden.CFI, harden.KASan, harden.UBSan, harden.StackProtector, harden.ShadowStack,
}

// AttackLadder is the ASLR alphabet random attack spaces draw from. It
// deliberately contains incomparable pairs — more entropy without leak
// resistance versus less entropy with it — so the product order of
// isolation.ASLR.Leq is actually exercised, not just a chain.
var AttackLadder = []isolation.ASLR{
	{},
	{EntropyBits: 8},
	{EntropyBits: 16},
	{EntropyBits: 8, LeakResistant: true},
	{EntropyBits: 16, LeakResistant: true},
	{EntropyBits: 32, LeakResistant: true},
}

// AttackProfiles is the machine-profile alphabet: the default x86
// machine ("") and the RISC-V port. Configurations on distinct
// profiles are incomparable, so a random attack space splits into
// per-profile order groups — the grouped-poset regime the engine must
// keep byte-identical at every worker count.
var AttackProfiles = []string{"", "riscv"}

// RandomAttackSpace generates n random configurations over the full
// attack axis: RandomSpace's random partitions, mechanisms, gates and
// sharing strategies, plus ShadowStack-extended per-component
// hardening, a random ASLR level from AttackLadder and a random
// machine profile. Duplicates are allowed (the engine must still
// twin-fill across the new dimensions).
func RandomAttackSpace(rng *rand.Rand, n int) []*explore.Config {
	mechs := []string{"none", "intel-mpk", "vm-ept"}
	gates := []isolation.GateMode{isolation.GateLight, isolation.GateFull}
	sharings := []isolation.Sharing{isolation.ShareStack, isolation.ShareDSS, isolation.ShareHeap}
	cfgs := make([]*explore.Config, n)
	for i := range cfgs {
		h := make(map[string]harden.Set)
		for _, comp := range components {
			var ts []harden.Tech
			for _, tech := range attackTechs {
				if rng.Intn(2) == 0 {
					ts = append(ts, tech)
				}
			}
			if len(ts) > 0 {
				h[comp] = harden.NewSet(ts...)
			}
		}
		cfgs[i] = &explore.Config{
			ID:        i,
			Blocks:    randomPartition(rng),
			Hardening: h,
			Mechanism: mechs[rng.Intn(len(mechs))],
			GateMode:  gates[rng.Intn(len(gates))],
			Sharing:   sharings[rng.Intn(len(sharings))],
			ASLR:      AttackLadder[rng.Intn(len(AttackLadder))],
			Profile:   AttackProfiles[rng.Intn(len(AttackProfiles))],
		}
	}
	return cfgs
}

// SurvivalMeasure extends VectorMeasure with a brute-force survival
// scorer: survival is an independent additive rank over exactly the
// dimensions explore.Leq compares — compartment count, mechanism
// strength, gate and sharing ranks, per-component hardening techs,
// ASLR entropy bits and leak resistance — with random positive
// weights, normalized into (0, 1]. Every dimension contributes
// non-negatively and the profile never compares across groups, so
// a ≤ b implies Survival(a) <= Survival(b): the dominance oracle the
// attack subsystem's ordering and filter-only-constraint proofs run
// against, with none of its multiplicative machinery.
func SurvivalMeasure(rng *rand.Rand) explore.MeasureMetrics {
	vec := VectorMeasure(rng)
	wComp := float64(rng.Intn(200) + 1)
	wStrength := float64(rng.Intn(300) + 1)
	wGate := float64(rng.Intn(50) + 1)
	wShare := float64(rng.Intn(50) + 1)
	wBits := float64(rng.Intn(10) + 1)
	wLeak := float64(rng.Intn(100) + 1)
	wTech := make(map[harden.Tech]float64, len(attackTechs))
	total := wComp*float64(len(components)-1) + wStrength*2 + wGate + wShare +
		wBits*float64(isolation.MaxEntropyBits) + wLeak
	for _, tech := range attackTechs {
		w := float64(rng.Intn(40) + 1)
		wTech[tech] = w
		total += w * float64(len(components))
	}
	return func(c *explore.Config) (explore.Metrics, error) {
		mx, err := vec(c)
		if err != nil {
			return mx, err
		}
		rank := wComp*float64(c.NumCompartments()-1) +
			wStrength*float64(mechStrength(c)) +
			wGate*float64(gateRank(c)) +
			wShare*float64(sharingRank(c)) +
			wBits*float64(c.ASLR.EntropyBits)
		if c.ASLR.LeakResistant {
			rank += wLeak
		}
		for _, comp := range c.Components() {
			for _, tech := range attackTechs {
				if c.Hardening[comp].Has(tech) {
					rank += wTech[tech]
				}
			}
		}
		mx.Survival = (1 + rank) / (1 + total)
		return mx, nil
	}
}

// SurvivalFloor builds a survival>=bound constraint with the bound
// drawn from an exhaustive result's measured survival distribution —
// in its natural direction, which for survival is deliberately never
// monotone-prunable (a floor must filter, not prune, because
// violations live at the UNSAFE end of the order).
func SurvivalFloor(rng *rand.Rand, oracle *explore.Result) explore.Constraint {
	vals := make([]float64, 0, len(oracle.Measurements))
	for _, m := range oracle.Measurements {
		vals = append(vals, m.Metrics.Survival)
	}
	return explore.Constraint{
		Metric: scenario.MetricSurvival,
		Op:     explore.NaturalOp(scenario.MetricSurvival),
		Bound:  quantile(vals, 0.25+rng.Float64()/2),
	}
}

// quantile picks a bound inside the observed range of a metric so
// constraints are neither trivially empty nor trivially full.
func quantile(vals []float64, q float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	return s[int(q*float64(len(s)-1))]
}

// RandomConstraint builds a constraint on a random metric with a bound
// drawn from an exhaustive result's measured distribution. Mixing
// directions is the point: half the time the natural (prunable)
// direction, half the time the unnatural one.
func RandomConstraint(rng *rand.Rand, oracle *explore.Result) explore.Constraint {
	metrics := []explore.Metric{
		scenario.MetricThroughput, scenario.MetricP50, scenario.MetricP99,
		scenario.MetricMax, scenario.MetricPeakMem, scenario.MetricBoot,
	}
	m := metrics[rng.Intn(len(metrics))]
	vals := make([]float64, 0, len(oracle.Measurements))
	for _, mm := range oracle.Measurements {
		vals = append(vals, m.Value(mm.Metrics))
	}
	op := explore.NaturalOp(m)
	if rng.Intn(2) == 0 {
		if op == explore.AtLeast {
			op = explore.AtMost
		} else {
			op = explore.AtLeast
		}
	}
	return explore.Constraint{Metric: m, Op: op, Bound: quantile(vals, 0.25+rng.Float64()/2)}
}
