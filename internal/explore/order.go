package explore

import (
	"sort"
	"strings"
	"sync"

	"flexos/internal/harden"
	"flexos/internal/isolation"
	"flexos/internal/poset"
)

// sig is a precomputed comparison signature for one configuration: the
// inputs Leq reads, extracted once so the safety order can be evaluated
// allocation-free. Component names are sorted; block and hs align with
// comps positionally. Signatures of configurations with different
// component sets are never compared (such configurations are
// incomparable — Leq requires identical component sets), and neither are
// signatures of configurations on different machine profiles (the group
// key separates them).
type sig struct {
	comps    []string
	block    []int16
	hs       []harden.Set
	strength isolation.Strength
	share    int8
	gate     int8
	aslr     isolation.ASLR
}

// leqSig mirrors Leq exactly for two configurations with identical
// sorted component sets: mechanism strength, partition refinement,
// per-component hardening subset, data-isolation ranks. It allocates
// nothing, which is what makes building 10k–1M-point safety orders
// practical (the allocating Leq costs ~350ns/pair; this costs ~20ns).
func leqSig(a, b *sig) bool {
	if a.strength > b.strength {
		return false
	}
	if !a.aslr.Leq(b.aslr) {
		return false
	}
	nc := len(a.comps)
	for i := 0; i < nc; i++ {
		for j := i + 1; j < nc; j++ {
			if b.block[i] == b.block[j] && a.block[i] != a.block[j] {
				return false
			}
		}
	}
	for k := 0; k < nc; k++ {
		if !a.hs[k].Subset(b.hs[k]) {
			return false
		}
	}
	return !(a.share > b.share || a.gate > b.gate)
}

// spaceOrder is the engine's view of a configuration space's safety
// structure: per-configuration comparison signatures, the partition of
// the space into mutually incomparable component groups, and one small
// poset per group. Real cross-application spaces decompose into many
// groups of bounded size (one per application × component set), so the
// safety order of an n-point space costs Σ group² signature
// comparisons instead of the n² allocating Leq evaluations a global
// poset would — the difference between 30s and 30ms of setup on a
// 10k-point space.
type spaceOrder struct {
	n      int
	sigs   []sig
	groups [][]int32             // member indices per group, ascending
	posets []*poset.Poset[int32] // one per group, over global indices

	edgesOnce    sync.Once
	preds, succs [][]int32 // Hasse edges of the whole space, global indices
}

// newSpaceOrder builds signatures, groups and per-group posets.
func newSpaceOrder(cfgs []*Config) *spaceOrder {
	n := len(cfgs)
	o := &spaceOrder{n: n, sigs: make([]sig, n)}
	// Arena-allocate the positional columns: two allocations for the
	// whole space instead of two per configuration.
	blockArena := make([]int16, 0, 4*n)
	hsArena := make([]harden.Set, 0, 4*n)
	byComps := make(map[string]int32, n/16+1)
	for i, c := range cfgs {
		comps := c.Components()
		s := &o.sigs[i]
		s.comps = comps
		s.strength = c.strength()
		s.share = int8(c.sharingRank())
		s.gate = int8(c.gateRank())
		s.aslr = c.ASLR
		b0, h0 := len(blockArena), len(hsArena)
		for _, comp := range comps {
			blockArena = append(blockArena, int16(c.blockOf(comp)))
			hsArena = append(hsArena, c.Hardening[comp])
		}
		s.block = blockArena[b0:len(blockArena):len(blockArena)]
		s.hs = hsArena[h0:len(hsArena):len(hsArena)]

		// Distinct machine profiles are incomparable universes (Leq
		// returns false across them), so they partition into separate
		// groups; "\x01" cannot appear in a component name or profile,
		// keeping the key unambiguous.
		key := strings.Join(comps, "\x00") + "\x01" + c.Profile
		g, ok := byComps[key]
		if !ok {
			g = int32(len(o.groups))
			byComps[key] = g
			o.groups = append(o.groups, nil)
		}
		o.groups[g] = append(o.groups[g], int32(i))
	}
	o.posets = make([]*poset.Poset[int32], len(o.groups))
	for g, members := range o.groups {
		o.posets[g] = poset.New(members, func(a, b int32) bool {
			return leqSig(&o.sigs[a], &o.sigs[b])
		})
	}
	return o
}

// edges returns the Hasse diagram of the whole space as predecessor and
// successor adjacency lists over global indices. Configurations of
// different groups are incomparable, so the transitive reduction of the
// space is exactly the union of the per-group reductions. Built once,
// on first use (the flat dispatch path never needs it).
func (o *spaceOrder) edges() (preds, succs [][]int32) {
	o.edgesOnce.Do(func() {
		o.preds = make([][]int32, o.n)
		o.succs = make([][]int32, o.n)
		for g, members := range o.groups {
			for _, e := range o.posets[g].Edges() {
				a, b := members[e[0]], members[e[1]]
				o.preds[b] = append(o.preds[b], a)
				o.succs[a] = append(o.succs[a], b)
			}
		}
	})
	return o.preds, o.succs
}

// safest computes the constraint-filtered maximal elements of the
// space — group by group, since maximality never crosses incomparable
// groups — and returns them ascending, exactly as the global
// poset.Maximal computation would.
func (o *spaceOrder) safest(res *Result) []int {
	var out []int
	for g, members := range o.groups {
		for _, li := range o.posets[g].Maximal(func(i int32) bool {
			return res.Feasible(int(i))
		}) {
			out = append(out, int(members[li]))
		}
	}
	sort.Ints(out)
	return out
}

// levels grades the space like Result.SafetyLevels: each
// configuration's longest strict safety chain below it, computed over
// the grouped Hasse edges.
func (o *spaceOrder) levels() []int {
	preds, succs := o.edges()
	level := make([]int, o.n)
	indeg := make([]int, o.n)
	queue := make([]int32, 0, o.n)
	for i := 0; i < o.n; i++ {
		indeg[i] = len(preds[i])
		if indeg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, j := range succs[i] {
			if level[i]+1 > level[j] {
				level[j] = level[i] + 1
			}
			if indeg[j]--; indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	return level
}
