package explore_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"flexos/internal/explore"
	"flexos/internal/explore/exploretest"
	"flexos/internal/scenario"
)

// Property tests for the attack axes of the safety order — ASLR as a
// product dimension, machine profiles as incomparable groups,
// ShadowStack-extended hardening — and for survival as a metric whose
// floors filter but never prune. The adversarial oracle is
// exploretest's brute-force reference explorer over random attack-axis
// spaces with an independent additive survival scorer; the engine's
// grouped safety order must reproduce its dominance decisions byte for
// byte at every worker count.

// attackOracle measures a random attack space exhaustively — the
// ground truth for the constrained runs.
func attackOracle(t *testing.T, seed int64, n int) ([]*explore.Config, explore.MeasureMetrics, *explore.Result) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfgs := exploretest.RandomAttackSpace(rng, n)
	measure := exploretest.SurvivalMeasure(rng)
	res, err := explore.Engine{}.Run(context.Background(), explore.Request{
		Space: exploretest.CopySpace(cfgs), Measure: measure, Workers: 4,
	})
	if err != nil {
		t.Fatalf("seed %d: oracle: %v", seed, err)
	}
	return cfgs, measure, res
}

// TestAttackSpaceLeqIsPartialOrder validates the extended safety
// relation itself: still a partial order, antisymmetric up to
// canonical identity, never comparing across machine profiles, and
// never relating a configuration above one whose ASLR it does not
// dominate.
func TestAttackSpaceLeqIsPartialOrder(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfgs := exploretest.RandomAttackSpace(rng, 50)
		p := explore.Poset(cfgs)
		if err := p.CheckOrder(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range cfgs {
			for j := range cfgs {
				if i == j || !p.Leq(i, j) {
					continue
				}
				if cfgs[i].Profile != cfgs[j].Profile {
					t.Fatalf("seed %d: configs %d and %d ordered across profiles %q and %q",
						seed, i, j, cfgs[i].Profile, cfgs[j].Profile)
				}
				if !cfgs[i].ASLR.Leq(cfgs[j].ASLR) {
					t.Fatalf("seed %d: configs %d <= %d but ASLR %s does not dominate %s",
						seed, i, j, cfgs[j].ASLR.String(), cfgs[i].ASLR.String())
				}
				if p.Leq(j, i) && cfgs[i].Key() != cfgs[j].Key() {
					t.Fatalf("seed %d: configs %d and %d mutually ordered with distinct keys\n%s\n%s",
						seed, i, j, cfgs[i].Key(), cfgs[j].Key())
				}
			}
		}
	}
}

// TestAttackSpaceMatchesOracleAtEveryWorkerCount is the headline
// property: on random attack-axis spaces under a monotone throughput
// floor plus a filter-only survival floor, the engine's grouped-poset
// pruned run renders byte-identically to the brute-force reference at
// workers 1, 4 and 8.
func TestAttackSpaceMatchesOracleAtEveryWorkerCount(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		cfgs, measure, oracle := attackOracle(t, seed, 60)
		rng := rand.New(rand.NewSource(seed + 1000))
		cs := []explore.Constraint{
			throughputFloor(oracle, 0.25+rng.Float64()/2),
			exploretest.SurvivalFloor(rng, oracle),
		}
		want := exploretest.Reference(exploretest.CopySpace(cfgs), measure,
			scenario.MetricSurvival, cs, true).Render()
		for _, workers := range []int{1, 4, 8} {
			res, err := explore.Engine{}.Run(context.Background(), explore.Request{
				Space:       exploretest.CopySpace(cfgs),
				Measure:     measure,
				Metric:      scenario.MetricSurvival,
				Constraints: cs,
				Workers:     workers,
				Prune:       true,
			})
			if err != nil && !errors.Is(err, explore.ErrNoFeasible) {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if got := exploretest.RenderResult(res); got != want {
				t.Fatalf("seed %d: workers=%d diverges from oracle\nengine:\n%s\noracle:\n%s",
					seed, workers, got, want)
			}
		}
	}
}

// TestSurvivalFloorFiltersWithoutPruning pins the filter-only contract:
// survival improves with safety, so a violated floor says nothing
// about safer successors. A pruned run whose only constraint is a
// survival floor must evaluate the entire space — zero prunes — and
// still report exactly the oracle's constraint-filtered safest set.
func TestSurvivalFloorFiltersWithoutPruning(t *testing.T) {
	for seed := int64(100); seed < 106; seed++ {
		cfgs, measure, oracle := attackOracle(t, seed, 50)
		rng := rand.New(rand.NewSource(seed))
		floor := exploretest.SurvivalFloor(rng, oracle)
		if floor.Monotone() {
			t.Fatalf("seed %d: survival floor %v claims to be monotone-prunable", seed, floor)
		}
		res, err := explore.Engine{}.Run(context.Background(), explore.Request{
			Space:       exploretest.CopySpace(cfgs),
			Measure:     measure,
			Metric:      scenario.MetricSurvival,
			Constraints: []explore.Constraint{floor},
			Workers:     4,
			Prune:       true,
		})
		if err != nil && !errors.Is(err, explore.ErrNoFeasible) {
			t.Fatalf("seed %d: %v", seed, err)
		}
		d := exploretest.DecisionsOf(res)
		if d.Pruned != 0 || d.Undecided != 0 {
			t.Fatalf("seed %d: survival floor pruned %d / left %d undecided; must filter only",
				seed, d.Pruned, d.Undecided)
		}
		want := exploretest.SafestUnder(oracle, []explore.Constraint{floor})
		if !reflect.DeepEqual(res.Safest, want) {
			t.Fatalf("seed %d: safest %v, oracle %v", seed, res.Safest, want)
		}
	}
}
