package explore

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"flexos/internal/poset"
	"flexos/internal/scenario"
)

// Options configures the deprecated RunOpts / RunMetrics wrappers.
//
// Deprecated: build a Request (or a flexos.Query) instead; Options
// survives only so legacy call sites keep compiling.
type Options struct {
	// Workers is the number of concurrent measurement goroutines; values
	// <= 0 select runtime.GOMAXPROCS(0). The result is identical for
	// every worker count (the simulated machine is deterministic), so
	// callers pick workers purely for wall-clock speed.
	Workers int

	// Prune enables poset-aware monotonic pruning (§5): a configuration
	// is skipped when a strictly-less-safe ancestor already missed the
	// budget. The engine keeps pruning sound under concurrent
	// completion order by deferring every decision about a configuration
	// until all of its poset predecessors are decided.
	Prune bool

	// Memo, when non-nil, caches measurements across runs keyed by
	// canonical configuration identity (Config.Key), so identical points
	// shared by several spaces are measured once. Share one Memo only
	// among runs whose measure functions agree for identical configs —
	// use Workload to namespace different benchmarks within one Memo.
	// Entries carry full metric vectors, so runs budgeting on different
	// metrics can share a memo as long as the workload matches.
	Memo *Memo

	// Workload namespaces memo keys (e.g. "redis", "nginx",
	// "redis-get90/240"), letting a single Memo serve several measure
	// functions without collisions.
	Workload string

	// Progress, when non-nil, is called after each configuration is
	// decided (measured, memo-filled or pruned) with the number decided
	// so far and the space size. It runs on the coordinating goroutine,
	// never concurrently with itself.
	Progress func(done, total int)
}

// Request describes one exploration for Engine.Run: the space, how to
// measure it, the feasibility constraints, and the engine knobs.
type Request struct {
	// Space is the configuration space to explore.
	Space []*Config

	// Measure benchmarks one configuration into a full metric vector.
	// It must be deterministic, and safe for concurrent use when
	// Workers != 1. It is not interrupted mid-call on cancellation;
	// close over the run's context inside it to bound cancel latency.
	Measure MeasureMetrics

	// Metric is the ranking metric: the dimension Measurement.Perf and
	// the DOT shading report. Empty selects the first constraint's
	// metric, or throughput when there are no constraints.
	Metric Metric

	// Constraints is the feasibility conjunction: a configuration is
	// feasible when its vector satisfies every constraint. Constraints
	// in their natural direction (see Constraint.Monotone) also drive
	// monotonic pruning when Prune is set. An empty slice means every
	// measured configuration is feasible.
	Constraints []Constraint

	// Workers is the number of concurrent measurement goroutines;
	// values <= 0 select runtime.GOMAXPROCS(0). Results are
	// byte-identical for every worker count.
	Workers int

	// Prune enables poset-aware monotonic pruning (§5): a configuration
	// is skipped when a strictly-less-safe ancestor already violated a
	// monotone constraint. Sound under concurrent completion order: a
	// configuration is decided only after all its poset predecessors.
	Prune bool

	// Memo, when non-nil, caches measurements across runs keyed by
	// canonical configuration identity (Config.Key). Share one Memo
	// only among runs whose measure functions agree for identical
	// configurations; use Workload to namespace several benchmarks in
	// one memo. Entries carry full metric vectors, so runs constraining
	// different metrics can share a memo as long as the workload
	// matches.
	Memo *Memo

	// Workload namespaces memo keys (e.g. "redis-get90/240").
	Workload string

	// MeasureBudget, when > 0, caps the number of fresh measure calls
	// the run may spend and switches the engine to budgeted guided
	// search. With Prune set and a monotone constraint present, the
	// budget drives a branch-and-bound sweep of the grouped safety
	// posets: one measurement failing a monotone floor prunes its
	// entire undecided up-set before measuring it, so the budget is
	// spent only on the feasible region and its minimal infeasible
	// boundary — a sweep that completes within budget reports exactly
	// what the exhaustive pruned run would, byte for byte. Without a
	// prunable constraint the budget drives seeded successive-halving
	// ranked sampling instead. Configurations the budget never reaches
	// are skipped (neither evaluated nor pruned) and counted in
	// Result.Skipped. Memo and backing hits are free — they never
	// consume budget — so warm budgeted runs decide strictly more than
	// cold ones. For a fixed (MeasureBudget, Seed) pair results are
	// byte-identical at every worker count, and every reported
	// measurement also appears, bit-for-bit, in the exhaustive run's
	// result.
	MeasureBudget int

	// Seed drives the successive-halving sampling order: candidate
	// priority is a splittable PRNG stream over canonical
	// configuration keys, so the sampled subset depends only on
	// (Seed, MeasureBudget) and the space — never on worker count or
	// completion order. Ignored unless MeasureBudget > 0; the
	// branch-and-bound sweep (Prune with a monotone constraint) is
	// deterministic without sampling, so there Seed does not change
	// the result.
	Seed int64

	// DeltaOnly, when set, re-explores only the configurations whose
	// canonical identity is absent from the Memo (including its
	// backing store): present keys are skipped without loading, and
	// counted in Result.Skipped. This is delta re-exploration — after
	// editing a space, re-measure exactly the changed points and merge
	// the store for a full warm report. Requires a Memo; incompatible
	// with MeasureBudget. Pruning is ignored (the skipped keys already
	// carry values, so there is nothing for a prune to save), and a
	// delta run never returns ErrNoFeasible — its report only covers
	// the re-measured slice of the space.
	DeltaOnly bool

	// Shard, when non-zero, restricts the run to one deterministic
	// slice of Space: the Index-th of Count order-preserving,
	// non-overlapping contiguous partitions of the canonical
	// enumeration (see Shard). The memo keys of the sharded run are
	// exactly those the full run would use, which is what lets N shard
	// runs populate N stores whose merge warm-starts the unsharded
	// exploration.
	Shard Shard

	// Progress, when non-nil, is called after each configuration is
	// decided with the number decided so far and the space size. Runs
	// on the coordinating goroutine, never concurrently with itself.
	Progress func(done, total int)

	// Observe, when non-nil, is called on the coordinating goroutine
	// after each configuration is decided, with the configuration's
	// index in the explored slice of Space (the whole Space when Shard
	// is zero — with a shard, indices are relative to the shard's
	// slice, like Result.Measurements) and its (final) Measurement — measured,
	// memo-filled, inherited from a twin, or pruned. It is what
	// Query.Stream builds on. Like Progress it never runs concurrently
	// with itself and must not block indefinitely.
	Observe func(idx int, m Measurement)
}

// Backing is the second tier of a Memo: a persistent result store
// consulted when the in-memory tier misses, and written through after
// every fresh measurement. Load returns the stored vector for a memo
// key; Store records one. Both must be safe for concurrent use — they
// are called from the worker pool. The package does not flush or close
// a backing; its owner does (flush-on-close), which is how a Query
// with a cache directory scopes the store to a run.
//
// A backing hit is indistinguishable from an in-memory hit to the
// engine: results are byte-identical whether a run is cold, warm, or
// mixed, at any worker count — only Result.MemoHits/Evaluated move.
type Backing interface {
	Load(key string) (Metrics, bool)
	Store(key string, metrics Metrics)
}

// Memo is a concurrency-safe measurement cache keyed by canonical
// configuration identity. A Memo may be shared by concurrent runs; a
// measurement in flight is joined rather than repeated, and failed
// measurements are not cached (a later run retries them). Each entry
// stores the full metric vector of the measurement.
//
// A Memo may carry a Backing — a persistent second tier (load-on-miss,
// write-through on measure). See NewBackedMemo.
type Memo struct {
	mu      sync.Mutex
	entries map[string]*memoEntry
	backing Backing
}

type memoEntry struct {
	done    chan struct{}
	metrics Metrics
	err     error
}

// NewMemo returns an empty measurement cache.
func NewMemo() *Memo { return &Memo{entries: make(map[string]*memoEntry)} }

// MemoKey composes the memo/store key of one configuration under a
// workload namespace: the namespace and the configuration's canonical
// identity, NUL-joined (NUL cannot appear in either part). This is the
// key Memo and Backing operate on, the record key a result store
// persists, and — because it is reproducible from (namespace, config)
// alone — the unit of exchange when runs ship results to each other
// (shard-merge, cluster store sync).
func MemoKey(workload string, c *Config) string {
	return workload + "\x00" + c.Key()
}

// NewBackedMemo returns a measurement cache whose misses fall through
// to a persistent backing and whose fresh measurements write through
// to it. A nil backing is equivalent to NewMemo.
func NewBackedMemo(b Backing) *Memo {
	m := NewMemo()
	m.backing = b
	return m
}

// Len returns the number of cached (or in-flight) measurements.
func (m *Memo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// do returns the cached vector for key or computes it with f, joining an
// in-flight computation if one exists. hit reports whether the value
// predates this call — an in-memory entry and a backing entry count
// alike. A fresh computation writes through to the backing.
func (m *Memo) do(key string, f func() (Metrics, error)) (mx Metrics, hit bool, err error) {
	m.mu.Lock()
	if e, ok := m.entries[key]; ok {
		m.mu.Unlock()
		<-e.done
		return e.metrics, true, e.err
	}
	e := &memoEntry{done: make(chan struct{})}
	m.entries[key] = e
	m.mu.Unlock()

	// Both tiers are consulted outside the mutex: a backing may do
	// I/O, and concurrent callers of the same key join on e.done
	// rather than the lock, so the worker pool never serializes
	// behind a lookup. The loaded value lands in the in-memory entry,
	// so the backing is consulted once per key per memo.
	if m.backing != nil {
		if mx, ok := m.backing.Load(key); ok {
			e.metrics = mx
			close(e.done)
			return mx, true, nil
		}
	}
	e.metrics, e.err = f()
	if e.err != nil {
		m.mu.Lock()
		delete(m.entries, key)
		m.mu.Unlock()
	} else if m.backing != nil {
		m.backing.Store(key, e.metrics)
	}
	close(e.done)
	return e.metrics, false, e.err
}

// peek reports whether key is already resolvable without measuring:
// an in-memory entry (including one in flight) or a backing-store
// record. Unlike do, a backing hit is not promoted into the in-memory
// tier — peek is a pure presence probe, used by delta re-exploration
// to decide what to skip.
func (m *Memo) peek(key string) bool {
	m.mu.Lock()
	_, ok := m.entries[key]
	m.mu.Unlock()
	if ok {
		return true
	}
	if m.backing != nil {
		_, ok = m.backing.Load(key)
	}
	return ok
}

// Engine is the one exploration engine. It is stateless — the zero
// value is ready to use — and every public exploration surface (the
// flexos.Query builder, the deprecated Run* wrappers, the figures
// package) funnels into its Run method.
type Engine struct{}

// outcome is one configuration's reusable measurement slot. Workers
// write outcomes into a preallocated slot array — never through a
// per-configuration channel send or heap allocation — and hand whole
// spans of filled slots to the coordinator at batch granularity.
type outcome struct {
	metrics Metrics
	err     error
	hit     bool
}

// batch sizing for both dispatch modes: large enough to amortize
// claim/handoff costs, small enough to keep the pool load-balanced and
// decision latency low.
const maxBatch = 64

// runState is the coordinator-owned decision bookkeeping of one run.
// The decided / valued / failsBudget frontiers are bitsets (one bit
// per configuration, extending internal/poset's bitset currency to the
// engine), so frontier updates and queries are allocation-free and
// cache-dense at 10k–1M-point space sizes.
type runState struct {
	req    *Request
	res    *Result
	cfgs   []*Config
	metric Metric
	keys   []string
	canon  []int32
	twins  map[int32][]int32

	decided     poset.Bitset
	valued      poset.Bitset
	failsBudget poset.Bitset
	done        int

	canceled bool
	failed   bool
	errs     []failedMeasure
}

type failedMeasure struct {
	idx int
	err error
}

// fill values configuration i from a measurement (fresh, memo-hit, or
// twin-inherited) and decides it.
func (st *runState) fill(i int, mx Metrics, cached bool) {
	m := &st.res.Measurements[i]
	m.Metrics = mx
	m.Perf = st.metric.Value(mx)
	m.Evaluated = true
	m.Cached = cached
	if cached {
		st.res.MemoHits++
	} else {
		st.res.Evaluated++
		st.res.Measured++
	}
	st.valued.Set(i)
	if failsMonotone(st.res.Constraints, mx) {
		st.failsBudget.Set(i)
	}
	st.markDecided(i)
}

// skip decides configuration i without a value: the budget never
// reached it (budgeted search) or its key is already stored (delta
// re-exploration). The measurement stays unevaluated and unpruned.
func (st *runState) skip(i int) {
	st.res.Skipped++
	st.markDecided(i)
}

// markDecided records the decision and fires the per-decision hooks.
func (st *runState) markDecided(i int) {
	st.decided.Set(i)
	st.done++
	if st.req.Progress != nil {
		st.req.Progress(st.done, len(st.cfgs))
	}
	if st.req.Observe != nil {
		st.req.Observe(i, st.res.Measurements[i])
	}
}

// measureOne resolves one canonical configuration: canceled-while-
// queued check, then memo (join/backing/fresh) or a direct measure
// call. Safe for concurrent use; the result lands in a caller-owned
// slot, never on the heap.
func (st *runState) measureOne(ctx context.Context, i int32, slot *outcome) {
	if err := ctx.Err(); err != nil {
		// Canceled while queued: report without measuring (and without
		// planting a memo entry).
		slot.err = err
		return
	}
	if st.req.Memo != nil {
		slot.metrics, slot.hit, slot.err = st.req.Memo.do(st.keys[i], func() (Metrics, error) {
			return st.req.Measure(st.cfgs[i])
		})
		return
	}
	slot.metrics, slot.err = st.req.Measure(st.cfgs[i])
}

// Run explores a configuration space: it builds the grouped safety
// order, fans measurement across a worker pool in batch-claimed chunks,
// deduplicates identical configurations (within the space, and — given
// a Memo — across spaces and runs), prunes monotonically when asked,
// and extracts the safest feasible configurations. The Result is
// byte-identical for every worker count: decisions depend only on the
// safety order, the constraints and the deterministic measure function;
// pool scheduling only affects wall-clock time.
//
// Identical configurations within one space are measured once: the
// lowest-index occurrence measures, its twins inherit the value with
// Cached set.
//
// Dispatch runs in one of two modes. When no monotone constraint can
// prune (or pruning is off), every configuration is independently
// measurable: workers steal fixed-size chunks of the canonical
// measurement list off a shared atomic cursor — no per-configuration
// channel traffic, no per-measurement allocation. When pruning is
// active, the coordinator releases configurations in safety-DAG order
// (a configuration is decided only after all its poset predecessors)
// and hands them to the pool as batches; idle workers pull the next
// batch, so load balancing survives uneven measure costs.
//
// Cancellation: when ctx is canceled or its deadline expires, Run stops
// submitting measurements, waits for in-flight ones to return (measure
// functions are never interrupted mid-call — have them watch the same
// ctx to keep cancellation prompt), and returns an error wrapping
// ErrCanceled. No goroutines outlive the call and a shared Memo is left
// reusable.
//
// Errors: a measure failure surfaces as a *MeasureError for the
// lowest-index failing configuration (stable across worker counts). A
// completed run whose constraints no configuration satisfies returns
// the fully-populated Result together with ErrNoFeasible.
func (Engine) Run(ctx context.Context, req Request) (*Result, error) {
	if req.Measure == nil {
		return nil, errors.New("explore: request has no measure function")
	}
	if req.MeasureBudget < 0 {
		req.MeasureBudget = 0
	}
	if req.DeltaOnly {
		if req.MeasureBudget > 0 {
			return nil, errors.New("explore: DeltaOnly and MeasureBudget are mutually exclusive")
		}
		if req.Memo == nil {
			return nil, errors.New("explore: DeltaOnly requires a Memo (usually a backed one)")
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, canceledError(ctx)
	}
	metric := req.Metric
	if metric == "" {
		if len(req.Constraints) > 0 {
			metric = req.Constraints[0].Metric
		}
		if metric == "" {
			metric = scenario.MetricThroughput
		}
	}
	cfgs, err := req.Shard.slice(req.Space)
	if err != nil {
		return nil, err
	}
	workers := req.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}

	n := len(cfgs)
	order := newSpaceOrder(cfgs)
	res := &Result{
		Measurements: make([]Measurement, n),
		Total:        n,
		Metric:       metric,
		Constraints:  append([]Constraint(nil), req.Constraints...),
		Shard:        req.Shard,
		order:        order,
	}
	// Budget echoes the ranking metric's bound for legacy consumers
	// (Result.String, single-budget callers).
	for _, c := range res.Constraints {
		if c.Metric == metric {
			res.Budget = c.Bound
			break
		}
	}
	for i, c := range cfgs {
		res.Measurements[i].Config = c
	}

	// Canonical-identity groups. Only the lowest-index member of each
	// group is measured; its twins inherit the value. Identical configs
	// occupy the same poset position (same predecessor sets), so their
	// pruning decisions always agree.
	keys := make([]string, n)
	canon := make([]int32, n)
	var twins map[int32][]int32
	group := make(map[string]int32, n)
	for i, c := range cfgs {
		keys[i] = MemoKey(req.Workload, c)
		if first, ok := group[keys[i]]; ok {
			canon[i] = first
			if twins == nil {
				twins = make(map[int32][]int32)
			}
			twins[first] = append(twins[first], int32(i))
		} else {
			group[keys[i]] = int32(i)
			canon[i] = int32(i)
		}
	}

	st := &runState{
		req:         &req,
		res:         res,
		cfgs:        cfgs,
		metric:      metric,
		keys:        keys,
		canon:       canon,
		twins:       twins,
		decided:     poset.NewBitset(n),
		valued:      poset.NewBitset(n),
		failsBudget: poset.NewBitset(n),
	}

	// Pruning can only ever fire when a monotone constraint exists;
	// without one, every configuration is measured regardless of DAG
	// order, so the engine takes the flat path — no Hasse edges, no
	// per-decision ordering, pure batch-stolen measurement. A budget
	// or a delta request selects the guided modes instead.
	switch {
	case req.DeltaOnly:
		st.runDelta(ctx, workers)
	case req.MeasureBudget > 0:
		st.runBudgeted(ctx, order, workers)
	case req.Prune && anyMonotone(req.Constraints):
		st.runDAG(ctx, order, workers)
	default:
		st.runFlat(ctx, workers)
	}

	// Cancellation wins over measure errors it provoked: a cooperative
	// measure function typically surfaces the context's error, which
	// must not masquerade as a measurement failure. But a run whose
	// every configuration was decided is complete — a deadline firing
	// between the last decision and the return must not discard it.
	if st.done < n && (st.canceled || ctx.Err() != nil) {
		return nil, canceledError(ctx)
	}
	if st.failed {
		// Report the lowest-index failure so the error is stable across
		// worker counts when a single configuration is at fault.
		sort.Slice(st.errs, func(a, b int) bool { return st.errs[a].idx < st.errs[b].idx })
		o := st.errs[0]
		c := cfgs[o.idx]
		return nil, &MeasureError{ID: c.ID, Key: c.Key(), Label: c.Label(), Err: o.err}
	}

	res.Safest = order.safest(res)
	// A delta run's report deliberately covers only the re-measured
	// slice of the space; an empty Safest there means "nothing new was
	// both measured and feasible", not infeasibility.
	if len(res.Constraints) > 0 && res.Total > 0 && len(res.Safest) == 0 && !req.DeltaOnly {
		return res, ErrNoFeasible
	}
	return res, nil
}

// runFlat measures every canonical configuration with no ordering
// between decisions: workers claim chunks of the measurement list off a
// shared atomic cursor (idle workers steal the next chunk as soon as
// they finish one — chunk size adapts from maxBatch down to 1 as the
// list drains, so the tail stays balanced), write outcomes into
// preallocated slots, and report whole spans to the coordinator. The
// hot loop performs no channel operation and no allocation per
// configuration.
func (st *runState) runFlat(ctx context.Context, workers int) {
	list := make([]int32, 0, len(st.cfgs))
	for i := range st.cfgs {
		if int(st.canon[i]) == i {
			list = append(list, int32(i))
		}
	}
	st.runList(ctx, workers, list)
}

// runList is runFlat's engine room over an explicit canonical
// measurement list: the flat path passes every canonical index, delta
// re-exploration passes only the store-absent ones. Twins of each
// listed index are filled alongside it.
func (st *runState) runList(ctx context.Context, workers int, list []int32) {
	if len(list) == 0 {
		return
	}
	if workers > len(list) {
		workers = len(list)
	}
	slots := make([]outcome, len(list))
	spanCap := len(list)
	if spanCap > 1024 {
		spanCap = 1024
	}
	var (
		cursor atomic.Int64
		stop   atomic.Bool
		spans  = make(chan [2]int32, spanCap)
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total := int64(len(list))
			for !stop.Load() {
				// Guided chunk sizing: claim 1/(4·workers) of what is
				// left, clamped to [1, maxBatch].
				sz := (total - cursor.Load()) / int64(4*workers)
				if sz < 1 {
					sz = 1
				} else if sz > maxBatch {
					sz = maxBatch
				}
				hi := cursor.Add(sz)
				lo := hi - sz
				if lo >= total {
					return
				}
				if hi > total {
					hi = total
				}
				for k := lo; k < hi; k++ {
					st.measureOne(ctx, list[k], &slots[k])
					if slots[k].err != nil {
						// First failure winds the pool down; the spans
						// already claimed still report, so the
						// coordinator sees every outcome.
						stop.Store(true)
					}
				}
				spans <- [2]int32{int32(lo), int32(hi)}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(spans)
	}()

	cancelCh := ctx.Done()
	for {
		select {
		case <-cancelCh:
			st.canceled = true
			stop.Store(true)
			cancelCh = nil
		case s, ok := <-spans:
			if !ok {
				return
			}
			for k := s[0]; k < s[1]; k++ {
				i := int(list[k])
				o := &slots[k]
				if st.canceled {
					continue
				}
				if o.err != nil {
					st.failed = true
					st.errs = append(st.errs, failedMeasure{idx: i, err: o.err})
					continue
				}
				if st.failed {
					continue
				}
				st.fill(i, o.metrics, o.hit)
				for _, t := range st.twins[int32(i)] {
					st.fill(int(t), o.metrics, true)
				}
			}
		}
	}
}

// runDAG measures in safety-DAG order for monotonic pruning: the
// coordinator owns all decision state, releases a configuration only
// when every poset predecessor is decided, accumulates ready
// configurations into batches carved from a single arena, and hands
// batches to the pool over a small channel with non-blocking sends (an
// overflow queue keeps the coordinator live, so it can never deadlock
// against workers reporting completions). Workers write outcomes into
// slots indexed by configuration and return the batch itself as the
// completion notice — per-configuration channel traffic and per-
// measurement allocation are gone, which is what the batch dispatch is
// for.
func (st *runState) runDAG(ctx context.Context, order *spaceOrder, workers int) {
	n := len(st.cfgs)
	if n == 0 {
		return
	}
	preds, succs := order.edges()
	remaining := make([]int32, n)
	for i := 0; i < n; i++ {
		remaining[i] = int32(len(preds[i]))
	}

	var (
		slots    = make([]outcome, n)
		jobs     = make(chan []int32, workers*2)
		doneCh   = make(chan []int32, workers*4)
		wg       sync.WaitGroup
		arena    = make([]int32, 0, n)  // every submitted index, in release order
		flushed  = 0                    // arena[:flushed] has been batched
		unsent   [][]int32              // batches not yet handed to the pool
		inFlight = 0                    // configurations handed to the pool, outcome pending
		waiters  map[int32][]int32      // twins waiting on their canonical index
		toProp   = make([]int32, 0, 64) // decided nodes whose successors need updating
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range jobs {
				for _, i := range b {
					st.measureOne(ctx, i, &slots[i])
				}
				doneCh <- b
			}
		}()
	}

	ready := func(i int) {
		if st.req.Prune {
			for _, pr := range preds[i] {
				if st.failsBudget.Test(int(pr)) {
					st.res.Measurements[i].Pruned = true
					st.failsBudget.Set(i) // propagate
					st.markDecided(i)
					toProp = append(toProp, int32(i))
					return
				}
			}
		}
		if c := st.canon[i]; int(c) != i {
			// An identical twin: inherit the canonical measurement, or
			// wait for it (twins share predecessor sets, so the
			// canonical node is ready by now too).
			if st.valued.Test(int(c)) {
				st.fill(i, st.res.Measurements[c].Metrics, true)
				toProp = append(toProp, int32(i))
			} else {
				if waiters == nil {
					waiters = make(map[int32][]int32)
				}
				waiters[c] = append(waiters[c], int32(i))
			}
			return
		}
		if st.failed || st.canceled {
			return // abandoned run: stop submitting new measurements
		}
		arena = append(arena, int32(i))
	}
	// drain processes decision consequences until quiescent: successors
	// of decided nodes whose predecessors are now all decided become
	// ready themselves (measured, inherited, or pruned in turn).
	drain := func() {
		for len(toProp) > 0 {
			i := toProp[0]
			toProp = toProp[1:]
			for _, j := range succs[i] {
				if remaining[j]--; remaining[j] == 0 && !st.decided.Test(int(j)) {
					ready(int(j))
				}
			}
		}
	}
	// flush carves the newly released span of the arena into batches
	// sized to spread across the pool, and trySend hands them over
	// without ever blocking the coordinator.
	flush := func() {
		pend := len(arena) - flushed
		if pend == 0 {
			return
		}
		sz := (pend + workers - 1) / workers
		if sz < 1 {
			sz = 1
		} else if sz > maxBatch {
			sz = maxBatch
		}
		for flushed < len(arena) {
			hi := flushed + sz
			if hi > len(arena) {
				hi = len(arena)
			}
			b := arena[flushed:hi:hi]
			unsent = append(unsent, b)
			inFlight += len(b)
			flushed = hi
		}
	}
	trySend := func() {
		for len(unsent) > 0 {
			select {
			case jobs <- unsent[0]:
				unsent = unsent[1:]
			default:
				return
			}
		}
	}
	abandon := func() {
		// Batches never handed to the pool produce no outcomes; stop
		// waiting for them.
		for _, b := range unsent {
			inFlight -= len(b)
		}
		unsent = nil
	}

	// Seed with the roots of the safety DAG, then react to completions.
	for i := 0; i < n; i++ {
		if remaining[i] == 0 {
			ready(i)
		}
	}
	drain()
	flush()
	trySend()

	cancelCh := ctx.Done()
	for inFlight > 0 {
		var b []int32
		select {
		case <-cancelCh:
			st.canceled = true
			cancelCh = nil
			abandon()
			continue
		case b = <-doneCh:
		}
		for _, i32 := range b {
			inFlight--
			i := int(i32)
			o := &slots[i]
			if st.canceled {
				continue
			}
			if o.err != nil {
				if !st.failed {
					st.failed = true
					abandon()
				}
				st.errs = append(st.errs, failedMeasure{idx: i, err: o.err})
				continue
			}
			if st.failed {
				continue
			}
			st.fill(i, o.metrics, o.hit)
			toProp = append(toProp, i32)
			for _, t := range waiters[i32] {
				st.fill(int(t), o.metrics, true)
				toProp = append(toProp, t)
			}
			delete(waiters, i32)
		}
		drain()
		flush()
		trySend()
	}
	close(jobs)
	wg.Wait()
}

// anyMonotone reports whether any constraint can drive pruning.
func anyMonotone(cs []Constraint) bool {
	for _, c := range cs {
		if c.Monotone() {
			return true
		}
	}
	return false
}

// canceledError wraps ErrCanceled with the context's cause, so callers
// can distinguish a deadline from an explicit cancel via errors.Is.
func canceledError(ctx context.Context) error {
	if cause := context.Cause(ctx); cause != nil {
		return &canceled{cause: cause}
	}
	return ErrCanceled
}

type canceled struct{ cause error }

func (c *canceled) Error() string { return ErrCanceled.Error() + ": " + c.cause.Error() }

// Unwrap lets errors.Is see both ErrCanceled and the context cause
// (context.Canceled or context.DeadlineExceeded).
func (c *canceled) Unwrap() []error { return []error{ErrCanceled, c.cause} }
