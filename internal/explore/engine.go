package explore

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"

	"flexos/internal/scenario"
)

// Options configures the deprecated RunOpts / RunMetrics wrappers.
//
// Deprecated: build a Request (or a flexos.Query) instead; Options
// survives only so legacy call sites keep compiling.
type Options struct {
	// Workers is the number of concurrent measurement goroutines; values
	// <= 0 select runtime.GOMAXPROCS(0). The result is identical for
	// every worker count (the simulated machine is deterministic), so
	// callers pick workers purely for wall-clock speed.
	Workers int

	// Prune enables poset-aware monotonic pruning (§5): a configuration
	// is skipped when a strictly-less-safe ancestor already missed the
	// budget. The engine keeps pruning sound under concurrent
	// completion order by deferring every decision about a configuration
	// until all of its poset predecessors are decided.
	Prune bool

	// Memo, when non-nil, caches measurements across runs keyed by
	// canonical configuration identity (Config.Key), so identical points
	// shared by several spaces are measured once. Share one Memo only
	// among runs whose measure functions agree for identical configs —
	// use Workload to namespace different benchmarks within one Memo.
	// Entries carry full metric vectors, so runs budgeting on different
	// metrics can share a memo as long as the workload matches.
	Memo *Memo

	// Workload namespaces memo keys (e.g. "redis", "nginx",
	// "redis-get90/240"), letting a single Memo serve several measure
	// functions without collisions.
	Workload string

	// Progress, when non-nil, is called after each configuration is
	// decided (measured, memo-filled or pruned) with the number decided
	// so far and the space size. It runs on the coordinating goroutine,
	// never concurrently with itself.
	Progress func(done, total int)
}

// Request describes one exploration for Engine.Run: the space, how to
// measure it, the feasibility constraints, and the engine knobs.
type Request struct {
	// Space is the configuration space to explore.
	Space []*Config

	// Measure benchmarks one configuration into a full metric vector.
	// It must be deterministic, and safe for concurrent use when
	// Workers != 1. It is not interrupted mid-call on cancellation;
	// close over the run's context inside it to bound cancel latency.
	Measure MeasureMetrics

	// Metric is the ranking metric: the dimension Measurement.Perf and
	// the DOT shading report. Empty selects the first constraint's
	// metric, or throughput when there are no constraints.
	Metric Metric

	// Constraints is the feasibility conjunction: a configuration is
	// feasible when its vector satisfies every constraint. Constraints
	// in their natural direction (see Constraint.Monotone) also drive
	// monotonic pruning when Prune is set. An empty slice means every
	// measured configuration is feasible.
	Constraints []Constraint

	// Workers is the number of concurrent measurement goroutines;
	// values <= 0 select runtime.GOMAXPROCS(0). Results are
	// byte-identical for every worker count.
	Workers int

	// Prune enables poset-aware monotonic pruning (§5): a configuration
	// is skipped when a strictly-less-safe ancestor already violated a
	// monotone constraint. Sound under concurrent completion order: a
	// configuration is decided only after all its poset predecessors.
	Prune bool

	// Memo, when non-nil, caches measurements across runs keyed by
	// canonical configuration identity (Config.Key). Share one Memo
	// only among runs whose measure functions agree for identical
	// configurations; use Workload to namespace several benchmarks in
	// one memo. Entries carry full metric vectors, so runs constraining
	// different metrics can share a memo as long as the workload
	// matches.
	Memo *Memo

	// Workload namespaces memo keys (e.g. "redis-get90/240").
	Workload string

	// Shard, when non-zero, restricts the run to one deterministic
	// slice of Space: the Index-th of Count order-preserving,
	// non-overlapping contiguous partitions of the canonical
	// enumeration (see Shard). The memo keys of the sharded run are
	// exactly those the full run would use, which is what lets N shard
	// runs populate N stores whose merge warm-starts the unsharded
	// exploration.
	Shard Shard

	// Progress, when non-nil, is called after each configuration is
	// decided with the number decided so far and the space size. Runs
	// on the coordinating goroutine, never concurrently with itself.
	Progress func(done, total int)

	// Observe, when non-nil, is called on the coordinating goroutine
	// after each configuration is decided, with the configuration's
	// index in the explored slice of Space (the whole Space when Shard
	// is zero — with a shard, indices are relative to the shard's
	// slice, like Result.Measurements) and its (final) Measurement — measured,
	// memo-filled, inherited from a twin, or pruned. It is what
	// Query.Stream builds on. Like Progress it never runs concurrently
	// with itself and must not block indefinitely.
	Observe func(idx int, m Measurement)
}

// Backing is the second tier of a Memo: a persistent result store
// consulted when the in-memory tier misses, and written through after
// every fresh measurement. Load returns the stored vector for a memo
// key; Store records one. Both must be safe for concurrent use — they
// are called from the worker pool. The package does not flush or close
// a backing; its owner does (flush-on-close), which is how a Query
// with a cache directory scopes the store to a run.
//
// A backing hit is indistinguishable from an in-memory hit to the
// engine: results are byte-identical whether a run is cold, warm, or
// mixed, at any worker count — only Result.MemoHits/Evaluated move.
type Backing interface {
	Load(key string) (Metrics, bool)
	Store(key string, metrics Metrics)
}

// Memo is a concurrency-safe measurement cache keyed by canonical
// configuration identity. A Memo may be shared by concurrent runs; a
// measurement in flight is joined rather than repeated, and failed
// measurements are not cached (a later run retries them). Each entry
// stores the full metric vector of the measurement.
//
// A Memo may carry a Backing — a persistent second tier (load-on-miss,
// write-through on measure). See NewBackedMemo.
type Memo struct {
	mu      sync.Mutex
	entries map[string]*memoEntry
	backing Backing
}

type memoEntry struct {
	done    chan struct{}
	metrics Metrics
	err     error
}

// NewMemo returns an empty measurement cache.
func NewMemo() *Memo { return &Memo{entries: make(map[string]*memoEntry)} }

// NewBackedMemo returns a measurement cache whose misses fall through
// to a persistent backing and whose fresh measurements write through
// to it. A nil backing is equivalent to NewMemo.
func NewBackedMemo(b Backing) *Memo {
	m := NewMemo()
	m.backing = b
	return m
}

// Len returns the number of cached (or in-flight) measurements.
func (m *Memo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// do returns the cached vector for key or computes it with f, joining an
// in-flight computation if one exists. hit reports whether the value
// predates this call — an in-memory entry and a backing entry count
// alike. A fresh computation writes through to the backing.
func (m *Memo) do(key string, f func() (Metrics, error)) (mx Metrics, hit bool, err error) {
	m.mu.Lock()
	if e, ok := m.entries[key]; ok {
		m.mu.Unlock()
		<-e.done
		return e.metrics, true, e.err
	}
	e := &memoEntry{done: make(chan struct{})}
	m.entries[key] = e
	m.mu.Unlock()

	// Both tiers are consulted outside the mutex: a backing may do
	// I/O, and concurrent callers of the same key join on e.done
	// rather than the lock, so the worker pool never serializes
	// behind a lookup. The loaded value lands in the in-memory entry,
	// so the backing is consulted once per key per memo.
	if m.backing != nil {
		if mx, ok := m.backing.Load(key); ok {
			e.metrics = mx
			close(e.done)
			return mx, true, nil
		}
	}
	e.metrics, e.err = f()
	if e.err != nil {
		m.mu.Lock()
		delete(m.entries, key)
		m.mu.Unlock()
	} else if m.backing != nil {
		m.backing.Store(key, e.metrics)
	}
	close(e.done)
	return e.metrics, false, e.err
}

// Engine is the one exploration engine. It is stateless — the zero
// value is ready to use — and every public exploration surface (the
// flexos.Query builder, the deprecated Run* wrappers, the figures
// package) funnels into its Run method.
type Engine struct{}

// Run explores a configuration space: it builds the safety poset, fans
// measurement across a worker pool, deduplicates identical
// configurations (within the space, and — given a Memo — across spaces
// and runs), prunes monotonically when asked, and extracts the safest
// feasible configurations. The Result is byte-identical for every
// worker count: decisions depend only on the poset, the constraints and
// the deterministic measure function; pool scheduling only affects
// wall-clock time.
//
// Identical configurations within one space are measured once: the
// lowest-index occurrence measures, its twins inherit the value with
// Cached set.
//
// Cancellation: when ctx is canceled or its deadline expires, Run stops
// submitting measurements, waits for in-flight ones to return (measure
// functions are never interrupted mid-call — have them watch the same
// ctx to keep cancellation prompt), and returns an error wrapping
// ErrCanceled. No goroutines outlive the call and a shared Memo is left
// reusable.
//
// Errors: a measure failure surfaces as a *MeasureError for the
// lowest-index failing configuration (stable across worker counts). A
// completed run whose constraints no configuration satisfies returns
// the fully-populated Result together with ErrNoFeasible.
func (Engine) Run(ctx context.Context, req Request) (*Result, error) {
	if req.Measure == nil {
		return nil, errors.New("explore: request has no measure function")
	}
	if err := ctx.Err(); err != nil {
		return nil, canceledError(ctx)
	}
	metric := req.Metric
	if metric == "" {
		if len(req.Constraints) > 0 {
			metric = req.Constraints[0].Metric
		}
		if metric == "" {
			metric = scenario.MetricThroughput
		}
	}
	cfgs, err := req.Shard.slice(req.Space)
	if err != nil {
		return nil, err
	}
	workers := req.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}

	p := Poset(cfgs)
	res := &Result{
		Measurements: make([]Measurement, len(cfgs)),
		Total:        len(cfgs),
		Metric:       metric,
		Constraints:  append([]Constraint(nil), req.Constraints...),
		Shard:        req.Shard,
		poset:        p,
	}
	// Budget echoes the ranking metric's bound for legacy consumers
	// (Result.String, single-budget callers).
	for _, c := range res.Constraints {
		if c.Metric == metric {
			res.Budget = c.Bound
			break
		}
	}
	for i, c := range cfgs {
		res.Measurements[i].Config = c
	}

	n := len(cfgs)
	preds := make([][]int, n)
	succs := make([][]int, n)
	for _, e := range p.Edges() {
		preds[e[1]] = append(preds[e[1]], e[0])
		succs[e[0]] = append(succs[e[0]], e[1])
	}

	// Canonical-identity groups. Only the lowest-index member of each
	// group is measured; its twins inherit the value. Identical configs
	// occupy the same poset position (same predecessor sets), so their
	// pruning decisions always agree.
	keys := make([]string, n)
	canon := make([]int, n)
	group := make(map[string]int, n)
	for i, c := range cfgs {
		keys[i] = req.Workload + "\x00" + c.Key()
		if first, ok := group[keys[i]]; ok {
			canon[i] = first
		} else {
			group[keys[i]] = i
			canon[i] = i
		}
	}

	// Worker pool. Workers only run measure (through the memo); all
	// scheduling state below is owned by the coordinating goroutine.
	// Both channels are sized for the whole space, so neither submit
	// nor completion ever blocks — which is what lets the coordinator
	// drain cleanly on cancellation.
	type outcome struct {
		idx     int
		metrics Metrics
		hit     bool
		err     error
	}
	jobs := make(chan int, n)
	outcomes := make(chan outcome, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				var o outcome
				o.idx = i
				if err := ctx.Err(); err != nil {
					// Canceled while queued: report without measuring
					// (and without planting a memo entry).
					o.err = err
				} else if req.Memo != nil {
					o.metrics, o.hit, o.err = req.Memo.do(keys[i], func() (Metrics, error) {
						return req.Measure(cfgs[i])
					})
				} else {
					o.metrics, o.err = req.Measure(cfgs[i])
				}
				outcomes <- o
			}
		}()
	}

	var (
		remaining   = make([]int, n) // undecided predecessors
		failsBudget = make([]bool, n)
		decided     = make([]bool, n)
		valued      = make([]bool, n)  // index holds a metric vector
		waiters     = make([][]int, n) // twins waiting on their canonical index
		toProp      []int              // decided nodes whose successors need updating
		inFlight    int
		done        int
		failed      bool
		canceled    bool
		errs        []outcome
	)
	for i := range cfgs {
		remaining[i] = len(preds[i])
	}

	markDecided := func(i int) {
		decided[i] = true
		done++
		if req.Progress != nil {
			req.Progress(done, n)
		}
		if req.Observe != nil {
			req.Observe(i, res.Measurements[i])
		}
		toProp = append(toProp, i)
	}
	fill := func(i int, mx Metrics, cached bool) {
		m := &res.Measurements[i]
		m.Metrics = mx
		m.Perf = metric.Value(mx)
		m.Evaluated = true
		m.Cached = cached
		if cached {
			res.MemoHits++
		} else {
			res.Evaluated++
		}
		valued[i] = true
		if failsMonotone(res.Constraints, mx) {
			failsBudget[i] = true
		}
		markDecided(i)
	}
	ready := func(i int) {
		if req.Prune {
			for _, pr := range preds[i] {
				if failsBudget[pr] {
					res.Measurements[i].Pruned = true
					failsBudget[i] = true // propagate
					markDecided(i)
					return
				}
			}
		}
		if c := canon[i]; c != i {
			// An identical twin: inherit the canonical measurement, or
			// wait for it (twins share predecessor sets, so the
			// canonical node is ready by now too).
			if valued[c] {
				fill(i, res.Measurements[c].Metrics, true)
			} else {
				waiters[c] = append(waiters[c], i)
			}
			return
		}
		if failed || canceled {
			return // abandoned run: stop submitting new measurements
		}
		inFlight++
		jobs <- i
	}
	// drain processes decision consequences until quiescent: successors
	// of decided nodes whose predecessors are now all decided become
	// ready themselves (measured, inherited, or pruned in turn).
	drain := func() {
		for len(toProp) > 0 {
			i := toProp[0]
			toProp = toProp[1:]
			for _, j := range succs[i] {
				remaining[j]--
				if remaining[j] == 0 && !decided[j] {
					ready(j)
				}
			}
		}
	}

	// Seed with the roots of the safety DAG, then react to completions.
	for i := range cfgs {
		if remaining[i] == 0 {
			ready(i)
		}
	}
	drain()
	for inFlight > 0 {
		var o outcome
		if canceled || failed {
			// Winding down: just collect what is already in flight.
			o = <-outcomes
		} else {
			select {
			case <-ctx.Done():
				canceled = true
				continue
			case o = <-outcomes:
			}
		}
		inFlight--
		if canceled {
			continue
		}
		if o.err != nil {
			failed = true
			errs = append(errs, o)
			continue
		}
		if failed {
			continue
		}
		fill(o.idx, o.metrics, o.hit)
		for _, w := range waiters[o.idx] {
			fill(w, o.metrics, true)
		}
		waiters[o.idx] = nil
		drain()
	}
	close(jobs)
	wg.Wait()

	// Cancellation wins over measure errors it provoked: a cooperative
	// measure function typically surfaces the context's error, which
	// must not masquerade as a measurement failure. But a run whose
	// every configuration was decided is complete — a deadline firing
	// between the last decision and the return must not discard it.
	if done < n && (canceled || ctx.Err() != nil) {
		return nil, canceledError(ctx)
	}
	if failed {
		// Report the lowest-index failure so the error is stable across
		// worker counts when a single configuration is at fault.
		sort.Slice(errs, func(a, b int) bool { return errs[a].idx < errs[b].idx })
		o := errs[0]
		c := cfgs[o.idx]
		return nil, &MeasureError{ID: c.ID, Key: c.Key(), Label: c.Label(), Err: o.err}
	}

	res.Safest = safest(p, res)
	if len(res.Constraints) > 0 && res.Total > 0 && len(res.Safest) == 0 {
		return res, ErrNoFeasible
	}
	return res, nil
}

// canceledError wraps ErrCanceled with the context's cause, so callers
// can distinguish a deadline from an explicit cancel via errors.Is.
func canceledError(ctx context.Context) error {
	if cause := context.Cause(ctx); cause != nil {
		return &canceled{cause: cause}
	}
	return ErrCanceled
}

type canceled struct{ cause error }

func (c *canceled) Error() string { return ErrCanceled.Error() + ": " + c.cause.Error() }

// Unwrap lets errors.Is see both ErrCanceled and the context cause
// (context.Canceled or context.DeadlineExceeded).
func (c *canceled) Unwrap() []error { return []error{ErrCanceled, c.cause} }
