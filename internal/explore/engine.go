package explore

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"flexos/internal/scenario"
)

// Options configures a RunOpts / RunMetrics exploration.
type Options struct {
	// Workers is the number of concurrent measurement goroutines; values
	// <= 0 select runtime.GOMAXPROCS(0). The result is identical for
	// every worker count (the simulated machine is deterministic), so
	// callers pick workers purely for wall-clock speed.
	Workers int

	// Prune enables poset-aware monotonic pruning (§5): a configuration
	// is skipped when a strictly-less-safe ancestor already missed the
	// budget. The engine keeps pruning sound under concurrent
	// completion order by deferring every decision about a configuration
	// until all of its poset predecessors are decided.
	Prune bool

	// Memo, when non-nil, caches measurements across runs keyed by
	// canonical configuration identity (Config.Key), so identical points
	// shared by several spaces are measured once. Share one Memo only
	// among runs whose measure functions agree for identical configs —
	// use Workload to namespace different benchmarks within one Memo.
	// Entries carry full metric vectors, so runs budgeting on different
	// metrics can share a memo as long as the workload matches.
	Memo *Memo

	// Workload namespaces memo keys (e.g. "redis", "nginx",
	// "redis-get90/240"), letting a single Memo serve several measure
	// functions without collisions.
	Workload string

	// Progress, when non-nil, is called after each configuration is
	// decided (measured, memo-filled or pruned) with the number decided
	// so far and the space size. It runs on the coordinating goroutine,
	// never concurrently with itself.
	Progress func(done, total int)
}

// Memo is a concurrency-safe measurement cache keyed by canonical
// configuration identity. A Memo may be shared by concurrent runs; a
// measurement in flight is joined rather than repeated, and failed
// measurements are not cached (a later run retries them). Each entry
// stores the full metric vector of the measurement.
type Memo struct {
	mu      sync.Mutex
	entries map[string]*memoEntry
}

type memoEntry struct {
	done    chan struct{}
	metrics Metrics
	err     error
}

// NewMemo returns an empty measurement cache.
func NewMemo() *Memo { return &Memo{entries: make(map[string]*memoEntry)} }

// Len returns the number of cached (or in-flight) measurements.
func (m *Memo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// do returns the cached vector for key or computes it with f, joining an
// in-flight computation if one exists. hit reports whether the value
// predates this call.
func (m *Memo) do(key string, f func() (Metrics, error)) (mx Metrics, hit bool, err error) {
	m.mu.Lock()
	if e, ok := m.entries[key]; ok {
		m.mu.Unlock()
		<-e.done
		return e.metrics, true, e.err
	}
	e := &memoEntry{done: make(chan struct{})}
	m.entries[key] = e
	m.mu.Unlock()

	e.metrics, e.err = f()
	if e.err != nil {
		m.mu.Lock()
		delete(m.entries, key)
		m.mu.Unlock()
	}
	close(e.done)
	return e.metrics, false, e.err
}

// RunOpts explores a configuration space with a parallel, memoized
// engine. It builds the safety poset, fans measurement across a worker
// pool, deduplicates identical configurations (within the space, and —
// given a Memo — across spaces and runs), and prunes monotonically when
// asked. The Result is byte-identical for every worker count: decisions
// depend only on the poset and the deterministic measure function, pool
// scheduling only affects wall-clock time.
//
// Unlike the sequential reference engine (Run), identical configurations
// within one space are measured once here: the lowest-index occurrence
// measures, the twins inherit the value with Cached set.
func RunOpts(cfgs []*Config, measure Measure, budget float64, opts Options) (*Result, error) {
	return RunMetrics(cfgs, liftMeasure(measure), scenario.MetricThroughput, budget, opts)
}

// RunMetrics is the multi-metric form of RunOpts: measurements carry
// full metric vectors, the budget applies to the chosen metric (a floor
// for throughput, a ceiling for latency/memory/boot metrics), and the
// result exposes ParetoFront(). Like RunOpts it is byte-identical for
// every worker count and matches RunMetricsSequential exactly.
func RunMetrics(cfgs []*Config, measure MeasureMetrics, metric Metric, budget float64, opts Options) (*Result, error) {
	if metric == "" {
		metric = scenario.MetricThroughput
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}

	p := Poset(cfgs)
	res := &Result{
		Measurements: make([]Measurement, len(cfgs)),
		Total:        len(cfgs),
		Budget:       budget,
		Metric:       metric,
		poset:        p,
	}
	for i, c := range cfgs {
		res.Measurements[i].Config = c
	}

	n := len(cfgs)
	preds := make([][]int, n)
	succs := make([][]int, n)
	for _, e := range p.Edges() {
		preds[e[1]] = append(preds[e[1]], e[0])
		succs[e[0]] = append(succs[e[0]], e[1])
	}

	// Canonical-identity groups. Only the lowest-index member of each
	// group is measured; its twins inherit the value. Identical configs
	// occupy the same poset position (same predecessor sets), so their
	// pruning decisions always agree.
	keys := make([]string, n)
	canon := make([]int, n)
	group := make(map[string]int, n)
	for i, c := range cfgs {
		keys[i] = opts.Workload + "\x00" + c.Key()
		if first, ok := group[keys[i]]; ok {
			canon[i] = first
		} else {
			group[keys[i]] = i
			canon[i] = i
		}
	}

	// Worker pool. Workers only run measure (through the memo); all
	// scheduling state below is owned by this goroutine.
	type outcome struct {
		idx     int
		metrics Metrics
		hit     bool
		err     error
	}
	jobs := make(chan int, n)
	outcomes := make(chan outcome, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				var o outcome
				o.idx = i
				if opts.Memo != nil {
					o.metrics, o.hit, o.err = opts.Memo.do(keys[i], func() (Metrics, error) {
						return measure(cfgs[i])
					})
				} else {
					o.metrics, o.err = measure(cfgs[i])
				}
				outcomes <- o
			}
		}()
	}

	var (
		remaining   = make([]int, n) // undecided predecessors
		failsBudget = make([]bool, n)
		decided     = make([]bool, n)
		valued      = make([]bool, n)  // index holds a metric vector
		waiters     = make([][]int, n) // twins waiting on their canonical index
		toProp      []int              // decided nodes whose successors need updating
		inFlight    int
		done        int
		failed      bool
		errs        []outcome
	)
	for i := range cfgs {
		remaining[i] = len(preds[i])
	}

	markDecided := func(i int) {
		decided[i] = true
		done++
		if opts.Progress != nil {
			opts.Progress(done, n)
		}
		toProp = append(toProp, i)
	}
	fill := func(i int, mx Metrics, cached bool) {
		m := &res.Measurements[i]
		m.Metrics = mx
		m.Perf = metric.Value(mx)
		m.Evaluated = true
		m.Cached = cached
		if cached {
			res.MemoHits++
		} else {
			res.Evaluated++
		}
		valued[i] = true
		if !metric.Meets(m.Perf, budget) {
			failsBudget[i] = true
		}
		markDecided(i)
	}
	ready := func(i int) {
		if opts.Prune {
			for _, pr := range preds[i] {
				if failsBudget[pr] {
					res.Measurements[i].Pruned = true
					failsBudget[i] = true // propagate
					markDecided(i)
					return
				}
			}
		}
		if c := canon[i]; c != i {
			// An identical twin: inherit the canonical measurement, or
			// wait for it (twins share predecessor sets, so the
			// canonical node is ready by now too).
			if valued[c] {
				fill(i, res.Measurements[c].Metrics, true)
			} else {
				waiters[c] = append(waiters[c], i)
			}
			return
		}
		if failed {
			return // abandoned run: stop submitting new measurements
		}
		inFlight++
		jobs <- i
	}
	// drain processes decision consequences until quiescent: successors
	// of decided nodes whose predecessors are now all decided become
	// ready themselves (measured, inherited, or pruned in turn).
	drain := func() {
		for len(toProp) > 0 {
			i := toProp[0]
			toProp = toProp[1:]
			for _, j := range succs[i] {
				remaining[j]--
				if remaining[j] == 0 && !decided[j] {
					ready(j)
				}
			}
		}
	}

	// Seed with the roots of the safety DAG, then react to completions.
	for i := range cfgs {
		if remaining[i] == 0 {
			ready(i)
		}
	}
	drain()
	for inFlight > 0 {
		o := <-outcomes
		inFlight--
		if o.err != nil {
			failed = true
			errs = append(errs, o)
			continue
		}
		if failed {
			continue
		}
		fill(o.idx, o.metrics, o.hit)
		for _, w := range waiters[o.idx] {
			fill(w, o.metrics, true)
		}
		waiters[o.idx] = nil
		drain()
	}
	close(jobs)
	wg.Wait()

	if failed {
		// Report the lowest-index failure so the error is stable across
		// worker counts when a single configuration is at fault.
		sort.Slice(errs, func(a, b int) bool { return errs[a].idx < errs[b].idx })
		o := errs[0]
		return nil, fmt.Errorf("explore: measuring config %d (%s): %w",
			cfgs[o.idx].ID, cfgs[o.idx].Label(), o.err)
	}

	res.Safest = safest(p, res, metric, budget)
	return res, nil
}
