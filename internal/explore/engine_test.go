package explore

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"flexos/internal/harden"
	"flexos/internal/isolation"
)

// dump serializes everything observable about a Result, so determinism
// tests can compare runs byte for byte (poset structure included, via
// the DOT rendering).
func dump(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "total=%d evaluated=%d memohits=%d budget=%v safest=%v\n",
		r.Total, r.Evaluated, r.MemoHits, r.Budget, r.Safest)
	for i, m := range r.Measurements {
		fmt.Fprintf(&b, "%d id=%d perf=%v eval=%t pruned=%t cached=%t\n",
			i, m.Config.ID, m.Perf, m.Evaluated, m.Pruned, m.Cached)
	}
	b.WriteString(r.DOT("dump"))
	return b.String()
}

// shakyMeasure returns syntheticMeasure values but sleeps a
// config-dependent few microseconds first, shaking up completion order
// across workers so determinism is tested against real reordering.
func shakyMeasure(c *Config) (float64, error) {
	time.Sleep(time.Duration(c.ID%7) * time.Microsecond)
	return syntheticMeasure(c)
}

func TestEngineMatchesSequentialOracle(t *testing.T) {
	cfgs := Fig6Space(fig6Comps)
	for _, prune := range []bool{false, true} {
		want, err := Run(cfgs, syntheticMeasure, 600, prune)
		if err != nil {
			t.Fatal(err)
		}
		wantDump := dump(want)
		for _, workers := range []int{1, 4, 8} {
			got, err := RunOpts(cfgs, shakyMeasure, 600, Options{Workers: workers, Prune: prune})
			if err != nil {
				t.Fatal(err)
			}
			if gotDump := dump(got); gotDump != wantDump {
				t.Fatalf("prune=%t workers=%d diverged from sequential oracle:\n--- sequential\n%s\n--- parallel\n%s",
					prune, workers, wantDump, gotDump)
			}
		}
	}
}

func TestEngineDefaultWorkers(t *testing.T) {
	cfgs := Fig6Space(fig6Comps)
	want, err := Run(cfgs, syntheticMeasure, 600, true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunOpts(cfgs, shakyMeasure, 600, Options{Prune: true}) // Workers: 0 → GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	if dump(got) != dump(want) {
		t.Fatal("default worker count diverged from sequential oracle")
	}
}

func TestEngineEmptySpace(t *testing.T) {
	res, err := RunOpts(nil, syntheticMeasure, 600, Options{Workers: 4, Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 0 || res.Evaluated != 0 || len(res.Safest) != 0 {
		t.Fatalf("empty space result = %+v", res)
	}
}

func TestEngineMemoSecondRunIsFree(t *testing.T) {
	cfgs := Fig6Space(fig6Comps)
	memo := NewMemo()
	first, err := RunOpts(cfgs, syntheticMeasure, 600, Options{Workers: 4, Memo: memo})
	if err != nil {
		t.Fatal(err)
	}
	if first.Evaluated != 80 || first.MemoHits != 0 {
		t.Fatalf("cold run: evaluated=%d hits=%d", first.Evaluated, first.MemoHits)
	}
	if memo.Len() != 80 {
		t.Fatalf("memo holds %d entries, want 80", memo.Len())
	}
	var wantDump string
	for _, workers := range []int{1, 4, 8} {
		second, err := RunOpts(cfgs, func(c *Config) (float64, error) {
			t.Errorf("config %d measured despite warm memo", c.ID)
			return syntheticMeasure(c)
		}, 600, Options{Workers: workers, Memo: memo})
		if err != nil {
			t.Fatal(err)
		}
		if second.Evaluated != 0 || second.MemoHits != 80 {
			t.Fatalf("warm run: evaluated=%d hits=%d", second.Evaluated, second.MemoHits)
		}
		// The warm result is still byte-identical across worker counts.
		if wantDump == "" {
			wantDump = dump(second)
		} else if d := dump(second); d != wantDump {
			t.Fatalf("warm run not deterministic across workers:\n%s\nvs\n%s", wantDump, d)
		}
		// And agrees with the cold run everywhere except Cached.
		if second.Measurements[0].Perf != first.Measurements[0].Perf {
			t.Fatal("warm run changed measured values")
		}
	}
}

func TestEngineMemoSharesPointsAcrossSpaces(t *testing.T) {
	// Fig5Space's all-unhardened point is the B partition of Fig6Space
	// with hardening mask 0 — the canonical "identical point across
	// spaces". A shared memo must measure it only once.
	memo := NewMemo()
	app, libcN, schedN, lwipN := fig6Comps[0], fig6Comps[1], fig6Comps[2], fig6Comps[3]
	if _, err := RunOpts(Fig6Space(fig6Comps), syntheticMeasure, 600, Options{Workers: 4, Memo: memo}); err != nil {
		t.Fatal(err)
	}
	res, err := RunOpts(Fig5Space([]string{app, libcN, schedN}, []string{lwipN}), syntheticMeasure, 600,
		Options{Workers: 4, Memo: memo})
	if err != nil {
		t.Fatal(err)
	}
	if res.MemoHits < 1 {
		t.Fatalf("no cross-space memo hit: evaluated=%d hits=%d", res.Evaluated, res.MemoHits)
	}
	if res.Evaluated+res.MemoHits != res.Total {
		t.Fatalf("accounting broken: %d + %d != %d", res.Evaluated, res.MemoHits, res.Total)
	}
}

func TestEngineWorkloadNamespacesMemo(t *testing.T) {
	// The same space explored under two workloads must not share
	// measurements.
	memo := NewMemo()
	cfgs := Fig6Space(fig6Comps)
	if _, err := RunOpts(cfgs, syntheticMeasure, 600, Options{Memo: memo, Workload: "redis"}); err != nil {
		t.Fatal(err)
	}
	res, err := RunOpts(cfgs, syntheticMeasure, 600, Options{Memo: memo, Workload: "nginx"})
	if err != nil {
		t.Fatal(err)
	}
	if res.MemoHits != 0 || res.Evaluated != 80 {
		t.Fatalf("workloads leaked into each other: evaluated=%d hits=%d", res.Evaluated, res.MemoHits)
	}
}

func TestEngineDeduplicatesIdenticalConfigs(t *testing.T) {
	// Append identical twins (fresh IDs, same content) to the space:
	// the engine must measure each distinct point once, no memo needed.
	cfgs := Fig6Space(fig6Comps)
	for i := 0; i < 3; i++ {
		twin := *cfgs[i]
		twin.ID = len(cfgs) + i
		cfgs = append(cfgs, &twin)
	}
	var calls atomic.Int64
	counting := func(c *Config) (float64, error) {
		calls.Add(1)
		return shakyMeasure(c)
	}
	var wantDump string
	for _, workers := range []int{1, 4, 8} {
		calls.Store(0)
		res, err := RunOpts(cfgs, counting, 600, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if calls.Load() != 80 {
			t.Fatalf("workers=%d: %d measure calls, want 80", workers, calls.Load())
		}
		if res.Evaluated != 80 || res.MemoHits != 3 {
			t.Fatalf("workers=%d: evaluated=%d hits=%d", workers, res.Evaluated, res.MemoHits)
		}
		for i := 80; i < 83; i++ {
			m := res.Measurements[i]
			if !m.Cached || !m.Evaluated || m.Perf != res.Measurements[i-80].Perf {
				t.Fatalf("twin %d not filled from canonical: %+v", i, m)
			}
		}
		if wantDump == "" {
			wantDump = dump(res)
		} else if d := dump(res); d != wantDump {
			t.Fatalf("duplicate handling not deterministic across workers")
		}
	}
}

func TestEngineErrorIsStableAcrossWorkers(t *testing.T) {
	cfgs := Fig6Space(fig6Comps)
	boom := fmt.Errorf("machine on fire")
	failing := func(c *Config) (float64, error) {
		if c.ID == 37 {
			return 0, boom
		}
		return shakyMeasure(c)
	}
	var want string
	for _, workers := range []int{1, 4, 8} {
		_, err := RunOpts(cfgs, failing, 600, Options{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: failure swallowed", workers)
		}
		if !strings.Contains(err.Error(), "config 37") || !strings.Contains(err.Error(), "machine on fire") {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		if want == "" {
			want = err.Error()
		} else if err.Error() != want {
			t.Fatalf("workers=%d: error not stable: %q vs %q", workers, err.Error(), want)
		}
	}
}

func TestEngineFailedMeasurementNotCached(t *testing.T) {
	memo := NewMemo()
	cfgs := Fig6Space(fig6Comps)[:1]
	fail := true
	measure := func(c *Config) (float64, error) {
		if fail {
			return 0, fmt.Errorf("transient")
		}
		return syntheticMeasure(c)
	}
	if _, err := RunOpts(cfgs, measure, 600, Options{Memo: memo}); err == nil {
		t.Fatal("failure swallowed")
	}
	if memo.Len() != 0 {
		t.Fatalf("failed measurement cached: %d entries", memo.Len())
	}
	fail = false
	res, err := RunOpts(cfgs, measure, 600, Options{Memo: memo})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 1 {
		t.Fatal("retry after failure did not measure")
	}
}

func TestEngineProgressCoversEveryConfig(t *testing.T) {
	cfgs := Fig6Space(fig6Comps)
	for _, workers := range []int{1, 4} {
		var seen []int
		_, err := RunOpts(cfgs, shakyMeasure, 600, Options{
			Workers: workers,
			Prune:   true,
			Progress: func(done, total int) {
				if total != len(cfgs) {
					t.Fatalf("progress total = %d", total)
				}
				seen = append(seen, done)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != len(cfgs) {
			t.Fatalf("workers=%d: %d progress calls, want %d", workers, len(seen), len(cfgs))
		}
		for i, d := range seen {
			if d != i+1 {
				t.Fatalf("workers=%d: progress out of order at %d: %v", workers, i, seen[:i+1])
			}
		}
	}
}

func TestEnginePruningSavesOnCrossAppSpace(t *testing.T) {
	cfgs := CrossAppSpace(nil, fig6Comps, [4]string{"libnginx", "newlib", "uksched", "lwip"})
	if len(cfgs) != 320 {
		t.Fatalf("cross-app space = %d configs, want 320", len(cfgs))
	}
	for i, c := range cfgs {
		if c.ID != i {
			t.Fatalf("config %d has ID %d", i, c.ID)
		}
	}
	exhaustive, err := RunOpts(cfgs, shakyMeasure, 600, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := RunOpts(cfgs, shakyMeasure, 600, Options{Workers: 8, Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Evaluated >= exhaustive.Evaluated {
		t.Fatalf("pruning saved nothing at scale: %d vs %d", pruned.Evaluated, exhaustive.Evaluated)
	}
	if fmt.Sprint(pruned.Safest) != fmt.Sprint(exhaustive.Safest) {
		t.Fatalf("pruning changed the stars: %v vs %v", pruned.Safest, exhaustive.Safest)
	}
	// And the whole pruned result matches the sequential oracle.
	want, err := Run(cfgs, syntheticMeasure, 600, true)
	if err != nil {
		t.Fatal(err)
	}
	if dump(pruned) != dump(want) {
		t.Fatal("cross-app parallel run diverged from sequential oracle")
	}
}

func TestCrossAppSpaceMechanismDeepensPoset(t *testing.T) {
	cfgs := CrossAppSpace([]string{"intel-mpk", "vm-ept"}, fig6Comps)
	if len(cfgs) != 160 {
		t.Fatalf("space = %d, want 160", len(cfgs))
	}
	// Point 0 (MPK, partition A, unhardened) sits strictly below point
	// 80 (EPT, same structure).
	if !Leq(cfgs[0], cfgs[80]) || Leq(cfgs[80], cfgs[0]) {
		t.Fatal("mpk config must sit strictly below its ept twin")
	}
	// Configurations of different applications are incomparable.
	other := CrossAppSpace([]string{"intel-mpk"}, [4]string{"libnginx", "newlib", "uksched", "lwip"})
	if Leq(cfgs[0], other[0]) || Leq(other[0], cfgs[0]) {
		t.Fatal("different applications must be incomparable")
	}
	if err := Poset(cfgs[:48]).CheckOrder(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigKeyCanonicalization(t *testing.T) {
	base := &Config{
		Blocks:    [][]string{{"app", "libc"}, {"sched"}, {"net"}},
		Hardening: map[string]harden.Set{"net": harden.NewSet(harden.All)},
		Mechanism: "intel-mpk",
		GateMode:  isolation.GateFull,
		Sharing:   isolation.ShareDSS,
	}
	// Component order within a block and the order of non-default
	// blocks are irrelevant; mechanism aliases collapse.
	same := &Config{
		ID:        99,
		Blocks:    [][]string{{"libc", "app"}, {"net"}, {"sched"}},
		Hardening: map[string]harden.Set{"net": harden.NewSet(harden.All)},
		Mechanism: "mpk",
		GateMode:  isolation.GateFull,
		Sharing:   isolation.ShareDSS,
	}
	if base.Key() != same.Key() || base.Hash() != same.Hash() {
		t.Fatalf("canonically equal configs disagree:\n%s\n%s", base.Key(), same.Key())
	}
	// Moving a component into the default block is a different image.
	moved := &Config{
		Blocks:    [][]string{{"app", "libc", "sched"}, {"net"}},
		Hardening: map[string]harden.Set{"net": harden.NewSet(harden.All)},
		Mechanism: "intel-mpk",
		GateMode:  isolation.GateFull,
		Sharing:   isolation.ShareDSS,
	}
	if base.Key() == moved.Key() {
		t.Fatal("different partitions share a key")
	}
	// Hardening differences matter.
	hardened := &Config{
		Blocks:    [][]string{{"app", "libc"}, {"sched"}, {"net"}},
		Hardening: map[string]harden.Set{"net": harden.NewSet(harden.CFI)},
		Mechanism: "intel-mpk",
		GateMode:  isolation.GateFull,
		Sharing:   isolation.ShareDSS,
	}
	if base.Key() == hardened.Key() {
		t.Fatal("different hardening shares a key")
	}
	// Gate and sharing are neutralized on single-compartment images
	// (they build no gates at all)...
	solo1 := &Config{Blocks: [][]string{{"app"}}, Mechanism: "none", GateMode: isolation.GateLight, Sharing: isolation.ShareStack}
	solo2 := &Config{Blocks: [][]string{{"app"}}, Mechanism: "none", GateMode: isolation.GateFull, Sharing: isolation.ShareDSS}
	if solo1.Key() != solo2.Key() {
		t.Fatal("gate/sharing must not distinguish single-compartment images")
	}
	// ...but distinguish multi-compartment ones.
	duo1 := &Config{Blocks: [][]string{{"app"}, {"net"}}, Mechanism: "intel-mpk", GateMode: isolation.GateLight, Sharing: isolation.ShareStack}
	duo2 := &Config{Blocks: [][]string{{"app"}, {"net"}}, Mechanism: "intel-mpk", GateMode: isolation.GateFull, Sharing: isolation.ShareDSS}
	if duo1.Key() == duo2.Key() {
		t.Fatal("gate/sharing must distinguish multi-compartment images")
	}
}
