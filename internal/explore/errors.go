package explore

import (
	"errors"
	"fmt"
)

// The engine's typed error set. Engine.Run returns exactly one of:
//
//   - nil — the exploration completed;
//   - ErrCanceled (wrapped) — the context was canceled or its deadline
//     expired before the space was decided;
//   - ErrNoFeasible (wrapped) — the run completed but no configuration
//     satisfied every constraint; the returned Result is still valid
//     and carries every measurement;
//   - *MeasureError — a measure function failed; the error carries the
//     failing configuration's canonical key.
var (
	// ErrCanceled reports a run cut short by context cancellation or
	// deadline expiry. The engine stops submitting new measurements,
	// waits for in-flight ones to return (measure functions are not
	// interrupted mid-call; make them watch the same context to bound
	// latency), and leaves any shared Memo in a reusable state.
	ErrCanceled = errors.New("explore: exploration canceled")

	// ErrNoFeasible reports that a constrained run finished with an
	// empty feasible set: no configuration met every constraint. It is
	// returned alongside a fully-populated Result, so callers can still
	// inspect the measurements that ruled everything out.
	ErrNoFeasible = errors.New("explore: no configuration satisfies the constraints")
)

// MeasureError wraps a measure-function failure with the identity of
// the configuration that triggered it: its index-stable ID, its
// canonical key (Config.Key), and its human label. When several
// configurations fail in one run, the engine reports the lowest-index
// failure, so the error is stable across worker counts.
type MeasureError struct {
	// ID is the failing configuration's ID within its space.
	ID int
	// Key is the configuration's canonical identity (Config.Key).
	Key string
	// Label is the configuration's compact human label.
	Label string
	// Err is the measure function's error.
	Err error
}

func (e *MeasureError) Error() string {
	return fmt.Sprintf("explore: measuring config %d (%s): %v", e.ID, e.Label, e.Err)
}

// Unwrap exposes the underlying measurement error to errors.Is/As.
func (e *MeasureError) Unwrap() error { return e.Err }
