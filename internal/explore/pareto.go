package explore

// SafetyLevels grades the poset: a configuration's level is the length
// of the longest chain of strictly-less-safe configurations below it —
// how many strict safety upgrades (partition refinements, hardening
// additions, mechanism/gate/sharing strengthenings) it stacks over a
// minimal configuration of the space. Levels are a scalar safety proxy
// for multi-objective comparison: within the partial order itself,
// safer is always costlier (the §5 monotonicity assumption), so a
// frontier over the raw order would keep every point.
func (r *Result) SafetyLevels() []int {
	if r.order != nil {
		return r.order.levels()
	}
	// Results not produced by the engine (hand-built in tests) fall
	// back to grading the flat poset.
	p := r.Poset()
	n := p.Len()
	level := make([]int, n)
	succs := make([][]int, n)
	for _, e := range p.Edges() {
		succs[e[0]] = append(succs[e[0]], e[1])
	}
	for _, i := range p.TopoOrder() {
		for _, j := range succs[i] {
			if level[i]+1 > level[j] {
				level[j] = level[i] + 1
			}
		}
	}
	return level
}

// ParetoFront extracts the safety × performance × memory frontier from
// an exploration result: the evaluated configurations not dominated in
// (safety level ↑, throughput ↑, peak simulated memory ↓). Configuration
// a dominates b when it is at a safety level at least as high, at least
// as fast, uses at most as much memory, and is strictly better on at
// least one axis. The frontier is the set of configurations worth
// picking: for every point off it there is another that is as safe, as
// fast and as lean — and better somewhere.
//
// The returned indices are ascending, and — because measurements on the
// deterministic machine are byte-identical across worker counts — the
// frontier is too. Pruned configurations carry no metric vector and are
// excluded; run without pruning (or with a budget nothing misses) to
// rank the full space. Fronts are meaningful within one workload:
// metric vectors of different applications (cross-app spaces) measure
// different operations.
func (r *Result) ParetoFront() []int {
	level := r.SafetyLevels()
	evaluated := make([]int, 0, len(r.Measurements))
	for i := range r.Measurements {
		if r.Measurements[i].Evaluated {
			evaluated = append(evaluated, i)
		}
	}
	dominates := func(i, j int) bool {
		mi, mj := r.Measurements[i].Metrics, r.Measurements[j].Metrics
		if level[i] < level[j] || mi.Throughput < mj.Throughput || mi.PeakMemBytes > mj.PeakMemBytes {
			return false
		}
		return level[i] > level[j] ||
			mi.Throughput > mj.Throughput ||
			mi.PeakMemBytes < mj.PeakMemBytes
	}
	var front []int
	for _, i := range evaluated {
		dominated := false
		for _, j := range evaluated {
			if i != j && dominates(j, i) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front
}

// ParetoConfigs dereferences ParetoFront.
func (r *Result) ParetoConfigs() []*Config {
	var out []*Config
	for _, i := range r.ParetoFront() {
		out = append(out, r.Measurements[i].Config)
	}
	return out
}
