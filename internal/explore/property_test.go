package explore

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"flexos/internal/harden"
	"flexos/internal/isolation"
)

// Property tests for pruning soundness: on random configuration spaces
// with random safety-monotone measure functions and random budgets, the
// pruning engines must agree exactly with a brute-force oracle that
// measures everything.

var propComponents = []string{"app", "libc", "sched", "net"}

// randomPartition splits the four components into 1..4 blocks.
func randomPartition(rng *rand.Rand) [][]string {
	nblocks := rng.Intn(4) + 1
	blocks := make([][]string, nblocks)
	for i, comp := range propComponents {
		b := rng.Intn(nblocks)
		if i < nblocks {
			b = i // guarantee no block is empty
		}
		blocks[b] = append(blocks[b], comp)
	}
	return blocks
}

var propTechs = []harden.Tech{harden.CFI, harden.KASan, harden.UBSan, harden.StackProtector}

// randomSpace generates n random configurations: random partitions,
// per-component hardening subsets, mechanisms, gates and sharing
// strategies. Duplicates are allowed (the engine must handle twins).
func randomSpace(rng *rand.Rand, n int) []*Config {
	mechs := []string{"none", "intel-mpk", "vm-ept"}
	gates := []isolation.GateMode{isolation.GateLight, isolation.GateFull}
	sharings := []isolation.Sharing{isolation.ShareStack, isolation.ShareDSS, isolation.ShareHeap}
	cfgs := make([]*Config, n)
	for i := range cfgs {
		h := make(map[string]harden.Set)
		for _, comp := range propComponents {
			var techs []harden.Tech
			for _, tech := range propTechs {
				if rng.Intn(2) == 0 {
					techs = append(techs, tech)
				}
			}
			if len(techs) > 0 {
				h[comp] = harden.NewSet(techs...)
			}
		}
		cfgs[i] = &Config{
			ID:        i,
			Blocks:    randomPartition(rng),
			Hardening: h,
			Mechanism: mechs[rng.Intn(len(mechs))],
			GateMode:  gates[rng.Intn(len(gates))],
			Sharing:   sharings[rng.Intn(len(sharings))],
		}
	}
	return cfgs
}

// monotoneMeasure builds a measure function with random positive
// weights that is decreasing along the safety order: every dimension
// the Leq relation compares contributes non-negatively to cost, so
// a ≤ b implies measure(a) >= measure(b) — the §5 assumption pruning
// relies on.
func monotoneMeasure(rng *rand.Rand) Measure {
	wComp := float64(rng.Intn(200) + 1)
	wStrength := float64(rng.Intn(300) + 1)
	wGate := float64(rng.Intn(50) + 1)
	wShare := float64(rng.Intn(50) + 1)
	wTech := make(map[harden.Tech]float64, len(propTechs))
	for _, tech := range propTechs {
		wTech[tech] = float64(rng.Intn(40) + 1)
	}
	return func(c *Config) (float64, error) {
		cost := wComp*float64(c.NumCompartments()-1) +
			wStrength*float64(c.strength()) +
			wGate*float64(c.gateRank()) +
			wShare*float64(c.sharingRank())
		for _, comp := range c.Components() {
			for _, tech := range propTechs {
				if c.Hardening[comp].Has(tech) {
					cost += wTech[tech]
				}
			}
		}
		return 100_000 - cost, nil
	}
}

// TestPruningSoundnessVsBruteForceOracle is the main property: for
// random spaces, random monotone measures and random budgets, both the
// sequential and the parallel pruning engines must (a) never prune a
// configuration that would have met the budget, and (b) report exactly
// the safest set the exhaustive oracle derives.
func TestPruningSoundnessVsBruteForceOracle(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfgs := randomSpace(rng, 60)
		measure := monotoneMeasure(rng)

		// Brute force: measure everything, no pruning.
		oracle, err := Run(cfgs, measure, 0, false)
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		perfs := make([]float64, len(cfgs))
		for i, m := range oracle.Measurements {
			perfs[i] = m.Perf
		}

		// Random budgets: quantiles of the measured distribution plus
		// extremes that prune nothing / everything.
		sorted := append([]float64(nil), perfs...)
		sort.Float64s(sorted)
		budgets := []float64{
			sorted[0] - 1,
			sorted[len(sorted)/4],
			sorted[len(sorted)/2],
			sorted[3*len(sorted)/4],
			sorted[len(sorted)-1] + 1,
		}
		for _, budget := range budgets {
			wantSafest := oracle.Poset().Maximal(func(c *Config) bool {
				return perfs[indexOf(cfgs, c)] >= budget
			})
			sort.Ints(wantSafest)

			seq, err := Run(randomSpaceCopy(cfgs), measure, budget, true)
			if err != nil {
				t.Fatalf("seed %d budget %v: sequential: %v", seed, budget, err)
			}
			par, err := RunOpts(randomSpaceCopy(cfgs), measure, budget, Options{Prune: true, Workers: 4})
			if err != nil {
				t.Fatalf("seed %d budget %v: parallel: %v", seed, budget, err)
			}
			for name, res := range map[string]*Result{"sequential": seq, "parallel": par} {
				if !reflect.DeepEqual(res.Safest, wantSafest) {
					t.Fatalf("seed %d budget %v: %s safest %v, oracle %v",
						seed, budget, name, res.Safest, wantSafest)
				}
				for i, m := range res.Measurements {
					if m.Pruned && perfs[i] >= budget {
						t.Fatalf("seed %d budget %v: %s pruned config %d with perf %v >= budget",
							seed, budget, name, i, perfs[i])
					}
					if m.Evaluated && m.Perf != perfs[i] {
						t.Fatalf("seed %d budget %v: %s perf diverges at %d: %v vs %v",
							seed, budget, name, i, m.Perf, perfs[i])
					}
				}
			}
			if seq.Evaluated < par.Evaluated {
				// The parallel engine dedups twins, so it can only
				// measure fewer fresh configurations, never more.
				t.Fatalf("seed %d budget %v: parallel measured more (%d) than sequential (%d)",
					seed, budget, par.Evaluated, seq.Evaluated)
			}
		}
	}
}

func indexOf(cfgs []*Config, c *Config) int {
	for i := range cfgs {
		if cfgs[i] == c {
			return i
		}
	}
	return -1
}

// randomSpaceCopy clones a space so each engine run builds its own
// poset over fresh pointers (Results key Maximal by pointer identity).
func randomSpaceCopy(cfgs []*Config) []*Config {
	out := make([]*Config, len(cfgs))
	for i, c := range cfgs {
		cc := *c
		out[i] = &cc
	}
	return out
}

// TestLeqIsPartialOrderOnRandomSpaces validates the safety relation
// itself on random configuration spaces — the foundation the pruning
// argument rests on.
func TestLeqIsPartialOrderOnRandomSpaces(t *testing.T) {
	for seed := int64(50); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfgs := randomSpace(rng, 50)
		p := Poset(cfgs)
		if err := p.CheckOrder(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Antisymmetry up to canonical identity: mutual order implies
		// the same canonical key.
		for i := range cfgs {
			for j := range cfgs {
				if i != j && p.Leq(i, j) && p.Leq(j, i) && cfgs[i].Key() != cfgs[j].Key() {
					t.Fatalf("seed %d: configs %d and %d mutually ordered with distinct keys\n%s\n%s",
						seed, i, j, cfgs[i].Key(), cfgs[j].Key())
				}
			}
		}
	}
}
