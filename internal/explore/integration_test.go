package explore

import (
	"testing"

	"flexos/internal/core"
)

// TestAnyFig6ConfigBuildsAndRuns is the builder's fuzz net: every point
// of the exploration space must build and execute without error, under
// every backend.
func TestAnyFig6ConfigBuildsAndRuns(t *testing.T) {
	comps := [4]string{"app", "svc", "drv", "io"}
	newCat := func() *core.Catalog {
		c := core.NewCatalog()
		boot := core.NewComponent("boot")
		boot.TCB = true
		c.MustRegister(boot)
		for _, name := range comps[1:] {
			comp := core.NewComponent(name)
			comp.AddFunc(&core.Func{Name: "entry", Work: 50, EntryPoint: true,
				Impl: func(ctx *core.Ctx, args ...any) (any, error) { return nil, nil }})
			c.MustRegister(comp)
		}
		appComp := core.NewComponent("app")
		appComp.AddFunc(&core.Func{Name: "run", Work: 100, EntryPoint: true,
			Impl: func(ctx *core.Ctx, args ...any) (any, error) {
				for _, target := range comps[1:] {
					if _, err := ctx.Call(target, "entry"); err != nil {
						return nil, err
					}
				}
				return nil, nil
			}})
		c.MustRegister(appComp)
		return c
	}

	space := Fig6Space(comps)
	mechs := []string{"none", "intel-mpk", "vm-ept", "cheri", "intel-sgx"}
	for i, cfg := range space {
		mech := mechs[i%len(mechs)]
		cfg.Mechanism = mech
		spec := cfg.Spec([]string{"boot"})
		img, err := core.Build(newCat(), spec)
		if err != nil {
			t.Fatalf("config %d (%s, %s): build: %v", i, mech, cfg.Label(), err)
		}
		ctx, err := img.NewContext("t", "app")
		if err != nil {
			t.Fatalf("config %d: context: %v", i, err)
		}
		if _, err := ctx.Call("app", "run"); err != nil {
			t.Fatalf("config %d (%s, %s): run: %v", i, mech, cfg.Label(), err)
		}
	}
}
