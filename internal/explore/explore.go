// Package explore implements FlexOS' semi-automated design-space
// exploration (§5, §6.2): it generates configuration spaces (notably the
// paper's 80-configuration Redis/Nginx space — 5 compartmentalization
// strategies × 16 per-component hardening combinations — and the larger
// cross-application CrossAppSpace), orders them into the partial safety
// poset, measures their performance (the Wayfinder role), prunes
// measurement monotonically along safety paths, and extracts the safest
// configurations under a performance budget (the stars of Figure 8).
//
// Measurement runs through one engine: Engine.Run, which takes a
// context.Context and a Request — a worker pool fanning measurements
// across goroutines, memoization keyed by canonical configuration
// identity (Config.Key) so identical points within and across spaces
// are measured once, any number of simultaneous feasibility
// constraints (floors and ceilings on any metric), pruning that stays
// sound under concurrent completion by deciding a configuration only
// after all its poset predecessors are decided, and cooperative
// cancellation with a typed error set (ErrCanceled, ErrNoFeasible,
// MeasureError). Results are byte-identical for any worker count. The
// legacy Run/RunOpts/RunMetrics/RunMetricsSequential entry points
// survive as deprecated thin wrappers over the same engine.
package explore

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"flexos/internal/core"
	"flexos/internal/harden"
	"flexos/internal/isolation"
	"flexos/internal/machine"
	"flexos/internal/poset"
)

// Config is one point of the safety design space — a node of the poset.
type Config struct {
	// ID indexes the config within its generated space.
	ID int
	// Blocks is the compartmentalization strategy: Blocks[0] is the
	// default compartment (which also hosts the TCB); each further block
	// is its own compartment.
	Blocks [][]string
	// Hardening maps component name to its hardening set (Figure 6's
	// per-component toggles).
	Hardening map[string]harden.Set
	// Mechanism, GateMode and Sharing select the backend configuration.
	Mechanism string
	GateMode  isolation.GateMode
	Sharing   isolation.Sharing
	// ASLR is the image's layout-randomization level (zero value: off).
	// It joins the safety order as a product dimension: more entropy
	// and leak resistance are each independently safer.
	ASLR isolation.ASLR
	// Profile names the machine profile the image is built for ("" is
	// the default x86 profile). Configurations on different profiles
	// are incomparable — safety on one machine says nothing about
	// another — and measure under that profile's cost model.
	Profile string
}

// NumCompartments returns the number of compartments.
func (c *Config) NumCompartments() int { return len(c.Blocks) }

// blockOf returns the block index of a component, or -1.
func (c *Config) blockOf(comp string) int {
	for i, blk := range c.Blocks {
		for _, x := range blk {
			if x == comp {
				return i
			}
		}
	}
	return -1
}

// Components returns all components of the config, sorted.
func (c *Config) Components() []string {
	var out []string
	for _, blk := range c.Blocks {
		out = append(out, blk...)
	}
	sort.Strings(out)
	return out
}

// HardenedCount returns how many components have non-empty hardening.
func (c *Config) HardenedCount() int {
	n := 0
	for _, comp := range c.Components() {
		if !c.Hardening[comp].Empty() {
			n++
		}
	}
	return n
}

// Label renders a compact description, e.g.
// "redis+newlib/lwip h={lwip}".
func (c *Config) Label() string {
	var blocks []string
	for _, blk := range c.Blocks {
		blocks = append(blocks, strings.Join(blk, "+"))
	}
	var hardened []string
	for _, comp := range c.Components() {
		if !c.Hardening[comp].Empty() {
			hardened = append(hardened, comp)
		}
	}
	s := strings.Join(blocks, " / ")
	if len(hardened) > 0 {
		s += " h={" + strings.Join(hardened, ",") + "}"
	}
	if c.ASLR.Enabled() {
		s += " aslr=" + c.ASLR.String()
	}
	if c.Profile != "" {
		s += " @" + c.Profile
	}
	return s
}

// Spec materializes the config into a buildable image spec; tcbLibs
// (boot, memory manager) join the default compartment.
func (c *Config) Spec(tcbLibs []string) core.ImageSpec {
	spec := core.ImageSpec{
		Mechanism: c.Mechanism,
		GateMode:  c.GateMode,
		Sharing:   c.Sharing,
	}
	// A non-default machine profile threads its cost model into the
	// build, so every existing measurement path prices gates, traps and
	// copies under that machine. Unknown profile names keep the default
	// costs: Key still separates them, and the front-ends reject them
	// before a space is ever built.
	if c.Profile != "" {
		if p, err := machine.ParseProfile(c.Profile); err == nil {
			spec.Costs = p.Costs
		}
	}
	for i, blk := range c.Blocks {
		cs := core.CompSpec{Name: fmt.Sprintf("comp%d", i)}
		if i == 0 {
			cs.Libs = append(cs.Libs, tcbLibs...)
		}
		cs.Libs = append(cs.Libs, blk...)
		cs.LibHardening = make(map[string]harden.Set)
		for _, comp := range blk {
			if hs := c.Hardening[comp]; !hs.Empty() {
				cs.LibHardening[comp] = hs
			}
		}
		spec.Comps = append(spec.Comps, cs)
	}
	return spec
}

// CanonicalMechanism maps mechanism aliases ("mpk", "ept", "sgx", "")
// onto the canonical backend names the toolchain registers, so that two
// configurations naming the same backend differently share one identity.
func CanonicalMechanism(m string) string {
	switch m {
	case "", "none":
		return "none"
	case "mpk", "intel-mpk":
		return "intel-mpk"
	case "ept", "vm-ept":
		return "vm-ept"
	case "sgx", "intel-sgx":
		return "intel-sgx"
	default:
		return m
	}
}

// Key returns the canonical identity of the configuration: two configs
// have equal keys exactly when they describe the same image and would
// measure identically on the deterministic machine. The key normalizes
// everything that does not change build semantics — mechanism aliases,
// component order within a block, the order of non-default blocks, and
// gate/sharing selections on single-compartment images (which build no
// gates at all). The ID is deliberately excluded: identity is semantic,
// which is what lets the engine memoize identical points across spaces.
func (c *Config) Key() string {
	var b strings.Builder
	b.WriteString("mech=")
	b.WriteString(CanonicalMechanism(c.Mechanism))
	if c.NumCompartments() > 1 {
		fmt.Fprintf(&b, ";gate=%s;share=%s", c.GateMode, c.Sharing)
	}
	// Block 0 is positionally significant (it is the default compartment
	// and hosts the TCB); the remaining blocks are an unordered set.
	blocks := make([]string, 0, len(c.Blocks))
	for _, blk := range c.Blocks {
		s := append([]string(nil), blk...)
		sort.Strings(s)
		blocks = append(blocks, strings.Join(s, ","))
	}
	if len(blocks) > 1 {
		sort.Strings(blocks[1:])
	}
	b.WriteString(";blocks=")
	b.WriteString(strings.Join(blocks, "|"))
	b.WriteString(";harden=")
	for _, comp := range c.Components() {
		if hs := c.Hardening[comp]; !hs.Empty() {
			b.WriteString(comp)
			b.WriteString(":")
			b.WriteString(hs.String())
			b.WriteString(";")
		}
	}
	// The attack axes render only when set, so every pre-attack key —
	// and with it every persisted store record and canonical request
	// key — is byte-stable.
	if c.ASLR.Enabled() {
		b.WriteString(";aslr=")
		b.WriteString(c.ASLR.String())
	}
	if c.Profile != "" {
		b.WriteString(";profile=")
		b.WriteString(c.Profile)
	}
	return b.String()
}

// Hash returns a 64-bit FNV-1a digest of Key, for callers that want a
// fixed-width handle on a configuration's identity.
func (c *Config) Hash() uint64 {
	h := fnv.New64a()
	h.Write([]byte(c.Key()))
	return h.Sum64()
}

// strength ranks the isolation mechanism.
func (c *Config) strength() isolation.Strength {
	switch c.Mechanism {
	case "intel-mpk", "mpk", "cheri":
		return isolation.StrengthIntraAS
	case "vm-ept", "ept", "intel-sgx", "sgx":
		return isolation.StrengthInterAS
	default:
		return isolation.StrengthNone
	}
}

// sharingRank ranks the data sharing strategy's isolation: a fully
// shared stack is weaker than DSS or stack-to-heap conversion (which
// share only the annotated variables).
func (c *Config) sharingRank() int {
	if c.NumCompartments() == 1 {
		return 1 // no cross-compartment stack data at all
	}
	if c.Sharing == isolation.ShareStack {
		return 0
	}
	return 1
}

// gateRank ranks the gate flavor: the light gate shares registers and
// stacks, the full gate isolates both.
func (c *Config) gateRank() int {
	if c.NumCompartments() == 1 {
		return 1
	}
	if c.GateMode == isolation.GateLight {
		return 0
	}
	return 1
}

// Leq reports whether a is probabilistically at most as safe as b — the
// partial order of §5, built from the paper's four monotonicity
// assumptions: safety increases with (1) the number of compartments
// (partition refinement), (2) data isolation, (3) stackable software
// hardening, and (4) the strength of the isolation mechanism.
func Leq(a, b *Config) bool {
	// Different machines are different safety universes: configurations
	// on distinct profiles never compare.
	if a.Profile != b.Profile {
		return false
	}
	// (4) mechanism strength.
	if a.strength() > b.strength() {
		return false
	}
	// ASLR joins as a product dimension: b must dominate on both
	// entropy and leak resistance.
	if !a.ASLR.Leq(b.ASLR) {
		return false
	}
	// (1) b's partition must refine a's: components together in b are
	// together in a.
	comps := a.Components()
	if !sameComponents(comps, b.Components()) {
		return false
	}
	for i := 0; i < len(comps); i++ {
		for j := i + 1; j < len(comps); j++ {
			if b.blockOf(comps[i]) == b.blockOf(comps[j]) &&
				a.blockOf(comps[i]) != a.blockOf(comps[j]) {
				return false
			}
		}
	}
	// (3) per-component hardening must not shrink.
	for _, comp := range comps {
		if !a.Hardening[comp].Subset(b.Hardening[comp]) {
			return false
		}
	}
	// (2) data isolation (sharing strategy, gate flavor).
	if a.sharingRank() > b.sharingRank() || a.gateRank() > b.gateRank() {
		return false
	}
	return true
}

func sameComponents(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Poset builds the safety poset over a configuration space.
func Poset(cfgs []*Config) *poset.Poset[*Config] {
	return poset.New(cfgs, Leq)
}
