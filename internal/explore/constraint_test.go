package explore

import (
	"testing"

	"flexos/internal/scenario"
)

// Unit tests for the constraint syntax and semantics. The
// multi-constraint property tests against the brute-force oracle live
// in constraint_property_test.go, written on the exploretest harness.

func TestParseConstraint(t *testing.T) {
	good := map[string]Constraint{
		"throughput>=500000": {scenario.MetricThroughput, AtLeast, 500000},
		"p99<=2.5":           {scenario.MetricP99, AtMost, 2.5},
		"mem<=1e6":           {scenario.MetricPeakMem, AtMost, 1e6},
		" boot <= 17000 ":    {scenario.MetricBoot, AtMost, 17000},
		"throughput<=1000":   {scenario.MetricThroughput, AtMost, 1000}, // unnatural but legal
	}
	for s, want := range good {
		got, err := ParseConstraint(s)
		if err != nil {
			t.Fatalf("ParseConstraint(%q): %v", s, err)
		}
		if got != want {
			t.Fatalf("ParseConstraint(%q) = %+v, want %+v", s, got, want)
		}
	}
	for _, s := range []string{"", "p99", "p99<2", "latency<=3", "p99<=x", ">=5"} {
		if _, err := ParseConstraint(s); err == nil {
			t.Fatalf("ParseConstraint(%q) accepted", s)
		}
	}
	// Round trip through String.
	c := Constraint{scenario.MetricP99, AtMost, 2.5}
	rt, err := ParseConstraint(c.String())
	if err != nil || rt != c {
		t.Fatalf("round trip %v -> %q -> %v (%v)", c, c.String(), rt, err)
	}
}

func TestBudgetConstraintLegacySemantics(t *testing.T) {
	if c := BudgetConstraint("", 5); c.Metric != scenario.MetricThroughput || c.Op != AtLeast {
		t.Fatalf("empty metric budget = %+v", c)
	}
	if c := BudgetConstraint(scenario.MetricP99, 5); c.Op != AtMost {
		t.Fatalf("p99 budget = %+v", c)
	}
	if !(Constraint{scenario.MetricThroughput, AtLeast, 10}).Monotone() {
		t.Fatal("throughput floor must be monotone")
	}
	if (Constraint{scenario.MetricThroughput, AtMost, 10}).Monotone() {
		t.Fatal("throughput ceiling must not be monotone")
	}
	if !(Constraint{scenario.MetricPeakMem, AtMost, 10}).Monotone() {
		t.Fatal("memory ceiling must be monotone")
	}
	if (Constraint{scenario.MetricPeakMem, AtLeast, 10}).Monotone() {
		t.Fatal("memory floor must not be monotone")
	}
}
