package explore

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"flexos/internal/scenario"
)

// Property tests for multi-constraint semantics: feasibility under
// several simultaneous constraints must be the intersection of the
// single-constraint feasible sets, and pruning must stay sound with
// mixed floor/ceiling constraints — all verified against a brute-force
// (exhaustive, unpruned) oracle on random spaces.

// randomVectorMeasure derives a safety-monotone metric-vector measure
// with random positive weights: throughput falls and every cost metric
// rises as configurations get safer, matching the engine's pruning
// assumption, like monotoneMeasure does for scalars.
func randomVectorMeasure(rng *rand.Rand) MeasureMetrics {
	scalar := monotoneMeasure(rng)
	latW := float64(rng.Intn(900)+100) / 1e6
	memW := uint64(rng.Intn(40) + 1)
	bootW := uint64(rng.Intn(20) + 1)
	return func(c *Config) (Metrics, error) {
		v, err := scalar(c)
		if err != nil {
			return Metrics{}, err
		}
		cost := 100_000 - v // >= 0 by construction
		return Metrics{
			Throughput:   v,
			P50us:        1 + cost*latW,
			P99us:        2 + cost*latW*2,
			MaxUs:        3 + cost*latW*4,
			PeakMemBytes: 1000 + uint64(cost)*memW,
			BootCycles:   500 + uint64(cost)*bootW,
			Cycles:       uint64(cost) + 1,
			Ops:          1,
		}, nil
	}
}

// quantile picks a bound inside the observed range of a metric so
// constraints are neither trivially empty nor trivially full.
func quantile(vals []float64, q float64) float64 {
	s := append([]float64(nil), vals...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	i := int(q * float64(len(s)-1))
	return s[i]
}

// randomConstraint builds a constraint on a random metric with a bound
// drawn from the oracle's measured distribution. Mixing directions is
// the point: half the time the natural (prunable) direction, half the
// time the unnatural one.
func randomConstraint(rng *rand.Rand, oracle *Result) Constraint {
	metrics := []Metric{
		scenario.MetricThroughput, scenario.MetricP50, scenario.MetricP99,
		scenario.MetricMax, scenario.MetricPeakMem, scenario.MetricBoot,
	}
	m := metrics[rng.Intn(len(metrics))]
	vals := make([]float64, 0, len(oracle.Measurements))
	for _, mm := range oracle.Measurements {
		vals = append(vals, m.Value(mm.Metrics))
	}
	op := NaturalOp(m)
	if rng.Intn(2) == 0 {
		if op == AtLeast {
			op = AtMost
		} else {
			op = AtLeast
		}
	}
	return Constraint{Metric: m, Op: op, Bound: quantile(vals, 0.25+rng.Float64()/2)}
}

// feasibleSet derives the feasible indices of an exhaustively-measured
// oracle under a constraint list.
func feasibleSet(oracle *Result, cs []Constraint) map[int]bool {
	out := make(map[int]bool)
	for i, m := range oracle.Measurements {
		if meetsAll(cs, m.Metrics) {
			out[i] = true
		}
	}
	return out
}

// TestMultiConstraintIsIntersection: for random spaces and random
// constraint pairs A, B, the feasible set of Constrain(A).Constrain(B)
// equals the intersection of the single-constraint feasible sets, and
// the engine's Safest equals the constraint-filtered maximal elements
// derived from the brute-force oracle.
func TestMultiConstraintIsIntersection(t *testing.T) {
	for seed := int64(100); seed < 115; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfgs := randomSpace(rng, 50)
		measure := randomVectorMeasure(rng)

		oracle, err := Engine{}.Run(context.Background(), Request{Space: cfgs, Measure: measure})
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		a := randomConstraint(rng, oracle)
		b := randomConstraint(rng, oracle)

		run := func(cs ...Constraint) *Result {
			res, err := Engine{}.Run(context.Background(), Request{
				Space: randomSpaceCopy(cfgs), Measure: measure, Constraints: cs, Workers: 4})
			if err != nil && !errors.Is(err, ErrNoFeasible) {
				t.Fatalf("seed %d %v: %v", seed, cs, err)
			}
			return res
		}
		resA, resB, resAB := run(a), run(b), run(a, b)

		setA, setB := feasibleSet(oracle, []Constraint{a}), feasibleSet(oracle, []Constraint{b})
		for i := range cfgs {
			wantA, wantB := setA[i], setB[i]
			if resA.Feasible(i) != wantA || resB.Feasible(i) != wantB {
				t.Fatalf("seed %d: config %d single-constraint feasibility diverges from oracle", seed, i)
			}
			if got, want := resAB.Feasible(i), wantA && wantB; got != want {
				t.Fatalf("seed %d: config %d: Feasible(A∧B)=%t, intersection=%t (A=%v B=%v)",
					seed, i, got, want, a, b)
			}
		}
		// Safest must be the maximal elements of the intersection.
		wantSafest := safestFromOracle(oracle, []Constraint{a, b})
		if !reflect.DeepEqual(resAB.Safest, wantSafest) {
			t.Fatalf("seed %d: safest %v, oracle %v (A=%v B=%v)", seed, resAB.Safest, wantSafest, a, b)
		}
	}
}

// safestFromOracle recomputes the constraint-filtered maximal elements
// from an exhaustive oracle run.
func safestFromOracle(oracle *Result, cs []Constraint) []int {
	clone := *oracle
	clone.Constraints = cs
	return safest(oracle.Poset(), &clone)
}

// TestMixedConstraintPruningSoundVsBruteForce: with pruning enabled and
// a mix of natural (prunable) and unnatural constraints, the engine
// must (a) never prune a configuration the oracle deems feasible,
// (b) report exactly the oracle's safest set, and (c) agree with
// itself byte-for-byte across worker counts.
func TestMixedConstraintPruningSoundVsBruteForce(t *testing.T) {
	for seed := int64(200); seed < 215; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfgs := randomSpace(rng, 50)
		measure := randomVectorMeasure(rng)

		oracle, err := Engine{}.Run(context.Background(), Request{Space: cfgs, Measure: measure})
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		ncons := rng.Intn(3) + 1
		var cs []Constraint
		for i := 0; i < ncons; i++ {
			cs = append(cs, randomConstraint(rng, oracle))
		}
		feas := feasibleSet(oracle, cs)
		wantSafest := safestFromOracle(oracle, cs)

		var wantDump string
		for _, workers := range []int{1, 4, 8} {
			res, err := Engine{}.Run(context.Background(), Request{
				Space: randomSpaceCopy(cfgs), Measure: measure, Constraints: cs,
				Workers: workers, Prune: true})
			if err != nil && !errors.Is(err, ErrNoFeasible) {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			for i, m := range res.Measurements {
				if m.Pruned && feas[i] {
					t.Fatalf("seed %d workers %d: pruned feasible config %d under %v",
						seed, workers, i, cs)
				}
				if m.Evaluated && m.Metrics != oracle.Measurements[i].Metrics {
					t.Fatalf("seed %d workers %d: config %d vector diverges from oracle", seed, workers, i)
				}
			}
			if !reflect.DeepEqual(res.Safest, wantSafest) {
				t.Fatalf("seed %d workers %d: safest %v, oracle %v under %v",
					seed, workers, res.Safest, wantSafest, cs)
			}
			if wantDump == "" {
				wantDump = dump(res)
			} else if d := dump(res); d != wantDump {
				t.Fatalf("seed %d workers %d: pruned multi-constraint run not deterministic", seed, workers)
			}
		}
	}
}

func TestParseConstraint(t *testing.T) {
	good := map[string]Constraint{
		"throughput>=500000": {scenario.MetricThroughput, AtLeast, 500000},
		"p99<=2.5":           {scenario.MetricP99, AtMost, 2.5},
		"mem<=1e6":           {scenario.MetricPeakMem, AtMost, 1e6},
		" boot <= 17000 ":    {scenario.MetricBoot, AtMost, 17000},
		"throughput<=1000":   {scenario.MetricThroughput, AtMost, 1000}, // unnatural but legal
	}
	for s, want := range good {
		got, err := ParseConstraint(s)
		if err != nil {
			t.Fatalf("ParseConstraint(%q): %v", s, err)
		}
		if got != want {
			t.Fatalf("ParseConstraint(%q) = %+v, want %+v", s, got, want)
		}
	}
	for _, s := range []string{"", "p99", "p99<2", "latency<=3", "p99<=x", ">=5"} {
		if _, err := ParseConstraint(s); err == nil {
			t.Fatalf("ParseConstraint(%q) accepted", s)
		}
	}
	// Round trip through String.
	c := Constraint{scenario.MetricP99, AtMost, 2.5}
	rt, err := ParseConstraint(c.String())
	if err != nil || rt != c {
		t.Fatalf("round trip %v -> %q -> %v (%v)", c, c.String(), rt, err)
	}
}

func TestBudgetConstraintLegacySemantics(t *testing.T) {
	if c := BudgetConstraint("", 5); c.Metric != scenario.MetricThroughput || c.Op != AtLeast {
		t.Fatalf("empty metric budget = %+v", c)
	}
	if c := BudgetConstraint(scenario.MetricP99, 5); c.Op != AtMost {
		t.Fatalf("p99 budget = %+v", c)
	}
	if !(Constraint{scenario.MetricThroughput, AtLeast, 10}).Monotone() {
		t.Fatal("throughput floor must be monotone")
	}
	if (Constraint{scenario.MetricThroughput, AtMost, 10}).Monotone() {
		t.Fatal("throughput ceiling must not be monotone")
	}
	if !(Constraint{scenario.MetricPeakMem, AtMost, 10}).Monotone() {
		t.Fatal("memory ceiling must be monotone")
	}
	if (Constraint{scenario.MetricPeakMem, AtLeast, 10}).Monotone() {
		t.Fatal("memory floor must not be monotone")
	}
}
