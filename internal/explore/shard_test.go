package explore

import (
	"sync"
	"testing"
)

// White-box unit tests for shard arithmetic and the backed memo's
// two-tier protocol. The engine-level shard/backing properties (a
// sharded run matches the manual subslice; sharded backings warm-start
// a full run) live in shard_property_test.go on the exploretest
// harness.

// TestShardSliceProperties is the partition law: for every space size
// and shard count, the shards are contiguous, order-preserving,
// pairwise disjoint, balanced to within one element, and their
// concatenation is exactly the full space.
func TestShardSliceProperties(t *testing.T) {
	for n := 0; n <= 13; n++ {
		cfgs := Fig6Space([4]string{"app", "libc", "sched", "net"})[:n]
		for count := 1; count <= 6; count++ {
			var union []*Config
			for idx := 0; idx < count; idx++ {
				part, err := Shard{Index: idx, Count: count}.slice(cfgs)
				if err != nil {
					t.Fatalf("n=%d shard %d/%d: %v", n, idx, count, err)
				}
				if lo, hi := (Shard{Index: idx, Count: count}).bounds(n); hi-lo != len(part) {
					t.Fatalf("n=%d shard %d/%d: bounds disagree with slice", n, idx, count)
				}
				if len(part) < n/count || len(part) > n/count+1 {
					t.Fatalf("n=%d shard %d/%d: unbalanced size %d", n, idx, count, len(part))
				}
				union = append(union, part...)
			}
			if len(union) != n {
				t.Fatalf("n=%d count=%d: union has %d configs", n, count, len(union))
			}
			for i := range union {
				// Pointer identity: same element, same order — which also
				// proves pairwise disjointness.
				if union[i] != cfgs[i] {
					t.Fatalf("n=%d count=%d: union out of order at %d", n, count, i)
				}
			}
		}
	}
}

func TestShardValidation(t *testing.T) {
	cfgs := Fig6Space([4]string{"app", "libc", "sched", "net"})
	for _, bad := range []Shard{{Index: -1, Count: 3}, {Index: 3, Count: 3}, {Index: 0, Count: -1}, {Index: 2, Count: 0}} {
		if _, err := bad.slice(cfgs); err == nil {
			t.Errorf("shard %+v: want error, got nil", bad)
		}
	}
	for _, ok := range []Shard{{}, {Index: 0, Count: 1}, {Index: 4, Count: 5}} {
		if _, err := ok.slice(cfgs); err != nil {
			t.Errorf("shard %+v: %v", ok, err)
		}
	}
}

func TestParseShard(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Shard
		ok   bool
	}{
		{"0/4", Shard{0, 4}, true},
		{"3/4", Shard{3, 4}, true},
		{"0/1", Shard{0, 1}, true},
		{" 1 / 3 ", Shard{1, 3}, true},
		{"4/4", Shard{}, false},
		{"-1/4", Shard{}, false},
		{"0/0", Shard{}, false},
		{"2", Shard{}, false},
		{"a/b", Shard{}, false},
		{"", Shard{}, false},
	} {
		got, err := ParseShard(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseShard(%q): err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseShard(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

// countingBacking is the minimal in-memory Backing double the white-box
// memo test needs (the full engine-level double, with key logs and
// snapshot/merge accessors, is exploretest.MapBacking — unusable here
// because in-package test files cannot import a package that imports
// the package under test).
type countingBacking struct {
	mu     sync.Mutex
	m      map[string]Metrics
	loads  int
	stores int
}

func (b *countingBacking) Load(key string) (Metrics, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.loads++
	m, ok := b.m[key]
	return m, ok
}

func (b *countingBacking) Store(key string, m Metrics) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stores++
	b.m[key] = m
}

// TestBackedMemoLoadAndWriteThrough: a miss falls through to the
// backing, a fresh measurement writes through, a backing hit counts as
// a memo hit and is promoted so it is loaded once.
func TestBackedMemoLoadAndWriteThrough(t *testing.T) {
	b := &countingBacking{m: make(map[string]Metrics)}
	memo := NewBackedMemo(b)
	calls := 0
	f := func() (Metrics, error) { calls++; return Metrics{Throughput: 42}, nil }

	if _, hit, _ := memo.do("k", f); hit {
		t.Fatal("first call must miss")
	}
	if calls != 1 || b.stores != 1 {
		t.Fatalf("calls=%d stores=%d, want 1/1 (write-through)", calls, b.stores)
	}
	if _, hit, _ := memo.do("k", f); !hit {
		t.Fatal("second call must hit the in-memory tier")
	}
	if calls != 1 || b.stores != 1 {
		t.Fatalf("hit must not re-measure or re-store (calls=%d stores=%d)", calls, b.stores)
	}

	// A fresh memo over the same backing: warm from the second tier.
	warm := NewBackedMemo(b)
	mx, hit, err := warm.do("k", func() (Metrics, error) {
		t.Fatal("warm hit must not measure")
		return Metrics{}, nil
	})
	if err != nil || !hit || mx.Throughput != 42 {
		t.Fatalf("warm: mx=%v hit=%v err=%v", mx, hit, err)
	}
	loadsAfterWarm := b.loads
	if _, hit, _ := warm.do("k", f); !hit {
		t.Fatal("promoted entry must hit in memory")
	}
	if b.loads != loadsAfterWarm {
		t.Fatal("promoted entry must not consult the backing again")
	}
	if b.stores != 1 {
		t.Fatalf("backing hits must not write back (stores=%d)", b.stores)
	}
}

// TestSpaceHashIdentity: the hash is stable, namespace-sensitive and
// space-sensitive, and indifferent to sharding (shards slice the space
// after identity is taken).
func TestSpaceHashIdentity(t *testing.T) {
	a := Fig6Space([4]string{"app", "libc", "sched", "net"})
	b := Fig6Space([4]string{"app2", "libc", "sched", "net"})
	if SpaceHash("w", a) != SpaceHash("w", a) {
		t.Fatal("hash not stable")
	}
	if SpaceHash("w", a) == SpaceHash("w2", a) {
		t.Fatal("hash ignores the namespace")
	}
	if SpaceHash("w", a) == SpaceHash("w", b) {
		t.Fatal("hash ignores the space")
	}
	if SpaceHash("w", a) == SpaceHash("w", a[:40]) {
		t.Fatal("hash ignores the space length")
	}
	if len(SpaceHash("w", a)) != 16 {
		t.Fatalf("hash %q: want 16 hex digits", SpaceHash("w", a))
	}
}
