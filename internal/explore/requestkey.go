package explore

import (
	"fmt"
	"sort"
	"strings"

	"flexos/internal/scenario"
)

// CanonicalRequestKey digests everything about an exploration request
// that can change the bytes of its result: the space identity (the
// SpaceHash of the memo namespace plus every configuration key), the
// resolved ranking metric, the constraint conjunction, whether
// monotonic pruning is enabled, and the shard. Two requests share a
// key exactly when the engine is guaranteed to produce byte-identical
// results for both — which is what lets a serving layer coalesce
// concurrent requests onto one engine pass.
//
// Deliberately excluded: the worker count (results are byte-identical
// for every value), the memo/backing (a cache tier can change
// statistics, never results), and the Progress/Observe hooks.
// Constraints are rendered canonically and sorted, since feasibility
// is their conjunction — "a AND b" and "b AND a" decide the same runs.
//
// The measurement budget and seed join the key: budgeted runs decide
// (and skip) different configurations per (budget, seed) pair, so two
// requests differing only there must not coalesce. The seed is
// normalized to 0 when no budget is set — an unbudgeted request
// ignores it, and ignored knobs must not split a flight. A delta
// request keys separately too (its report covers only the re-measured
// slice), and normalizes prune away since delta dispatch ignores it.
func CanonicalRequestKey(workload string, cfgs []*Config, metric Metric, constraints []Constraint, prune bool, shard Shard, budget int, seed int64, delta bool) string {
	// Resolve the ranking metric exactly as Engine.Run does.
	if metric == "" {
		if len(constraints) > 0 {
			metric = constraints[0].Metric
		}
		if metric == "" {
			metric = scenario.MetricThroughput
		}
	}
	cs := make([]string, 0, len(constraints))
	for _, c := range constraints {
		cs = append(cs, c.String())
	}
	sort.Strings(cs)
	if budget <= 0 {
		budget, seed = 0, 0
	}
	if delta {
		prune = false
	}
	return fmt.Sprintf("space=%s;metric=%s;constraints=%s;prune=%t;shard=%s;budget=%d;seed=%d;delta=%t",
		SpaceHash(workload, cfgs), metric, strings.Join(cs, ","), prune, shard, budget, seed, delta)
}
