package explore

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// Cancellation tests: the engine must return an error wrapping
// ErrCanceled promptly, leak no goroutines, and leave a shared Memo in
// a reusable state.

func TestEngineCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	res, err := Engine{}.Run(ctx, Request{
		Space: Fig6Space(fig6Comps),
		Measure: func(c *Config) (Metrics, error) {
			calls.Add(1)
			return liftMeasure(syntheticMeasure)(c)
		},
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled run returned %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cause not preserved: %v", err)
	}
	if res != nil {
		t.Fatalf("pre-canceled run returned a result: %+v", res)
	}
	if calls.Load() != 0 {
		t.Fatalf("pre-canceled run measured %d configs", calls.Load())
	}
}

func TestEngineDeadlineReturnsErrCanceled(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := Engine{}.Run(ctx, Request{
		Space: Fig6Space(fig6Comps),
		Measure: func(c *Config) (Metrics, error) {
			select {
			case <-ctx.Done():
				return Metrics{}, ctx.Err()
			case <-time.After(50 * time.Millisecond):
			}
			return liftMeasure(syntheticMeasure)(c)
		},
		Workers: 4,
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("deadline run returned %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline cause not preserved: %v", err)
	}
}

// stableGoroutines polls until the goroutine count settles back to at
// most base (with slack for runtime background goroutines), failing the
// test if it never does.
func stableGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d alive, started with %d", n, base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestEngineCancelMidRunIsPromptLeakFreeAndMemoSafe(t *testing.T) {
	base := runtime.NumGoroutine()
	memo := NewMemo()
	cfgs := Fig6Space(fig6Comps)
	ctx, cancel := context.WithCancel(context.Background())

	// A slow, cooperative measure: the first two configs return
	// instantly (unblocking the poset roots so the pool fills), the
	// third triggers the cancel, and everything from the third on
	// blocks until the context falls — like a real benchmark watching
	// its context.
	var measured atomic.Int64
	slow := func(c *Config) (Metrics, error) {
		n := measured.Add(1)
		if n <= 2 {
			return liftMeasure(syntheticMeasure)(c)
		}
		if n == 3 {
			cancel()
		}
		select {
		case <-ctx.Done():
			return Metrics{}, ctx.Err()
		case <-time.After(10 * time.Second):
		}
		return liftMeasure(syntheticMeasure)(c)
	}

	start := time.Now()
	_, err := Engine{}.Run(ctx, Request{Space: cfgs, Measure: slow, Workers: 4, Memo: memo, Workload: "w"})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled run returned %v, want ErrCanceled", err)
	}
	// Prompt: nowhere near the 10s a non-cooperative wait would cost.
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	// No goroutines outlive Run.
	stableGoroutines(t, base)

	// The memo must be reusable: no entry may be stuck in-flight, and
	// canceled measurements must not have been cached as values. A
	// fresh run against the same memo completes and measures what the
	// aborted run never delivered.
	res, err := Engine{}.Run(context.Background(), Request{
		Space: cfgs, Measure: liftMeasure(syntheticMeasure), Workers: 4, Memo: memo, Workload: "w"})
	if err != nil {
		t.Fatalf("rerun against shared memo: %v", err)
	}
	if res.Evaluated+res.MemoHits != res.Total {
		t.Fatalf("rerun accounting: evaluated=%d hits=%d total=%d", res.Evaluated, res.MemoHits, res.Total)
	}
	for i, m := range res.Measurements {
		if want, _ := syntheticMeasure(cfgs[i]); m.Metrics.Throughput != want {
			t.Fatalf("config %d: rerun value %v, want %v (stale canceled entry?)", i, m.Metrics.Throughput, want)
		}
	}
}

// TestEngineCompletedRunSurvivesLateCancel pins the edge where the
// context falls between the last decision and Run's return: a run
// whose every configuration was decided is complete and must be
// returned, not discarded as canceled.
func TestEngineCompletedRunSurvivesLateCancel(t *testing.T) {
	cfgs := Fig6Space(fig6Comps)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var decided atomic.Int64
	res, err := Engine{}.Run(ctx, Request{
		Space:   cfgs,
		Measure: liftMeasure(syntheticMeasure),
		Workers: 4,
		Observe: func(idx int, m Measurement) {
			// Fires on the coordinating goroutine; canceling on the
			// final decision means the context is already dead when Run
			// wraps up.
			if decided.Add(1) == int64(len(cfgs)) {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatalf("completed run reported %v after late cancel", err)
	}
	if res.Evaluated != len(cfgs) {
		t.Fatalf("completed run evaluated %d/%d", res.Evaluated, len(cfgs))
	}
}

func TestEngineCancelDuringStreamObserve(t *testing.T) {
	// Observe that cancels mid-run (the consumer-break path of
	// Query.Stream): the engine must wind down with ErrCanceled and not
	// call Observe concurrently or after returning.
	cfgs := Fig6Space(fig6Comps)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var observed atomic.Int64
	_, err := Engine{}.Run(ctx, Request{
		Space:   cfgs,
		Measure: liftMeasure(shakyMeasure),
		Workers: 4,
		Observe: func(idx int, m Measurement) {
			if observed.Add(1) == 5 {
				cancel()
			}
		},
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("observe-cancel run returned %v, want ErrCanceled", err)
	}
	got := observed.Load()
	if got < 5 {
		t.Fatalf("only %d observations before cancel", got)
	}
	after := observed.Load()
	time.Sleep(20 * time.Millisecond)
	if observed.Load() != after {
		t.Fatal("Observe fired after Engine.Run returned")
	}
}
