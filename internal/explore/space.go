package explore

import (
	"flexos/internal/harden"
	"flexos/internal/isolation"
)

// Fig6Space generates the paper's 80-configuration space for a
// four-component application (§6.2): the five compartmentalization
// strategies of Figure 8 —
//
//	A  app+libc+sched+lwip
//	B  app+libc+sched / lwip
//	C  app+libc+lwip  / sched
//	D  app+libc / sched+lwip
//	E  app+libc / sched / lwip
//
// — times the 16 per-component on/off combinations of the hardening
// stack (stack protector + UBSan + KASan), with MPK+DSS isolation fixed,
// exactly as Figure 6 fixes it.
//
// components must be [app, libc, sched, netstack] in that order.
func Fig6Space(components [4]string) []*Config {
	app, libcN, schedN, lwipN := components[0], components[1], components[2], components[3]
	partitions := [][][]string{
		{{app, libcN, schedN, lwipN}},     // A
		{{app, libcN, schedN}, {lwipN}},   // B
		{{app, libcN, lwipN}, {schedN}},   // C
		{{app, libcN}, {schedN, lwipN}},   // D
		{{app, libcN}, {schedN}, {lwipN}}, // E
	}
	var cfgs []*Config
	id := 0
	for _, part := range partitions {
		for mask := 0; mask < 16; mask++ {
			h := make(map[string]harden.Set)
			for bit, comp := range []string{app, libcN, schedN, lwipN} {
				if mask&(1<<bit) != 0 {
					h[comp] = harden.NewSet(harden.All)
				}
			}
			cfgs = append(cfgs, &Config{
				ID:        id,
				Blocks:    part,
				Hardening: h,
				Mechanism: "intel-mpk",
				GateMode:  isolation.GateFull,
				Sharing:   isolation.ShareDSS,
			})
			id++
		}
	}
	return cfgs
}

// CrossAppSpace generates a larger, cross-application design space to
// exercise exploration at scale: for every application quadruple it
// emits the five Figure-8 partitions × 16 per-component hardening masks
// × every requested isolation mechanism — 80·len(mechanisms) points per
// application (320 for the default two-app, two-mechanism sweep).
// Varying the mechanism deepens the poset (intel-mpk sits strictly
// below vm-ept at equal structure), which gives monotonic pruning
// longer safety chains to cut; configurations of different applications
// are incomparable and explore independently. IDs are dense across the
// whole space, and points whose canonical identity coincides with a
// Fig6Space point memoize against it.
//
// Each apps element must be [app, libc, sched, netstack], as for
// Fig6Space.
func CrossAppSpace(mechanisms []string, apps ...[4]string) []*Config {
	if len(mechanisms) == 0 {
		mechanisms = []string{"intel-mpk", "vm-ept"}
	}
	var cfgs []*Config
	id := 0
	for _, components := range apps {
		for _, mech := range mechanisms {
			for _, c := range Fig6Space(components) {
				c.ID = id
				c.Mechanism = mech
				cfgs = append(cfgs, c)
				id++
			}
		}
	}
	return cfgs
}

// Fig5Space generates the poset subset Figure 5 draws: a fixed
// two-compartment strategy, varying per-compartment hardening over
// {none, CFI, ASAN, CFI+ASAN} for each of the two compartments (16
// configurations).
func Fig5Space(blockA, blockB []string) []*Config {
	levels := []harden.Set{
		{},
		harden.NewSet(harden.CFI),
		harden.NewSet(harden.KASan),
		harden.NewSet(harden.CFI, harden.KASan),
	}
	var cfgs []*Config
	id := 0
	for _, ha := range levels {
		for _, hb := range levels {
			h := make(map[string]harden.Set)
			for _, c := range blockA {
				h[c] = ha
			}
			for _, c := range blockB {
				h[c] = hb
			}
			cfgs = append(cfgs, &Config{
				ID:        id,
				Blocks:    [][]string{append([]string{}, blockA...), append([]string{}, blockB...)},
				Hardening: h,
				Mechanism: "intel-mpk",
				GateMode:  isolation.GateFull,
				Sharing:   isolation.ShareDSS,
			})
			id++
		}
	}
	return cfgs
}
