package explore

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"flexos/internal/poset"
)

// Budgeted guided search: find the safest feasible configurations and
// the Pareto staircase of a space from a capped number of fresh
// measurements (Request.MeasureBudget) instead of measuring every
// point. The budget selects one of two modes:
//
// Branch-and-bound sweep — when pruning is on and a monotone
// constraint exists, the engine walks the grouped safety posets
// bottom-up exactly like the exhaustive DAG mode, but stops issuing
// fresh measurements when the budget runs out. One measurement that
// fails a monotone floor decides its entire undecided up-set as pruned
// *before* measuring it (the §5 monotonicity assumption,
// contrapositive), so the sweep spends the budget only on the feasible
// region plus the minimal infeasible boundary — the cheapest possible
// certificate: every feasible configuration must be measured to be
// reported, and every minimal infeasible element must be measured for
// anything above it to be pruned soundly. A sweep that completes
// within budget is therefore *exact*: its report is byte-identical to
// the exhaustive pruned run's, safest set and Pareto staircase
// included, at a fraction of the measurements. The sweep dispatches
// deterministic ready-frontier batches (membership depends only on
// prior decisions and the budget, never on worker count), so results
// are byte-identical at every worker count, starved or not.
//
// Successive halving — without a prunable constraint there is no
// structure to exploit, so the engine ranks by sampling: candidate
// order is a seeded splittable PRNG over canonical configuration keys;
// each round measures half the remaining budget, re-ranks everything
// valued so far, keeps the top half as survivors, and seeds the next
// round with the survivors' unmeasured poset neighbours (which walks
// the safety/performance staircase) topped up in PRNG order. Round
// membership depends only on (budget, seed) and prior rounds'
// deterministic outcomes — never on worker count.
//
// Configurations the budget never reaches are decided as skipped
// (counted in Result.Skipped, neither evaluated nor pruned). Memo and
// backing hits never consume budget.

// splitmix64 is the standard SplitMix64 finalizer: a cheap, seedable,
// splittable PRNG — hashing seed ^ key-hash yields an independent
// uniform priority stream per seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64a hashes a string with FNV-1a, allocation-free.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// runBudgeted is the budgeted dispatch mode: the branch-and-bound
// sweep when monotone pruning has structure to exploit, seeded
// successive halving when it does not, then a wind-down that decides
// everything the budget never reached as skipped.
func (st *runState) runBudgeted(ctx context.Context, order *spaceOrder, workers int) {
	n := len(st.cfgs)
	if n == 0 {
		return
	}
	budget := st.req.MeasureBudget
	if st.req.Prune && anyMonotone(st.res.Constraints) {
		st.budgetSweep(ctx, order, workers, budget)
	} else {
		st.budgetHalving(ctx, order, workers, budget)
	}
	if st.canceled || st.failed {
		return
	}
	// Wind down: whatever the budget never reached is decided as
	// skipped, in input order, so Progress/Observe complete the space.
	for i := 0; i < n; i++ {
		if !st.decided.Test(i) {
			st.skip(i)
		}
	}
}

// budgetSweep is the exhaustive DAG walk under a measurement cap. Each
// pass over the ready frontier (undecided configurations whose poset
// predecessors are all decided — an antichain, so pass members never
// prune each other) first takes the free decisions: prune-inheritance
// from a predecessor that failed a monotone constraint, and twin
// inheritance from a valued canonical. What remains is measured as one
// deterministic batch, capped by the unspent budget — the batch is
// fixed before any measurement starts, so worker count only moves
// wall-clock time. A failing measurement keeps its vector (evaluated,
// infeasible — the boundary of the feasible region, exactly as the
// exhaustive mode reports it) and seeds prune-inheritance for
// everything above. The sweep ends when the frontier drains (complete:
// the result is the exhaustive pruned run's, byte for byte) or when a
// pass can neither measure nor decide anything (starved: the wind-down
// skips the rest).
func (st *runState) budgetSweep(ctx context.Context, order *spaceOrder, workers, budget int) {
	n := len(st.cfgs)
	preds, succs := order.edges()
	remaining := make([]int32, n)
	frontier := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		remaining[i] = int32(len(preds[i]))
		if remaining[i] == 0 {
			frontier = append(frontier, int32(i))
		}
	}
	// release decrements successor in-degrees of a decided node and
	// collects the newly ready.
	release := func(i int32, out []int32) []int32 {
		for _, j := range succs[i] {
			if remaining[j]--; remaining[j] == 0 && !st.decided.Test(int(j)) {
				out = append(out, j)
			}
		}
		return out
	}
	var batch, next []int32
	var slots []outcome
	for len(frontier) > 0 {
		if st.canceled || st.failed {
			return
		}
		sort.Slice(frontier, func(a, b int) bool { return frontier[a] < frontier[b] })
		batch, next = batch[:0], next[:0]
		progressed := false
		for _, i32 := range frontier {
			i := int(i32)
			if st.decided.Test(i) {
				continue // a twin filled alongside its canonical below
			}
			inherited := false
			for _, pr := range preds[i] {
				if st.failsBudget.Test(int(pr)) {
					inherited = true
					break
				}
			}
			if inherited {
				st.res.Measurements[i].Pruned = true
				st.failsBudget.Set(i) // propagate
				st.markDecided(i)
				next = release(i32, next)
				progressed = true
				continue
			}
			if st.canon[i32] != i32 {
				// An identical twin: its canonical shares the predecessor
				// set, so it sits in this very pass — the twin inherits
				// right after the canonical's outcome lands below.
				continue
			}
			batch = append(batch, i32)
		}
		// The budget cap is pessimistic — memo hits inside the batch are
		// free and refund the cut configurations to a later pass.
		if room := budget - st.res.Measured; len(batch) > room {
			if room < 0 {
				room = 0
			}
			batch = batch[:room]
		}
		if len(batch) > 0 {
			if cap(slots) < len(batch) {
				slots = make([]outcome, len(batch))
			}
			slots = slots[:len(batch)]
			for k := range slots {
				slots[k] = outcome{}
			}
			st.measureBatch(ctx, workers, batch, slots)
			for k, i32 := range batch {
				i, o := int(i32), &slots[k]
				if o.err != nil {
					if ctx.Err() != nil {
						st.canceled = true
						return
					}
					st.failed = true
					st.errs = append(st.errs, failedMeasure{idx: i, err: o.err})
					continue
				}
				if st.failed {
					continue
				}
				// fill marks a monotone-failing vector in failsBudget
				// itself, which is what seeds the prune-inheritance above.
				st.fill(i, o.metrics, o.hit)
				next = release(i32, next)
				for _, t := range st.twins[i32] {
					st.fill(int(t), o.metrics, true)
					next = release(t, next)
				}
				progressed = true
			}
			if st.failed {
				return
			}
		}
		if !progressed {
			return // starved: no budget for the frontier, nothing to inherit
		}
		for _, i32 := range frontier {
			if !st.decided.Test(int(i32)) {
				next = append(next, i32)
			}
		}
		frontier = append(frontier[:0], next...)
	}
}

// budgetHalving is the sampling mode: seeded successive halving with
// survivor-neighbour expansion. Rounds have deterministic membership;
// only the measurements within a round run in parallel.
func (st *runState) budgetHalving(ctx context.Context, order *spaceOrder, workers, budget int) {
	n := len(st.cfgs)
	preds, succs := order.edges()

	// Candidate order: splitmix64(seed ^ fnv1a(canonical key)) — an
	// independent uniform priority per (seed, key), so a different seed
	// samples a different subset and a fixed seed always samples the
	// same one.
	seed := uint64(st.req.Seed)
	type cand struct {
		i    int32
		prio uint64
	}
	elig := make([]cand, 0, n)
	for i := 0; i < n; i++ {
		if int(st.canon[i]) != i || st.decided.Test(i) {
			continue
		}
		elig = append(elig, cand{int32(i), splitmix64(seed ^ fnv64a(st.keys[i]))})
	}
	sort.Slice(elig, func(a, b int) bool {
		if elig[a].prio != elig[b].prio {
			return elig[a].prio < elig[b].prio
		}
		return st.keys[elig[a].i] < st.keys[elig[b].i]
	})

	better := func(a, b int32) bool {
		pa, pb := st.res.Measurements[a].Perf, st.res.Measurements[b].Perf
		if pa != pb {
			if st.metric.HigherIsBetter() {
				return pa > pb
			}
			return pa < pb
		}
		return st.keys[a] < st.keys[b]
	}

	picked := poset.NewBitset(n)
	var survivors []int32
	var round []int32
	var slots []outcome
	var pool []int32
	next := 0
	for {
		remaining := budget - st.res.Measured
		if remaining <= 0 || st.canceled || st.failed {
			return
		}
		roundSize := (remaining + 1) / 2

		// Round membership: unmeasured poset neighbours of the current
		// survivors first (walking the frontier staircase), topped up
		// from the global PRNG order. Neighbours that are twins redirect
		// to their canonical rep.
		round = round[:0]
		add := func(j int32) {
			j = st.canon[j]
			if st.decided.Test(int(j)) || picked.Test(int(j)) {
				return
			}
			picked.Set(int(j))
			round = append(round, j)
		}
		for _, s := range survivors {
			if len(round) >= roundSize {
				break
			}
			for _, j := range preds[s] {
				add(j)
			}
			for _, j := range succs[s] {
				add(j)
			}
		}
		if len(round) > roundSize {
			// A survivor's neighbourhood overshot the round: keep the
			// prefix (deterministic) and release the rest for later.
			for _, j := range round[roundSize:] {
				picked.Clear(int(j))
			}
			round = round[:roundSize]
		}
		for next < len(elig) && len(round) < roundSize {
			add(elig[next].i)
			next++
		}
		if len(round) == 0 {
			return
		}

		if cap(slots) < len(round) {
			slots = make([]outcome, len(round))
		}
		slots = slots[:len(round)]
		for k := range slots {
			slots[k] = outcome{}
		}
		st.measureBatch(ctx, workers, round, slots)

		// Outcomes are processed strictly in round order — the only
		// thing the parallel pool above decided is wall-clock time.
		for k, i32 := range round {
			i, o := int(i32), &slots[k]
			if o.err != nil {
				if ctx.Err() != nil {
					st.canceled = true
					return
				}
				st.failed = true
				st.errs = append(st.errs, failedMeasure{idx: i, err: o.err})
				continue
			}
			if st.failed {
				continue
			}
			st.fill(i, o.metrics, o.hit)
			for _, t := range st.twins[i32] {
				st.fill(int(t), o.metrics, true)
			}
		}
		if st.failed || st.canceled {
			return
		}

		// Re-rank everything valued so far; the top half survive and
		// seed the next round's neighbourhood. Ranking prefers feasible
		// configurations; without any, the best measured lead the walk.
		pool = pool[:0]
		for i := 0; i < n; i++ {
			if int(st.canon[i]) == i && st.valued.Test(i) && st.res.Feasible(i) {
				pool = append(pool, int32(i))
			}
		}
		if len(pool) == 0 {
			for i := 0; i < n; i++ {
				if int(st.canon[i]) == i && st.valued.Test(i) {
					pool = append(pool, int32(i))
				}
			}
		}
		sort.Slice(pool, func(a, b int) bool { return better(pool[a], pool[b]) })
		survivors = pool[:(len(pool)+1)/2]
	}
}

// measureBatch measures a fixed list of canonical configurations with
// a small self-scheduling pool. Unlike runList it publishes nothing:
// outcomes land in the caller's slots and the caller processes them in
// list order after the pool drains.
func (st *runState) measureBatch(ctx context.Context, workers int, list []int32, slots []outcome) {
	if workers > len(list) {
		workers = len(list)
	}
	if workers <= 1 {
		for k := range list {
			st.measureOne(ctx, list[k], &slots[k])
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := cursor.Add(1) - 1
				if k >= int64(len(list)) {
					return
				}
				st.measureOne(ctx, list[k], &slots[k])
			}
		}()
	}
	wg.Wait()
}
