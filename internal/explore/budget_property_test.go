package explore_test

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sort"
	"testing"

	"flexos/internal/explore"
	"flexos/internal/explore/exploretest"
	"flexos/internal/synth"
)

// Property tests for budgeted guided search on synthetic spaces: a
// budgeted run's results are always a subset of the exhaustive
// oracle's, a branch-and-bound sweep that completes within budget is
// byte-identical to the exhaustive pruned run (exact safest set, exact
// Pareto staircase, fraction of the measurements), and for a fixed
// (budget, seed) pair the output is byte-identical across worker
// counts — the headline guarantees of the budgeted modes, all asserted
// through the exploretest harness.

// throughputFloor returns a monotone floor keeping roughly the top
// (1-q) fraction of the space's modeled throughput distribution.
func throughputFloor(res *explore.Result, q float64) explore.Constraint {
	vals := make([]float64, 0, len(res.Measurements))
	for _, m := range res.Measurements {
		vals = append(vals, m.Metrics.Throughput)
	}
	sort.Float64s(vals)
	return explore.BudgetConstraint("", vals[int(q*float64(len(vals)-1))])
}

// exhaustiveOracle measures a synthetic space completely, without
// pruning or constraints — the ground truth every budgeted assertion
// compares against.
func exhaustiveOracle(t *testing.T, seed int64, n int) (*explore.Result, []*explore.Config) {
	t.Helper()
	cfgs := synth.Space(seed, n)
	res, err := explore.Engine{}.Run(context.Background(), explore.Request{
		Space: cfgs, Measure: synth.Measure(seed), Workers: 4,
	})
	if err != nil {
		t.Fatalf("seed %d: oracle: %v", seed, err)
	}
	return res, cfgs
}

// exhaustivePruned runs the unbudgeted pruned engine — the reference a
// completed branch-and-bound sweep must reproduce byte for byte.
func exhaustivePruned(t *testing.T, seed int64, cfgs []*explore.Config, cs []explore.Constraint) *explore.Result {
	t.Helper()
	res, err := explore.Engine{}.Run(context.Background(), explore.Request{
		Space: exploretest.CopySpace(cfgs), Measure: synth.Measure(seed),
		Constraints: cs, Workers: 4, Prune: true,
	})
	if err != nil && !errors.Is(err, explore.ErrNoFeasible) {
		t.Fatalf("seed %d: exhaustive pruned: %v", seed, err)
	}
	return res
}

func runBudgeted(t *testing.T, seed int64, cfgs []*explore.Config, cs []explore.Constraint, prune bool, budget int, prngSeed int64, workers int) *explore.Result {
	t.Helper()
	res, err := explore.Engine{}.Run(context.Background(), explore.Request{
		Space:         exploretest.CopySpace(cfgs),
		Measure:       synth.Measure(seed),
		Constraints:   cs,
		Workers:       workers,
		Prune:         prune,
		MeasureBudget: budget,
		Seed:          prngSeed,
	})
	if err != nil && !errors.Is(err, explore.ErrNoFeasible) {
		t.Fatalf("seed %d budget %d workers %d: %v", seed, budget, workers, err)
	}
	return res
}

// TestBudgetedSubsetOfExhaustiveOracle: at every budget — starvation
// included — and in both budgeted modes, a budgeted run reports only
// truths the exhaustive oracle confirms: every evaluated vector equals
// the oracle's, every pruned configuration is infeasible, every
// feasible configuration is in the oracle's feasible set, and the
// budget cap holds as a hard ceiling on fresh measurements.
func TestBudgetedSubsetOfExhaustiveOracle(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		n := 320
		oracle, cfgs := exhaustiveOracle(t, seed, n)
		cs := []explore.Constraint{throughputFloor(oracle, 0.5)}
		oracleFeasible := exploretest.FeasibleSet(oracle, cs)

		for _, prune := range []bool{true, false} {
			for _, budget := range []int{n / 10, n / 4, n} {
				res := runBudgeted(t, seed, cfgs, cs, prune, budget, 42, 4)
				if res.Measured > budget {
					t.Fatalf("seed %d prune %t: measured %d over budget %d", seed, prune, res.Measured, budget)
				}
				d := exploretest.DecisionsOf(res)
				if d.Undecided != res.Skipped {
					t.Fatalf("seed %d prune %t budget %d: %d undecided configs but Skipped=%d", seed, prune, budget, d.Undecided, res.Skipped)
				}
				for i, m := range res.Measurements {
					if m.Evaluated && m.Metrics != oracle.Measurements[i].Metrics {
						t.Fatalf("seed %d prune %t budget %d: config %d vector diverges from oracle", seed, prune, budget, i)
					}
					if m.Pruned && oracleFeasible[i] {
						t.Fatalf("seed %d prune %t budget %d: pruned feasible config %d", seed, prune, budget, i)
					}
					if res.Feasible(i) && !oracleFeasible[i] {
						t.Fatalf("seed %d prune %t budget %d: config %d feasible in budgeted run, infeasible in oracle", seed, prune, budget, i)
					}
				}
			}
		}
	}
}

// TestBudgetedByteIdenticalAcrossWorkers: for a fixed (budget, seed)
// pair the full report — every per-configuration decision, the safest
// set, and the budget counters — is byte-identical at every worker
// count, in both budgeted modes, including under starvation budgets
// where which configurations get measured is decided by the schedule.
func TestBudgetedByteIdenticalAcrossWorkers(t *testing.T) {
	workerCounts := []int{1, 4, 8, runtime.GOMAXPROCS(0)}
	for seed := int64(0); seed < 4; seed++ {
		n := 320
		oracle, cfgs := exhaustiveOracle(t, seed, n)
		cs := []explore.Constraint{throughputFloor(oracle, 0.6)}
		for _, prune := range []bool{true, false} {
			for _, budget := range []int{n / 8, n / 2} {
				for _, prngSeed := range []int64{0, 7} {
					var want string
					var wantMeasured, wantSkipped int
					for _, workers := range workerCounts {
						res := runBudgeted(t, seed, cfgs, cs, prune, budget, prngSeed, workers)
						got := exploretest.RenderResult(res)
						if want == "" {
							want, wantMeasured, wantSkipped = got, res.Measured, res.Skipped
							continue
						}
						if got != want {
							t.Fatalf("seed %d prune %t budget %d prng %d workers %d: report diverges from single-worker run\n--- got ---\n%s--- want ---\n%s",
								seed, prune, budget, prngSeed, workers, got, want)
						}
						if res.Measured != wantMeasured || res.Skipped != wantSkipped {
							t.Fatalf("seed %d prune %t budget %d prng %d workers %d: counters (measured %d skipped %d) vs (%d, %d)",
								seed, prune, budget, prngSeed, workers, res.Measured, res.Skipped, wantMeasured, wantSkipped)
						}
					}
				}
			}
		}
	}
}

// TestBudgetedSweepExactWhenBudgetCoversBoundary: the branch-and-bound
// sweep spends measurements only on the feasible region plus its
// minimal infeasible boundary, so as soon as the budget covers exactly
// what the exhaustive pruned run measures, the budgeted run *is* the
// exhaustive pruned run — byte-identical report, exact safest set
// (cross-checked against the brute-force flat-poset oracle), exact
// Pareto staircase and exact feasible front — at a fraction of the
// space. One measurement less, and the cap binds: something is
// skipped.
func TestBudgetedSweepExactWhenBudgetCoversBoundary(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		n := 320
		oracle, cfgs := exhaustiveOracle(t, seed, n)
		cs := []explore.Constraint{throughputFloor(oracle, 0.8)}
		exh := exhaustivePruned(t, seed, cfgs, cs)
		budget := exh.Measured
		if budget >= n {
			t.Fatalf("seed %d: pruning saved nothing (%d of %d)", seed, budget, n)
		}

		res := runBudgeted(t, seed, cfgs, cs, true, budget, 3, 4)
		if res.Measured != budget || res.Skipped != 0 {
			t.Fatalf("seed %d: sweep measured %d skipped %d, want %d measured, none skipped", seed, res.Measured, res.Skipped, budget)
		}
		if got, want := exploretest.RenderResult(res), exploretest.RenderResult(exh); got != want {
			t.Fatalf("seed %d: completed sweep diverges from the exhaustive pruned run\n--- budgeted ---\n%s--- exhaustive ---\n%s", seed, got, want)
		}
		if want := exploretest.SafestUnder(oracle, cs); !reflect.DeepEqual(res.Safest, want) {
			t.Fatalf("seed %d: safest %v, brute-force oracle %v", seed, res.Safest, want)
		}
		if got, want := res.ParetoFront(), exh.ParetoFront(); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: front %v, exhaustive pruned front %v", seed, got, want)
		}
		if got, want := exploretest.FeasibleFront(res, cs), exploretest.FeasibleFront(oracle, cs); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: feasible front %v, brute-force oracle %v", seed, got, want)
		}

		starved := runBudgeted(t, seed, cfgs, cs, true, budget-1, 3, 4)
		if starved.Measured > budget-1 || starved.Skipped == 0 {
			t.Fatalf("seed %d: budget %d run measured %d, skipped %d — the cap must bind", seed, budget-1, starved.Measured, starved.Skipped)
		}
	}
}

// TestBudgetedAcceptance10k is the acceptance criterion of the
// budgeted-search work: on the 10k-point synthetic space under a
// monotone throughput floor, budgeted mode finds the exact exhaustive
// safest-config set and Pareto front using at most 20% of the
// exhaustive run's measurements (asserted via the Measured counters),
// and is byte-identical at any worker count for the fixed
// (budget, seed).
func TestBudgetedAcceptance10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-point space in -short mode")
	}
	const seed, n, budget = 1, 10_000, 2_000
	oracle, cfgs := exhaustiveOracle(t, seed, n)
	if oracle.Measured != n {
		t.Fatalf("exhaustive run measured %d of %d", oracle.Measured, n)
	}
	cs := []explore.Constraint{throughputFloor(oracle, 0.95)}

	var want string
	var res *explore.Result
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		r := runBudgeted(t, seed, cfgs, cs, true, budget, 11, workers)
		got := exploretest.RenderResult(r)
		if want == "" {
			want, res = got, r
		} else if got != want {
			t.Fatalf("workers %d: budgeted 10k report diverges from single-worker run", workers)
		}
	}

	if res.Measured*5 > oracle.Measured {
		t.Fatalf("budgeted run spent %d measurements; acceptance demands <= 20%% of the exhaustive %d", res.Measured, oracle.Measured)
	}
	if res.Skipped != 0 {
		t.Fatalf("budgeted run skipped %d configs; the budget must cover the full decide", res.Skipped)
	}
	// The completed sweep must be the exhaustive pruned run, byte for
	// byte — exact safest set and exact Pareto staircase included (the
	// 10k flat poset the brute-force oracle would build is quadratic in
	// the space; pruned-vs-brute-force equivalence is proven elsewhere).
	exh := exhaustivePruned(t, seed, cfgs, cs)
	if got := exploretest.RenderResult(exh); got != want {
		t.Fatal("budgeted 10k report diverges from the exhaustive pruned run")
	}
	if !reflect.DeepEqual(res.Safest, exh.Safest) {
		t.Fatalf("safest size %d, exhaustive %d", len(res.Safest), len(exh.Safest))
	}
	if got, wantFront := exploretest.FeasibleFront(res, cs), exploretest.FeasibleFront(oracle, cs); !reflect.DeepEqual(got, wantFront) {
		t.Fatalf("feasible front size %d, brute-force oracle front size %d", len(got), len(wantFront))
	}
}
