package explore

import "context"

// runDelta is the delta re-exploration dispatch mode: after a space is
// edited (configurations added, removed, or retuned), only the
// configurations whose canonical identity is absent from the memo and
// its backing store are measured — the present ones are skipped
// without even loading their vectors. The fresh measurements write
// through to the backing as usual, so the store afterwards covers the
// edited space and a plain warm run produces the full merged report.
//
// The skip pass runs in input order on the coordinator, so Progress /
// Observe see one deterministic prefix-free sequence regardless of the
// worker count; the absent configurations then measure on the ordinary
// flat pool.
func (st *runState) runDelta(ctx context.Context, workers int) {
	n := len(st.cfgs)
	present := make(map[int32]bool)
	for i := 0; i < n; i++ {
		if c := st.canon[i]; int(c) == i && st.req.Memo.peek(st.keys[i]) {
			present[c] = true
		}
	}
	list := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if present[st.canon[i]] {
			st.skip(i)
		} else if int(st.canon[i]) == i {
			list = append(list, int32(i))
		}
	}
	st.runList(ctx, workers, list)
}
