package explore

import (
	"reflect"
	"testing"

	redisapp "flexos/internal/apps/redis"

	"flexos/internal/oslib"
	"flexos/internal/scenario"
)

// scenarioMeasure adapts a library scenario into a MeasureMetrics over
// Fig6Space configurations.
func scenarioMeasure(sc *scenario.Scenario) MeasureMetrics {
	return func(c *Config) (Metrics, error) {
		return sc.Run(c.Spec([]string{oslib.BootName, oslib.MMName}))
	}
}

// syntheticMetrics derives a deterministic, safety-monotone metric
// vector from a configuration's structure: cheap enough for large
// sweeps, and decreasing in throughput (increasing in cost metrics) as
// configurations get safer — matching the engine's pruning assumption.
func syntheticMetrics(c *Config) (Metrics, error) {
	cost := float64(c.NumCompartments()-1)*100 + float64(c.HardenedCount())*17 +
		float64(c.strength())*250 + float64(c.gateRank())*3 + float64(c.sharingRank())*2
	return Metrics{
		Throughput:   10_000 - cost,
		P50us:        1 + cost/100,
		P99us:        2 + cost/50,
		MaxUs:        3 + cost/25,
		PeakMemBytes: 1000 + uint64(cost)*3,
		BootCycles:   500 + uint64(cost),
		Cycles:       uint64(cost) + 1,
		Ops:          1,
	}, nil
}

// TestRunMetricsDeterministicAcrossWorkers is the acceptance check of
// the multi-metric engine: every Metrics field and the ParetoFront are
// byte-identical for workers ∈ {1, 4, 8} and match the sequential
// oracle, on a real scenario workload over the Redis Figure-6 space.
func TestRunMetricsDeterministicAcrossWorkers(t *testing.T) {
	sc, ok := scenario.ByName("redis-get90")
	if !ok {
		t.Fatal("redis-get90 missing")
	}
	sc = sc.WithOps(60)
	measure := scenarioMeasure(sc)
	metric := scenario.MetricP99
	budget := 0.6 // µs ceiling: tight enough that some configs fail

	mkSpace := func() []*Config { return Fig6Space(redisapp.Components4()) }
	oracle, err := RunMetricsSequential(mkSpace(), measure, metric, budget, true)
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Evaluated == oracle.Total {
		t.Fatalf("budget %v pruned nothing; tighten the test", budget)
	}
	oracleFront := oracle.ParetoFront()

	for _, workers := range []int{1, 4, 8} {
		res, err := RunMetrics(mkSpace(), measure, metric, budget, Options{Workers: workers, Prune: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res.Measurements) != len(oracle.Measurements) {
			t.Fatalf("workers=%d: %d measurements, oracle %d", workers, len(res.Measurements), len(oracle.Measurements))
		}
		for i := range res.Measurements {
			got, want := res.Measurements[i], oracle.Measurements[i]
			if got.Metrics != want.Metrics {
				t.Fatalf("workers=%d: config %d metrics diverge:\n got %+v\nwant %+v",
					workers, i, got.Metrics, want.Metrics)
			}
			if got.Perf != want.Perf || got.Evaluated != want.Evaluated || got.Pruned != want.Pruned {
				t.Fatalf("workers=%d: config %d decision diverges: got %+v want %+v",
					workers, i, got, want)
			}
		}
		if !reflect.DeepEqual(res.Safest, oracle.Safest) {
			t.Fatalf("workers=%d: safest %v, oracle %v", workers, res.Safest, oracle.Safest)
		}
		if front := res.ParetoFront(); !reflect.DeepEqual(front, oracleFront) {
			t.Fatalf("workers=%d: front %v, oracle %v", workers, front, oracleFront)
		}
		if res.Metric != metric {
			t.Fatalf("workers=%d: result metric %q", workers, res.Metric)
		}
	}
}

// TestRunMetricsLowerBetterPruning checks ceiling-budget semantics on a
// cost metric: pruned nodes must all genuinely exceed the ceiling, and
// the safest set must equal the exhaustively-derived one.
func TestRunMetricsLowerBetterPruning(t *testing.T) {
	for _, metric := range []Metric{scenario.MetricP99, scenario.MetricPeakMem, scenario.MetricBoot} {
		cfgs := CrossAppSpace(nil, redisapp.Components4())
		exhaustive, err := RunMetricsSequential(cfgs, syntheticMetrics, metric, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		// Ceiling at the median of the metric's values.
		vals := make([]float64, 0, len(cfgs))
		for _, m := range exhaustive.Measurements {
			vals = append(vals, m.Perf)
		}
		budget := median(vals)

		pruned, err := RunMetrics(CrossAppSpace(nil, redisapp.Components4()), syntheticMetrics, metric, budget, Options{Prune: true})
		if err != nil {
			t.Fatal(err)
		}
		if pruned.Evaluated == pruned.Total {
			t.Errorf("%s: nothing pruned at median ceiling", metric)
		}
		for i, m := range pruned.Measurements {
			if m.Pruned && metric.Meets(exhaustive.Measurements[i].Perf, budget) {
				t.Errorf("%s: config %d pruned but meets the ceiling (%v <= %v)",
					metric, i, exhaustive.Measurements[i].Perf, budget)
			}
		}
		// Re-filter the exhaustive result with the pruning run's
		// constraint to derive the expected stars.
		exhaustive.Constraints = []Constraint{BudgetConstraint(metric, budget)}
		wantSafest := safest(exhaustive.Poset(), exhaustive)
		if !reflect.DeepEqual(pruned.Safest, wantSafest) {
			t.Errorf("%s: safest %v, exhaustive oracle %v", metric, pruned.Safest, wantSafest)
		}
	}
}

func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

// TestMemoCarriesMetricVectors re-runs an exploration against a shared
// memo and requires every vector to come back intact from cache.
func TestMemoCarriesMetricVectors(t *testing.T) {
	memo := NewMemo()
	opts := Options{Memo: memo, Workload: "synthetic"}
	first, err := RunMetrics(Fig6Space(redisapp.Components4()), syntheticMetrics, scenario.MetricThroughput, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunMetrics(Fig6Space(redisapp.Components4()), syntheticMetrics, scenario.MetricThroughput, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.Evaluated != 0 || second.MemoHits != second.Total {
		t.Fatalf("second run measured %d fresh (memo hits %d/%d)", second.Evaluated, second.MemoHits, second.Total)
	}
	for i := range second.Measurements {
		if second.Measurements[i].Metrics != first.Measurements[i].Metrics {
			t.Fatalf("config %d: cached vector %+v != original %+v",
				i, second.Measurements[i].Metrics, first.Measurements[i].Metrics)
		}
		if !second.Measurements[i].Cached {
			t.Fatalf("config %d not marked cached", i)
		}
	}
	// A run budgeting on a different metric may share the same memo.
	third, err := RunMetrics(Fig6Space(redisapp.Components4()), syntheticMetrics, scenario.MetricPeakMem, 5000, opts)
	if err != nil {
		t.Fatal(err)
	}
	if third.Evaluated != 0 {
		t.Fatalf("metric switch invalidated the memo: %d fresh measurements", third.Evaluated)
	}
}

// TestScalarRunStillWorks pins the backward-compatible scalar API: Run
// and RunOpts agree, and Perf doubles as the throughput dimension.
func TestScalarRunStillWorks(t *testing.T) {
	measure := func(c *Config) (float64, error) {
		m, _ := syntheticMetrics(c)
		return m.Throughput, nil
	}
	cfgs := Fig6Space(redisapp.Components4())
	seq, err := Run(Fig6Space(redisapp.Components4()), measure, 9800, true)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunOpts(cfgs, measure, 9800, Options{Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Safest, par.Safest) {
		t.Fatalf("scalar engines disagree: %v vs %v", seq.Safest, par.Safest)
	}
	for i := range par.Measurements {
		m := par.Measurements[i]
		if m.Evaluated && m.Metrics.Throughput != m.Perf {
			t.Fatalf("config %d: lifted vector throughput %v != perf %v", i, m.Metrics.Throughput, m.Perf)
		}
	}
	if seq.Metric != scenario.MetricThroughput || par.Metric != scenario.MetricThroughput {
		t.Fatalf("scalar runs must default to the throughput metric, got %q / %q", seq.Metric, par.Metric)
	}
}

// TestParetoFrontProperties verifies frontier soundness on a real
// metric distribution: no frontier point is dominated, every
// non-frontier point is, and pruned points are excluded.
func TestParetoFrontProperties(t *testing.T) {
	res, err := RunMetrics(CrossAppSpace(nil, redisapp.Components4()), syntheticMetrics, scenario.MetricThroughput, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	front := res.ParetoFront()
	if len(front) == 0 || len(front) == res.Total {
		t.Fatalf("degenerate frontier: %d of %d", len(front), res.Total)
	}
	level := res.SafetyLevels()
	onFront := make(map[int]bool, len(front))
	for _, i := range front {
		onFront[i] = true
	}
	dominates := func(i, j int) bool {
		mi, mj := res.Measurements[i].Metrics, res.Measurements[j].Metrics
		if level[i] < level[j] || mi.Throughput < mj.Throughput || mi.PeakMemBytes > mj.PeakMemBytes {
			return false
		}
		return level[i] > level[j] || mi.Throughput > mj.Throughput || mi.PeakMemBytes < mj.PeakMemBytes
	}
	for i := range res.Measurements {
		dominated := false
		for j := range res.Measurements {
			if i != j && dominates(j, i) {
				dominated = true
				break
			}
		}
		if dominated == onFront[i] {
			t.Fatalf("config %d: dominated=%v but onFront=%v", i, dominated, onFront[i])
		}
	}
	if got := res.ParetoConfigs(); len(got) != len(front) {
		t.Fatalf("ParetoConfigs len %d != front len %d", len(got), len(front))
	}
}

// TestParetoExcludesPruned checks that a pruning run's frontier only
// ranks evaluated configurations.
func TestParetoExcludesPruned(t *testing.T) {
	res, err := RunMetrics(Fig6Space(redisapp.Components4()), syntheticMetrics, scenario.MetricThroughput, 9800, Options{Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated == res.Total {
		t.Fatal("nothing pruned; tighten the budget")
	}
	for _, i := range res.ParetoFront() {
		if !res.Measurements[i].Evaluated {
			t.Fatalf("pruned config %d on the frontier", i)
		}
	}
}
