package explore

import (
	"fmt"
	"strconv"
	"strings"

	"flexos/internal/scenario"
)

// Op is a constraint direction: the comparison a bound applies to.
type Op string

// The two constraint directions.
const (
	// AtLeast keeps configurations whose metric value is >= the bound
	// (a floor — the natural direction for throughput).
	AtLeast Op = ">="
	// AtMost keeps configurations whose metric value is <= the bound
	// (a ceiling — the natural direction for latency, memory and boot).
	AtMost Op = "<="
)

// NaturalOp returns the direction a budget on the metric traditionally
// uses: a floor for higher-is-better metrics, a ceiling otherwise.
func NaturalOp(m Metric) Op {
	if m.HigherIsBetter() {
		return AtLeast
	}
	return AtMost
}

// Constraint is one budget bound of an exploration: the Metric's value
// must satisfy `value Op Bound` for a configuration to be feasible. A
// Request may carry any number of constraints, on any mix of metrics
// and directions; feasibility is their conjunction.
type Constraint struct {
	Metric Metric
	Op     Op
	Bound  float64
}

// BudgetConstraint reproduces the legacy single-budget semantics: a
// bound on the metric in its natural direction. An empty metric selects
// throughput, like the legacy engines did.
func BudgetConstraint(m Metric, budget float64) Constraint {
	if m == "" {
		m = scenario.MetricThroughput
	}
	return Constraint{Metric: m, Op: NaturalOp(m), Bound: budget}
}

// Meets reports whether a metric vector satisfies the constraint.
func (c Constraint) Meets(mx Metrics) bool {
	v := c.Metric.Value(mx)
	if c.Op == AtMost {
		return v <= c.Bound
	}
	return v >= c.Bound
}

// Monotone reports whether a violation of the constraint propagates up
// the safety order — the condition under which the engine may prune a
// configuration's safer descendants without measuring them. Under the
// §5 monotonicity assumption, rates only fall and costs only rise as
// configurations get safer, so a floor on a higher-is-better metric
// (or a ceiling on a lower-is-better one) that a configuration misses
// is missed by everything above it too. Constraints in the opposite
// direction (say, a throughput ceiling) do not prune: they only filter
// measured configurations.
//
// Metrics that improve with safety (survival) are excluded in both
// directions: a survival floor is violated by *less* safe
// configurations, so propagating the violation upward would prune
// exactly the configurations most likely to satisfy it. Such
// constraints only filter.
func (c Constraint) Monotone() bool {
	return c.Op == NaturalOp(c.Metric) && !c.Metric.ImprovesWithSafety()
}

// String renders the constraint in the CLI's spec syntax, e.g.
// "throughput>=500000" or "p99<=2.5".
func (c Constraint) String() string {
	m := c.Metric
	if m == "" {
		m = scenario.MetricThroughput
	}
	return fmt.Sprintf("%s%s%s", m, c.Op, strconv.FormatFloat(c.Bound, 'g', -1, 64))
}

// ParseConstraint parses the CLI constraint syntax: "metric>=bound" or
// "metric<=bound", with the metric names ParseMetric accepts
// (throughput, p50, p99, maxlat, mem, boot, survival).
func ParseConstraint(s string) (Constraint, error) {
	var op Op
	var i int
	if i = strings.Index(s, string(AtLeast)); i >= 0 {
		op = AtLeast
	} else if i = strings.Index(s, string(AtMost)); i >= 0 {
		op = AtMost
	} else {
		return Constraint{}, fmt.Errorf("explore: constraint %q: want metric>=bound or metric<=bound", s)
	}
	name := strings.TrimSpace(s[:i])
	if name == "" {
		return Constraint{}, fmt.Errorf("explore: constraint %q: missing metric name", s)
	}
	metric, err := scenario.ParseMetric(name)
	if err != nil {
		return Constraint{}, fmt.Errorf("explore: constraint %q: %w", s, err)
	}
	bound, err := strconv.ParseFloat(strings.TrimSpace(s[i+2:]), 64)
	if err != nil {
		return Constraint{}, fmt.Errorf("explore: constraint %q: bad bound: %v", s, err)
	}
	return Constraint{Metric: metric, Op: op, Bound: bound}, nil
}

// meetsAll reports whether a vector satisfies every constraint.
func meetsAll(cs []Constraint, mx Metrics) bool {
	for _, c := range cs {
		if !c.Meets(mx) {
			return false
		}
	}
	return true
}

// failsMonotone reports whether the vector violates any constraint
// whose violation propagates up the safety order (see
// Constraint.Monotone) — the pruning trigger.
func failsMonotone(cs []Constraint, mx Metrics) bool {
	for _, c := range cs {
		if c.Monotone() && !c.Meets(mx) {
			return true
		}
	}
	return false
}
