package explore_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"flexos/internal/explore"
	"flexos/internal/explore/exploretest"
)

// Engine-level shard and backing properties on the exploretest
// harness: sharding must be indistinguishable from hand-slicing, and
// per-shard backings must merge into a warm start of the full run.

// shardBounds is the balanced contiguous partition Shard.bounds
// documents: the half-open [lo,hi) slice of an n-element space shard
// idx/count owns, the first n%count shards holding one extra element.
func shardBounds(idx, count, n int) (lo, hi int) {
	return idx * n / count, (idx + 1) * n / count
}

// TestEngineShardMatchesManualSubslice: running the engine with a
// Shard must be indistinguishable from running it over the slice by
// hand.
func TestEngineShardMatchesManualSubslice(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfgs := exploretest.RandomSpace(rng, 40)
	measure := exploretest.Lift(exploretest.MonotoneMeasure(rng))
	for count := 1; count <= 4; count++ {
		for idx := 0; idx < count; idx++ {
			sh := explore.Shard{Index: idx, Count: count}
			sharded, err := explore.Engine{}.Run(context.Background(), explore.Request{
				Space: exploretest.CopySpace(cfgs), Measure: measure, Prune: true, Workers: 3, Shard: sh,
			})
			if err != nil {
				t.Fatalf("shard %v: %v", sh, err)
			}
			lo, hi := shardBounds(idx, count, len(cfgs))
			if sh.Size(len(cfgs)) != hi-lo {
				t.Fatalf("shard %v: Size %d, balanced partition says %d", sh, sh.Size(len(cfgs)), hi-lo)
			}
			manual, err := explore.Engine{}.Run(context.Background(), explore.Request{
				Space: exploretest.CopySpace(cfgs)[lo:hi], Measure: measure, Prune: true, Workers: 3,
			})
			if err != nil {
				t.Fatalf("manual %v: %v", sh, err)
			}
			if sharded.Total != hi-lo || len(sharded.Measurements) != hi-lo {
				t.Fatalf("shard %v: covered %d configs, want %d", sh, sharded.Total, hi-lo)
			}
			for i := range manual.Measurements {
				a, b := sharded.Measurements[i], manual.Measurements[i]
				if a.Perf != b.Perf || a.Evaluated != b.Evaluated || a.Pruned != b.Pruned {
					t.Fatalf("shard %v: measurement %d diverges: %+v vs %+v", sh, i, a, b)
				}
			}
			if !reflect.DeepEqual(sharded.Safest, manual.Safest) {
				t.Fatalf("shard %v: safest %v, manual %v", sh, sharded.Safest, manual.Safest)
			}
		}
	}
}

// TestShardedBackingsWarmStartFullRun is the warm-start property at the
// engine level: explore every shard separately (each writing through
// to a backing), merge the backings, and the full-space run over the
// merged backing must be byte-identical to a cold full-space run while
// measuring nothing fresh — for any shard count and worker count, with
// pruning on.
func TestShardedBackingsWarmStartFullRun(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfgs := exploretest.RandomSpace(rng, 50)
		measure := exploretest.Lift(exploretest.MonotoneMeasure(rng))
		budget := 99_000.0
		req := func(space []*explore.Config) explore.Request {
			return explore.Request{
				Space: space, Measure: measure, Prune: true, Workers: 4,
				Constraints: []explore.Constraint{explore.BudgetConstraint("", budget)},
			}
		}

		cold, err := explore.Engine{}.Run(context.Background(), req(exploretest.CopySpace(cfgs)))
		if err != nil {
			t.Fatalf("seed %d: cold: %v", seed, err)
		}

		for _, count := range []int{1, 2, 3, 5} {
			merged := exploretest.NewMapBacking()
			for idx := 0; idx < count; idx++ {
				b := exploretest.NewMapBacking()
				r := req(exploretest.CopySpace(cfgs))
				r.Shard = explore.Shard{Index: idx, Count: count}
				r.Memo = explore.NewBackedMemo(b)
				if _, err := (explore.Engine{}).Run(context.Background(), r); err != nil {
					t.Fatalf("seed %d shard %d/%d: %v", seed, idx, count, err)
				}
				for k, v := range b.Snapshot() {
					if prev, dup := merged.Get(k); dup && prev != v {
						t.Fatalf("seed %d shard %d/%d: conflicting twin value for %q", seed, idx, count, k)
					}
					merged.Put(k, v)
				}
			}

			r := req(exploretest.CopySpace(cfgs))
			r.Memo = explore.NewBackedMemo(merged)
			warm, err := explore.Engine{}.Run(context.Background(), r)
			if err != nil {
				t.Fatalf("seed %d count %d: warm: %v", seed, count, err)
			}
			if warm.Evaluated != 0 {
				t.Fatalf("seed %d count %d: warm run measured %d fresh configs; the shard union must cover the full run", seed, count, warm.Evaluated)
			}
			if !reflect.DeepEqual(warm.Safest, cold.Safest) {
				t.Fatalf("seed %d count %d: safest %v, cold %v", seed, count, warm.Safest, cold.Safest)
			}
			for i := range cold.Measurements {
				a, b := warm.Measurements[i], cold.Measurements[i]
				if a.Perf != b.Perf || a.Metrics != b.Metrics || a.Evaluated != b.Evaluated || a.Pruned != b.Pruned {
					t.Fatalf("seed %d count %d: measurement %d diverges: %+v vs %+v", seed, count, i, a, b)
				}
			}
		}
	}
}
