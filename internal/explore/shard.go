package explore

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
)

// Shard selects one deterministic slice of a configuration space for
// distributed exploration: the Index-th of Count contiguous,
// order-preserving, pairwise-disjoint partitions of the canonical
// enumeration. Partition bounds depend only on the space length and
// Count — never on measurement outcomes — so the union of all Count
// shards is exactly the full space, shard sizes differ by at most one,
// and every worker slicing the same space agrees on who owns what.
//
// The zero value (Count 0) means "no sharding": the whole space.
// Count 1 is equivalent.
type Shard struct {
	Index, Count int
}

// IsZero reports whether the shard selects the whole space.
func (s Shard) IsZero() bool { return s.Count == 0 || (s.Count == 1 && s.Index == 0) }

// String renders the shard as "index/count" ("" for the whole space).
func (s Shard) String() string {
	if s.IsZero() {
		return ""
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// validate reports whether the shard coordinates are coherent.
func (s Shard) validate() error {
	if s.Count == 0 && s.Index == 0 {
		return nil
	}
	if s.Count < 1 {
		return fmt.Errorf("explore: shard count %d out of range (want >= 1)", s.Count)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("explore: shard index %d out of range [0,%d)", s.Index, s.Count)
	}
	return nil
}

// bounds returns the half-open [lo,hi) slice of an n-element space the
// shard owns: the standard balanced contiguous partition, where the
// first n%Count shards hold one extra element.
func (s Shard) bounds(n int) (lo, hi int) {
	if s.IsZero() {
		return 0, n
	}
	return s.Index * n / s.Count, (s.Index + 1) * n / s.Count
}

// Size returns the number of configurations the shard selects from an
// n-element space (0 for incoherent shard coordinates, which Run
// rejects anyway).
func (s Shard) Size(n int) int {
	if s.validate() != nil {
		return 0
	}
	lo, hi := s.bounds(n)
	return hi - lo
}

// slice applies the shard to a space.
func (s Shard) slice(cfgs []*Config) ([]*Config, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	lo, hi := s.bounds(len(cfgs))
	return cfgs[lo:hi], nil
}

// ParseShard parses the CLI shard syntax "index/count" with
// 0 <= index < count (e.g. "0/4" … "3/4").
func ParseShard(s string) (Shard, error) {
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return Shard{}, fmt.Errorf("explore: shard %q: want index/count, e.g. 0/4", s)
	}
	idx, err1 := strconv.Atoi(strings.TrimSpace(s[:i]))
	cnt, err2 := strconv.Atoi(strings.TrimSpace(s[i+1:]))
	if err1 != nil || err2 != nil {
		return Shard{}, fmt.Errorf("explore: shard %q: want index/count, e.g. 0/4", s)
	}
	if cnt < 1 {
		// The CLI syntax always names an explicit count; "0/0" (the
		// zero value validate() accepts as "whole space") is a typo
		// here, not a request.
		return Shard{}, fmt.Errorf("explore: shard %q: count must be >= 1", s)
	}
	sh := Shard{Index: idx, Count: cnt}
	if err := sh.validate(); err != nil {
		return Shard{}, err
	}
	return sh, nil
}

// SpaceHash digests the canonical identity of an exploration — the
// memo namespace plus every configuration key, in enumeration order —
// into a 16-hex-digit FNV-1a handle. Two explorations share a hash
// exactly when they would populate the same result-store entries, so
// the hash is the natural cache key for a persistent store directory
// (CI keys its warm-explore cache on it).
func SpaceHash(workload string, cfgs []*Config) string {
	h := fnv.New64a()
	h.Write([]byte(workload))
	for _, c := range cfgs {
		h.Write([]byte{0})
		h.Write([]byte(c.Key()))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
