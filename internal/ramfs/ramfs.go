// Package ramfs implements the in-memory filesystem node store — the
// Unikraft ramfs analogue. Table 1 ports it together with vfscore
// (+148/-37, 12 shared variables between them), and §4.4 uses the pair as
// the canonical example of entangled components that should be isolated
// *together*: ramfs node state is reached directly by vfscore on every
// operation, so splitting them would either fault or force most of the
// state into the shared domain.
//
// File contents live in the component's private simulated heap, so any
// access from a foreign compartment that has not gone through a gate
// faults — which is how the test suite demonstrates the entanglement.
package ramfs

import (
	"fmt"

	"flexos/internal/core"
)

// Name is the component name used in configuration files.
const Name = "ramfs"

// Per-op base costs (cycles).
const (
	nodeWork  = 20
	growQuant = 512
)

// node is one file's metadata; content bytes live in simulated memory.
type node struct {
	id    int
	size  int
	cap   int
	addr  uintptr
	mtime uint64
}

// State is the per-image ramfs state.
type State struct {
	nodes  map[int]*node
	nextID int
}

// Register adds the ramfs component to the catalog.
func Register(cat *core.Catalog) *State {
	st := &State{nodes: make(map[int]*node)}
	c := core.NewComponent(Name)
	// Table 1 groups ramfs with vfscore; patch metadata lives on vfscore.

	// create() allocates a node and returns its id.
	c.AddFunc(&core.Func{
		Name: "create", Work: nodeWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			st.nextID++
			n := &node{id: st.nextID}
			st.nodes[n.id] = n
			return n.id, nil
		},
	})

	// write_node(id, off, srcAddr, n, mtime) copies caller bytes into
	// the node, growing its private buffer as needed.
	c.AddFunc(&core.Func{
		Name: "write_node", Work: nodeWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			if len(args) != 5 {
				return nil, fmt.Errorf("ramfs: write_node(id, off, src, n, mtime)")
			}
			n, err := st.lookup(args[0])
			if err != nil {
				return nil, err
			}
			off := args[1].(int)
			src := args[2].(uintptr)
			cnt := args[3].(int)
			mtime := args[4].(uint64)
			if err := st.ensure(ctx, n, off+cnt); err != nil {
				return nil, err
			}
			if err := ctx.Memmove(n.addr+uintptr(off), src, cnt); err != nil {
				return nil, err
			}
			if off+cnt > n.size {
				n.size = off + cnt
			}
			n.mtime = mtime
			return cnt, nil
		},
	})

	// read_node(id, off, dstAddr, n) copies node bytes out.
	c.AddFunc(&core.Func{
		Name: "read_node", Work: nodeWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			if len(args) != 4 {
				return nil, fmt.Errorf("ramfs: read_node(id, off, dst, n)")
			}
			n, err := st.lookup(args[0])
			if err != nil {
				return nil, err
			}
			off := args[1].(int)
			dst := args[2].(uintptr)
			cnt := args[3].(int)
			if off >= n.size {
				return 0, nil
			}
			if off+cnt > n.size {
				cnt = n.size - off
			}
			if err := ctx.Memmove(dst, n.addr+uintptr(off), cnt); err != nil {
				return nil, err
			}
			return cnt, nil
		},
	})

	// truncate(id) drops the node's content.
	c.AddFunc(&core.Func{
		Name: "truncate", Work: nodeWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			n, err := st.lookup(args[0])
			if err != nil {
				return nil, err
			}
			n.size = 0
			return nil, nil
		},
	})

	// remove(id) deletes the node and frees its buffer.
	c.AddFunc(&core.Func{
		Name: "remove", Work: nodeWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			n, err := st.lookup(args[0])
			if err != nil {
				return nil, err
			}
			if n.addr != 0 {
				if err := ctx.FreePrivate(n.addr); err != nil {
					return nil, err
				}
			}
			delete(st.nodes, n.id)
			return nil, nil
		},
	})

	// node_size(id) returns the current size.
	c.AddFunc(&core.Func{
		Name: "node_size", Work: 12, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			n, err := st.lookup(args[0])
			if err != nil {
				return nil, err
			}
			return n.size, nil
		},
	})
	cat.MustRegister(c)
	return st
}

func (st *State) lookup(arg any) (*node, error) {
	id, ok := arg.(int)
	if !ok {
		return nil, fmt.Errorf("ramfs: node id must be int")
	}
	n, ok := st.nodes[id]
	if !ok {
		return nil, fmt.Errorf("ramfs: no node %d", id)
	}
	return n, nil
}

// ensure grows a node's private buffer to at least want bytes.
func (st *State) ensure(ctx *core.Ctx, n *node, want int) error {
	if want <= n.cap {
		return nil
	}
	newCap := n.cap
	if newCap == 0 {
		newCap = growQuant
	}
	for newCap < want {
		newCap *= 2
	}
	addr, err := ctx.AllocPrivate(newCap)
	if err != nil {
		return err
	}
	if n.addr != 0 {
		if err := ctx.Memmove(addr, n.addr, n.size); err != nil {
			return err
		}
		if err := ctx.FreePrivate(n.addr); err != nil {
			return err
		}
	}
	n.addr, n.cap = addr, newCap
	return nil
}

// Nodes returns the live node count (test hook).
func (st *State) Nodes() int { return len(st.nodes) }
