package ramfs

import (
	"testing"

	"flexos/internal/core"
	"flexos/internal/oslib"
)

func testImage(t *testing.T) (*core.Image, *State) {
	t.Helper()
	cat := core.NewCatalog()
	oslib.RegisterTCB(cat)
	st := Register(cat)
	img, err := core.Build(cat, core.ImageSpec{
		Mechanism: "none",
		Comps: []core.CompSpec{{
			Name: "c0", Libs: []string{oslib.BootName, oslib.MMName, Name},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return img, st
}

func TestCreateWriteRead(t *testing.T) {
	img, st := testImage(t)
	ctx, _ := img.NewContext("t", Name)
	v, err := ctx.Call(Name, "create")
	if err != nil {
		t.Fatal(err)
	}
	id := v.(int)
	src, _ := ctx.AllocPrivate(16)
	ctx.Write(src, []byte("filesystem data!"))
	if _, err := ctx.Call(Name, "write_node", id, 0, src, 16, uint64(1)); err != nil {
		t.Fatal(err)
	}
	if sz, _ := ctx.Call(Name, "node_size", id); sz != 16 {
		t.Fatalf("size = %v", sz)
	}
	dst, _ := ctx.AllocPrivate(16)
	n, err := ctx.Call(Name, "read_node", id, 0, dst, 16)
	if err != nil || n != 16 {
		t.Fatalf("read = %v, %v", n, err)
	}
	out := make([]byte, 16)
	ctx.Read(dst, out)
	if string(out) != "filesystem data!" {
		t.Fatalf("content = %q", out)
	}
	if st.Nodes() != 1 {
		t.Fatalf("nodes = %d", st.Nodes())
	}
}

func TestWriteGrowsBuffer(t *testing.T) {
	img, _ := testImage(t)
	ctx, _ := img.NewContext("t", Name)
	v, _ := ctx.Call(Name, "create")
	id := v.(int)
	src, _ := ctx.AllocPrivate(64)
	// Write well past the initial 512-byte quantum.
	for off := 0; off < 4096; off += 64 {
		if _, err := ctx.Call(Name, "write_node", id, off, src, 64, uint64(off)); err != nil {
			t.Fatalf("write at %d: %v", off, err)
		}
	}
	if sz, _ := ctx.Call(Name, "node_size", id); sz != 4096 {
		t.Fatalf("size = %v, want 4096", sz)
	}
}

func TestReadPastEOF(t *testing.T) {
	img, _ := testImage(t)
	ctx, _ := img.NewContext("t", Name)
	v, _ := ctx.Call(Name, "create")
	id := v.(int)
	dst, _ := ctx.AllocPrivate(8)
	n, err := ctx.Call(Name, "read_node", id, 100, dst, 8)
	if err != nil || n != 0 {
		t.Fatalf("read past EOF = %v, %v", n, err)
	}
}

func TestTruncateAndRemove(t *testing.T) {
	img, st := testImage(t)
	ctx, _ := img.NewContext("t", Name)
	v, _ := ctx.Call(Name, "create")
	id := v.(int)
	src, _ := ctx.AllocPrivate(8)
	ctx.Call(Name, "write_node", id, 0, src, 8, uint64(1))
	if _, err := ctx.Call(Name, "truncate", id); err != nil {
		t.Fatal(err)
	}
	if sz, _ := ctx.Call(Name, "node_size", id); sz != 0 {
		t.Fatalf("size after truncate = %v", sz)
	}
	if _, err := ctx.Call(Name, "remove", id); err != nil {
		t.Fatal(err)
	}
	if st.Nodes() != 0 {
		t.Fatal("node survived remove")
	}
	if _, err := ctx.Call(Name, "node_size", id); err == nil {
		t.Fatal("removed node still accessible")
	}
}

func TestBadNodeID(t *testing.T) {
	img, _ := testImage(t)
	ctx, _ := img.NewContext("t", Name)
	if _, err := ctx.Call(Name, "node_size", 42); err == nil {
		t.Fatal("bad node id accepted")
	}
	if _, err := ctx.Call(Name, "write_node", "x", 0, uintptr(0), 1, uint64(0)); err == nil {
		t.Fatal("bad id type accepted")
	}
}
