// Package sqlite implements the SQLite miniature of §6.4: an embedded SQL
// engine executing INSERT statements, each in its own journaled
// transaction, to put pressure on the filesystem. The per-query I/O
// pattern — rollback-journal write, page write, syncs, journal unlink,
// all in small chunks — generates the dense stream of vfs and time
// crossings that makes the MPK3 (filesystem / time / rest) and EPT2
// (filesystem+time / rest) scenarios of Figure 10 expensive.
package sqlite

import (
	"fmt"

	"flexos/internal/core"
	"flexos/internal/libc"
	"flexos/internal/oslib"
	"flexos/internal/ramfs"
	"flexos/internal/timesys"
	"flexos/internal/vfs"
)

// Name is the component name used in configuration files.
const Name = "libsqlite"

// Components lists all components an SQLite image links.
var Components = []string{Name, libc.Name, oslib.SchedName, vfs.Name, ramfs.Name, timesys.Name}

// Workload shape per INSERT query (see DESIGN.md calibration):
// chunked journal and page writes at chunkSize granularity stress the
// vfs boundary ~100 times per query, and every vfs operation timestamps
// through uktime.
const (
	execWork    = 11000 // SQL parse + codegen + btree update
	chunkSize   = 32
	journalSize = 512
	pageSize    = 2048
)

// State is the per-image engine state.
type State struct {
	rows   uint64
	dbFD   int
	opened bool
}

// Register adds libsqlite to a catalog (Table 1: +199/-145, 24 shared
// variables).
func Register(cat *core.Catalog) *State {
	st := &State{}
	c := core.NewComponent(Name)
	c.PatchAdd, c.PatchDel = 199, 145
	c.Imports = []string{libc.Name, vfs.Name, timesys.Name}
	for i := 0; i < 24; i++ {
		c.AddShared(core.SharedVar{Name: fmt.Sprintf("pager_buf_%d", i), Size: 64})
	}

	// open_db() opens the database file.
	c.AddFunc(&core.Func{
		Name: "open_db", Work: 900, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			v, err := ctx.Call(vfs.Name, "open", "/test.db")
			if err != nil {
				return nil, err
			}
			st.dbFD = v.(int)
			st.opened = true
			return st.dbFD, nil
		},
	})

	// exec_insert(i) runs: BEGIN; INSERT INTO t VALUES(i, ...); COMMIT;
	// with a rollback journal, like the paper's benchmark where "each
	// query is in a separate transaction".
	c.AddFunc(&core.Func{
		Name: "exec_insert", Work: execWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			if !st.opened {
				return nil, fmt.Errorf("sqlite: database not open")
			}
			i, ok := args[0].(int)
			if !ok {
				return nil, fmt.Errorf("sqlite: exec_insert(i int)")
			}
			// Timestamp the transaction start.
			if _, err := ctx.Call(timesys.Name, "now"); err != nil {
				return nil, err
			}

			// Stage the SQL text and row image in a shared buffer (it
			// crosses into vfs).
			buf, err := ctx.StackAlloc(chunkSize, true)
			if err != nil {
				return nil, err
			}
			row := fmt.Sprintf("INSERT(%d)", i)
			if _, err := ctx.Call(libc.Name, "format", buf, row); err != nil {
				return nil, err
			}

			// 1. Open the rollback journal and write the page backup.
			jv, err := ctx.Call(vfs.Name, "open", "/test.db-journal")
			if err != nil {
				return nil, err
			}
			jfd := jv.(int)
			for off := 0; off < journalSize; off += chunkSize {
				if _, err := ctx.Call(vfs.Name, "write", jfd, buf, chunkSize); err != nil {
					return nil, err
				}
			}
			if _, err := ctx.Call(vfs.Name, "fsync", jfd); err != nil {
				return nil, err
			}

			// 2. Write the modified b-tree page to the database.
			if _, err := ctx.Call(vfs.Name, "seek", st.dbFD, 0); err != nil {
				return nil, err
			}
			for off := 0; off < pageSize; off += chunkSize {
				if _, err := ctx.Call(vfs.Name, "write", st.dbFD, buf, chunkSize); err != nil {
					return nil, err
				}
			}
			if _, err := ctx.Call(vfs.Name, "fsync", st.dbFD); err != nil {
				return nil, err
			}

			// 3. Commit: close and delete the journal.
			if _, err := ctx.Call(vfs.Name, "close", jfd); err != nil {
				return nil, err
			}
			if _, err := ctx.Call(vfs.Name, "unlink", "/test.db-journal"); err != nil {
				return nil, err
			}

			// Timestamp the commit.
			if _, err := ctx.Call(timesys.Name, "now"); err != nil {
				return nil, err
			}
			st.rows++
			return st.rows, nil
		},
	})
	// exec_batch(start, n) runs n INSERTs inside one transaction:
	// BEGIN; INSERT ×n; COMMIT. The rollback journal is written once per
	// transaction and the page writes amortize the fsync pair, which is
	// what makes the batched scenarios faster per query than
	// exec_insert's query-per-transaction shape.
	c.AddFunc(&core.Func{
		Name: "exec_batch", Work: 0, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			if !st.opened {
				return nil, fmt.Errorf("sqlite: database not open")
			}
			if len(args) != 2 {
				return nil, fmt.Errorf("sqlite: exec_batch(start, n int)")
			}
			start, ok1 := args[0].(int)
			n, ok2 := args[1].(int)
			if !ok1 || !ok2 || n <= 0 {
				return nil, fmt.Errorf("sqlite: exec_batch(start, n int) with n > 0")
			}
			if _, err := ctx.Call(timesys.Name, "now"); err != nil {
				return nil, err
			}

			buf, err := ctx.StackAlloc(chunkSize, true)
			if err != nil {
				return nil, err
			}

			// One journal cycle guards the whole transaction.
			jv, err := ctx.Call(vfs.Name, "open", "/test.db-journal")
			if err != nil {
				return nil, err
			}
			jfd := jv.(int)
			for off := 0; off < journalSize; off += chunkSize {
				if _, err := ctx.Call(vfs.Name, "write", jfd, buf, chunkSize); err != nil {
					return nil, err
				}
			}
			if _, err := ctx.Call(vfs.Name, "fsync", jfd); err != nil {
				return nil, err
			}

			// n statement executions against the same page set.
			if _, err := ctx.Call(vfs.Name, "seek", st.dbFD, 0); err != nil {
				return nil, err
			}
			for q := 0; q < n; q++ {
				ctx.Charge(execWork)
				row := fmt.Sprintf("INSERT(%d)", start+q)
				if _, err := ctx.Call(libc.Name, "format", buf, row); err != nil {
					return nil, err
				}
				for off := 0; off < pageSize; off += chunkSize {
					if _, err := ctx.Call(vfs.Name, "write", st.dbFD, buf, chunkSize); err != nil {
						return nil, err
					}
				}
				st.rows++
			}
			if _, err := ctx.Call(vfs.Name, "fsync", st.dbFD); err != nil {
				return nil, err
			}

			// Commit once for the batch.
			if _, err := ctx.Call(vfs.Name, "close", jfd); err != nil {
				return nil, err
			}
			if _, err := ctx.Call(vfs.Name, "unlink", "/test.db-journal"); err != nil {
				return nil, err
			}
			if _, err := ctx.Call(timesys.Name, "now"); err != nil {
				return nil, err
			}
			return st.rows, nil
		},
	})
	cat.MustRegister(c)
	return st
}

// Rows returns the number of committed inserts (test hook).
func (st *State) Rows() uint64 { return st.rows }

// Catalog builds a fresh catalog with everything an SQLite image needs.
func Catalog() (*core.Catalog, *State) {
	cat := core.NewCatalog()
	oslib.RegisterTCB(cat)
	oslib.RegisterSched(cat)
	libc.Register(cat)
	timesys.Register(cat)
	ramfs.Register(cat)
	vfs.Register(cat)
	st := Register(cat)
	return cat, st
}

// Result is one benchmark measurement.
type Result struct {
	// Seconds is the simulated execution time of the insert loop.
	Seconds float64
	// Queries is the number of INSERTs executed.
	Queries   int
	Cycles    uint64
	Crossings uint64
}

// Benchmark executes `queries` INSERTs under the given configuration and
// returns the simulated execution time — the Figure 10 measurement.
func Benchmark(spec core.ImageSpec, queries int) (Result, error) {
	cat, st := Catalog()
	img, err := core.Build(cat, spec)
	if err != nil {
		return Result{}, err
	}
	ctx, err := img.NewContext("sqlite-main", Name)
	if err != nil {
		return Result{}, err
	}
	if _, err := ctx.Call(Name, "open_db"); err != nil {
		return Result{}, err
	}
	startCycles := img.Mach.Clock.Cycles()
	startCross := img.Crossings()
	for i := 0; i < queries; i++ {
		if _, err := ctx.Call(Name, "exec_insert", i); err != nil {
			return Result{}, err
		}
	}
	if st.Rows() != uint64(queries) {
		return Result{}, fmt.Errorf("sqlite: committed %d rows, want %d", st.Rows(), queries)
	}
	cycles := img.Mach.Clock.Cycles() - startCycles
	return Result{
		Seconds:   float64(cycles) / img.Mach.Costs.FreqHz,
		Queries:   queries,
		Cycles:    cycles,
		Crossings: img.Crossings() - startCross,
	}, nil
}

// FSOpsPerQuery reports the vfs-call count of one query (used by the
// Figure 10 baseline comparators so that every system runs the same
// workload shape).
func FSOpsPerQuery() int {
	// open + journal writes + fsync + seek + page writes + fsync +
	// close + unlink
	return 1 + journalSize/chunkSize + 1 + 1 + pageSize/chunkSize + 1 + 1 + 1
}

// TimeOpsPerQuery reports direct uktime calls per query (excluding the
// per-vfs-op timestamps, which FSOpsPerQuery implies).
func TimeOpsPerQuery() int { return 2 }

// BaseWorkCycles estimates the pure compute (no gates) of one query on
// the calibrated cost model; baselines add their own crossing costs on
// top. It is measured, not assumed: we run one query on a
// single-compartment NONE image.
func BaseWorkCycles() (uint64, error) {
	res, err := Benchmark(core.ImageSpec{
		Mechanism: "none",
		Comps:     []core.CompSpec{{Name: "c0", Libs: Components2()}},
	}, 50)
	if err != nil {
		return 0, err
	}
	return res.Cycles / uint64(res.Queries), nil
}

// Components2 returns all components plus the TCB ones, for building
// one-compartment images programmatically.
func Components2() []string {
	return append([]string{oslib.BootName, oslib.MMName}, Components...)
}
