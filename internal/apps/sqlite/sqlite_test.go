package sqlite

import (
	"testing"

	"flexos/internal/core"
	"flexos/internal/isolation"
	"flexos/internal/mem"
	"flexos/internal/oslib"
	"flexos/internal/ramfs"
	"flexos/internal/timesys"
	"flexos/internal/vfs"
)

// specNone is the FlexOS-without-isolation configuration.
func specNone() core.ImageSpec {
	return core.ImageSpec{
		Mechanism: "none",
		Comps:     []core.CompSpec{{Name: "c0", Libs: Components2()}},
	}
}

// specMPK3 is the paper's MPK3 scenario: filesystem isolated from the
// time subsystem from the rest of the system.
func specMPK3() core.ImageSpec {
	rest := []string{oslib.BootName, oslib.MMName, Name, "newlib", oslib.SchedName}
	return core.ImageSpec{
		Mechanism: "intel-mpk",
		GateMode:  isolation.GateFull,
		Sharing:   isolation.ShareDSS,
		Comps: []core.CompSpec{
			{Name: "comp0", Libs: rest},
			{Name: "fs", Libs: []string{vfs.Name, ramfs.Name}},
			{Name: "time", Libs: []string{timesys.Name}},
		},
	}
}

// specEPT2 is the paper's EPT2 scenario: the filesystem (with its time
// dependency) isolated from the application.
func specEPT2() core.ImageSpec {
	rest := []string{oslib.BootName, oslib.MMName, Name, "newlib", oslib.SchedName}
	return core.ImageSpec{
		Mechanism: "vm-ept",
		Comps: []core.CompSpec{
			{Name: "comp0", Libs: rest},
			{Name: "fs", Libs: []string{vfs.Name, ramfs.Name, timesys.Name}},
		},
	}
}

func TestInsertFunctional(t *testing.T) {
	res, err := Benchmark(specNone(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 20 || res.Seconds <= 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestBaselineCalibration(t *testing.T) {
	// Fig. 10: 5000 INSERTs take ~0.052s on Unikraft / FlexOS NONE.
	// Scale: 250 queries should take ~0.0026s.
	res, err := Benchmark(specNone(), 250)
	if err != nil {
		t.Fatal(err)
	}
	perQuery := res.Seconds / float64(res.Queries)
	if perQuery < 6e-6 || perQuery > 16e-6 {
		t.Fatalf("per-query time = %.2fus, want ~10.4us", perQuery*1e6)
	}
}

func TestMPK3RoughlyDoubles(t *testing.T) {
	// Fig. 10: FlexOS MPK3 adds ~2x over NONE.
	none, err := Benchmark(specNone(), 150)
	if err != nil {
		t.Fatal(err)
	}
	mpk3, err := Benchmark(specMPK3(), 150)
	if err != nil {
		t.Fatal(err)
	}
	ratio := mpk3.Seconds / none.Seconds
	if ratio < 1.6 || ratio > 2.6 {
		t.Fatalf("MPK3/NONE = %.2fx, want ~2x", ratio)
	}
}

func TestEPT2SlowerThanMPK3(t *testing.T) {
	// Fig. 10 ordering: NONE < MPK3 < EPT2, with EPT2 ~3.3x NONE.
	none, err := Benchmark(specNone(), 150)
	if err != nil {
		t.Fatal(err)
	}
	mpk3, err := Benchmark(specMPK3(), 150)
	if err != nil {
		t.Fatal(err)
	}
	ept2, err := Benchmark(specEPT2(), 150)
	if err != nil {
		t.Fatal(err)
	}
	if !(none.Seconds < mpk3.Seconds && mpk3.Seconds < ept2.Seconds) {
		t.Fatalf("ordering broken: none=%.4f mpk3=%.4f ept2=%.4f",
			none.Seconds, mpk3.Seconds, ept2.Seconds)
	}
	ratio := ept2.Seconds / none.Seconds
	if ratio < 2.4 || ratio > 4.4 {
		t.Fatalf("EPT2/NONE = %.2fx, want ~3.3x", ratio)
	}
}

func TestWorkloadShapeConstants(t *testing.T) {
	if FSOpsPerQuery() < 50 {
		t.Fatalf("FSOpsPerQuery = %d; the workload must stress the filesystem", FSOpsPerQuery())
	}
	if TimeOpsPerQuery() != 2 {
		t.Fatalf("TimeOpsPerQuery = %d", TimeOpsPerQuery())
	}
	w, err := BaseWorkCycles()
	if err != nil {
		t.Fatal(err)
	}
	// ~22.9k cycles/query at calibration.
	if w < 12000 || w > 36000 {
		t.Fatalf("BaseWorkCycles = %d, want ~23k", w)
	}
}

func TestRamfsVfscoreEntanglement(t *testing.T) {
	// §4.4: ramfs is so entangled with vfscore that isolating it alone
	// is wrong — in FlexOS-Go, splitting them means vfs passes node
	// buffers it cannot reach. Verify the sanctioned split (together)
	// works and that the state stays consistent.
	cat, _ := Catalog()
	img, err := core.Build(cat, specMPK3())
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := img.NewContext("t", Name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Call(Name, "open_db"); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Call(Name, "exec_insert", 1); err != nil {
		t.Fatal(err)
	}
	// The database file must contain the written page.
	v, err := ctx.Call(vfs.Name, "size", "/test.db")
	if err != nil {
		t.Fatal(err)
	}
	if v.(int) != 2048 {
		t.Fatalf("db size = %d, want 2048", v)
	}
	// The journal must be gone after commit.
	if _, err := ctx.Call(vfs.Name, "size", "/test.db-journal"); err == nil {
		t.Fatal("journal survived the commit")
	}
}

func TestDirectPrivateFSAccessFaults(t *testing.T) {
	// An application thread must not be able to touch filesystem state
	// directly when the fs is compartmentalized: that is the whole point.
	cat, _ := Catalog()
	img, err := core.Build(cat, specMPK3())
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := img.NewContext("t", Name)
	if err != nil {
		t.Fatal(err)
	}
	fsComp, ok := img.Comp(vfs.Name)
	if !ok {
		t.Fatal("no fs compartment")
	}
	addr, err := fsComp.Heap.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	err = ctx.Read(addr, make([]byte, 8))
	if !mem.IsFault(err, mem.FaultKeyViolation) {
		t.Fatalf("app read of fs-private memory: got %v, want key violation", err)
	}
}
