package iperf

import (
	"testing"

	"flexos/internal/core"
	"flexos/internal/isolation"
	"flexos/internal/netstack"
	"flexos/internal/oslib"
)

// specNone: FlexOS without isolation (== vanilla Unikraft in Fig. 9).
func specNone() core.ImageSpec {
	return core.ImageSpec{
		Mechanism: "none",
		Comps: []core.CompSpec{{
			Name: "c0",
			Libs: append([]string{oslib.BootName, oslib.MMName}, Components...),
		}},
	}
}

// specMPK2 is the Fig. 9 scenario: the iPerf application code in one
// compartment, the rest of the system (including the network stack) in a
// second one.
func specMPK2(mode isolation.GateMode, sharing isolation.Sharing) core.ImageSpec {
	return core.ImageSpec{
		Mechanism: "intel-mpk",
		GateMode:  mode,
		Sharing:   sharing,
		Comps: []core.CompSpec{
			{Name: "sys", Libs: []string{oslib.BootName, oslib.MMName, "newlib", oslib.SchedName, netstack.Name}},
			{Name: "app", Libs: []string{Name}},
		},
	}
}

func specEPT2() core.ImageSpec {
	s := specMPK2(isolation.GateDefault, isolation.ShareDSS)
	s.Mechanism = "vm-ept"
	return s
}

func TestStreamFunctional(t *testing.T) {
	res, err := Benchmark(specNone(), 256, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 256*50 || res.Gbps <= 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestThroughputGrowsWithBufferSize(t *testing.T) {
	// Fig. 9: batching — bigger receive buffers mean fewer crossings
	// per byte, so throughput grows monotonically with buffer size.
	prev := 0.0
	for _, size := range []int{16, 64, 256, 1024, 4096, 16384} {
		res, err := Benchmark(specMPK2(isolation.GateFull, isolation.ShareDSS), size, 40)
		if err != nil {
			t.Fatal(err)
		}
		if res.Gbps <= prev {
			t.Fatalf("throughput not monotonic at %dB: %.3f <= %.3f", size, res.Gbps, prev)
		}
		prev = res.Gbps
	}
}

func TestBackendOrderingAtSmallBuffers(t *testing.T) {
	// Fig. 9 at small payloads: NONE > MPK-light > MPK-dss > EPT.
	none, err := Benchmark(specNone(), 64, 50)
	if err != nil {
		t.Fatal(err)
	}
	light, err := Benchmark(specMPK2(isolation.GateLight, isolation.ShareStack), 64, 50)
	if err != nil {
		t.Fatal(err)
	}
	dss, err := Benchmark(specMPK2(isolation.GateFull, isolation.ShareDSS), 64, 50)
	if err != nil {
		t.Fatal(err)
	}
	ept, err := Benchmark(specEPT2(), 64, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !(none.Gbps > light.Gbps && light.Gbps > dss.Gbps && dss.Gbps > ept.Gbps) {
		t.Fatalf("ordering broken: none=%.3f light=%.3f dss=%.3f ept=%.3f",
			none.Gbps, light.Gbps, dss.Gbps, ept.Gbps)
	}
}

func TestBackendsConvergeAtLargeBuffers(t *testing.T) {
	// Fig. 9: from a few hundred bytes upward all backends approach the
	// baseline ("all backends can constitute a valid solution").
	const size = 16384
	none, err := Benchmark(specNone(), size, 30)
	if err != nil {
		t.Fatal(err)
	}
	ept, err := Benchmark(specEPT2(), size, 30)
	if err != nil {
		t.Fatal(err)
	}
	if ept.Gbps < 0.9*none.Gbps {
		t.Fatalf("EPT at 16KiB = %.3f Gb/s, want >= 90%% of baseline %.3f", ept.Gbps, none.Gbps)
	}
}

func TestPeakThroughputCalibration(t *testing.T) {
	// Fig. 9 tops out around 4-5 Gb/s on the calibrated machine.
	res, err := Benchmark(specNone(), 16384, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Gbps < 3.0 || res.Gbps > 7.0 {
		t.Fatalf("peak throughput = %.2f Gb/s, want ~4.4", res.Gbps)
	}
}

func TestMPKCloseToBaselineAt128B(t *testing.T) {
	// Fig. 9: "MPK's performance quickly becomes similar to the baseline
	// starting from 128 B".
	none, err := Benchmark(specNone(), 128, 50)
	if err != nil {
		t.Fatal(err)
	}
	dss, err := Benchmark(specMPK2(isolation.GateFull, isolation.ShareDSS), 128, 50)
	if err != nil {
		t.Fatal(err)
	}
	if dss.Gbps < 0.75*none.Gbps {
		t.Fatalf("MPK-dss at 128B = %.3f, want >= 75%% of %.3f", dss.Gbps, none.Gbps)
	}
}
