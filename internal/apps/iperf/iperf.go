// Package iperf implements the iPerf miniature of §6.3: a streaming
// server that reads from a socket into buffers of configurable size. The
// receive-buffer size sweep reproduces Figure 9's batching effect: at
// small buffers the domain-crossing latency dominates, at large buffers
// per-byte protocol processing does, so all backends converge to the
// baseline.
package iperf

import (
	"fmt"

	"flexos/internal/core"
	"flexos/internal/libc"
	"flexos/internal/netstack"
	"flexos/internal/oslib"
)

// Name is the component name used in configuration files.
const Name = "libiperf"

// Components lists the components an iPerf image links.
var Components = []string{Name, libc.Name, oslib.SchedName, netstack.Name}

// recvWork is the application-side bookkeeping per recv call.
const recvWork = 160

// State is the per-image server state.
type State struct {
	sock     int
	received uint64
}

// Register adds libiperf to a catalog (Table 1: +15/-14, 4 shared
// variables).
func Register(cat *core.Catalog) *State {
	st := &State{}
	c := core.NewComponent(Name)
	c.PatchAdd, c.PatchDel = 15, 14
	for _, v := range []core.SharedVar{
		{Name: "recv_window", Size: 64},
		{Name: "perf_stats", Size: 64},
		{Name: "ctrl_block", Size: 32},
		{Name: "report_buf", Size: 64},
	} {
		c.AddShared(v)
	}
	c.Imports = []string{netstack.Name}

	c.AddFunc(&core.Func{
		Name: "setup", Work: 300, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			v, err := ctx.Call(netstack.Name, "socket")
			if err != nil {
				return nil, err
			}
			st.sock = v.(int)
			return st.sock, nil
		},
	})

	// recv_once(bufSize) performs one recv into a shared stack buffer of
	// the given size and returns the byte count.
	c.AddFunc(&core.Func{
		Name: "recv_once", Work: recvWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			size, ok := args[0].(int)
			if !ok {
				return nil, fmt.Errorf("iperf: recv_once(size int)")
			}
			buf, err := ctx.StackAlloc(size, true)
			if err != nil {
				return nil, err
			}
			v, err := ctx.Call(netstack.Name, "recv", st.sock, buf, size)
			if err != nil {
				return nil, err
			}
			st.received += uint64(v.(int))
			return v, nil
		},
	})
	cat.MustRegister(c)
	return st
}

// Received returns total bytes received by the application (test hook).
func (st *State) Received() uint64 { return st.received }

// Catalog builds a fresh catalog with everything an iPerf image needs.
func Catalog() (*core.Catalog, *State) {
	cat := core.NewCatalog()
	oslib.RegisterTCB(cat)
	oslib.RegisterSched(cat)
	libc.Register(cat)
	netstack.Register(cat)
	st := Register(cat)
	return cat, st
}

// Result is one throughput measurement.
type Result struct {
	// Gbps is the simulated goodput in gigabits per second.
	Gbps float64
	// Bytes is the payload volume moved during measurement.
	Bytes uint64
	// BufSize is the receive buffer size swept by Figure 9.
	BufSize int
}

// Benchmark streams `packets` packets of bufSize bytes through the stack
// under the given configuration and returns goodput (the iPerf client
// analogue).
func Benchmark(spec core.ImageSpec, bufSize, packets int) (Result, error) {
	cat, st := Catalog()
	img, err := core.Build(cat, spec)
	if err != nil {
		return Result{}, err
	}
	ctx, err := img.NewContext("iperf-main", Name)
	if err != nil {
		return Result{}, err
	}
	if _, err := ctx.Call(Name, "setup"); err != nil {
		return Result{}, err
	}
	payload := make([]byte, bufSize)
	for i := 0; i < packets; i++ {
		if _, err := ctx.Call(netstack.Name, "rx_enqueue", st.sock, payload); err != nil {
			return Result{}, err
		}
	}
	start := img.Mach.Clock.Cycles()
	var got uint64
	for i := 0; i < packets; i++ {
		v, err := ctx.Call(Name, "recv_once", bufSize)
		if err != nil {
			return Result{}, err
		}
		got += uint64(v.(int))
	}
	cycles := img.Mach.Clock.Cycles() - start
	seconds := float64(cycles) / img.Mach.Costs.FreqHz
	if got != uint64(bufSize*packets) {
		return Result{}, fmt.Errorf("iperf: received %d bytes, want %d", got, bufSize*packets)
	}
	return Result{
		Gbps:    float64(got) * 8 / seconds / 1e9,
		Bytes:   got,
		BufSize: bufSize,
	}, nil
}
