// Package redis implements the Redis miniature used by the paper's
// headline evaluation (Fig. 6 top, Fig. 8): a key-value server whose GET
// path exercises the four Figure-6 components — the application itself
// ("libredis"), the C library ("newlib"), the scheduler surface
// ("uksched") and the network stack ("lwip").
//
// The per-request call pattern encodes the communication structure the
// paper measures: Redis's event loop talks to the scheduler intensely
// (isolating uksched costs ~43%) but crosses into lwip only twice per
// request (isolating lwip costs ~11%).
package redis

import (
	"fmt"

	"flexos/internal/core"
	"flexos/internal/libc"
	"flexos/internal/netstack"
	"flexos/internal/oslib"
)

// Name is the component name used in configuration files.
const Name = "libredis"

// Components lists the Figure-6 components, in the paper's row order.
var Components = []string{Name, libc.Name, oslib.SchedName, netstack.Name}

// Calibration (cycles / counts per GET request). See DESIGN.md.
const (
	serveWork        = 560 // event loop + command dispatch
	lookupWork       = 290 // hash + dict walk
	storeWork        = 340 // dict insert + value copy bookkeeping
	schedCallsPerReq = 10
	valueSize        = 16
	requestBytes     = "GET key\r\n"
)

// State is the per-image Redis state: the keyspace dictionary. Values
// live in the compartment's private simulated heap.
type State struct {
	values map[string]uintptr
	sock   int
	hits   uint64
	misses uint64
	sets   uint64
}

// Register adds libredis to a catalog (Table 1: +279/-90, 16 shared
// variables).
func Register(cat *core.Catalog) *State {
	st := &State{values: make(map[string]uintptr)}
	c := core.NewComponent(Name)
	c.PatchAdd, c.PatchDel = 279, 90
	c.Imports = []string{libc.Name, oslib.SchedName, netstack.Name}
	for i := 0; i < 16; i++ {
		c.AddShared(core.SharedVar{Name: fmt.Sprintf("io_buf_%d", i), Size: 64})
	}

	// setup(keys int): create the listening socket and preload keys.
	c.AddFunc(&core.Func{
		Name: "setup", Work: 400, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			keys, ok := args[0].(int)
			if !ok {
				return nil, fmt.Errorf("redis: setup(keys int)")
			}
			v, err := ctx.Call(netstack.Name, "socket")
			if err != nil {
				return nil, err
			}
			st.sock = v.(int)
			for i := 0; i < keys; i++ {
				addr, err := ctx.AllocPrivate(valueSize)
				if err != nil {
					return nil, err
				}
				if err := ctx.Write(addr, []byte(fmt.Sprintf("value-%010d", i))); err != nil {
					return nil, err
				}
				st.values[fmt.Sprintf("key%d", i)] = addr
			}
			return st.sock, nil
		},
	})

	// serve_get handles one GET request end to end and returns true on a
	// hit. It is the hot path Figure 6 measures.
	c.AddFunc(&core.Func{
		Name: "serve_get", Work: serveWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			reqBuf, n, cmd, err := st.recvCommand(ctx)
			if err != nil {
				return nil, err
			}
			if n == 0 || cmd != "GET" {
				st.misses++
				return false, nil
			}
			key, err := st.parseKey(ctx, reqBuf, n)
			if err != nil {
				return nil, err
			}

			// Dictionary lookup + value fetch from the private heap.
			ctx.Charge(lookupWork)
			valAddr, ok := st.values[key]
			hit := ok
			reply := "$-1\r\n"
			if ok {
				val := make([]byte, valueSize)
				if err := ctx.Read(valAddr, val); err != nil {
					return nil, err
				}
				reply = fmt.Sprintf("$%d\r\n%s\r\n", valueSize, val)
				st.hits++
			} else {
				st.misses++
			}

			if err := st.sendReply(ctx, reply); err != nil {
				return nil, err
			}
			if err := eventLoopChatter(ctx); err != nil {
				return nil, err
			}
			return hit, nil
		},
	})
	// serve_set handles one SET request end to end: parse, store the
	// value into the compartment's private heap (reusing the slot on
	// overwrite), acknowledge. It is the write half of the GET/SET mixes
	// the multi-metric scenarios run.
	c.AddFunc(&core.Func{
		Name: "serve_set", Work: serveWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			reqBuf, n, cmd, err := st.recvCommand(ctx)
			if err != nil {
				return nil, err
			}
			if n == 0 || cmd != "SET" {
				st.misses++
				return false, nil
			}
			key, val, err := st.parseKeyValue(ctx, reqBuf, n)
			if err != nil {
				return nil, err
			}

			// Dict insert: overwrite in place, or allocate a fresh private
			// value slot.
			ctx.Charge(lookupWork + storeWork)
			addr, ok := st.values[key]
			if !ok {
				if addr, err = ctx.AllocPrivate(valueSize); err != nil {
					return nil, err
				}
				st.values[key] = addr
			}
			stored := make([]byte, valueSize)
			copy(stored, val)
			if err := ctx.Write(addr, stored); err != nil {
				return nil, err
			}
			st.sets++

			if err := st.sendReply(ctx, "+OK\r\n"); err != nil {
				return nil, err
			}
			if err := eventLoopChatter(ctx); err != nil {
				return nil, err
			}
			return true, nil
		},
	})
	cat.MustRegister(c)
	return st
}

// parseKey extracts the key token after "GET ".
func (st *State) parseKey(ctx *core.Ctx, buf uintptr, n int) (string, error) {
	raw := make([]byte, n)
	if err := ctx.Read(buf, raw); err != nil {
		return "", err
	}
	s := string(raw)
	const prefix = "GET "
	if len(s) <= len(prefix) {
		return "", fmt.Errorf("redis: malformed request %q", s)
	}
	key := s[len(prefix):]
	for i := 0; i < len(key); i++ {
		if key[i] == '\r' || key[i] == '\n' {
			key = key[:i]
			break
		}
	}
	return key, nil
}

// parseKeyValue extracts the key and value tokens after "SET ".
func (st *State) parseKeyValue(ctx *core.Ctx, buf uintptr, n int) (string, string, error) {
	raw := make([]byte, n)
	if err := ctx.Read(buf, raw); err != nil {
		return "", "", err
	}
	s := string(raw)
	const prefix = "SET "
	if len(s) <= len(prefix) {
		return "", "", fmt.Errorf("redis: malformed request %q", s)
	}
	rest := s[len(prefix):]
	for i := 0; i < len(rest); i++ {
		if rest[i] == '\r' || rest[i] == '\n' {
			rest = rest[:i]
			break
		}
	}
	key := rest
	val := ""
	for i := 0; i < len(rest); i++ {
		if rest[i] == ' ' {
			key, val = rest[:i], rest[i+1:]
			break
		}
	}
	if key == "" {
		return "", "", fmt.Errorf("redis: malformed SET %q", s)
	}
	return key, val, nil
}

// recvCommand runs the shared request prologue: allocate the DSS
// request buffer, receive into it, and parse the command token. A
// (0, 0, "", nil) return means the rx queue was empty.
func (st *State) recvCommand(ctx *core.Ctx) (buf uintptr, n int, cmd string, err error) {
	// Shared request buffer on the stack: a DSS shadow slot under the
	// default sharing strategy (Fig. 4).
	buf, err = ctx.StackAlloc(64, true)
	if err != nil {
		return 0, 0, "", err
	}
	v, err := ctx.Call(netstack.Name, "recv", st.sock, buf, 64)
	if err != nil {
		return 0, 0, "", err
	}
	n = v.(int)
	if n == 0 {
		return buf, 0, "", nil
	}
	cmdAny, err := ctx.Call(libc.Name, "parse", buf, n)
	if err != nil {
		return 0, 0, "", err
	}
	return buf, n, cmdAny.(string), nil
}

// sendReply formats a reply into a fresh shared buffer and transmits
// it — the epilogue both command paths share.
func (st *State) sendReply(ctx *core.Ctx, reply string) error {
	repBuf, err := ctx.StackAlloc(64, true)
	if err != nil {
		return err
	}
	nv, err := ctx.Call(libc.Name, "format", repBuf, reply)
	if err != nil {
		return err
	}
	_, err = ctx.Call(netstack.Name, "send", st.sock, repBuf, nv.(int))
	return err
}

// eventLoopChatter is the per-request scheduler bookkeeping that makes
// isolating uksched expensive for Redis (~10 calls per request),
// identical on the GET and SET paths.
func eventLoopChatter(ctx *core.Ctx) error {
	for i := 0; i < schedCallsPerReq; i++ {
		fn := "wake"
		switch i % 3 {
		case 1:
			fn = "block_poll"
		case 2:
			fn = "timer_arm"
		}
		if _, err := ctx.Call(oslib.SchedName, fn); err != nil {
			return err
		}
	}
	return nil
}

// Sets returns the number of successful SETs (test hook).
func (st *State) Sets() uint64 { return st.sets }

// Hits returns the number of successful GETs (test hook).
func (st *State) Hits() uint64 { return st.hits }

// Misses returns the number of failed GETs (test hook).
func (st *State) Misses() uint64 { return st.misses }

// Catalog builds a fresh catalog with everything a Redis image needs.
func Catalog() (*core.Catalog, *State) {
	cat := core.NewCatalog()
	oslib.RegisterTCB(cat)
	oslib.RegisterSched(cat)
	libc.Register(cat)
	netstack.Register(cat)
	st := Register(cat)
	return cat, st
}

// Result is one benchmark measurement.
type Result struct {
	// ReqPerSec is the simulated GET throughput.
	ReqPerSec float64
	// Requests is the number of requests served.
	Requests int
	// Cycles is the simulated cycle count of the measurement phase.
	Cycles uint64
	// Crossings is the number of cross-compartment gate transitions.
	Crossings uint64
}

// Benchmark builds an image for the given spec, preloads the keyspace,
// injects requests, and measures GET throughput over the serve phase
// (the redis-benchmark analogue).
func Benchmark(spec core.ImageSpec, requests int) (Result, error) {
	cat, st := Catalog()
	img, err := core.Build(cat, spec)
	if err != nil {
		return Result{}, err
	}
	ctx, err := img.NewContext("redis-main", Name)
	if err != nil {
		return Result{}, err
	}
	const keys = 64
	if _, err := ctx.Call(Name, "setup", keys); err != nil {
		return Result{}, err
	}
	// Inject the request stream (the "NIC side" — not measured).
	for i := 0; i < requests; i++ {
		req := []byte(fmt.Sprintf("GET key%d\r\n", i%keys))
		if _, err := ctx.Call(netstack.Name, "rx_enqueue", st.sock, req); err != nil {
			return Result{}, err
		}
	}

	startCycles := img.Mach.Clock.Cycles()
	startCross := img.Crossings()
	for i := 0; i < requests; i++ {
		hit, err := ctx.Call(Name, "serve_get")
		if err != nil {
			return Result{}, err
		}
		if hit != true {
			return Result{}, fmt.Errorf("redis: request %d missed", i)
		}
	}
	cycles := img.Mach.Clock.Cycles() - startCycles
	seconds := float64(cycles) / img.Mach.Costs.FreqHz
	return Result{
		ReqPerSec: float64(requests) / seconds,
		Requests:  requests,
		Cycles:    cycles,
		Crossings: img.Crossings() - startCross,
	}, nil
}

// Components4 returns the Figure 6 component quadruple as a fixed-size
// array (app, libc, scheduler, network stack).
func Components4() [4]string {
	return [4]string{Name, libc.Name, oslib.SchedName, netstack.Name}
}
