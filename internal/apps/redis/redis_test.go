package redis

import (
	"testing"

	"flexos/internal/core"
	"flexos/internal/harden"
	"flexos/internal/isolation"
	"flexos/internal/netstack"
	"flexos/internal/oslib"
)

func oneComp() core.ImageSpec {
	return core.ImageSpec{
		Mechanism: "none",
		Comps: []core.CompSpec{{
			Name: "c0",
			Libs: append([]string{oslib.BootName, oslib.MMName}, Components...),
		}},
	}
}

func mpkSplit(isolated ...string) core.ImageSpec {
	iso := map[string]bool{}
	for _, l := range isolated {
		iso[l] = true
	}
	var rest, sep []string
	rest = append(rest, oslib.BootName, oslib.MMName)
	for _, l := range Components {
		if iso[l] {
			sep = append(sep, l)
		} else {
			rest = append(rest, l)
		}
	}
	return core.ImageSpec{
		Mechanism: "intel-mpk",
		GateMode:  isolation.GateFull,
		Sharing:   isolation.ShareDSS,
		Comps: []core.CompSpec{
			{Name: "comp0", Libs: rest},
			{Name: "comp1", Libs: sep},
		},
	}
}

func TestServeGetFunctional(t *testing.T) {
	res, err := Benchmark(oneComp(), 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 50 || res.ReqPerSec <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.Crossings != 0 {
		t.Fatalf("1-compartment image crossed %d gates", res.Crossings)
	}
}

func TestBaselineThroughputCalibration(t *testing.T) {
	// Paper Fig. 6: the fastest Redis configuration (no isolation, no
	// hardening) reaches ~1.2M GET/s on the 2.2 GHz Xeon.
	res, err := Benchmark(oneComp(), 300)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReqPerSec < 0.8e6 || res.ReqPerSec > 1.6e6 {
		t.Fatalf("baseline GET throughput = %.0f req/s, want ~1.2M (0.8M..1.6M)", res.ReqPerSec)
	}
}

func TestIsolationCostsFollowCommunicationPatterns(t *testing.T) {
	// Paper §6.1: isolating lwip costs ~11%, isolating the scheduler
	// ~43%, because Redis talks to the scheduler far more often.
	base, err := Benchmark(oneComp(), 300)
	if err != nil {
		t.Fatal(err)
	}
	lwip, err := Benchmark(mpkSplit(netstack.Name), 300)
	if err != nil {
		t.Fatal(err)
	}
	schd, err := Benchmark(mpkSplit(oslib.SchedName), 300)
	if err != nil {
		t.Fatal(err)
	}
	lwipHit := 1 - lwip.ReqPerSec/base.ReqPerSec
	schedHit := 1 - schd.ReqPerSec/base.ReqPerSec
	if lwipHit < 0.03 || lwipHit > 0.25 {
		t.Errorf("lwip isolation hit = %.1f%%, want ~11%%", 100*lwipHit)
	}
	if schedHit < 0.25 || schedHit > 0.55 {
		t.Errorf("scheduler isolation hit = %.1f%%, want ~43%%", 100*schedHit)
	}
	if schedHit <= lwipHit {
		t.Errorf("scheduler isolation (%.1f%%) must cost more than lwip isolation (%.1f%%)",
			100*schedHit, 100*lwipHit)
	}
	if lwip.Crossings >= schd.Crossings {
		t.Errorf("crossings: lwip %d >= sched %d; call matrix wrong", lwip.Crossings, schd.Crossings)
	}
}

func TestHardeningCostsFollowWorkDistribution(t *testing.T) {
	// Paper §6.1 (single compartment): hardening the scheduler costs
	// ~24%, hardening the Redis application code ~42%.
	base, err := Benchmark(oneComp(), 300)
	if err != nil {
		t.Fatal(err)
	}
	hardenOne := func(lib string) float64 {
		spec := oneComp()
		// Single compartment, but hardening applies per component via
		// a dedicated compartment under NONE (no isolation cost).
		spec.Comps = []core.CompSpec{
			{Name: "c0", Libs: nil},
			{Name: "hard", Libs: []string{lib}, Hardening: harden.NewSet(harden.All)},
		}
		for _, l := range append([]string{oslib.BootName, oslib.MMName}, Components...) {
			if l != lib {
				spec.Comps[0].Libs = append(spec.Comps[0].Libs, l)
			}
		}
		res, err := Benchmark(spec, 300)
		if err != nil {
			t.Fatal(err)
		}
		return 1 - res.ReqPerSec/base.ReqPerSec
	}
	redisHit := hardenOne(Name)
	schedHit := hardenOne(oslib.SchedName)
	if redisHit <= schedHit {
		t.Errorf("hardening redis (%.1f%%) must cost more than hardening uksched (%.1f%%)",
			100*redisHit, 100*schedHit)
	}
	if redisHit < 0.20 || redisHit > 0.55 {
		t.Errorf("redis hardening hit = %.1f%%, want ~42%%", 100*redisHit)
	}
	if schedHit < 0.08 || schedHit > 0.35 {
		t.Errorf("sched hardening hit = %.1f%%, want ~24%%", 100*schedHit)
	}
}

func TestEPTBackendRuns(t *testing.T) {
	spec := mpkSplit(netstack.Name)
	spec.Mechanism = "vm-ept"
	res, err := Benchmark(spec, 100)
	if err != nil {
		t.Fatal(err)
	}
	mpk, err := Benchmark(mpkSplit(netstack.Name), 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReqPerSec >= mpk.ReqPerSec {
		t.Fatalf("EPT (%f) should be slower than MPK (%f)", res.ReqPerSec, mpk.ReqPerSec)
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Benchmark(mpkSplit(netstack.Name), 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Benchmark(mpkSplit(netstack.Name), 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Fatalf("simulation not deterministic: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

func TestStateCounters(t *testing.T) {
	cat, st := Catalog()
	img, err := core.Build(cat, oneComp())
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := img.NewContext("t", Name)
	if _, err := ctx.Call(Name, "setup", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Call(netstack.Name, "rx_enqueue", 1, []byte("GET key1\r\n")); err != nil {
		t.Fatal(err)
	}
	hit, err := ctx.Call(Name, "serve_get")
	if err != nil {
		t.Fatal(err)
	}
	if hit != true || st.Hits() != 1 || st.Misses() != 0 {
		t.Fatalf("hit=%v hits=%d misses=%d", hit, st.Hits(), st.Misses())
	}
	// Empty queue -> miss.
	if hit, _ := ctx.Call(Name, "serve_get"); hit != false {
		t.Fatal("empty queue should miss")
	}
}
