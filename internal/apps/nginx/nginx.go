// Package nginx implements the Nginx miniature of the paper's evaluation
// (Fig. 6 bottom): a static HTTP server over the same four components as
// Redis. Its communication pattern differs in exactly the way §6.1
// highlights: scheduler interaction is minimal (isolating uksched costs
// ~6% instead of Redis's 43%) while more work happens inside the
// application and the network stack per request — which is why the same
// 80-configuration space produces a differently-shaped overhead
// distribution (Fig. 7).
package nginx

import (
	"fmt"

	"flexos/internal/core"
	"flexos/internal/libc"
	"flexos/internal/netstack"
	"flexos/internal/oslib"
)

// Name is the component name used in configuration files.
const Name = "libnginx"

// Components lists the Figure-6 components for Nginx images.
var Components = []string{Name, libc.Name, oslib.SchedName, netstack.Name}

// Calibration (cycles / counts per HTTP request). Nginx does more
// application-side work per request than Redis and touches the scheduler
// only once.
const (
	serveWork        = 1150
	routeWork        = 240
	acceptWork       = 420 // accept(2) + connection object setup
	schedCallsPerReq = 1
	bodySize         = 128
)

// State is the per-image server state: the static file cache.
type State struct {
	files    map[string]uintptr // path -> private heap buffer (bodySize)
	sock     int
	served   uint64
	accepted uint64
}

// Register adds libnginx to a catalog (Table 1: +470/-85, 36 shared
// variables).
func Register(cat *core.Catalog) *State {
	st := &State{files: make(map[string]uintptr)}
	c := core.NewComponent(Name)
	c.PatchAdd, c.PatchDel = 470, 85
	c.Imports = []string{libc.Name, oslib.SchedName, netstack.Name}
	for i := 0; i < 36; i++ {
		c.AddShared(core.SharedVar{Name: fmt.Sprintf("conn_buf_%d", i), Size: 64})
	}

	// setup(): listening socket plus the cached document root.
	c.AddFunc(&core.Func{
		Name: "setup", Work: 500, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			v, err := ctx.Call(netstack.Name, "socket")
			if err != nil {
				return nil, err
			}
			st.sock = v.(int)
			body := make([]byte, bodySize)
			for i := range body {
				body[i] = byte('a' + i%26)
			}
			addr, err := ctx.AllocPrivate(bodySize)
			if err != nil {
				return nil, err
			}
			if err := ctx.Write(addr, body); err != nil {
				return nil, err
			}
			st.files["/index.html"] = addr
			return st.sock, nil
		},
	})

	// serve_req handles one HTTP GET end to end.
	c.AddFunc(&core.Func{
		Name: "serve_req", Work: serveWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			reqBuf, err := ctx.StackAlloc(128, true)
			if err != nil {
				return nil, err
			}
			v, err := ctx.Call(netstack.Name, "recv", st.sock, reqBuf, 128)
			if err != nil {
				return nil, err
			}
			n := v.(int)
			if n == 0 {
				return false, nil
			}
			method, err := ctx.Call(libc.Name, "parse", reqBuf, n)
			if err != nil {
				return nil, err
			}
			if method.(string) != "GET" {
				return false, nil
			}
			// Route to the cached file.
			ctx.Charge(routeWork)
			addr, ok := st.files["/index.html"]
			if !ok {
				return false, nil
			}

			// Header + body into a shared transmit buffer.
			txBuf, err := ctx.StackAlloc(64+bodySize, true)
			if err != nil {
				return nil, err
			}
			hdr := fmt.Sprintf("HTTP/1.1 200 OK\r\nContent-Length: %d\r\n\r\n", bodySize)
			hn, err := ctx.Call(libc.Name, "format", txBuf, hdr)
			if err != nil {
				return nil, err
			}
			if _, err := ctx.Call(libc.Name, "memcpy", txBuf+uintptr(hn.(int)), addr, bodySize); err != nil {
				return nil, err
			}
			total := hn.(int) + bodySize
			if _, err := ctx.Call(netstack.Name, "send", st.sock, txBuf, total); err != nil {
				return nil, err
			}
			for i := 0; i < schedCallsPerReq; i++ {
				if _, err := ctx.Call(oslib.SchedName, "wake"); err != nil {
					return nil, err
				}
			}
			st.served++
			return true, nil
		},
	})
	// accept_conn models accepting a fresh TCP connection: the
	// non-keepalive half of the static/keepalive scenario mixes. It
	// touches the network stack (handshake bookkeeping) and wakes the
	// event loop, but reuses the listening socket's queue.
	c.AddFunc(&core.Func{
		Name: "accept_conn", Work: acceptWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			if _, err := ctx.Call(netstack.Name, "pending", st.sock); err != nil {
				return nil, err
			}
			if _, err := ctx.Call(oslib.SchedName, "wake"); err != nil {
				return nil, err
			}
			st.accepted++
			return st.accepted, nil
		},
	})
	cat.MustRegister(c)
	return st
}

// Served returns the number of completed requests (test hook).
func (st *State) Served() uint64 { return st.served }

// Accepted returns the number of accepted connections (test hook).
func (st *State) Accepted() uint64 { return st.accepted }

// Catalog builds a fresh catalog with everything an Nginx image needs.
func Catalog() (*core.Catalog, *State) {
	cat := core.NewCatalog()
	oslib.RegisterTCB(cat)
	oslib.RegisterSched(cat)
	libc.Register(cat)
	netstack.Register(cat)
	st := Register(cat)
	return cat, st
}

// Result is one benchmark measurement.
type Result struct {
	ReqPerSec float64
	Requests  int
	Cycles    uint64
	Crossings uint64
}

// Benchmark measures HTTP throughput for a configuration (the wrk
// analogue).
func Benchmark(spec core.ImageSpec, requests int) (Result, error) {
	cat, st := Catalog()
	img, err := core.Build(cat, spec)
	if err != nil {
		return Result{}, err
	}
	ctx, err := img.NewContext("nginx-main", Name)
	if err != nil {
		return Result{}, err
	}
	if _, err := ctx.Call(Name, "setup"); err != nil {
		return Result{}, err
	}
	req := []byte("GET /index.html HTTP/1.1\r\nHost: flexos\r\n\r\n")
	for i := 0; i < requests; i++ {
		if _, err := ctx.Call(netstack.Name, "rx_enqueue", st.sock, req); err != nil {
			return Result{}, err
		}
	}
	startCycles := img.Mach.Clock.Cycles()
	startCross := img.Crossings()
	for i := 0; i < requests; i++ {
		ok, err := ctx.Call(Name, "serve_req")
		if err != nil {
			return Result{}, err
		}
		if ok != true {
			return Result{}, fmt.Errorf("nginx: request %d failed", i)
		}
	}
	cycles := img.Mach.Clock.Cycles() - startCycles
	seconds := float64(cycles) / img.Mach.Costs.FreqHz
	return Result{
		ReqPerSec: float64(requests) / seconds,
		Requests:  requests,
		Cycles:    cycles,
		Crossings: img.Crossings() - startCross,
	}, nil
}

// Components4 returns the Figure 6 component quadruple as a fixed-size
// array (app, libc, scheduler, network stack).
func Components4() [4]string {
	return [4]string{Name, libc.Name, oslib.SchedName, netstack.Name}
}
