package nginx

import (
	"testing"

	"flexos/internal/core"
	"flexos/internal/harden"
	"flexos/internal/isolation"
	"flexos/internal/oslib"
)

func oneComp() core.ImageSpec {
	return core.ImageSpec{
		Mechanism: "none",
		Comps: []core.CompSpec{{
			Name: "c0",
			Libs: append([]string{oslib.BootName, oslib.MMName}, Components...),
		}},
	}
}

func mpkSplit(isolated string) core.ImageSpec {
	var rest []string
	rest = append(rest, oslib.BootName, oslib.MMName)
	for _, l := range Components {
		if l != isolated {
			rest = append(rest, l)
		}
	}
	return core.ImageSpec{
		Mechanism: "intel-mpk",
		GateMode:  isolation.GateFull,
		Sharing:   isolation.ShareDSS,
		Comps: []core.CompSpec{
			{Name: "comp0", Libs: rest},
			{Name: "comp1", Libs: []string{isolated}},
		},
	}
}

func TestServeFunctional(t *testing.T) {
	res, err := Benchmark(oneComp(), 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 50 || res.ReqPerSec <= 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestSchedulerIsolationIsCheapForNginx(t *testing.T) {
	// Paper §6.1: "Compared to Redis, isolating the scheduler is much
	// less expensive (6% versus 43%)".
	base, err := Benchmark(oneComp(), 300)
	if err != nil {
		t.Fatal(err)
	}
	schd, err := Benchmark(mpkSplit(oslib.SchedName), 300)
	if err != nil {
		t.Fatal(err)
	}
	hit := 1 - schd.ReqPerSec/base.ReqPerSec
	if hit < 0 || hit > 0.15 {
		t.Fatalf("nginx scheduler isolation hit = %.1f%%, want ~6%%", 100*hit)
	}
}

func TestSchedulerHardeningIsCheapForNginx(t *testing.T) {
	// Paper §6.1: hardening the scheduler costs ~2% for Nginx.
	base, err := Benchmark(oneComp(), 300)
	if err != nil {
		t.Fatal(err)
	}
	spec := core.ImageSpec{
		Mechanism: "none",
		Comps: []core.CompSpec{
			{Name: "c0", Libs: nil},
			{Name: "hard", Libs: []string{oslib.SchedName}, Hardening: harden.NewSet(harden.All)},
		},
	}
	for _, l := range append([]string{oslib.BootName, oslib.MMName}, Components...) {
		if l != oslib.SchedName {
			spec.Comps[0].Libs = append(spec.Comps[0].Libs, l)
		}
	}
	hardened, err := Benchmark(spec, 300)
	if err != nil {
		t.Fatal(err)
	}
	hit := 1 - hardened.ReqPerSec/base.ReqPerSec
	if hit < 0 || hit > 0.10 {
		t.Fatalf("nginx scheduler hardening hit = %.1f%%, want ~2%%", 100*hit)
	}
}

func TestNginxDistributionFlatterThanRedis(t *testing.T) {
	// Fig. 6/7: Nginx has more low-overhead configurations than Redis
	// because its hot path concentrates in the app+lwip pair. Verify the
	// scheduler split is "isolation for free" territory.
	base, _ := Benchmark(oneComp(), 200)
	schd, _ := Benchmark(mpkSplit(oslib.SchedName), 200)
	if schd.ReqPerSec < 0.85*base.ReqPerSec {
		t.Fatalf("scheduler split should stay within 15%% of baseline: %.0f vs %.0f",
			schd.ReqPerSec, base.ReqPerSec)
	}
}

func TestServedCounter(t *testing.T) {
	cat, st := Catalog()
	img, err := core.Build(cat, oneComp())
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := img.NewContext("t", Name)
	if _, err := ctx.Call(Name, "setup"); err != nil {
		t.Fatal(err)
	}
	if st.Served() != 0 {
		t.Fatal("fresh server served requests")
	}
}
