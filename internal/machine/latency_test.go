package machine

import (
	"fmt"
	"testing"
)

func TestLatencySamplerPercentiles(t *testing.T) {
	var s LatencySampler
	// 100 samples: 1..100 cycles, recorded out of order.
	for i := 100; i >= 1; i-- {
		s.Record(uint64(i))
	}
	if s.Count() != 100 {
		t.Fatalf("Count = %d, want 100", s.Count())
	}
	cases := []struct {
		p    float64
		want uint64
	}{
		{50, 50}, // nearest rank: ceil(0.50*100) = 50th smallest
		{99, 99}, // ceil(0.99*100) = 99
		{100, 100},
		{1, 1},
		{0.5, 1}, // rank clamps to the first sample
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("Percentile(%v) = %d, want %d", c.p, got, c.want)
		}
	}
	if got := s.Max(); got != 100 {
		t.Errorf("Max = %d, want 100", got)
	}
}

func TestLatencySamplerEmptyAndSingle(t *testing.T) {
	var s LatencySampler
	if s.Percentile(50) != 0 || s.Max() != 0 || s.Count() != 0 {
		t.Error("empty sampler must report zeros")
	}
	s.Record(7)
	for _, p := range []float64{1, 50, 99, 100} {
		if got := s.Percentile(p); got != 7 {
			t.Errorf("single-sample Percentile(%v) = %d, want 7", p, got)
		}
	}
}

func TestLatencySamplerSpan(t *testing.T) {
	var s LatencySampler
	var c Clock
	if err := s.Span(&c, func() error { c.Advance(42); return nil }); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 1 || s.Max() != 42 {
		t.Fatalf("Span recorded %d samples, max %d; want 1 sample of 42", s.Count(), s.Max())
	}
	wantErr := fmt.Errorf("boom")
	if err := s.Span(&c, func() error { c.Advance(5); return wantErr }); err != wantErr {
		t.Fatalf("Span swallowed the error: %v", err)
	}
	if s.Count() != 1 {
		t.Fatalf("failed span must not record; count = %d", s.Count())
	}
	// Interleave Record after a Percentile query (sort invalidation).
	if s.Percentile(50) != 42 {
		t.Fatal("percentile before second record")
	}
	s.Record(10)
	if s.Percentile(50) != 10 || s.Max() != 42 {
		t.Fatalf("sampler did not re-sort: p50=%d max=%d", s.Percentile(50), s.Max())
	}
}

func TestCostModelMicros(t *testing.T) {
	m := DefaultCosts() // 2.2 GHz
	if got := m.Micros(2200); got != 1.0 {
		t.Fatalf("2200 cycles at 2.2GHz = %vµs, want 1", got)
	}
	if got := m.Micros(0); got != 0 {
		t.Fatalf("Micros(0) = %v", got)
	}
}
