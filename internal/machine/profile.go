// Machine profiles: named cost-model/attack-surface bundles selectable
// per query.
//
// The default profile is the paper's Xeon Silver 4114 (DefaultCosts). The
// RISC-V profile models the class of machine the two ROP-on-RISC-V papers
// in PAPERS.md target: the compressed (RVC) instruction extension lets
// byte-misaligned decoding mint far more unintended gadgets than x86's
// variable-length encoding, while the flat trap model (no KPTI split, no
// VMX microcode) shifts the gate-cost landscape — cheaper traps and
// syscalls, more expensive inter-world crossings on current cores.
package machine

import (
	"fmt"
	"sort"
	"strings"
)

// Profile bundles a cost model with the attack-relevant properties of the
// machine it describes. Profiles are compared by Name; two configurations
// on different profiles are incomparable in the safety ordering (a safer
// layout on one machine says nothing about another machine).
type Profile struct {
	// Name is the canonical profile name ("x86", "riscv").
	Name string

	// Costs is the cycle cost model for this machine.
	Costs CostModel

	// GadgetDensity scales the attacker's supply of ROP gadgets relative
	// to the x86 baseline (1.0). Compressed-ISA machines sit above 1:
	// every 16-bit-aligned decode point is a potential unintended gadget.
	GadgetDensity float64
}

// DefaultProfileName names the baseline profile used when a query does
// not select one; it renders as the empty string on the wire so existing
// canonical keys are unchanged.
const DefaultProfileName = "x86"

// DefaultProfile is the paper's Xeon Silver 4114 baseline.
func DefaultProfile() Profile {
	return Profile{Name: DefaultProfileName, Costs: DefaultCosts(), GadgetDensity: 1.0}
}

// RISCVProfile models a SiFive-class RV64GC core at 1.5 GHz. Relative to
// the Xeon: cheaper flat traps and syscalls (no KPTI, short pipelines),
// pricier cross-world transitions (hypervisor-extension software paths),
// no wrpkru analog — MPK-style domain switches go through a modeled
// sPMP/Donky-style user-mode switch — and a ~2.1x gadget density from
// the compressed instruction set (the ROPcompiler paper's measurement of
// gadget supply on RV64GC relative to comparable x86 binaries).
func RISCVProfile() Profile {
	c := DefaultCosts()
	c.FreqHz = 1.5e9
	c.WrPKRU = 18 // Donky-style user-mode domain register write
	c.MPKLightGateFixed = 14
	c.MPKFullGateExtra = 52
	c.EPTGate = 940      // H-extension world switch, partly software
	c.SyscallNoKPTI = 98 // flat trap, short pipeline
	c.SyscallKPTI = 98   // no KPTI split on this profile
	c.SGXGate = 9200     // Keystone-style enclave transition
	c.SeL4IPC = 360
	c.PageFault = 900
	c.VMExit = 2300
	c.ContextSwitch = 480
	c.TLBShootdown = 1400 // IPI-based remote sfence.vma
	return Profile{Name: "riscv", Costs: c, GadgetDensity: 2.1}
}

// profiles maps configuration-file names (lowercased) to constructors.
// "" and "x86" select the default; "riscv"/"risc-v"/"rv64" the RISC-V
// profile.
var profiles = map[string]func() Profile{
	"":       DefaultProfile,
	"x86":    DefaultProfile,
	"xeon":   DefaultProfile,
	"riscv":  RISCVProfile,
	"risc-v": RISCVProfile,
	"rv64":   RISCVProfile,
}

// CanonicalProfile maps a profile spec to its canonical name, with the
// default profile canonicalizing to "" so that existing configuration
// keys are byte-stable. It is the identity used inside Config.Key.
func CanonicalProfile(name string) (string, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	ctor, ok := profiles[n]
	if !ok {
		return "", fmt.Errorf("machine: unknown profile %q (have %s)", name, ProfileNames())
	}
	p := ctor()
	if p.Name == DefaultProfileName {
		return "", nil
	}
	return p.Name, nil
}

// ParseProfile resolves a profile spec ("", "x86", "riscv", ...) to its
// profile, validating the cost model on the way out.
func ParseProfile(name string) (Profile, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	ctor, ok := profiles[n]
	if !ok {
		return Profile{}, fmt.Errorf("machine: unknown profile %q (have %s)", name, ProfileNames())
	}
	p := ctor()
	if err := p.Costs.Validate(); err != nil {
		return Profile{}, fmt.Errorf("machine: profile %q: %w", p.Name, err)
	}
	return p, nil
}

// ProfileNames lists the canonical profile names, sorted, for error
// messages and front-end help text.
func ProfileNames() string {
	seen := map[string]bool{}
	var out []string
	for _, ctor := range profiles {
		p := ctor()
		if !seen[p.Name] {
			seen[p.Name] = true
			out = append(out, p.Name)
		}
	}
	sort.Strings(out)
	return strings.Join(out, "|")
}
