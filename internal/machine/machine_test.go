package machine

import (
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Cycles() != 0 {
		t.Fatalf("fresh clock at %d cycles, want 0", c.Cycles())
	}
	c.Advance(100)
	c.Advance(23)
	if got := c.Cycles(); got != 123 {
		t.Fatalf("Cycles() = %d, want 123", got)
	}
	c.Reset()
	if c.Cycles() != 0 {
		t.Fatal("Reset did not zero the clock")
	}
}

func TestClockSeconds(t *testing.T) {
	var c Clock
	c.Advance(2_200_000_000)
	if got := c.Seconds(2.2e9); got != 1.0 {
		t.Fatalf("Seconds = %v, want 1.0", got)
	}
}

func TestClockSpan(t *testing.T) {
	var c Clock
	got := c.Span(func() { c.Advance(42) })
	if got != 42 {
		t.Fatalf("Span = %d, want 42", got)
	}
}

func TestDefaultCostsMatchPaperFig11b(t *testing.T) {
	m := DefaultCosts()
	// Figure 11b targets (cycles): function 2, MPK-light 62, MPK-dss 108,
	// EPT 462, syscall 146 / 470.
	if m.FuncCall != 2 {
		t.Errorf("FuncCall = %d, want 2", m.FuncCall)
	}
	if got := m.MPKLightGate(); got != 62 {
		t.Errorf("MPKLightGate = %d, want 62", got)
	}
	if got := m.MPKFullGate(); got != 108 {
		t.Errorf("MPKFullGate = %d, want 108", got)
	}
	if m.EPTGate != 462 {
		t.Errorf("EPTGate = %d, want 462", m.EPTGate)
	}
	if m.SyscallNoKPTI != 146 || m.SyscallKPTI != 470 {
		t.Errorf("syscalls = %d/%d, want 146/470", m.SyscallNoKPTI, m.SyscallKPTI)
	}
}

func TestDefaultCostsValidate(t *testing.T) {
	if err := DefaultCosts().Validate(); err != nil {
		t.Fatalf("default cost model invalid: %v", err)
	}
}

func TestValidateRejectsBrokenModels(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*CostModel)
	}{
		{"zero freq", func(m *CostModel) { m.FreqHz = 0 }},
		{"zero funccall", func(m *CostModel) { m.FuncCall = 0 }},
		{"ept cheaper than mpk", func(m *CostModel) { m.EPTGate = 10 }},
		{"heap cheaper than stack", func(m *CostModel) { m.HeapAllocFast = 1 }},
	}
	for _, tc := range cases {
		m := DefaultCosts()
		tc.mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken model", tc.name)
		}
	}
}

func TestCopyCost(t *testing.T) {
	m := DefaultCosts()
	if got := m.CopyCost(0); got != 0 {
		t.Errorf("CopyCost(0) = %d, want 0", got)
	}
	if got := m.CopyCost(1); got != 1 {
		t.Errorf("CopyCost(1) = %d, want 1 (rounds up)", got)
	}
	if got := m.CopyCost(16); got != 1 {
		t.Errorf("CopyCost(16) = %d, want 1", got)
	}
	if got := m.CopyCost(17); got != 2 {
		t.Errorf("CopyCost(17) = %d, want 2", got)
	}
}

func TestCopyCostMonotonic(t *testing.T) {
	m := DefaultCosts()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return m.CopyCost(x) <= m.CopyCost(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMachineThroughput(t *testing.T) {
	m := New(CostModel{})
	if got := m.Throughput(100); got != 0 {
		t.Fatalf("throughput with no elapsed time = %v, want 0", got)
	}
	m.Charge(uint64(m.Costs.FreqHz)) // one simulated second
	if got := m.Throughput(500); got != 500 {
		t.Fatalf("throughput = %v, want 500 ops/s", got)
	}
}

func TestNewDefaultsZeroModel(t *testing.T) {
	m := New(CostModel{})
	if m.Costs.FreqHz != DefaultCosts().FreqHz {
		t.Fatal("New did not substitute default costs for a zero model")
	}
}
