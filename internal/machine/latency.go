package machine

import "sort"

// LatencySampler collects per-operation latencies read off the virtual
// cycle clock and reduces them to the percentile statistics the
// multi-metric scenarios report (p50/p99/max). Because every sample is a
// clock delta on the deterministic machine, the distribution — and every
// percentile extracted from it — is byte-identical across runs and
// worker counts.
//
// The zero value is an empty sampler ready to use.
type LatencySampler struct {
	samples []uint64
	sorted  bool
}

// Record adds one latency sample in cycles.
func (s *LatencySampler) Record(cycles uint64) {
	s.samples = append(s.samples, cycles)
	s.sorted = false
}

// Span runs fn and records the cycles it consumed on the clock as one
// sample. The error, if any, is returned without recording.
func (s *LatencySampler) Span(c *Clock, fn func() error) error {
	start := c.Cycles()
	if err := fn(); err != nil {
		return err
	}
	s.Record(c.Cycles() - start)
	return nil
}

// Count returns the number of recorded samples.
func (s *LatencySampler) Count() int { return len(s.samples) }

func (s *LatencySampler) sort() {
	if !s.sorted {
		sort.Slice(s.samples, func(i, j int) bool { return s.samples[i] < s.samples[j] })
		s.sorted = true
	}
}

// Percentile returns the p-th percentile latency in cycles using the
// nearest-rank definition (p in (0, 100]): the smallest sample such that
// at least p% of samples are <= it. It returns 0 when no samples were
// recorded.
func (s *LatencySampler) Percentile(p float64) uint64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	s.sort()
	rank := int(float64(n)*p/100 + 0.9999999999)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return s.samples[rank-1]
}

// Max returns the largest sample in cycles (0 when empty).
func (s *LatencySampler) Max() uint64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.sort()
	return s.samples[len(s.samples)-1]
}

// Micros converts a cycle count into microseconds at the model's CPU
// frequency — the unit the scenario layer reports latency percentiles
// in (the paper's µs-scale request latencies on the Xeon Silver 4114).
func (m CostModel) Micros(cycles uint64) float64 {
	return float64(cycles) / m.FreqHz * 1e6
}
