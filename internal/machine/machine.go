// Package machine provides the virtual execution substrate underneath the
// FlexOS simulation: a deterministic cycle clock and a cost model calibrated
// against the numbers the paper reports for an Intel Xeon Silver 4114
// @ 2.2 GHz (FlexOS, ASPLOS'22, Figures 10 and 11).
//
// Everything above this package (memory, scheduler, isolation backends,
// applications) accounts for its work by advancing a Clock. Converting the
// final cycle count back to wall-clock time or throughput uses the model's
// CPU frequency. Because the clock is virtual, experiments are deterministic
// and run in milliseconds regardless of the simulated duration.
package machine

import "fmt"

// Clock is a virtual cycle counter. It is the single source of simulated
// time: all simulated work, gate crossings, faults, and I/O advance it.
// The zero value is a clock at cycle zero, ready to use.
type Clock struct {
	cycles uint64
}

// Advance adds n cycles to the clock.
func (c *Clock) Advance(n uint64) { c.cycles += n }

// Cycles returns the number of cycles elapsed since the clock was created
// (or last reset).
func (c *Clock) Cycles() uint64 { return c.cycles }

// Reset sets the clock back to cycle zero.
func (c *Clock) Reset() { c.cycles = 0 }

// Seconds converts the elapsed cycles into seconds at the given CPU
// frequency in Hz.
func (c *Clock) Seconds(freqHz float64) float64 {
	return float64(c.cycles) / freqHz
}

// Span measures the cycles consumed by fn.
func (c *Clock) Span(fn func()) uint64 {
	start := c.cycles
	fn()
	return c.cycles - start
}

// String implements fmt.Stringer.
func (c *Clock) String() string { return fmt.Sprintf("%d cycles", c.cycles) }

// CostModel holds the per-primitive cycle costs that drive the simulation.
// The defaults (see DefaultCosts) are calibrated against the
// microbenchmarks of the FlexOS paper (Figure 11) and its cited numbers, so
// that macro-level results reproduce the paper's shape.
//
// All costs are round-trip unless stated otherwise.
type CostModel struct {
	// FreqHz is the simulated CPU frequency, used to convert cycles to
	// seconds (Xeon Silver 4114: 2.2 GHz).
	FreqHz float64

	// FuncCall is a plain same-compartment function call round-trip
	// (Fig. 11b: 2 cycles).
	FuncCall uint64

	// WrPKRU is the cost of a single wrpkru instruction plus its
	// serializing effects. An MPK light gate performs two of them (enter +
	// exit), plus a handful of moves; Fig. 11b reports 62 cycles for the
	// light gate round-trip.
	WrPKRU uint64

	// MPKLightGateFixed is the non-wrpkru part of the light gate (entry
	// point dispatch, argument shuffling).
	MPKLightGateFixed uint64

	// MPKFullGateExtra is the additional round-trip cost of the full MPK
	// gate over the light one: register save + zeroing, stack-registry
	// lookup and stack switch (Fig. 11b: 108 total => 46 extra).
	MPKFullGateExtra uint64

	// EPTGate is the shared-memory RPC round-trip between two VMs with
	// busy-waiting servers (Fig. 11b: 462 cycles).
	EPTGate uint64

	// SyscallNoKPTI and SyscallKPTI are Linux system call round-trips
	// without and with kernel page-table isolation (Fig. 11b: 146 / 470).
	SyscallNoKPTI uint64
	SyscallKPTI   uint64

	// SGXGate is an enclave ECALL/OCALL round trip (SGX1-era hardware:
	// several thousand cycles; used by the SGX backend the paper lists
	// as future work).
	SGXGate uint64

	// SeL4IPC is a one-way seL4 IPC; a cross-component call under
	// SeL4/Genode costs two IPCs plus capability validation. Calibrated so
	// that the SQLite macro-benchmark lands at the paper's 3.1x-over-MPK3
	// point (Fig. 10).
	SeL4IPC uint64

	// PkeyMprotect is the cost of a pkey_mprotect system call, used by
	// CubicleOS for domain transitions (orders of magnitude above wrpkru).
	PkeyMprotect uint64

	// TrapAndMap is CubicleOS' page-fault-driven window mapping cost per
	// shared-data access from a foreign compartment.
	TrapAndMap uint64

	// StackAlloc is the constant per-variable stack (and DSS) allocation
	// cost (Fig. 11a: 2 cycles).
	StackAlloc uint64

	// HeapAllocFast / HeapAllocSlow bound a general-purpose allocator's
	// fast and slow path (Fig. 11a: one to two orders of magnitude over
	// stack; §4.1: 30-60 cycles fast path, thousands slow path; measured
	// 100-300+ including the shared-heap bookkeeping).
	HeapAllocFast uint64
	HeapAllocSlow uint64

	// HeapFree is the cost of returning a heap block.
	HeapFree uint64

	// MemCopyPerByte models bulk copies through the simulated address
	// space (order: one cache line / few cycles => ~0.1 cy/B amortized; we
	// charge integer cycles per 16-byte chunk via CopyCost).
	MemCopyBytesPerCycle uint64

	// PageFault is the cost of a protection fault (MPK key mismatch,
	// KASan redzone hit) being raised and handled.
	PageFault uint64

	// VMExit is the cost of an EPT violation / vmexit, charged when a
	// compartment attempts to touch another VM's memory.
	VMExit uint64

	// ContextSwitch is a scheduler context switch between threads.
	ContextSwitch uint64

	// TLBShootdown models remote TLB invalidation for PT-based isolation
	// backends (page-table switching baselines).
	TLBShootdown uint64
}

// DefaultCosts returns the cost model calibrated against the paper's Xeon
// Silver 4114. See the CostModel field docs for the mapping to Figure 11.
func DefaultCosts() CostModel {
	return CostModel{
		FreqHz:               2.2e9,
		FuncCall:             2,
		WrPKRU:               26,
		MPKLightGateFixed:    10, // 2*26 + 10 = 62 (Fig. 11b, MPK-light)
		MPKFullGateExtra:     46, // 62 + 46 = 108 (Fig. 11b, MPK-dss)
		EPTGate:              462,
		SyscallNoKPTI:        146,
		SyscallKPTI:          470,
		SGXGate:              7600,
		SeL4IPC:              570,
		PkeyMprotect:         1400,
		TrapAndMap:           2600,
		StackAlloc:           2,
		HeapAllocFast:        100,
		HeapAllocSlow:        850,
		HeapFree:             40,
		MemCopyBytesPerCycle: 16,
		PageFault:            1200,
		VMExit:               1700,
		ContextSwitch:        620,
		TLBShootdown:         900,
	}
}

// MPKLightGate is the full round-trip cost of the light (stack-sharing)
// MPK gate: two PKRU writes plus fixed dispatch overhead.
func (m CostModel) MPKLightGate() uint64 {
	return 2*m.WrPKRU + m.MPKLightGateFixed
}

// MPKFullGate is the full round-trip cost of the register-isolating,
// stack-switching MPK gate (the "-dss" gate in the paper's plots).
func (m CostModel) MPKFullGate() uint64 {
	return m.MPKLightGate() + m.MPKFullGateExtra
}

// CopyCost returns the cycle cost of copying n bytes through the simulated
// memory system.
func (m CostModel) CopyCost(n int) uint64 {
	if n <= 0 {
		return 0
	}
	bpc := m.MemCopyBytesPerCycle
	if bpc == 0 {
		bpc = 16
	}
	return (uint64(n) + bpc - 1) / bpc
}

// Validate reports an error if the model is internally inconsistent (zero
// frequency, light gate more expensive than full gate, etc.). Builders call
// this before accepting a user-supplied model.
func (m CostModel) Validate() error {
	switch {
	case m.FreqHz <= 0:
		return fmt.Errorf("machine: cost model frequency must be positive, got %v", m.FreqHz)
	case m.FuncCall == 0:
		return fmt.Errorf("machine: function call cost must be non-zero")
	case m.MPKFullGate() < m.MPKLightGate():
		return fmt.Errorf("machine: full MPK gate (%d) cheaper than light gate (%d)", m.MPKFullGate(), m.MPKLightGate())
	case m.EPTGate < m.MPKFullGate():
		return fmt.Errorf("machine: EPT gate (%d) cheaper than MPK full gate (%d); paper ordering violated", m.EPTGate, m.MPKFullGate())
	case m.HeapAllocFast < m.StackAlloc:
		return fmt.Errorf("machine: heap fast path (%d) cheaper than stack alloc (%d)", m.HeapAllocFast, m.StackAlloc)
	}
	return nil
}

// Machine bundles a clock with the cost model it is charged under. It is
// the context handed to every simulated subsystem.
type Machine struct {
	Clock Clock
	Costs CostModel
}

// New returns a machine with the given cost model. A zero-value CostModel
// is replaced by DefaultCosts.
func New(costs CostModel) *Machine {
	if costs.FreqHz == 0 {
		costs = DefaultCosts()
	}
	return &Machine{Costs: costs}
}

// Charge advances the clock by n cycles.
func (m *Machine) Charge(n uint64) { m.Clock.Advance(n) }

// ChargeCopy advances the clock by the cost of copying n bytes.
func (m *Machine) ChargeCopy(n int) { m.Clock.Advance(m.Costs.CopyCost(n)) }

// Seconds returns the simulated wall-clock time elapsed so far.
func (m *Machine) Seconds() float64 { return m.Clock.Seconds(m.Costs.FreqHz) }

// Throughput converts an operation count into operations/second of
// simulated time. It returns 0 when no time has elapsed.
func (m *Machine) Throughput(ops uint64) float64 {
	s := m.Seconds()
	if s == 0 {
		return 0
	}
	return float64(ops) / s
}
