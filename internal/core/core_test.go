package core

import (
	"strings"
	"testing"

	"flexos/internal/config"
	"flexos/internal/harden"
	"flexos/internal/isolation"
	"flexos/internal/mem"
)

func parseConfig(text string) (*config.Config, error) { return config.Parse(text) }

// testCatalog builds a miniature system: an "app" that calls a "svc"
// library, plus a TCB "boot" component.
func testCatalog(t testing.TB) *Catalog {
	t.Helper()
	cat := NewCatalog()

	boot := NewComponent("boot")
	boot.TCB = true
	cat.MustRegister(boot)

	svc := NewComponent("svc")
	svc.PatchAdd, svc.PatchDel = 48, 8
	svc.AddShared(SharedVar{Name: "state", Size: 64})
	svc.AddFunc(&Func{
		Name: "ping", Work: 100, EntryPoint: true,
		Impl: func(ctx *Ctx, args ...any) (any, error) {
			if len(args) == 1 {
				return args[0], nil
			}
			return "pong", nil
		},
	})
	svc.AddFunc(&Func{Name: "internal", Work: 10})
	cat.MustRegister(svc)

	app := NewComponent("app")
	app.Imports = []string{"svc"}
	app.AddFunc(&Func{
		Name: "main", Work: 200, EntryPoint: true,
		Impl: func(ctx *Ctx, args ...any) (any, error) {
			return ctx.Call("svc", "ping")
		},
	})
	cat.MustRegister(app)
	return cat
}

func twoCompSpec(mech string, gm isolation.GateMode, sh isolation.Sharing) ImageSpec {
	return ImageSpec{
		Mechanism: mech,
		GateMode:  gm,
		Sharing:   sh,
		Comps: []CompSpec{
			{Name: "comp0", Libs: []string{"boot", "app"}},
			{Name: "comp1", Libs: []string{"svc"}},
		},
	}
}

func build(t testing.TB, spec ImageSpec) *Image {
	t.Helper()
	img, err := Build(testCatalog(t), spec)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestBuildValidation(t *testing.T) {
	cat := testCatalog(t)
	if _, err := Build(cat, ImageSpec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	bad := twoCompSpec("mpk", 0, 0)
	bad.Comps[1].Libs = []string{"nonexistent"}
	if _, err := Build(cat, bad); err == nil {
		t.Fatal("unknown library accepted")
	}
	dup := twoCompSpec("mpk", 0, 0)
	dup.Comps[1].Libs = []string{"app"}
	if _, err := Build(cat, dup); err == nil {
		t.Fatal("library in two compartments accepted")
	}
	if _, err := Build(cat, ImageSpec{Mechanism: "trustzone", Comps: []CompSpec{{Name: "c", Libs: nil}}}); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
}

func TestSameCompartmentCallIsZeroOverhead(t *testing.T) {
	// P4 / Fig. 3 step 3': same-compartment gates degenerate to plain
	// calls; a 1-compartment MPK image must cost the same as NONE.
	one := ImageSpec{Mechanism: "intel-mpk", Comps: []CompSpec{
		{Name: "c0", Libs: []string{"boot", "app", "svc"}},
	}}
	imgMPK := build(t, one)
	ctx, err := imgMPK.NewContext("t", "app")
	if err != nil {
		t.Fatal(err)
	}
	mpkCost := imgMPK.Mach.Clock.Span(func() {
		if _, err := ctx.Call("app", "main"); err != nil {
			t.Fatal(err)
		}
	})

	imgNone := build(t, ImageSpec{Mechanism: "none", Comps: []CompSpec{
		{Name: "c0", Libs: []string{"boot", "app", "svc"}},
	}})
	ctxN, _ := imgNone.NewContext("t", "app")
	noneCost := imgNone.Mach.Clock.Span(func() {
		if _, err := ctxN.Call("app", "main"); err != nil {
			t.Fatal(err)
		}
	})
	if mpkCost != noneCost {
		t.Fatalf("1-comp MPK cost %d != NONE cost %d; flexibility must be free", mpkCost, noneCost)
	}
	if imgMPK.Crossings() != 0 {
		t.Fatal("same-compartment calls must not count as crossings")
	}
}

func TestCrossCompartmentCallCostsGate(t *testing.T) {
	img := build(t, twoCompSpec("intel-mpk", isolation.GateFull, isolation.ShareDSS))
	ctx, err := img.NewContext("t", "app")
	if err != nil {
		t.Fatal(err)
	}
	total := img.Mach.Clock.Span(func() {
		out, err := ctx.Call("app", "main")
		if err != nil {
			t.Fatal(err)
		}
		if out != "pong" {
			t.Fatalf("call returned %v", out)
		}
	})
	// main work (200) + gate (108) + ping work (100) + small frame costs.
	if total < 408 {
		t.Fatalf("cross-compartment call cost %d, want >= 408", total)
	}
	if img.Crossings() != 1 {
		t.Fatalf("crossings = %d, want 1", img.Crossings())
	}
}

func TestHardeningMultipliesCalleeWork(t *testing.T) {
	plain := build(t, twoCompSpec("none", 0, 0))
	ctxP, _ := plain.NewContext("t", "app")
	base := plain.Mach.Clock.Span(func() { ctxP.Call("svc", "ping") })

	spec := twoCompSpec("none", 0, 0)
	spec.Comps[1].Hardening = harden.NewSet(harden.All)
	hard := build(t, spec)
	ctxH, _ := hard.NewContext("t", "app")
	hardened := hard.Mach.Clock.Span(func() { ctxH.Call("svc", "ping") })

	if hardened <= base {
		t.Fatalf("hardened call (%d) not slower than plain (%d)", hardened, base)
	}
	// Roughly the ~2x multiplier on the work portion.
	if float64(hardened) < 1.5*float64(base) {
		t.Fatalf("hardening effect too small: %d vs %d", hardened, base)
	}
}

func TestReturnValueAndArgs(t *testing.T) {
	img := build(t, twoCompSpec("intel-mpk", 0, 0))
	ctx, _ := img.NewContext("t", "app")
	out, err := ctx.Call("svc", "ping", 42)
	if err != nil {
		t.Fatal(err)
	}
	if out != 42 {
		t.Fatalf("gate did not marshal return value: %v", out)
	}
}

func TestCallUnknownTargets(t *testing.T) {
	img := build(t, twoCompSpec("intel-mpk", 0, 0))
	ctx, _ := img.NewContext("t", "app")
	if _, err := ctx.Call("nolib", "f"); err == nil {
		t.Fatal("unknown library accepted")
	}
	if _, err := ctx.Call("svc", "nofunc"); err == nil {
		t.Fatal("unknown function accepted")
	}
}

func TestNonEntryPointRejectedAcrossCompartments(t *testing.T) {
	img := build(t, twoCompSpec("intel-mpk", 0, 0))
	ctx, _ := img.NewContext("t", "app")
	_, err := ctx.Call("svc", "internal")
	if !mem.IsFault(err, mem.FaultCFI) {
		t.Fatalf("cross-compartment call to non-entry: got %v, want CFI fault", err)
	}
	// But legal from within the same compartment.
	spec := ImageSpec{Mechanism: "intel-mpk", Comps: []CompSpec{
		{Name: "c0", Libs: []string{"boot", "app", "svc"}},
	}}
	img2 := build(t, spec)
	ctx2, _ := img2.NewContext("t", "app")
	if _, err := ctx2.Call("svc", "internal"); err != nil {
		t.Fatalf("intra-compartment internal call failed: %v", err)
	}
}

func TestPrivateHeapIsolation(t *testing.T) {
	img := build(t, twoCompSpec("intel-mpk", 0, 0))
	ctx, _ := img.NewContext("t", "app")

	// Allocate private data inside svc's compartment via a gate...
	addrAny, err := ctx.Call("svc", "ping", nil)
	_ = addrAny
	if err != nil {
		t.Fatal(err)
	}
	svcComp, _ := img.Comp("svc")
	privAddr, err := svcComp.Heap.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	// ... the app thread (in comp0) cannot touch it directly.
	err = ctx.Read(privAddr, make([]byte, 8))
	if !mem.IsFault(err, mem.FaultKeyViolation) {
		t.Fatalf("private heap read from foreign compartment: got %v, want key violation", err)
	}
	// Shared heap is reachable from both sides.
	sh, err := ctx.AllocShared(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Write(sh, []byte("hello")); err != nil {
		t.Fatalf("shared heap write failed: %v", err)
	}
	if err := ctx.FreeShared(sh); err != nil {
		t.Fatal(err)
	}
}

func TestSharedAnnotationsPlacedInSharedDomain(t *testing.T) {
	img := build(t, twoCompSpec("intel-mpk", 0, 0))
	addr, ok := img.SharedVarAddr("svc", "state")
	if !ok {
		t.Fatal("shared var not placed")
	}
	if img.AS.KeyAt(addr) != mem.KeyShared {
		t.Fatalf("shared var key = %d, want shared", img.AS.KeyAt(addr))
	}
	ctx, _ := img.NewContext("t", "app")
	// Both compartments can write it.
	if err := ctx.Write(addr, []byte("x")); err != nil {
		t.Fatalf("app write to __shared var: %v", err)
	}
	if _, err := ctx.Call("svc", "ping"); err != nil {
		t.Fatal(err)
	}
}

func TestDSSStackLayoutAndSharing(t *testing.T) {
	img := build(t, twoCompSpec("intel-mpk", isolation.GateFull, isolation.ShareDSS))
	ctx, _ := img.NewContext("t", "app")

	priv, err := ctx.StackAlloc(8, false)
	if err != nil {
		t.Fatal(err)
	}
	appComp, _ := img.Comp("app")
	if img.AS.KeyAt(priv) != appComp.Key {
		t.Fatalf("private local key = %d, want compartment key %d", img.AS.KeyAt(priv), appComp.Key)
	}

	shadow, err := ctx.StackAlloc(8, true)
	if err != nil {
		t.Fatal(err)
	}
	if img.AS.KeyAt(shadow) != mem.KeyShared {
		t.Fatalf("DSS shadow key = %d, want shared", img.AS.KeyAt(shadow))
	}
	// The shadow is addressable from the other compartment too.
	if err := ctx.WriteUint64(shadow, 7); err != nil {
		t.Fatal(err)
	}
	out, err := ctx.Call("svc", "ping", shadow)
	if err != nil || out != shadow {
		t.Fatalf("passing DSS pointer across: %v %v", out, err)
	}
	if img.DSSBytes() == 0 {
		t.Fatal("DSS bytes not accounted")
	}
}

func TestShareHeapConversionFreesOnReturn(t *testing.T) {
	cat := testCatalog(t)
	svcComp, _ := cat.Lookup("svc")
	var localAddr uintptr
	svcComp.AddFunc(&Func{
		Name: "with_local", Work: 10, EntryPoint: true,
		Impl: func(ctx *Ctx, args ...any) (any, error) {
			a, err := ctx.StackAlloc(16, true)
			localAddr = a
			return nil, err
		},
	})
	img, err := Build(cat, twoCompSpec("intel-mpk", isolation.GateFull, isolation.ShareHeap))
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := img.NewContext("t", "app")
	if _, err := ctx.Call("svc", "with_local"); err != nil {
		t.Fatal(err)
	}
	if localAddr == 0 {
		t.Fatal("no heap-converted local allocated")
	}
	// The conversion must have been freed on return: allocating again
	// reuses the block.
	again, err := img.SharedHeap().Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if again != localAddr {
		t.Fatalf("heap-converted local leaked: got %#x, want reuse of %#x", again, localAddr)
	}
}

func TestStackProtectorAppliedPerCompartment(t *testing.T) {
	spec := twoCompSpec("intel-mpk", isolation.GateFull, isolation.ShareDSS)
	spec.Comps[1].Hardening = harden.NewSet(harden.StackProtector)
	img := build(t, spec)
	ctx, _ := img.NewContext("t", "app")
	if _, err := ctx.Call("svc", "ping"); err != nil {
		t.Fatalf("hardened call failed: %v", err)
	}
}

func TestKASanCompartmentAllocator(t *testing.T) {
	spec := twoCompSpec("intel-mpk", 0, 0)
	spec.Comps[1].Hardening = harden.NewSet(harden.KASan)
	img := build(t, spec)
	svcComp, _ := img.Comp("svc")
	if !strings.HasPrefix(svcComp.Heap.Name(), "kasan+") {
		t.Fatalf("kasan compartment allocator = %q", svcComp.Heap.Name())
	}
	appComp, _ := img.Comp("app")
	if strings.HasPrefix(appComp.Heap.Name(), "kasan+") {
		t.Fatal("unhardened compartment must keep its plain allocator")
	}
	// Functional: OOB write in the hardened compartment faults.
	p, err := svcComp.Heap.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	err = img.AS.Write(mem.PKRUAllowAll, p+16, make([]byte, 8))
	if !mem.IsFault(err, mem.FaultKASanRedzone) {
		t.Fatalf("kasan OOB: got %v", err)
	}
}

func TestEPTImageTCBDuplication(t *testing.T) {
	img := build(t, twoCompSpec("vm-ept", 0, 0))
	r := img.Report()
	if r.Backend.VMs != 2 || r.Backend.TCBCopies != 2 {
		t.Fatalf("EPT report = %+v", r.Backend)
	}
	ctx, err := img.NewContext("t", "app")
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctx.Call("svc", "ping")
	if err != nil || out != "pong" {
		t.Fatalf("EPT RPC call: %v %v", out, err)
	}
}

func TestReportContents(t *testing.T) {
	spec := twoCompSpec("intel-mpk", isolation.GateFull, isolation.ShareDSS)
	spec.Comps[1].Hardening = harden.NewSet(harden.CFI, harden.KASan)
	img := build(t, spec)
	r := img.Report()
	if r.Mechanism != "intel-mpk" || r.Sharing != "dss" {
		t.Fatalf("report header = %+v", r)
	}
	if len(r.Comps) != 2 || len(r.Gates) != 2 {
		t.Fatalf("report comps/gates = %d/%d", len(r.Comps), len(r.Gates))
	}
	if r.Gates[0].Cost != 108 {
		t.Fatalf("gate binding cost = %d, want 108", r.Gates[0].Cost)
	}
	if len(r.TCBLibs) != 1 || r.TCBLibs[0] != "boot" {
		t.Fatalf("TCB libs = %v", r.TCBLibs)
	}
	if len(r.Shared) != 1 || r.Shared[0].Lib != "svc" {
		t.Fatalf("shared vars = %+v", r.Shared)
	}
	text := r.String()
	for _, want := range []string{"intel-mpk", "comp0", "comp1", "mpk/full", "boot"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report text missing %q:\n%s", want, text)
		}
	}
}

func TestTableOne(t *testing.T) {
	rows := TableOne(testCatalog(t))
	if len(rows) != 1 || rows[0].Lib != "svc" || rows[0].SharedVars != 1 || rows[0].PatchAdd != 48 {
		t.Fatalf("TableOne = %+v", rows)
	}
}

func TestSpecFromConfigEndToEnd(t *testing.T) {
	cfgText := `
compartments:
- comp1:
    mechanism: intel-mpk
    default: true
- comp2:
    mechanism: intel-mpk
    hardening: [cfi, asan]
libraries:
- svc: comp2
gate: full
sharing: dss
`
	cfg, err := parseConfig(cfgText)
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog(t)
	spec, err := SpecFromConfig(cfg, cat)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Mechanism != "intel-mpk" || spec.GateMode != isolation.GateFull {
		t.Fatalf("spec = %+v", spec)
	}
	// Unassigned libs (app, boot) land in the default compartment.
	if len(spec.Comps) != 2 {
		t.Fatalf("comps = %+v", spec.Comps)
	}
	if got := len(spec.Comps[0].Libs); got != 2 {
		t.Fatalf("default compartment has %d libs, want 2 (app, boot)", got)
	}
	if !spec.Comps[1].Hardening.Has(harden.CFI) || !spec.Comps[1].Hardening.Has(harden.KASan) {
		t.Fatal("hardening lost in conversion")
	}
	img, err := Build(cat, spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := img.NewContext("t", "app")
	if out, err := ctx.Call("app", "main"); err != nil || out != "pong" {
		t.Fatalf("end-to-end call: %v %v", out, err)
	}
}

func TestUBSanHelperThroughCtx(t *testing.T) {
	spec := twoCompSpec("none", 0, 0)
	spec.Comps[1].Hardening = harden.NewSet(harden.UBSan)
	img := build(t, spec)
	cat := img.Catalog
	svcComp, _ := cat.Lookup("svc")
	_ = svcComp
	ctx, _ := img.NewContext("t", "app")
	_ = ctx
	c1, _ := img.CompByName("comp1")
	if _, err := c1.Hardening.CheckedAdd(1<<62, 1<<62); err == nil {
		t.Fatal("ubsan helper did not trap")
	}
}

func TestVerifiedComponentTracking(t *testing.T) {
	// §7 "Incremental Verification": a verified component isolated in
	// its own compartment keeps its proven properties; colocated with
	// unverified code it does not.
	cat := testCatalog(t)
	svcComp, _ := cat.Lookup("svc")
	svcComp.Verified = true

	colocated, err := Build(cat, ImageSpec{Mechanism: "intel-mpk", Comps: []CompSpec{
		{Name: "c0", Libs: []string{"boot", "app", "svc"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	r := colocated.Report()
	if len(r.VerifiedLibs) != 1 || r.VerifiedLibs[0].Isolated {
		t.Fatalf("colocated verified report = %+v, want not isolated", r.VerifiedLibs)
	}

	isolated, err := Build(cat, twoCompSpec("intel-mpk", 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	r = isolated.Report()
	if len(r.VerifiedLibs) != 1 || !r.VerifiedLibs[0].Isolated {
		t.Fatalf("isolated verified report = %+v, want isolated", r.VerifiedLibs)
	}
}
