package core

import (
	"fmt"

	"flexos/internal/harden"
	"flexos/internal/isolation"
	"flexos/internal/machine"
	"flexos/internal/sched"
)

// Ctx is the execution context handed to component functions: it tracks
// the running thread, the compartment currently executing, and provides
// the abstract compartmentalization API — Call (abstract gates), memory
// accessors checked under the thread's protection domain, stack locals
// with the configured sharing strategy, and per-compartment heaps.
type Ctx struct {
	img    *Image
	th     *sched.Thread
	cur    *CompRT
	curLib string

	// heapLocals tracks stack-to-heap-converted shared locals per open
	// frame, freed on frame pop (the costly strategy DSS replaces).
	heapLocals [][]uintptr
}

// NewContext spawns a thread whose entry point lives in the compartment
// owning startLib, allocates its per-compartment stacks (the stack
// registry), and returns the context.
func (img *Image) NewContext(name, startLib string) (*Ctx, error) {
	comp, ok := img.byLib[startLib]
	if !ok {
		return nil, fmt.Errorf("core: no library %q in image", startLib)
	}
	th := img.Sched.Spawn(name, comp.ID)
	// One call stack per thread per compartment (§4.1).
	for _, c := range img.comps {
		st, err := img.allocStackRegion(c)
		if err != nil {
			return nil, err
		}
		th.SetStack(c.ID, st)
		if err := st.PushFrame(c.PKRU(), false); err != nil {
			return nil, err
		}
	}
	ctx := &Ctx{img: img, th: th, cur: comp, curLib: startLib}
	ctx.heapLocals = append(ctx.heapLocals, nil)
	return ctx, nil
}

// Image returns the image this context runs on.
func (c *Ctx) Image() *Image { return c.img }

// Machine returns the simulated machine (clock + costs).
func (c *Ctx) Machine() *machine.Machine { return c.img.Mach }

// Thread returns the underlying thread.
func (c *Ctx) Thread() *sched.Thread { return c.th }

// CurrentLib returns the library currently executing.
func (c *Ctx) CurrentLib() string { return c.curLib }

// CurrentComp returns the compartment currently executing.
func (c *Ctx) CurrentComp() *CompRT { return c.cur }

// cfiCheckCycles is the forward-edge check cost charged per entry into
// CFI-instrumented code.
const cfiCheckCycles = 4

// Hardening returns the hardening in force for the currently executing
// library; component code uses it for instrumented arithmetic (UBSan
// helpers).
func (c *Ctx) Hardening() harden.Set { return c.cur.EffectiveHardening(c.curLib) }

// Call invokes lib.fn through the abstract gate bound at build time. When
// caller and callee share a compartment this is a plain function call;
// otherwise the configured backend's gate performs the domain transition.
// Work cycles are charged under the callee compartment's hardening
// multiplier.
func (c *Ctx) Call(lib, fn string, args ...any) (any, error) {
	target, ok := c.img.byLib[lib]
	if !ok {
		return nil, fmt.Errorf("core: call into unknown library %q", lib)
	}
	comp, _ := c.img.Catalog.Lookup(lib)
	f, ok := comp.Func(fn)
	if !ok {
		return nil, fmt.Errorf("core: library %q has no function %q", lib, fn)
	}
	gate := c.img.gate(c.cur.ID, target.ID)
	if gate == nil {
		return nil, fmt.Errorf("core: no gate bound %s -> %s", c.cur.Name, target.Name)
	}

	effective := target.EffectiveHardening(lib)
	if effective.Has(harden.CFI) {
		// Forward-edge check on entry into CFI-instrumented code.
		c.img.Mach.Charge(cfiCheckCycles)
	}

	var ret any
	entry := lib + "." + fn
	err := gate.Call(c.th, entry, func() error {
		prevComp, prevLib := c.cur, c.curLib
		c.cur, c.curLib = target, lib

		// Open a frame on the callee stack; the stack protector adds a
		// canary when the callee library hardens with it.
		st := c.th.Stack(target.ID)
		canary := effective.Has(harden.StackProtector)
		if st != nil {
			if err := st.PushFrame(c.th.PKRU, canary); err != nil {
				return err
			}
		}
		c.heapLocals = append(c.heapLocals, nil)

		// Charge the function's compute under the callee's hardening.
		work := uint64(float64(f.Work) * effective.WorkMultiplier())
		c.img.Mach.Charge(work)

		var err error
		if f.Impl != nil {
			ret, err = f.Impl(c, args...)
		}

		// Close the frame: free heap-converted locals, verify canary.
		locals := c.heapLocals[len(c.heapLocals)-1]
		c.heapLocals = c.heapLocals[:len(c.heapLocals)-1]
		for _, addr := range locals {
			if ferr := c.img.sharedHeap.Free(addr); ferr != nil && err == nil {
				err = ferr
			}
		}
		if st != nil {
			if perr := st.PopFrame(c.th.PKRU); perr != nil && err == nil {
				err = perr
			}
		}
		c.cur, c.curLib = prevComp, prevLib
		return err
	})
	if err != nil {
		return nil, err
	}
	return ret, nil
}

// StackAlloc allocates a local variable in the current frame. Shared
// locals follow the image's data sharing strategy:
//
//   - ShareDSS: a constant-cost shadow slot on the Data Shadow Stack;
//   - ShareStack: a plain slot (the whole stack is in the shared domain);
//   - ShareHeap: a stack-to-heap conversion — an allocation on the shared
//     heap, freed automatically when the enclosing call returns (this is
//     the 100-300+ cycle path of Fig. 11a).
func (c *Ctx) StackAlloc(n int, shared bool) (uintptr, error) {
	st := c.th.Stack(c.cur.ID)
	if st == nil {
		return 0, fmt.Errorf("core: thread has no stack in compartment %s", c.cur.Name)
	}
	if !shared {
		return st.AllocLocal(n, false)
	}
	switch c.img.Spec.Sharing {
	case isolation.ShareDSS:
		return st.AllocLocal(n, true)
	case isolation.ShareStack:
		return st.AllocLocal(n, false)
	default: // ShareHeap
		addr, err := c.img.sharedHeap.Alloc(n)
		if err != nil {
			return 0, err
		}
		c.heapLocals[len(c.heapLocals)-1] = append(c.heapLocals[len(c.heapLocals)-1], addr)
		return addr, nil
	}
}

// AllocPrivate allocates from the current compartment's private heap.
func (c *Ctx) AllocPrivate(n int) (uintptr, error) { return c.cur.Heap.Alloc(n) }

// FreePrivate returns a private-heap block.
func (c *Ctx) FreePrivate(addr uintptr) error { return c.cur.Heap.Free(addr) }

// AllocShared allocates from the shared communication heap.
func (c *Ctx) AllocShared(n int) (uintptr, error) { return c.img.sharedHeap.Alloc(n) }

// FreeShared returns a shared-heap block.
func (c *Ctx) FreeShared(addr uintptr) error { return c.img.sharedHeap.Free(addr) }

// Read performs a checked load under the thread's current protection
// domain.
func (c *Ctx) Read(addr uintptr, buf []byte) error {
	return c.img.AS.Read(c.th.PKRU, addr, buf)
}

// Write performs a checked store under the thread's current protection
// domain.
func (c *Ctx) Write(addr uintptr, data []byte) error {
	return c.img.AS.Write(c.th.PKRU, addr, data)
}

// Memmove performs a checked intra-image copy.
func (c *Ctx) Memmove(dst, src uintptr, n int) error {
	return c.img.AS.Memmove(c.th.PKRU, dst, src, n)
}

// ReadUint64 / WriteUint64 are checked 8-byte accessors.
func (c *Ctx) ReadUint64(addr uintptr) (uint64, error) {
	return c.img.AS.ReadUint64(c.th.PKRU, addr)
}

// WriteUint64 stores an 8-byte value under the current domain.
func (c *Ctx) WriteUint64(addr uintptr, v uint64) error {
	return c.img.AS.WriteUint64(c.th.PKRU, addr, v)
}

// SharedVarAddr resolves a __shared annotation to its shared-domain
// address.
func (c *Ctx) SharedVarAddr(lib, name string) (uintptr, bool) {
	return c.img.SharedVarAddr(lib, name)
}

// Yield cooperatively yields the CPU.
func (c *Ctx) Yield() { c.img.Sched.Yield() }

// Charge adds raw compute cycles under the current compartment's
// hardening multiplier; component bodies use it for data-dependent work
// (e.g. per-byte parsing loops).
func (c *Ctx) Charge(cycles uint64) {
	c.img.Mach.Charge(uint64(float64(cycles) * c.cur.Hardening.WorkMultiplier()))
}
