package core

import (
	"testing"

	"flexos/internal/harden"
	"flexos/internal/isolation"
	"flexos/internal/mem"
)

// attackCatalog models a compromised component ("evil") colocated with a
// victim holding secrets, under various safety configurations. Each test
// plays one attack from the paper's threat discussion and checks which
// configurations stop it.
func attackCatalog(t *testing.T) *Catalog {
	t.Helper()
	cat := NewCatalog()
	boot := NewComponent("boot")
	boot.TCB = true
	cat.MustRegister(boot)

	victim := NewComponent("victim")
	victim.AddFunc(&Func{Name: "api", Work: 50, EntryPoint: true,
		Impl: func(ctx *Ctx, args ...any) (any, error) { return "ok", nil }})
	victim.AddFunc(&Func{Name: "helper", Work: 10}) // not an entry point
	cat.MustRegister(victim)

	evil := NewComponent("evil")
	// arbitrary_read: the attacker's exploit primitive.
	evil.AddFunc(&Func{Name: "arbitrary_read", Work: 20, EntryPoint: true,
		Impl: func(ctx *Ctx, args ...any) (any, error) {
			addr := args[0].(uintptr)
			buf := make([]byte, 8)
			if err := ctx.Read(addr, buf); err != nil {
				return nil, err
			}
			return string(buf), nil
		}})
	// smash: overwrite the canary below the current frame.
	evil.AddFunc(&Func{Name: "smash", Work: 20, EntryPoint: true,
		Impl: func(ctx *Ctx, args ...any) (any, error) {
			st := ctx.Thread().Stack(ctx.CurrentComp().ID)
			// Scribble over the stack including the canary slot.
			for a := st.SP(); a < st.SP()+32; a += 8 {
				if err := ctx.WriteUint64(a, 0x4141414141414141); err != nil {
					return nil, err
				}
			}
			return nil, nil
		}})
	// overflow: a classic heap overflow off an allocation.
	evil.AddFunc(&Func{Name: "overflow", Work: 20, EntryPoint: true,
		Impl: func(ctx *Ctx, args ...any) (any, error) {
			p, err := ctx.AllocPrivate(24)
			if err != nil {
				return nil, err
			}
			return nil, ctx.Write(p, make([]byte, 64)) // 40 bytes OOB
		}})
	// uaf: use after free.
	evil.AddFunc(&Func{Name: "uaf", Work: 20, EntryPoint: true,
		Impl: func(ctx *Ctx, args ...any) (any, error) {
			p, err := ctx.AllocPrivate(24)
			if err != nil {
				return nil, err
			}
			if err := ctx.FreePrivate(p); err != nil {
				return nil, err
			}
			return nil, ctx.Read(p, make([]byte, 8))
		}})
	cat.MustRegister(evil)
	return cat
}

func plantSecret(t *testing.T, img *Image) uintptr {
	t.Helper()
	vc, _ := img.Comp("victim")
	addr, err := vc.Heap.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := img.AS.Write(mem.PKRUAllowAll, addr, []byte("S3CR3T!!")); err != nil {
		t.Fatal(err)
	}
	return addr
}

func TestExfiltrationBlockedByEveryRealBackend(t *testing.T) {
	for _, mech := range []string{"intel-mpk", "vm-ept", "cheri", "intel-sgx"} {
		img, err := Build(attackCatalog(t), ImageSpec{
			Mechanism: mech,
			Comps: []CompSpec{
				{Name: "c0", Libs: []string{"boot", "victim"}},
				{Name: "evil", Libs: []string{"evil"}},
			},
		})
		if err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
		secret := plantSecret(t, img)
		ctx, _ := img.NewContext("t", "evil")
		_, err = ctx.Call("evil", "arbitrary_read", secret)
		if !mem.IsFault(err, mem.FaultKeyViolation) {
			t.Errorf("%s: exfiltration: got %v, want key violation", mech, err)
		}
	}
	// And the NONE baseline demonstrates why isolation matters.
	img, _ := Build(attackCatalog(t), ImageSpec{
		Mechanism: "none",
		Comps: []CompSpec{
			{Name: "c0", Libs: []string{"boot", "victim"}},
			{Name: "evil", Libs: []string{"evil"}},
		},
	})
	secret := plantSecret(t, img)
	ctx, _ := img.NewContext("t", "evil")
	out, err := ctx.Call("evil", "arbitrary_read", secret)
	if err != nil || out != "S3CR3T!!" {
		t.Fatalf("NONE image should leak: %v %v", out, err)
	}
}

func TestROPIntoCompartmentBlockedByGateCFI(t *testing.T) {
	// §4.1: compartments can only be entered at well-defined points;
	// jumping into a non-exported helper faults on every backend.
	for _, mech := range []string{"intel-mpk", "vm-ept", "cheri", "intel-sgx"} {
		img, err := Build(attackCatalog(t), ImageSpec{
			Mechanism: mech,
			Comps: []CompSpec{
				{Name: "c0", Libs: []string{"boot", "victim"}},
				{Name: "evil", Libs: []string{"evil"}},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, _ := img.NewContext("t", "evil")
		_, err = ctx.Call("victim", "helper")
		if !mem.IsFault(err, mem.FaultCFI) {
			t.Errorf("%s: ROP into helper: got %v, want CFI fault", mech, err)
		}
		// The legal API entry still works.
		if out, err := ctx.Call("victim", "api"); err != nil || out != "ok" {
			t.Errorf("%s: legal entry failed: %v %v", mech, out, err)
		}
	}
}

func TestStackSmashCaughtByStackProtector(t *testing.T) {
	spec := ImageSpec{
		Mechanism: "intel-mpk",
		GateMode:  isolation.GateFull,
		Sharing:   isolation.ShareDSS,
		Comps: []CompSpec{
			{Name: "c0", Libs: []string{"boot", "victim"}},
			{Name: "evil", Libs: []string{"evil"}, Hardening: harden.NewSet(harden.StackProtector)},
		},
	}
	img, err := Build(attackCatalog(t), spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := img.NewContext("t", "evil")
	_, err = ctx.Call("evil", "smash")
	if !mem.IsFault(err, mem.FaultStackSmash) {
		t.Fatalf("smash with stack protector: got %v, want stack-smash fault", err)
	}
	// Without the protector the smash goes unnoticed (and that is the
	// configuration trade-off the poset ranks).
	spec.Comps[1].Hardening = harden.Set{}
	img2, _ := Build(attackCatalog(t), spec)
	ctx2, _ := img2.NewContext("t", "evil")
	if _, err := ctx2.Call("evil", "smash"); err != nil {
		t.Fatalf("unprotected smash should pass silently, got %v", err)
	}
}

func TestHeapOverflowCaughtByKASanOnly(t *testing.T) {
	mk := func(hs harden.Set) *Image {
		img, err := Build(attackCatalog(t), ImageSpec{
			Mechanism: "intel-mpk",
			Comps: []CompSpec{
				{Name: "c0", Libs: []string{"boot", "victim"}},
				{Name: "evil", Libs: []string{"evil"}, Hardening: hs},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return img
	}
	img := mk(harden.NewSet(harden.KASan))
	ctx, _ := img.NewContext("t", "evil")
	_, err := ctx.Call("evil", "overflow")
	if !mem.IsFault(err, mem.FaultKASanRedzone) {
		t.Fatalf("overflow under kasan: got %v, want redzone fault", err)
	}
	_, err = ctx.Call("evil", "uaf")
	if !mem.IsFault(err, mem.FaultKASanRedzone) {
		t.Fatalf("UAF under kasan: got %v, want redzone fault", err)
	}

	// The unhardened compartment misses both (within its own heap).
	img2 := mk(harden.Set{})
	ctx2, _ := img2.NewContext("t", "evil")
	if _, err := ctx2.Call("evil", "overflow"); err != nil {
		t.Fatalf("unhardened overflow should pass: %v", err)
	}
	if _, err := ctx2.Call("evil", "uaf"); err != nil {
		t.Fatalf("unhardened UAF should pass: %v", err)
	}
}

func TestPerCompartmentHardeningDoesNotTaxNeighbors(t *testing.T) {
	// §4.5: per-compartment allocators make hardening selective — the
	// victim's compartment stays uninstrumented when only evil's is
	// hardened.
	img, err := Build(attackCatalog(t), ImageSpec{
		Mechanism: "intel-mpk",
		Comps: []CompSpec{
			{Name: "c0", Libs: []string{"boot", "victim"}},
			{Name: "evil", Libs: []string{"evil"}, Hardening: harden.NewSet(harden.KASan)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	vc, _ := img.Comp("victim")
	ec, _ := img.Comp("evil")
	if vc.Heap.Name() != "tlsf" {
		t.Fatalf("victim allocator = %q, want plain tlsf", vc.Heap.Name())
	}
	if ec.Heap.Name() != "kasan+tlsf" {
		t.Fatalf("evil allocator = %q, want kasan-wrapped", ec.Heap.Name())
	}
}

func TestVariableInterfaceSurface(t *testing.T) {
	// §3.3: "the system call API is divided into a variable number of
	// sub-interfaces depending on the chosen configuration" — more
	// compartments expose more, smaller gate surfaces. Count entry
	// points per compartment across configurations.
	cat := attackCatalog(t)
	one, err := Build(cat, ImageSpec{
		Mechanism: "intel-mpk",
		Comps: []CompSpec{
			{Name: "c0", Libs: []string{"boot", "victim", "evil"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// One compartment: no cross-compartment surface at all.
	if got := len(one.Compartments()[0].EntryPoints); got == 0 {
		t.Fatal("entry points should still be registered")
	}
	split, err := Build(attackCatalog(t), ImageSpec{
		Mechanism: "intel-mpk",
		Comps: []CompSpec{
			{Name: "c0", Libs: []string{"boot"}},
			{Name: "v", Libs: []string{"victim"}},
			{Name: "e", Libs: []string{"evil"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each compartment's attack surface is now only its own exports.
	vcomp, _ := split.Comp("victim")
	if len(vcomp.EntryPoints) != 1 {
		t.Fatalf("victim surface = %d entries, want 1 (api only)", len(vcomp.EntryPoints))
	}
}
