package core

import (
	"fmt"

	"flexos/internal/config"
	"flexos/internal/harden"
	"flexos/internal/isolation"
	"flexos/internal/machine"
	"flexos/internal/mem"
)

// CompSpec describes one compartment of an image to build.
type CompSpec struct {
	// Name is the compartment identifier from the configuration file.
	Name string
	// Libs are the component names placed in this compartment.
	Libs []string
	// Hardening is the software hardening applied to the whole
	// compartment.
	Hardening harden.Set
	// LibHardening optionally adds hardening to individual libraries
	// within the compartment — the per-component toggles of Figure 6.
	// Compile-time instrumentation (work multipliers, canaries, UBSan) is
	// per library; allocator-based schemes (KASan) instrument the
	// compartment's allocator if any resident library requests them.
	LibHardening map[string]harden.Set
}

// ImageSpec is the build-time safety configuration (P1-P3): the
// compartmentalization strategy, the isolation mechanism, the gate flavor,
// the data sharing strategy, and per-compartment hardening.
type ImageSpec struct {
	// Mechanism names the isolation backend ("none", "intel-mpk",
	// "vm-ept", "cheri").
	Mechanism string
	// GateMode selects the gate flavor for backends offering several.
	GateMode isolation.GateMode
	// Sharing selects the stack-data sharing strategy.
	Sharing isolation.Sharing
	// Comps lists the compartments. Compartment 0 is the default one and
	// receives every catalog component not explicitly assigned.
	Comps []CompSpec

	// Costs optionally overrides the calibrated cost model.
	Costs machine.CostModel

	// MemBytes sizes the simulated address space (default 32 MiB).
	MemBytes int
	// HeapPages sizes each compartment's private heap (default 512
	// pages) and the shared heap.
	HeapPages int
	// StackPages sizes thread stacks (default 8 pages, like the paper's
	// "FlexOS uses small stacks (8 pages)").
	StackPages int
}

// Defaults applied by the builder.
const (
	defaultMemBytes   = 32 << 20
	defaultHeapPages  = 512
	defaultStackPages = 8
)

// normalized returns a copy with defaults filled in.
func (s ImageSpec) normalized() ImageSpec {
	if s.Mechanism == "" {
		s.Mechanism = "none"
	}
	if s.MemBytes == 0 {
		s.MemBytes = defaultMemBytes
	}
	if s.HeapPages == 0 {
		s.HeapPages = defaultHeapPages
	}
	if s.StackPages == 0 {
		s.StackPages = defaultStackPages
	}
	if s.Costs.FreqHz == 0 {
		s.Costs = machine.DefaultCosts()
	}
	return s
}

// Validate checks the spec against a catalog: compartments must be named
// and unique, and every assigned library must exist.
func (s ImageSpec) Validate(cat *Catalog) error {
	if len(s.Comps) == 0 {
		return fmt.Errorf("core: image needs at least one compartment")
	}
	seenComp := map[string]bool{}
	seenLib := map[string]bool{}
	for _, c := range s.Comps {
		if c.Name == "" {
			return fmt.Errorf("core: compartment with empty name")
		}
		if seenComp[c.Name] {
			return fmt.Errorf("core: duplicate compartment %q", c.Name)
		}
		seenComp[c.Name] = true
		for _, lib := range c.Libs {
			if _, ok := cat.Lookup(lib); !ok {
				return fmt.Errorf("core: unknown library %q in compartment %q", lib, c.Name)
			}
			if seenLib[lib] {
				return fmt.Errorf("core: library %q placed in two compartments", lib)
			}
			seenLib[lib] = true
		}
	}
	if err := s.Costs.Validate(); err != nil && s.Costs.FreqHz != 0 {
		return err
	}
	return nil
}

// SpecFromConfig converts a parsed configuration file into an ImageSpec.
// Libraries not mentioned in the file land in the default compartment.
func SpecFromConfig(cfg *config.Config, cat *Catalog) (ImageSpec, error) {
	spec := ImageSpec{Mechanism: cfg.Mechanism()}

	// A "profile:" line threads the named machine's cost model into the
	// build, so a config file targeting the RISC-V port prices gates and
	// traps like the explorer's -profile flag does. Validation already
	// vetted the name; an unknown one still errors here for direct
	// SpecFromConfig callers.
	if cfg.Profile != "" {
		p, err := machine.ParseProfile(cfg.Profile)
		if err != nil {
			return ImageSpec{}, err
		}
		spec.Costs = p.Costs
	}

	switch cfg.Gate {
	case "light":
		spec.GateMode = isolation.GateLight
	case "full":
		spec.GateMode = isolation.GateFull
	}
	switch cfg.Sharing {
	case "heap":
		spec.Sharing = isolation.ShareHeap
	case "stack":
		spec.Sharing = isolation.ShareStack
	default:
		spec.Sharing = isolation.ShareDSS
	}

	def := cfg.DefaultCompartment()
	if def == nil {
		return ImageSpec{}, fmt.Errorf("core: configuration has no compartments")
	}

	// Default compartment first: it becomes compartment 0 and hosts the
	// TCB plus unassigned libraries.
	ordered := []config.Compartment{*def}
	for _, c := range cfg.Compartments {
		if c.Name != def.Name {
			ordered = append(ordered, c)
		}
	}

	assigned := map[string]string{}
	for _, a := range cfg.Libraries {
		assigned[a.Library] = a.Compartment
	}

	for _, c := range ordered {
		hs, err := harden.Parse(c.Hardening)
		if err != nil {
			return ImageSpec{}, err
		}
		cs := CompSpec{Name: c.Name, Hardening: hs}
		for _, a := range cfg.Libraries {
			if a.Compartment == c.Name {
				cs.Libs = append(cs.Libs, a.Library)
			}
		}
		if c.Name == def.Name {
			for _, lib := range cat.Names() {
				if _, ok := assigned[lib]; !ok {
					cs.Libs = append(cs.Libs, lib)
				}
			}
		}
		spec.Comps = append(spec.Comps, cs)
	}
	if err := spec.Validate(cat); err != nil {
		return ImageSpec{}, err
	}
	return spec, nil
}

// SharedKeyPages is a helper exposing the page count covered by the shared
// heap in reports.
func pagesBytes(pages int) uintptr { return uintptr(pages) * mem.PageSize }
