package core

import (
	"fmt"
	"strings"

	"flexos/internal/harden"
	"flexos/internal/isolation"
	"flexos/internal/machine"
	"flexos/internal/mem"
	"flexos/internal/sched"
)

// CompRT is a compartment of a built image: the isolation-level
// compartment plus its libraries, hardening, allocator and section layout.
type CompRT struct {
	*isolation.Compartment
	Hardening harden.Set
	libHard   map[string]harden.Set
	Libs      []*Component

	// Heap is the compartment's private allocator (KASan-wrapped when
	// the compartment enables kasan).
	Heap mem.Allocator

	// StaticBase/StaticSize delimit the compartment's private data,
	// rodata and bss sections, protected with the compartment's key by
	// the boot code (§4.1 "Data Ownership").
	StaticBase, StaticSize uintptr
	// HeapBase is the start of the compartment's heap arena.
	HeapBase uintptr
}

// staticPagesPerComp sizes the simulated private sections.
const staticPagesPerComp = 4

// Image is a built FlexOS system: the output of the toolchain for one
// safety configuration. It owns the simulated machine, so building two
// images gives two independent, deterministic systems.
type Image struct {
	Spec    ImageSpec
	Catalog *Catalog

	Mach    *machine.Machine
	Sched   *sched.Scheduler
	AS      *mem.AddrSpace
	Backend isolation.Backend

	comps  []*CompRT
	byLib  map[string]*CompRT
	byName map[string]*CompRT
	gates  map[[2]sched.CompID]*boundGate

	sharedHeap    mem.Allocator
	sharedVars    map[string]uintptr
	sharedVarKeys map[string]mem.Key
	restricted    map[mem.Key]*mem.Bump

	stackCursor, stackEnd uintptr

	crossings uint64
	dssBytes  uintptr
	trace     *Trace
}

// Build runs the build-time instantiation: compartment creation, backend
// initialization, section/heap/stack layout ("linker script generation"),
// gate binding ("source transformations"), hardening instrumentation, and
// shared-variable placement.
func Build(cat *Catalog, spec ImageSpec) (*Image, error) {
	spec = spec.normalized()
	if err := spec.Validate(cat); err != nil {
		return nil, err
	}
	if err := spec.Costs.Validate(); err != nil {
		return nil, err
	}

	mach := machine.New(spec.Costs)
	img := &Image{
		Spec:          spec,
		Catalog:       cat,
		Mach:          mach,
		Sched:         sched.New(mach),
		AS:            mem.NewAddrSpace("flexos", spec.MemBytes, mach),
		byLib:         make(map[string]*CompRT),
		byName:        make(map[string]*CompRT),
		gates:         make(map[[2]sched.CompID]*boundGate),
		sharedVars:    make(map[string]uintptr),
		sharedVarKeys: make(map[string]mem.Key),
		restricted:    make(map[mem.Key]*mem.Bump),
	}

	// 1. Create compartments and register entry points (the gate
	// insertion step: the static call graph determines which symbols can
	// be entered from outside).
	for i, cs := range spec.Comps {
		iso := &isolation.Compartment{ID: sched.CompID(i), Name: cs.Name}
		rt := &CompRT{Compartment: iso, Hardening: cs.Hardening, libHard: cs.LibHardening}
		for _, libName := range cs.Libs {
			comp, _ := cat.Lookup(libName)
			rt.Libs = append(rt.Libs, comp)
			img.byLib[libName] = rt
			for _, fname := range comp.FuncNames() {
				f := comp.Funcs[fname]
				if f.EntryPoint {
					iso.AddEntryPoint(libName + "." + fname)
				}
			}
		}
		img.comps = append(img.comps, rt)
		img.byName[cs.Name] = rt
	}

	// 2. Initialize the isolation backend (key / VM assignment, hooks).
	backend, err := isolation.ForName(spec.Mechanism)
	if err != nil {
		return nil, err
	}
	sys := &isolation.System{Mach: mach, Sched: img.Sched, AS: img.AS}
	for _, c := range img.comps {
		sys.Comps = append(sys.Comps, c.Compartment)
	}
	if err := backend.Init(sys); err != nil {
		return nil, err
	}
	img.Backend = backend

	// 3. Layout: static sections and heaps, protected with each
	// compartment's key at "boot time" (§4.1).
	cursor := uintptr(0)
	heapBytes := pagesBytes(spec.HeapPages)
	for _, c := range img.comps {
		c.StaticBase, c.StaticSize = cursor, staticPagesPerComp*mem.PageSize
		if err := img.AS.SetKeyRange(c.StaticBase, c.StaticSize, c.Key); err != nil {
			return nil, err
		}
		cursor += c.StaticSize

		c.HeapBase = cursor
		arena, err := mem.NewArena(img.AS, cursor, heapBytes)
		if err != nil {
			return nil, err
		}
		if err := arena.SetKey(c.Key); err != nil {
			return nil, err
		}
		var heap mem.Allocator = mem.NewTLSF(arena, mach)
		kasan := c.Hardening.Has(harden.KASan)
		for _, hs := range c.libHard {
			kasan = kasan || hs.Has(harden.KASan)
		}
		if kasan {
			heap = mem.NewKASanAllocator(heap, img.AS, mach)
		}
		c.Heap = heap
		c.Compartment.Heap = heap
		cursor += heapBytes
	}

	// 4. Shared communication heap (one shared domain; §4.1 notes one
	// shared heap is not a fundamental restriction).
	sharedArena, err := mem.NewArena(img.AS, cursor, heapBytes)
	if err != nil {
		return nil, err
	}
	if err := sharedArena.SetKey(mem.KeyShared); err != nil {
		return nil, err
	}
	img.sharedHeap = mem.NewTLSF(sharedArena, mach)
	cursor += heapBytes
	for _, c := range img.comps {
		c.Compartment.SharedHeap = img.sharedHeap
	}

	// 5. Stack region: the rest of memory.
	img.stackCursor, img.stackEnd = cursor, uintptr(spec.MemBytes)

	// 6. Bind gates for every compartment pair — the build-time
	// replacement of abstract gates (Fig. 3 step 3/3').
	for _, from := range img.comps {
		for _, to := range img.comps {
			g, err := backend.Gate(from.ID, to.ID, spec.GateMode)
			if err != nil {
				return nil, err
			}
			img.gates[[2]sched.CompID{from.ID, to.ID}] = &boundGate{
				Gate: g, img: img,
				from: from.ID, to: to.ID,
				cross: from.ID != to.ID,
			}
		}
	}

	// 7. Place __shared annotations. Whitelisted variables ("shared with
	// these libraries", §3.1) go to a restricted domain when the backend
	// offers one; variables whose whole whitelist lives in the owner's
	// compartment stay private; everything else lands in the global
	// shared domain.
	for _, c := range img.comps {
		for _, comp := range c.Libs {
			for _, sv := range comp.Shared {
				addr, key, err := img.placeSharedVar(c, comp.Name, sv)
				if err != nil {
					return nil, fmt.Errorf("core: placing shared var %s.%s: %w", comp.Name, sv.Name, err)
				}
				img.sharedVars[comp.Name+"."+sv.Name] = addr
				img.sharedVarKeys[comp.Name+"."+sv.Name] = key
			}
		}
	}
	return img, nil
}

// restrictedArenaPages sizes each restricted shared domain's arena.
const restrictedArenaPages = 16

// placeSharedVar decides the protection domain of one annotation and
// allocates it there. It returns the address and the key of the domain.
func (img *Image) placeSharedVar(owner *CompRT, lib string, sv SharedVar) (uintptr, mem.Key, error) {
	size := sv.Size
	if size <= 0 {
		size = 8
	}
	// Resolve the whitelist to compartments.
	group := map[sched.CompID]bool{owner.ID: true}
	resolved := len(sv.With) > 0
	for _, peer := range sv.With {
		pc, ok := img.byLib[peer]
		if !ok {
			resolved = false
			break
		}
		group[pc.ID] = true
	}
	if resolved && len(group) == 1 {
		// Whole whitelist inside the owner's compartment: the variable
		// can stay private (zero sharing).
		addr, err := owner.Heap.Alloc(size)
		return addr, owner.Key, err
	}
	if resolved {
		if rs, ok := img.Backend.(isolation.RestrictedSharer); ok {
			ids := make([]sched.CompID, 0, len(group))
			for id := range group {
				ids = append(ids, id)
			}
			if key, ok := rs.RestrictedDomain(ids); ok {
				addr, err := img.restrictedAlloc(key, size)
				return addr, key, err
			}
		}
	}
	// Fallback: the global shared domain.
	addr, err := img.sharedHeap.Alloc(size)
	return addr, mem.KeyShared, err
}

// restrictedAlloc allocates from the arena backing a restricted shared
// domain, carving the arena out of the stack region on first use.
func (img *Image) restrictedAlloc(key mem.Key, size int) (uintptr, error) {
	al, ok := img.restricted[key]
	if !ok {
		length := uintptr(restrictedArenaPages) * mem.PageSize
		if img.stackCursor+length > img.stackEnd {
			return 0, fmt.Errorf("core: out of memory for restricted domain %d", key)
		}
		base := img.stackCursor
		img.stackCursor += length
		if err := img.AS.SetKeyRange(base, length, key); err != nil {
			return 0, err
		}
		arena, err := mem.NewArena(img.AS, base, length)
		if err != nil {
			return 0, err
		}
		al = mem.NewBump(arena, img.Mach)
		img.restricted[key] = al
	}
	return al.Alloc(size)
}

// boundGate decorates a backend gate with crossing accounting and
// optional tracing.
type boundGate struct {
	isolation.Gate
	img      *Image
	from, to sched.CompID
	cross    bool
	calls    uint64
}

func (g *boundGate) Call(t *sched.Thread, entry string, fn func() error) error {
	g.calls++
	if !g.cross {
		return g.Gate.Call(t, entry, fn)
	}
	g.img.crossings++
	if tr := g.img.trace; tr != nil {
		start := g.img.Mach.Clock.Cycles()
		err := g.Gate.Call(t, entry, fn)
		tr.record(g.from, g.to, entry, start, g.Gate.Cost())
		return err
	}
	return g.Gate.Call(t, entry, fn)
}

// EffectiveHardening returns the hardening applied to one library: the
// compartment-wide set plus the library's own toggles (Figure 6's
// per-component hardening).
func (c *CompRT) EffectiveHardening(lib string) harden.Set {
	return c.Hardening.Union(c.libHard[lib])
}

// Comp returns the compartment hosting the given library.
func (img *Image) Comp(lib string) (*CompRT, bool) {
	c, ok := img.byLib[lib]
	return c, ok
}

// CompByName returns a compartment by its configuration name.
func (img *Image) CompByName(name string) (*CompRT, bool) {
	c, ok := img.byName[name]
	return c, ok
}

// Compartments returns the image's compartments in ID order.
func (img *Image) Compartments() []*CompRT { return img.comps }

// SharedHeap returns the communication heap.
func (img *Image) SharedHeap() mem.Allocator { return img.sharedHeap }

// SharedVarAddr returns the shared-domain address the builder assigned to
// a __shared annotation.
func (img *Image) SharedVarAddr(lib, name string) (uintptr, bool) {
	a, ok := img.sharedVars[lib+"."+name]
	return a, ok
}

// SharedVarKey returns the protection key of the domain a __shared
// annotation was placed in: the owner's key (whitelist fully local), a
// restricted pairwise key, or mem.KeyShared.
func (img *Image) SharedVarKey(lib, name string) (mem.Key, bool) {
	k, ok := img.sharedVarKeys[lib+"."+name]
	return k, ok
}

// RestrictedDomains returns how many restricted shared domains the image
// uses (report/test hook).
func (img *Image) RestrictedDomains() int { return len(img.restricted) }

// Crossings returns the number of cross-compartment gate transitions the
// image has performed.
func (img *Image) Crossings() uint64 { return img.crossings }

// DSSBytes returns the extra memory consumed by Data Shadow Stacks (the
// "stacks are twice as large" cost of §4.1).
func (img *Image) DSSBytes() uintptr { return img.dssBytes }

// gate returns the bound gate between two compartments.
func (img *Image) gate(from, to sched.CompID) *boundGate {
	return img.gates[[2]sched.CompID{from, to}]
}

// allocStackRegion carves a stack (plus DSS shadow if configured) out of
// the stack region, keying it according to the sharing strategy.
func (img *Image) allocStackRegion(c *CompRT) (*sched.Stack, error) {
	size := pagesBytes(img.Spec.StackPages)
	regionSize := size
	dss := img.Spec.Sharing == isolation.ShareDSS
	if dss {
		regionSize *= 2
	}
	if img.stackCursor+regionSize > img.stackEnd {
		return nil, fmt.Errorf("core: out of stack memory (image MemBytes too small)")
	}
	base := img.stackCursor
	img.stackCursor += regionSize

	switch img.Spec.Sharing {
	case isolation.ShareDSS:
		// Lower half private, upper half (the DSS) shared (Fig. 4).
		if err := img.AS.SetKeyRange(base, size, c.Key); err != nil {
			return nil, err
		}
		if err := img.AS.SetKeyRange(base+size, size, mem.KeyShared); err != nil {
			return nil, err
		}
		img.dssBytes += size
	case isolation.ShareStack:
		// Whole stack in the shared domain (lightweight configuration).
		if err := img.AS.SetKeyRange(base, size, mem.KeyShared); err != nil {
			return nil, err
		}
	default: // ShareHeap: private stack, shared locals go to the heap.
		if err := img.AS.SetKeyRange(base, size, c.Key); err != nil {
			return nil, err
		}
	}
	return sched.NewStack(img.AS, base, size, dss, img.Mach), nil
}

// Describe maps a simulated address to a human-readable description of
// the region it belongs to. It powers the porting workflow of §4.4: "run
// the program with a representative test case until it crashes due to
// memory access violations; crash reports point to the symbol that
// triggered the crash, at which point the developer can annotate it for
// sharing".
func (img *Image) Describe(addr uintptr) string {
	for name, a := range img.sharedVars {
		comp, _ := img.Catalog.Lookup(strings.SplitN(name, ".", 2)[0])
		var size int
		if comp != nil {
			for _, sv := range comp.Shared {
				if strings.HasSuffix(name, "."+sv.Name) {
					size = sv.Size
				}
			}
		}
		if size <= 0 {
			size = 8
		}
		if addr >= a && addr < a+uintptr(size) {
			return fmt.Sprintf("__shared variable %s", name)
		}
	}
	for _, c := range img.comps {
		if addr >= c.StaticBase && addr < c.StaticBase+c.StaticSize {
			return fmt.Sprintf("static section of compartment %s", c.Name)
		}
		if addr >= c.HeapBase && addr < c.HeapBase+pagesBytes(img.Spec.HeapPages) {
			return fmt.Sprintf("private heap of compartment %s (libs: %s)", c.Name, c.libNames())
		}
	}
	key := img.AS.KeyAt(addr)
	switch {
	case key == mem.KeyShared:
		return "shared communication domain"
	case addr >= img.stackEnd:
		return "unmapped"
	case addr >= img.stackCursor:
		return "unused stack region"
	default:
		for _, c := range img.comps {
			if c.Key == key {
				return fmt.Sprintf("stack/restricted region of compartment %s", c.Name)
			}
		}
	}
	return fmt.Sprintf("region with key %d", key)
}

// ExplainFault augments a protection fault with the region description —
// the simulated GDB-style crash report of §4.4.
func (img *Image) ExplainFault(err error) string {
	f, ok := err.(*mem.Fault)
	if !ok {
		return err.Error()
	}
	return fmt.Sprintf("%v\n  faulting region: %s\n  hint: if this data must legitimately cross compartments, annotate it __shared or pass a DSS/shared-heap buffer", f, img.Describe(f.Addr))
}

// libNames joins a compartment's library names.
func (c *CompRT) libNames() string {
	names := make([]string, 0, len(c.Libs))
	for _, l := range c.Libs {
		names = append(names, l.Name)
	}
	return strings.Join(names, ",")
}
