package core

import (
	"fmt"
	"sort"
	"strings"

	"flexos/internal/sched"
)

// CrossEvent records one cross-compartment gate transition. The paper
// emphasizes that FlexOS' build-time approach keeps the system easy to
// debug ("transformations can be visually inspected ... GDB and all
// usual debugging toolchains are supported", §3/§4.4); the tracer is this
// repository's equivalent: it makes every domain crossing observable
// with its entry point and cost.
type CrossEvent struct {
	// From and To are compartment names.
	From, To string
	// Entry is the gate entry symbol ("lwip.recv").
	Entry string
	// StartCycle is the simulated time the crossing began.
	StartCycle uint64
	// Cycles is the round-trip cost charged by the gate (excluding the
	// callee's own work).
	Cycles uint64
}

// Trace accumulates crossing events for one image.
type Trace struct {
	img    *Image
	Events []CrossEvent
	// Cap bounds the number of retained events (0 = unlimited); the
	// counter keeps counting past it.
	Cap   int
	total uint64
}

// EnableTrace switches crossing tracing on and returns the trace. It is
// idempotent: repeated calls return the same trace.
func (img *Image) EnableTrace(cap int) *Trace {
	if img.trace == nil {
		img.trace = &Trace{img: img, Cap: cap}
	}
	return img.trace
}

// record is called by boundGate on cross-compartment transitions.
func (tr *Trace) record(from, to sched.CompID, entry string, start, cycles uint64) {
	tr.total++
	if tr.Cap > 0 && len(tr.Events) >= tr.Cap {
		return
	}
	tr.Events = append(tr.Events, CrossEvent{
		From:       tr.img.comps[from].Name,
		To:         tr.img.comps[to].Name,
		Entry:      entry,
		StartCycle: start,
		Cycles:     cycles,
	})
}

// Total returns the number of crossings observed (including those beyond
// Cap).
func (tr *Trace) Total() uint64 { return tr.total }

// EdgeProfile aggregates crossings per (from, to, entry) edge — the
// communication profile that explains Figure 6's per-component isolation
// costs.
func (tr *Trace) EdgeProfile() map[string]uint64 {
	prof := make(map[string]uint64)
	for _, e := range tr.Events {
		prof[e.From+" -> "+e.Entry]++
	}
	return prof
}

// String renders the profile sorted by frequency.
func (tr *Trace) String() string {
	prof := tr.EdgeProfile()
	type row struct {
		edge string
		n    uint64
	}
	rows := make([]row, 0, len(prof))
	for e, n := range prof {
		rows = append(rows, row{e, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].edge < rows[j].edge
	})
	var b strings.Builder
	fmt.Fprintf(&b, "crossing profile (%d total):\n", tr.total)
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d  %s\n", r.n, r.edge)
	}
	return b.String()
}
