// Package core is FlexOS-Go's primary contribution: an OS image whose
// compartmentalization and protection profile is decided at build time.
//
// It mirrors the paper's pipeline (§3, Fig. 3):
//
//  1. Components ("micro-libraries") are written against an abstract
//     compartmentalization API: cross-library calls go through abstract
//     gates (Ctx.Call) and shared data is declared with annotations
//     (SharedVar, the __shared(...) marker).
//  2. At build time, Builder performs the "source transformations": it
//     binds every abstract gate to the configured isolation backend's
//     concrete gate (a plain call when caller and callee share a
//     compartment — zero overhead), lays out per-compartment sections,
//     heaps and stacks (the generated linker scripts), instantiates the
//     data sharing strategy (shared heap, DSS, or shared stacks), and
//     applies per-compartment software hardening by instrumenting the
//     compartment's allocator and gates.
//  3. The resulting Image runs workloads on the simulated machine,
//     charging the cycle clock for compute, gates and data movement.
package core

import (
	"fmt"
	"sort"
)

// SharedVar is a __shared annotation (§3.1): a variable of a component
// that other libraries may access. With lists the whitelisted peer
// libraries; an empty list means the global shared domain.
//
// The builder allocates annotated variables in the shared communication
// domain (shared heap) so cross-compartment access does not fault —
// exactly what the paper's build-time transformation does for MPK.
type SharedVar struct {
	Name string
	Size int
	With []string
}

// FuncImpl is the body of a component function. It runs inside the
// callee's protection domain: memory accesses made through ctx use the
// thread's switched PKRU. The returned value flows back through the gate.
type FuncImpl func(ctx *Ctx, args ...any) (any, error)

// Func is one entry in a component's interface.
type Func struct {
	// Name is the symbol, unique within the component.
	Name string
	// Work is the base compute cost in cycles charged per invocation
	// (before hardening multipliers). It models the function's own
	// instruction stream, which the simulation does not execute natively.
	Work uint64
	// Impl is the functional body; may be nil for pure-work functions.
	Impl FuncImpl
	// EntryPoint marks functions callable from other compartments. Gates
	// enforce this set (the hardcoded-gates CFI of §3.1/§4.1).
	EntryPoint bool
}

// Component is a micro-library in the Unikraft sense: the minimal
// granularity of isolation (P1). Components declare their functions,
// their shared-data annotations, and which other libraries they call
// (the static call graph the gate-insertion analysis of §3.1 derives).
type Component struct {
	// Name is the library name used in configuration files ("lwip",
	// "uksched", "libredis", ...).
	Name string
	// TCB marks trusted-computing-base components (boot, memory manager,
	// scheduler, backend runtime; §3.3). Multi-AS backends duplicate
	// them per VM.
	TCB bool
	// Verified marks formally verified components (§7 "Incremental
	// Verification": isolating a verified component preserves its proven
	// properties even when mixed with unverified code; the paper
	// formally verified a version of its scheduler with Dafny).
	Verified bool
	// Funcs is the component's interface.
	Funcs map[string]*Func
	// Shared lists the component's __shared annotations. Its length is
	// the "shared vars" column of Table 1.
	Shared []SharedVar
	// Imports are the libraries this component calls — the build-time
	// call graph used to report gate bindings.
	Imports []string
	// PatchAdd/PatchDel record the porting-effort patch size from the
	// paper's Table 1 (informational; reproduced by the Table 1 harness).
	PatchAdd, PatchDel int
}

// NewComponent returns an empty component.
func NewComponent(name string) *Component {
	return &Component{Name: name, Funcs: make(map[string]*Func)}
}

// AddFunc registers a function and returns the component for chaining.
func (c *Component) AddFunc(f *Func) *Component {
	if _, dup := c.Funcs[f.Name]; dup {
		panic(fmt.Sprintf("core: duplicate function %s.%s", c.Name, f.Name))
	}
	c.Funcs[f.Name] = f
	return c
}

// AddShared records a __shared annotation.
func (c *Component) AddShared(v SharedVar) *Component {
	c.Shared = append(c.Shared, v)
	return c
}

// Func looks up a function.
func (c *Component) Func(name string) (*Func, bool) {
	f, ok := c.Funcs[name]
	return f, ok
}

// FuncNames returns the sorted function list (deterministic reports).
func (c *Component) FuncNames() []string {
	names := make([]string, 0, len(c.Funcs))
	for n := range c.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Catalog is the set of available components an image can be built from —
// the analogue of the Unikraft library pool.
type Catalog struct {
	comps map[string]*Component
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{comps: make(map[string]*Component)}
}

// Register adds a component; duplicate names are an error.
func (cat *Catalog) Register(c *Component) error {
	if _, dup := cat.comps[c.Name]; dup {
		return fmt.Errorf("core: component %q already registered", c.Name)
	}
	cat.comps[c.Name] = c
	return nil
}

// MustRegister is Register that panics; used by component constructors in
// app packages where a duplicate is a programming error.
func (cat *Catalog) MustRegister(c *Component) {
	if err := cat.Register(c); err != nil {
		panic(err)
	}
}

// Lookup returns the named component.
func (cat *Catalog) Lookup(name string) (*Component, bool) {
	c, ok := cat.comps[name]
	return c, ok
}

// Names returns all registered component names, sorted.
func (cat *Catalog) Names() []string {
	names := make([]string, 0, len(cat.comps))
	for n := range cat.comps {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered components.
func (cat *Catalog) Len() int { return len(cat.comps) }
