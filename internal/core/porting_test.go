package core

import (
	"strings"
	"testing"

	"flexos/internal/isolation"
	"flexos/internal/mem"
)

// TestPortingWorkflow plays out §4.4's porting loop: run with gates
// inserted but data unannotated, crash on a memory access violation, let
// the crash report point at the offending region, annotate, succeed.
func TestPortingWorkflow(t *testing.T) {
	mkCatalog := func(annotated bool) *Catalog {
		cat := NewCatalog()
		boot := NewComponent("boot")
		boot.TCB = true
		cat.MustRegister(boot)

		// A freshly-ported library: its consumer passes a buffer in.
		lib := NewComponent("newlib2")
		lib.AddFunc(&Func{Name: "fill", Work: 40, EntryPoint: true,
			Impl: func(ctx *Ctx, args ...any) (any, error) {
				return nil, ctx.Write(args[0].(uintptr), []byte("data"))
			}})
		cat.MustRegister(lib)

		app := NewComponent("app")
		app.AddFunc(&Func{Name: "main", Work: 40, EntryPoint: true,
			Impl: func(ctx *Ctx, args ...any) (any, error) {
				var buf uintptr
				var err error
				if annotated {
					// After porting: the developer annotated the buffer
					// __shared, so it lives on the DSS.
					buf, err = ctx.StackAlloc(16, true)
				} else {
					// Before porting: plain private stack local.
					buf, err = ctx.StackAlloc(16, false)
				}
				if err != nil {
					return nil, err
				}
				return ctx.Call("newlib2", "fill", buf)
			}})
		cat.MustRegister(app)
		return cat
	}
	spec := ImageSpec{
		Mechanism: "intel-mpk",
		GateMode:  isolation.GateFull,
		Sharing:   isolation.ShareDSS,
		Comps: []CompSpec{
			{Name: "c0", Libs: []string{"boot", "app"}},
			{Name: "ported", Libs: []string{"newlib2"}},
		},
	}

	// Step 1: run the representative test case; it crashes.
	img, err := Build(mkCatalog(false), spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := img.NewContext("t", "app")
	_, err = ctx.Call("app", "main")
	if !mem.IsFault(err, mem.FaultKeyViolation) {
		t.Fatalf("unported run: got %v, want memory access violation", err)
	}

	// Step 2: the crash report points at the region to annotate.
	report := img.ExplainFault(err)
	if !strings.Contains(report, "compartment c0") {
		t.Fatalf("crash report does not identify the owner:\n%s", report)
	}
	if !strings.Contains(report, "__shared") {
		t.Fatalf("crash report lacks the annotation hint:\n%s", report)
	}

	// Step 3: annotate and re-run — success.
	img2, err := Build(mkCatalog(true), spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx2, _ := img2.NewContext("t", "app")
	if _, err := ctx2.Call("app", "main"); err != nil {
		t.Fatalf("annotated run failed: %v", err)
	}
}

func TestDescribeRegions(t *testing.T) {
	img := build(t, twoCompSpec("intel-mpk", isolation.GateFull, isolation.ShareDSS))
	// Shared annotation.
	addr, _ := img.SharedVarAddr("svc", "state")
	if got := img.Describe(addr); !strings.Contains(got, "svc.state") {
		t.Fatalf("Describe(shared var) = %q", got)
	}
	// Private heap.
	svcComp, _ := img.Comp("svc")
	p, _ := svcComp.Heap.Alloc(16)
	if got := img.Describe(p); !strings.Contains(got, "private heap of compartment comp1") {
		t.Fatalf("Describe(private heap) = %q", got)
	}
	// Shared heap.
	sh, _ := img.SharedHeap().Alloc(16)
	if got := img.Describe(sh); !strings.Contains(got, "shared communication domain") {
		t.Fatalf("Describe(shared heap) = %q", got)
	}
	// Static section.
	if got := img.Describe(svcComp.StaticBase); !strings.Contains(got, "static section") {
		t.Fatalf("Describe(static) = %q", got)
	}
	// Non-fault errors pass through ExplainFault unchanged.
	if got := img.ExplainFault(errFake{}); got != "fake" {
		t.Fatalf("ExplainFault(non-fault) = %q", got)
	}
}

type errFake struct{}

func (errFake) Error() string { return "fake" }
