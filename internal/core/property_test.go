package core

import (
	"testing"
	"testing/quick"

	"flexos/internal/harden"
	"flexos/internal/isolation"
)

// Property: the clock never moves backwards through any sequence of
// calls, allocations and stack operations.
func TestClockMonotoneProperty(t *testing.T) {
	img := build(t, twoCompSpec("intel-mpk", isolation.GateFull, isolation.ShareDSS))
	ctx, err := img.NewContext("t", "app")
	if err != nil {
		t.Fatal(err)
	}
	f := func(ops []uint8) bool {
		last := img.Mach.Clock.Cycles()
		for _, op := range ops {
			switch op % 4 {
			case 0:
				ctx.Call("svc", "ping")
			case 1:
				if p, err := ctx.AllocPrivate(int(op)%128 + 1); err == nil {
					ctx.FreePrivate(p)
				}
			case 2:
				if p, err := ctx.AllocShared(int(op)%128 + 1); err == nil {
					ctx.FreeShared(p)
				}
			case 3:
				ctx.StackAlloc(8, false)
			}
			now := img.Mach.Clock.Cycles()
			if now < last {
				return false
			}
			last = now
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: two identically-specified images produce identical cycle
// counts for identical call sequences (determinism, the property the
// whole evaluation rests on).
func TestImageDeterminismProperty(t *testing.T) {
	f := func(seed []uint8) bool {
		run := func() uint64 {
			img := build(t, twoCompSpec("intel-mpk", isolation.GateFull, isolation.ShareDSS))
			ctx, err := img.NewContext("t", "app")
			if err != nil {
				return 0
			}
			for _, s := range seed {
				if s%2 == 0 {
					ctx.Call("svc", "ping")
				} else {
					ctx.Call("app", "main")
				}
			}
			return img.Mach.Clock.Cycles()
		}
		return run() == run()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: hardening a compartment never speeds it up, across random
// hardening sets (the monotonicity the poset assumes, now verified on
// the real runtime rather than the multiplier table).
func TestHardeningNeverSpeedsUpProperty(t *testing.T) {
	base := func(hs harden.Set) uint64 {
		spec := twoCompSpec("intel-mpk", isolation.GateFull, isolation.ShareDSS)
		spec.Comps[1].Hardening = hs
		img := build(t, spec)
		ctx, err := img.NewContext("t", "app")
		if err != nil {
			t.Fatal(err)
		}
		return img.Mach.Clock.Span(func() {
			for i := 0; i < 10; i++ {
				ctx.Call("svc", "ping")
			}
		})
	}
	plain := base(harden.Set{})
	f := func(mask uint8) bool {
		hs := harden.Set{}
		if mask&1 != 0 {
			hs = hs.With(harden.CFI)
		}
		if mask&2 != 0 {
			hs = hs.With(harden.KASan)
		}
		if mask&4 != 0 {
			hs = hs.With(harden.UBSan)
		}
		if mask&8 != 0 {
			hs = hs.With(harden.StackProtector)
		}
		return base(hs) >= plain
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 16}); err != nil {
		t.Fatal(err)
	}
}

// Property: the crossing counter equals the number of cross-compartment
// calls issued, for any call sequence.
func TestCrossingAccountingProperty(t *testing.T) {
	f := func(seq []bool) bool {
		img := build(t, twoCompSpec("intel-mpk", isolation.GateFull, isolation.ShareDSS))
		ctx, err := img.NewContext("t", "app")
		if err != nil {
			return false
		}
		want := uint64(0)
		for _, cross := range seq {
			if cross {
				ctx.Call("svc", "ping") // app comp -> svc comp
				want++
			} else {
				ctx.Call("app", "main") // same comp entry, but main calls svc
				want++
			}
		}
		return img.Crossings() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
