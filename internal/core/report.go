package core

import (
	"fmt"
	"sort"
	"strings"

	"flexos/internal/isolation"
)

// CompReport describes one compartment in an image report.
type CompReport struct {
	Name      string
	Key       uint8
	Libs      []string
	Hardening string
	Allocator string
}

// GateBinding records one build-time gate instantiation — the output of
// the "source transformation" step, inspectable like the paper's
// Coccinelle diffs.
type GateBinding struct {
	From, To string
	Gate     string
	Cost     uint64
	// Calls counts crossings performed through this binding so far,
	// so reports taken after a run double as communication profiles.
	Calls uint64
}

// SharedVarReport is one __shared annotation and its placement.
type SharedVarReport struct {
	Lib, Name string
	Size      int
	Addr      uintptr
	// Key is the protection domain the builder chose: the owner's key
	// (whitelist fully local), a restricted pairwise key, or the global
	// shared key.
	Key  uint8
	With []string
}

// TableOneRow reproduces a row of the paper's Table 1 (porting effort).
type TableOneRow struct {
	Lib        string
	PatchAdd   int
	PatchDel   int
	SharedVars int
}

// Report is a full description of a built image: what the
// cmd/flexos-build tool prints and what tests assert on.
type Report struct {
	Mechanism string
	GateMode  string
	Sharing   string
	Comps     []CompReport
	Gates     []GateBinding
	Backend   isolation.ImageStats
	DSSBytes  uintptr
	Shared    []SharedVarReport
	TCBLibs   []string
	// VerifiedLibs lists formally verified components and whether each
	// is isolated from unverified code (its compartment contains only
	// verified components), which is when its proofs keep holding (§7).
	VerifiedLibs []VerifiedReport
}

// VerifiedReport is one verified component's isolation status.
type VerifiedReport struct {
	Lib      string
	Comp     string
	Isolated bool
}

// Report builds the image's report.
func (img *Image) Report() Report {
	r := Report{
		Mechanism: img.Spec.Mechanism,
		GateMode:  img.Spec.GateMode.String(),
		Sharing:   img.Spec.Sharing.String(),
		Backend:   img.Backend.Stats(),
		DSSBytes:  img.dssBytes,
	}
	for _, c := range img.comps {
		cr := CompReport{
			Name:      c.Name,
			Key:       uint8(c.Key),
			Hardening: c.Hardening.String(),
		}
		if c.Heap != nil {
			cr.Allocator = c.Heap.Name()
		}
		allVerified := true
		for _, lib := range c.Libs {
			if !lib.Verified {
				allVerified = false
			}
		}
		for _, lib := range c.Libs {
			cr.Libs = append(cr.Libs, lib.Name)
			if lib.TCB {
				r.TCBLibs = append(r.TCBLibs, lib.Name)
			}
			if lib.Verified {
				r.VerifiedLibs = append(r.VerifiedLibs, VerifiedReport{
					Lib: lib.Name, Comp: c.Name, Isolated: allVerified,
				})
			}
			for _, sv := range lib.Shared {
				addr, _ := img.SharedVarAddr(lib.Name, sv.Name)
				key, _ := img.SharedVarKey(lib.Name, sv.Name)
				r.Shared = append(r.Shared, SharedVarReport{
					Lib: lib.Name, Name: sv.Name, Size: sv.Size, Addr: addr,
					Key: uint8(key), With: sv.With,
				})
			}
		}
		sort.Strings(cr.Libs)
		r.Comps = append(r.Comps, cr)
	}
	sort.Strings(r.TCBLibs)
	for key, g := range img.gates {
		from, to := key[0], key[1]
		if from == to {
			continue
		}
		r.Gates = append(r.Gates, GateBinding{
			From: img.comps[from].Name, To: img.comps[to].Name,
			Gate: g.Gate.String(), Cost: g.Gate.Cost(), Calls: g.calls,
		})
	}
	sort.Slice(r.Gates, func(i, j int) bool {
		if r.Gates[i].From != r.Gates[j].From {
			return r.Gates[i].From < r.Gates[j].From
		}
		return r.Gates[i].To < r.Gates[j].To
	})
	return r
}

// TableOne reproduces Table 1 for the components in the catalog that
// carry porting-effort metadata.
func TableOne(cat *Catalog) []TableOneRow {
	var rows []TableOneRow
	for _, name := range cat.Names() {
		c, _ := cat.Lookup(name)
		if c.PatchAdd == 0 && c.PatchDel == 0 && len(c.Shared) == 0 {
			continue
		}
		rows = append(rows, TableOneRow{
			Lib: name, PatchAdd: c.PatchAdd, PatchDel: c.PatchDel, SharedVars: len(c.Shared),
		})
	}
	return rows
}

// String renders the report as text.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FlexOS image: mechanism=%s gate=%s sharing=%s\n", r.Mechanism, r.GateMode, r.Sharing)
	fmt.Fprintf(&b, "backend: VMs=%d TCB copies=%d TCB ~%d LoC\n", r.Backend.VMs, r.Backend.TCBCopies, r.Backend.TCBLoC)
	if r.DSSBytes > 0 {
		fmt.Fprintf(&b, "DSS space overhead: %d KiB\n", r.DSSBytes/1024)
	}
	for _, c := range r.Comps {
		fmt.Fprintf(&b, "compartment %-10s key=%-2d hardening=%-24s libs=%s\n",
			c.Name, c.Key, c.Hardening, strings.Join(c.Libs, ","))
	}
	for _, g := range r.Gates {
		fmt.Fprintf(&b, "gate %-10s -> %-10s %-12s %4d cycles  %8d calls\n", g.From, g.To, g.Gate, g.Cost, g.Calls)
	}
	if len(r.TCBLibs) > 0 {
		fmt.Fprintf(&b, "TCB libraries: %s\n", strings.Join(r.TCBLibs, ","))
	}
	fmt.Fprintf(&b, "shared variables: %d\n", len(r.Shared))
	return b.String()
}
