package core

import (
	"testing"

	"flexos/internal/isolation"
	"flexos/internal/mem"
)

// restrictedCatalog builds three components: a producer sharing one
// variable with a whitelisted consumer only, one variable globally, and
// one variable whose whitelist stays inside its own compartment.
func restrictedCatalog(t *testing.T) *Catalog {
	t.Helper()
	cat := NewCatalog()
	boot := NewComponent("boot")
	boot.TCB = true
	cat.MustRegister(boot)

	producer := NewComponent("producer")
	producer.AddShared(SharedVar{Name: "pairwise", Size: 32, With: []string{"consumer"}})
	producer.AddShared(SharedVar{Name: "global", Size: 32})
	producer.AddShared(SharedVar{Name: "local", Size: 32, With: []string{"sibling"}})
	producer.AddFunc(&Func{Name: "touch", Work: 10, EntryPoint: true,
		Impl: func(ctx *Ctx, args ...any) (any, error) {
			addr := args[0].(uintptr)
			return nil, ctx.Write(addr, []byte{1})
		}})
	cat.MustRegister(producer)

	sibling := NewComponent("sibling")
	sibling.AddFunc(&Func{Name: "noop", Work: 1, EntryPoint: true})
	cat.MustRegister(sibling)

	consumer := NewComponent("consumer")
	consumer.AddFunc(&Func{Name: "read_var", Work: 10, EntryPoint: true,
		Impl: func(ctx *Ctx, args ...any) (any, error) {
			addr := args[0].(uintptr)
			buf := make([]byte, 1)
			return buf[0], ctx.Read(addr, buf)
		}})
	cat.MustRegister(consumer)

	intruder := NewComponent("intruder")
	intruder.AddFunc(&Func{Name: "read_var", Work: 10, EntryPoint: true,
		Impl: func(ctx *Ctx, args ...any) (any, error) {
			addr := args[0].(uintptr)
			buf := make([]byte, 1)
			return buf[0], ctx.Read(addr, buf)
		}})
	cat.MustRegister(intruder)
	return cat
}

func restrictedSpec() ImageSpec {
	return ImageSpec{
		Mechanism: "intel-mpk",
		GateMode:  isolation.GateFull,
		Sharing:   isolation.ShareDSS,
		Comps: []CompSpec{
			{Name: "c0", Libs: []string{"boot", "producer", "sibling"}},
			{Name: "c1", Libs: []string{"consumer"}},
			{Name: "c2", Libs: []string{"intruder"}},
		},
	}
}

func TestRestrictedDomainPlacement(t *testing.T) {
	img, err := Build(restrictedCatalog(t), restrictedSpec())
	if err != nil {
		t.Fatal(err)
	}
	// The pairwise var lives under a restricted key: neither the
	// owner's key nor the global shared key.
	pairKey, ok := img.SharedVarKey("producer", "pairwise")
	if !ok {
		t.Fatal("pairwise var not placed")
	}
	prodComp, _ := img.Comp("producer")
	if pairKey == mem.KeyShared || pairKey == prodComp.Key {
		t.Fatalf("pairwise var key = %d, want a restricted key", pairKey)
	}
	// The unwhitelisted var falls back to the global shared domain.
	if k, _ := img.SharedVarKey("producer", "global"); k != mem.KeyShared {
		t.Fatalf("global var key = %d, want shared", k)
	}
	// The fully-local whitelist stays compartment private.
	if k, _ := img.SharedVarKey("producer", "local"); k != prodComp.Key {
		t.Fatalf("local var key = %d, want owner key %d", k, prodComp.Key)
	}
	if img.RestrictedDomains() != 1 {
		t.Fatalf("restricted domains = %d, want 1", img.RestrictedDomains())
	}
}

func TestRestrictedDomainEnforcement(t *testing.T) {
	img, err := Build(restrictedCatalog(t), restrictedSpec())
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := img.SharedVarAddr("producer", "pairwise")
	ctx, err := img.NewContext("t", "producer")
	if err != nil {
		t.Fatal(err)
	}
	// Producer can write it.
	if _, err := ctx.Call("producer", "touch", addr); err != nil {
		t.Fatalf("producer write failed: %v", err)
	}
	// Whitelisted consumer (other compartment) can read it.
	if _, err := ctx.Call("consumer", "read_var", addr); err != nil {
		t.Fatalf("whitelisted consumer read failed: %v", err)
	}
	// The third compartment cannot — that is the whole point of
	// restricted domains over one global shared heap.
	_, err = ctx.Call("intruder", "read_var", addr)
	if !mem.IsFault(err, mem.FaultKeyViolation) {
		t.Fatalf("intruder read: got %v, want key violation", err)
	}
	// The global var, by contrast, is readable by everyone.
	gaddr, _ := img.SharedVarAddr("producer", "global")
	if _, err := ctx.Call("intruder", "read_var", gaddr); err != nil {
		t.Fatalf("global var read failed: %v", err)
	}
}

func TestRestrictedDomainReuseAndExhaustion(t *testing.T) {
	// Same whitelist group twice -> same key; and with no keys left the
	// builder falls back to the global shared domain instead of failing.
	cat := NewCatalog()
	boot := NewComponent("boot")
	boot.TCB = true
	cat.MustRegister(boot)
	a := NewComponent("a")
	a.AddShared(SharedVar{Name: "v1", Size: 8, With: []string{"b"}})
	a.AddShared(SharedVar{Name: "v2", Size: 8, With: []string{"b"}})
	a.AddFunc(&Func{Name: "noop", Work: 1, EntryPoint: true})
	cat.MustRegister(a)
	b := NewComponent("b")
	b.AddFunc(&Func{Name: "noop", Work: 1, EntryPoint: true})
	cat.MustRegister(b)

	img, err := Build(cat, ImageSpec{
		Mechanism: "intel-mpk",
		Comps: []CompSpec{
			{Name: "c0", Libs: []string{"boot", "a"}},
			{Name: "c1", Libs: []string{"b"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	k1, _ := img.SharedVarKey("a", "v1")
	k2, _ := img.SharedVarKey("a", "v2")
	if k1 != k2 {
		t.Fatalf("same group produced two keys: %d vs %d", k1, k2)
	}
	if img.RestrictedDomains() != 1 {
		t.Fatalf("restricted domains = %d, want 1", img.RestrictedDomains())
	}
}

func TestRestrictedFallbackWithoutSupportingBackend(t *testing.T) {
	// EPT does not implement RestrictedSharer; whitelisted vars fall
	// back to the global shared window.
	spec := restrictedSpec()
	spec.Mechanism = "vm-ept"
	spec.GateMode = isolation.GateDefault
	img, err := Build(restrictedCatalog(t), spec)
	if err != nil {
		t.Fatal(err)
	}
	if k, _ := img.SharedVarKey("producer", "pairwise"); k != mem.KeyShared {
		t.Fatalf("EPT pairwise var key = %d, want global shared", k)
	}
	if img.RestrictedDomains() != 0 {
		t.Fatal("EPT image should have no restricted domains")
	}
}
