package core

import (
	"strings"
	"testing"

	"flexos/internal/isolation"
)

func TestTraceRecordsCrossings(t *testing.T) {
	img := build(t, twoCompSpec("intel-mpk", isolation.GateFull, isolation.ShareDSS))
	tr := img.EnableTrace(0)
	ctx, err := img.NewContext("t", "app")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := ctx.Call("svc", "ping"); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Total() != 3 {
		t.Fatalf("trace total = %d, want 3", tr.Total())
	}
	if len(tr.Events) != 3 {
		t.Fatalf("events = %d", len(tr.Events))
	}
	e := tr.Events[0]
	if e.From != "comp0" || e.To != "comp1" || e.Entry != "svc.ping" {
		t.Fatalf("event = %+v", e)
	}
	if e.Cycles != 108 {
		t.Fatalf("event cost = %d, want 108", e.Cycles)
	}
	// Cycle stamps must be monotone.
	if tr.Events[1].StartCycle <= tr.Events[0].StartCycle {
		t.Fatal("event timestamps not monotone")
	}
	if !strings.Contains(tr.String(), "comp0 -> svc.ping") {
		t.Fatalf("profile missing edge:\n%s", tr.String())
	}
}

func TestTraceSameCompartmentCallsInvisible(t *testing.T) {
	img := build(t, ImageSpec{Mechanism: "intel-mpk", Comps: []CompSpec{
		{Name: "c0", Libs: []string{"boot", "app", "svc"}},
	}})
	tr := img.EnableTrace(0)
	ctx, _ := img.NewContext("t", "app")
	ctx.Call("svc", "ping")
	if tr.Total() != 0 {
		t.Fatal("same-compartment calls must not appear in the crossing trace")
	}
}

func TestTraceCapBoundsMemory(t *testing.T) {
	img := build(t, twoCompSpec("intel-mpk", isolation.GateFull, isolation.ShareDSS))
	tr := img.EnableTrace(2)
	ctx, _ := img.NewContext("t", "app")
	for i := 0; i < 5; i++ {
		ctx.Call("svc", "ping")
	}
	if len(tr.Events) != 2 {
		t.Fatalf("capped events = %d, want 2", len(tr.Events))
	}
	if tr.Total() != 5 {
		t.Fatalf("total = %d, want 5 (counting continues past cap)", tr.Total())
	}
}

func TestTraceIdempotentEnable(t *testing.T) {
	img := build(t, twoCompSpec("intel-mpk", 0, 0))
	a := img.EnableTrace(0)
	b := img.EnableTrace(10)
	if a != b {
		t.Fatal("EnableTrace must be idempotent")
	}
}
