package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// healthzStub is a worker that only speaks /healthz, with a switch.
func healthzStub(t *testing.T, healthy *atomic.Bool) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			http.Error(w, "sick", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestProbeStrikesDeadAndResurrects(t *testing.T) {
	var aHealthy, bHealthy atomic.Bool
	aHealthy.Store(true)
	a := healthzStub(t, &aHealthy)
	b := healthzStub(t, &bHealthy) // starts sick

	c := New(Config{HealthStrikes: 2, HealthTimeout: time.Second})
	c.Join(a.URL)
	c.Join(b.URL)
	ctx := context.Background()

	// One strike is not death: the counter debounces a single blip.
	c.probeAll(ctx)
	st := c.Stats()
	if st.Alive != 2 {
		t.Fatalf("one failed probe killed a member: %+v", st.Workers)
	}
	// The second consecutive strike is.
	c.probeAll(ctx)
	if st := c.Stats(); st.Alive != 1 {
		t.Fatalf("two strikes did not kill: %+v", st.Workers)
	}
	if ring := c.members.liveRing(); ring.Len() != 1 || ring.Owner("k") != a.URL {
		t.Fatalf("dead member still routable: %v", ring.Sequence("k"))
	}

	// Recovery resurrects without a re-join.
	bHealthy.Store(true)
	c.probeAll(ctx)
	if st := c.Stats(); st.Alive != 2 {
		t.Fatalf("passing probe did not resurrect: %+v", st.Workers)
	}

	// A healthy member's strike count resets: two blips separated by a
	// passing probe never accumulate to death.
	aHealthy.Store(false)
	c.probeAll(ctx)
	aHealthy.Store(true)
	c.probeAll(ctx)
	aHealthy.Store(false)
	c.probeAll(ctx)
	if st := c.Stats(); st.Alive != 2 {
		t.Fatalf("non-consecutive strikes killed a member: %+v", st.Workers)
	}
}

func TestStartHealthLoop(t *testing.T) {
	var healthy atomic.Bool
	w := healthzStub(t, &healthy) // sick from the start
	c := New(Config{HealthStrikes: 1, HealthInterval: 10 * time.Millisecond, HealthTimeout: time.Second})
	c.Join(w.URL)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.StartHealth(ctx)

	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Alive != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("health loop never struck the sick worker: %+v", c.Stats().Workers)
		}
		time.Sleep(10 * time.Millisecond)
	}
	healthy.Store(true)
	for c.Stats().Alive != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("health loop never resurrected: %+v", c.Stats().Workers)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestAnnounceHeartbeat(t *testing.T) {
	var joins atomic.Int64
	c := New(Config{})
	coord := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		joins.Add(1)
		c.Join("http://worker:1")
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer coord.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		Announce(ctx, coord.URL, "http://worker:1", 10*time.Millisecond, nil)
	}()

	// The immediate announcement plus at least one heartbeat re-join.
	deadline := time.Now().Add(5 * time.Second)
	for joins.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("announce heartbeat never repeated: %d joins", joins.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done
	if len(c.Stats().Workers) != 1 {
		t.Fatalf("membership after announce: %+v", c.Stats().Workers)
	}
}

func TestAnnounceReportsErrors(t *testing.T) {
	var errs atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Nothing listens here; every announcement fails.
		Announce(ctx, "http://127.0.0.1:1", "http://worker:1", 10*time.Millisecond, func(error) { errs.Add(1) })
	}()
	deadline := time.Now().Add(5 * time.Second)
	for errs.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("announce never surfaced its failure")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done
}
