package cluster

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("canonical-key-%d", i)
	}
	return out
}

func TestRingDeterministicAndOrderInsensitive(t *testing.T) {
	a := NewRing([]string{"http://w1", "http://w2", "http://w3"}, 0)
	b := NewRing([]string{"http://w3", "http://w1", "http://w2"}, 0)
	for _, k := range keys(200) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %q depends on member order: %q vs %q", k, a.Owner(k), b.Owner(k))
		}
	}
}

func TestRingBalance(t *testing.T) {
	members := []string{"http://w1", "http://w2", "http://w3"}
	r := NewRing(members, 0)
	counts := make(map[string]int)
	n := 3000
	for _, k := range keys(n) {
		counts[r.Owner(k)]++
	}
	for _, m := range members {
		// Virtual nodes keep the split within a loose factor of fair.
		if c := counts[m]; c < n/9 || c > n*2/3 {
			t.Fatalf("member %s owns %d of %d keys; ring badly unbalanced: %v", m, c, n, counts)
		}
	}
}

// TestRingStabilityUnderRemoval: removing one member must move only
// the keys it owned — consistent hashing's defining property, and
// what keeps fleet-wide coalescing warm across membership churn.
func TestRingStabilityUnderRemoval(t *testing.T) {
	full := NewRing([]string{"http://w1", "http://w2", "http://w3"}, 0)
	reduced := NewRing([]string{"http://w1", "http://w3"}, 0)
	for _, k := range keys(500) {
		before := full.Owner(k)
		after := reduced.Owner(k)
		if before != "http://w2" && after != before {
			t.Fatalf("key %q moved from surviving %q to %q when an unrelated member left", k, before, after)
		}
		if before == "http://w2" && after == "http://w2" {
			t.Fatalf("key %q still owned by the removed member", k)
		}
	}
}

func TestRingSequenceCoversAllMembersOnceOwnerFirst(t *testing.T) {
	members := []string{"http://w1", "http://w2", "http://w3", "http://w4"}
	r := NewRing(members, 0)
	for _, k := range keys(100) {
		seq := r.Sequence(k)
		if len(seq) != len(members) {
			t.Fatalf("sequence for %q has %d members, want %d: %v", k, len(seq), len(members), seq)
		}
		if seq[0] != r.Owner(k) {
			t.Fatalf("sequence for %q starts at %q, owner is %q", k, seq[0], r.Owner(k))
		}
		seen := make(map[string]bool)
		for _, m := range seq {
			if seen[m] {
				t.Fatalf("sequence for %q repeats %q: %v", k, m, seq)
			}
			seen[m] = true
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if r.Owner("k") != "" || r.Sequence("k") != nil || r.Len() != 0 {
		t.Fatal("empty ring must own nothing")
	}
}
