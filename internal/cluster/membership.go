package cluster

import (
	"context"
	"sort"
	"sync"
	"time"

	"flexos/internal/cli"
)

// member is one registered worker and its dispatch bookkeeping.
type member struct {
	url          string
	alive        bool
	strikes      int // consecutive failed probes/dispatches
	dispatched   int64
	redispatched int64
	failures     int64
}

// membership is the coordinator's worker registry and failure
// detector: workers join (and re-join, idempotently) over HTTP, a
// background loop probes /healthz, and dispatch failures strike a
// worker immediately so one dead node does not eat a timeout per
// shard. A dead member stays registered — a passing probe or a fresh
// join resurrects it.
type membership struct {
	mu      sync.Mutex
	members map[string]*member
	ring    *Ring // over live members; nil until rebuilt
	strikes int   // consecutive failures before a member is dead
}

func newMembership(strikes int) *membership {
	if strikes <= 0 {
		strikes = 2
	}
	return &membership{members: make(map[string]*member), strikes: strikes}
}

// join registers (or resurrects) a worker. Reports whether the URL is
// new to the registry.
func (ms *membership) join(url string) bool {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m, ok := ms.members[url]
	if !ok {
		m = &member{url: url}
		ms.members[url] = m
	}
	if !m.alive {
		m.alive = true
		m.strikes = 0
		ms.ring = nil
	}
	return !ok
}

// liveRing returns the ring over the currently-live members,
// rebuilding it only when the live set changed.
func (ms *membership) liveRing() *Ring {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if ms.ring == nil {
		live := make([]string, 0, len(ms.members))
		for url, m := range ms.members {
			if m.alive {
				live = append(live, url)
			}
		}
		ms.ring = NewRing(live, 0)
	}
	return ms.ring
}

// strike records a failed probe or dispatch against the worker; after
// the configured consecutive count it leaves the live set.
func (ms *membership) strike(url string) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m, ok := ms.members[url]
	if !ok {
		return
	}
	m.failures++
	m.strikes++
	if m.alive && m.strikes >= ms.strikes {
		m.alive = false
		ms.ring = nil
	}
}

// clear records a passing probe, resurrecting a dead worker.
func (ms *membership) clear(url string) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m, ok := ms.members[url]
	if !ok {
		return
	}
	m.strikes = 0
	if !m.alive {
		m.alive = true
		ms.ring = nil
	}
}

// noteDispatch counts a shard routed to the worker; redispatched marks
// it as a re-route after another worker failed.
func (ms *membership) noteDispatch(url string, redispatched bool) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if m, ok := ms.members[url]; ok {
		if redispatched {
			m.redispatched++
		} else {
			m.dispatched++
		}
	}
}

// urls returns every registered worker URL, sorted.
func (ms *membership) urls() []string {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make([]string, 0, len(ms.members))
	for url := range ms.members {
		out = append(out, url)
	}
	sort.Strings(out)
	return out
}

// snapshot renders the per-worker stats, sorted by URL.
func (ms *membership) snapshot() (workers []WorkerStats, alive int) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	workers = make([]WorkerStats, 0, len(ms.members))
	for _, m := range ms.members {
		if m.alive {
			alive++
		}
		workers = append(workers, WorkerStats{
			URL: m.url, Alive: m.alive,
			Dispatched: m.dispatched, Redispatched: m.redispatched,
			Failures: m.failures,
		})
	}
	sort.Slice(workers, func(i, j int) bool { return workers[i].URL < workers[j].URL })
	return workers, alive
}

// probeAll health-checks every registered member once, concurrently,
// through the workers' existing /healthz endpoint. Probes are
// single-shot by design (see cli.Client.Healthz): the strike counter
// is the debouncer, not hidden retries.
func (c *Coordinator) probeAll(ctx context.Context) {
	timeout := c.cfg.HealthTimeout
	if timeout <= 0 {
		timeout = time.Second
	}
	var wg sync.WaitGroup
	for _, url := range c.members.urls() {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			client := cli.Client{BaseURL: url, HTTPClient: c.cfg.HTTPClient}
			if err := client.Healthz(pctx); err != nil {
				c.members.strike(url)
			} else {
				c.members.clear(url)
			}
		}(url)
	}
	wg.Wait()
}

// StartHealth runs the failure detector until ctx ends: every
// HealthInterval each member is probed, accumulating strikes toward
// death and resurrecting on recovery.
func (c *Coordinator) StartHealth(ctx context.Context) {
	interval := c.cfg.HealthInterval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				c.probeAll(ctx)
			}
		}
	}()
}

// Announce registers self with the coordinator, retrying transient
// failures, and keeps re-announcing every interval until ctx ends —
// the heartbeat that re-registers a worker after a coordinator
// restart (join is idempotent) and resurrects it after it was struck
// dead. onErr, when non-nil, observes failed announcements.
func Announce(ctx context.Context, coordinator, self string, interval time.Duration, onErr func(error)) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	client := &cli.Client{BaseURL: coordinator, Retry: cli.DefaultRetry}
	announce := func() {
		if err := client.Join(ctx, self); err != nil && onErr != nil && ctx.Err() == nil {
			onErr(err)
		}
	}
	announce()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			announce()
		}
	}
}
