package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"flexos"
	"flexos/internal/cli"
)

// Config shapes a Coordinator.
type Config struct {
	// Fanout is the number of disjoint shard sub-requests one gather
	// splits a request into (0: the live worker count at dispatch
	// time). Any value produces byte-identical output; fan-out only
	// moves where measurements happen.
	Fanout int
	// Retry is the per-call policy against one worker — transient
	// blips (dial errors, 5xx) retried with backoff before the shard
	// is re-dispatched to the next worker (nil: cli.DefaultRetry).
	Retry *cli.RetryPolicy
	// MaxRedispatch bounds how many surviving workers a shard is
	// re-routed to after its owner fails, before falling back to an
	// inline run on the coordinator (0: 2).
	MaxRedispatch int
	// HealthInterval is the failure detector's probe period (0: 2s);
	// HealthTimeout bounds one probe (0: 1s); HealthStrikes is the
	// consecutive-failure count that marks a worker dead (0: 2).
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	HealthStrikes  int
	// CallTimeout bounds one worker's answer to one shard (0: none):
	// a worker that hangs — accepts the dispatch but never answers —
	// times out and its shard re-dispatches like a death would.
	CallTimeout time.Duration
	// HTTPClient overrides the transport for worker calls.
	HTTPClient *http.Client
}

// WorkerStats is one worker's row of the coordinator's /statsz
// extension.
type WorkerStats struct {
	URL          string `json:"url"`
	Alive        bool   `json:"alive"`
	Dispatched   int64  `json:"dispatched"`
	Redispatched int64  `json:"redispatched"`
	Failures     int64  `json:"failures"`
}

// Stats is the coordinator's observable state: fleet membership and
// the dispatch/re-dispatch/fallback counters that make failure
// handling visible.
type Stats struct {
	Workers      []WorkerStats `json:"workers"`
	Alive        int           `json:"alive"`
	Gathers      int64         `json:"gathers"`
	Shards       int64         `json:"shards_dispatched"`
	Redispatches int64         `json:"redispatches"`
	InlineRuns   int64         `json:"inline_runs"`
	ShardsLost   int64         `json:"shards_lost"`
	Conflicts    int64         `json:"record_conflicts"`
	Records      int64         `json:"records_gathered"`
}

// Coordinator fans exploration requests out over a fleet of worker
// daemons and merges their partial results. It guarantees nothing by
// itself about output bytes — it only returns records; the serving
// layer replays them into its memo and re-ranks locally, which is
// where byte-identity comes from (a record the cluster failed to
// produce is simply measured locally, deterministically).
type Coordinator struct {
	cfg     Config
	members *membership

	// local runs a sub-request on the coordinator's own engine — the
	// last-resort fallback when every route for a shard failed. The
	// serving layer installs it (SetLocal).
	local func(ctx context.Context, req cli.Request) ([]cli.Record, error)

	mu sync.Mutex
	st Stats // counters only; Workers/Alive filled on snapshot
}

// New builds a coordinator; workers join via Join (HTTP) or are
// seeded programmatically.
func New(cfg Config) *Coordinator {
	return &Coordinator{cfg: cfg, members: newMembership(cfg.HealthStrikes)}
}

// SetLocal installs the inline fallback the serving layer provides.
func (c *Coordinator) SetLocal(fn func(ctx context.Context, req cli.Request) ([]cli.Record, error)) {
	c.local = fn
}

// Join registers (or resurrects) a worker by base URL; idempotent.
// Reports whether the worker is new.
func (c *Coordinator) Join(url string) bool { return c.members.join(url) }

// Stats snapshots the coordinator's counters and membership.
func (c *Coordinator) Stats() *Stats {
	c.mu.Lock()
	st := c.st
	c.mu.Unlock()
	st.Workers, st.Alive = c.members.snapshot()
	return &st
}

func (c *Coordinator) count(f func(*Stats)) {
	c.mu.Lock()
	f(&c.st)
	c.mu.Unlock()
}

// retry returns the per-worker call policy.
func (c *Coordinator) retry() *cli.RetryPolicy {
	if c.cfg.Retry != nil {
		return c.cfg.Retry
	}
	return cli.DefaultRetry
}

// split partitions the request into disjoint shard sub-requests
// covering the whole space — the same contiguous order-preserving
// slices `flexos-explore -shard i/n` explores. Sub-requests drop the
// presentation concerns (stream, verbose, pareto) and ask for the
// partial-result codec instead; a pareto request fans out as
// exhaustive shards because its re-rank measures the full space.
// A request that already names a shard is routed whole — shard
// slices do not nest.
func (c *Coordinator) split(req cli.Request) []cli.Request {
	req.Normalize()
	sub := req
	sub.Stream = false
	sub.Verbose = false
	sub.IncludeRecords = true
	sub.Workers = 0
	sub.TimeoutMs = 0
	if sub.Pareto {
		sub.Pareto = false
		sub.Exhaustive = true
	}
	if req.Shard != "" {
		return []cli.Request{sub}
	}
	fanout := c.cfg.Fanout
	if fanout <= 0 {
		fanout = c.members.liveRing().Len()
	}
	if fanout <= 1 {
		return []cli.Request{sub}
	}
	subs := make([]cli.Request, fanout)
	for i := range subs {
		subs[i] = sub
		subs[i].Shard = fmt.Sprintf("%d/%d", i, fanout)
	}
	return subs
}

// Gather answers one request with the union of its shards' partial
// results: split, route each shard to the worker owning its canonical
// key on the hash ring, re-dispatch on failure (bounded), fall back
// inline when no worker can answer, and merge with conflict
// detection. The returned records may under-cover the space (a lost
// shard, a conflict) — never mis-cover it: a conflicting key is
// dropped so the local re-rank re-measures it.
//
// The only error Gather returns is the context's: every other
// failure degrades to fewer records, because the caller's local
// re-rank can always measure what is missing.
func (c *Coordinator) Gather(ctx context.Context, req cli.Request) ([]cli.Record, error) {
	subs := c.split(req)
	c.count(func(s *Stats) { s.Gathers++; s.Shards += int64(len(subs)) })

	results := make([][]cli.Record, len(subs))
	var wg sync.WaitGroup
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.dispatch(ctx, subs[i])
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Merge in shard order with conflict detection: the same key from
	// two shards (canonical twins across slices, or a re-dispatched
	// shard answered twice) must carry identical metrics; a
	// disagreement drops the key entirely — the disagreeing nodes
	// cannot both be trusted, and the local re-rank re-measures it.
	merged := make(map[string]flexos.Metrics)
	dropped := make(map[string]struct{})
	order := make([]string, 0, len(merged))
	for _, recs := range results {
		for _, rec := range recs {
			if _, bad := dropped[rec.Key]; bad {
				continue
			}
			prev, dup := merged[rec.Key]
			if !dup {
				merged[rec.Key] = rec.Metrics
				order = append(order, rec.Key)
				continue
			}
			if prev != rec.Metrics {
				delete(merged, rec.Key)
				dropped[rec.Key] = struct{}{}
				c.count(func(s *Stats) { s.Conflicts++ })
			}
		}
	}
	out := make([]cli.Record, 0, len(merged))
	for _, key := range order {
		if m, ok := merged[key]; ok {
			out = append(out, cli.Record{Key: key, Metrics: m})
		}
	}
	c.count(func(s *Stats) { s.Records += int64(len(out)) })
	return out, nil
}

// dispatch routes one shard sub-request: to the ring owner of its
// canonical key first, then — on failure — along the ring to
// surviving successors (bounded by MaxRedispatch), and finally
// inline. A worker that fails a call is struck immediately, so the
// rest of the gather routes around it without waiting for the health
// loop. Returns nil when every route failed; the caller's re-rank
// absorbs the loss.
func (c *Coordinator) dispatch(ctx context.Context, sub cli.Request) []cli.Record {
	key, err := sub.CanonicalKey()
	if err != nil {
		// An unroutable sub-request of a request that built upstream
		// cannot happen; treat it as a lost shard rather than panic.
		c.count(func(s *Stats) { s.ShardsLost++ })
		return nil
	}
	hops := c.cfg.MaxRedispatch
	if hops <= 0 {
		hops = 2
	}
	tried := make(map[string]struct{})
	for hop := 0; hop <= hops; hop++ {
		url := c.routeAround(key, tried)
		if url == "" {
			break
		}
		tried[url] = struct{}{}
		c.members.noteDispatch(url, hop > 0)
		if hop > 0 {
			c.count(func(s *Stats) { s.Redispatches++ })
		}
		recs, err := c.call(ctx, url, sub)
		if err == nil {
			return recs
		}
		if ctx.Err() != nil {
			return nil
		}
		c.members.strike(url)
	}
	// No worker could answer: run the shard on the coordinator's own
	// engine. Fresh measurements land in the serving memo either way,
	// so even this path feeds the fleet's store sync.
	c.count(func(s *Stats) { s.InlineRuns++ })
	if c.local == nil {
		c.count(func(s *Stats) { s.ShardsLost++ })
		return nil
	}
	recs, err := c.local(ctx, sub)
	if err != nil {
		c.count(func(s *Stats) { s.ShardsLost++ })
		return nil
	}
	return recs
}

// routeAround returns the first live worker on the key's ring walk
// that has not been tried yet, or "".
func (c *Coordinator) routeAround(key string, tried map[string]struct{}) string {
	for _, url := range c.members.liveRing().Sequence(key) {
		if _, done := tried[url]; !done {
			return url
		}
	}
	return ""
}

// call runs one sub-request against one worker and returns its
// partial-result records.
func (c *Coordinator) call(ctx context.Context, url string, sub cli.Request) ([]cli.Record, error) {
	if c.cfg.CallTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.CallTimeout)
		defer cancel()
	}
	client := cli.Client{BaseURL: url, HTTPClient: c.cfg.HTTPClient, Retry: c.retry()}
	resp, err := client.Explore(ctx, sub)
	if err != nil {
		// A pre-cluster worker binary rejects include_records with a
		// 400 (strict decoding), so a mixed-version fleet fails loudly
		// here and re-dispatches — never silently drops records.
		return nil, err
	}
	return resp.Records, nil
}
