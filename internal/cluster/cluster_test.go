// End-to-end and failure-injection tests for the cluster layer: a
// coordinator serve.Server fronting real worker serve.Servers over
// loopback HTTP. The invariant under test is the tentpole guarantee:
// a coordinated answer is byte-identical to the single-node oracle at
// any worker count and fan-out, including when workers die mid-run —
// once, twice, at random moments, or all of them.
package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"flexos"
	"flexos/internal/cli"
	"flexos/internal/cluster"
	"flexos/internal/serve"
)

// oracle runs the request locally — the single-node ground truth the
// cluster must reproduce byte-for-byte.
func oracle(t *testing.T, creq cli.Request) (report string, lines []string) {
	t.Helper()
	q, info, err := creq.Build()
	if err != nil {
		t.Fatalf("oracle build: %v", err)
	}
	q.Workers(4)
	seq, final := q.Stream(context.Background())
	for cfg, m := range seq {
		lines = append(lines, cli.StreamLine(info.ScenarioMode, cfg, m))
	}
	res, err := final()
	noFeasible := errors.Is(err, flexos.ErrNoFeasible)
	if err != nil && !noFeasible {
		t.Fatalf("oracle run: %v", err)
	}
	return cli.RenderReport(info.Title, res, info.Constraints, info.ScenarioMode, creq.Pareto, creq.Verbose, noFeasible), lines
}

// worker is one daemon plus a kill switch: killed, it cuts live
// connections and refuses new requests with a 503 — the HTTP shape of
// a dead process behind a listening port (CI kills real processes;
// here the switch keeps the test in-process for -race).
type worker struct {
	srv    *serve.Server
	ts     *httptest.Server
	killed atomic.Bool
	// dieOnExplore arms a deterministic mid-request death: the worker
	// kills itself the moment its next shard dispatch arrives.
	dieOnExplore atomic.Bool
}

func newWorker(t *testing.T) *worker {
	t.Helper()
	srv, err := serve.New(serve.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	w := &worker{srv: srv}
	w.ts = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == cli.ExplorePath && w.dieOnExplore.CompareAndSwap(true, false) {
			w.kill()
		}
		if w.killed.Load() {
			http.Error(rw, "worker killed", http.StatusServiceUnavailable)
			return
		}
		srv.ServeHTTP(rw, r)
	}))
	t.Cleanup(func() { w.ts.Close(); srv.Close() })
	return w
}

func (w *worker) kill() {
	w.killed.Store(true)
	w.ts.CloseClientConnections()
}

// testCluster is a coordinator over n workers.
type testCluster struct {
	co      *cluster.Coordinator
	coord   *serve.Server
	ts      *httptest.Server
	client  *cli.Client
	workers []*worker
}

func newCluster(t *testing.T, nWorkers, fanout int) *testCluster {
	t.Helper()
	tc := &testCluster{}
	tc.co = cluster.New(cluster.Config{
		Fanout: fanout,
		// Tight per-call retry: a dead worker strikes out in
		// milliseconds, re-dispatch is what we are testing.
		Retry:         &cli.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
		MaxRedispatch: 2,
		// Probes would resurrect killed-then-503 workers; in tests the
		// dispatch strikes are the failure detector.
		HealthInterval: time.Hour,
		HealthStrikes:  1,
	})
	for i := 0; i < nWorkers; i++ {
		w := newWorker(t)
		tc.workers = append(tc.workers, w)
		tc.co.Join(w.ts.URL)
	}
	coord, err := serve.New(serve.Config{Workers: 2, Cluster: tc.co})
	if err != nil {
		t.Fatal(err)
	}
	tc.coord = coord
	tc.ts = httptest.NewServer(coord)
	tc.client = &cli.Client{BaseURL: tc.ts.URL,
		Retry: &cli.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}}
	t.Cleanup(func() { tc.ts.Close(); coord.Close() })
	return tc
}

// revive brings a killed worker back and re-joins it (the heartbeat's
// job in production).
func (tc *testCluster) revive(w *worker) {
	w.killed.Store(false)
	tc.co.Join(w.ts.URL)
}

var testRequests = []cli.Request{
	{Scenario: "redis-get90"},
	{Scenario: "nginx-keep75", Metric: "p99", Budgets: []string{"3"}},
	{Scenario: "redis-pipe8", Budgets: []string{"throughput>=200000", "p99<=40", "mem<=400000"}},
	{App: "redis", Budgets: []string{"600000"}},                // mostly infeasible
	{Scenario: "redis-get50", Pareto: true, Exhaustive: false}, // unpruned re-rank
}

func TestClusterByteIdenticalAcrossFanouts(t *testing.T) {
	for _, fanout := range []int{1, 2, 3, 5} {
		fanout := fanout
		t.Run(fmt.Sprintf("fanout=%d", fanout), func(t *testing.T) {
			t.Parallel()
			tc := newCluster(t, 3, fanout)
			for _, creq := range testRequests[:3] {
				want, _ := oracle(t, creq)
				resp, err := tc.client.Explore(context.Background(), creq)
				if err != nil {
					t.Fatalf("cluster explore %+v: %v", creq, err)
				}
				if resp.Report != want {
					t.Fatalf("cluster report differs from single-node oracle (fanout %d)\nreq: %+v\n--- cluster ---\n%s--- oracle ---\n%s",
						fanout, creq, resp.Report, want)
				}
			}
			st := tc.co.Stats()
			if st.Gathers == 0 || st.Shards == 0 {
				t.Fatalf("coordinator never dispatched: %+v", st)
			}
			var dispatched int64
			for _, w := range st.Workers {
				dispatched += w.Dispatched
			}
			if dispatched == 0 {
				t.Fatalf("no worker received a shard: %+v", st.Workers)
			}
		})
	}
}

func TestClusterStreamByteIdentical(t *testing.T) {
	tc := newCluster(t, 3, 3)
	creq := cli.Request{Scenario: "redis-get90", Stream: true}
	wantReport, wantLines := oracle(t, creq)
	var gotLines []string
	resp, err := tc.client.ExploreStream(context.Background(), creq, func(l string) { gotLines = append(gotLines, l) })
	if err != nil {
		t.Fatal(err)
	}
	if resp.Report != wantReport {
		t.Fatalf("streamed report differs\n--- cluster ---\n%s--- oracle ---\n%s", resp.Report, wantReport)
	}
	if strings.Join(gotLines, "\n") != strings.Join(wantLines, "\n") {
		t.Fatalf("streamed lines differ\ncluster: %d lines\noracle: %d lines", len(gotLines), len(wantLines))
	}
}

// TestClusterPruningStaysConservative: a pruned coordinated run must
// also match — worker shards prune shard-locally (a conservative
// superset of the full-space pruning), and the coordinator's re-rank
// prunes exactly like the oracle over a warm memo.
func TestClusterPrunedAndParetoRequests(t *testing.T) {
	tc := newCluster(t, 3, 3)
	for _, creq := range testRequests[3:] {
		want, _ := oracle(t, creq)
		resp, err := tc.client.Explore(context.Background(), creq)
		if err != nil {
			t.Fatalf("cluster explore %+v: %v", creq, err)
		}
		if resp.Report != want {
			t.Fatalf("report differs for %+v\n--- cluster ---\n%s--- oracle ---\n%s", creq, resp.Report, want)
		}
	}
}

// TestClusterWorkerDiesOnDispatch pins the mid-request death
// deterministically: the victim is killed by its own first shard
// arriving. Every worker takes a turn as victim; each request must
// still answer oracle bytes, and across the sweep at least one shard
// must have been re-dispatched or run inline (the shard the victim
// owned — whoever it was — lost its home).
func TestClusterWorkerDiesOnDispatch(t *testing.T) {
	tc := newCluster(t, 3, 3)
	creq := cli.Request{Scenario: "redis-get90"}
	want, _ := oracle(t, creq)
	for i, victim := range tc.workers {
		victim.dieOnExplore.Store(true)
		resp, err := tc.client.Explore(context.Background(), creq)
		if err != nil {
			t.Fatalf("explore with worker %d dying on dispatch: %v", i, err)
		}
		if resp.Report != want {
			t.Fatalf("report differs with worker %d dying mid-request\n--- cluster ---\n%s--- oracle ---\n%s", i, resp.Report, want)
		}
		tc.revive(victim)
		victim.dieOnExplore.Store(false) // victim may not have owned a shard
	}
	st := tc.co.Stats()
	if st.Redispatches+st.InlineRuns == 0 {
		t.Fatalf("three victims and no shard ever re-dispatched or ran inline: %+v", st)
	}
	if st.ShardsLost != 0 {
		t.Fatalf("shards lost entirely: %+v", st)
	}
}

// TestClusterRandomWorkerKilledMidRun is the property test: a random
// worker dies at a random moment of each coordinated run, and the
// answer must stay byte-identical to the oracle. Seeded — failures
// reproduce.
func TestClusterRandomWorkerKilledMidRun(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xf1e105, 2022))
	tc := newCluster(t, 3, 3)
	for round := 0; round < 6; round++ {
		creq := testRequests[rng.IntN(3)]
		want, _ := oracle(t, creq)

		victim := tc.workers[rng.IntN(len(tc.workers))]
		delay := time.Duration(rng.IntN(30)) * time.Millisecond
		done := make(chan struct{})
		go func() {
			defer close(done)
			time.Sleep(delay)
			victim.kill()
		}()
		resp, err := tc.client.Explore(context.Background(), creq)
		<-done
		if err != nil {
			t.Fatalf("round %d (victim killed after %v): %v", round, delay, err)
		}
		if resp.Report != want {
			t.Fatalf("round %d: report differs from oracle after killing a worker %v into the run\n--- cluster ---\n%s--- oracle ---\n%s",
				round, delay, resp.Report, want)
		}
		tc.revive(victim)
	}
}

// TestClusterSameWorkerKilledTwice: the same worker dies in two
// consecutive coordinated runs (revived between them), exercising
// strike-out → resurrect → strike-out. Both answers must match the
// oracle.
func TestClusterSameWorkerKilledTwice(t *testing.T) {
	tc := newCluster(t, 3, 3)
	creq := cli.Request{Scenario: "redis-get90"}
	want, _ := oracle(t, creq)

	// A clean probe run first: shard ownership depends on the ring
	// (worker URLs carry random ports), so discover a worker that
	// actually owns shards of this request — killing a worker no shard
	// routes to would assert nothing.
	if resp, err := tc.client.Explore(context.Background(), creq); err != nil || resp.Report != want {
		t.Fatalf("probe run: err=%v, identical=%v", err, err == nil && resp.Report == want)
	}
	var victim *worker
	for _, st := range tc.co.Stats().Workers {
		for _, w := range tc.workers {
			if st.URL == w.ts.URL && st.Dispatched > 0 {
				victim = w
			}
		}
	}
	if victim == nil {
		t.Fatal("no worker was dispatched to on the probe run")
	}

	// Kill the shard owner; the same (still-warm, but the coordinator
	// gathers every flight) request re-dispatches its shards and must
	// not change a byte. Then revive, kill again, repeat.
	failuresBefore := workerFailures(tc, victim)
	for round := 1; round <= 2; round++ {
		victim.kill()
		resp, err := tc.client.Explore(context.Background(), creq)
		if err != nil {
			t.Fatalf("round %d with %s killed: %v", round, victim.ts.URL, err)
		}
		if resp.Report != want {
			t.Fatalf("round %d: report differs with the same worker killed again\n--- cluster ---\n%s--- oracle ---\n%s", round, resp.Report, want)
		}
		tc.revive(victim)
	}
	if got := workerFailures(tc, victim); got < failuresBefore+2 {
		t.Fatalf("victim %s failures %d -> %d; want two recorded deaths: %+v",
			victim.ts.URL, failuresBefore, got, tc.co.Stats().Workers)
	}
}

func workerFailures(tc *testCluster, w *worker) int64 {
	for _, st := range tc.co.Stats().Workers {
		if st.URL == w.ts.URL {
			return st.Failures
		}
	}
	return 0
}

// TestClusterAllWorkersDead: with the whole fleet gone every shard
// falls back inline, and the answer is still byte-identical.
func TestClusterAllWorkersDead(t *testing.T) {
	tc := newCluster(t, 3, 3)
	for _, w := range tc.workers {
		w.kill()
	}
	creq := cli.Request{Scenario: "redis-get90"}
	want, _ := oracle(t, creq)
	resp, err := tc.client.Explore(context.Background(), creq)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Report != want {
		t.Fatalf("report differs with every worker dead\n--- cluster ---\n%s--- oracle ---\n%s", resp.Report, want)
	}
	st := tc.co.Stats()
	if st.InlineRuns == 0 {
		t.Fatalf("expected inline fallback with no live workers: %+v", st)
	}
}

// TestClusterNoWorkersAtAll: a coordinator nobody joined serves
// plain local answers (fleet of one).
func TestClusterNoWorkersAtAll(t *testing.T) {
	tc := newCluster(t, 0, 0)
	creq := cli.Request{Scenario: "redis-get90"}
	want, _ := oracle(t, creq)
	resp, err := tc.client.Explore(context.Background(), creq)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Report != want {
		t.Fatalf("empty-fleet coordinator differs from oracle")
	}
}

// TestClusterStatszObservability: the coordinator's /statsz carries
// the per-worker dispatch counters and fleet view.
func TestClusterStatszObservability(t *testing.T) {
	tc := newCluster(t, 2, 2)
	if _, err := tc.client.Explore(context.Background(), cli.Request{Scenario: "redis-get90"}); err != nil {
		t.Fatal(err)
	}
	st := tc.coord.Stats()
	if st.Cluster == nil {
		t.Fatal("coordinator statsz missing cluster section")
	}
	if st.Cluster.Alive != 2 || len(st.Cluster.Workers) != 2 {
		t.Fatalf("fleet view: %+v", st.Cluster)
	}
	if st.RecordsIngested == 0 {
		t.Fatalf("coordinator ingested nothing: %+v", st)
	}
	if st.SyncLogLen == 0 {
		t.Fatalf("sync log empty after a coordinated run: %+v", st)
	}
}

// TestClusterWorkerJoinEndpoint drives registration over HTTP the way
// a real worker does, including the self-join guard.
func TestClusterWorkerJoinEndpoint(t *testing.T) {
	co := cluster.New(cluster.Config{})
	coord, err := serve.New(serve.Config{Workers: 1, Cluster: co, SelfURL: "http://coordinator:1"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coord)
	t.Cleanup(func() { ts.Close(); coord.Close() })
	client := &cli.Client{BaseURL: ts.URL}
	ctx := context.Background()

	if err := client.Join(ctx, "http://worker-a:1"); err != nil {
		t.Fatalf("join: %v", err)
	}
	if err := client.Join(ctx, "http://worker-a:1"); err != nil {
		t.Fatalf("re-join must be idempotent: %v", err)
	}
	if err := client.Join(ctx, "http://coordinator:1"); err == nil {
		t.Fatal("self-join must be rejected")
	}
	st := co.Stats()
	if len(st.Workers) != 1 || st.Workers[0].URL != "http://worker-a:1" {
		t.Fatalf("membership after joins: %+v", st.Workers)
	}

	// A plain daemon is not a coordinator: join answers 404.
	plain, err := serve.New(serve.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pts := httptest.NewServer(plain)
	t.Cleanup(func() { pts.Close(); plain.Close() })
	if err := (&cli.Client{BaseURL: pts.URL}).Join(ctx, "http://worker-a:1"); err == nil {
		t.Fatal("plain daemon accepted a join")
	}
}
