// Package cluster turns N flexos-serve daemons into one logical
// exploration engine: a coordinator splits each request into disjoint
// shard sub-requests, routes every sub-request to a worker chosen by
// consistent hashing over its canonical key, collects the workers'
// partial-result records, and replays them into its own memo before
// re-ranking locally — so the answer is byte-identical to a
// single-node run at any worker count, any fan-out, and under any
// worker failure (a lost shard degrades to re-dispatch or local
// measurement, which by determinism produces the same bytes).
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// defaultReplicas is the virtual-node count per member: enough that
// a 3-node ring splits keys within a few percent of evenly, cheap
// enough that ring rebuilds are negligible next to a measurement.
const defaultReplicas = 64

// Ring is a consistent-hash ring over member names (worker base
// URLs). Each member occupies `replicas` pseudo-random points on a
// 64-bit circle; a key is owned by the member whose point follows the
// key's hash. Adding or removing one member moves only the keys in
// its arcs — every other key keeps its owner, which is what keeps
// fleet-wide request coalescing effective across membership churn
// (same sub-request → same worker → same single flight).
//
// A Ring is immutable; Membership rebuilds one when the live set
// changes.
type Ring struct {
	points  []ringPoint
	members []string
}

type ringPoint struct {
	hash   uint64
	member int32 // index into members
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// NewRing builds a ring over the members (order-insensitive: the ring
// depends only on the set). replicas <= 0 selects the default.
func NewRing(members []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &Ring{members: append([]string(nil), members...)}
	sort.Strings(r.members)
	r.points = make([]ringPoint, 0, len(r.members)*replicas)
	for i, m := range r.members {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash:   ringHash(m + "#" + strconv.Itoa(v)),
				member: int32(i),
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Ties (vanishingly rare) break on member index so the ring
		// is deterministic regardless of input order.
		return r.points[a].member < r.points[b].member
	})
	return r
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// start returns the index of the first ring point at or after the
// key's hash (wrapping to 0).
func (r *Ring) start(key string) int {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the member owning the key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.members[r.points[r.start(key)].member]
}

// Sequence returns every member exactly once, in ring-walk order from
// the key's position: the owner first, then the successors a failed
// dispatch falls over to. Deterministic for a given (ring, key).
func (r *Ring) Sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	seq := make([]string, 0, len(r.members))
	seen := make(map[int32]struct{}, len(r.members))
	for i, n := r.start(key), 0; n < len(r.points); i, n = (i+1)%len(r.points), n+1 {
		p := r.points[i]
		if _, dup := seen[p.member]; dup {
			continue
		}
		seen[p.member] = struct{}{}
		seq = append(seq, r.members[p.member])
		if len(seq) == len(r.members) {
			break
		}
	}
	return seq
}
