// Package baseline implements the comparator systems of the paper's
// Figure 10 (SQLite, 5000 INSERTs): Linux processes, the SeL4/Genode
// microkernel, Unikraft on the linuxu platform, and CubicleOS.
//
// Each comparator is a cost composition over the same workload shape the
// FlexOS images execute (per-query base work, filesystem-operation count,
// time-subsystem calls — exported by the sqlite app package), with the
// comparator's own domain-crossing primitive costs:
//
//   - Linux: one system call per filesystem operation (±KPTI);
//   - SeL4/Genode: two IPCs plus capability validation per operation;
//   - Unikraft/linuxu: ring-3 execution where privileged operations
//     become Linux system calls (the paper attributes CubicleOS' poor
//     showing partly to this);
//   - CubicleOS: linuxu plus pkey_mprotect-based domain transitions and
//     trap-and-map faults for shared data — "orders of magnitude more
//     expensive" than FlexOS' wrpkru gates — but with the Lea allocator,
//     which beats TLSF on this workload (§6.4).
//
// Absolute constants come from the paper's own microbenchmarks (Fig. 11b)
// and its quoted ratios; see DESIGN.md for the full derivation.
package baseline

import (
	"fmt"

	"flexos/internal/machine"
)

// Workload is the per-query shape of the SQLite benchmark, measured on a
// FlexOS NONE image so every comparator runs "the same" workload.
type Workload struct {
	// Queries is the number of INSERT transactions.
	Queries int
	// BaseWorkCycles is the pure compute per query (no crossings).
	BaseWorkCycles uint64
	// FSOps is the number of filesystem operations per query.
	FSOps int
	// TimeOps is the number of direct clock reads per query.
	TimeOps int
}

// Comparator models one Figure 10 system.
type Comparator interface {
	// Name is the Figure 10 column label.
	Name() string
	// Isolation is the x-axis annotation (NONE, PT2, PT3, MPK3).
	Isolation() string
	// CyclesPerQuery composes the comparator's per-query cost.
	CyclesPerQuery(w Workload, c machine.CostModel) uint64
}

// Seconds runs a comparator over the workload.
func Seconds(cmp Comparator, w Workload, c machine.CostModel) float64 {
	return float64(uint64(w.Queries)*cmp.CyclesPerQuery(w, c)) / c.FreqHz
}

// LinuxProcess is the Linux column: the filesystem is behind the
// user/kernel boundary, so every filesystem operation is a system call.
// The paper's machine runs KPTI (Meltdown-era Xeon), making the syscall
// cost 470 cycles — which is why "FlexOS with EPT2 performs almost
// identically to Linux: the syscall latency is almost identical to the
// EPT2 gate latency on this system".
type LinuxProcess struct {
	// KPTI selects the page-table-isolation syscall cost.
	KPTI bool
}

// Name implements Comparator.
func (l LinuxProcess) Name() string { return "Linux" }

// Isolation implements Comparator.
func (l LinuxProcess) Isolation() string { return "PT2" }

// CyclesPerQuery implements Comparator.
func (l LinuxProcess) CyclesPerQuery(w Workload, c machine.CostModel) uint64 {
	sys := c.SyscallNoKPTI
	if l.KPTI {
		sys = c.SyscallKPTI
	}
	return w.BaseWorkCycles + uint64(w.FSOps)*sys
}

// SeL4Genode is the microkernel column: the filesystem is a user-level
// server, so each operation is a call/reply IPC pair with capability
// validation.
type SeL4Genode struct{}

// capValidation is the per-call capability/endpoint bookkeeping beyond
// the raw IPC path.
const capValidation = 60

// Name implements Comparator.
func (SeL4Genode) Name() string { return "SeL4/Genode" }

// Isolation implements Comparator.
func (SeL4Genode) Isolation() string { return "PT3" }

// CyclesPerQuery implements Comparator.
func (SeL4Genode) CyclesPerQuery(w Workload, c machine.CostModel) uint64 {
	perOp := 2*c.SeL4IPC + capValidation
	return w.BaseWorkCycles + uint64(w.FSOps)*perOp
}

// UnikraftLinuxu is Unikraft's Linux-userland debug platform: the whole
// unikernel runs in ring 3 and privileged operations (I/O, clock,
// scheduling assists) become Linux system calls. The paper measures it at
// ~13.5x the KVM baseline on this workload.
type UnikraftLinuxu struct{}

// linuxuSyscallFactor is how many Linux system calls one FlexOS-level
// filesystem operation expands to under linuxu (I/O + clock + signal
// bookkeeping).
const linuxuSyscallFactor = 6

// Name implements Comparator.
func (UnikraftLinuxu) Name() string { return "Unikraft/linuxu" }

// Isolation implements Comparator.
func (UnikraftLinuxu) Isolation() string { return "NONE" }

// CyclesPerQuery implements Comparator.
func (UnikraftLinuxu) CyclesPerQuery(w Workload, c machine.CostModel) uint64 {
	sys := uint64(w.FSOps*linuxuSyscallFactor+w.TimeOps) * c.SyscallKPTI
	return w.BaseWorkCycles + sys
}

// CubicleOS extends linuxu: domain transitions use pkey_mprotect system
// calls (CubicleOS does not program the PKRU directly) and cross-
// compartment data access uses the trap-and-map mechanism. Its allocator
// is Lea, which the paper observes beats TLSF here — modeled as a small
// constant advantage on the allocator-heavy base work.
type CubicleOS struct {
	// MPK3 enables the three-compartment isolation profile; false is
	// the no-isolation baseline.
	MPK3 bool
}

// Calibration for CubicleOS (see DESIGN.md): Lea saves ~6% of linuxu
// base time on this allocation-heavy workload; each query performs
// trap-and-map faults on the first touches of shared windows.
const (
	leaAdvantageNum    = 94
	leaAdvantageDen    = 100
	trapAndMapPerQuery = 25
)

// Name implements Comparator.
func (cb CubicleOS) Name() string { return "CubicleOS" }

// Isolation implements Comparator.
func (cb CubicleOS) Isolation() string {
	if cb.MPK3 {
		return "MPK3"
	}
	return "NONE"
}

// CyclesPerQuery implements Comparator.
func (cb CubicleOS) CyclesPerQuery(w Workload, c machine.CostModel) uint64 {
	base := UnikraftLinuxu{}.CyclesPerQuery(w, c)
	base = base * leaAdvantageNum / leaAdvantageDen
	if !cb.MPK3 {
		return base
	}
	// MPK3: fs / time / rest. Transitions on every fs op (in and out of
	// the fs compartment) and every fs-op timestamp, via pkey_mprotect.
	transitions := uint64(2*w.FSOps + w.TimeOps)
	return base + transitions*c.PkeyMprotect + trapAndMapPerQuery*c.TrapAndMap
}

// Row is one Figure 10 bar.
type Row struct {
	System    string
	Isolation string
	Seconds   float64
}

// String implements fmt.Stringer.
func (r Row) String() string {
	return fmt.Sprintf("%-16s %-5s %8.3fs", r.System, r.Isolation, r.Seconds)
}

// Comparators returns the Figure 10 comparator set in presentation order.
func Comparators() []Comparator {
	return []Comparator{
		UnikraftLinuxu{},
		LinuxProcess{KPTI: true},
		SeL4Genode{},
		CubicleOS{MPK3: false},
		CubicleOS{MPK3: true},
	}
}
