package baseline

import (
	"testing"

	"flexos/internal/machine"
)

// paperWorkload approximates the measured FlexOS NONE workload shape:
// ~22.9k cycles/query, ~103 fs ops, 2 direct clock reads.
func paperWorkload() Workload {
	return Workload{Queries: 5000, BaseWorkCycles: 22900, FSOps: 103, TimeOps: 2}
}

func TestLinuxRatio(t *testing.T) {
	// Fig. 10: Linux ~3.4x the Unikraft baseline (0.177s vs 0.052s).
	w := paperWorkload()
	c := machine.DefaultCosts()
	base := float64(w.BaseWorkCycles)
	linux := float64(LinuxProcess{KPTI: true}.CyclesPerQuery(w, c))
	ratio := linux / base
	if ratio < 2.5 || ratio > 4.3 {
		t.Fatalf("Linux/baseline = %.2fx, want ~3.4x", ratio)
	}
	// Without KPTI, Linux gets much closer to the LibOS.
	nokpti := float64(LinuxProcess{}.CyclesPerQuery(w, c))
	if nokpti >= linux {
		t.Fatal("KPTI must cost something")
	}
}

func TestSeL4Ratio(t *testing.T) {
	// Fig. 10: SeL4/Genode ~6.4x baseline (0.333s vs 0.052s), i.e. 3.1x
	// FlexOS MPK3 and 2x EPT2.
	w := paperWorkload()
	c := machine.DefaultCosts()
	ratio := float64(SeL4Genode{}.CyclesPerQuery(w, c)) / float64(w.BaseWorkCycles)
	if ratio < 4.5 || ratio > 8.5 {
		t.Fatalf("SeL4/baseline = %.2fx, want ~6.4x", ratio)
	}
}

func TestLinuxuRatio(t *testing.T) {
	// Fig. 10: Unikraft linuxu ~13.5x the KVM baseline (0.702s vs 0.052s).
	w := paperWorkload()
	c := machine.DefaultCosts()
	ratio := float64(UnikraftLinuxu{}.CyclesPerQuery(w, c)) / float64(w.BaseWorkCycles)
	if ratio < 9 || ratio > 18 {
		t.Fatalf("linuxu/baseline = %.2fx, want ~13.5x", ratio)
	}
}

func TestCubicleOSRatios(t *testing.T) {
	w := paperWorkload()
	c := machine.DefaultCosts()
	cubNone := float64(CubicleOS{}.CyclesPerQuery(w, c))
	cubMPK3 := float64(CubicleOS{MPK3: true}.CyclesPerQuery(w, c))
	linuxu := float64(UnikraftLinuxu{}.CyclesPerQuery(w, c))

	// "CubicleOS without isolation is faster than the Unikraft linuxu
	// baseline" (Lea vs TLSF).
	if cubNone >= linuxu {
		t.Fatalf("CubicleOS NONE (%.0f) must beat linuxu (%.0f)", cubNone, linuxu)
	}
	// "CubicleOS with MPK3 adds an overhead of 2.4x" over its own
	// baseline.
	ratio := cubMPK3 / cubNone
	if ratio < 1.8 || ratio > 3.0 {
		t.Fatalf("CubicleOS MPK3/NONE = %.2fx, want ~2.4x", ratio)
	}
	// "Compared to CubicleOS, FlexOS is an order of magnitude faster":
	// FlexOS MPK3 is ~2x base, CubicleOS MPK3 ~30x base.
	if cubMPK3/float64(w.BaseWorkCycles) < 20 {
		t.Fatalf("CubicleOS MPK3 = %.1fx baseline, want ~30x", cubMPK3/float64(w.BaseWorkCycles))
	}
}

func TestSecondsScalesWithQueries(t *testing.T) {
	w := paperWorkload()
	c := machine.DefaultCosts()
	full := Seconds(LinuxProcess{KPTI: true}, w, c)
	w.Queries = 2500
	half := Seconds(LinuxProcess{KPTI: true}, w, c)
	if full <= 0 || half <= 0 || full/half < 1.99 || full/half > 2.01 {
		t.Fatalf("Seconds not linear in queries: %v vs %v", full, half)
	}
}

func TestComparatorsMetadata(t *testing.T) {
	for _, cmp := range Comparators() {
		if cmp.Name() == "" || cmp.Isolation() == "" {
			t.Fatalf("comparator %T missing metadata", cmp)
		}
	}
}

func TestFigure10Ordering(t *testing.T) {
	// End-to-end shape: base < Linux < SeL4 < CubicleOS-NONE < linuxu is
	// wrong — the measured order is base < Linux < SeL4 < CubicleOS-NONE
	// ~ linuxu < CubicleOS-MPK3.
	w := paperWorkload()
	c := machine.DefaultCosts()
	lx := float64(LinuxProcess{KPTI: true}.CyclesPerQuery(w, c))
	s4 := float64(SeL4Genode{}.CyclesPerQuery(w, c))
	cn := float64(CubicleOS{}.CyclesPerQuery(w, c))
	lu := float64(UnikraftLinuxu{}.CyclesPerQuery(w, c))
	cm := float64(CubicleOS{MPK3: true}.CyclesPerQuery(w, c))
	if !(float64(w.BaseWorkCycles) < lx && lx < s4 && s4 < cn && cn < lu && lu < cm) {
		t.Fatalf("Fig. 10 ordering broken: base=%d linux=%.0f sel4=%.0f cubNone=%.0f linuxu=%.0f cubMPK=%.0f",
			w.BaseWorkCycles, lx, s4, cn, lu, cm)
	}
}
