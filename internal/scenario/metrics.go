package scenario

import "fmt"

// Metrics is the full metric vector one workload run produces. Every
// field is computed from the deterministic simulated machine (cycle
// clock, allocator high-water marks, gate counters), so two runs of the
// same scenario under the same configuration are byte-identical — which
// is what lets the exploration engine memoize vectors and reproduce
// Pareto frontiers exactly across worker counts.
type Metrics struct {
	// Throughput is the primary rate of the scenario in operations per
	// second of simulated time (requests/s, packets/s, queries/s).
	Throughput float64
	// P50us, P99us and MaxUs are per-operation latency percentiles in
	// microseconds, sampled from the machine's cycle clock with the
	// nearest-rank definition. For pipelined or batched scenarios one
	// sample covers one pipeline/transaction batch.
	P50us, P99us, MaxUs float64
	// PeakMemBytes is the high-water mark of simulated memory over the
	// whole run: every compartment's private heap peak, the shared heap
	// peak, and the DSS reservation.
	PeakMemBytes uint64
	// BootCycles is the simulated cost of getting the image to its
	// first served operation: build-time initialization plus the
	// application's setup phase (sockets, preloaded state).
	BootCycles uint64
	// Cycles is the measurement-phase cycle count and Ops the number of
	// primary operations it covers.
	Cycles uint64
	Ops    int
	// Crossings counts cross-compartment gate transitions during
	// measurement.
	Crossings uint64
	// Survival is the configuration's probability of surviving the
	// attack scenario attached to the workload, in [0,1]. It is zero —
	// and omitted from String — for plain performance workloads, so
	// the golden renderings of every pre-attack scenario are unchanged.
	Survival float64
}

// String renders the vector compactly.
func (m Metrics) String() string {
	s := fmt.Sprintf("%.1fk op/s p50=%.2fµs p99=%.2fµs max=%.2fµs mem=%dB boot=%dcy",
		m.Throughput/1000, m.P50us, m.P99us, m.MaxUs, m.PeakMemBytes, m.BootCycles)
	if m.Survival > 0 {
		s += fmt.Sprintf(" surv=%.6f", m.Survival)
	}
	return s
}

// Metric selects one dimension of a Metrics vector — the axis a
// performance budget is expressed on during exploration (§5 requires
// only a metric "comparable across configurations and runs"; any field
// of the vector qualifies).
type Metric string

// The supported budget metrics.
const (
	// MetricThroughput budgets a minimum operation rate (higher is
	// better). It is the default and matches the paper's req/s budgets.
	MetricThroughput Metric = "throughput"
	// MetricP50, MetricP99 and MetricMax budget a maximum latency
	// percentile in microseconds (lower is better).
	MetricP50 Metric = "p50"
	MetricP99 Metric = "p99"
	MetricMax Metric = "maxlat"
	// MetricPeakMem budgets a maximum simulated memory footprint in
	// bytes (lower is better).
	MetricPeakMem Metric = "mem"
	// MetricBoot budgets a maximum boot cost in cycles (lower is
	// better).
	MetricBoot Metric = "boot"
	// MetricSurvival budgets a minimum probability of surviving an
	// attack scenario (higher is better). Only attack workloads
	// populate it.
	MetricSurvival Metric = "survival"
)

// AllMetrics lists every supported metric, in display order.
func AllMetrics() []Metric {
	return []Metric{MetricThroughput, MetricP50, MetricP99, MetricMax, MetricPeakMem, MetricBoot, MetricSurvival}
}

// ParseMetric resolves a metric name (as used by the -metric CLI flag).
func ParseMetric(s string) (Metric, error) {
	switch Metric(s) {
	case "":
		return MetricThroughput, nil
	case MetricThroughput, MetricP50, MetricP99, MetricMax, MetricPeakMem, MetricBoot, MetricSurvival:
		return Metric(s), nil
	}
	return "", fmt.Errorf("scenario: unknown metric %q (want throughput|p50|p99|maxlat|mem|boot|survival)", s)
}

// Value extracts the metric's dimension from a vector, in natural units
// (op/s, µs, bytes, cycles).
func (m Metric) Value(x Metrics) float64 {
	switch m {
	case MetricP50:
		return x.P50us
	case MetricP99:
		return x.P99us
	case MetricMax:
		return x.MaxUs
	case MetricPeakMem:
		return float64(x.PeakMemBytes)
	case MetricBoot:
		return float64(x.BootCycles)
	case MetricSurvival:
		return x.Survival
	default: // MetricThroughput and the zero value
		return x.Throughput
	}
}

// HigherIsBetter reports the metric's direction: true for rates, false
// for latencies, footprint and boot cost.
func (m Metric) HigherIsBetter() bool {
	switch m {
	case MetricP50, MetricP99, MetricMax, MetricPeakMem, MetricBoot:
		return false
	}
	return true
}

// ImprovesWithSafety reports whether the metric gets better as a
// configuration gets safer. Performance metrics degrade with safety —
// which is what makes a natural-direction constraint on them sound to
// prune with (any safer configuration only does worse). Survival is the
// opposite: safer configurations survive more, so a survival floor must
// never prune the safer region. Constraint.Monotone consults this.
func (m Metric) ImprovesWithSafety() bool {
	return m == MetricSurvival
}

// Meets reports whether value v satisfies the budget: at least the
// budget for higher-is-better metrics, at most the budget otherwise.
func (m Metric) Meets(v, budget float64) bool {
	if m.HigherIsBetter() {
		return v >= budget
	}
	return v <= budget
}

// Unit names the metric's natural unit.
func (m Metric) Unit() string {
	switch m {
	case MetricP50, MetricP99, MetricMax:
		return "µs"
	case MetricPeakMem:
		return "B"
	case MetricBoot:
		return "cycles"
	case MetricSurvival:
		return "p"
	}
	return "op/s"
}
