package scenario

import (
	"fmt"

	iperfapp "flexos/internal/apps/iperf"
	nginxapp "flexos/internal/apps/nginx"
	redisapp "flexos/internal/apps/redis"
	sqliteapp "flexos/internal/apps/sqlite"

	"flexos/internal/core"
	"flexos/internal/libc"
	"flexos/internal/machine"
	"flexos/internal/netstack"
	"flexos/internal/oslib"
)

// The shipped scenario library. Each scenario fixes its mix parameters
// and op count at registration so that runs are reproducible; WithOps
// derives variants.
var (
	// Redis GET/SET ratios and pipelining (redis-benchmark's -P and
	// SET-ratio knobs). SETs store fresh keys, so write-heavier mixes
	// also grow the private heap — the memory axis of the frontier.
	RedisGet100 = register(redisScenario("redis-get100", "Redis, 100% GET, no pipelining", 0, 1))
	RedisGet90  = register(redisScenario("redis-get90", "Redis, 90% GET / 10% SET", 10, 1))
	RedisGet50  = register(redisScenario("redis-get50", "Redis, 50% GET / 50% SET", 50, 1))
	RedisPipe8  = register(redisScenario("redis-pipe8", "Redis, 100% GET, pipeline depth 8", 0, 8))

	// Nginx static/keepalive mixes (wrk with and without Connection:
	// close). Fresh connections pay the accept path per request.
	NginxStatic    = register(nginxScenario("nginx-static", "Nginx static files, new connection per request", 0))
	NginxKeep75    = register(nginxScenario("nginx-keep75", "Nginx static files, 75% keep-alive", 75))
	NginxKeepalive = register(nginxScenario("nginx-keepalive", "Nginx static files, all keep-alive", 100))

	// iPerf stream counts: more concurrent streams mean more scheduler
	// polling per packet, so isolating uksched costs more.
	IPerfStream1 = register(iperfScenario("iperf-stream1", "iPerf, single stream, 1460B packets", 1))
	IPerfStream4 = register(iperfScenario("iperf-stream4", "iPerf, 4 interleaved streams", 4))
	IPerfStream8 = register(iperfScenario("iperf-stream8", "iPerf, 8 interleaved streams", 8))

	// SQLite transaction batches: INSERTs per transaction (the paper's
	// Figure 10 runs one query per transaction == batch1).
	SQLiteBatch1  = register(sqliteScenario("sqlite-batch1", "SQLite INSERTs, one query per transaction", 1))
	SQLiteBatch8  = register(sqliteScenario("sqlite-batch8", "SQLite INSERTs, 8-query transactions", 8))
	SQLiteBatch32 = register(sqliteScenario("sqlite-batch32", "SQLite INSERTs, 32-query transactions", 32))
)

const (
	redisKeys    = 64
	iperfBufSize = 1460
)

// redisScenario drives GET/SET mixes with optional pipelining: setPct%
// of operations are SETs of fresh keys, and latency is sampled per
// pipeline batch of `pipe` requests.
func redisScenario(name, desc string, setPct, pipe int) *Scenario {
	return &Scenario{
		name: name, desc: desc, app: "redis",
		quad: redisapp.Components4(), has4: true,
		comps: append([]string(nil), redisapp.Components...),
		ops:   240,
		run: func(s *Scenario, spec core.ImageSpec) (Metrics, error) {
			cat, st := redisapp.Catalog()
			img, err := core.Build(cat, spec)
			if err != nil {
				return Metrics{}, err
			}
			ctx, err := img.NewContext("redis-scenario", redisapp.Name)
			if err != nil {
				return Metrics{}, err
			}
			sv, err := ctx.Call(redisapp.Name, "setup", redisKeys)
			if err != nil {
				return Metrics{}, err
			}
			boot := img.Mach.Clock.Cycles()

			ops := s.ops
			sock := sv.(int)
			// Inject the whole request stream first (the NIC side), in
			// the exact order the serve loop will consume it.
			for i := 0; i < ops; i++ {
				var req string
				if mixHit(i, setPct) {
					req = fmt.Sprintf("SET skey%d v%010d\r\n", i, i)
				} else {
					req = fmt.Sprintf("GET key%d\r\n", i%redisKeys)
				}
				if _, err := ctx.Call(netstack.Name, "rx_enqueue", sock, []byte(req)); err != nil {
					return Metrics{}, err
				}
			}

			var lat machine.LatencySampler
			startCycles := img.Mach.Clock.Cycles()
			startCross := img.Crossings()
			for i := 0; i < ops; i += pipe {
				batch := pipe
				if i+batch > ops {
					batch = ops - i
				}
				err := lat.Span(&img.Mach.Clock, func() error {
					for j := i; j < i+batch; j++ {
						fn := "serve_get"
						if mixHit(j, setPct) {
							fn = "serve_set"
						}
						ok, err := ctx.Call(redisapp.Name, fn)
						if err != nil {
							return err
						}
						if ok != true {
							return fmt.Errorf("redis: op %d (%s) failed", j, fn)
						}
					}
					return nil
				})
				if err != nil {
					return Metrics{}, err
				}
			}
			if got := st.Hits() + st.Sets(); got != uint64(ops) {
				return Metrics{}, fmt.Errorf("redis: served %d ops, want %d", got, ops)
			}
			return collect(img, &lat, ops, boot, startCycles, startCross), nil
		},
	}
}

// nginxScenario drives static file serving where keepPct% of requests
// reuse their connection; the rest accept a fresh one first.
func nginxScenario(name, desc string, keepPct int) *Scenario {
	return &Scenario{
		name: name, desc: desc, app: "nginx",
		quad: nginxapp.Components4(), has4: true,
		comps: append([]string(nil), nginxapp.Components...),
		ops:   240,
		run: func(s *Scenario, spec core.ImageSpec) (Metrics, error) {
			cat, st := nginxapp.Catalog()
			img, err := core.Build(cat, spec)
			if err != nil {
				return Metrics{}, err
			}
			ctx, err := img.NewContext("nginx-scenario", nginxapp.Name)
			if err != nil {
				return Metrics{}, err
			}
			sv, err := ctx.Call(nginxapp.Name, "setup")
			if err != nil {
				return Metrics{}, err
			}
			boot := img.Mach.Clock.Cycles()

			ops := s.ops
			sock := sv.(int)
			req := []byte("GET /index.html HTTP/1.1\r\nHost: flexos\r\n\r\n")
			for i := 0; i < ops; i++ {
				if _, err := ctx.Call(netstack.Name, "rx_enqueue", sock, req); err != nil {
					return Metrics{}, err
				}
			}

			var lat machine.LatencySampler
			startCycles := img.Mach.Clock.Cycles()
			startCross := img.Crossings()
			for i := 0; i < ops; i++ {
				fresh := !mixHit(i, keepPct)
				err := lat.Span(&img.Mach.Clock, func() error {
					if fresh {
						if _, err := ctx.Call(nginxapp.Name, "accept_conn"); err != nil {
							return err
						}
					}
					ok, err := ctx.Call(nginxapp.Name, "serve_req")
					if err != nil {
						return err
					}
					if ok != true {
						return fmt.Errorf("nginx: request %d failed", i)
					}
					return nil
				})
				if err != nil {
					return Metrics{}, err
				}
			}
			if st.Served() != uint64(ops) {
				return Metrics{}, fmt.Errorf("nginx: served %d requests, want %d", st.Served(), ops)
			}
			return collect(img, &lat, ops, boot, startCycles, startCross), nil
		},
	}
}

// iperfScenario streams fixed-size packets across `streams` interleaved
// flows: each packet demuxes by polling the other streams' state in the
// scheduler, so per-packet scheduler chatter grows with the count.
func iperfScenario(name, desc string, streams int) *Scenario {
	return &Scenario{
		name: name, desc: desc, app: "iperf",
		quad: [4]string{iperfapp.Name, libc.Name, oslib.SchedName, netstack.Name}, has4: true,
		comps: append([]string(nil), iperfapp.Components...),
		ops:   240,
		run: func(s *Scenario, spec core.ImageSpec) (Metrics, error) {
			cat, st := iperfapp.Catalog()
			img, err := core.Build(cat, spec)
			if err != nil {
				return Metrics{}, err
			}
			ctx, err := img.NewContext("iperf-scenario", iperfapp.Name)
			if err != nil {
				return Metrics{}, err
			}
			sv, err := ctx.Call(iperfapp.Name, "setup")
			if err != nil {
				return Metrics{}, err
			}
			boot := img.Mach.Clock.Cycles()

			ops := s.ops
			sock := sv.(int)
			payload := make([]byte, iperfBufSize)
			for i := 0; i < ops; i++ {
				if _, err := ctx.Call(netstack.Name, "rx_enqueue", sock, payload); err != nil {
					return Metrics{}, err
				}
			}

			var lat machine.LatencySampler
			startCycles := img.Mach.Clock.Cycles()
			startCross := img.Crossings()
			for i := 0; i < ops; i++ {
				err := lat.Span(&img.Mach.Clock, func() error {
					v, err := ctx.Call(iperfapp.Name, "recv_once", iperfBufSize)
					if err != nil {
						return err
					}
					if v.(int) != iperfBufSize {
						return fmt.Errorf("iperf: packet %d truncated to %d bytes", i, v)
					}
					// Poll the other streams before switching back.
					for k := 1; k < streams; k++ {
						if _, err := ctx.Call(oslib.SchedName, "block_poll"); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					return Metrics{}, err
				}
			}
			if st.Received() != uint64(ops)*iperfBufSize {
				return Metrics{}, fmt.Errorf("iperf: received %d bytes, want %d", st.Received(), ops*iperfBufSize)
			}
			return collect(img, &lat, ops, boot, startCycles, startCross), nil
		},
	}
}

// sqliteScenario runs INSERT transactions of `batch` queries each;
// latency is sampled per transaction.
func sqliteScenario(name, desc string, batch int) *Scenario {
	return &Scenario{
		name: name, desc: desc, app: "sqlite",
		comps: append([]string(nil), sqliteapp.Components...),
		ops:   96,
		run: func(s *Scenario, spec core.ImageSpec) (Metrics, error) {
			cat, st := sqliteapp.Catalog()
			img, err := core.Build(cat, spec)
			if err != nil {
				return Metrics{}, err
			}
			ctx, err := img.NewContext("sqlite-scenario", sqliteapp.Name)
			if err != nil {
				return Metrics{}, err
			}
			if _, err := ctx.Call(sqliteapp.Name, "open_db"); err != nil {
				return Metrics{}, err
			}
			boot := img.Mach.Clock.Cycles()

			ops := s.ops
			var lat machine.LatencySampler
			startCycles := img.Mach.Clock.Cycles()
			startCross := img.Crossings()
			done := 0
			for done < ops {
				n := batch
				if done+n > ops {
					n = ops - done
				}
				start := done
				err := lat.Span(&img.Mach.Clock, func() error {
					_, err := ctx.Call(sqliteapp.Name, "exec_batch", start, n)
					return err
				})
				if err != nil {
					return Metrics{}, err
				}
				done += n
			}
			if st.Rows() != uint64(ops) {
				return Metrics{}, fmt.Errorf("sqlite: committed %d rows, want %d", st.Rows(), ops)
			}
			return collect(img, &lat, ops, boot, startCycles, startCross), nil
		},
	}
}
