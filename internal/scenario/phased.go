package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"flexos/internal/core"
)

// Phased composes library scenarios into a time-varying workload: an
// ordered schedule of phases, each a library scenario scaled by an
// integer weight. "redis-get90*3+redis-get50" runs three rounds of the
// redis-get90 mix followed by one round of redis-get50 on the same
// image, modelling traffic whose composition shifts over time (a
// diurnal read-heavy night followed by a mixed day, a flash crowd
// changing the GET ratio mid-trace).
//
// All phases must drive the same application and therefore the same
// Figure-6 component quadruple: a phase schedule changes what the
// traffic looks like, never what the image links, so one configuration
// can be measured once under the whole schedule.
//
// The merged metric vector uses worst-case provisioning semantics —
// the numbers an operator would size the deployment by:
//
//   - Ops, Cycles, Crossings sum across phases (total work done);
//   - Throughput is the schedule-wide rate: total ops divided by the
//     summed per-phase run time (ops_i / throughput_i), i.e. the
//     harmonic ops-weighted mean, not the arithmetic mean;
//   - latency percentiles (P50us, P99us, MaxUs) take the worst phase,
//     because an SLO over a schedule is only as good as its worst
//     phase;
//   - PeakMemBytes and BootCycles take the max (each phase run boots a
//     private image; the schedule needs the largest footprint).
type Phased struct {
	parts []phasePart
}

// phasePart is one resolved phase: the scenario to run and the op
// count it executes (the scenario's op budget scaled by the weight).
type phasePart struct {
	sc     *Scenario
	weight int
	ops    int
}

var _ Workload = (*Phased)(nil)

// Phase schedule guards: a serving daemon parses specs off the wire,
// so both the phase count and the per-phase weight are bounded to keep
// one request's work proportional to its byte size.
const (
	maxPhases      = 16
	maxPhaseWeight = 1000
)

// ParsePhased parses a phase-schedule spec: scenario names joined by
// '+', each optionally scaled by an integer weight with '*', e.g.
// "redis-get90*3+redis-get50". Weights default to 1; every scenario
// must exist in the library, expose a Figure-6 quadruple, and share
// one application. The phase order is preserved — a schedule is a
// timeline, so "a+b" and "b+a" are distinct workloads.
func ParsePhased(spec string) (*Phased, error) {
	fields := strings.Split(spec, "+")
	if len(fields) > maxPhases {
		return nil, fmt.Errorf("phased %q: %d phases exceeds the limit of %d", spec, len(fields), maxPhases)
	}
	p := &Phased{parts: make([]phasePart, 0, len(fields))}
	for _, f := range fields {
		name, weight := strings.TrimSpace(f), 1
		if star := strings.IndexByte(name, '*'); star >= 0 {
			w, err := strconv.Atoi(strings.TrimSpace(name[star+1:]))
			if err != nil {
				return nil, fmt.Errorf("phased %q: bad weight in %q: %v", spec, f, err)
			}
			if w < 1 || w > maxPhaseWeight {
				return nil, fmt.Errorf("phased %q: weight %d out of range [1,%d]", spec, w, maxPhaseWeight)
			}
			name, weight = strings.TrimSpace(name[:star]), w
		}
		if name == "" {
			return nil, fmt.Errorf("phased %q: empty phase", spec)
		}
		sc, ok := ByName(name)
		if !ok {
			return nil, fmt.Errorf("phased %q: unknown scenario %q", spec, name)
		}
		if _, ok := sc.Quad(); !ok {
			return nil, fmt.Errorf("phased %q: scenario %q has no four-component space", spec, name)
		}
		p.parts = append(p.parts, phasePart{sc: sc, weight: weight, ops: sc.Ops() * weight})
	}
	if len(p.parts) == 0 {
		return nil, fmt.Errorf("phased %q: empty schedule", spec)
	}
	first := p.parts[0].sc
	for _, part := range p.parts[1:] {
		if part.sc.App() != first.App() {
			return nil, fmt.Errorf("phased %q: phases mix applications %q and %q (one image serves the whole schedule)",
				spec, first.App(), part.sc.App())
		}
	}
	return p, nil
}

// IsPhasedSpec reports whether a -scenario selector should be parsed
// as a phase schedule rather than a plain library name: any spec
// containing a '+' (phase separator) or '*' (weight) is phased.
func IsPhasedSpec(spec string) bool {
	return strings.ContainsAny(spec, "+*")
}

// Name renders the canonical spec: phases joined by '+', weights > 1
// rendered as "*w". ParsePhased(p.Name()) reproduces p, and Name is a
// fixpoint — parsing and re-rendering any accepted spelling (extra
// spaces, explicit "*1") yields this canonical form.
func (p *Phased) Name() string {
	var b strings.Builder
	for i, part := range p.parts {
		if i > 0 {
			b.WriteByte('+')
		}
		b.WriteString(part.sc.Name())
		if part.weight != 1 {
			b.WriteByte('*')
			b.WriteString(strconv.Itoa(part.weight))
		}
	}
	return b.String()
}

// Description summarizes the schedule.
func (p *Phased) Description() string {
	return fmt.Sprintf("phase schedule over %d phase(s) of %s traffic", len(p.parts), p.parts[0].sc.App())
}

// App returns the application every phase drives.
func (p *Phased) App() string { return p.parts[0].sc.App() }

// Quad returns the shared Figure-6 component quadruple.
func (p *Phased) Quad() ([4]string, bool) { return p.parts[0].sc.Quad() }

// Components returns the component list an image for the schedule must
// link (identical across phases, since they share one application).
func (p *Phased) Components() []string { return p.parts[0].sc.Components() }

// Ops returns the total primary operations one full schedule executes.
func (p *Phased) Ops() int {
	total := 0
	for _, part := range p.parts {
		total += part.ops
	}
	return total
}

// Phases returns the schedule as (scenario name, op count) pairs, in
// order — what a synthesizer or report renderer needs to narrate the
// timeline.
func (p *Phased) Phases() []struct {
	Scenario string
	Ops      int
} {
	out := make([]struct {
		Scenario string
		Ops      int
	}, len(p.parts))
	for i, part := range p.parts {
		out[i].Scenario = part.sc.Name()
		out[i].Ops = part.ops
	}
	return out
}

// WithOps returns a copy of the schedule whose total op budget is n,
// split across phases proportionally to their weights (largest-first
// remainder, every phase at least one op). The -ops flag therefore
// scales a whole schedule the way it scales a single scenario.
func (p *Phased) WithOps(n int) *Phased {
	if n < 1 {
		n = 1
	}
	totalW := 0
	for _, part := range p.parts {
		totalW += part.weight
	}
	c := &Phased{parts: make([]phasePart, len(p.parts))}
	copy(c.parts, p.parts)
	assigned := 0
	for i := range c.parts {
		ops := n * c.parts[i].weight / totalW
		if ops < 1 {
			ops = 1
		}
		c.parts[i].ops = ops
		assigned += ops
	}
	// Hand the rounding remainder to the earliest phases, one op each,
	// so the split is deterministic and sums to n when possible.
	for i := 0; assigned < n && i < len(c.parts); i, assigned = i+1, assigned+1 {
		c.parts[i].ops++
	}
	return c
}

// MemoKey namespaces the schedule's measurements: "phased[" plus each
// phase's own memo key ("name/ops") joined by '+'. Two schedules — or
// one schedule at two op budgets — never share a namespace, because
// the merged vectors differ even on identical images; and no schedule
// ever collides with a plain scenario's "name/ops" namespace.
func (p *Phased) MemoKey() string {
	var b strings.Builder
	b.WriteString("phased[")
	for i, part := range p.parts {
		if i > 0 {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "%s/%d", part.sc.Name(), part.ops)
	}
	b.WriteByte(']')
	return b.String()
}

// Run implements Workload: it runs every phase on the spec in schedule
// order and merges the per-phase vectors under the worst-case
// provisioning semantics documented on Phased.
func (p *Phased) Run(spec core.ImageSpec) (Metrics, error) {
	var agg Metrics
	var seconds float64
	for _, part := range p.parts {
		m, err := part.sc.WithOps(part.ops).Run(spec)
		if err != nil {
			return Metrics{}, fmt.Errorf("phased %s: %w", p.Name(), err)
		}
		agg.Ops += m.Ops
		agg.Cycles += m.Cycles
		agg.Crossings += m.Crossings
		if m.Throughput > 0 {
			seconds += float64(m.Ops) / m.Throughput
		}
		agg.P50us = maxF(agg.P50us, m.P50us)
		agg.P99us = maxF(agg.P99us, m.P99us)
		agg.MaxUs = maxF(agg.MaxUs, m.MaxUs)
		agg.PeakMemBytes = maxU(agg.PeakMemBytes, m.PeakMemBytes)
		agg.BootCycles = maxU(agg.BootCycles, m.BootCycles)
	}
	if seconds > 0 {
		agg.Throughput = float64(agg.Ops) / seconds
	}
	return agg, nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
