package scenario

import (
	"strings"
	"testing"
)

func TestParsePhasedCanonicalName(t *testing.T) {
	cases := []struct {
		spec, want string
	}{
		{"redis-get90+redis-get50", "redis-get90+redis-get50"},
		{"redis-get90*3+redis-get50", "redis-get90*3+redis-get50"},
		{" redis-get90 * 3 + redis-get50 * 1 ", "redis-get90*3+redis-get50"},
		{"redis-get90*1", "redis-get90"},
		{"nginx-static*2+nginx-keepalive*2", "nginx-static*2+nginx-keepalive*2"},
	}
	for _, c := range cases {
		p, err := ParsePhased(c.spec)
		if err != nil {
			t.Fatalf("ParsePhased(%q): %v", c.spec, err)
		}
		if got := p.Name(); got != c.want {
			t.Errorf("ParsePhased(%q).Name() = %q, want %q", c.spec, got, c.want)
		}
		// Name is a fixpoint of parse→render.
		p2, err := ParsePhased(p.Name())
		if err != nil {
			t.Fatalf("reparse %q: %v", p.Name(), err)
		}
		if p2.Name() != p.Name() || p2.MemoKey() != p.MemoKey() {
			t.Errorf("reparse of %q not a fixpoint: %q / %q", c.spec, p2.Name(), p2.MemoKey())
		}
	}
}

func TestParsePhasedRejects(t *testing.T) {
	bad := []string{
		"",
		"+",
		"redis-get90+",
		"nope+redis-get50",
		"redis-get90*0",
		"redis-get90*-2",
		"redis-get90*9999",
		"redis-get90*x",
		"redis-get90+nginx-static",    // mixed applications
		"sqlite-batch8+sqlite-batch1", // no four-component space
		strings.Repeat("redis-get90+", 20) + "redis-get90", // too many phases
	}
	for _, spec := range bad {
		if _, err := ParsePhased(spec); err == nil {
			t.Errorf("ParsePhased(%q) accepted, want error", spec)
		}
	}
}

func TestPhasedIdentity(t *testing.T) {
	p, err := ParsePhased("redis-get90*2+redis-get50")
	if err != nil {
		t.Fatal(err)
	}
	get90, _ := ByName("redis-get90")
	if p.App() != "redis" {
		t.Errorf("App() = %q", p.App())
	}
	quad, ok := p.Quad()
	wantQuad, _ := get90.Quad()
	if !ok || quad != wantQuad {
		t.Errorf("Quad() = %v, %v; want %v, true", quad, ok, wantQuad)
	}
	wantOps := get90.Ops()*2 + mustScenario(t, "redis-get50").Ops()
	if p.Ops() != wantOps {
		t.Errorf("Ops() = %d, want %d", p.Ops(), wantOps)
	}
	if got, want := p.Components(), get90.Components(); len(got) != len(want) {
		t.Errorf("Components() = %v, want %v", got, want)
	}
	if d := p.Description(); !strings.Contains(d, "2 phase(s)") || !strings.Contains(d, "redis") {
		t.Errorf("Description() = %q", d)
	}
	for spec, want := range map[string]bool{
		"redis-get90*2+redis-get50": true,
		"redis-get90*3":             true,
		"a+b":                       true,
		"redis-get90":               false,
		"":                          false,
	} {
		if IsPhasedSpec(spec) != want {
			t.Errorf("IsPhasedSpec(%q) = %v, want %v", spec, !want, want)
		}
	}
	key := p.MemoKey()
	if !strings.HasPrefix(key, "phased[") || !strings.Contains(key, "redis-get90/480") {
		t.Errorf("MemoKey() = %q", key)
	}
	// A schedule never shares a namespace with a plain scenario, and
	// distinct op budgets never share one either.
	if key == get90.MemoKey() {
		t.Errorf("phased memo key collides with scenario: %q", key)
	}
	if p.WithOps(100).MemoKey() == key {
		t.Errorf("WithOps did not change the memo key: %q", key)
	}
}

func mustScenario(t *testing.T, name string) *Scenario {
	t.Helper()
	s, ok := ByName(name)
	if !ok {
		t.Fatalf("scenario %q missing", name)
	}
	return s
}

func TestPhasedWithOpsSplit(t *testing.T) {
	p, err := ParsePhased("redis-get90*3+redis-get50")
	if err != nil {
		t.Fatal(err)
	}
	scaled := p.WithOps(100)
	phases := scaled.Phases()
	if len(phases) != 2 {
		t.Fatalf("phases: %v", phases)
	}
	if phases[0].Ops != 75 || phases[1].Ops != 25 {
		t.Errorf("WithOps(100) split = %d/%d, want 75/25", phases[0].Ops, phases[1].Ops)
	}
	if got := scaled.Ops(); got != 100 {
		t.Errorf("total ops = %d, want 100", got)
	}
	// Every phase keeps at least one op, even under a tiny budget.
	tiny := p.WithOps(1)
	for i, ph := range tiny.Phases() {
		if ph.Ops < 1 {
			t.Errorf("WithOps(1) phase %d has %d ops", i, ph.Ops)
		}
	}
	// WithOps never mutates the receiver.
	if p.Ops() == scaled.Ops() {
		t.Errorf("WithOps mutated the receiver")
	}
}

// TestPhasedRunMergesWorstCase checks the documented merge semantics
// against the phases run individually on the same image.
func TestPhasedRunMergesWorstCase(t *testing.T) {
	p, err := ParsePhased("redis-get90*2+redis-pipe8")
	if err != nil {
		t.Fatal(err)
	}
	get90 := mustScenario(t, "redis-get90")
	spec := baselineSpec(get90)

	merged, err := p.Run(spec)
	if err != nil {
		t.Fatalf("phased run: %v", err)
	}
	var parts []Metrics
	for _, ph := range p.Phases() {
		sc := mustScenario(t, ph.Scenario).WithOps(ph.Ops)
		m, err := sc.Run(spec)
		if err != nil {
			t.Fatalf("phase %s: %v", ph.Scenario, err)
		}
		parts = append(parts, m)
	}

	wantOps, wantCycles, wantCross := 0, uint64(0), uint64(0)
	var wantP99, wantMax, seconds float64
	var wantMem, wantBoot uint64
	for _, m := range parts {
		wantOps += m.Ops
		wantCycles += m.Cycles
		wantCross += m.Crossings
		seconds += float64(m.Ops) / m.Throughput
		wantP99 = maxF(wantP99, m.P99us)
		wantMax = maxF(wantMax, m.MaxUs)
		wantMem = maxU(wantMem, m.PeakMemBytes)
		wantBoot = maxU(wantBoot, m.BootCycles)
	}
	if merged.Ops != wantOps || merged.Cycles != wantCycles || merged.Crossings != wantCross {
		t.Errorf("sums: got ops=%d cycles=%d cross=%d, want %d/%d/%d",
			merged.Ops, merged.Cycles, merged.Crossings, wantOps, wantCycles, wantCross)
	}
	if merged.P99us != wantP99 || merged.MaxUs != wantMax {
		t.Errorf("worst-phase latency: got p99=%v max=%v, want %v/%v", merged.P99us, merged.MaxUs, wantP99, wantMax)
	}
	if merged.PeakMemBytes != wantMem || merged.BootCycles != wantBoot {
		t.Errorf("worst-phase footprint: got mem=%d boot=%d, want %d/%d",
			merged.PeakMemBytes, merged.BootCycles, wantMem, wantBoot)
	}
	wantTput := float64(wantOps) / seconds
	if diff := merged.Throughput - wantTput; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("throughput: got %v, want harmonic %v", merged.Throughput, wantTput)
	}
	// Determinism: a second run is identical.
	again, err := p.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if again != merged {
		t.Errorf("phased run not deterministic:\n%+v\n%+v", again, merged)
	}
}
