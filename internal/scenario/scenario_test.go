package scenario

import (
	"reflect"
	"strings"
	"testing"

	"flexos/internal/core"
	"flexos/internal/isolation"
	"flexos/internal/oslib"
)

// baselineSpec links every component of a scenario into one NONE
// compartment.
func baselineSpec(s *Scenario) core.ImageSpec {
	return core.ImageSpec{
		Mechanism: "none",
		Comps: []core.CompSpec{{
			Name: "comp0",
			Libs: append([]string{oslib.BootName, oslib.MMName}, s.Components()...),
		}},
	}
}

// isolatedSpec puts the scenario's last component in its own MPK
// compartment (for four-component apps that is the network stack; for
// SQLite the time subsystem — any boundary works for smoke purposes).
func isolatedSpec(s *Scenario) core.ImageSpec {
	comps := s.Components()
	return core.ImageSpec{
		Mechanism: "intel-mpk",
		GateMode:  isolation.GateFull,
		Sharing:   isolation.ShareDSS,
		Comps: []core.CompSpec{
			{Name: "comp0", Libs: append([]string{oslib.BootName, oslib.MMName}, comps[:len(comps)-1]...)},
			{Name: "comp1", Libs: comps[len(comps)-1:]},
		},
	}
}

// TestScenarioSmoke runs every library scenario on a baseline and an
// isolated image and checks the metric vector's invariants.
func TestScenarioSmoke(t *testing.T) {
	all := All()
	if len(all) < 10 {
		t.Fatalf("scenario library has %d entries, want >= 10", len(all))
	}
	for _, sc := range all {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			t.Parallel()
			base, err := sc.Run(baselineSpec(sc))
			if err != nil {
				t.Fatalf("baseline run: %v", err)
			}
			iso, err := sc.Run(isolatedSpec(sc))
			if err != nil {
				t.Fatalf("isolated run: %v", err)
			}
			for name, m := range map[string]Metrics{"baseline": base, "isolated": iso} {
				if m.Throughput <= 0 {
					t.Errorf("%s: non-positive throughput %v", name, m.Throughput)
				}
				if m.P50us <= 0 || m.P50us > m.P99us || m.P99us > m.MaxUs {
					t.Errorf("%s: latency percentiles not ordered: p50=%v p99=%v max=%v",
						name, m.P50us, m.P99us, m.MaxUs)
				}
				if m.PeakMemBytes == 0 {
					t.Errorf("%s: zero peak memory", name)
				}
				if m.BootCycles == 0 {
					t.Errorf("%s: zero boot cycles", name)
				}
				if m.Ops != sc.Ops() {
					t.Errorf("%s: ran %d ops, want %d", name, m.Ops, sc.Ops())
				}
				if m.Cycles == 0 {
					t.Errorf("%s: zero measurement cycles", name)
				}
			}
			// Isolation costs: crossings appear, throughput drops,
			// latency grows.
			if base.Crossings != 0 {
				t.Errorf("baseline image reports %d crossings, want 0", base.Crossings)
			}
			if iso.Crossings == 0 {
				t.Errorf("isolated image reports no gate crossings")
			}
			if iso.Throughput >= base.Throughput {
				t.Errorf("isolation sped the workload up: %v >= %v", iso.Throughput, base.Throughput)
			}
			if iso.P99us <= base.P99us {
				t.Errorf("isolation shrank p99: %v <= %v", iso.P99us, base.P99us)
			}
		})
	}
}

// TestScenarioDeterminism re-runs each scenario and requires the
// vectors to be byte-identical.
func TestScenarioDeterminism(t *testing.T) {
	for _, sc := range All() {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			t.Parallel()
			a, err := sc.Run(baselineSpec(sc))
			if err != nil {
				t.Fatal(err)
			}
			b, err := sc.Run(baselineSpec(sc))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("two runs disagree:\n%+v\n%+v", a, b)
			}
		})
	}
}

// TestScenarioMixesDiffer checks that the mix knobs actually change the
// workload: write ratios cost throughput and memory, stream counts cost
// throughput, batches amortize latency.
func TestScenarioMixesDiffer(t *testing.T) {
	run := func(sc *Scenario) Metrics {
		t.Helper()
		m, err := sc.Run(baselineSpec(sc))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	get100, get50 := run(RedisGet100), run(RedisGet50)
	if get50.PeakMemBytes <= get100.PeakMemBytes {
		t.Errorf("SET-heavy mix did not grow the heap: %d <= %d", get50.PeakMemBytes, get100.PeakMemBytes)
	}
	if get50.Throughput >= get100.Throughput {
		t.Errorf("SET-heavy mix did not cost throughput: %v >= %v", get50.Throughput, get100.Throughput)
	}
	pipe := run(RedisPipe8)
	if pipe.P50us <= get100.P50us*4 {
		t.Errorf("pipelined batch latency %vµs should cover ~8 requests (unpipelined %vµs)", pipe.P50us, get100.P50us)
	}
	s1, s8 := run(IPerfStream1), run(IPerfStream8)
	if s8.Throughput >= s1.Throughput {
		t.Errorf("8 streams did not cost per-packet throughput: %v >= %v", s8.Throughput, s1.Throughput)
	}
	static, keep := run(NginxStatic), run(NginxKeepalive)
	if static.Throughput >= keep.Throughput {
		t.Errorf("fresh connections did not cost throughput: %v >= %v", static.Throughput, keep.Throughput)
	}
	b1, b32 := run(SQLiteBatch1), run(SQLiteBatch32)
	if b32.Throughput <= b1.Throughput {
		t.Errorf("batching did not raise query throughput: %v <= %v", b32.Throughput, b1.Throughput)
	}
}

func TestWithOps(t *testing.T) {
	short := RedisGet90.WithOps(40)
	if short.Ops() != 40 || RedisGet90.Ops() == 40 {
		t.Fatalf("WithOps must copy: got %d, original %d", short.Ops(), RedisGet90.Ops())
	}
	m, err := short.Run(baselineSpec(short))
	if err != nil {
		t.Fatal(err)
	}
	if m.Ops != 40 {
		t.Fatalf("ran %d ops, want 40", m.Ops)
	}
	if clamped := RedisGet90.WithOps(-3); clamped.Ops() != 1 {
		t.Fatalf("WithOps(-3) = %d ops, want clamp to 1", clamped.Ops())
	}
}

func TestRegistryLookups(t *testing.T) {
	if _, ok := ByName("redis-get90"); !ok {
		t.Fatal("redis-get90 missing from the library")
	}
	if _, ok := ByName("no-such"); ok {
		t.Fatal("ByName invented a scenario")
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
	apps := map[string]bool{}
	for _, sc := range All() {
		apps[sc.App()] = true
		if sc.Description() == "" {
			t.Errorf("%s: empty description", sc.Name())
		}
		if q, ok := sc.Quad(); ok && q[0] == "" {
			t.Errorf("%s: empty quad", sc.Name())
		}
	}
	for _, app := range []string{"redis", "nginx", "iperf", "sqlite"} {
		if !apps[app] {
			t.Errorf("no scenario for %s", app)
		}
	}
}

func TestMixHit(t *testing.T) {
	for _, pct := range []int{0, 10, 25, 50, 75, 90, 100} {
		hits := 0
		for i := 0; i < 1000; i++ {
			if mixHit(i, pct) {
				hits++
			}
		}
		if want := pct * 10; hits != want {
			t.Errorf("pct=%d: %d hits in 1000 ops, want %d", pct, hits, want)
		}
	}
}

func TestMetricSelectors(t *testing.T) {
	mx := Metrics{Throughput: 1000, P50us: 1, P99us: 2, MaxUs: 3, PeakMemBytes: 4096, BootCycles: 99, Survival: 0.5}
	cases := []struct {
		m    Metric
		v    float64
		high bool
	}{
		{MetricThroughput, 1000, true},
		{MetricP50, 1, false},
		{MetricP99, 2, false},
		{MetricMax, 3, false},
		{MetricPeakMem, 4096, false},
		{MetricBoot, 99, false},
		{MetricSurvival, 0.5, true},
	}
	for _, c := range cases {
		if got := c.m.Value(mx); got != c.v {
			t.Errorf("%s.Value = %v, want %v", c.m, got, c.v)
		}
		if c.m.HigherIsBetter() != c.high {
			t.Errorf("%s.HigherIsBetter = %v", c.m, c.m.HigherIsBetter())
		}
		if c.m.Unit() == "" {
			t.Errorf("%s has no unit", c.m)
		}
		parsed, err := ParseMetric(string(c.m))
		if err != nil || parsed != c.m {
			t.Errorf("ParseMetric(%q) = %v, %v", c.m, parsed, err)
		}
	}
	if MetricThroughput.Meets(10, 20) || !MetricThroughput.Meets(20, 20) {
		t.Error("throughput budget must be a floor")
	}
	if MetricP99.Meets(21, 20) || !MetricP99.Meets(20, 20) {
		t.Error("latency budget must be a ceiling")
	}
	if m, err := ParseMetric(""); err != nil || m != MetricThroughput {
		t.Errorf("ParseMetric(\"\") = %v, %v; want throughput default", m, err)
	}
	if _, err := ParseMetric("latency"); err == nil {
		t.Error("ParseMetric accepted an unknown name")
	}
	if len(AllMetrics()) != 7 {
		t.Errorf("AllMetrics lists %d metrics, want 7", len(AllMetrics()))
	}
	if !MetricSurvival.ImprovesWithSafety() || MetricThroughput.ImprovesWithSafety() {
		t.Error("only survival improves with safety")
	}
	if s := mx.String(); !strings.Contains(s, "surv=0.500000") {
		t.Errorf("Metrics.String missing survival: %q", s)
	}
	if s := (Metrics{Throughput: 1}).String(); strings.Contains(s, "surv=") {
		t.Errorf("Metrics.String must omit zero survival: %q", s)
	}
	if s := mx.String(); !strings.Contains(s, "p99") || !strings.Contains(s, "op/s") {
		t.Errorf("Metrics.String missing fields: %q", s)
	}
}
