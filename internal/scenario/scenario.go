// Package scenario provides the multi-metric workload layer of the
// design-space exploration: a library of mixed application scenarios
// (Redis GET/SET ratios and pipelining, Nginx static/keepalive mixes,
// iPerf stream counts, SQLite transaction batches) that each run on a
// built image and produce a full Metrics vector — throughput, latency
// percentiles sampled from the deterministic cycle clock, peak simulated
// memory, and boot cost.
//
// The paper's exploration (§5) ranks configurations by a single scalar
// "comparable across configurations and runs". Real isolation decisions
// trade throughput against tail latency, memory footprint and boot time;
// this package supplies the vectors and the Metric selectors that let
// internal/explore budget on any dimension and extract Pareto frontiers.
package scenario

import (
	"fmt"
	"sort"

	"flexos/internal/core"
	"flexos/internal/machine"
)

// Workload is anything that can run on a built image configuration and
// report a full metric vector. Scenario is the shipped implementation;
// tests and callers may provide their own.
type Workload interface {
	// Name identifies the workload (memo-key namespace, CLI selector).
	Name() string
	// Description is a one-line human summary.
	Description() string
	// Run builds an image for the spec, executes the workload, and
	// returns its metric vector. Implementations must be deterministic
	// and safe for concurrent use (each call builds a private image).
	Run(spec core.ImageSpec) (Metrics, error)
}

// Scenario is one entry of the shipped workload library.
type Scenario struct {
	name  string
	desc  string
	app   string    // application selector: "redis", "nginx", "iperf", "sqlite"
	quad  [4]string // Figure-6 component quadruple, when the app has one
	has4  bool
	comps []string // full component list (without the TCB)
	ops   int      // primary operations per run
	run   func(s *Scenario, spec core.ImageSpec) (Metrics, error)
}

var _ Workload = (*Scenario)(nil)

// Name returns the scenario identifier, e.g. "redis-get90".
func (s *Scenario) Name() string { return s.name }

// Description returns the one-line summary.
func (s *Scenario) Description() string { return s.desc }

// App returns the application the scenario drives ("redis", "nginx",
// "iperf" or "sqlite").
func (s *Scenario) App() string { return s.app }

// Ops returns the number of primary operations one run executes.
func (s *Scenario) Ops() int { return s.ops }

// Quad returns the application's Figure-6 component quadruple (app,
// libc, scheduler, network stack) when it has one — the shape the
// Fig6Space generator partitions. SQLite images link six components and
// report ok == false.
func (s *Scenario) Quad() ([4]string, bool) { return s.quad, s.has4 }

// Components returns the full component list an image for this scenario
// must link, excluding the TCB libraries.
func (s *Scenario) Components() []string { return append([]string(nil), s.comps...) }

// WithOps returns a copy of the scenario that executes n primary
// operations per run (n is clamped to at least one batch). Callers that
// share an exploration memo across runs must namespace it with the op
// count, since metric vectors depend on it.
func (s *Scenario) WithOps(n int) *Scenario {
	if n < 1 {
		n = 1
	}
	c := *s
	c.ops = n
	return &c
}

// MemoKey returns the namespace under which the scenario's
// measurements may be cached in an exploration memo: the scenario name
// plus the operation count, e.g. "redis-get90/240". Two scenarios (or
// the same scenario at different op counts) never share a namespace,
// because their metric vectors differ even on identical images.
func (s *Scenario) MemoKey() string { return fmt.Sprintf("%s/%d", s.name, s.ops) }

// Run implements Workload.
func (s *Scenario) Run(spec core.ImageSpec) (Metrics, error) {
	m, err := s.run(s, spec)
	if err != nil {
		return Metrics{}, fmt.Errorf("scenario %s: %w", s.name, err)
	}
	return m, nil
}

// registry holds the shipped library, populated in runners.go.
var registry = map[string]*Scenario{}

func register(s *Scenario) *Scenario {
	if _, dup := registry[s.name]; dup {
		panic("scenario: duplicate " + s.name)
	}
	registry[s.name] = s
	return s
}

// All returns the shipped scenario library, sorted by name.
func All() []*Scenario {
	out := make([]*Scenario, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// ByName resolves a scenario by its identifier.
func ByName(name string) (*Scenario, bool) {
	s, ok := registry[name]
	return s, ok
}

// Names lists the library's scenario names, sorted.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, s := range all {
		out[i] = s.name
	}
	return out
}

// mixHit reports whether operation i of a deterministic pct% mix is a
// "hit" (Bresenham-style spreading: exactly pct hits per 100 ops,
// evenly interleaved, no randomness).
func mixHit(i, pct int) bool {
	return (i+1)*pct/100 > i*pct/100
}

// peakMemory sums the image's memory high-water marks: per-compartment
// private heap peaks, the shared heap peak, and the DSS reservation.
func peakMemory(img *core.Image) uint64 {
	var total uint64
	for _, c := range img.Compartments() {
		total += c.Heap.Stats().BytesPeak
	}
	total += img.SharedHeap().Stats().BytesPeak
	total += uint64(img.DSSBytes())
	return total
}

// collect assembles the metric vector after a measurement loop:
// bootCycles is the clock at first served operation, startCycles /
// startCross the clock and gate counters when measurement began.
func collect(img *core.Image, lat *machine.LatencySampler, ops int, bootCycles, startCycles, startCross uint64) Metrics {
	cycles := img.Mach.Clock.Cycles() - startCycles
	seconds := float64(cycles) / img.Mach.Costs.FreqHz
	var tput float64
	if seconds > 0 {
		tput = float64(ops) / seconds
	}
	return Metrics{
		Throughput:   tput,
		P50us:        img.Mach.Costs.Micros(lat.Percentile(50)),
		P99us:        img.Mach.Costs.Micros(lat.Percentile(99)),
		MaxUs:        img.Mach.Costs.Micros(lat.Max()),
		PeakMemBytes: peakMemory(img),
		BootCycles:   bootCycles,
		Cycles:       cycles,
		Ops:          ops,
		Crossings:    img.Crossings() - startCross,
	}
}
