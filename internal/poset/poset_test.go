package poset

import (
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// divides is a classic partial order on integers.
func divides(a, b int) bool { return b%a == 0 }

func TestDividesPoset(t *testing.T) {
	items := []int{1, 2, 3, 4, 6, 12}
	p := New(items, divides)
	if err := p.CheckOrder(); err != nil {
		t.Fatal(err)
	}
	if !p.Leq(1, 3) { // 2 divides 4
		t.Fatal("2 | 4 expected")
	}
	if p.Comparable(1, 2) { // 2 vs 3
		t.Fatal("2 and 3 must be incomparable")
	}
	// Hasse edges: 1-2, 1-3, 2-4, 2-6, 3-6, 4-12, 6-12 (no 1-4 etc.).
	edges := p.Edges()
	has := func(a, b int) bool {
		for _, e := range edges {
			if items[e[0]] == a && items[e[1]] == b {
				return true
			}
		}
		return false
	}
	for _, e := range [][2]int{{1, 2}, {1, 3}, {2, 4}, {2, 6}, {3, 6}, {4, 12}, {6, 12}} {
		if !has(e[0], e[1]) {
			t.Fatalf("missing covering edge %v", e)
		}
	}
	if has(1, 4) || has(1, 12) || has(2, 12) {
		t.Fatal("transitive edge leaked into the reduction")
	}
}

func TestMaximalWithFilter(t *testing.T) {
	items := []int{1, 2, 3, 4, 6, 12}
	p := New(items, divides)
	// Unfiltered: 12 is the unique maximum.
	max := p.Maximal(func(int) bool { return true })
	if len(max) != 1 || items[max[0]] != 12 {
		t.Fatalf("maximal = %v", max)
	}
	// Budget-style filter excluding 12 and 6: maximal become 4 and 3.
	max = p.Maximal(func(v int) bool { return v != 12 && v != 6 })
	var got []int
	for _, i := range max {
		got = append(got, items[i])
	}
	sort.Ints(got)
	if !reflect.DeepEqual(got, []int{3, 4}) {
		t.Fatalf("filtered maximal = %v, want [3 4]", got)
	}
}

func TestMinimal(t *testing.T) {
	p := New([]int{2, 3, 4, 6, 12}, divides)
	min := p.Minimal()
	var got []int
	for _, i := range min {
		got = append(got, p.Item(i))
	}
	sort.Ints(got)
	if !reflect.DeepEqual(got, []int{2, 3}) {
		t.Fatalf("minimal = %v", got)
	}
}

func TestAbove(t *testing.T) {
	items := []int{2, 4, 8, 3}
	p := New(items, divides)
	above := p.Above(0) // above 2: 4, 8
	var got []int
	for _, i := range above {
		got = append(got, items[i])
	}
	sort.Ints(got)
	if !reflect.DeepEqual(got, []int{4, 8}) {
		t.Fatalf("above(2) = %v", got)
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	items := []int{12, 1, 6, 2, 3, 4}
	p := New(items, divides)
	order := p.TopoOrder()
	if len(order) != len(items) {
		t.Fatalf("topo order dropped items: %v", order)
	}
	pos := make(map[int]int)
	for idx, i := range order {
		pos[i] = idx
	}
	for _, e := range p.Edges() {
		if pos[e[0]] > pos[e[1]] {
			t.Fatalf("topo order violates edge %v", e)
		}
	}
}

func TestCheckOrderRejectsBadRelation(t *testing.T) {
	// "a <= b iff a < b" is not reflexive.
	p := New([]int{1, 2}, func(a, b int) bool { return a < b })
	if err := p.CheckOrder(); err == nil {
		t.Fatal("non-reflexive relation accepted")
	}
}

// Property: Maximal elements are pairwise incomparable, for random
// divisibility posets.
func TestMaximalAntichainProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		seen := map[int]bool{}
		var items []int
		for _, r := range raw {
			v := int(r%50) + 1
			if !seen[v] {
				seen[v] = true
				items = append(items, v)
			}
		}
		if len(items) == 0 {
			return true
		}
		p := New(items, divides)
		max := p.Maximal(func(int) bool { return true })
		for a := 0; a < len(max); a++ {
			for b := a + 1; b < len(max); b++ {
				if p.Comparable(max[a], max[b]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDOTOutput(t *testing.T) {
	p := New([]int{1, 2, 4}, divides)
	dot := p.DOT("lattice", func(i int, v int) DOTNode {
		return DOTNode{Label: "v", Shade: float64(v) / 4, Star: v == 4, Pruned: v == 1}
	})
	for _, want := range []string{"digraph", "n0 -> n1", "n1 -> n2", "doubleoctagon", "dashed"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}
