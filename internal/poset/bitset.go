package poset

import "math/bits"

// Bitset is a fixed-size set of small integers backed by a []uint64,
// the package's currency for order rows and for the exploration
// engine's decided/feasible frontiers. The zero value is an empty set
// of size 0; NewBitset sizes one. Operations never allocate (beyond
// NewBitset itself), which is what lets the engine keep per-decision
// bookkeeping off the heap at 10k–1M-point space sizes.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an empty bitset over [0, n).
func NewBitset(n int) Bitset {
	return Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// bitsetOver wraps existing word storage as a bitset over [0, n); the
// poset uses it to expose matrix rows without copying.
func bitsetOver(words []uint64, n int) Bitset { return Bitset{words: words, n: n} }

// Len returns the size of the universe [0, n).
func (b Bitset) Len() int { return b.n }

// Set adds i to the set.
func (b Bitset) Set(i int) { b.words[i>>6] |= 1 << uint(i&63) }

// Clear removes i from the set.
func (b Bitset) Clear(i int) { b.words[i>>6] &^= 1 << uint(i&63) }

// Test reports whether i is in the set.
func (b Bitset) Test(i int) bool { return b.words[i>>6]&(1<<uint(i&63)) != 0 }

// Count returns the number of elements in the set.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// CountAnd returns |b ∩ o| without materializing the intersection.
// The sets must have equal Len.
func (b Bitset) CountAnd(o Bitset) int {
	n := 0
	for k, w := range b.words {
		n += bits.OnesCount64(w & o.words[k])
	}
	return n
}

// Intersects reports whether the two sets share an element. The sets
// must have equal Len.
func (b Bitset) Intersects(o Bitset) bool {
	for k, w := range b.words {
		if w&o.words[k] != 0 {
			return true
		}
	}
	return false
}

// ContainsAll reports whether o ⊆ b. The sets must have equal Len.
func (b Bitset) ContainsAll(o Bitset) bool {
	for k, w := range o.words {
		if w&^b.words[k] != 0 {
			return false
		}
	}
	return true
}

// Reset empties the set in place.
func (b Bitset) Reset() {
	for k := range b.words {
		b.words[k] = 0
	}
}

// ForEach calls fn for every element of the set in ascending order.
func (b Bitset) ForEach(fn func(i int)) {
	for k, w := range b.words {
		for w != 0 {
			i := k<<6 + bits.TrailingZeros64(w)
			if i >= b.n {
				return
			}
			fn(i)
			w &= w - 1
		}
	}
}
