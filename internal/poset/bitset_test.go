package poset

import (
	"math/rand"
	"testing"
)

// TestBitsetAgainstMapOracle drives a Bitset and a map[int]bool through
// the same random operation sequence and requires them to agree on
// every query — the same oracle style the exploration engine's frontier
// tests use.
func TestBitsetAgainstMapOracle(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 200, 1000} {
		rng := rand.New(rand.NewSource(int64(n)))
		b := NewBitset(n)
		oracle := map[int]bool{}
		for step := 0; step < 2000 && n > 0; step++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				b.Set(i)
				oracle[i] = true
			case 1:
				b.Clear(i)
				delete(oracle, i)
			case 2:
				if b.Test(i) != oracle[i] {
					t.Fatalf("n=%d step=%d: Test(%d) = %v, oracle %v", n, step, i, b.Test(i), oracle[i])
				}
			}
		}
		if b.Count() != len(oracle) {
			t.Fatalf("n=%d: Count() = %d, oracle %d", n, b.Count(), len(oracle))
		}
		got := map[int]bool{}
		b.ForEach(func(i int) { got[i] = true })
		if len(got) != len(oracle) {
			t.Fatalf("n=%d: ForEach visited %d elements, oracle %d", n, len(got), len(oracle))
		}
		for i := range oracle {
			if !got[i] {
				t.Fatalf("n=%d: ForEach missed %d", n, i)
			}
		}
	}
}

func TestBitsetForEachAscending(t *testing.T) {
	b := NewBitset(130)
	for _, i := range []int{129, 0, 64, 63, 65, 7} {
		b.Set(i)
	}
	var seen []int
	b.ForEach(func(i int) { seen = append(seen, i) })
	want := []int{0, 7, 63, 64, 65, 129}
	if len(seen) != len(want) {
		t.Fatalf("ForEach = %v, want %v", seen, want)
	}
	for k := range want {
		if seen[k] != want[k] {
			t.Fatalf("ForEach = %v, want %v", seen, want)
		}
	}
}

func TestBitsetSetOps(t *testing.T) {
	a, b := NewBitset(100), NewBitset(100)
	a.Set(3)
	a.Set(70)
	b.Set(70)
	if !a.Intersects(b) {
		t.Fatal("a and b share 70 but Intersects is false")
	}
	if !a.ContainsAll(b) {
		t.Fatal("b ⊆ a but ContainsAll is false")
	}
	if b.ContainsAll(a) {
		t.Fatal("a ⊄ b but ContainsAll is true")
	}
	b.Clear(70)
	if a.Intersects(b) {
		t.Fatal("disjoint sets report Intersects")
	}
	a.Reset()
	if a.Count() != 0 {
		t.Fatalf("Count after Reset = %d", a.Count())
	}
}
