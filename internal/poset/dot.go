package poset

import (
	"fmt"
	"strings"
)

// DOTNode describes how one poset element renders in Graphviz output.
type DOTNode struct {
	// Label is the node text.
	Label string
	// Shade in [0,1] maps to the fill intensity — Figure 8 colors nodes
	// by performance, black being the fastest.
	Shade float64
	// Star marks the safest-under-budget elements (drawn with a
	// distinct border, like Figure 8's stars).
	Star bool
	// Pruned marks nodes excluded by the performance budget (Figure 5's
	// gray nodes).
	Pruned bool
}

// DOT renders the poset's Hasse diagram (covering relation only) as a
// Graphviz digraph, with nodes styled by the supplied descriptor
// function. Piping the output through `dot -Tsvg` reproduces the
// paper's Figure 5/Figure 8 visuals.
func (p *Poset[T]) DOT(name string, describe func(i int, item T) DOTNode) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=BT;\n  node [style=filled, fontname=\"Helvetica\"];\n")
	for i, item := range p.items {
		d := describe(i, item)
		gray := int(255 * (1 - clamp01(d.Shade)))
		font := "black"
		if gray < 110 {
			font = "white"
		}
		attrs := fmt.Sprintf("label=%q, fillcolor=\"#%02x%02x%02x\", fontcolor=%s",
			d.Label, gray, gray, gray, font)
		if d.Star {
			attrs += ", shape=doubleoctagon, color=green, penwidth=3"
		}
		if d.Pruned {
			attrs += ", style=\"filled,dashed\""
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", i, attrs)
	}
	for _, e := range p.Edges() {
		fmt.Fprintf(&b, "  n%d -> n%d;\n", e[0], e[1])
	}
	b.WriteString("}\n")
	return b.String()
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
