package poset

import (
	"math/rand"
	"testing"
)

// Property tests over random partially ordered sets. Two generator
// families are used, both partial orders by construction:
//
//   - subset order over random bitmasks (a ≤ b iff a's bits ⊆ b's),
//     the same shape as the hardening lattice;
//   - divisibility order over random positive integers.
//
// The relations are checked for reflexivity, antisymmetry and
// transitivity directly, then the derived structures (Edges, Maximal,
// Minimal, TopoOrder) are checked against their definitions.

// distinctMasks generates n distinct random uint16 bitmasks.
func distinctMasks(rng *rand.Rand, n int) []uint16 {
	seen := map[uint16]bool{}
	var out []uint16
	for len(out) < n {
		m := uint16(rng.Intn(1 << 16))
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

func subsetLeq(a, b uint16) bool { return a&^b == 0 }

func TestRandomSubsetOrderIsPartialOrder(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		items := distinctMasks(rng, 40)
		p := New(items, subsetLeq)

		if err := p.CheckOrder(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		n := p.Len()
		for i := 0; i < n; i++ {
			if !p.Leq(i, i) {
				t.Fatalf("seed %d: not reflexive at %d", seed, i)
			}
			for j := 0; j < n; j++ {
				// Antisymmetry: mutual order implies identical items,
				// impossible for distinct masks.
				if i != j && p.Leq(i, j) && p.Leq(j, i) {
					t.Fatalf("seed %d: antisymmetry violated at (%d, %d): %04x vs %04x",
						seed, i, j, items[i], items[j])
				}
				// Transitivity, checked directly against the relation.
				if !p.Leq(i, j) {
					continue
				}
				for k := 0; k < n; k++ {
					if p.Leq(j, k) && !p.Leq(i, k) {
						t.Fatalf("seed %d: transitivity violated at (%d, %d, %d)", seed, i, j, k)
					}
				}
			}
		}
	}
}

func TestRandomDivisibilityOrderIsPartialOrder(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		rng := rand.New(rand.NewSource(seed))
		seen := map[int]bool{}
		var items []int
		for len(items) < 30 {
			v := rng.Intn(4000) + 1
			if !seen[v] {
				seen[v] = true
				items = append(items, v)
			}
		}
		p := New(items, func(a, b int) bool { return b%a == 0 })
		if err := p.CheckOrder(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range items {
			for j := range items {
				if i != j && p.Leq(i, j) && p.Leq(j, i) {
					t.Fatalf("seed %d: antisymmetry violated: %d and %d", seed, items[i], items[j])
				}
			}
		}
	}
}

// TestEdgesAreTransitiveReduction checks Edges against the definition
// on random spaces: every edge is a strict relation with nothing in
// between, and every covered strict pair appears.
func TestEdgesAreTransitiveReduction(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		items := distinctMasks(rng, 30)
		p := New(items, subsetLeq)
		n := p.Len()

		onEdge := map[[2]int]bool{}
		for _, e := range p.Edges() {
			onEdge[e] = true
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j || !p.Leq(i, j) {
					if onEdge[[2]int{i, j}] {
						t.Fatalf("seed %d: edge (%d,%d) without strict order", seed, i, j)
					}
					continue
				}
				covered := false
				for k := 0; k < n; k++ {
					if k != i && k != j && p.Leq(i, k) && !p.Leq(k, i) && p.Leq(k, j) && !p.Leq(j, k) {
						covered = true
						break
					}
				}
				if want := !covered; onEdge[[2]int{i, j}] != want {
					t.Fatalf("seed %d: edge (%d,%d) presence %v, want %v",
						seed, i, j, onEdge[[2]int{i, j}], want)
				}
			}
		}
	}
}

// TestMaximalMinimalProperties checks the extremal queries against
// brute force under random keep-filters.
func TestMaximalMinimalProperties(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		items := distinctMasks(rng, 35)
		p := New(items, subsetLeq)
		keepSet := map[uint16]bool{}
		for _, it := range items {
			if rng.Intn(2) == 0 {
				keepSet[it] = true
			}
		}
		keep := func(v uint16) bool { return keepSet[v] }

		maximal := map[int]bool{}
		for _, i := range p.Maximal(keep) {
			maximal[i] = true
			if !keep(items[i]) {
				t.Fatalf("seed %d: Maximal returned filtered-out %d", seed, i)
			}
		}
		for i, vi := range items {
			if !keep(vi) {
				if maximal[i] {
					t.Fatalf("seed %d: filtered-out %d marked maximal", seed, i)
				}
				continue
			}
			dominated := false
			for j, vj := range items {
				if i != j && keep(vj) && p.Leq(i, j) && !p.Leq(j, i) {
					dominated = true
					break
				}
			}
			if dominated == maximal[i] {
				t.Fatalf("seed %d: item %d dominated=%v maximal=%v", seed, i, dominated, maximal[i])
			}
		}

		minimal := map[int]bool{}
		for _, i := range p.Minimal() {
			minimal[i] = true
		}
		for i := range items {
			hasBelow := false
			for j := range items {
				if i != j && p.Leq(j, i) && !p.Leq(i, j) {
					hasBelow = true
					break
				}
			}
			if hasBelow == minimal[i] {
				t.Fatalf("seed %d: item %d hasBelow=%v minimal=%v", seed, i, hasBelow, minimal[i])
			}
		}
	}
}

// TestTopoOrderRespectsEdges checks TopoOrder is a complete ordering
// consistent with the covering relation on random spaces.
func TestTopoOrderRespectsEdgesOnRandomSpaces(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		items := distinctMasks(rng, 40)
		p := New(items, subsetLeq)

		order := p.TopoOrder()
		if len(order) != p.Len() {
			t.Fatalf("seed %d: topo order covers %d of %d", seed, len(order), p.Len())
		}
		pos := make([]int, p.Len())
		for rank, i := range order {
			pos[i] = rank
		}
		for _, e := range p.Edges() {
			if pos[e[0]] >= pos[e[1]] {
				t.Fatalf("seed %d: edge (%d,%d) but positions %d >= %d",
					seed, e[0], e[1], pos[e[0]], pos[e[1]])
			}
		}
	}
}

// TestCheckOrderRejectsNonOrders feeds CheckOrder broken relations and
// expects complaints.
func TestCheckOrderRejectsNonOrders(t *testing.T) {
	items := []int{1, 2, 3}
	if err := New(items, func(a, b int) bool { return a < b }).CheckOrder(); err == nil {
		t.Error("irreflexive relation accepted")
	}
	// Intransitive: 1≤2, 2≤3, but not 1≤3.
	intrans := func(a, b int) bool {
		return a == b || (a == 1 && b == 2) || (a == 2 && b == 3)
	}
	if err := New(items, intrans).CheckOrder(); err == nil {
		t.Error("intransitive relation accepted")
	}
}
