// Package poset implements the partially ordered sets behind FlexOS'
// design-space exploration (§5, "partial safety ordering"): nodes are
// safety configurations, a directed edge means one configuration is
// probabilistically at least as safe as another, and — given a
// performance label per node and a minimum performance budget — the
// "safest configurations under the budget" are the maximal elements of
// the sub-poset meeting the budget.
//
// The package is generic: the exploration layer instantiates it with its
// configuration descriptor, and tests instantiate it with integers.
//
// New evaluates the order relation once per ordered pair and stores the
// result in a bitset matrix; every query afterwards — Leq, Edges,
// Maximal, TopoOrder — runs on bit operations instead of re-invoking
// the (potentially allocating) relation. The transitive reduction in
// Edges intersects "strictly above" and "strictly below" bitsets, so
// building the Hasse diagram of an n-point space costs O(n³/64) word
// operations after the O(n²) relation evaluations — what keeps the
// exploration engine's setup negligible even for the multi-hundred
// point cross-application spaces.
package poset

import "fmt"

// Poset is a finite partially ordered set over items of type T with
// order relation leq ("less or equally safe"). leq must be reflexive,
// antisymmetric (up to item identity) and transitive; CheckOrder can
// verify a candidate relation on the given items.
type Poset[T any] struct {
	items []T
	words int      // bitset words per row
	rows  []uint64 // n rows × words bits: bit j of row i == leq(i, j)
}

// New builds a poset over items with the given order relation,
// evaluating it once per ordered pair.
func New[T any](items []T, leq func(a, b T) bool) *Poset[T] {
	n := len(items)
	w := (n + 63) / 64
	p := &Poset[T]{items: items, words: w, rows: make([]uint64, n*w)}
	for i := 0; i < n; i++ {
		row := p.rows[i*w : (i+1)*w]
		for j := 0; j < n; j++ {
			if leq(items[i], items[j]) {
				row[j>>6] |= 1 << uint(j&63)
			}
		}
	}
	return p
}

// Len returns the number of items.
func (p *Poset[T]) Len() int { return len(p.items) }

// Item returns the i-th item.
func (p *Poset[T]) Item(i int) T { return p.items[i] }

// Items returns the underlying slice (not a copy; do not mutate).
func (p *Poset[T]) Items() []T { return p.items }

// row exposes the i-th matrix row — the set {j : leq(i, j)} — as a
// bitset view over the shared storage, without copying.
func (p *Poset[T]) row(i int) Bitset {
	return bitsetOver(p.rows[i*p.words:(i+1)*p.words], len(p.items))
}

// UpSet exposes the up-set of item i — the set {j : leq(i, j)}, i.e.
// everything at least as safe as i, including i itself and any
// order-equivalent items — as a bitset view over the shared matrix
// storage, without copying. Callers must not mutate it. The budgeted
// exploration engine uses up-sets (and their transposes) as the
// reachability currency of branch-and-bound pruning.
func (p *Poset[T]) UpSet(i int) Bitset { return p.row(i) }

// Leq reports whether item i is less-or-equally safe than item j.
func (p *Poset[T]) Leq(i, j int) bool {
	return p.row(i).Test(j)
}

// Comparable reports whether two items lie on a common path.
func (p *Poset[T]) Comparable(i, j int) bool {
	return p.Leq(i, j) || p.Leq(j, i)
}

// less is strict order: leq and not geq.
func (p *Poset[T]) less(i, j int) bool {
	return p.Leq(i, j) && !p.Leq(j, i)
}

// Edges returns the covering relation — the transitive reduction of the
// order, i.e. the edges one would draw in the Hasse diagram / DAG of
// Figure 5. An edge (i, j) means i < j with nothing in between.
func (p *Poset[T]) Edges() [][2]int {
	n := len(p.items)
	w := p.words
	// above[i] holds the items strictly above i; below[j] the items
	// strictly below j. An i < j pair is covered exactly when the two
	// sets intersect.
	above := make([]uint64, n*w)
	below := make([]uint64, n*w)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && p.less(i, j) {
				above[i*w+(j>>6)] |= 1 << uint(j&63)
				below[j*w+(i>>6)] |= 1 << uint(i&63)
			}
		}
	}
	var edges [][2]int
	for i := 0; i < n; i++ {
		ai := bitsetOver(above[i*w:(i+1)*w], n)
		for j := 0; j < n; j++ {
			if i == j || !p.less(i, j) {
				continue
			}
			bj := bitsetOver(below[j*w:(j+1)*w], n)
			if !ai.Intersects(bj) {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return edges
}

// Maximal returns the indices of the maximal elements among the items
// for which keep returns true — the sinks of the filtered DAG (the green
// nodes of Figure 5, the stars of Figure 8).
func (p *Poset[T]) Maximal(keep func(T) bool) []int {
	var out []int
	for i, it := range p.items {
		if !keep(it) {
			continue
		}
		dominated := false
		for j, jt := range p.items {
			if i == j || !keep(jt) {
				continue
			}
			if p.less(i, j) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// Minimal returns the indices of minimal elements (sources of the DAG).
func (p *Poset[T]) Minimal() []int {
	var out []int
	for i := range p.items {
		minimal := true
		for j := range p.items {
			if i != j && p.less(j, i) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, i)
		}
	}
	return out
}

// Above returns the indices of all items strictly safer than i.
func (p *Poset[T]) Above(i int) []int {
	var out []int
	for j := range p.items {
		if j != i && p.less(i, j) {
			out = append(out, j)
		}
	}
	return out
}

// TopoOrder returns the item indices in a topological order of the
// safety DAG: less-safe items first. The exploration uses it to measure
// in an order where monotonic pruning is sound.
func (p *Poset[T]) TopoOrder() []int {
	n := len(p.items)
	indeg := make([]int, n)
	succ := make([][]int, n)
	for _, e := range p.Edges() {
		succ[e[0]] = append(succ[e[0]], e[1])
		indeg[e[1]]++
	}
	var queue, order []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, i)
		for _, j := range succ[i] {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	return order
}

// CheckOrder verifies that leq is a partial order on the items:
// reflexive, antisymmetric (by index), transitive. Intended for tests
// and for validating custom safety relations.
func (p *Poset[T]) CheckOrder() error {
	n := len(p.items)
	for i := 0; i < n; i++ {
		if !p.Leq(i, i) {
			return fmt.Errorf("poset: leq not reflexive at %d", i)
		}
	}
	// Transitivity: whenever i <= j, everything above j must be above
	// i, i.e. row(j) ⊆ row(i).
	for i := 0; i < n; i++ {
		ri := p.row(i)
		for j := 0; j < n; j++ {
			if !p.Leq(i, j) {
				continue
			}
			if !ri.ContainsAll(p.row(j)) {
				for k := 0; k < n; k++ {
					if p.Leq(j, k) && !p.Leq(i, k) {
						return fmt.Errorf("poset: leq not transitive at (%d,%d,%d)", i, j, k)
					}
				}
			}
		}
	}
	return nil
}
