// Package netstack implements the LwIP analogue: FlexOS-Go's TCP/IP
// stack component. Table 1 reports it as the largest porting effort
// (+542/-275 lines, 23 shared variables, 2-5 days); Figures 6 and 9
// isolate it under the name "lwip".
//
// The stack is functional at the data-plane level: packets are byte
// buffers in the component's private heap, receive copies them into
// caller-provided buffers through checked simulated-memory operations
// (so a caller passing a private buffer across a compartment boundary
// faults, which is exactly the porting crash-loop of §4.4), and
// per-byte processing cost is charged so batching effects (Fig. 9)
// emerge naturally.
package netstack

import (
	"fmt"

	"flexos/internal/core"
)

// Name is the component name used in configuration files.
const Name = "lwip"

// Cost calibration (cycles). ProcessPerByte covers checksumming and
// protocol processing; at 4 cy/B the iPerf curve saturates near the
// paper's ~4 Gb/s.
const (
	socketWork     = 80
	recvWork       = 120
	sendWork       = 110
	enqueueWork    = 90
	ProcessPerByte = 4
)

// packet is one queued datagram; Data points into the stack's private
// heap.
type packet struct {
	addr uintptr
	n    int
	// orig is the allocation base, kept so partially consumed packets
	// free the right block.
	orig uintptr
}

// socket is one simulated connection endpoint.
type socket struct {
	id      int
	rxQueue []packet
	txBytes uint64
	rxDrops uint64
}

// State is the per-image network stack state ("kernel" metadata lives at
// the Go level, payloads live in simulated memory — see DESIGN.md).
type State struct {
	sockets map[int]*socket
	nextID  int
	rxTotal uint64
	txTotal uint64
}

// Register adds the lwip component to the catalog.
func Register(cat *core.Catalog) *State {
	st := &State{sockets: make(map[int]*socket)}
	c := core.NewComponent(Name)
	c.PatchAdd, c.PatchDel = 542, 275 // Table 1
	c.Imports = []string{"uksched"}
	for _, v := range sharedVars() {
		c.AddShared(v)
	}

	// socket() creates an endpoint and returns its descriptor.
	c.AddFunc(&core.Func{
		Name: "socket", Work: socketWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			st.nextID++
			s := &socket{id: st.nextID}
			st.sockets[s.id] = s
			return s.id, nil
		},
	})

	// rx_enqueue(sock, payload []byte) is the driver-side injection
	// point standing in for the NIC: it copies the payload into the
	// stack's private packet pool.
	c.AddFunc(&core.Func{
		Name: "rx_enqueue", Work: enqueueWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("netstack: rx_enqueue(sock, payload)")
			}
			s, err := st.lookup(args[0])
			if err != nil {
				return nil, err
			}
			payload, ok := args[1].([]byte)
			if !ok {
				return nil, fmt.Errorf("netstack: payload must be []byte")
			}
			addr, err := ctx.AllocPrivate(len(payload))
			if err != nil {
				s.rxDrops++
				return nil, err
			}
			if err := ctx.Write(addr, payload); err != nil {
				return nil, err
			}
			ctx.Charge(uint64(len(payload)) * ProcessPerByte)
			s.rxQueue = append(s.rxQueue, packet{addr: addr, n: len(payload), orig: addr})
			st.rxTotal += uint64(len(payload))
			return len(payload), nil
		},
	})

	// recv(sock, bufAddr, bufLen) copies the next packet into the
	// caller's buffer and returns the byte count (0 when the queue is
	// empty). The buffer must be accessible from the stack's domain:
	// callers in other compartments pass DSS shadows or shared-heap
	// buffers, per the __shared porting rule.
	c.AddFunc(&core.Func{
		Name: "recv", Work: recvWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			if len(args) != 3 {
				return nil, fmt.Errorf("netstack: recv(sock, bufAddr, bufLen)")
			}
			s, err := st.lookup(args[0])
			if err != nil {
				return nil, err
			}
			bufAddr, ok1 := args[1].(uintptr)
			bufLen, ok2 := args[2].(int)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("netstack: recv buffer args must be (uintptr, int)")
			}
			if len(s.rxQueue) == 0 {
				return 0, nil
			}
			pkt := s.rxQueue[0]
			n := pkt.n
			if n > bufLen {
				n = bufLen
			}
			// Protocol processing + copy into the caller's buffer.
			ctx.Charge(uint64(n) * ProcessPerByte)
			if err := ctx.Memmove(bufAddr, pkt.addr, n); err != nil {
				return nil, err
			}
			if n == pkt.n {
				s.rxQueue = s.rxQueue[1:]
				if err := ctx.FreePrivate(pkt.orig); err != nil {
					return nil, err
				}
			} else {
				s.rxQueue[0] = packet{addr: pkt.addr + uintptr(n), n: pkt.n - n, orig: pkt.orig}
			}
			return n, nil
		},
	})

	// send(sock, bufAddr, n) transmits n bytes from the caller's buffer.
	c.AddFunc(&core.Func{
		Name: "send", Work: sendWork, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			if len(args) != 3 {
				return nil, fmt.Errorf("netstack: send(sock, bufAddr, n)")
			}
			s, err := st.lookup(args[0])
			if err != nil {
				return nil, err
			}
			bufAddr, ok1 := args[1].(uintptr)
			n, ok2 := args[2].(int)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("netstack: send buffer args must be (uintptr, int)")
			}
			// The stack must be able to read the caller's buffer.
			tmp := make([]byte, n)
			if err := ctx.Read(bufAddr, tmp); err != nil {
				return nil, err
			}
			ctx.Charge(uint64(n) * ProcessPerByte)
			s.txBytes += uint64(n)
			st.txTotal += uint64(n)
			return n, nil
		},
	})

	// pending(sock) reports queued packets (driver/test hook).
	c.AddFunc(&core.Func{
		Name: "pending", Work: 20, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			s, err := st.lookup(args[0])
			if err != nil {
				return nil, err
			}
			return len(s.rxQueue), nil
		},
	})
	cat.MustRegister(c)
	return st
}

func (st *State) lookup(arg any) (*socket, error) {
	id, ok := arg.(int)
	if !ok {
		return nil, fmt.Errorf("netstack: socket descriptor must be int")
	}
	s, ok := st.sockets[id]
	if !ok {
		return nil, fmt.Errorf("netstack: bad socket %d", id)
	}
	return s, nil
}

// TxBytes returns the total bytes transmitted (bench hook).
func (st *State) TxBytes() uint64 { return st.txTotal }

// RxBytes returns the total bytes received into the stack (bench hook).
func (st *State) RxBytes() uint64 { return st.rxTotal }

// sharedVars reproduces the 23 shared-variable annotations Table 1
// reports for the LwIP port: packet pools, protocol control blocks and
// statistics exchanged with applications and the platform layer.
func sharedVars() []core.SharedVar {
	base := []core.SharedVar{
		{Name: "pbuf_pool", Size: 256},
		{Name: "netif_default", Size: 64},
		{Name: "tcp_active_pcbs", Size: 64},
		{Name: "tcp_ticks", Size: 8},
		{Name: "rx_ring", Size: 256},
		{Name: "tx_ring", Size: 256},
		{Name: "lwip_stats", Size: 128},
		{Name: "dns_table", Size: 128},
		{Name: "arp_table", Size: 128},
		{Name: "ip_addr", Size: 16},
		{Name: "netmask", Size: 16},
		{Name: "gateway", Size: 16},
	}
	for i := len(base); i < 23; i++ {
		base = append(base, core.SharedVar{Name: fmt.Sprintf("sock_state_%d", i), Size: 32})
	}
	return base
}
