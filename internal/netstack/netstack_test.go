package netstack

import (
	"testing"

	"flexos/internal/core"
	"flexos/internal/isolation"
	"flexos/internal/mem"
	"flexos/internal/oslib"
)

func oneCompImage(t *testing.T) (*core.Image, *State) {
	t.Helper()
	cat := core.NewCatalog()
	oslib.RegisterTCB(cat)
	oslib.RegisterSched(cat)
	st := Register(cat)
	img, err := core.Build(cat, core.ImageSpec{
		Mechanism: "none",
		Comps: []core.CompSpec{{
			Name: "c0",
			Libs: []string{oslib.BootName, oslib.MMName, oslib.SchedName, Name},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return img, st
}

func splitImage(t *testing.T) (*core.Image, *State) {
	t.Helper()
	cat := core.NewCatalog()
	oslib.RegisterTCB(cat)
	oslib.RegisterSched(cat)
	st := Register(cat)
	// A tiny app component in its own compartment to drive the stack.
	app := core.NewComponent("app")
	app.AddFunc(&core.Func{Name: "main", Work: 1, EntryPoint: true})
	cat.MustRegister(app)
	img, err := core.Build(cat, core.ImageSpec{
		Mechanism: "intel-mpk",
		GateMode:  isolation.GateFull,
		Sharing:   isolation.ShareDSS,
		Comps: []core.CompSpec{
			{Name: "sys", Libs: []string{oslib.BootName, oslib.MMName, oslib.SchedName, Name}},
			{Name: "app", Libs: []string{"app"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return img, st
}

func TestSocketAndEnqueueRecv(t *testing.T) {
	img, st := oneCompImage(t)
	ctx, _ := img.NewContext("t", Name)
	v, err := ctx.Call(Name, "socket")
	if err != nil {
		t.Fatal(err)
	}
	sock := v.(int)
	if _, err := ctx.Call(Name, "rx_enqueue", sock, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if p, _ := ctx.Call(Name, "pending", sock); p != 1 {
		t.Fatalf("pending = %v", p)
	}
	buf, _ := ctx.AllocPrivate(16)
	n, err := ctx.Call(Name, "recv", sock, buf, 16)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("recv = %v bytes", n)
	}
	out := make([]byte, 5)
	ctx.Read(buf, out)
	if string(out) != "hello" {
		t.Fatalf("payload = %q", out)
	}
	if st.RxBytes() != 5 {
		t.Fatalf("rx bytes = %d", st.RxBytes())
	}
}

func TestRecvEmptyQueueReturnsZero(t *testing.T) {
	img, _ := oneCompImage(t)
	ctx, _ := img.NewContext("t", Name)
	v, _ := ctx.Call(Name, "socket")
	buf, _ := ctx.AllocPrivate(16)
	n, err := ctx.Call(Name, "recv", v.(int), buf, 16)
	if err != nil || n != 0 {
		t.Fatalf("recv on empty queue = %v, %v", n, err)
	}
}

func TestPartialRecvKeepsRemainder(t *testing.T) {
	img, _ := oneCompImage(t)
	ctx, _ := img.NewContext("t", Name)
	v, _ := ctx.Call(Name, "socket")
	sock := v.(int)
	ctx.Call(Name, "rx_enqueue", sock, []byte("abcdefgh"))
	buf, _ := ctx.AllocPrivate(4)
	n, err := ctx.Call(Name, "recv", sock, buf, 4)
	if err != nil || n != 4 {
		t.Fatalf("first recv = %v, %v", n, err)
	}
	n, err = ctx.Call(Name, "recv", sock, buf, 4)
	if err != nil || n != 4 {
		t.Fatalf("second recv = %v, %v", n, err)
	}
	out := make([]byte, 4)
	ctx.Read(buf, out)
	if string(out) != "efgh" {
		t.Fatalf("second chunk = %q", out)
	}
}

func TestSendChargesAndCounts(t *testing.T) {
	img, st := oneCompImage(t)
	ctx, _ := img.NewContext("t", Name)
	v, _ := ctx.Call(Name, "socket")
	buf, _ := ctx.AllocPrivate(64)
	ctx.Write(buf, make([]byte, 64))
	cost := img.Mach.Clock.Span(func() {
		if _, err := ctx.Call(Name, "send", v.(int), buf, 64); err != nil {
			t.Fatal(err)
		}
	})
	if st.TxBytes() != 64 {
		t.Fatalf("tx bytes = %d", st.TxBytes())
	}
	if cost < 64*ProcessPerByte {
		t.Fatalf("send cost %d below per-byte work", cost)
	}
}

func TestBadSocket(t *testing.T) {
	img, _ := oneCompImage(t)
	ctx, _ := img.NewContext("t", Name)
	if _, err := ctx.Call(Name, "recv", 999, uintptr(0), 4); err == nil {
		t.Fatal("bad socket accepted")
	}
	if _, err := ctx.Call(Name, "rx_enqueue", "x", []byte("y")); err == nil {
		t.Fatal("bad descriptor type accepted")
	}
}

func TestCrossCompartmentRecvNeedsSharedBuffer(t *testing.T) {
	// The porting rule of §4.4: a private buffer passed across the
	// compartment boundary crashes with a protection fault; annotating
	// it (shared buffer) fixes it.
	img, _ := splitImage(t)
	ctx, err := img.NewContext("t", "app")
	if err != nil {
		t.Fatal(err)
	}
	v, err := ctx.Call(Name, "socket")
	if err != nil {
		t.Fatal(err)
	}
	sock := v.(int)
	if _, err := ctx.Call(Name, "rx_enqueue", sock, []byte("data")); err != nil {
		t.Fatal(err)
	}

	// Private app-heap buffer: the stack cannot write into it.
	private, err := ctx.AllocPrivate(16)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ctx.Call(Name, "recv", sock, private, 16)
	if !mem.IsFault(err, mem.FaultKeyViolation) {
		t.Fatalf("recv into private buffer: got %v, want key violation", err)
	}

	// Re-enqueue (the failed recv consumed nothing) and use a shared
	// buffer: works.
	shared, err := ctx.AllocShared(16)
	if err != nil {
		t.Fatal(err)
	}
	n, err := ctx.Call(Name, "recv", sock, shared, 16)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("recv = %v", n)
	}
}

func TestTable1SharedVars(t *testing.T) {
	cat := core.NewCatalog()
	Register(cat)
	c, _ := cat.Lookup(Name)
	if len(c.Shared) != 23 {
		t.Fatalf("lwip shared vars = %d, want 23 (Table 1)", len(c.Shared))
	}
	if c.PatchAdd != 542 || c.PatchDel != 275 {
		t.Fatalf("lwip patch = +%d/-%d", c.PatchAdd, c.PatchDel)
	}
}
